#!/usr/bin/env python3
"""Perf ratchet for the cluster-path fast path.

Compares the fast-vs-recompute speedups in a freshly generated
``bench_cluster_path`` JSON (the nightly ``--big --check-fastpath``
artifact) against the committed baseline ``BENCH_cluster_path.json``
and fails if any shape regressed below ``RATCHET * committed``.

The committed file is the small-shape run refreshed whenever the fast
path materially changes; the nightly run is the million-request
variant. Absolute numbers differ across machines and shape sizes, so
the ratchet compares *speedups* (a machine-relative ratio), not
requests/sec, and allows 10 % slack for run-to-run noise.

When the fresh JSON carries a ``telemetry_overhead`` object (the
traced re-run of a shape divided by its untraced run), each ratio is
additionally gated at ``TELEMETRY_BUDGET`` — telemetry must stay
within 5 % of telemetry-off throughput. A ``classes_overhead`` object
(``bench_slo_classes``: the uniform-class classes-enabled run divided
by the classes-off run, which bounds the dormant class layer's cost
from above) is gated the same way at ``CLASSES_BUDGET``.

A JSON with no ``speedup`` object (e.g. ``BENCH_slo_classes.json``)
skips the speedup ratchet and checks only its overhead objects.

Usage:
    ci/check_perf_ratchet.py NEW_JSON [COMMITTED_JSON]

Exit status 1 on regression or malformed input, 0 otherwise.
"""

import json
import sys

RATCHET = 0.9  # tolerate 10% noise; anything below is a regression
TELEMETRY_BUDGET = 1.05  # traced run may cost at most 5% extra time
CLASSES_BUDGET = 1.05  # enabled-but-uniform class layer, same budget


def load_doc(path):
    with open(path) as fh:
        return json.load(fh)


def load_speedups(doc, path):
    speedups = doc.get("speedup")
    if not isinstance(speedups, dict) or not speedups:
        raise SystemExit(f"{path}: no 'speedup' object — malformed bench JSON")
    return speedups


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 1
    new_path = argv[1]
    committed_path = argv[2] if len(argv) == 3 else "BENCH_cluster_path.json"

    new_doc = load_doc(new_path)

    failed = False
    has_overheads = isinstance(
        new_doc.get("telemetry_overhead"), dict
    ) or isinstance(new_doc.get("classes_overhead"), dict)
    if "speedup" in new_doc or not has_overheads:
        new = load_speedups(new_doc, new_path)
        committed = load_speedups(load_doc(committed_path), committed_path)
        for shape, baseline in sorted(committed.items()):
            current = new.get(shape)
            if current is None:
                print(f"RATCHET FAIL {shape}: shape missing from {new_path}")
                failed = True
                continue
            floor = RATCHET * baseline
            verdict = "ok" if current >= floor else "RATCHET FAIL"
            print(
                f"{verdict} {shape}: speedup {current:.3f}x vs committed "
                f"{baseline:.3f}x (floor {floor:.3f}x)"
            )
            if current < floor:
                failed = True

    for key, label, budget in (
        ("telemetry_overhead", "telemetry overhead", TELEMETRY_BUDGET),
        ("classes_overhead", "classes overhead", CLASSES_BUDGET),
    ):
        overhead = new_doc.get(key)
        if isinstance(overhead, dict):
            for shape, ratio in sorted(overhead.items()):
                verdict = "ok" if ratio <= budget else "RATCHET FAIL"
                print(
                    f"{verdict} {label} on {shape}: {ratio:.3f}x "
                    f"(budget {budget:.2f}x)"
                )
                if ratio > budget:
                    failed = True

    if failed:
        print(
            "\nfast-path speedup regressed below 0.9x of the committed "
            "baseline; investigate before merging (or refresh "
            f"{committed_path} if the regression is intended)."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
