#!/usr/bin/env python3
"""Structural validator for TraceSink's Chrome trace-event JSON.

Loads a trace file (e.g. the nightly ``bench_cluster_path
--trace-out`` artifact), and fails unless:

  * every event carries the required fields for its phase and its
    category is one of the known vocabulary (iteration/plan/admission/
    eviction/phase/migration/slo, plus fault/retry from the fault
    layer's crash/drain/straggler/link-failure and backoff-retry
    events);
  * events in the ``admission`` and ``slo`` categories use their known
    name vocabulary, and the SLO-class instants (``class_shed``,
    ``deadline_exceeded``, ``demoted``) each carry a ``request`` arg
    identifying which request was shed/expired/demoted;
  * timestamps are monotonically non-decreasing per (pid, tid) track
    in file order (recording order is simulation order, so any
    decrease means the ring or the export reordered events);
  * "X" events have a non-negative duration;
  * async "b"/"e" events pair up by (cat, id) — every end has a
    matching open begin with ts(e) >= ts(b), and nothing is left open
    at the end of the file (the export synthesizes closes, so an open
    span is an export bug);
  * at least ``--min-categories`` distinct categories appear (the
    end-to-end coverage check: a churny run must exercise most of the
    vocabulary).

Usage:
    ci/validate_trace.py TRACE_JSON [--min-categories N]

Exit status 1 on any violation, 0 otherwise.
"""

import argparse
import json
import sys

KNOWN_CATEGORIES = {
    "iteration",
    "plan",
    "admission",
    "eviction",
    "phase",
    "migration",
    "slo",
    "fault",
    "retry",
}

KNOWN_PHASES = {"i", "X", "b", "e"}

# Name vocabulary for the categories with a pinned schema. The
# SLO-class subsystem owns these: admission carries per-instance
# admits plus class-aware sheds, slo carries the monitor verdicts plus
# the deadline outcomes.
KNOWN_NAMES_BY_CATEGORY = {
    "admission": {"admit", "class_shed"},
    "slo": {"ok", "violated", "deadline_exceeded", "demoted"},
}

# Instants that must identify their request in args.
REQUEST_ARG_NAMES = {"class_shed", "deadline_exceeded", "demoted"}


def fail(errors, message, limit=20):
    if len(errors) < limit:
        errors.append(message)
    elif len(errors) == limit:
        errors.append("... further violations suppressed")


def validate(doc, min_categories):
    errors = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["no 'traceEvents' array — not a Chrome trace"]
    if not events:
        return ["empty 'traceEvents' array"]

    last_ts = {}  # (pid, tid) -> last timestamp seen
    open_spans = {}  # (cat, id) -> list of begin timestamps
    categories = set()

    for i, e in enumerate(events):
        where = f"event {i}"
        for field in ("name", "cat", "ph", "pid", "tid", "ts"):
            if field not in e:
                fail(errors, f"{where}: missing '{field}'")
        cat = e.get("cat")
        ph = e.get("ph")
        ts = e.get("ts")
        if cat not in KNOWN_CATEGORIES:
            fail(errors, f"{where}: unknown category '{cat}'")
        else:
            categories.add(cat)
            known_names = KNOWN_NAMES_BY_CATEGORY.get(cat)
            name = e.get("name")
            if known_names is not None and name not in known_names:
                fail(
                    errors,
                    f"{where}: unknown name '{name}' in category "
                    f"'{cat}' (known: {sorted(known_names)})",
                )
            if name in REQUEST_ARG_NAMES:
                args = e.get("args")
                if not isinstance(args, dict) or not isinstance(
                    args.get("request"), int
                ):
                    fail(
                        errors,
                        f"{where}: '{name}' without an integer "
                        "'request' arg",
                    )
        if ph not in KNOWN_PHASES:
            fail(errors, f"{where}: unknown phase '{ph}'")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(errors, f"{where}: bad timestamp {ts!r}")
            continue

        track = (e.get("pid"), e.get("tid"))
        prev = last_ts.get(track)
        if prev is not None and ts < prev:
            fail(
                errors,
                f"{where}: ts {ts} < {prev} on track {track} "
                "(non-monotonic)",
            )
        last_ts[track] = ts

        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(errors, f"{where}: 'X' with bad dur {dur!r}")
        elif ph == "b":
            if "id" not in e:
                fail(errors, f"{where}: 'b' without id")
            else:
                open_spans.setdefault((cat, e["id"]), []).append(ts)
        elif ph == "e":
            key = (cat, e.get("id"))
            stack = open_spans.get(key)
            if not stack:
                fail(errors, f"{where}: 'e' with no open 'b' for {key}")
            else:
                begin_ts = stack.pop()
                if not stack:
                    del open_spans[key]
                if ts < begin_ts:
                    fail(
                        errors,
                        f"{where}: span {key} ends at {ts} before its "
                        f"begin at {begin_ts}",
                    )

    for key, stack in sorted(open_spans.items(), key=str):
        fail(errors, f"span {key} left open ({len(stack)} begin(s))")

    if len(categories) < min_categories:
        fail(
            errors,
            f"only {len(categories)} categories present "
            f"({sorted(categories)}), need >= {min_categories}",
        )

    return errors


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate TraceSink Chrome trace-event JSON."
    )
    parser.add_argument("trace", help="trace JSON file to validate")
    parser.add_argument(
        "--min-categories",
        type=int,
        default=1,
        help="minimum distinct event categories required (default 1)",
    )
    args = parser.parse_args(argv[1:])

    try:
        with open(args.trace) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{args.trace}: {exc}", file=sys.stderr)
        return 1

    errors = validate(doc, args.min_categories)
    if errors:
        for message in errors:
            print(f"TRACE FAIL {args.trace}: {message}")
        return 1

    events = doc["traceEvents"]
    cats = sorted({e.get("cat") for e in events})
    print(
        f"ok {args.trace}: {len(events)} events, "
        f"{len(cats)} categories ({', '.join(cats)})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
