#include "src/predict/predictor.hh"

#include <cstdio>

#include "src/common/log.hh"
#include "src/predict/oracle_predictor.hh"
#include "src/predict/profile_predictor.hh"
#include "src/predict/rank_predictor.hh"

namespace pascal
{
namespace predict
{

void
PredictorConfig::validate() const
{
    if (type == PredictorType::NoisyOracle && noiseSigma <= 0.0) {
        fatal("PredictorConfig: the noisy-oracle predictor needs "
              "noiseSigma > 0 (log-space error stddev); use "
              "PredictorType::Oracle for exact predictions");
    }
    if (type != PredictorType::NoisyOracle && noiseSigma != 0.0) {
        fatal("PredictorConfig: noiseSigma is only meaningful for "
              "PredictorType::NoisyOracle; leave it 0 for '" +
              name() + "'");
    }
    if (quantile <= 0.0 || quantile >= 1.0) {
        fatal("PredictorConfig: quantile must lie strictly inside "
              "(0, 1); 0.5 predicts with the running median");
    }
    if (warmupCompletions < 0) {
        fatal("PredictorConfig: warmupCompletions must be >= 0 "
              "(completions before per-dataset/bucket statistics are "
              "trusted)");
    }
}

std::string
PredictorConfig::name() const
{
    switch (type) {
      case PredictorType::None:
        return "none";
      case PredictorType::Oracle:
        return "oracle";
      case PredictorType::NoisyOracle: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "noisy(%.2f)", noiseSigma);
        return buf;
      }
      case PredictorType::Profile:
        return "profile";
      case PredictorType::Rank:
        return "rank";
    }
    return "?";
}

std::unique_ptr<LengthPredictor>
makePredictor(const PredictorConfig& cfg)
{
    cfg.validate();
    switch (cfg.type) {
      case PredictorType::None:
        return nullptr;
      case PredictorType::Oracle:
        return std::make_unique<OraclePredictor>();
      case PredictorType::NoisyOracle:
        return std::make_unique<NoisyOraclePredictor>(cfg.noiseSigma,
                                                      cfg.seed);
      case PredictorType::Profile:
        return std::make_unique<DatasetProfilePredictor>(
            cfg.quantile, cfg.warmupCompletions);
      case PredictorType::Rank:
        return std::make_unique<PairwiseRankPredictor>(
            cfg.warmupCompletions);
    }
    fatal("makePredictor: unknown predictor type");
}

std::vector<PredictorConfig>
standardSweepPredictors()
{
    std::vector<PredictorConfig> sweep;
    PredictorConfig p;
    p.type = PredictorType::Oracle;
    sweep.push_back(p);
    for (double sigma : {0.2, 0.5, 1.0}) {
        p = {};
        p.type = PredictorType::NoisyOracle;
        p.noiseSigma = sigma;
        sweep.push_back(p);
    }
    p = {};
    p.type = PredictorType::Profile;
    sweep.push_back(p);
    p = {};
    p.type = PredictorType::Rank;
    sweep.push_back(p);
    return sweep;
}

} // namespace predict
} // namespace pascal
