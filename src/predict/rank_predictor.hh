/**
 * @file
 * PairwiseRankPredictor: learning-to-rank over feature buckets.
 *
 * "Ranking before serving" style: instead of regressing a length, the
 * predictor learns which *kinds* of requests tend to finish before
 * which others, and emits a rank score. Requests are bucketed by the
 * features observable at scheduling time — source dataset and a log2
 * prompt-length bucket — and every completion plays pairwise games
 * against a bounded reservoir of recent completions from every other
 * bucket; the shorter total generation wins. A bucket's score is its
 * overall win rate, so rankScore() = 1 - winRate orders likely-short
 * requests first without committing to a token count.
 *
 * For consumers that do need a length (predictive demotion, predictive
 * placement), the predictor falls back to per-bucket running means of
 * the realized reasoning/answering lengths.
 */

#ifndef PASCAL_PREDICT_RANK_PREDICTOR_HH
#define PASCAL_PREDICT_RANK_PREDICTOR_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/predict/predictor.hh"

namespace pascal
{
namespace predict
{

/** Pairwise win-rate learning-to-rank predictor. */
class PairwiseRankPredictor : public LengthPredictor
{
  public:
    /** @param warmup_comparisons Pairwise games a bucket needs before
     *         its win rate is trusted (below: neutral 0.5). */
    explicit PairwiseRankPredictor(int warmup_comparisons);

    std::string name() const override { return "rank"; }

    /** Bucket win-rate score in [0, 1]: lower = historically shorter.
     *  Neutral 0.5 for unwarmed buckets; 0 for finished requests. */
    double rankScore(const workload::Request& req) const override;

    double predictRemainingTokens(
        const workload::Request& req) const override;

    double predictRemainingReasoningTokens(
        const workload::Request& req) const override;

    /** Plays the finished request against every other bucket's
     *  reservoir and records its realized lengths. */
    void observeCompletion(const workload::Request& req) override;

    /** Feature-bucket key for @p spec (tests/diagnostics). */
    static std::string bucketKey(const workload::RequestSpec& spec);

    /** Win rate of the bucket @p req falls into (0.5 if unwarmed). */
    double winRate(const workload::Request& req) const;

  private:
    struct Bucket
    {
        std::uint64_t wins = 0;
        std::uint64_t games = 0;

        /** Running means of realized lengths (the length fallback).
         *  Reasoning keeps its own count: startInAnswering
         *  completions contribute no reasoning sample (they would
         *  dilute the mean toward 0 and mute predictive demotion). */
        double sumReasoning = 0.0;
        double sumAnswer = 0.0;
        std::uint64_t completions = 0;
        std::uint64_t reasoningCompletions = 0;

        /** Ring buffer of recent total generation lengths: the
         *  opponents future completions play against. */
        std::vector<double> reservoir;
        std::size_t reservoirNext = 0;
    };

    const Bucket* find(const workload::Request& req) const;
    double meanReasoning(const workload::Request& req) const;
    double meanAnswer(const workload::Request& req) const;

    int warmup;

    /** std::map keyed by bucket string: deterministic iteration, so
     *  pairwise game order is a pure function of completion order. */
    std::map<std::string, Bucket> buckets;

    /** Global length means (fallback for unseen buckets). */
    double globalSumReasoning = 0.0;
    double globalSumAnswer = 0.0;
    std::uint64_t globalCompletions = 0;
    std::uint64_t globalReasoningCompletions = 0;
};

} // namespace predict
} // namespace pascal

#endif // PASCAL_PREDICT_RANK_PREDICTOR_HH
