#include "src/predict/oracle_predictor.hh"

#include "src/common/rng.hh"

namespace pascal
{
namespace predict
{

double
OraclePredictor::predictRemainingTokens(
    const workload::Request& req) const
{
    return static_cast<double>(req.totalToGenerate() - req.generated());
}

double
OraclePredictor::predictRemainingReasoningTokens(
    const workload::Request& req) const
{
    return static_cast<double>(req.spec().reasoningTokens -
                               req.reasoningGenerated());
}

namespace
{

/** SplitMix64 finalizer: decorrelates {seed, id} pairs so consecutive
 *  request ids do not get correlated noise factors. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

NoisyOraclePredictor::NoisyOraclePredictor(double sigma,
                                           std::uint64_t seed)
    : sigma(sigma), seed(seed)
{}

std::string
NoisyOraclePredictor::name() const
{
    // Delegate to the config's single format: sweep labels and the
    // bench's error join key on the exact same string.
    PredictorConfig cfg;
    cfg.type = PredictorType::NoisyOracle;
    cfg.noiseSigma = sigma;
    return cfg.name();
}

double
NoisyOraclePredictor::noiseFactor(RequestId id) const
{
    auto it = factors.find(id);
    if (it != factors.end())
        return it->second;
    Rng rng(mix64(seed ^ mix64(static_cast<std::uint64_t>(id))));
    // mu = -sigma^2/2 makes E[factor] = 1 (unbiased predictions).
    double factor = rng.lognormal(-0.5 * sigma * sigma, sigma);
    factors.emplace(id, factor);
    return factor;
}

double
NoisyOraclePredictor::predictRemainingTokens(
    const workload::Request& req) const
{
    return OraclePredictor::predictRemainingTokens(req) *
           noiseFactor(req.id());
}

double
NoisyOraclePredictor::predictRemainingReasoningTokens(
    const workload::Request& req) const
{
    return OraclePredictor::predictRemainingReasoningTokens(req) *
           noiseFactor(req.id());
}

} // namespace predict
} // namespace pascal
