/**
 * @file
 * Length-prediction subsystem: speculative estimates of how much work
 * a request has left.
 *
 * The paper's PASCAL is deliberately reactive: the reasoning->answering
 * transition is only *observed* when the </think> token is emitted
 * (src/workload/request.hh), so every policy schedules blind to
 * remaining work. ALISE-style speculative scheduling and
 * learning-to-rank serving show that even noisy output-length
 * estimates unlock SRPT-style gains. A LengthPredictor supplies those
 * estimates; the speculative policies in src/core (SrptScheduler,
 * PascalSpecScheduler, the predictive PascalPlacement variant) consume
 * them, and the Cluster feeds completions back so online predictors
 * can learn during the run.
 *
 * Layering: predict sits between workload and core. It depends only on
 * common + workload; core's schedulers hold a const LengthPredictor*.
 */

#ifndef PASCAL_PREDICT_PREDICTOR_HH
#define PASCAL_PREDICT_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.hh"
#include "src/workload/request.hh"

namespace pascal
{
namespace predict
{

/** Length-predictor selector (SystemConfig knob). */
enum class PredictorType
{
    None,        //!< No speculation: the paper's reactive behaviour.
    Oracle,      //!< Reads the trace spec: exact remaining lengths.
    NoisyOracle, //!< Oracle with multiplicative log-normal error.
    Profile,     //!< Online per-dataset running length quantiles.
    Rank,        //!< Pairwise learning-to-rank over feature buckets.
};

/** Tunables for building a LengthPredictor. */
struct PredictorConfig
{
    PredictorType type = PredictorType::None;

    /**
     * NoisyOracle only: log-space standard deviation of the
     * multiplicative error. Each request gets one persistent factor
     * drawn from lognormal(-sigma^2/2, sigma), so the error has mean 1
     * and is a pure function of {seed, request id} (determinism is
     * independent of prediction call order).
     */
    double noiseSigma = 0.0;

    /** Seed for the NoisyOracle error stream. */
    std::uint64_t seed = 1;

    /** Profile only: which running quantile to predict with (0.5 =
     *  median). Must lie strictly inside (0, 1). */
    double quantile = 0.5;

    /**
     * Profile/Rank: completions a dataset (Profile) or comparison
     * count a feature bucket (Rank) needs before its statistics are
     * trusted; below it the predictor falls back to global statistics
     * and then to fixed priors.
     */
    int warmupCompletions = 8;

    /** Validate; calls fatal() with an actionable message. */
    void validate() const;

    /** Stable label for reports/sweep labels, e.g. "noisy(0.50)". */
    std::string name() const;
};

/**
 * Interface: speculative remaining-work estimates for one request.
 *
 * Prediction methods are const (cheap, repeatable, callable from
 * schedulers every iteration); observeCompletion() is the online
 * learning hook the Cluster invokes when a request finishes. One
 * predictor instance is shared by every instance of a cluster, so
 * profile/rank predictors learn from cluster-wide completions.
 */
class LengthPredictor
{
  public:
    virtual ~LengthPredictor() = default;

    /** Predictor label for reports. */
    virtual std::string name() const = 0;

    /**
     * Predicted decode tokens this request will still generate
     * (remaining reasoning + remaining answering). >= 0; exactly 0 for
     * finished requests.
     */
    virtual double
    predictRemainingTokens(const workload::Request& req) const = 0;

    /**
     * Predicted reasoning tokens still to come. 0 for requests already
     * answering (the transition has been observed) and for
     * startInAnswering requests, which never decode reasoning tokens.
     */
    virtual double
    predictRemainingReasoningTokens(const workload::Request& req)
        const = 0;

    /**
     * Scheduling priority: lower = serve first. Length-based
     * predictors return predictRemainingTokens(); the rank predictor
     * returns a win-rate score in [0, 1] that orders requests without
     * committing to a length. Only the *ordering* is meaningful across
     * requests of one predictor; scores from different predictors are
     * not comparable.
     */
    virtual double
    rankScore(const workload::Request& req) const
    {
        return predictRemainingTokens(req);
    }

    /** Online learning hook: @p req just generated its final token. */
    virtual void observeCompletion(const workload::Request& req)
    {
        (void)req;
    }

    /**
     * Monotone state version. Advances whenever the predictor's
     * internal state — and therefore its predictions for requests
     * that did not themselves progress — may have changed. Schedulers
     * whose ordering keys come from predictions (SRPT, PASCAL-Spec)
     * re-key every hosted request when it moves. Stateless predictors
     * (oracle, noisy oracle) never bump it: their estimates are pure
     * functions of the request's own progress.
     */
    std::uint64_t version() const { return versionCounter; }

  protected:
    /** Online learners call this whenever they update state. */
    void bumpVersion() { ++versionCounter; }

  private:
    std::uint64_t versionCounter = 0;
};

/**
 * Build the predictor selected by @p cfg (validated).
 *
 * @return nullptr for PredictorType::None — "no speculation" is the
 *         zero-cost default, not a null-object predictor.
 */
std::unique_ptr<LengthPredictor>
makePredictor(const PredictorConfig& cfg);

/**
 * The canonical error-sensitivity sweep: oracle, noisy oracle at
 * sigma 0.2 / 0.5 / 1.0, profile, rank. Shared by policy_explorer and
 * bench_predictor_accuracy so the printed sweep and the CI-tracked
 * Pareto artifact never drift apart.
 */
std::vector<PredictorConfig> standardSweepPredictors();

} // namespace predict
} // namespace pascal

#endif // PASCAL_PREDICT_PREDICTOR_HH
