#include "src/predict/profile_predictor.hh"

#include <algorithm>
#include <cmath>

namespace pascal
{
namespace predict
{

namespace
{

/** Cold-start priors, roughly the paper's chat-dataset means (Fig. 8):
 *  used before any completion has been observed anywhere. */
constexpr double kPriorReasoningTokens = 600.0;
constexpr double kPriorAnswerTokens = 500.0;

} // namespace

void
RunningQuantile::add(double x)
{
    samples.push_back(x);
    sorted = false;
}

double
RunningQuantile::quantile(double q) const
{
    if (samples.empty())
        return 0.0;
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
    double pos = q * static_cast<double>(samples.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, samples.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
}

DatasetProfilePredictor::DatasetProfilePredictor(double quantile,
                                                 int warmup_completions)
    : q(quantile), warmup(warmup_completions)
{}

const RunningQuantile*
DatasetProfilePredictor::pick(const std::string& dataset,
                              bool reasoning) const
{
    auto it = perDataset.find(dataset);
    if (it != perDataset.end()) {
        const RunningQuantile& own =
            reasoning ? it->second.reasoning : it->second.answering;
        if (own.count() >= static_cast<std::size_t>(warmup))
            return &own;
    }
    const RunningQuantile& all =
        reasoning ? global.reasoning : global.answering;
    return all.count() > 0 ? &all : nullptr;
}

double
DatasetProfilePredictor::expectedReasoningTokens(
    const workload::Request& req) const
{
    const RunningQuantile* stats = pick(req.spec().dataset, true);
    return stats != nullptr ? stats->quantile(q)
                            : kPriorReasoningTokens;
}

double
DatasetProfilePredictor::expectedAnswerTokens(
    const workload::Request& req) const
{
    const RunningQuantile* stats = pick(req.spec().dataset, false);
    return stats != nullptr ? stats->quantile(q) : kPriorAnswerTokens;
}

double
DatasetProfilePredictor::predictRemainingReasoningTokens(
    const workload::Request& req) const
{
    if (req.spec().startInAnswering ||
        req.phase() != workload::Phase::Reasoning) {
        return 0.0;
    }
    // The request is observably still reasoning, so at least one more
    // reasoning token is coming even when it has outlived the
    // quantile.
    double expected = expectedReasoningTokens(req);
    double generated = static_cast<double>(req.reasoningGenerated());
    return std::max(expected - generated, 1.0);
}

double
DatasetProfilePredictor::predictRemainingTokens(
    const workload::Request& req) const
{
    switch (req.phase()) {
      case workload::Phase::Finished:
        return 0.0;
      case workload::Phase::Reasoning:
        return predictRemainingReasoningTokens(req) +
               expectedAnswerTokens(req);
      case workload::Phase::Answering: {
        double expected = expectedAnswerTokens(req);
        double generated = static_cast<double>(req.answerGenerated());
        return std::max(expected - generated, 1.0);
      }
    }
    return 0.0;
}

void
DatasetProfilePredictor::observeCompletion(const workload::Request& req)
{
    bumpVersion(); // Quantiles move: downstream keys must re-rank.
    const workload::RequestSpec& spec = req.spec();
    Lengths& own = perDataset[spec.dataset];
    // startInAnswering requests never decode reasoning tokens here, so
    // their (zero-length) reasoning phase would only skew the
    // reasoning quantile downward for requests that do reason.
    if (!spec.startInAnswering) {
        own.reasoning.add(static_cast<double>(spec.reasoningTokens));
        global.reasoning.add(static_cast<double>(spec.reasoningTokens));
    }
    own.answering.add(static_cast<double>(spec.answerTokens));
    global.answering.add(static_cast<double>(spec.answerTokens));
}

std::size_t
DatasetProfilePredictor::observations(const std::string& dataset) const
{
    auto it = perDataset.find(dataset);
    return it == perDataset.end() ? 0 : it->second.answering.count();
}

} // namespace predict
} // namespace pascal
