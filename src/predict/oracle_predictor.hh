/**
 * @file
 * Oracle predictors: exact spec-reading lookahead, optionally
 * corrupted by per-request multiplicative log-normal noise.
 *
 * The oracle bounds what speculative scheduling can gain; the noisy
 * oracle sweeps the gain against prediction error (the Pareto frontier
 * bench_predictor_accuracy plots). Neither learns online.
 */

#ifndef PASCAL_PREDICT_ORACLE_PREDICTOR_HH
#define PASCAL_PREDICT_ORACLE_PREDICTOR_HH

#include <string>
#include <unordered_map>

#include "src/predict/predictor.hh"

namespace pascal
{
namespace predict
{

/** Exact remaining lengths read from the request spec. */
class OraclePredictor : public LengthPredictor
{
  public:
    std::string name() const override { return "oracle"; }

    double predictRemainingTokens(
        const workload::Request& req) const override;

    double predictRemainingReasoningTokens(
        const workload::Request& req) const override;
};

/**
 * Oracle scaled by one persistent log-normal factor per request.
 *
 * The factor is drawn from lognormal(-sigma^2/2, sigma) — mean 1, so
 * predictions are unbiased in expectation — seeded from
 * {config seed, request id}. Both remaining-token estimates of one
 * request share the factor, and the value is independent of when or
 * how often the predictor is queried, which keeps SweepRunner grids
 * bit-reproducible.
 */
class NoisyOraclePredictor : public OraclePredictor
{
  public:
    NoisyOraclePredictor(double sigma, std::uint64_t seed);

    std::string name() const override;

    double predictRemainingTokens(
        const workload::Request& req) const override;

    double predictRemainingReasoningTokens(
        const workload::Request& req) const override;

    /** The request's persistent multiplicative error factor. */
    double noiseFactor(RequestId id) const;

  private:
    double sigma;
    std::uint64_t seed;

    /** Cache: the factor is a pure function of {seed, id}, so caching
     *  cannot introduce call-order dependence. */
    mutable std::unordered_map<RequestId, double> factors;
};

} // namespace predict
} // namespace pascal

#endif // PASCAL_PREDICT_ORACLE_PREDICTOR_HH
