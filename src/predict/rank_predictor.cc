#include "src/predict/rank_predictor.hh"

#include <algorithm>
#include <cmath>

namespace pascal
{
namespace predict
{

namespace
{

/** Recent completions each bucket keeps as pairwise opponents. */
constexpr std::size_t kReservoirSize = 64;

/** Cold-start priors shared with the profile predictor's scale. */
constexpr double kPriorReasoningTokens = 600.0;
constexpr double kPriorAnswerTokens = 500.0;

/** log2 bucket of a prompt length (0 for <= 1 token). */
int
promptBucket(TokenCount prompt)
{
    int bucket = 0;
    while (prompt > 1) {
        prompt >>= 1;
        ++bucket;
    }
    return bucket;
}

} // namespace

PairwiseRankPredictor::PairwiseRankPredictor(int warmup_comparisons)
    : warmup(warmup_comparisons)
{}

std::string
PairwiseRankPredictor::bucketKey(const workload::RequestSpec& spec)
{
    return spec.dataset + "/p" +
           std::to_string(promptBucket(spec.promptTokens));
}

const PairwiseRankPredictor::Bucket*
PairwiseRankPredictor::find(const workload::Request& req) const
{
    auto it = buckets.find(bucketKey(req.spec()));
    return it == buckets.end() ? nullptr : &it->second;
}

double
PairwiseRankPredictor::winRate(const workload::Request& req) const
{
    const Bucket* bucket = find(req);
    // games == 0 must stay neutral even when warmup is 0: 0/0 would
    // produce a NaN rank score, and NaN keys break std::sort's strict
    // weak ordering in the schedulers.
    if (bucket == nullptr || bucket->games == 0 ||
        bucket->games < static_cast<std::uint64_t>(warmup)) {
        return 0.5;
    }
    return static_cast<double>(bucket->wins) /
           static_cast<double>(bucket->games);
}

double
PairwiseRankPredictor::rankScore(const workload::Request& req) const
{
    if (req.finished())
        return 0.0;
    return 1.0 - winRate(req);
}

double
PairwiseRankPredictor::meanReasoning(const workload::Request& req) const
{
    const Bucket* bucket = find(req);
    if (bucket != nullptr && bucket->reasoningCompletions > 0) {
        return bucket->sumReasoning /
               static_cast<double>(bucket->reasoningCompletions);
    }
    if (globalReasoningCompletions > 0)
        return globalSumReasoning /
               static_cast<double>(globalReasoningCompletions);
    return kPriorReasoningTokens;
}

double
PairwiseRankPredictor::meanAnswer(const workload::Request& req) const
{
    const Bucket* bucket = find(req);
    if (bucket != nullptr && bucket->completions > 0) {
        return bucket->sumAnswer /
               static_cast<double>(bucket->completions);
    }
    if (globalCompletions > 0)
        return globalSumAnswer / static_cast<double>(globalCompletions);
    return kPriorAnswerTokens;
}

double
PairwiseRankPredictor::predictRemainingReasoningTokens(
    const workload::Request& req) const
{
    if (req.spec().startInAnswering ||
        req.phase() != workload::Phase::Reasoning) {
        return 0.0;
    }
    double generated = static_cast<double>(req.reasoningGenerated());
    return std::max(meanReasoning(req) - generated, 1.0);
}

double
PairwiseRankPredictor::predictRemainingTokens(
    const workload::Request& req) const
{
    switch (req.phase()) {
      case workload::Phase::Finished:
        return 0.0;
      case workload::Phase::Reasoning:
        return predictRemainingReasoningTokens(req) + meanAnswer(req);
      case workload::Phase::Answering: {
        double generated = static_cast<double>(req.answerGenerated());
        return std::max(meanAnswer(req) - generated, 1.0);
      }
    }
    return 0.0;
}

void
PairwiseRankPredictor::observeCompletion(const workload::Request& req)
{
    bumpVersion(); // Win rates move: downstream keys must re-rank.
    const workload::RequestSpec& spec = req.spec();
    const std::string key = bucketKey(spec);
    double total = static_cast<double>(req.totalToGenerate());

    // std::map references are stable across the insertion below.
    Bucket& bucket = buckets[key];

    // Play the completion against every *other* bucket's reservoir:
    // the shorter total generation wins; ties charge both a game but
    // award no win.
    for (auto& [other_key, other] : buckets) {
        if (other_key == key)
            continue;
        for (double opponent : other.reservoir) {
            ++bucket.games;
            ++other.games;
            if (total < opponent)
                ++bucket.wins;
            else if (opponent < total)
                ++other.wins;
        }
    }

    if (!spec.startInAnswering) {
        bucket.sumReasoning +=
            static_cast<double>(spec.reasoningTokens);
        globalSumReasoning +=
            static_cast<double>(spec.reasoningTokens);
        ++bucket.reasoningCompletions;
        ++globalReasoningCompletions;
    }
    bucket.sumAnswer += static_cast<double>(spec.answerTokens);
    ++bucket.completions;
    ++globalCompletions;
    globalSumAnswer += static_cast<double>(spec.answerTokens);

    if (bucket.reservoir.size() < kReservoirSize) {
        bucket.reservoir.push_back(total);
    } else {
        bucket.reservoir[bucket.reservoirNext] = total;
        bucket.reservoirNext =
            (bucket.reservoirNext + 1) % kReservoirSize;
    }
}

} // namespace predict
} // namespace pascal
