/**
 * @file
 * DatasetProfilePredictor: online per-dataset running quantiles of
 * reasoning/answering lengths, updated as requests complete.
 *
 * Traces label every request with its source dataset
 * (RequestSpec::dataset), and the paper's Fig. 8/14 show the datasets
 * have very different length profiles. The predictor exploits exactly
 * that: it keeps a running quantile (default: median) of the observed
 * reasoning and answering lengths per dataset and predicts remaining
 * work as "the dataset's typical length minus what this request has
 * already generated". Until a dataset has seen warmupCompletions
 * finishes it falls back to the all-dataset statistics, and before any
 * completion at all to fixed chat-scale priors.
 */

#ifndef PASCAL_PREDICT_PROFILE_PREDICTOR_HH
#define PASCAL_PREDICT_PROFILE_PREDICTOR_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "src/predict/predictor.hh"

namespace pascal
{
namespace predict
{

/**
 * Exact running quantile: samples accumulate online and the quantile
 * is computed from a lazily re-sorted buffer. Completion counts per
 * run are small (thousands), so exactness is cheaper than an
 * approximate sketch would be to verify.
 */
class RunningQuantile
{
  public:
    /** Record one observation. */
    void add(double x);

    /** Empirical @p q quantile (q in (0,1)); 0 when empty. */
    double quantile(double q) const;

    std::size_t count() const { return samples.size(); }

  private:
    mutable std::vector<double> samples;
    mutable bool sorted = true;
};

/** Online per-dataset running-quantile length predictor. */
class DatasetProfilePredictor : public LengthPredictor
{
  public:
    /**
     * @param quantile Which quantile to predict with (0.5 = median).
     * @param warmup_completions Completions a dataset needs before its
     *        own statistics are used.
     */
    DatasetProfilePredictor(double quantile, int warmup_completions);

    std::string name() const override { return "profile"; }

    double predictRemainingTokens(
        const workload::Request& req) const override;

    double predictRemainingReasoningTokens(
        const workload::Request& req) const override;

    /** Feeds the finished request's realized lengths into its
     *  dataset's (and the global) running quantiles. */
    void observeCompletion(const workload::Request& req) override;

    /** Completions observed for @p dataset (diagnostics/tests). */
    std::size_t observations(const std::string& dataset) const;

  private:
    struct Lengths
    {
        RunningQuantile reasoning;
        RunningQuantile answering;
    };

    /** Expected total reasoning length for @p req's dataset. */
    double expectedReasoningTokens(const workload::Request& req) const;

    /** Expected total answering length for @p req's dataset. */
    double expectedAnswerTokens(const workload::Request& req) const;

    /** The dataset's stats if warmed up, else global, else nullptr
     *  (caller applies the fixed prior). */
    const RunningQuantile* pick(const std::string& dataset,
                                bool reasoning) const;

    double q;
    int warmup;

    /** std::map: deterministic iteration and no rehash jitter. */
    std::map<std::string, Lengths> perDataset;
    Lengths global;
};

} // namespace predict
} // namespace pascal

#endif // PASCAL_PREDICT_PROFILE_PREDICTOR_HH
