#include "src/common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace pascal
{

namespace
{
std::atomic<bool> quietFlag{false};
} // namespace

void
fatal(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
panic(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
inform(const std::string& msg)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string& msg)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

} // namespace pascal
