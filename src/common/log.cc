#include "src/common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace pascal
{

namespace
{
std::atomic<bool> quietFlag{false};
std::atomic<std::uint64_t> emittedWarnings{0};
} // namespace

void
fatal(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
panic(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
inform(const std::string& msg)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string& msg)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    emittedWarnings.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
warnOnce(WarnSite& site, const std::string& msg)
{
    if (site.count.fetch_add(1, std::memory_order_relaxed) == 0)
        warn(msg);
}

void
warnEvery(WarnSite& site, std::uint64_t n, const std::string& msg)
{
    if (n == 0)
        n = 1;
    std::uint64_t hit =
        site.count.fetch_add(1, std::memory_order_relaxed);
    if (hit % n != 0)
        return;
    if (hit == 0) {
        warn(msg);
    } else {
        warn(msg + " (" + std::to_string(n - 1) +
             " similar suppressed)");
    }
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

std::uint64_t
warningsEmitted()
{
    return emittedWarnings.load(std::memory_order_relaxed);
}

} // namespace pascal
