/**
 * @file
 * Minimal status/error reporting in the gem5 spirit.
 *
 * fatal() is for user errors (bad configuration, malformed trace): it
 * throws FatalError so that library embedders and tests can recover.
 * panic() is for internal invariant violations (simulator bugs): it
 * aborts. inform()/warn() print status without stopping the run.
 */

#ifndef PASCAL_COMMON_LOG_HH
#define PASCAL_COMMON_LOG_HH

#include <stdexcept>
#include <string>

namespace pascal
{

/** Exception thrown by fatal(): a user-correctable configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Report an unrecoverable user error (bad config, invalid arguments).
 *
 * @param msg Description of what the user did wrong.
 * @throws FatalError always.
 */
[[noreturn]] void fatal(const std::string& msg);

/**
 * Report an internal simulator bug and abort.
 *
 * @param msg Description of the violated invariant.
 */
[[noreturn]] void panic(const std::string& msg);

/** Print an informational status line to stderr. */
void inform(const std::string& msg);

/** Print a warning line to stderr. */
void warn(const std::string& msg);

/** Globally silence inform()/warn() output (used by benches/tests). */
void setQuiet(bool quiet);

} // namespace pascal

#endif // PASCAL_COMMON_LOG_HH
