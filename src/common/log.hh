/**
 * @file
 * Minimal status/error reporting in the gem5 spirit.
 *
 * fatal() is for user errors (bad configuration, malformed trace): it
 * throws FatalError so that library embedders and tests can recover.
 * panic() is for internal invariant violations (simulator bugs): it
 * aborts. inform()/warn() print status without stopping the run.
 */

#ifndef PASCAL_COMMON_LOG_HH
#define PASCAL_COMMON_LOG_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace pascal
{

/** Exception thrown by fatal(): a user-correctable configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Report an unrecoverable user error (bad config, invalid arguments).
 *
 * @param msg Description of what the user did wrong.
 * @throws FatalError always.
 */
[[noreturn]] void fatal(const std::string& msg);

/**
 * Report an internal simulator bug and abort.
 *
 * @param msg Description of the violated invariant.
 */
[[noreturn]] void panic(const std::string& msg);

/** Print an informational status line to stderr. */
void inform(const std::string& msg);

/** Print a warning line to stderr. */
void warn(const std::string& msg);

/**
 * Per-site state for rate-limited warnings. Declare one (usually
 * function-local static, or a member for per-object sites) and pass
 * it to warnOnce()/warnEvery(); the counter is atomic so hot paths
 * shared across SweepRunner workers stay safe.
 */
class WarnSite
{
  public:
    /** Times the site was hit (emitted or suppressed). */
    std::uint64_t calls() const
    {
        return count.load(std::memory_order_relaxed);
    }

  private:
    friend void warnOnce(WarnSite&, const std::string&);
    friend void warnEvery(WarnSite&, std::uint64_t,
                          const std::string&);
    std::atomic<std::uint64_t> count{0};
};

/** Warn on the first hit of @p site only; later hits are counted but
 *  silent, so a million-request run cannot flood stderr. Respects
 *  setQuiet() like warn(). */
void warnOnce(WarnSite& site, const std::string& msg);

/**
 * Warn on every @p n-th hit of @p site (the 1st, n+1st, ...),
 * annotating repeats with how many similar warnings were suppressed
 * since the last emission. @p n == 0 behaves like 1 (every hit).
 * Respects setQuiet() like warn().
 */
void warnEvery(WarnSite& site, std::uint64_t n, const std::string& msg);

/** Globally silence inform()/warn() output (used by benches/tests). */
void setQuiet(bool quiet);

/** Warning lines actually printed (suppressed ones — rate-limited or
 *  quieted — do not count). Lets tests assert suppression without
 *  capturing stderr. */
std::uint64_t warningsEmitted();

} // namespace pascal

#endif // PASCAL_COMMON_LOG_HH
