/**
 * @file
 * Fixed-width histogram used by the dataset-distribution benches
 * (Fig. 8 and Fig. 14) and by tests that check distribution shape.
 */

#ifndef PASCAL_COMMON_HISTOGRAM_HH
#define PASCAL_COMMON_HISTOGRAM_HH

#include <cstddef>
#include <string>
#include <vector>

namespace pascal
{
namespace stats
{

/**
 * Histogram over [lo, hi) with a fixed number of equal-width bins.
 * Samples outside the range are clamped into the first/last bin so no
 * mass is silently dropped.
 */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower edge of the histogram range.
     * @param hi Exclusive upper edge; must be > lo.
     * @param num_bins Number of equal-width bins; must be >= 1.
     */
    Histogram(double lo, double hi, std::size_t num_bins);

    /** Insert one sample (clamped into range). */
    void add(double x);

    /** Total number of samples. */
    std::size_t count() const { return total; }

    /** Number of samples in bin @p i. */
    std::size_t binCount(std::size_t i) const { return counts.at(i); }

    /** Number of bins. */
    std::size_t numBins() const { return counts.size(); }

    /** Center of bin @p i. */
    double binCenter(std::size_t i) const;

    /** Fraction of mass in bin @p i (0 when empty). */
    double density(std::size_t i) const;

    /** Mean of the raw samples (not binned). */
    double mean() const;

    /**
     * Render an ASCII bar chart, one line per bin, for bench output.
     * @param max_width Width in characters of the largest bar.
     */
    std::string render(std::size_t max_width = 50) const;

  private:
    double lo;
    double hi;
    double width;
    std::vector<std::size_t> counts;
    std::size_t total = 0;
    double sum = 0.0;
};

} // namespace stats
} // namespace pascal

#endif // PASCAL_COMMON_HISTOGRAM_HH
