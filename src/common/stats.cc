#include "src/common/stats.hh"

#include <algorithm>
#include <cmath>

#include "src/common/log.hh"

namespace pascal
{
namespace stats
{

void
Summary::add(double x)
{
    ++n;
    double delta = x - meanAcc;
    meanAcc += delta / static_cast<double>(n);
    m2 += delta * (x - meanAcc);
    minAcc = std::min(minAcc, x);
    maxAcc = std::max(maxAcc, x);
}

double
Summary::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

namespace
{

/** Shared rank arithmetic of the two percentile flavours. */
struct Ranks
{
    std::size_t lo;
    std::size_t hi;
    double frac;
};

Ranks
ranksFor(std::size_t n, double p)
{
    if (p < 0.0 || p > 100.0)
        fatal("percentile p must be in [0,100], got " + std::to_string(p));
    double rank = p / 100.0 * static_cast<double>(n - 1);
    Ranks r;
    r.lo = static_cast<std::size_t>(std::floor(rank));
    r.hi = static_cast<std::size_t>(std::ceil(rank));
    r.frac = rank - static_cast<double>(r.lo);
    return r;
}

} // namespace

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    if (values.size() == 1) {
        ranksFor(1, p); // Range-check p even for the trivial case.
        return values.front();
    }

    // Two nth_element selections instead of a full sort: the lower
    // rank partitions the data, leaving the upper neighbour as the
    // minimum of the right partition. Yields bit-identical results to
    // sort-then-interpolate (the rank values are the same elements).
    Ranks r = ranksFor(values.size(), p);
    auto lo_it = values.begin() + static_cast<std::ptrdiff_t>(r.lo);
    std::nth_element(values.begin(), lo_it, values.end());
    double lo_val = *lo_it;
    if (r.hi == r.lo)
        return lo_val;
    double hi_val = *std::min_element(lo_it + 1, values.end());
    return lo_val + r.frac * (hi_val - lo_val);
}

double
percentileOfSorted(const std::vector<double>& sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1) {
        ranksFor(1, p);
        return sorted.front();
    }
    Ranks r = ranksFor(sorted.size(), p);
    return sorted[r.lo] + r.frac * (sorted[r.hi] - sorted[r.lo]);
}

std::optional<double>
adaptiveTail(const std::vector<double>& values)
{
    std::size_t n = values.size();
    if (n < 5)
        return std::nullopt;
    if (n < 10)
        return *std::max_element(values.begin(), values.end());
    if (n < 20)
        return percentile(values, 90.0);
    if (n < 100)
        return percentile(values, 95.0);
    return percentile(values, 99.0);
}

std::string
adaptiveTailName(std::size_t n)
{
    if (n < 5)
        return "omitted";
    if (n < 10)
        return "max";
    if (n < 20)
        return "P90";
    if (n < 100)
        return "P95";
    return "P99";
}

const std::vector<double> BinnedTail::emptyBin{};

BinnedTail::BinnedTail(double bin_width) : width(bin_width)
{
    if (bin_width <= 0.0)
        fatal("BinnedTail bin width must be positive");
}

void
BinnedTail::add(double key, double value)
{
    auto idx = static_cast<std::int64_t>(std::floor(key / width));
    bins[idx].push_back(value);
}

std::vector<BinnedTail::Bin>
BinnedTail::reduce() const
{
    std::vector<Bin> out;
    out.reserve(bins.size());
    for (const auto& [idx, values] : bins) {
        Bin b;
        b.lo = static_cast<double>(idx) * width;
        b.hi = b.lo + width;
        b.count = values.size();
        b.tail = adaptiveTail(values);
        b.statName = adaptiveTailName(values.size());
        out.push_back(std::move(b));
    }
    return out;
}

const std::vector<double>&
BinnedTail::binValues(double key) const
{
    auto idx = static_cast<std::int64_t>(std::floor(key / width));
    auto it = bins.find(idx);
    return it == bins.end() ? emptyBin : it->second;
}

} // namespace stats
} // namespace pascal
