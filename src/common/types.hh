/**
 * @file
 * Fundamental scalar types and unit helpers shared by every PASCAL
 * module.
 *
 * Simulation time is kept in double-precision seconds. Token counts and
 * byte counts are signed 64-bit so that intermediate arithmetic
 * (differences, scaled sums) cannot overflow for any realistic trace.
 */

#ifndef PASCAL_COMMON_TYPES_HH
#define PASCAL_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace pascal
{

/** Simulation time in seconds. */
using Time = double;

/** Number of tokens (prompt, KV, generated...). */
using TokenCount = std::int64_t;

/** Byte quantity (KV footprints, transfer sizes). */
using Bytes = std::int64_t;

/** Globally unique request identifier, assigned by the trace. */
using RequestId = std::int64_t;

/** Index of a serving instance inside a cluster. */
using InstanceId = int;

/** Sentinel for "no instance". */
inline constexpr InstanceId kNoInstance = -1;

/** Sentinel for "no request". */
inline constexpr RequestId kNoRequest = -1;

/** A time far beyond any simulated horizon. */
inline constexpr Time kTimeInfinity =
    std::numeric_limits<Time>::infinity();

/** Convert milliseconds to simulation seconds. */
constexpr Time
milliseconds(double ms)
{
    return ms * 1e-3;
}

/** Convert microseconds to simulation seconds. */
constexpr Time
microseconds(double us)
{
    return us * 1e-6;
}

/** Convert gigabytes (decimal) to bytes. */
constexpr Bytes
gigabytes(double gb)
{
    return static_cast<Bytes>(gb * 1e9);
}

/** Convert mebibytes (binary) to bytes. */
constexpr Bytes
mebibytes(double mib)
{
    return static_cast<Bytes>(mib * 1024.0 * 1024.0);
}

/** Convert a gigabit-per-second link rate to bytes per second. */
constexpr double
gbpsToBytesPerSec(double gbps)
{
    return gbps * 1e9 / 8.0;
}

} // namespace pascal

#endif // PASCAL_COMMON_TYPES_HH
