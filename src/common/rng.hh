/**
 * @file
 * Seeded random-number utility wrapping std::mt19937_64.
 *
 * Every stochastic component of the simulator draws through an Rng so
 * that whole experiments are reproducible from a single seed.
 */

#ifndef PASCAL_COMMON_RNG_HH
#define PASCAL_COMMON_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

#include "src/common/types.hh"

namespace pascal
{

/**
 * Deterministic random source.
 *
 * All draws funnel through one engine, so the sequence of values is a
 * pure function of the seed and the call order.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default: fixed seed 1). */
    explicit Rng(std::uint64_t seed = 1) : engine(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> dist(lo, hi);
        return dist(engine);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine);
    }

    /** Exponential variate with the given rate (1/mean). */
    double
    exponential(double rate)
    {
        std::exponential_distribution<double> dist(rate);
        return dist(engine);
    }

    /** Log-normal variate with the given log-space mu and sigma. */
    double
    lognormal(double mu, double sigma)
    {
        std::lognormal_distribution<double> dist(mu, sigma);
        return dist(engine);
    }

    /** Standard normal variate scaled by (mu, sigma). */
    double
    normal(double mu, double sigma)
    {
        std::normal_distribution<double> dist(mu, sigma);
        return dist(engine);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution dist(p);
        return dist(engine);
    }

    /** Pick an index in [0, n) uniformly. */
    std::size_t
    pickIndex(std::size_t n)
    {
        return static_cast<std::size_t>(uniformInt(0,
            static_cast<std::int64_t>(n) - 1));
    }

    /** Access the raw engine (for std::shuffle etc.). */
    std::mt19937_64& raw() { return engine; }

  private:
    std::mt19937_64 engine;
};

} // namespace pascal

#endif // PASCAL_COMMON_RNG_HH
