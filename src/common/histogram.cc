#include "src/common/histogram.hh"

#include <algorithm>
#include <cstdio>

#include "src/common/log.hh"

namespace pascal
{
namespace stats
{

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo(lo), hi(hi), counts(num_bins, 0)
{
    if (hi <= lo)
        fatal("Histogram range must satisfy hi > lo");
    if (num_bins == 0)
        fatal("Histogram needs at least one bin");
    width = (hi - lo) / static_cast<double>(num_bins);
}

void
Histogram::add(double x)
{
    sum += x;
    ++total;
    double clamped = std::clamp(x, lo, hi - width * 1e-9);
    auto idx = static_cast<std::size_t>((clamped - lo) / width);
    idx = std::min(idx, counts.size() - 1);
    ++counts[idx];
}

double
Histogram::binCenter(std::size_t i) const
{
    return lo + (static_cast<double>(i) + 0.5) * width;
}

double
Histogram::density(std::size_t i) const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(counts.at(i)) / static_cast<double>(total);
}

double
Histogram::mean() const
{
    return total ? sum / static_cast<double>(total) : 0.0;
}

std::string
Histogram::render(std::size_t max_width) const
{
    std::size_t peak = 0;
    for (auto c : counts)
        peak = std::max(peak, c);

    std::string out;
    char line[160];
    for (std::size_t i = 0; i < counts.size(); ++i) {
        std::size_t bar = peak == 0 ? 0 : counts[i] * max_width / peak;
        std::snprintf(line, sizeof(line), "%10.0f | %-6zu ",
                      binCenter(i), counts[i]);
        out += line;
        out.append(bar, '#');
        out += '\n';
    }
    return out;
}

} // namespace stats
} // namespace pascal
