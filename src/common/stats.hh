/**
 * @file
 * Summary statistics, percentiles, and the paper's adaptive tail-latency
 * rule (Fig. 10 caption).
 */

#ifndef PASCAL_COMMON_STATS_HH
#define PASCAL_COMMON_STATS_HH

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.hh"

namespace pascal
{
namespace stats
{

/**
 * Streaming accumulator for count/mean/variance/min/max.
 *
 * Uses Welford's online algorithm so it is numerically stable for long
 * runs.
 */
class Summary
{
  public:
    /** Fold one sample into the summary. */
    void add(double x);

    /** Number of samples seen. */
    std::size_t count() const { return n; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n ? meanAcc : 0.0; }

    /** Population variance (0 when fewer than 2 samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample (+inf when empty). */
    double min() const { return minAcc; }

    /** Largest sample (-inf when empty). */
    double max() const { return maxAcc; }

    /** Sum of all samples. */
    double sum() const { return meanAcc * static_cast<double>(n); }

  private:
    std::size_t n = 0;
    double meanAcc = 0.0;
    double m2 = 0.0;
    double minAcc = kTimeInfinity;
    double maxAcc = -kTimeInfinity;
};

/**
 * Percentile with linear interpolation between closest ranks.
 *
 * Selects the two neighbouring ranks with nth_element instead of
 * fully sorting, so a single-quantile query is O(n). Callers that
 * need several quantiles of the same data should sort once and use
 * percentileOfSorted() for each.
 *
 * @param values Samples; copied and partially reordered internally.
 * @param p Percentile in [0, 100].
 * @return The interpolated percentile, or 0 for an empty input.
 */
double percentile(std::vector<double> values, double p);

/**
 * Percentile of an already ascending-sorted sample vector. Reads the
 * interpolated ranks directly, so any number of quantiles costs one
 * shared sort. Returns exactly what percentile() returns for the same
 * data.
 *
 * @param sorted Samples in ascending order (not checked).
 * @param p Percentile in [0, 100].
 */
double percentileOfSorted(const std::vector<double>& sorted, double p);

/**
 * The paper's adaptive tail statistic (Fig. 10 caption): maximum for
 * bins with fewer than 10 samples, P90 below 20, P95 below 100, and P99
 * otherwise. Returns nullopt for bins with fewer than 5 samples, which
 * the paper omits as statistically meaningless.
 */
std::optional<double> adaptiveTail(const std::vector<double>& values);

/** Human-readable name of the adaptive statistic used for a bin size. */
std::string adaptiveTailName(std::size_t n);

/**
 * Group (key, value) samples into fixed-width key bins and reduce each
 * bin with the adaptive tail rule.
 *
 * Used to regenerate Fig. 10/13/16: key = reasoning token length, value
 * = TTFT, width = 256.
 */
class BinnedTail
{
  public:
    /** @param bin_width Width of each key bin (must be positive). */
    explicit BinnedTail(double bin_width);

    /** Insert one (key, value) sample. */
    void add(double key, double value);

    /** One reduced bin. */
    struct Bin
    {
        double lo;               //!< Inclusive lower key edge.
        double hi;               //!< Exclusive upper key edge.
        std::size_t count;       //!< Samples in the bin.
        std::optional<double> tail; //!< Adaptive tail (nullopt if n<5).
        std::string statName;    //!< Which statistic tail used.
    };

    /** Reduce all bins in ascending key order. */
    std::vector<Bin> reduce() const;

    /** Raw values of the bin containing @p key (empty if none). */
    const std::vector<double>& binValues(double key) const;

  private:
    double width;
    std::map<std::int64_t, std::vector<double>> bins;
    static const std::vector<double> emptyBin;
};

} // namespace stats
} // namespace pascal

#endif // PASCAL_COMMON_STATS_HH
