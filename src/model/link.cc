#include "src/model/link.hh"

#include <algorithm>

#include "src/common/log.hh"

namespace pascal
{
namespace model
{

Link::Link(sim::Simulator& sim, double bytes_per_sec, std::string name)
    : sim(sim), rate(bytes_per_sec), linkName(std::move(name))
{
    if (bytes_per_sec <= 0.0)
        fatal("Link '" + linkName + "' needs positive bandwidth");
}

Time
Link::submit(Bytes bytes, std::function<void()> on_complete)
{
    if (bytes < 0)
        panic("Link '" + linkName + "': negative transfer size");

    Time now = sim.now();
    Time start = std::max(now, busyUntilTime);
    Time duration = static_cast<double>(bytes) / rate;
    Time done = start + duration;

    busyUntilTime = done;
    bytesAcc += bytes;
    busyTimeAcc += duration;
    latencies.push_back(done - now);

    if (on_complete)
        sim.at(done, std::move(on_complete));
    return done;
}

double
Link::utilization(Time now) const
{
    if (now <= 0.0)
        return 0.0;
    return std::min(1.0, busyTimeAcc / now);
}

} // namespace model
} // namespace pascal
