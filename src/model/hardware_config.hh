/**
 * @file
 * Node and interconnect hardware parameters.
 *
 * The preset mirrors the paper's testbed: NVIDIA H100 96 GB per serving
 * instance, PCIe 5.0 x16 host link for KV offload, and a 100 Gbps
 * fabric connecting the eight nodes (Section V-A). Efficiency factors
 * derate peak numbers to sustained, achievable rates.
 */

#ifndef PASCAL_MODEL_HARDWARE_CONFIG_HH
#define PASCAL_MODEL_HARDWARE_CONFIG_HH

#include <string>

#include "src/common/types.hh"

namespace pascal
{
namespace model
{

/** One serving node plus its links. */
struct HardwareConfig
{
    std::string name = "unnamed";

    Bytes gpuMemoryBytes = 0;        //!< Total HBM capacity.
    double hbmBandwidth = 0.0;       //!< Peak HBM bytes/s.
    double hbmEfficiency = 0.8;      //!< Sustained fraction of peak.
    double peakFlops = 0.0;          //!< Peak dense BF16 FLOP/s.
    double mfu = 0.45;               //!< Model FLOPs utilization.

    double pcieBandwidth = 0.0;      //!< Peak host-link bytes/s.
    double pcieEfficiency = 0.8;     //!< Sustained fraction of peak.

    double fabricGbps = 100.0;       //!< Inter-node fabric, Gbit/s.
    double fabricEfficiency = 0.9;   //!< Sustained fraction of peak.

    Time iterationOverhead = 300e-6; //!< Fixed per-iteration cost
                                     //!< (scheduling, kernel launch).
    Time perSeqOverhead = 20e-6;     //!< Added cost per batched seq
                                     //!< (sampling, bookkeeping).

    /** Sustained HBM bytes/s. */
    double effHbmBandwidth() const { return hbmBandwidth * hbmEfficiency; }

    /** Sustained FLOP/s. */
    double effFlops() const { return peakFlops * mfu; }

    /** Sustained PCIe bytes/s. */
    double effPcieBandwidth() const
    {
        return pcieBandwidth * pcieEfficiency;
    }

    /** Sustained fabric bytes/s. */
    double effFabricBandwidth() const
    {
        return gbpsToBytesPerSec(fabricGbps) * fabricEfficiency;
    }

    /** Validate; calls fatal() on nonsense values. */
    void validate() const;

    /** NVIDIA H100 96 GB over PCIe 5.0, 100 Gbps fabric (the paper's
     *  node). */
    static HardwareConfig h100();
};

} // namespace model
} // namespace pascal

#endif // PASCAL_MODEL_HARDWARE_CONFIG_HH
