/**
 * @file
 * Profile-based single-instance performance model (substitute for the
 * paper's vLLM profiling data — see DESIGN.md "Substitutions").
 *
 * The model is an analytic roofline:
 *  - Prefill is the max of a compute term (2 * params * tokens FLOPs at
 *    effective FLOP/s) and a memory term (one pass over the weights).
 *  - A decode iteration is the max of a memory term (weights read once
 *    per iteration + the batch's KV read) and a compute term
 *    (2 * params * batch FLOPs), plus fixed and per-sequence overheads.
 *
 * These terms preserve exactly the dependencies the scheduling study
 * relies on: iteration latency grows mildly with batch size and KV
 * footprint, prefill cost grows with prompt tokens, and KV movement
 * costs are proportional to bytes over link bandwidth. With the H100 +
 * 32B presets, decode lands at ~25-60 ms/iteration, matching the ~30 ms
 * per-token figure the paper cites, and a 2048-token KV migration takes
 * ~43 ms on the 100 Gbps fabric, matching the paper's ~40 ms citation.
 */

#ifndef PASCAL_MODEL_PERF_MODEL_HH
#define PASCAL_MODEL_PERF_MODEL_HH

#include "src/common/types.hh"
#include "src/model/hardware_config.hh"
#include "src/model/model_config.hh"

namespace pascal
{
namespace model
{

/** Analytic latency model for one serving instance. */
class PerfModel
{
  public:
    /**
     * @param model Served model shape.
     * @param hw Node hardware; both are validated.
     */
    PerfModel(const ModelConfig& model, const HardwareConfig& hw);

    /**
     * Latency of a prefill iteration over @p prompt_tokens total
     * prompt tokens (summed over the prefill batch).
     */
    Time prefillLatency(TokenCount prompt_tokens) const;

    /**
     * Latency of one decode iteration.
     *
     * @param batch_size Sequences decoded this iteration.
     * @param batch_kv_tokens Total KV tokens attended over (summed
     *        across the batch).
     */
    Time decodeStepLatency(int batch_size,
                           TokenCount batch_kv_tokens) const;

    /**
     * Latency of one mixed (chunked-prefill) iteration that processes
     * @p prefill_tokens of prompt alongside a decode batch: the
     * compute terms add, the weight traffic is shared.
     */
    Time mixedStepLatency(TokenCount prefill_tokens, int batch_size,
                          TokenCount batch_kv_tokens) const;

    /** KV bytes for @p tokens cache entries. */
    Bytes kvBytes(TokenCount tokens) const;

    /** PCIe transfer time for @p bytes (offload/reload). */
    Time pcieTransferLatency(Bytes bytes) const;

    /** Fabric transfer time for @p bytes (inter-node migration),
     *  ignoring queueing (the Link adds that). */
    Time fabricTransferLatency(Bytes bytes) const;

    /**
     * GPU KV capacity in tokens: memory left after weights, derated by
     * @p reserve_fraction for activations/fragmentation.
     */
    TokenCount
    gpuKvCapacityTokens(double reserve_fraction = 0.1) const;

    const ModelConfig& modelConfig() const { return model; }
    const HardwareConfig& hardwareConfig() const { return hw; }

  private:
    ModelConfig model;
    HardwareConfig hw;
    double weightReadTime; //!< One full pass over the weights (s).
    double flopsPerToken;  //!< 2 * params.
};

} // namespace model
} // namespace pascal

#endif // PASCAL_MODEL_PERF_MODEL_HH
