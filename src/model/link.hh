/**
 * @file
 * Serializing bandwidth link with FIFO queueing.
 *
 * Models a shared transfer resource (a node's PCIe host link, or a
 * node's fabric ingress port). Transfers submitted while the link is
 * busy queue behind earlier ones, which is how the simulator reproduces
 * the paper's KV-migration bandwidth contention (Section V-C: several
 * instances migrating to the same target at once).
 */

#ifndef PASCAL_MODEL_LINK_HH
#define PASCAL_MODEL_LINK_HH

#include <functional>
#include <string>
#include <vector>

#include "src/common/types.hh"
#include "src/sim/simulator.hh"

namespace pascal
{
namespace model
{

/** FIFO bandwidth link bound to a Simulator. */
class Link
{
  public:
    /**
     * @param sim Owning simulator (must outlive the link).
     * @param bytes_per_sec Sustained link bandwidth (> 0).
     * @param name Diagnostic name.
     */
    Link(sim::Simulator& sim, double bytes_per_sec, std::string name);

    /**
     * Enqueue a transfer of @p bytes; @p on_complete fires when it
     * finishes (after any queueing delay).
     *
     * @return Absolute completion time.
     */
    Time submit(Bytes bytes, std::function<void()> on_complete);

    /** Earliest time a new transfer could start. */
    Time busyUntil() const { return busyUntilTime; }

    /** Total payload bytes ever submitted. */
    Bytes totalBytes() const { return bytesAcc; }

    /** Number of transfers submitted. */
    std::size_t numTransfers() const { return latencies.size(); }

    /**
     * End-to-end latency (queueing + serialization) of each completed
     * or in-flight transfer, in submission order.
     */
    const std::vector<double>& transferLatencies() const
    {
        return latencies;
    }

    /** Fraction of [0, now] the link spent transferring. */
    double utilization(Time now) const;

    const std::string& name() const { return linkName; }

  private:
    sim::Simulator& sim;
    double rate;
    std::string linkName;
    Time busyUntilTime = 0.0;
    Bytes bytesAcc = 0;
    double busyTimeAcc = 0.0;
    std::vector<double> latencies;
};

} // namespace model
} // namespace pascal

#endif // PASCAL_MODEL_LINK_HH
