#include "src/model/perf_model.hh"

#include <algorithm>

#include "src/common/log.hh"

namespace pascal
{
namespace model
{

PerfModel::PerfModel(const ModelConfig& model, const HardwareConfig& hw)
    : model(model), hw(hw)
{
    model.validate();
    hw.validate();
    if (model.weightBytes() >= hw.gpuMemoryBytes)
        fatal("model '" + model.name + "' does not fit in GPU memory of '"
              + hw.name + "'");
    weightReadTime = static_cast<double>(model.weightBytes()) /
                     hw.effHbmBandwidth();
    flopsPerToken = 2.0 * static_cast<double>(model.numParams());
}

Time
PerfModel::prefillLatency(TokenCount prompt_tokens) const
{
    if (prompt_tokens < 0)
        panic("negative prefill token count");
    if (prompt_tokens == 0)
        return 0.0;

    double compute = flopsPerToken *
                     static_cast<double>(prompt_tokens) / hw.effFlops();
    double memory = weightReadTime;
    return std::max(compute, memory) + hw.iterationOverhead;
}

Time
PerfModel::decodeStepLatency(int batch_size,
                             TokenCount batch_kv_tokens) const
{
    if (batch_size <= 0)
        panic("decode step with non-positive batch size");
    if (batch_kv_tokens < 0)
        panic("negative KV token count");

    double kv_read = static_cast<double>(kvBytes(batch_kv_tokens)) /
                     hw.effHbmBandwidth();
    double memory = weightReadTime + kv_read;
    double compute = flopsPerToken *
                     static_cast<double>(batch_size) / hw.effFlops();
    return std::max(compute, memory) + hw.iterationOverhead +
           hw.perSeqOverhead * batch_size;
}

Time
PerfModel::mixedStepLatency(TokenCount prefill_tokens, int batch_size,
                            TokenCount batch_kv_tokens) const
{
    if (prefill_tokens < 0 || batch_size < 0 || batch_kv_tokens < 0)
        panic("mixed step with negative inputs");
    if (batch_size == 0)
        return prefillLatency(prefill_tokens);
    if (prefill_tokens == 0)
        return decodeStepLatency(batch_size, batch_kv_tokens);

    double compute =
        flopsPerToken *
        static_cast<double>(prefill_tokens + batch_size) /
        hw.effFlops();
    double kv_read = static_cast<double>(kvBytes(batch_kv_tokens)) /
                     hw.effHbmBandwidth();
    double memory = weightReadTime + kv_read;
    return std::max(compute, memory) + hw.iterationOverhead +
           hw.perSeqOverhead * batch_size;
}

Bytes
PerfModel::kvBytes(TokenCount tokens) const
{
    return tokens * model.kvBytesPerToken();
}

Time
PerfModel::pcieTransferLatency(Bytes bytes) const
{
    return static_cast<double>(bytes) / hw.effPcieBandwidth();
}

Time
PerfModel::fabricTransferLatency(Bytes bytes) const
{
    return static_cast<double>(bytes) / hw.effFabricBandwidth();
}

TokenCount
PerfModel::gpuKvCapacityTokens(double reserve_fraction) const
{
    Bytes free_bytes = hw.gpuMemoryBytes - model.weightBytes();
    auto usable = static_cast<double>(free_bytes) *
                  (1.0 - reserve_fraction);
    return static_cast<TokenCount>(
        usable / static_cast<double>(model.kvBytesPerToken()));
}

} // namespace model
} // namespace pascal
