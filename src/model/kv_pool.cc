#include "src/model/kv_pool.hh"

#include <algorithm>
#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace model
{

KvPool::KvPool(TokenCount gpu_capacity_tokens,
               TokenCount block_size_tokens)
    : gpuCapacityTokens(gpu_capacity_tokens),
      blockSizeTokens(block_size_tokens)
{
    if (gpu_capacity_tokens <= 0)
        fatal("KvPool capacity must be positive, got " +
              std::to_string(gpu_capacity_tokens));
    if (block_size_tokens <= 0)
        fatal("KvPool block size must be positive, got " +
              std::to_string(block_size_tokens));
}

TokenCount
KvPool::chargeFor(TokenCount tokens) const
{
    if (tokens <= 0)
        return 0;
    TokenCount blocks = (tokens + blockSizeTokens - 1) / blockSizeTokens;
    return blocks * blockSizeTokens;
}

bool
KvPool::hasRequest(RequestId id) const
{
    return entries.count(id) != 0;
}

KvTier
KvPool::tierOf(RequestId id) const
{
    auto it = entries.find(id);
    return it == entries.end() ? KvTier::None : it->second.tier;
}

TokenCount
KvPool::tokensOf(RequestId id) const
{
    auto it = entries.find(id);
    return it == entries.end() ? 0 : it->second.tokens;
}

TokenCount
KvPool::chargedTokensOf(RequestId id) const
{
    return chargeFor(tokensOf(id));
}

bool
KvPool::canAllocGpu(TokenCount tokens) const
{
    return chargeFor(tokens) <= gpuFree();
}

KvPool::Entry&
KvPool::lookup(RequestId id)
{
    auto it = entries.find(id);
    if (it == entries.end())
        panic("KvPool: unknown request " + std::to_string(id));
    return it->second;
}

void
KvPool::allocGpu(RequestId id, TokenCount tokens)
{
    if (tokens < 0)
        panic("KvPool::allocGpu negative size");
    if (hasRequest(id))
        panic("KvPool::allocGpu: request " + std::to_string(id) +
              " already tracked");
    if (!canAllocGpu(tokens))
        panic("KvPool::allocGpu: over capacity for request " +
              std::to_string(id));
    entries.emplace(id, Entry{KvTier::Gpu, tokens});
    gpuUsedTokens += chargeFor(tokens);
    peakGpuTokens = std::max(peakGpuTokens, gpuUsedTokens);
}

void
KvPool::allocCpu(RequestId id, TokenCount tokens)
{
    if (tokens < 0)
        panic("KvPool::allocCpu negative size");
    if (hasRequest(id))
        panic("KvPool::allocCpu: request " + std::to_string(id) +
              " already tracked");
    entries.emplace(id, Entry{KvTier::Cpu, tokens});
    cpuUsedTokens += chargeFor(tokens);
}

void
KvPool::growGpu(RequestId id, TokenCount delta)
{
    if (delta < 0)
        panic("KvPool::growGpu negative delta");
    Entry& e = lookup(id);
    if (e.tier != KvTier::Gpu)
        panic("KvPool::growGpu: request " + std::to_string(id) +
              " not GPU-resident");
    TokenCount extra = chargeFor(e.tokens + delta) - chargeFor(e.tokens);
    if (extra > gpuFree())
        panic("KvPool::growGpu: over capacity for request " +
              std::to_string(id));
    e.tokens += delta;
    gpuUsedTokens += extra;
    peakGpuTokens = std::max(peakGpuTokens, gpuUsedTokens);
}

void
KvPool::moveToCpu(RequestId id)
{
    Entry& e = lookup(id);
    if (e.tier != KvTier::Gpu)
        panic("KvPool::moveToCpu: request " + std::to_string(id) +
              " not GPU-resident");
    e.tier = KvTier::Cpu;
    gpuUsedTokens -= chargeFor(e.tokens);
    cpuUsedTokens += chargeFor(e.tokens);
}

void
KvPool::moveToGpu(RequestId id)
{
    Entry& e = lookup(id);
    if (e.tier != KvTier::Cpu)
        panic("KvPool::moveToGpu: request " + std::to_string(id) +
              " not CPU-resident");
    if (chargeFor(e.tokens) > gpuFree())
        panic("KvPool::moveToGpu: over capacity for request " +
              std::to_string(id));
    e.tier = KvTier::Gpu;
    cpuUsedTokens -= chargeFor(e.tokens);
    gpuUsedTokens += chargeFor(e.tokens);
    peakGpuTokens = std::max(peakGpuTokens, gpuUsedTokens);
}

void
KvPool::release(RequestId id)
{
    Entry& e = lookup(id);
    if (e.tier == KvTier::Gpu)
        gpuUsedTokens -= chargeFor(e.tokens);
    else if (e.tier == KvTier::Cpu)
        cpuUsedTokens -= chargeFor(e.tokens);
    entries.erase(id);
}

} // namespace model
} // namespace pascal
