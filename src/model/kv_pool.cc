#include "src/model/kv_pool.hh"

#include <algorithm>
#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace model
{

KvPool::KvPool(TokenCount gpu_capacity_tokens,
               TokenCount block_size_tokens)
    : gpuCapacityTokens(gpu_capacity_tokens),
      blockSizeTokens(block_size_tokens)
{
    if (gpu_capacity_tokens <= 0)
        fatal("KvPool capacity must be positive, got " +
              std::to_string(gpu_capacity_tokens));
    if (block_size_tokens <= 0)
        fatal("KvPool block size must be positive, got " +
              std::to_string(block_size_tokens));
}

void
KvPool::lookupPanic(KvSlot slot) const
{
    panic("KvPool: untracked slot " + std::to_string(slot));
}

void
KvPool::growGpuPanic(const Entry& e, TokenCount delta) const
{
    if (delta < 0)
        panic("KvPool::growGpu negative delta");
    if (e.tier != KvTier::Gpu)
        panic("KvPool::growGpu: request " + std::to_string(e.owner) +
              " not GPU-resident");
    panic("KvPool::growGpu: over capacity for request " +
          std::to_string(e.owner));
}

KvSlot
KvPool::acquireSlot(RequestId id, TokenCount tokens)
{
    if (id < 0)
        panic("KvPool: negative request id " + std::to_string(id));
    if (tokens < 0)
        panic("KvPool: negative KV size for request " +
              std::to_string(id));
    KvSlot slot;
    if (!freeSlots.empty()) {
        slot = freeSlots.back();
        freeSlots.pop_back();
    } else {
        slot = static_cast<KvSlot>(entries.size());
        entries.emplace_back();
    }
    Entry& e = entries[static_cast<std::size_t>(slot)];
    e.tokens = tokens;
    e.owner = id;
    ++trackedCount;
    return slot;
}

KvSlot
KvPool::allocGpu(RequestId id, TokenCount tokens)
{
    if (!canAllocGpu(tokens))
        panic("KvPool::allocGpu: over capacity for request " +
              std::to_string(id));
    KvSlot slot = acquireSlot(id, tokens);
    entries[static_cast<std::size_t>(slot)].tier = KvTier::Gpu;
    gpuUsedTokens += chargeFor(tokens);
    peakGpuTokens = std::max(peakGpuTokens, gpuUsedTokens);
    ++gpuResidentCount;
    return slot;
}

KvSlot
KvPool::allocCpu(RequestId id, TokenCount tokens)
{
    KvSlot slot = acquireSlot(id, tokens);
    entries[static_cast<std::size_t>(slot)].tier = KvTier::Cpu;
    cpuUsedTokens += chargeFor(tokens);
    return slot;
}

void
KvPool::moveToCpu(KvSlot slot)
{
    Entry& e = lookup(slot);
    if (e.tier != KvTier::Gpu)
        panic("KvPool::moveToCpu: request " + std::to_string(e.owner) +
              " not GPU-resident");
    e.tier = KvTier::Cpu;
    gpuUsedTokens -= chargeFor(e.tokens);
    cpuUsedTokens += chargeFor(e.tokens);
    --gpuResidentCount;
}

void
KvPool::moveToGpu(KvSlot slot)
{
    Entry& e = lookup(slot);
    if (e.tier != KvTier::Cpu)
        panic("KvPool::moveToGpu: request " + std::to_string(e.owner) +
              " not CPU-resident");
    if (chargeFor(e.tokens) > gpuFree())
        panic("KvPool::moveToGpu: over capacity for request " +
              std::to_string(e.owner));
    e.tier = KvTier::Gpu;
    cpuUsedTokens -= chargeFor(e.tokens);
    gpuUsedTokens += chargeFor(e.tokens);
    peakGpuTokens = std::max(peakGpuTokens, gpuUsedTokens);
    ++gpuResidentCount;
}

void
KvPool::release(KvSlot slot)
{
    Entry& e = lookup(slot);
    if (e.tier == KvTier::Gpu) {
        gpuUsedTokens -= chargeFor(e.tokens);
        --gpuResidentCount;
    } else if (e.tier == KvTier::Cpu) {
        cpuUsedTokens -= chargeFor(e.tokens);
    }
    e = Entry{};
    --trackedCount;
    freeSlots.push_back(slot);
}

} // namespace model
} // namespace pascal
