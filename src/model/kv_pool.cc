#include "src/model/kv_pool.hh"

#include <algorithm>
#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace model
{

KvPool::KvPool(TokenCount gpu_capacity_tokens,
               TokenCount block_size_tokens)
    : gpuCapacityTokens(gpu_capacity_tokens),
      blockSizeTokens(block_size_tokens)
{
    if (gpu_capacity_tokens <= 0)
        fatal("KvPool capacity must be positive, got " +
              std::to_string(gpu_capacity_tokens));
    if (block_size_tokens <= 0)
        fatal("KvPool block size must be positive, got " +
              std::to_string(block_size_tokens));
}

TokenCount
KvPool::chargeFor(TokenCount tokens) const
{
    if (tokens <= 0)
        return 0;
    TokenCount blocks = (tokens + blockSizeTokens - 1) / blockSizeTokens;
    return blocks * blockSizeTokens;
}

TokenCount
KvPool::chargedTokensOf(RequestId id) const
{
    return chargeFor(tokensOf(id));
}

bool
KvPool::canAllocGpu(TokenCount tokens) const
{
    return chargeFor(tokens) <= gpuFree();
}

KvPool::Entry&
KvPool::lookup(RequestId id)
{
    const Entry* e = find(id);
    if (e == nullptr)
        panic("KvPool: unknown request " + std::to_string(id));
    return const_cast<Entry&>(*e);
}

KvPool::Entry&
KvPool::slot(RequestId id)
{
    if (id < 0)
        panic("KvPool: negative request id " + std::to_string(id));
    auto idx = static_cast<std::size_t>(id);
    if (idx >= entries.size())
        entries.resize(idx + 1);
    return entries[idx];
}

void
KvPool::allocGpu(RequestId id, TokenCount tokens)
{
    if (tokens < 0)
        panic("KvPool::allocGpu negative size");
    if (hasRequest(id))
        panic("KvPool::allocGpu: request " + std::to_string(id) +
              " already tracked");
    if (!canAllocGpu(tokens))
        panic("KvPool::allocGpu: over capacity for request " +
              std::to_string(id));
    slot(id) = Entry{tokens, KvTier::Gpu};
    ++trackedCount;
    gpuUsedTokens += chargeFor(tokens);
    peakGpuTokens = std::max(peakGpuTokens, gpuUsedTokens);
}

void
KvPool::allocCpu(RequestId id, TokenCount tokens)
{
    if (tokens < 0)
        panic("KvPool::allocCpu negative size");
    if (hasRequest(id))
        panic("KvPool::allocCpu: request " + std::to_string(id) +
              " already tracked");
    slot(id) = Entry{tokens, KvTier::Cpu};
    ++trackedCount;
    cpuUsedTokens += chargeFor(tokens);
}

void
KvPool::growGpu(RequestId id, TokenCount delta)
{
    if (delta < 0)
        panic("KvPool::growGpu negative delta");
    Entry& e = lookup(id);
    if (e.tier != KvTier::Gpu)
        panic("KvPool::growGpu: request " + std::to_string(id) +
              " not GPU-resident");
    // One-token growth (every decode step) opens a fresh block only
    // when the current size is an exact block multiple.
    TokenCount extra =
        delta == 1
            ? (e.tokens % blockSizeTokens == 0 ? blockSizeTokens : 0)
            : chargeFor(e.tokens + delta) - chargeFor(e.tokens);
    if (extra > gpuFree())
        panic("KvPool::growGpu: over capacity for request " +
              std::to_string(id));
    e.tokens += delta;
    gpuUsedTokens += extra;
    peakGpuTokens = std::max(peakGpuTokens, gpuUsedTokens);
}

void
KvPool::moveToCpu(RequestId id)
{
    Entry& e = lookup(id);
    if (e.tier != KvTier::Gpu)
        panic("KvPool::moveToCpu: request " + std::to_string(id) +
              " not GPU-resident");
    e.tier = KvTier::Cpu;
    gpuUsedTokens -= chargeFor(e.tokens);
    cpuUsedTokens += chargeFor(e.tokens);
}

void
KvPool::moveToGpu(RequestId id)
{
    Entry& e = lookup(id);
    if (e.tier != KvTier::Cpu)
        panic("KvPool::moveToGpu: request " + std::to_string(id) +
              " not CPU-resident");
    if (chargeFor(e.tokens) > gpuFree())
        panic("KvPool::moveToGpu: over capacity for request " +
              std::to_string(id));
    e.tier = KvTier::Gpu;
    cpuUsedTokens -= chargeFor(e.tokens);
    gpuUsedTokens += chargeFor(e.tokens);
    peakGpuTokens = std::max(peakGpuTokens, gpuUsedTokens);
}

void
KvPool::release(RequestId id)
{
    Entry& e = lookup(id);
    if (e.tier == KvTier::Gpu)
        gpuUsedTokens -= chargeFor(e.tokens);
    else if (e.tier == KvTier::Cpu)
        cpuUsedTokens -= chargeFor(e.tokens);
    e = Entry{};
    --trackedCount;
}

} // namespace model
} // namespace pascal
