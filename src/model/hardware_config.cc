#include "src/model/hardware_config.hh"

#include "src/common/log.hh"

namespace pascal
{
namespace model
{

void
HardwareConfig::validate() const
{
    if (gpuMemoryBytes <= 0)
        fatal("HardwareConfig '" + name + "': gpuMemoryBytes <= 0");
    if (hbmBandwidth <= 0.0 || peakFlops <= 0.0 || pcieBandwidth <= 0.0)
        fatal("HardwareConfig '" + name + "': non-positive rate");
    if (hbmEfficiency <= 0.0 || hbmEfficiency > 1.0 ||
        pcieEfficiency <= 0.0 || pcieEfficiency > 1.0 ||
        fabricEfficiency <= 0.0 || fabricEfficiency > 1.0 ||
        mfu <= 0.0 || mfu > 1.0) {
        fatal("HardwareConfig '" + name +
              "': efficiency factors must be in (0,1]");
    }
    if (fabricGbps <= 0.0)
        fatal("HardwareConfig '" + name + "': fabricGbps <= 0");
    if (iterationOverhead < 0.0 || perSeqOverhead < 0.0)
        fatal("HardwareConfig '" + name + "': negative overhead");
}

HardwareConfig
HardwareConfig::h100()
{
    HardwareConfig cfg;
    cfg.name = "H100-96GB";
    cfg.gpuMemoryBytes = gigabytes(96.0);
    cfg.hbmBandwidth = 3.35e12;  // 3.35 TB/s HBM3.
    cfg.hbmEfficiency = 0.8;
    cfg.peakFlops = 989e12;      // Dense BF16.
    cfg.mfu = 0.45;
    cfg.pcieBandwidth = 64e9;    // PCIe 5.0 x16.
    cfg.pcieEfficiency = 0.8;
    cfg.fabricGbps = 100.0;
    cfg.fabricEfficiency = 0.9;
    return cfg;
}

} // namespace model
} // namespace pascal
