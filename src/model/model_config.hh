/**
 * @file
 * Architectural description of the served LLM.
 *
 * The paper serves DeepSeek-R1-Distill-Qwen-32B; the preset below
 * mirrors that model's published architecture (Qwen2.5-32B backbone:
 * 64 layers, hidden 5120, 40 query heads, 8 KV heads (GQA), head dim
 * 128, FFN intermediate 27648). All performance- and memory-relevant
 * quantities (parameter bytes, KV bytes per token) derive from these
 * fields, so alternative models are a config edit away.
 */

#ifndef PASCAL_MODEL_MODEL_CONFIG_HH
#define PASCAL_MODEL_MODEL_CONFIG_HH

#include <string>

#include "src/common/types.hh"

namespace pascal
{
namespace model
{

/** Transformer shape and datatype of the served model. */
struct ModelConfig
{
    std::string name = "unnamed";
    int numLayers = 0;
    int hiddenSize = 0;
    int numHeads = 0;
    int numKvHeads = 0;
    int headDim = 0;
    int ffnIntermediate = 0;
    int vocabSize = 0;
    int bytesPerParam = 2; //!< bf16 weights.
    int bytesPerKvScalar = 2; //!< bf16 KV cache.

    /** Total parameter count implied by the shape. */
    std::int64_t numParams() const;

    /** Bytes of model weights resident on each instance. */
    Bytes weightBytes() const;

    /**
     * KV-cache bytes for one token:
     * 2 (K and V) x layers x kvHeads x headDim x bytesPerKvScalar.
     */
    Bytes kvBytesPerToken() const;

    /** Validate the shape; calls fatal() on nonsense values. */
    void validate() const;

    /** DeepSeek-R1-Distill-Qwen-32B (the paper's model). */
    static ModelConfig deepseekR1Distill32B();

    /** A small 7B-class config used by fast tests. */
    static ModelConfig tiny7B();
};

} // namespace model
} // namespace pascal

#endif // PASCAL_MODEL_MODEL_CONFIG_HH
