/**
 * @file
 * Two-tier (GPU / CPU) KV-cache pool of one serving instance.
 *
 * Token-granular accounting with whole-request residency: a request's
 * KV cache lives either fully in GPU HBM or fully in CPU DRAM (the
 * offload target), mirroring vLLM's swap-based preemption. The pool
 * enforces the GPU capacity invariant and tracks the peak usage that
 * the oracle-capacity experiments need.
 */

#ifndef PASCAL_MODEL_KV_POOL_HH
#define PASCAL_MODEL_KV_POOL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/types.hh"

namespace pascal
{
namespace model
{

/** Where a request's KV cache currently resides. */
enum class KvTier
{
    None, //!< No KV allocated (not yet prefilled, or released).
    Gpu,  //!< Resident in GPU HBM; the request is decodable.
    Cpu,  //!< Offloaded to host DRAM; must be reloaded first.
};

/** Compact per-pool allocation handle (see KvPool). */
using KvSlot = std::int32_t;

/** "No KV tracked" sentinel (Request::kvSlot default). */
constexpr KvSlot kNoKvSlot = -1;

/**
 * KV allocation bookkeeping for one instance.
 *
 * Allocation is block-granular, mirroring vLLM's PagedAttention: a
 * request's KV charge is its token count rounded up to whole blocks of
 * @ref blockSize tokens, so a request holding 1 token of a 16-token
 * block still occupies the block. Pass block_size_tokens = 1 for exact
 * token-granular accounting.
 *
 * Allocations are keyed by a compact per-pool KvSlot handle that
 * alloc*() returns and the caller carries (the engine stores it in
 * Request::kvSlot). Slots index a dense table and are recycled through
 * a free list on release, so the per-iteration hot calls — growGpu()
 * for every decode-batch member, the swap moves — are branch-cheap
 * O(1) array indexing with no hashing, and the table is bounded by the
 * peak number of *live* requests instead of growing with the largest
 * RequestId the instance ever hosted (the old dense-by-id table cost
 * ~16 B x max-id per instance on million-request sweeps).
 */
class KvPool
{
  public:
    /**
     * @param gpu_capacity_tokens GPU KV capacity in tokens (> 0).
     * @param block_size_tokens Paged-allocation block size (>= 1).
     */
    explicit KvPool(TokenCount gpu_capacity_tokens,
                    TokenCount block_size_tokens = 1);

    TokenCount gpuCapacity() const { return gpuCapacityTokens; }
    TokenCount gpuUsed() const { return gpuUsedTokens; }
    TokenCount gpuFree() const { return gpuCapacityTokens - gpuUsedTokens; }
    TokenCount cpuUsed() const { return cpuUsedTokens; }
    TokenCount blockSize() const { return blockSizeTokens; }

    /**
     * Charged (block-rounded) tokens for a logical KV of @p tokens.
     * Schedulers budget in charged units so their arithmetic agrees
     * with the pool's. Inline: the greedy selection walk calls it for
     * every candidate every iteration.
     */
    TokenCount
    chargeFor(TokenCount tokens) const
    {
        if (tokens <= 0)
            return 0;
        TokenCount blocks =
            (tokens + blockSizeTokens - 1) / blockSizeTokens;
        return blocks * blockSizeTokens;
    }

    /** Largest GPU occupancy ever observed (tokens). */
    TokenCount peakGpuUsed() const { return peakGpuTokens; }

    /** True if @p slot currently tracks a KV allocation. */
    bool
    tracks(KvSlot slot) const
    {
        return slot >= 0 &&
               static_cast<std::size_t>(slot) < entries.size() &&
               entries[static_cast<std::size_t>(slot)].tier !=
                   KvTier::None;
    }

    /** Residency tier of @p slot (None if untracked). */
    KvTier
    tierOf(KvSlot slot) const
    {
        return tracks(slot)
                   ? entries[static_cast<std::size_t>(slot)].tier
                   : KvTier::None;
    }

    /** Logical KV tokens held by @p slot (0 if untracked). */
    TokenCount
    tokensOf(KvSlot slot) const
    {
        return tracks(slot)
                   ? entries[static_cast<std::size_t>(slot)].tokens
                   : 0;
    }

    /** RequestId the slot was allocated for (kNoRequest if
     *  untracked). Diagnostic: panics name the offending request. */
    RequestId
    ownerOf(KvSlot slot) const
    {
        return tracks(slot)
                   ? entries[static_cast<std::size_t>(slot)].owner
                   : kNoRequest;
    }

    /** Charged (block-rounded) KV tokens held by @p slot. */
    TokenCount
    chargedTokensOf(KvSlot slot) const
    {
        return chargeFor(tokensOf(slot));
    }

    /** True if a KV of @p tokens (logical) can be allocated on the
     *  GPU, accounting for block rounding. */
    bool
    canAllocGpu(TokenCount tokens) const
    {
        return chargeFor(tokens) <= gpuFree();
    }

    /** Allocate a fresh GPU-resident KV of @p tokens for @p id.
     *  @return The compact slot handle for all further calls. */
    KvSlot allocGpu(RequestId id, TokenCount tokens);

    /** Allocate a fresh CPU-resident KV (e.g. migration landing in a
     *  full instance). @return The slot handle. */
    KvSlot allocCpu(RequestId id, TokenCount tokens);

    /** Grow a GPU-resident KV by @p delta tokens (decode step).
     *  Inline: runs once per decode-batch member per iteration. */
    void
    growGpu(KvSlot slot, TokenCount delta)
    {
        Entry& e = lookup(slot);
        if (delta < 0 || e.tier != KvTier::Gpu)
            growGpuPanic(e, delta);
        // One-token growth (every decode step) opens a fresh block
        // only when the current size is an exact block multiple.
        TokenCount extra =
            delta == 1 ? (e.tokens % blockSizeTokens == 0
                              ? blockSizeTokens
                              : 0)
                       : chargeFor(e.tokens + delta) -
                             chargeFor(e.tokens);
        if (extra > gpuFree())
            growGpuPanic(e, delta);
        e.tokens += delta;
        gpuUsedTokens += extra;
        if (gpuUsedTokens > peakGpuTokens)
            peakGpuTokens = gpuUsedTokens;
    }

    /** Offload @p slot's KV from GPU to CPU. */
    void moveToCpu(KvSlot slot);

    /** Reload @p slot's KV from CPU to GPU. */
    void moveToGpu(KvSlot slot);

    /** Drop @p slot's KV entirely (request finished or migrated
     *  away); the slot is recycled by a later alloc. */
    void release(KvSlot slot);

    /** Total KV tokens across both tiers (the paper's m_i, in tokens). */
    TokenCount totalFootprintTokens() const
    {
        return gpuUsedTokens + cpuUsedTokens;
    }

    /** Number of requests with KV in either tier. */
    std::size_t numTracked() const { return trackedCount; }

    /** Number of GPU-resident allocations. The greedy selection walk
     *  uses it to stop as soon as every resident has been accounted
     *  and nothing further can be admitted. */
    std::size_t numGpuResident() const { return gpuResidentCount; }

    /** Dense-table length: the peak number of simultaneously live
     *  allocations (memory-bounding invariant under test). */
    std::size_t tableSize() const { return entries.size(); }

  private:
    struct Entry
    {
        TokenCount tokens = 0;       //!< Logical token count.
        RequestId owner = kNoRequest; //!< For diagnostics only.
        KvTier tier = KvTier::None;
    };

    /** Lookup @p slot or panic: misuse is a simulator bug. */
    Entry&
    lookup(KvSlot slot)
    {
        if (!tracks(slot))
            lookupPanic(slot);
        return entries[static_cast<std::size_t>(slot)];
    }

    /** Cold panic paths kept out of line so the inlined hot calls
     *  stay small. */
    [[noreturn]] void lookupPanic(KvSlot slot) const;
    [[noreturn]] void growGpuPanic(const Entry& e,
                                   TokenCount delta) const;

    /** Pop a recycled slot or append a fresh one. */
    KvSlot acquireSlot(RequestId id, TokenCount tokens);

    TokenCount gpuCapacityTokens;
    TokenCount blockSizeTokens;
    TokenCount gpuUsedTokens = 0; //!< Charged (block-rounded) usage.
    TokenCount cpuUsedTokens = 0; //!< Charged (block-rounded) usage.
    TokenCount peakGpuTokens = 0;
    std::size_t trackedCount = 0;
    std::size_t gpuResidentCount = 0;
    std::vector<Entry> entries;  //!< Indexed by KvSlot.
    std::vector<KvSlot> freeSlots; //!< Released slots awaiting reuse.
};

} // namespace model
} // namespace pascal

#endif // PASCAL_MODEL_KV_POOL_HH
