/**
 * @file
 * Two-tier (GPU / CPU) KV-cache pool of one serving instance.
 *
 * Token-granular accounting with whole-request residency: a request's
 * KV cache lives either fully in GPU HBM or fully in CPU DRAM (the
 * offload target), mirroring vLLM's swap-based preemption. The pool
 * enforces the GPU capacity invariant and tracks the peak usage that
 * the oracle-capacity experiments need.
 */

#ifndef PASCAL_MODEL_KV_POOL_HH
#define PASCAL_MODEL_KV_POOL_HH

#include <cstddef>
#include <vector>

#include "src/common/types.hh"

namespace pascal
{
namespace model
{

/** Where a request's KV cache currently resides. */
enum class KvTier
{
    None, //!< No KV allocated (not yet prefilled, or released).
    Gpu,  //!< Resident in GPU HBM; the request is decodable.
    Cpu,  //!< Offloaded to host DRAM; must be reloaded first.
};

/**
 * KV allocation bookkeeping for one instance.
 *
 * Allocation is block-granular, mirroring vLLM's PagedAttention: a
 * request's KV charge is its token count rounded up to whole blocks of
 * @ref blockSize tokens, so a request holding 1 token of a 16-token
 * block still occupies the block. Pass block_size_tokens = 1 for exact
 * token-granular accounting.
 *
 * Per-request state lives in a dense RequestId-indexed table (trace
 * ids are small consecutive integers), so the per-iteration hot calls
 * — growGpu() for every decode-batch member, chargeFor()/residency
 * checks in the schedulers' greedy walk — are branch-cheap O(1) array
 * indexing with no hashing. The table grows to the largest id ever
 * hosted and entries are recycled in place (tier None) on release.
 */
class KvPool
{
  public:
    /**
     * @param gpu_capacity_tokens GPU KV capacity in tokens (> 0).
     * @param block_size_tokens Paged-allocation block size (>= 1).
     */
    explicit KvPool(TokenCount gpu_capacity_tokens,
                    TokenCount block_size_tokens = 1);

    TokenCount gpuCapacity() const { return gpuCapacityTokens; }
    TokenCount gpuUsed() const { return gpuUsedTokens; }
    TokenCount gpuFree() const { return gpuCapacityTokens - gpuUsedTokens; }
    TokenCount cpuUsed() const { return cpuUsedTokens; }
    TokenCount blockSize() const { return blockSizeTokens; }

    /**
     * Charged (block-rounded) tokens for a logical KV of @p tokens.
     * Schedulers budget in charged units so their arithmetic agrees
     * with the pool's.
     */
    TokenCount chargeFor(TokenCount tokens) const;

    /** Largest GPU occupancy ever observed (tokens). */
    TokenCount peakGpuUsed() const { return peakGpuTokens; }

    /** True if the pool tracks KV for @p id. */
    bool
    hasRequest(RequestId id) const
    {
        return find(id) != nullptr;
    }

    /** Residency tier of @p id (None if untracked). */
    KvTier
    tierOf(RequestId id) const
    {
        const Entry* e = find(id);
        return e == nullptr ? KvTier::None : e->tier;
    }

    /** Logical KV tokens held by @p id (0 if untracked). */
    TokenCount
    tokensOf(RequestId id) const
    {
        const Entry* e = find(id);
        return e == nullptr ? 0 : e->tokens;
    }

    /** Charged (block-rounded) KV tokens held by @p id. */
    TokenCount chargedTokensOf(RequestId id) const;

    /** True if a KV of @p tokens (logical) can be allocated on the
     *  GPU, accounting for block rounding. */
    bool canAllocGpu(TokenCount tokens) const;

    /** Allocate a fresh GPU-resident KV of @p tokens for @p id. */
    void allocGpu(RequestId id, TokenCount tokens);

    /** Allocate a fresh CPU-resident KV (e.g. migration landing in a
     *  full instance). */
    void allocCpu(RequestId id, TokenCount tokens);

    /** Grow a GPU-resident KV by @p delta tokens (decode step). */
    void growGpu(RequestId id, TokenCount delta);

    /** Offload @p id's KV from GPU to CPU. */
    void moveToCpu(RequestId id);

    /** Reload @p id's KV from CPU to GPU. */
    void moveToGpu(RequestId id);

    /** Drop @p id's KV entirely (request finished or migrated away). */
    void release(RequestId id);

    /** Total KV tokens across both tiers (the paper's m_i, in tokens). */
    TokenCount totalFootprintTokens() const
    {
        return gpuUsedTokens + cpuUsedTokens;
    }

    /** Number of requests with KV in either tier. */
    std::size_t numTracked() const { return trackedCount; }

  private:
    struct Entry
    {
        TokenCount tokens = 0;       //!< Logical token count.
        KvTier tier = KvTier::None;
    };

    /** Dense-table lookup; nullptr if untracked. */
    const Entry*
    find(RequestId id) const
    {
        if (id < 0 || static_cast<std::size_t>(id) >= entries.size())
            return nullptr;
        const Entry& e = entries[static_cast<std::size_t>(id)];
        return e.tier == KvTier::None ? nullptr : &e;
    }

    /** Lookup @p id or panic: misuse is a simulator bug. */
    Entry& lookup(RequestId id);

    /** Grow the table so @p id is indexable; returns its entry. */
    Entry& slot(RequestId id);

    TokenCount gpuCapacityTokens;
    TokenCount blockSizeTokens;
    TokenCount gpuUsedTokens = 0; //!< Charged (block-rounded) usage.
    TokenCount cpuUsedTokens = 0; //!< Charged (block-rounded) usage.
    TokenCount peakGpuTokens = 0;
    std::size_t trackedCount = 0;
    std::vector<Entry> entries; //!< Indexed by RequestId.
};

} // namespace model
} // namespace pascal

#endif // PASCAL_MODEL_KV_POOL_HH
