#include "src/model/model_config.hh"

#include "src/common/log.hh"

namespace pascal
{
namespace model
{

std::int64_t
ModelConfig::numParams() const
{
    std::int64_t h = hiddenSize;
    std::int64_t kv_dim = static_cast<std::int64_t>(numKvHeads) * headDim;
    std::int64_t q_dim = static_cast<std::int64_t>(numHeads) * headDim;

    // Attention: Q, K, V projections + output projection.
    std::int64_t attn = h * q_dim + 2 * h * kv_dim + q_dim * h;
    // SwiGLU MLP: gate + up + down.
    std::int64_t mlp = 3 * h * static_cast<std::int64_t>(ffnIntermediate);
    std::int64_t per_layer = attn + mlp;

    // Untied input embedding + LM head.
    std::int64_t embed = 2 * static_cast<std::int64_t>(vocabSize) * h;

    return per_layer * numLayers + embed;
}

Bytes
ModelConfig::weightBytes() const
{
    return numParams() * bytesPerParam;
}

Bytes
ModelConfig::kvBytesPerToken() const
{
    return static_cast<Bytes>(2) * numLayers * numKvHeads * headDim *
           bytesPerKvScalar;
}

void
ModelConfig::validate() const
{
    if (numLayers <= 0 || hiddenSize <= 0 || numHeads <= 0 ||
        numKvHeads <= 0 || headDim <= 0 || ffnIntermediate <= 0 ||
        vocabSize <= 0) {
        fatal("ModelConfig '" + name + "' has non-positive dimensions");
    }
    if (numKvHeads > numHeads)
        fatal("ModelConfig '" + name + "': more KV heads than Q heads");
    if (bytesPerParam <= 0 || bytesPerKvScalar <= 0)
        fatal("ModelConfig '" + name + "': non-positive datatype size");
}

ModelConfig
ModelConfig::deepseekR1Distill32B()
{
    ModelConfig cfg;
    cfg.name = "DeepSeek-R1-Distill-Qwen-32B";
    cfg.numLayers = 64;
    cfg.hiddenSize = 5120;
    cfg.numHeads = 40;
    cfg.numKvHeads = 8;
    cfg.headDim = 128;
    cfg.ffnIntermediate = 27648;
    cfg.vocabSize = 152064;
    return cfg;
}

ModelConfig
ModelConfig::tiny7B()
{
    ModelConfig cfg;
    cfg.name = "tiny-7B";
    cfg.numLayers = 32;
    cfg.hiddenSize = 4096;
    cfg.numHeads = 32;
    cfg.numKvHeads = 8;
    cfg.headDim = 128;
    cfg.ffnIntermediate = 11008;
    cfg.vocabSize = 32000;
    return cfg;
}

} // namespace model
} // namespace pascal
