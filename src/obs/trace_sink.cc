#include "src/obs/trace_sink.hh"

#include <cinttypes>
#include <cstdio>
#include <unordered_map>

namespace pascal
{
namespace obs
{

const char*
traceCatName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Iteration:
        return "iteration";
      case TraceCat::Plan:
        return "plan";
      case TraceCat::Admission:
        return "admission";
      case TraceCat::Eviction:
        return "eviction";
      case TraceCat::Phase:
        return "phase";
      case TraceCat::Migration:
        return "migration";
      case TraceCat::Slo:
        return "slo";
      case TraceCat::Fault:
        return "fault";
      case TraceCat::Retry:
        return "retry";
    }
    return "unknown";
}

const char*
traceNameStr(TraceName name)
{
    switch (name) {
      case TraceName::Iteration:
        return "iteration";
      case TraceName::PlanReuse:
        return "reuse";
      case TraceName::PlanRepair:
        return "repair";
      case TraceName::PlanFullWalk:
        return "full_walk";
      case TraceName::Admit:
        return "admit";
      case TraceName::Evict:
        return "evict";
      case TraceName::PhaseStay:
        return "stay";
      case TraceName::PhaseMigrate:
        return "migrate";
      case TraceName::KvTransfer:
        return "kv_transfer";
      case TraceName::SloOk:
        return "ok";
      case TraceName::SloViolated:
        return "violated";
      case TraceName::Crash:
        return "crash";
      case TraceName::Recover:
        return "recover";
      case TraceName::DrainStart:
        return "drain_start";
      case TraceName::DrainDeadline:
        return "drain_deadline";
      case TraceName::StragglerStart:
        return "straggler_start";
      case TraceName::StragglerEnd:
        return "straggler_end";
      case TraceName::LinkFail:
        return "link_fail";
      case TraceName::RetryScheduled:
        return "scheduled";
      case TraceName::Shed:
        return "shed";
      case TraceName::TerminalFail:
        return "terminal_fail";
      case TraceName::ClassShed:
        return "class_shed";
      case TraceName::DeadlineExceeded:
        return "deadline_exceeded";
      case TraceName::Demoted:
        return "demoted";
    }
    return "unknown";
}

namespace
{

const char*
argKeyStr(TraceArg key)
{
    switch (key) {
      case TraceArg::Value:
        return "v";
      case TraceArg::Request:
        return "req";
      case TraceArg::Reason:
        return "reason";
      case TraceArg::Batch:
        return "batch";
      case TraceArg::Tokens:
        return "tokens";
      case TraceArg::None:
        break;
    }
    return "v";
}

/** Microsecond timestamp with fixed sub-microsecond precision — the
 *  one float format in the export, so byte identity only needs
 *  deterministic virtual time. */
void
appendUs(std::string& out, double seconds)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
    out += buf;
}

} // namespace

TraceSink::TraceSink(std::size_t capacity)
{
    if (capacity == 0)
        capacity = 1;
    ring.reserve(capacity);
    ring.resize(0);
    // Capacity is fixed up front: push() never reallocates.
    ringCapacity = capacity;
}

void
TraceSink::push(const TraceEvent& e)
{
    ++recorded;
    if (ring.size() < ringCapacity) {
        ring.push_back(e);
        return;
    }
    // Guard before warnOnce: the message is constructed per call, and
    // this is the steady-state path once the ring has wrapped.
    if (wrapWarn.calls() == 0) {
        warnOnce(wrapWarn,
                 "trace ring full (" + std::to_string(ringCapacity) +
                     " events); oldest events are being dropped");
    }
    ring[head] = e;
    if (++head == ringCapacity)
        head = 0;
}

template <typename Fn>
void
TraceSink::forEach(Fn&& fn) const
{
    // Oldest first: once wrapped, `head` is the oldest slot.
    const std::size_t n = ring.size();
    for (std::size_t i = 0; i < n; ++i)
        fn(ring[(head + i) % n]);
}

void
TraceSink::instant(TraceCat cat, TraceName name, std::int32_t tid,
                   double ts, TraceArg arg_key, std::int64_t arg)
{
    TraceEvent e;
    e.ts = ts;
    e.tid = tid;
    e.ph = 'i';
    e.cat = cat;
    e.name = name;
    e.argKey = arg_key;
    e.arg = arg;
    push(e);
}

void
TraceSink::complete(TraceCat cat, TraceName name, std::int32_t tid,
                    double ts, double dur, TraceArg arg_key,
                    std::int64_t arg)
{
    TraceEvent e;
    e.ts = ts;
    e.dur = dur;
    e.tid = tid;
    e.ph = 'X';
    e.cat = cat;
    e.name = name;
    e.argKey = arg_key;
    e.arg = arg;
    push(e);
}

void
TraceSink::asyncBegin(TraceCat cat, TraceName name, std::int32_t tid,
                      double ts, std::uint64_t id, TraceArg arg_key,
                      std::int64_t arg)
{
    TraceEvent e;
    e.ts = ts;
    e.id = id;
    e.tid = tid;
    e.ph = 'b';
    e.cat = cat;
    e.name = name;
    e.argKey = arg_key;
    e.arg = arg;
    push(e);
}

void
TraceSink::asyncEnd(TraceCat cat, TraceName name, std::int32_t tid,
                    double ts, std::uint64_t id)
{
    TraceEvent e;
    e.ts = ts;
    e.id = id;
    e.tid = tid;
    e.ph = 'e';
    e.cat = cat;
    e.name = name;
    push(e);
}

void
TraceSink::setReasonTable(const char* const* names, std::size_t n)
{
    reasonNames = names;
    numReasonNames = n;
}

std::uint64_t
TraceSink::numDropped() const
{
    return recorded - static_cast<std::uint64_t>(ring.size());
}

std::size_t
TraceSink::size() const
{
    return ring.size();
}

std::string
TraceSink::writeJson() const
{
    std::string out;
    out.reserve(ring.size() * 96 + 128);
    out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";

    // Async begin/end pairs are matched by (cat, id). Ring eviction
    // can orphan an end (its begin overwritten) or leave a span open
    // (end not yet recorded); the export drops the former and closes
    // the latter at the last timestamp so every emitted pair matches.
    std::unordered_map<std::uint64_t, std::uint32_t> openSpans;
    auto spanKey = [](const TraceEvent& e) {
        return (static_cast<std::uint64_t>(e.cat) << 56) ^ e.id;
    };
    double lastTs = 0.0;
    bool first = true;

    auto emit = [&](const TraceEvent& e) {
        if (!first)
            out += ",\n";
        first = false;
        out += "{\"name\": \"";
        out += traceNameStr(e.name);
        out += "\", \"cat\": \"";
        out += traceCatName(e.cat);
        out += "\", \"ph\": \"";
        out += e.ph;
        out += "\", \"pid\": 0, \"tid\": ";
        out += std::to_string(e.tid);
        out += ", \"ts\": ";
        appendUs(out, e.ts);
        if (e.ph == 'X') {
            out += ", \"dur\": ";
            appendUs(out, e.dur);
        }
        if (e.ph == 'b' || e.ph == 'e') {
            out += ", \"id\": \"";
            out += std::to_string(e.id);
            out += "\"";
        }
        if (e.argKey != TraceArg::None) {
            out += ", \"args\": {\"";
            out += argKeyStr(e.argKey);
            out += "\": ";
            if (e.argKey == TraceArg::Reason && reasonNames != nullptr &&
                e.arg >= 0 &&
                static_cast<std::size_t>(e.arg) < numReasonNames) {
                out += "\"";
                out += reasonNames[static_cast<std::size_t>(e.arg)];
                out += "\"";
            } else {
                out += std::to_string(e.arg);
            }
            out += "}";
        }
        out += "}";
    };

    forEach([&](const TraceEvent& e) {
        if (e.ts > lastTs)
            lastTs = e.ts;
        if (e.ph == 'b') {
            ++openSpans[spanKey(e)];
        } else if (e.ph == 'e') {
            auto it = openSpans.find(spanKey(e));
            if (it == openSpans.end() || it->second == 0)
                return; // Orphaned by ring eviction: drop.
            if (--it->second == 0)
                openSpans.erase(it);
        }
        emit(e);
    });

    // Close spans still open at export so B/E pairing always holds.
    forEach([&](const TraceEvent& e) {
        if (e.ph != 'b')
            return;
        auto it = openSpans.find(spanKey(e));
        if (it == openSpans.end() || it->second == 0)
            return;
        --it->second;
        TraceEvent close = e;
        close.ph = 'e';
        close.ts = lastTs;
        close.argKey = TraceArg::None;
        emit(close);
    });

    out += "\n]}\n";
    return out;
}

} // namespace obs
} // namespace pascal
