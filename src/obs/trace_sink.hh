/**
 * @file
 * TraceSink: Chrome/Perfetto trace-event recording from a bounded
 * ring buffer.
 *
 * Instrumentation points (Instance/Cluster) record compact POD events
 * stamped with deterministic virtual time; writeJson() renders the
 * Chrome trace-event format (https://ui.perfetto.dev loads it
 * directly). Tracks map pid 0 / tid <instance id>, with cluster-level
 * events (SLO verdict flips, phase-transition decisions) on the
 * dedicated kClusterTrack tid.
 *
 * Event vocabulary (category / name / phase):
 *   iteration / iteration      "X"  one engine step, dur = step time,
 *                                   arg batch = decode batch size
 *   plan      / reuse          "i"  boundary ran the previous plan
 *             / repair         "i"  O(delta) patch; arg reason = why
 *                                   verbatim reuse declined
 *             / full_walk      "i"  full greedy walk; arg reason =
 *                                   why the repair path declined
 *   admission / admit          "i"  request admitted, arg req
 *   eviction  / evict          "i"  request swapped out, arg req
 *   phase     / stay|migrate   "i"  reasoning->answering decision
 *   migration / kv_transfer    "b/e" async KV move, id = request id
 *   slo       / ok|violated    "i"  instance t_i verdict flip
 *   fault     / crash          "i"  instance went down (GPU KV lost)
 *             / recover        "i"  instance rejoined after MTTR
 *             / drain_start    "i"  planned decommission began
 *             / drain_deadline "i"  grace expired, instance down
 *             / straggler_start"i"  slowdown window opened, arg v =
 *                                   latency multiplier x1000
 *             / straggler_end  "i"  slowdown window closed
 *             / link_fail      "i"  KV transfer aborted in flight,
 *                                   arg req
 *   retry     / scheduled      "i"  failover re-placement queued with
 *                                   backoff, arg req
 *             / shed           "i"  arrival rejected below the shed
 *                                   floor, arg req
 *             / terminal_fail  "i"  retry budget exhausted, arg req
 *
 * Determinism: timestamps are virtual seconds (rendered as
 * microseconds), recording order is simulation order, and the ring is
 * per-run — two runs of the same seed produce byte-identical JSON,
 * and SweepRunner grid points trace identically at any thread count.
 *
 * When the ring wraps, the oldest events are overwritten (warnOnce
 * diagnoses the first drop). Export repairs the seam: async ends
 * whose begin was evicted are dropped, and spans still open at export
 * get a synthetic end at the last recorded timestamp, so the
 * validator's matched-pair check always holds.
 */

#ifndef PASCAL_OBS_TRACE_SINK_HH
#define PASCAL_OBS_TRACE_SINK_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/log.hh"

namespace pascal
{
namespace obs
{

/** Event categories (the Chrome "cat" field). */
enum class TraceCat : std::uint8_t
{
    Iteration,
    Plan,
    Admission,
    Eviction,
    Phase,
    Migration,
    Slo,
    Fault,
    Retry,
};

/** Event names within their category (the Chrome "name" field). */
enum class TraceName : std::uint8_t
{
    Iteration,
    PlanReuse,
    PlanRepair,
    PlanFullWalk,
    Admit,
    Evict,
    PhaseStay,
    PhaseMigrate,
    KvTransfer,
    SloOk,
    SloViolated,
    Crash,
    Recover,
    DrainStart,
    DrainDeadline,
    StragglerStart,
    StragglerEnd,
    LinkFail,
    RetryScheduled,
    Shed,
    TerminalFail,
    ClassShed,         //!< SLO-class admission rejected the arrival.
    DeadlineExceeded,  //!< Per-request deadline timeout fired.
    Demoted,           //!< Expired request demoted to best-effort.
};

/** Key under which an event's numeric argument is rendered. */
enum class TraceArg : std::uint8_t
{
    None,   //!< No args object.
    Value,  //!< "v"
    Request,//!< "req"
    Reason, //!< "reason" (rendered as a string via the reason table).
    Batch,  //!< "batch"
    Tokens, //!< "tokens"
};

const char* traceCatName(TraceCat cat);
const char* traceNameStr(TraceName name);

/** One recorded event (compact POD; strings are table indices). */
struct TraceEvent
{
    double ts = 0.0;      //!< Virtual seconds.
    double dur = 0.0;     //!< "X" events only.
    std::uint64_t id = 0; //!< Async pair id ("b"/"e" events).
    std::int64_t arg = 0;
    std::int32_t tid = 0;
    char ph = 'i';
    TraceCat cat = TraceCat::Iteration;
    TraceName name = TraceName::Iteration;
    TraceArg argKey = TraceArg::None;
};

/** Bounded-ring Chrome trace recorder (see file header). */
class TraceSink
{
  public:
    /** tid used for cluster-level (non-instance) tracks. */
    static constexpr std::int32_t kClusterTrack = 9999;

    /** @param capacity Ring capacity in events (>= 1). */
    explicit TraceSink(std::size_t capacity);

    /** Record an instant event (ph "i"). */
    void instant(TraceCat cat, TraceName name, std::int32_t tid,
                 double ts, TraceArg arg_key = TraceArg::None,
                 std::int64_t arg = 0);

    /** Record a complete event (ph "X") with duration @p dur. */
    void complete(TraceCat cat, TraceName name, std::int32_t tid,
                  double ts, double dur,
                  TraceArg arg_key = TraceArg::None,
                  std::int64_t arg = 0);

    /** Record an async begin (ph "b"); pair with asyncEnd via
     *  (category, @p id). */
    void asyncBegin(TraceCat cat, TraceName name, std::int32_t tid,
                    double ts, std::uint64_t id,
                    TraceArg arg_key = TraceArg::None,
                    std::int64_t arg = 0);

    /** Record the matching async end (ph "e"). */
    void asyncEnd(TraceCat cat, TraceName name, std::int32_t tid,
                  double ts, std::uint64_t id);

    /**
     * Map reason codes to strings for TraceArg::Reason rendering
     * (wired by the owner with core's decline-reason table; codes
     * outside the table render numerically). @p names must outlive
     * the sink.
     */
    void setReasonTable(const char* const* names, std::size_t n);

    /** Events recorded over the sink's lifetime (including ones the
     *  ring has since overwritten). */
    std::uint64_t numRecorded() const { return recorded; }

    /** Events overwritten by ring wrap-around. */
    std::uint64_t numDropped() const;

    /** Events currently held. */
    std::size_t size() const;

    /** Render the ring as Chrome trace-event JSON (see file header
     *  for the export-seam cleanup). Deterministic byte output. */
    std::string writeJson() const;

  private:
    void push(const TraceEvent& e);

    /** Oldest-first visit of the ring's current contents. */
    template <typename Fn>
    void forEach(Fn&& fn) const;

    std::vector<TraceEvent> ring;
    std::size_t ringCapacity = 1;
    std::size_t head = 0;      //!< Oldest slot once wrapped.
    std::uint64_t recorded = 0;
    WarnSite wrapWarn;

    const char* const* reasonNames = nullptr;
    std::size_t numReasonNames = 0;
};

} // namespace obs
} // namespace pascal

#endif // PASCAL_OBS_TRACE_SINK_HH
