/**
 * @file
 * Telemetry knobs carried by SystemConfig.
 *
 * Kept in its own dependency-free header so src/cluster can embed it
 * without pulling the trace/streaming machinery into every config
 * consumer. All knobs default off: a default-configured run pays only
 * the plain counter increments the engine always had, and its
 * RunResult is byte-identical whether or not telemetry is enabled
 * (telemetry is pure observation — the force-matrix and on/off grid
 * tests pin this).
 */

#ifndef PASCAL_OBS_TELEMETRY_CONFIG_HH
#define PASCAL_OBS_TELEMETRY_CONFIG_HH

#include <cstddef>

namespace pascal
{
namespace obs
{

/** Per-run observability configuration. */
struct TelemetryConfig
{
    /**
     * Record Chrome/Perfetto trace events (plan boundaries, phase
     * transitions, migrations, admissions/evictions, SLO verdict
     * flips) into a bounded ring buffer, stamped with virtual time so
     * two runs of the same seed produce byte-identical traces.
     */
    bool traceEnabled = false;

    /** Ring capacity in events; oldest events are overwritten once
     *  full (export drops orphaned async ends and closes still-open
     *  spans so the emitted JSON always validates). */
    std::size_t traceCapacity = 1u << 18;

    /**
     * Replace per-request RequestMetrics accumulation with streaming
     * Welford moments + quantile sketches, so chunk recycling fully
     * bounds resident memory on soak runs. RunResult::perRequest
     * stays empty; means/counts in the aggregate are exact and the
     * reported percentiles carry a <= 0.5 % relative-error guarantee
     * from the log-bucketed sketch. Implies chunk recycling.
     */
    bool streamingMetrics = false;
};

} // namespace obs
} // namespace pascal

#endif // PASCAL_OBS_TELEMETRY_CONFIG_HH
