/**
 * @file
 * Streaming metric sketches: bounded-memory replacement for the
 * per-request RequestMetrics vector.
 *
 * With --streaming-metrics the cluster folds each request's metrics
 * into fixed-size accumulators the moment its arena chunk retires,
 * instead of growing a RunResult::perRequest row per request. Chunk
 * recycling then fully bounds simulation memory: a 10M-request soak
 * holds only live requests plus these sketches.
 *
 * Per metric family (TTFT, E2E, answering, blocking, QoE, KV
 * transfer):
 *   - stats::Summary — exact count/mean/min/max/stddev (Welford);
 *     means and maxima in the aggregate are exact, not estimates.
 *   - LogHistogram — log-spaced buckets (gamma = 1.005). Quantiles
 *     report the geometric bucket center, so the relative error is
 *     at most sqrt(gamma) - 1 ~= 0.25%, well inside the 1% tolerance
 *     the tier-1 test pins for p50/p95/p99 TTFT.
 *   - P2Quantile — the classic five-marker P² estimator (Jain &
 *     Chlamtac 1985), kept as a second, O(1)-memory opinion for
 *     diagnostics and unit tests.
 *
 * Folding is deterministic: requests retire in simulation order, and
 * every accumulator is order-insensitive for the values it reports
 * exactly (count/mean via Welford, min/max) and order-dependent only
 * in ways the same seed reproduces bit-for-bit.
 */

#ifndef PASCAL_OBS_STREAMING_METRICS_HH
#define PASCAL_OBS_STREAMING_METRICS_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/stats.hh"
#include "src/common/types.hh"
#include "src/qoe/metrics.hh"

namespace pascal
{
namespace obs
{

/**
 * Log-spaced histogram for positive samples.
 *
 * Bucket i covers [minValue * gamma^i, minValue * gamma^(i+1));
 * samples below minValue (including zero — blocking latency is often
 * exactly 0) land in a dedicated zero bucket reported as 0.0. The
 * bucket array grows lazily to span only the index range actually
 * hit, so a family whose samples cover three decades costs a few
 * thousand uint64 slots.
 */
class LogHistogram
{
  public:
    /** @param gamma Bucket growth ratio (> 1).
     *  @param min_value Smallest resolvable sample (> 0). */
    explicit LogHistogram(double gamma = 1.005,
                          double min_value = 1e-9);

    /** Fold one sample (negatives count as zero). */
    void add(double x);

    /** Samples folded so far. */
    std::uint64_t count() const { return total; }

    /**
     * Quantile estimate at percentile @p p in [0, 100] via
     * nearest-rank over bucket counts; returns the geometric center
     * of the selected bucket (0 for an empty histogram).
     */
    double quantile(double p) const;

    /** Worst-case relative error of quantile(): sqrt(gamma) - 1. */
    double relativeError() const;

    /** Allocated bucket slots (memory-bound diagnostics). */
    std::size_t numBuckets() const { return buckets.size(); }

  private:
    std::int64_t bucketIndex(double x) const;

    double gammaVal;
    double minValue;
    double invLogGamma;
    std::uint64_t zeroCount = 0;
    std::uint64_t total = 0;
    /** buckets[k] counts bucket index baseIndex + k. */
    std::vector<std::uint64_t> buckets;
    std::int64_t baseIndex = 0;
};

/**
 * P² single-quantile estimator (Jain & Chlamtac 1985): five markers,
 * O(1) memory, parabolic marker adjustment. Exact until five samples
 * arrive.
 */
class P2Quantile
{
  public:
    /** @param p Quantile in (0, 1), e.g. 0.99. */
    explicit P2Quantile(double p);

    /** Fold one sample. */
    void add(double x);

    /** Current estimate (0 when empty; exact for n <= 5). */
    double value() const;

    /** Samples folded so far. */
    std::uint64_t count() const { return n; }

  private:
    double prob;
    std::uint64_t n = 0;
    std::array<double, 5> q{};  //!< Marker heights.
    std::array<double, 5> pos{};//!< Marker positions (1-based).
    std::array<double, 5> want{};//!< Desired positions.
};

/** One metric family: exact moments plus two quantile sketches. */
class MetricFamily
{
  public:
    MetricFamily();

    /** Fold one sample into every accumulator. */
    void add(double x);

    std::size_t count() const { return moments.count(); }
    double mean() const { return moments.mean(); }
    double min() const { return moments.min(); }
    double max() const { return moments.max(); }
    double stddev() const { return moments.stddev(); }

    /** Histogram quantile at percentile @p p in [0, 100]. */
    double quantile(double p) const { return hist.quantile(p); }

    /** The P² cross-check estimates. */
    double p2Median() const { return p2_50.value(); }
    double p2Tail() const { return p2_99.value(); }

    const LogHistogram& histogram() const { return hist; }

  private:
    stats::Summary moments;
    LogHistogram hist;
    P2Quantile p2_50;
    P2Quantile p2_99;
};

/**
 * Bounded-memory aggregate over a run's requests. Copyable: the
 * cluster snapshots it at result time and folds still-live requests
 * into the copy without disturbing the running accumulation.
 */
class StreamingMetrics
{
  public:
    /** Fold one request's metrics (unfinished requests contribute
     *  only arrival/count, mirroring qoe::aggregateMetrics). */
    void fold(const qoe::RequestMetrics& m);

    /** Render the same rollup qoe::aggregateMetrics computes from
     *  the full per-request vector, with sketch percentiles. */
    qoe::AggregateMetrics aggregate() const;

    std::size_t numRequests() const { return requests; }
    std::size_t numFinished() const { return finished; }

    const MetricFamily& ttft() const { return ttftFam; }
    const MetricFamily& e2e() const { return e2eFam; }
    const MetricFamily& answering() const { return answeringFam; }
    const MetricFamily& blocking() const { return blockingFam; }
    const MetricFamily& qoe() const { return qoeFam; }
    const MetricFamily& kvTransfer() const { return kvFam; }

  private:
    MetricFamily ttftFam;
    MetricFamily e2eFam;
    MetricFamily answeringFam;
    MetricFamily blockingFam;
    MetricFamily qoeFam;
    MetricFamily kvFam;

    std::size_t requests = 0;
    std::size_t finished = 0;
    std::size_t violations = 0;
    Time firstArrival = kTimeInfinity;
    Time lastFinish = 0.0;
    TokenCount totalTokens = 0;
    int migrations = 0;
};

} // namespace obs
} // namespace pascal

#endif // PASCAL_OBS_STREAMING_METRICS_HH
