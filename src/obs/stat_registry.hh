/**
 * @file
 * Gem5-style statistics registry: typed Counter/Gauge/Distribution
 * handles registered by hierarchical dotted name
 * ("instance.3.plan.repairs", "cluster.view.refreshes").
 *
 * Registration is non-owning for counters: components keep their
 * plain std::uint64_t members and hand the registry a pointer, so the
 * hot-path increment is exactly the bare `++counter` it always was —
 * the registry only reads at dump() time. Gauges are polled functors
 * (KV pool occupancy, derived totals); distributions are
 * registry-owned Welford summaries components add() into through a
 * cached pointer.
 *
 * dump() walks the entries in registration order (which is itself
 * deterministic — construction order of the owning Cluster), so two
 * runs of the same configuration produce byte-identical dumps, and a
 * serial sweep matches a multi-threaded one row for row.
 */

#ifndef PASCAL_OBS_STAT_REGISTRY_HH
#define PASCAL_OBS_STAT_REGISTRY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/common/stats.hh"

namespace pascal
{
namespace obs
{

/** What a registered stat measures. */
enum class StatKind : std::uint8_t
{
    Counter,      //!< Monotonic event count (integer).
    Gauge,        //!< Point-in-time level, polled at dump.
    Distribution, //!< Welford summary of a sample stream.
};

/** Name of @p kind for reports ("counter"/"gauge"/"distribution"). */
const char* statKindName(StatKind kind);

/** One dumped stat. Counters/gauges use `value`; distributions use
 *  the count/mean/min/max/stddev block (min/max are 0 when empty so
 *  serialized dumps never carry infinities). */
struct StatValue
{
    std::string name;
    StatKind kind = StatKind::Counter;
    double value = 0.0;
    std::size_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double stddev = 0.0;
};

bool operator==(const StatValue& a, const StatValue& b);
inline bool
operator!=(const StatValue& a, const StatValue& b)
{
    return !(a == b);
}

/** A full registry dump in registration order. */
using StatDump = std::vector<StatValue>;

/** Find @p name in @p dump (nullptr if absent). */
const StatValue* findStat(const StatDump& dump, const std::string& name);

/** Hierarchical stat registry (see file header). */
class StatRegistry
{
  public:
    /** Register a component-owned monotonic counter. @p ptr must
     *  outlive the registry. */
    void counter(std::string name, const std::uint64_t* ptr);

    /** Register a derived counter polled at dump() (totals, counts
     *  held in another type). */
    void counter(std::string name, std::function<std::uint64_t()> poll);

    /** Register a polled gauge. */
    void gauge(std::string name, std::function<double()> poll);

    /** Register a registry-owned distribution and return the summary
     *  the component add()s samples into. Stable address for the
     *  registry's lifetime. */
    stats::Summary& distribution(std::string name);

    /** Snapshot every registered stat, in registration order. */
    StatDump dump() const;

    std::size_t size() const { return entries.size(); }

  private:
    struct Entry
    {
        std::string name;
        StatKind kind;
        const std::uint64_t* counterPtr = nullptr;
        std::function<std::uint64_t()> counterPoll;
        std::function<double()> gaugePoll;
        const stats::Summary* dist = nullptr;
    };

    /** Duplicate names are registration bugs; panic early. */
    void checkName(const std::string& name) const;

    std::vector<Entry> entries;
    std::deque<stats::Summary> ownedDists; //!< Stable addresses.
};

} // namespace obs
} // namespace pascal

#endif // PASCAL_OBS_STAT_REGISTRY_HH
