#include "src/obs/stat_registry.hh"

#include "src/common/log.hh"

namespace pascal
{
namespace obs
{

const char*
statKindName(StatKind kind)
{
    switch (kind) {
      case StatKind::Counter:
        return "counter";
      case StatKind::Gauge:
        return "gauge";
      case StatKind::Distribution:
        return "distribution";
    }
    return "unknown";
}

bool
operator==(const StatValue& a, const StatValue& b)
{
    return a.name == b.name && a.kind == b.kind && a.value == b.value &&
           a.count == b.count && a.mean == b.mean && a.min == b.min &&
           a.max == b.max && a.stddev == b.stddev;
}

const StatValue*
findStat(const StatDump& dump, const std::string& name)
{
    for (const auto& row : dump) {
        if (row.name == name)
            return &row;
    }
    return nullptr;
}

void
StatRegistry::checkName(const std::string& name) const
{
    if (name.empty())
        panic("StatRegistry: empty stat name");
    for (const auto& e : entries) {
        if (e.name == name)
            panic("StatRegistry: duplicate stat name '" + name + "'");
    }
}

void
StatRegistry::counter(std::string name, const std::uint64_t* ptr)
{
    checkName(name);
    if (ptr == nullptr)
        panic("StatRegistry: null counter pointer for '" + name + "'");
    Entry e;
    e.name = std::move(name);
    e.kind = StatKind::Counter;
    e.counterPtr = ptr;
    entries.push_back(std::move(e));
}

void
StatRegistry::counter(std::string name,
                      std::function<std::uint64_t()> poll)
{
    checkName(name);
    Entry e;
    e.name = std::move(name);
    e.kind = StatKind::Counter;
    e.counterPoll = std::move(poll);
    entries.push_back(std::move(e));
}

void
StatRegistry::gauge(std::string name, std::function<double()> poll)
{
    checkName(name);
    Entry e;
    e.name = std::move(name);
    e.kind = StatKind::Gauge;
    e.gaugePoll = std::move(poll);
    entries.push_back(std::move(e));
}

stats::Summary&
StatRegistry::distribution(std::string name)
{
    checkName(name);
    ownedDists.emplace_back();
    Entry e;
    e.name = std::move(name);
    e.kind = StatKind::Distribution;
    e.dist = &ownedDists.back();
    entries.push_back(std::move(e));
    return ownedDists.back();
}

StatDump
StatRegistry::dump() const
{
    StatDump out;
    out.reserve(entries.size());
    for (const auto& e : entries) {
        StatValue v;
        v.name = e.name;
        v.kind = e.kind;
        switch (e.kind) {
          case StatKind::Counter:
            v.value = static_cast<double>(
                e.counterPtr != nullptr ? *e.counterPtr
                                        : e.counterPoll());
            break;
          case StatKind::Gauge:
            v.value = e.gaugePoll();
            break;
          case StatKind::Distribution:
            v.count = e.dist->count();
            v.mean = e.dist->mean();
            v.min = v.count ? e.dist->min() : 0.0;
            v.max = v.count ? e.dist->max() : 0.0;
            v.stddev = e.dist->stddev();
            break;
        }
        out.push_back(std::move(v));
    }
    return out;
}

} // namespace obs
} // namespace pascal
