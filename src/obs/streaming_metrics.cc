#include "src/obs/streaming_metrics.hh"

#include <algorithm>
#include <cmath>

#include "src/common/log.hh"

namespace pascal
{
namespace obs
{

LogHistogram::LogHistogram(double gamma, double min_value)
    : gammaVal(gamma), minValue(min_value)
{
    if (!(gamma > 1.0))
        panic("LogHistogram: gamma must exceed 1");
    if (!(min_value > 0.0))
        panic("LogHistogram: min_value must be positive");
    invLogGamma = 1.0 / std::log(gamma);
}

std::int64_t
LogHistogram::bucketIndex(double x) const
{
    return static_cast<std::int64_t>(
        std::floor(std::log(x / minValue) * invLogGamma));
}

void
LogHistogram::add(double x)
{
    ++total;
    if (!(x >= minValue)) {
        ++zeroCount;
        return;
    }
    const std::int64_t idx = bucketIndex(x);
    if (buckets.empty()) {
        baseIndex = idx;
        buckets.push_back(0);
    } else if (idx < baseIndex) {
        buckets.insert(buckets.begin(),
                       static_cast<std::size_t>(baseIndex - idx), 0);
        baseIndex = idx;
    } else if (idx >= baseIndex +
                          static_cast<std::int64_t>(buckets.size())) {
        buckets.resize(
            static_cast<std::size_t>(idx - baseIndex) + 1, 0);
    }
    ++buckets[static_cast<std::size_t>(idx - baseIndex)];
}

double
LogHistogram::quantile(double p) const
{
    if (total == 0)
        return 0.0;
    p = std::min(100.0, std::max(0.0, p));
    // Nearest rank, 1-based; p = 0 maps to the first sample.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total)));
    if (rank == 0)
        rank = 1;
    if (rank <= zeroCount)
        return 0.0;
    std::uint64_t cum = zeroCount;
    for (std::size_t k = 0; k < buckets.size(); ++k) {
        cum += buckets[k];
        if (rank <= cum) {
            const double i =
                static_cast<double>(baseIndex +
                                    static_cast<std::int64_t>(k));
            return minValue * std::pow(gammaVal, i + 0.5);
        }
    }
    // Unreachable: cum == total after the loop and rank <= total.
    return minValue *
           std::pow(gammaVal,
                    static_cast<double>(
                        baseIndex +
                        static_cast<std::int64_t>(buckets.size())));
}

double
LogHistogram::relativeError() const
{
    return std::sqrt(gammaVal) - 1.0;
}

P2Quantile::P2Quantile(double p) : prob(p)
{
    if (!(p > 0.0 && p < 1.0))
        panic("P2Quantile: p must lie in (0, 1)");
}

void
P2Quantile::add(double x)
{
    if (n < 5) {
        q[n] = x;
        ++n;
        if (n == 5) {
            std::sort(q.begin(), q.end());
            for (int i = 0; i < 5; ++i)
                pos[i] = i + 1;
            want[0] = 1.0;
            want[1] = 1.0 + 2.0 * prob;
            want[2] = 1.0 + 4.0 * prob;
            want[3] = 3.0 + 2.0 * prob;
            want[4] = 5.0;
        }
        return;
    }

    // Locate the cell containing x and bump extreme markers.
    int cell;
    if (x < q[0]) {
        q[0] = x;
        cell = 0;
    } else if (x >= q[4]) {
        q[4] = std::max(q[4], x);
        cell = 3;
    } else {
        cell = 0;
        while (cell < 3 && x >= q[cell + 1])
            ++cell;
    }
    for (int i = cell + 1; i < 5; ++i)
        pos[i] += 1.0;
    ++n;

    // Desired positions advance by the marker increments.
    want[1] += prob / 2.0;
    want[2] += prob;
    want[3] += (1.0 + prob) / 2.0;
    want[4] += 1.0;

    // Adjust the three interior markers toward their targets with the
    // piecewise-parabolic (P^2) formula, falling back to linear when
    // the parabola would leave the cell monotone order.
    for (int i = 1; i <= 3; ++i) {
        const double d = want[i] - pos[i];
        if ((d >= 1.0 && pos[i + 1] - pos[i] > 1.0) ||
            (d <= -1.0 && pos[i - 1] - pos[i] < -1.0)) {
            const double s = d < 0.0 ? -1.0 : 1.0;
            const double np = pos[i] + s;
            const double parab =
                q[i] +
                s / (pos[i + 1] - pos[i - 1]) *
                    ((pos[i] - pos[i - 1] + s) * (q[i + 1] - q[i]) /
                         (pos[i + 1] - pos[i]) +
                     (pos[i + 1] - pos[i] - s) * (q[i] - q[i - 1]) /
                         (pos[i] - pos[i - 1]));
            if (q[i - 1] < parab && parab < q[i + 1]) {
                q[i] = parab;
            } else {
                q[i] = q[i] + s * (q[i + static_cast<int>(s)] - q[i]) /
                                  (pos[i + static_cast<int>(s)] -
                                   pos[i]);
            }
            pos[i] = np;
        }
    }
}

double
P2Quantile::value() const
{
    if (n == 0)
        return 0.0;
    if (n < 5) {
        // Exact nearest-rank until the markers initialise.
        std::array<double, 5> tmp = q;
        std::sort(tmp.begin(), tmp.begin() + n);
        std::uint64_t rank = static_cast<std::uint64_t>(
            std::ceil(prob * static_cast<double>(n)));
        if (rank == 0)
            rank = 1;
        return tmp[rank - 1];
    }
    return q[2];
}

MetricFamily::MetricFamily() : p2_50(0.5), p2_99(0.99) {}

void
MetricFamily::add(double x)
{
    moments.add(x);
    hist.add(x);
    p2_50.add(x);
    p2_99.add(x);
}

void
StreamingMetrics::fold(const qoe::RequestMetrics& m)
{
    ++requests;
    firstArrival = std::min(firstArrival, m.arrival);
    if (!m.finished)
        return;
    ++finished;
    ttftFam.add(m.ttft);
    e2eFam.add(m.e2eLatency);
    answeringFam.add(m.answeringLatency);
    blockingFam.add(m.blockingLatency);
    for (double t : m.kvTransferLatencies)
        kvFam.add(t);
    qoeFam.add(m.qoe);
    if (m.sloViolated)
        ++violations;
    lastFinish = std::max(lastFinish, m.arrival + m.e2eLatency);
    totalTokens += m.reasoningTokens + m.answerTokens;
    migrations += m.migrationCount;
}

qoe::AggregateMetrics
StreamingMetrics::aggregate() const
{
    qoe::AggregateMetrics agg;
    agg.numRequests = requests;
    agg.numFinished = finished;
    if (requests == 0 || finished == 0)
        return agg;

    agg.makespan = lastFinish - firstArrival;
    if (agg.makespan > 0.0) {
        agg.throughputTokensPerSec =
            static_cast<double>(totalTokens) / agg.makespan;
    }

    agg.meanTtft = ttftFam.mean();
    agg.maxTtft = ttftFam.max();
    agg.p50Ttft = ttftFam.quantile(50.0);
    agg.p99Ttft = ttftFam.quantile(99.0);

    agg.meanE2eLatency = e2eFam.mean();
    agg.p50E2eLatency = e2eFam.quantile(50.0);
    agg.p99E2eLatency = e2eFam.quantile(99.0);
    agg.meanAnsweringLatency = answeringFam.mean();

    agg.p99BlockingLatency = blockingFam.quantile(99.0);
    agg.p99KvTransferLatency = kvFam.quantile(99.0);

    agg.meanQoe = qoeFam.mean();
    agg.sloViolationRate = static_cast<double>(violations) /
                           static_cast<double>(finished);
    agg.totalMigrations = migrations;
    return agg;
}

} // namespace obs
} // namespace pascal
