#include "src/fault/fault_config.hh"

#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace fault
{

void
FaultConfig::validate() const
{
    auto nonNegative = [](double v, const char* name) {
        if (!(v >= 0.0)) {
            fatal(std::string("FaultConfig::") + name + " must be >= 0, got " +
                  std::to_string(v));
        }
    };
    nonNegative(crashRate, "crashRate");
    nonNegative(decommissionRate, "decommissionRate");
    nonNegative(stragglerRate, "stragglerRate");
    nonNegative(drainGrace, "drainGrace");
    nonNegative(stragglerDuration, "stragglerDuration");

    if (!(mttr > 0.0)) {
        fatal("FaultConfig::mttr must be > 0 seconds (a crashed instance "
              "needs a finite recovery time), got " + std::to_string(mttr));
    }
    if (!(stragglerFactor >= 1.0)) {
        fatal("FaultConfig::stragglerFactor must be >= 1 (a straggler "
              "slows down, never speeds up), got " +
              std::to_string(stragglerFactor));
    }
    if (!(linkFailureProb >= 0.0 && linkFailureProb <= 1.0)) {
        fatal("FaultConfig::linkFailureProb must be a probability in "
              "[0, 1], got " + std::to_string(linkFailureProb));
    }
    if (retryBudget < 0) {
        fatal("FaultConfig::retryBudget must be >= 0 retries, got " +
              std::to_string(retryBudget));
    }
    if (!(backoffBase > 0.0)) {
        fatal("FaultConfig::backoffBase must be > 0 seconds, got " +
              std::to_string(backoffBase));
    }
    if (!(backoffCap >= backoffBase)) {
        fatal("FaultConfig backoff ordering violated: backoffCap (" +
              std::to_string(backoffCap) + ") must be >= backoffBase (" +
              std::to_string(backoffBase) + ")");
    }
    if (!(shedFloor >= 0.0 && shedFloor <= 1.0)) {
        fatal("FaultConfig::shedFloor must be a fraction in [0, 1] of "
              "instances that must be up to admit work, got " +
              std::to_string(shedFloor));
    }
}

} // namespace fault
} // namespace pascal
