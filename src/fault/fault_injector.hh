/**
 * @file
 * Seeded, deterministic fault scheduler.
 *
 * The FaultInjector owns per-instance random fault chains and turns
 * them into ordinary events on the slotted simulator queue; the
 * cluster reacts through a small hook table, so this file knows
 * nothing about scheduling or KV management. Three independent chains
 * run per instance:
 *
 *  - lifecycle: a superposed Poisson process of crashes and planned
 *    decommissions. A crash takes the instance down immediately and
 *    schedules recovery after mttr; a decommission first marks the
 *    instance draining (no new placements) for drainGrace seconds,
 *    then takes it down like a crash.
 *  - straggler: transient windows during which the instance's
 *    iteration latency is multiplied by stragglerFactor.
 *  - link failures: *stateless* per-transfer Bernoulli draws hashed
 *    from {seed, request, attempt nonce}, so the verdict for a given
 *    transfer attempt is independent of event interleaving and the
 *    force-mode twins stay byte-identical.
 *
 * Chains re-arm only while the cluster still has live work
 * (hooks.anyWorkLeft), so fault events never keep an otherwise-idle
 * run alive past its natural end.
 */

#ifndef PASCAL_FAULT_FAULT_INJECTOR_HH
#define PASCAL_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/rng.hh"
#include "src/common/types.hh"
#include "src/fault/fault_config.hh"
#include "src/sim/simulator.hh"

namespace pascal
{
namespace fault
{

/** Cluster-side reactions to injected faults. All must be set. */
struct FaultHooks
{
    /** Instance went down losing GPU state; run the failover path. */
    std::function<void(InstanceId)> onCrash;

    /** Instance rejoined the fleet after mttr. */
    std::function<void(InstanceId)> onRecover;

    /** Planned decommission: stop placing onto the instance. */
    std::function<void(InstanceId)> onDrainStart;

    /** Drain grace expired: take the instance down. */
    std::function<void(InstanceId)> onDrainDeadline;

    /** Straggler window opened; apply the latency multiplier. */
    std::function<void(InstanceId, double)> onStragglerStart;

    /** Straggler window closed; restore full speed. */
    std::function<void(InstanceId)> onStragglerEnd;

    /** True while any submitted request is still unfinished; gates
     *  chain re-arming so faults cannot outlive the workload. */
    std::function<bool()> anyWorkLeft;
};

/** SplitMix64 — stateless 64-bit mixer for seed derivation and
 *  per-transfer Bernoulli draws. */
inline std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Schedules deterministic faults for @p num_instances instances.
 *
 * Construction arms the chains (when the respective rates are > 0);
 * after that the injector is driven entirely by the event queue.
 */
class FaultInjector
{
  public:
    FaultInjector(sim::Simulator& sim, const FaultConfig& cfg,
                  int num_instances, FaultHooks hooks);

    /**
     * Stateless verdict for one KV transfer attempt.
     *
     * @param req Request being moved.
     * @param nonce Per-request attempt counter (monotonic).
     * @return True if this attempt fails in flight.
     */
    bool drawLinkFailure(RequestId req, std::uint64_t nonce) const;

    /** Instance currently down (crashed or drained out)? */
    bool isDown(InstanceId id) const { return nodes[id].down; }

  private:
    /** Per-instance chain state. */
    struct NodeState
    {
        Rng lifecycleRng{1};
        Rng stragglerRng{1};
        bool down = false;
        bool draining = false;
        bool straggling = false;
    };

    void armLifecycle(InstanceId id);
    void armStraggler(InstanceId id);
    void fireLifecycle(InstanceId id);
    void fireStraggler(InstanceId id);
    void fireDrainDeadline(InstanceId id);
    void fireRecover(InstanceId id);
    void fireStragglerEnd(InstanceId id);

    sim::Simulator& sim;
    FaultConfig cfg;
    FaultHooks hooks;
    std::vector<NodeState> nodes;
};

} // namespace fault
} // namespace pascal

#endif // PASCAL_FAULT_FAULT_INJECTOR_HH
