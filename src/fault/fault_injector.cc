#include "src/fault/fault_injector.hh"

#include <utility>

namespace pascal
{
namespace fault
{

FaultInjector::FaultInjector(sim::Simulator& sim_, const FaultConfig& cfg_,
                             int num_instances, FaultHooks hooks_)
    : sim(sim_), cfg(cfg_), hooks(std::move(hooks_))
{
    nodes.resize(static_cast<std::size_t>(num_instances));
    for (int id = 0; id < num_instances; ++id) {
        auto& node = nodes[static_cast<std::size_t>(id)];
        // Independent streams per instance and per chain, decoupled
        // from the workload seed by fixed salts.
        std::uint64_t base = splitmix64(cfg.seed) ^
            splitmix64(static_cast<std::uint64_t>(id) * 0x51ed2701ULL + 1);
        node.lifecycleRng = Rng(splitmix64(base ^ 0xfaa17c4a5ae31b01ULL));
        node.stragglerRng = Rng(splitmix64(base ^ 0x517a667e97a911dbULL));
        if (cfg.crashRate + cfg.decommissionRate > 0.0)
            armLifecycle(id);
        if (cfg.stragglerRate > 0.0)
            armStraggler(id);
    }
}

bool
FaultInjector::drawLinkFailure(RequestId req, std::uint64_t nonce) const
{
    if (cfg.linkFailureProb <= 0.0)
        return false;
    std::uint64_t h = splitmix64(splitmix64(cfg.seed ^ 0x6c62272e07bb0142ULL) ^
        splitmix64(static_cast<std::uint64_t>(req)) ^ (nonce * 0x100000001b3ULL));
    // Top 53 bits -> uniform double in [0, 1).
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < cfg.linkFailureProb;
}

void
FaultInjector::armLifecycle(InstanceId id)
{
    auto& node = nodes[static_cast<std::size_t>(id)];
    double rate = cfg.crashRate + cfg.decommissionRate;
    Time delay = node.lifecycleRng.exponential(rate);
    sim.after(delay, [this, id] { fireLifecycle(id); });
}

void
FaultInjector::armStraggler(InstanceId id)
{
    auto& node = nodes[static_cast<std::size_t>(id)];
    Time delay = node.stragglerRng.exponential(cfg.stragglerRate);
    sim.after(delay, [this, id] { fireStraggler(id); });
}

void
FaultInjector::fireLifecycle(InstanceId id)
{
    if (!hooks.anyWorkLeft())
        return; // Workload drained; let the run end.
    auto& node = nodes[static_cast<std::size_t>(id)];
    if (node.down || node.draining) {
        // Already failing; skip this occurrence and re-arm.
        armLifecycle(id);
        return;
    }
    double rate = cfg.crashRate + cfg.decommissionRate;
    bool crash = node.lifecycleRng.bernoulli(cfg.crashRate / rate);
    if (crash) {
        node.down = true;
        hooks.onCrash(id);
        sim.after(cfg.mttr, [this, id] { fireRecover(id); });
    } else {
        node.draining = true;
        hooks.onDrainStart(id);
        sim.after(cfg.drainGrace, [this, id] { fireDrainDeadline(id); });
    }
}

void
FaultInjector::fireDrainDeadline(InstanceId id)
{
    auto& node = nodes[static_cast<std::size_t>(id)];
    node.draining = false;
    node.down = true;
    hooks.onDrainDeadline(id);
    sim.after(cfg.mttr, [this, id] { fireRecover(id); });
}

void
FaultInjector::fireRecover(InstanceId id)
{
    auto& node = nodes[static_cast<std::size_t>(id)];
    node.down = false;
    hooks.onRecover(id);
    if (hooks.anyWorkLeft())
        armLifecycle(id);
}

void
FaultInjector::fireStraggler(InstanceId id)
{
    if (!hooks.anyWorkLeft())
        return;
    auto& node = nodes[static_cast<std::size_t>(id)];
    if (node.down || node.straggling) {
        armStraggler(id);
        return;
    }
    node.straggling = true;
    hooks.onStragglerStart(id, cfg.stragglerFactor);
    sim.after(cfg.stragglerDuration, [this, id] { fireStragglerEnd(id); });
}

void
FaultInjector::fireStragglerEnd(InstanceId id)
{
    auto& node = nodes[static_cast<std::size_t>(id)];
    node.straggling = false;
    // A crash during the window already reset the scale; the hook is
    // idempotent, so always restore.
    hooks.onStragglerEnd(id);
    if (hooks.anyWorkLeft())
        armStraggler(id);
}

} // namespace fault
} // namespace pascal
