/**
 * @file
 * User-facing knobs for the deterministic fault-injection layer.
 *
 * FaultConfig is a plain value struct carried inside SystemConfig.
 * With `enabled == false` (the default) the cluster builds no
 * FaultInjector and every fault code path is dormant, so runs are
 * byte-identical to a build without the fault layer at all.
 *
 * All rates are Poisson rates in events per simulated second; all
 * durations are simulated seconds. Faults are scheduled as ordinary
 * events on the slotted event queue from per-instance seeded RNG
 * chains, so a {config, trace, seed} triple replays byte-identically.
 */

#ifndef PASCAL_FAULT_FAULT_CONFIG_HH
#define PASCAL_FAULT_FAULT_CONFIG_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/common/types.hh"

namespace pascal
{
namespace fault
{

/** Knobs for the seeded fault injector and the failover policy. */
struct FaultConfig
{
    /** Master switch; false leaves the whole layer dormant. */
    bool enabled = false;

    /** Seed for the per-instance fault chains (mixed with the
     *  instance id, independent of the workload seed). */
    std::uint64_t seed = 1;

    /** Poisson rate of instance crashes, per instance (events/sec). */
    double crashRate = 0.0;

    /** Mean time to recovery: a crashed (or drained-out) instance
     *  rejoins this many seconds after going down. */
    Time mttr = 30.0;

    /** Poisson rate of planned decommissions, per instance. */
    double decommissionRate = 0.0;

    /** Grace window of a planned decommission: the instance stops
     *  taking new placements immediately but keeps executing for this
     *  long before going down. */
    Time drainGrace = 60.0;

    /** Poisson rate of transient straggler windows, per instance. */
    double stragglerRate = 0.0;

    /** Latency multiplier applied to every iteration while a
     *  straggler window is active (>= 1). */
    double stragglerFactor = 4.0;

    /** Length of one straggler window in seconds. */
    Time stragglerDuration = 20.0;

    /** Probability that any single KV transfer (migration or
     *  post-crash restore) fails in flight and must be retried. */
    double linkFailureProb = 0.0;

    /** Per-request budget of placement retries after crashes, link
     *  failures, or no-capacity outcomes; once exhausted the request
     *  terminally fails with FailReason::RetryBudget. */
    int retryBudget = 3;

    /** First retry delay in seconds; doubles per attempt. */
    Time backoffBase = 0.5;

    /** Ceiling on the exponential backoff delay. */
    Time backoffCap = 8.0;

    /** When true, CPU-offloaded KV survives an instance crash: swapped
     *  requests stay hosted and resume after recovery. GPU-resident KV
     *  is always lost. */
    bool preserveCpuKv = false;

    /** Admission floor: while the fraction of up instances is below
     *  this, newly arriving requests are shed (terminally failed with
     *  FailReason::Shed) instead of queued. 0 disables shedding. */
    double shedFloor = 0.0;

    /** Throw FatalError on out-of-range values (see fault_config.cc). */
    void validate() const;
};

/**
 * Capped exponential backoff delay for the given retry.
 *
 * @param cfg Fault knobs (backoffBase / backoffCap).
 * @param retry_index Zero-based index of the retry being scheduled.
 * @return min(cap, base * 2^retry_index), computed with std::ldexp so
 *         the doubling is exact in binary floating point.
 */
inline Time
backoffDelay(const FaultConfig& cfg, int retry_index)
{
    int exp = std::min(retry_index, 60);
    return std::min(cfg.backoffCap, std::ldexp(cfg.backoffBase, exp));
}

} // namespace fault
} // namespace pascal

#endif // PASCAL_FAULT_FAULT_CONFIG_HH
