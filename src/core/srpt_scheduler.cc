#include "src/core/srpt_scheduler.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/log.hh"

namespace pascal
{
namespace core
{

SrptScheduler::SrptScheduler(SchedLimits limits)
    : IntraScheduler(limits)
{
    // Priorities are purely predicted; disable quantum accounting so
    // the RR key never moves (as FCFS does).
    this->limits.quantum = 0;
}

IterationPlan
SrptScheduler::plan(const model::KvPool& pool)
{
    if (lengthPredictor == nullptr) {
        fatal("SrptScheduler: no length predictor wired; set "
              "SystemConfig::predictor (e.g. PredictorType::Oracle) "
              "or use FCFS/RR/PASCAL");
    }

    // Shortest predicted remaining work first; stable arrival/id
    // tie-breaks keep runs deterministic when predictions collide.
    std::vector<std::pair<double, workload::Request*>> keyed;
    keyed.reserve(requests.size());
    for (auto* r : requests) {
        if (schedulable(r))
            keyed.emplace_back(lengthPredictor->rankScore(*r), r);
    }
    std::sort(keyed.begin(), keyed.end(),
        [](const std::pair<double, workload::Request*>& a,
           const std::pair<double, workload::Request*>& b) {
            if (a.first != b.first)
                return a.first < b.first;
            const auto* ra = a.second;
            const auto* rb = b.second;
            if (ra->spec().arrival != rb->spec().arrival)
                return ra->spec().arrival < rb->spec().arrival;
            return ra->id() < rb->id();
        });

    std::vector<workload::Request*> order;
    order.reserve(keyed.size());
    for (const auto& [score, r] : keyed)
        order.push_back(r);

    // Skip semantics: a long request that does not fit must not block
    // the shorter ones behind it (that would re-create FCFS blocking).
    IterationPlan plan =
        greedySelect(order, pool, /*stop_at_unfit=*/false);
    annotatePrediction(plan);
    return plan;
}

} // namespace core
} // namespace pascal
