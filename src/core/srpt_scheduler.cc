#include "src/core/srpt_scheduler.hh"

#include <algorithm>

#include "src/common/log.hh"

namespace pascal
{
namespace core
{

SrptScheduler::SrptScheduler(SchedLimits limits)
    : IntraScheduler(limits)
{
    // Priorities are purely predicted; disable quantum accounting so
    // the RR key never moves (as FCFS does).
    this->limits.quantum = 0;
}

void
SrptScheduler::planInto(const model::KvPool& pool, IterationPlan& out)
{
    if (lengthPredictor == nullptr) {
        fatal("SrptScheduler: no length predictor wired; set "
              "SystemConfig::predictor (e.g. PredictorType::Oracle) "
              "or use FCFS/RR/PASCAL");
    }

    // Shortest predicted remaining work first; stable arrival/id
    // tie-breaks keep runs deterministic when predictions collide.
    // Skip semantics: a long request that does not fit must not block
    // the shorter ones behind it (that would re-create FCFS blocking).
    if (incrementalEnabled()) {
        if (predictorMoved()) {
            // The online learner updated: every cached score is
            // suspect, re-key the whole queue.
            for (auto* r : requests) {
                r->schedScore = lengthPredictor->rankScore(*r);
                queue.markDirty(r);
                noteKeyChanged(r);
            }
            noteStateChanged();
        }
        queue.repair();
        greedySelectRanges(queue.end(), queue.end(), queue.begin(),
                           queue.end(), /*cap_high=*/false, 0, pool,
                           /*stop_at_unfit=*/false, out);
        annotatePrediction(out);
        return;
    }

    orderScratch.clear();
    for (auto* r : requests) {
        if (schedulable(r)) {
            r->schedScore = lengthPredictor->rankScore(*r);
            orderScratch.push_back(r);
        }
    }
    std::sort(orderScratch.begin(), orderScratch.end(), SrptOrder{});
    greedySelectInto(orderScratch, pool, /*stop_at_unfit=*/false, out);
    annotatePrediction(out);
}

} // namespace core
} // namespace pascal
