/**
 * @file
 * The instance monitor's view of the cluster (Fig. 6): the per-instance
 * runtime signals that the instance-level scheduler's placement
 * algorithms consume.
 */

#ifndef PASCAL_CORE_CLUSTER_VIEW_HH
#define PASCAL_CORE_CLUSTER_VIEW_HH

#include <vector>

#include "src/common/types.hh"

namespace pascal
{
namespace core
{

/** Snapshot of one serving instance at a placement decision point. */
struct InstanceSnapshot
{
    InstanceId id = kNoInstance;

    /** Routable: the instance is up and not draining. Placement skips
     *  down/draining instances entirely (fault layer; always true
     *  when fault injection is off). */
    bool up = true;

    /** Paper t_i: every answering request on the instance is meeting
     *  its SLO according to the token pacer. */
    bool answeringSloOk = true;

    /** Paper m_i: total KV footprint (GPU + CPU tiers), in tokens. */
    TokenCount kvFootprintTokens = 0;

    /**
     * Speculative m_i: current footprint plus the predicted remaining
     * decode tokens of every hosted request (each future token appends
     * one KV entry). Equals kvFootprintTokens when the cluster runs
     * without a predictor. The predictive placement variant routes on
     * this, so an instance full of nearly-done requests looks emptier
     * than one full of just-started monsters.
     */
    TokenCount predictedKvFootprintTokens = 0;

    /** Paper r_i: reasoning requests in the high-priority queue. */
    int numReasoning = 0;

    /** Paper a_i: answering requests still inside their first
     *  quantum. */
    int numFreshAnswering = 0;

    /** Free GPU KV tokens (adaptive-migration signal, Fig. 7). */
    TokenCount gpuFreeTokens = 0;

    /** Total GPU KV capacity in tokens. */
    TokenCount gpuCapacityTokens = 0;
};

/** Field-wise equality (incremental-view audits and tests). */
inline bool
operator==(const InstanceSnapshot& a, const InstanceSnapshot& b)
{
    return a.id == b.id && a.up == b.up &&
           a.answeringSloOk == b.answeringSloOk &&
           a.kvFootprintTokens == b.kvFootprintTokens &&
           a.predictedKvFootprintTokens == b.predictedKvFootprintTokens &&
           a.numReasoning == b.numReasoning &&
           a.numFreshAnswering == b.numFreshAnswering &&
           a.gpuFreeTokens == b.gpuFreeTokens &&
           a.gpuCapacityTokens == b.gpuCapacityTokens;
}

inline bool
operator!=(const InstanceSnapshot& a, const InstanceSnapshot& b)
{
    return !(a == b);
}

/** One snapshot per instance, indexed by instance id. */
using ClusterView = std::vector<InstanceSnapshot>;

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_CLUSTER_VIEW_HH
