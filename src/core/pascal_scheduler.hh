/**
 * @file
 * PASCAL's hierarchical intra-instance scheduler (Section IV-C).
 *
 * Two priority queues:
 *  - High priority: reasoning-phase requests. Served first with
 *    preferential KV allocation; round-robin among themselves so
 *    short reasoning requests stay responsive under memory pressure.
 *  - Low priority: answering-phase requests (plus demoted reasoning
 *    requests). Time-shared round-robin over whatever GPU memory the
 *    high queue leaves, with the token pacer (in the QoE layer)
 *    smoothing their output.
 *
 * A reasoning request whose KV cache exceeds the demotion threshold
 * (paper: 5000 tokens) is demoted to the low-priority queue so one
 * monster request cannot starve the answering phase.
 */

#ifndef PASCAL_CORE_PASCAL_SCHEDULER_HH
#define PASCAL_CORE_PASCAL_SCHEDULER_HH

#include <string>

#include "src/core/intra_scheduler.hh"

namespace pascal
{
namespace core
{

/**
 * Phase-aware two-queue scheduler.
 *
 * The demotion rule and the within-queue priority are virtual hooks so
 * speculative variants (PascalSpecScheduler) can demote on *predicted*
 * KV growth and break round-robin ties by predicted remaining length
 * without duplicating the queue mechanics.
 */
class PascalScheduler : public IntraScheduler
{
  public:
    explicit PascalScheduler(SchedLimits limits);

    std::string name() const override { return "PASCAL"; }

    IterationPlan plan(const model::KvPool& pool) override;

    /** Entering the low-priority queue restarts quantum accounting:
     *  each queue has its own token quantum (Section V-A). */
    void onPhaseTransition(workload::Request* req) override;

    /** r_i counts the high-priority queue only (excludes demoted). */
    int numReasoning() const override;

  protected:
    /**
     * Demotion rule for a not-yet-demoted reasoning request. The paper
     * reacts to the KV actually exceeding the threshold; speculative
     * variants may fire earlier.
     */
    virtual bool shouldDemote(const workload::Request* req) const;

    /**
     * Within-queue priority key consulted after quantaConsumed and
     * before arrival/id (ascending = served first). The paper's pure
     * round-robin uses a constant; speculative variants return a
     * predicted-remaining-length score. Only called when
     * usesQueueKeys() is true.
     */
    virtual double queueKey(const workload::Request* req) const;

    /** Whether queueKey() varies per request. False keeps the
     *  reactive policy's allocation-free in-place sort on the hot
     *  path. */
    virtual bool usesQueueKeys() const { return false; }

  private:
    /** True if @p req belongs to the high-priority queue. */
    static bool isHighPriority(const workload::Request* req);

    /** Apply the demotion rule to hosted reasoning requests. */
    void applyDemotion();

    /** Sort @p queue by (quantaConsumed, queueKey, arrival, id). */
    void sortQueue(std::vector<workload::Request*>& queue) const;
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_PASCAL_SCHEDULER_HH
