/**
 * @file
 * PASCAL's hierarchical intra-instance scheduler (Section IV-C).
 *
 * Two priority queues:
 *  - High priority: reasoning-phase requests. Served first with
 *    preferential KV allocation; round-robin among themselves so
 *    short reasoning requests stay responsive under memory pressure.
 *  - Low priority: answering-phase requests (plus demoted reasoning
 *    requests). Time-shared round-robin over whatever GPU memory the
 *    high queue leaves, with the token pacer (in the QoE layer)
 *    smoothing their output.
 *
 * A reasoning request whose KV cache exceeds the demotion threshold
 * (paper: 5000 tokens) is demoted to the low-priority queue so one
 * monster request cannot starve the answering phase.
 *
 * In incremental mode both queues are OrderedQueues repaired only for
 * requests whose (quantaConsumed, score) key or phase/demotion
 * membership changed, and the demotion rule is re-checked only for
 * requests whose KV (or prediction) moved since the last plan.
 */

#ifndef PASCAL_CORE_PASCAL_SCHEDULER_HH
#define PASCAL_CORE_PASCAL_SCHEDULER_HH

#include <string>
#include <vector>

#include "src/core/intra_scheduler.hh"
#include "src/core/ordered_queue.hh"

namespace pascal
{
namespace core
{

/**
 * Within-queue strict total order shared by the reactive and
 * speculative PASCAL variants (and by both the incremental repair and
 * the recompute-mode full sort, so the two modes cannot diverge):
 * SLO-class rank first (all zero with classes off, so the level is
 * inert), then fewest quanta consumed, then cached rank score (always
 * 0 for the reactive policy, making the level a no-op), then arrival,
 * then id.
 */
struct PascalQueueOrder
{
    bool
    operator()(const workload::Request* a,
               const workload::Request* b) const
    {
        if (a->schedClassRank != b->schedClassRank)
            return a->schedClassRank < b->schedClassRank;
        if (a->quantaConsumed != b->quantaConsumed)
            return a->quantaConsumed < b->quantaConsumed;
        if (a->schedScore != b->schedScore)
            return a->schedScore < b->schedScore;
        if (a->spec().arrival != b->spec().arrival)
            return a->spec().arrival < b->spec().arrival;
        return a->id() < b->id();
    }
};

/**
 * Phase-aware two-queue scheduler.
 *
 * The demotion rule and the within-queue priority are virtual hooks so
 * speculative variants (PascalSpecScheduler) can demote on *predicted*
 * KV growth and break round-robin ties by predicted remaining length
 * without duplicating the queue mechanics.
 */
class PascalScheduler : public IntraScheduler
{
  public:
    explicit PascalScheduler(SchedLimits limits);

    std::string name() const override { return "PASCAL"; }

    /** Entering the low-priority queue restarts quantum accounting:
     *  each queue has its own token quantum (Section V-A). */
    void onPhaseTransition(workload::Request* req) override;

  protected:
    void planInto(const model::KvPool& pool,
                  IterationPlan& out) override;

    /** @name Incremental-mode hooks */
    /** @{ */
    void onHostedAdded(workload::Request* req) override;
    void onHostedRemoved(workload::Request* req) override;
    void onRequestExecuted(workload::Request* req,
                           bool quanta_changed) override;
    /** Applies pending demotions; vetoes the reuse if any fired. */
    bool reuseVeto() override;
    /** Plan-repair boundary: apply pending demotions (journaled as
     *  re-keys) so the patch path demotes exactly when recompute
     *  mode's plan-time applyDemotion scan would. */
    void applyDeferredDecisions() override;
    void onMaterialChanged(workload::Request* req,
                           int delta) override;
    bool keysUsePredictions() const override
    {
        return usesQueueKeys();
    }
    /** @} */

    /**
     * Demotion rule for a not-yet-demoted reasoning request. The paper
     * reacts to the KV actually exceeding the threshold; speculative
     * variants may fire earlier.
     */
    virtual bool shouldDemote(const workload::Request* req) const;

    /**
     * Within-queue priority key consulted after quantaConsumed and
     * before arrival/id (ascending = served first). The paper's pure
     * round-robin uses a constant; speculative variants return a
     * predicted-remaining-length score. Only called when
     * usesQueueKeys() is true.
     */
    virtual double queueKey(const workload::Request* req) const;

    /** Whether queueKey() varies per request. False keeps the
     *  reactive policy's score level inert. */
    virtual bool usesQueueKeys() const { return false; }

    /**
     * Cheap necessary condition for shouldDemote(): only requests
     * passing it are queued as demotion candidates, so a steady batch
     * far below the threshold re-checks nothing at all. Must be
     * implied by shouldDemote() for every subclass (a request failing
     * demotionPossible() must never satisfy shouldDemote() with the
     * same KV), or incremental mode would miss demotions that
     * recompute mode applies.
     */
    virtual bool
    demotionPossible(const workload::Request* req) const
    {
        return req->kvTokens() > limits.demoteThresholdTokens;
    }

  private:
    /** True if @p req belongs to the high-priority queue. */
    static bool isHighPriority(const workload::Request* req);

    /** Recompute-mode path: rebuild, sort, select (the reference
     *  implementation the incremental path must match bit-for-bit). */
    void recomputePlan(const model::KvPool& pool, IterationPlan& out);

    /** Incremental path: process demotions, repair queues, select. */
    void incrementalPlan(const model::KvPool& pool, IterationPlan& out);

    /** Recompute mode: apply the demotion rule to every hosted
     *  reasoning request. */
    void applyDemotion();

    /**
     * Incremental mode: re-check the demotion rule for the pending
     * candidates only (requests whose KV or prediction moved).
     * @return true if any request was demoted.
     */
    bool processPendingDemotions();

    /** Demote @p req into the low queue (flag, quantum, queues). */
    void demote(workload::Request* req);

    /** Sort @p queue by (quantaConsumed, key, arrival, id), caching
     *  queueKey() into schedScore first when keys are in use. */
    void sortQueue(std::vector<workload::Request*>& queue) const;

    /** Queue of @p req per its tag, for incremental maintenance. */
    OrderedQueue<PascalQueueOrder>& queueOf(const workload::Request* r);

    OrderedQueue<PascalQueueOrder> highQueue{1};
    OrderedQueue<PascalQueueOrder> lowQueue{2};

    /** Requests whose demotion rule must be re-checked at the next
     *  plan boundary (deduped via schedDemotionPending). */
    std::vector<workload::Request*> demotionCandidates;

    /** Recompute-mode scratch partitions (capacity reused). */
    std::vector<workload::Request*> highScratch;
    std::vector<workload::Request*> lowScratch;
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_PASCAL_SCHEDULER_HH
