#include "src/core/pascal_scheduler.hh"

#include <algorithm>

#include "src/common/log.hh"

namespace pascal
{
namespace core
{

PascalScheduler::PascalScheduler(SchedLimits limits)
    : IntraScheduler(limits)
{
    if (this->limits.quantum <= 0)
        fatal("PascalScheduler requires a positive token quantum");
}

bool
PascalScheduler::isHighPriority(const workload::Request* req)
{
    return req->phase() == workload::Phase::Reasoning && !req->demoted;
}

bool
PascalScheduler::shouldDemote(const workload::Request* req) const
{
    return req->kvTokens() > limits.demoteThresholdTokens;
}

double
PascalScheduler::queueKey(const workload::Request*) const
{
    return 0.0; // Pure round robin: quantaConsumed then arrival.
}

OrderedQueue<PascalQueueOrder>&
PascalScheduler::queueOf(const workload::Request* r)
{
    switch (r->schedQueueTag) {
      case 1:
        return highQueue;
      case 2:
        return lowQueue;
      default:
        panic("PascalScheduler: request " + std::to_string(r->id()) +
              " not in any queue");
    }
}

void
PascalScheduler::applyDemotion()
{
    for (auto* r : requests) {
        if (!r->demoted && r->phase() == workload::Phase::Reasoning &&
            shouldDemote(r)) {
            // The request now competes as a low-priority request; its
            // quantum restarts in the new queue.
            r->demoted = true;
            r->resetQuantum();
        }
    }
}

void
PascalScheduler::demote(workload::Request* req)
{
    req->demoted = true;
    req->resetQuantum();
    req->schedCachedQuanta = req->quantaConsumed;
    syncCounters(req);
    highQueue.erase(req);
    lowQueue.insert(req);
    // After the transfer, so the eviction-order relink reads the
    // settled low-queue tag.
    noteKeyChanged(req);
    noteStateChanged();
}

bool
PascalScheduler::processPendingDemotions()
{
    bool any = false;
    for (auto* r : demotionCandidates) {
        if (!isHosted(r)) {
            // Migrated away since being flagged; the pending flag (if
            // set) now belongs to its new host's candidate list.
            continue;
        }
        if (!r->schedDemotionPending)
            continue; // Superseded (removed+readded, or a duplicate).
        r->schedDemotionPending = false;
        if (r->schedQueueTag == 1 && !r->demoted &&
            r->phase() == workload::Phase::Reasoning &&
            shouldDemote(r)) {
            demote(r);
            any = true;
        }
    }
    demotionCandidates.clear();
    return any;
}

bool
PascalScheduler::reuseVeto()
{
    return processPendingDemotions();
}

void
PascalScheduler::applyDeferredDecisions()
{
    processPendingDemotions();
}

void
PascalScheduler::onMaterialChanged(workload::Request* req, int delta)
{
    (void)delta;
    queueOf(req).noteMaterialized(req);
}

void
PascalScheduler::onHostedAdded(workload::Request* req)
{
    if (usesQueueKeys())
        req->schedScore = queueKey(req);
    if (isHighPriority(req)) {
        highQueue.insert(req);
        // A request arriving with a fat KV (or inside the speculative
        // lookahead window) may demote at the very next plan boundary,
        // just as recompute mode's full applyDemotion scan would find
        // it.
        if (demotionPossible(req)) {
            req->schedDemotionPending = true;
            demotionCandidates.push_back(req);
        }
    } else {
        lowQueue.insert(req);
    }
}

void
PascalScheduler::onHostedRemoved(workload::Request* req)
{
    queueOf(req).erase(req);
}

void
PascalScheduler::onRequestExecuted(workload::Request* req,
                                   bool quanta_changed)
{
    bool high = isHighPriority(req);
    if (req->schedQueueTag == 1 && !high) {
        // The </think> token (or a completion) just moved the request
        // out of the high queue.
        if (usesQueueKeys())
            req->schedScore = queueKey(req);
        highQueue.erase(req);
        lowQueue.insert(req);
        noteKeyChanged(req); // After the transfer: tag settled at 2.
        noteStateChanged();
    } else if (quanta_changed || usesQueueKeys()) {
        if (usesQueueKeys())
            req->schedScore = queueKey(req);
        queueOf(req).markDirty(req);
        noteKeyChanged(req);
        noteStateChanged();
    }
    if (high && !req->schedDemotionPending && demotionPossible(req)) {
        // Its KV grew into reach of the demotion rule; re-check at
        // the next plan boundary.
        req->schedDemotionPending = true;
        demotionCandidates.push_back(req);
    }
}

void
PascalScheduler::sortQueue(std::vector<workload::Request*>& queue) const
{
    if (usesQueueKeys()) {
        // Precompute keys so predictor-backed variants pay one
        // prediction per request, not one per comparison. The cached
        // score is the same field the incremental queues order by.
        for (auto* r : queue)
            r->schedScore = queueKey(r);
    }
    std::sort(queue.begin(), queue.end(), PascalQueueOrder{});
}

void
PascalScheduler::planInto(const model::KvPool& pool, IterationPlan& out)
{
    if (incrementalEnabled())
        incrementalPlan(pool, out);
    else
        recomputePlan(pool, out);
}

void
PascalScheduler::recomputePlan(const model::KvPool& pool,
                               IterationPlan& out)
{
    applyDemotion();

    // High-priority (reasoning) requests first, each queue internally
    // round-robin ordered. The greedy walk then gives reasoning
    // requests preferential KV allocation and evicts answering
    // requests first when memory runs short.
    highScratch.clear();
    lowScratch.clear();
    for (auto* r : requests) {
        if (!schedulable(r))
            continue;
        (isHighPriority(r) ? highScratch : lowScratch).push_back(r);
    }

    sortQueue(highScratch);
    sortQueue(lowScratch);

    orderScratch.clear();
    orderScratch.insert(orderScratch.end(), highScratch.begin(),
                        highScratch.end());
    orderScratch.insert(orderScratch.end(), lowScratch.begin(),
                        lowScratch.end());

    // Optional answering reserve: cap how much KV the high queue may
    // claim so the low queue is never fully squeezed out.
    TokenCount high_cap = static_cast<TokenCount>(
        static_cast<double>(pool.gpuCapacity()) *
        (1.0 - limits.answeringReserveFraction));
    std::size_t prefix = limits.answeringReserveFraction > 0.0
                             ? highScratch.size()
                             : 0;

    greedySelectInto(orderScratch, pool, /*stop_at_unfit=*/false, out,
                     prefix, high_cap);
    annotatePrediction(out);
}

void
PascalScheduler::incrementalPlan(const model::KvPool& pool,
                                 IterationPlan& out)
{
    if (predictorMoved()) {
        // The predictor learned: every cached score is suspect. Re-key
        // and re-sort everything, and re-check every high-queue
        // resident against the (possibly moved) demotion rule.
        for (auto* r : requests) {
            r->schedScore = queueKey(r);
            queueOf(r).markDirty(r);
            noteKeyChanged(r);
            if (isHighPriority(r) && !r->schedDemotionPending &&
                demotionPossible(r)) {
                r->schedDemotionPending = true;
                demotionCandidates.push_back(r);
            }
        }
        noteStateChanged();
    }
    processPendingDemotions();
    highQueue.repair();
    lowQueue.repair();

    TokenCount high_cap = static_cast<TokenCount>(
        static_cast<double>(pool.gpuCapacity()) *
        (1.0 - limits.answeringReserveFraction));

    // The skip lists are walked in place — no scratch concatenation
    // pass; the high (reasoning) queue outranks the low queue exactly
    // as the recompute sort's concatenated order does.
    greedySelectRanges(highQueue.begin(), highQueue.end(),
                       lowQueue.begin(), lowQueue.end(),
                       limits.answeringReserveFraction > 0.0, high_cap,
                       pool, /*stop_at_unfit=*/false, out);
    annotatePrediction(out);
}

void
PascalScheduler::onPhaseTransition(workload::Request* req)
{
    req->resetQuantum();
    if (!incrementalEnabled())
        return;
    req->schedCachedQuanta = req->quantaConsumed;
    syncCounters(req); // The quantum reset makes it "fresh" again.
    // noteExecuted already moved it into the low queue when the
    // transition token was emitted; the reset re-keys it there.
    queueOf(req).markDirty(req);
    noteKeyChanged(req);
    noteStateChanged();
}

} // namespace core
} // namespace pascal
