#include "src/core/pascal_scheduler.hh"

#include <algorithm>

#include "src/common/log.hh"

namespace pascal
{
namespace core
{

PascalScheduler::PascalScheduler(SchedLimits limits)
    : IntraScheduler(limits)
{
    if (this->limits.quantum <= 0)
        fatal("PascalScheduler requires a positive token quantum");
}

bool
PascalScheduler::isHighPriority(const workload::Request* req)
{
    return req->phase() == workload::Phase::Reasoning && !req->demoted;
}

void
PascalScheduler::applyDemotion()
{
    for (auto* r : requests) {
        if (!r->demoted && r->phase() == workload::Phase::Reasoning &&
            r->kvTokens() > limits.demoteThresholdTokens) {
            // The request now competes as a low-priority request; its
            // quantum restarts in the new queue.
            r->demoted = true;
            r->resetQuantum();
        }
    }
}

IterationPlan
PascalScheduler::plan(const model::KvPool& pool)
{
    applyDemotion();

    // High-priority (reasoning) requests first, each queue internally
    // round-robin ordered. The greedy walk then gives reasoning
    // requests preferential KV allocation and evicts answering
    // requests first when memory runs short.
    std::vector<workload::Request*> high;
    std::vector<workload::Request*> low;
    for (auto* r : requests) {
        if (!schedulable(r))
            continue;
        (isHighPriority(r) ? high : low).push_back(r);
    }

    auto rr_order = [](const workload::Request* a,
                       const workload::Request* b) {
        if (a->quantaConsumed != b->quantaConsumed)
            return a->quantaConsumed < b->quantaConsumed;
        if (a->spec().arrival != b->spec().arrival)
            return a->spec().arrival < b->spec().arrival;
        return a->id() < b->id();
    };
    std::sort(high.begin(), high.end(), rr_order);
    std::sort(low.begin(), low.end(), rr_order);

    std::vector<workload::Request*> order;
    order.reserve(high.size() + low.size());
    order.insert(order.end(), high.begin(), high.end());
    order.insert(order.end(), low.begin(), low.end());

    // Optional answering reserve: cap how much KV the high queue may
    // claim so the low queue is never fully squeezed out.
    TokenCount high_cap = static_cast<TokenCount>(
        static_cast<double>(pool.gpuCapacity()) *
        (1.0 - limits.answeringReserveFraction));
    std::size_t prefix =
        limits.answeringReserveFraction > 0.0 ? high.size() : 0;

    return greedySelect(order, pool, /*stop_at_unfit=*/false, prefix,
                        high_cap);
}

void
PascalScheduler::onPhaseTransition(workload::Request* req)
{
    req->resetQuantum();
}

int
PascalScheduler::numReasoning() const
{
    int n = 0;
    for (const auto* r : requests) {
        if (isHighPriority(r) && !r->finished())
            ++n;
    }
    return n;
}

} // namespace core
} // namespace pascal
