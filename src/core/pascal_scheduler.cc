#include "src/core/pascal_scheduler.hh"

#include <algorithm>
#include <utility>

#include "src/common/log.hh"

namespace pascal
{
namespace core
{

PascalScheduler::PascalScheduler(SchedLimits limits)
    : IntraScheduler(limits)
{
    if (this->limits.quantum <= 0)
        fatal("PascalScheduler requires a positive token quantum");
}

bool
PascalScheduler::isHighPriority(const workload::Request* req)
{
    return req->phase() == workload::Phase::Reasoning && !req->demoted;
}

bool
PascalScheduler::shouldDemote(const workload::Request* req) const
{
    return req->kvTokens() > limits.demoteThresholdTokens;
}

double
PascalScheduler::queueKey(const workload::Request*) const
{
    return 0.0; // Pure round robin: quantaConsumed then arrival.
}

void
PascalScheduler::applyDemotion()
{
    for (auto* r : requests) {
        if (!r->demoted && r->phase() == workload::Phase::Reasoning &&
            shouldDemote(r)) {
            // The request now competes as a low-priority request; its
            // quantum restarts in the new queue.
            r->demoted = true;
            r->resetQuantum();
        }
    }
}

void
PascalScheduler::sortQueue(std::vector<workload::Request*>& queue) const
{
    if (!usesQueueKeys()) {
        // Reactive round robin: allocation-free in-place sort (the
        // per-iteration hot path of every plain-PASCAL instance).
        std::sort(queue.begin(), queue.end(),
            [](const workload::Request* a, const workload::Request* b) {
                if (a->quantaConsumed != b->quantaConsumed)
                    return a->quantaConsumed < b->quantaConsumed;
                if (a->spec().arrival != b->spec().arrival)
                    return a->spec().arrival < b->spec().arrival;
                return a->id() < b->id();
            });
        return;
    }

    // Precompute keys so predictor-backed variants pay one prediction
    // per request, not one per comparison.
    std::vector<std::pair<double, workload::Request*>> keyed;
    keyed.reserve(queue.size());
    for (auto* r : queue)
        keyed.emplace_back(queueKey(r), r);
    std::sort(keyed.begin(), keyed.end(),
        [](const std::pair<double, workload::Request*>& a,
           const std::pair<double, workload::Request*>& b) {
            const auto* ra = a.second;
            const auto* rb = b.second;
            if (ra->quantaConsumed != rb->quantaConsumed)
                return ra->quantaConsumed < rb->quantaConsumed;
            if (a.first != b.first)
                return a.first < b.first;
            if (ra->spec().arrival != rb->spec().arrival)
                return ra->spec().arrival < rb->spec().arrival;
            return ra->id() < rb->id();
        });
    for (std::size_t i = 0; i < keyed.size(); ++i)
        queue[i] = keyed[i].second;
}

IterationPlan
PascalScheduler::plan(const model::KvPool& pool)
{
    applyDemotion();

    // High-priority (reasoning) requests first, each queue internally
    // round-robin ordered. The greedy walk then gives reasoning
    // requests preferential KV allocation and evicts answering
    // requests first when memory runs short.
    std::vector<workload::Request*> high;
    std::vector<workload::Request*> low;
    for (auto* r : requests) {
        if (!schedulable(r))
            continue;
        (isHighPriority(r) ? high : low).push_back(r);
    }

    sortQueue(high);
    sortQueue(low);

    std::vector<workload::Request*> order;
    order.reserve(high.size() + low.size());
    order.insert(order.end(), high.begin(), high.end());
    order.insert(order.end(), low.begin(), low.end());

    // Optional answering reserve: cap how much KV the high queue may
    // claim so the low queue is never fully squeezed out.
    TokenCount high_cap = static_cast<TokenCount>(
        static_cast<double>(pool.gpuCapacity()) *
        (1.0 - limits.answeringReserveFraction));
    std::size_t prefix =
        limits.answeringReserveFraction > 0.0 ? high.size() : 0;

    IterationPlan plan = greedySelect(order, pool,
                                      /*stop_at_unfit=*/false, prefix,
                                      high_cap);
    annotatePrediction(plan);
    return plan;
}

void
PascalScheduler::onPhaseTransition(workload::Request* req)
{
    req->resetQuantum();
}

int
PascalScheduler::numReasoning() const
{
    int n = 0;
    for (const auto* r : requests) {
        if (isHighPriority(r) && !r->finished())
            ++n;
    }
    return n;
}

} // namespace core
} // namespace pascal
