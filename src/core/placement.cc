#include "src/core/placement.hh"

#include "src/common/log.hh"

namespace pascal
{
namespace core
{

InstanceId
BaselinePlacement::placeNew(const ClusterView& view,
                            const workload::Request& req)
{
    (void)req;
    if (view.empty())
        fatal("BaselinePlacement: empty cluster");

    InstanceId best = view.front().id;
    TokenCount best_kv = view.front().kvFootprintTokens;
    for (const auto& snap : view) {
        if (snap.kvFootprintTokens < best_kv) {
            best_kv = snap.kvFootprintTokens;
            best = snap.id;
        }
    }
    return best;
}

InstanceId
BaselinePlacement::placeTransition(const ClusterView& view,
                                   const workload::Request& req,
                                   InstanceId home)
{
    (void)view;
    (void)req;
    return home; // Baselines never migrate at phase transitions.
}

} // namespace core
} // namespace pascal
