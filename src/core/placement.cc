#include "src/core/placement.hh"

#include <limits>

#include "src/common/log.hh"

namespace pascal
{
namespace core
{

InstanceId
BaselinePlacement::placeNew(const ClusterView& view,
                            const workload::Request& req)
{
    (void)req;
    if (view.empty())
        fatal("BaselinePlacement: empty cluster");

    // Down/draining instances are unroutable; with every instance
    // down the caller gets kNoInstance and must retry or shed.
    InstanceId best = kNoInstance;
    TokenCount best_kv = std::numeric_limits<TokenCount>::max();
    for (const auto& snap : view) {
        if (!snap.up)
            continue;
        if (snap.kvFootprintTokens < best_kv) {
            best_kv = snap.kvFootprintTokens;
            best = snap.id;
        }
    }
    return best;
}

InstanceId
BaselinePlacement::placeTransition(const ClusterView& view,
                                   const workload::Request& req,
                                   InstanceId home)
{
    (void)view;
    (void)req;
    return home; // Baselines never migrate at phase transitions.
}

} // namespace core
} // namespace pascal
