/**
 * @file
 * Round-robin time-sharing scheduler (Section II-C, Fig. 2(c)).
 *
 * Every request receives a fixed token quantum (paper: 500). Having
 * consumed more quanta lowers a request's priority, so under memory
 * pressure the longest-running requests are preempted first and newly
 * arrived requests are admitted promptly, eliminating head-of-line
 * blocking at the cost of preemption overhead. The policy is
 * phase-unaware: reasoning and answering tokens count against the same
 * quantum.
 *
 * The (quantaConsumed, arrival, id) key only moves on a quantum
 * rollover — once every `quantum` emitted tokens per request — so in
 * incremental mode the queue repair touches at most the handful of
 * requests that rolled over since the last plan.
 */

#ifndef PASCAL_CORE_RR_SCHEDULER_HH
#define PASCAL_CORE_RR_SCHEDULER_HH

#include <string>

#include "src/core/intra_scheduler.hh"
#include "src/core/ordered_queue.hh"

namespace pascal
{
namespace core
{

/** Classic RR priority: fewest quanta, then arrival order, below the
 *  SLO-class rank (inert all-zero level with classes off). */
struct RrOrder
{
    bool
    operator()(const workload::Request* a,
               const workload::Request* b) const
    {
        if (a->schedClassRank != b->schedClassRank)
            return a->schedClassRank < b->schedClassRank;
        if (a->quantaConsumed != b->quantaConsumed)
            return a->quantaConsumed < b->quantaConsumed;
        if (a->spec().arrival != b->spec().arrival)
            return a->spec().arrival < b->spec().arrival;
        return a->id() < b->id();
    }
};

/** Token-quantum round-robin across all hosted requests. */
class RrScheduler : public IntraScheduler
{
  public:
    explicit RrScheduler(SchedLimits limits);

    std::string name() const override { return "RR"; }

  protected:
    void planInto(const model::KvPool& pool,
                  IterationPlan& out) override;

    void onHostedAdded(workload::Request* req) override
    {
        queue.insert(req);
    }

    void onHostedRemoved(workload::Request* req) override
    {
        queue.erase(req);
    }

    void
    onMaterialChanged(workload::Request* req, int delta) override
    {
        (void)delta;
        queue.noteMaterialized(req);
    }

    void onRequestExecuted(workload::Request* req,
                           bool quanta_changed) override
    {
        if (quanta_changed) {
            queue.markDirty(req);
            noteKeyChanged(req);
            noteStateChanged();
        }
    }

  private:
    OrderedQueue<RrOrder> queue{1};
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_RR_SCHEDULER_HH
