/**
 * @file
 * Round-robin time-sharing scheduler (Section II-C, Fig. 2(c)).
 *
 * Every request receives a fixed token quantum (paper: 500). Having
 * consumed more quanta lowers a request's priority, so under memory
 * pressure the longest-running requests are preempted first and newly
 * arrived requests are admitted promptly, eliminating head-of-line
 * blocking at the cost of preemption overhead. The policy is
 * phase-unaware: reasoning and answering tokens count against the same
 * quantum.
 */

#ifndef PASCAL_CORE_RR_SCHEDULER_HH
#define PASCAL_CORE_RR_SCHEDULER_HH

#include <string>

#include "src/core/intra_scheduler.hh"

namespace pascal
{
namespace core
{

/** Token-quantum round-robin across all hosted requests. */
class RrScheduler : public IntraScheduler
{
  public:
    explicit RrScheduler(SchedLimits limits);

    std::string name() const override { return "RR"; }

    IterationPlan plan(const model::KvPool& pool) override;
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_RR_SCHEDULER_HH
