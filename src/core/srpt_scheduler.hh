/**
 * @file
 * Speculative shortest-remaining-processing-time scheduler.
 *
 * Orders every schedulable request by the wired LengthPredictor's rank
 * score (predicted remaining decode tokens for length predictors, a
 * win-rate score for the pairwise rank predictor) and serves the
 * shortest first. With the oracle predictor this is true preemptive
 * SRPT — the classical mean-latency optimum — which bounds what any
 * speculative policy can gain; with noisy/learned predictors it
 * degrades gracefully because mis-ranked requests are merely scheduled
 * late, never starved of correctness.
 *
 * Like FCFS, SRPT needs no token quantum: priorities come entirely
 * from the predictions, so quantum accounting is disabled.
 *
 * Rank scores move with the request's own progress, so in incremental
 * mode every executed request is re-keyed each iteration (no verbatim
 * plan reuse), but idle requests keep their cached score: the repair
 * is O(batch log batch) instead of O(hosted log hosted), and a
 * predictor version bump (an online learner updating its state)
 * re-keys everything.
 */

#ifndef PASCAL_CORE_SRPT_SCHEDULER_HH
#define PASCAL_CORE_SRPT_SCHEDULER_HH

#include <string>

#include "src/core/intra_scheduler.hh"
#include "src/core/ordered_queue.hh"

namespace pascal
{
namespace core
{

/** Shortest cached rank score, arrival/id tie-broken, below the
 *  SLO-class rank (inert all-zero level with classes off). */
struct SrptOrder
{
    bool
    operator()(const workload::Request* a,
               const workload::Request* b) const
    {
        if (a->schedClassRank != b->schedClassRank)
            return a->schedClassRank < b->schedClassRank;
        if (a->schedScore != b->schedScore)
            return a->schedScore < b->schedScore;
        if (a->spec().arrival != b->spec().arrival)
            return a->spec().arrival < b->spec().arrival;
        return a->id() < b->id();
    }
};

/** Predicted-shortest-remaining-first scheduler. */
class SrptScheduler : public IntraScheduler
{
  public:
    explicit SrptScheduler(SchedLimits limits);

    std::string name() const override { return "SRPT"; }

  protected:
    /** @throws FatalError if no predictor is wired (SRPT cannot rank
     *  requests blind). */
    void planInto(const model::KvPool& pool,
                  IterationPlan& out) override;

    void onHostedAdded(workload::Request* req) override
    {
        req->schedScore = lengthPredictor
                              ? lengthPredictor->rankScore(*req)
                              : 0.0;
        queue.insert(req);
    }

    void onHostedRemoved(workload::Request* req) override
    {
        queue.erase(req);
    }

    void
    onMaterialChanged(workload::Request* req, int delta) override
    {
        (void)delta;
        queue.noteMaterialized(req);
    }

    void onRequestExecuted(workload::Request* req, bool) override
    {
        // Progress moves the predicted remaining work.
        req->schedScore = lengthPredictor->rankScore(*req);
        queue.markDirty(req);
        noteKeyChanged(req);
        noteStateChanged();
    }

    bool keysUsePredictions() const override { return true; }

  private:
    OrderedQueue<SrptOrder> queue{1};
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_SRPT_SCHEDULER_HH
