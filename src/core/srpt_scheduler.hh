/**
 * @file
 * Speculative shortest-remaining-processing-time scheduler.
 *
 * Orders every schedulable request by the wired LengthPredictor's rank
 * score (predicted remaining decode tokens for length predictors, a
 * win-rate score for the pairwise rank predictor) and serves the
 * shortest first. With the oracle predictor this is true preemptive
 * SRPT — the classical mean-latency optimum — which bounds what any
 * speculative policy can gain; with noisy/learned predictors it
 * degrades gracefully because mis-ranked requests are merely scheduled
 * late, never starved of correctness.
 *
 * Like FCFS, SRPT needs no token quantum: priorities come entirely
 * from the predictions, so quantum accounting is disabled.
 */

#ifndef PASCAL_CORE_SRPT_SCHEDULER_HH
#define PASCAL_CORE_SRPT_SCHEDULER_HH

#include <string>

#include "src/core/intra_scheduler.hh"

namespace pascal
{
namespace core
{

/** Predicted-shortest-remaining-first scheduler. */
class SrptScheduler : public IntraScheduler
{
  public:
    explicit SrptScheduler(SchedLimits limits);

    std::string name() const override { return "SRPT"; }

    /** @throws FatalError if no predictor is wired (SRPT cannot rank
     *  requests blind). */
    IterationPlan plan(const model::KvPool& pool) override;
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_SRPT_SCHEDULER_HH
