/**
 * @file
 * PASCAL's instance-level scheduler (Section IV-B).
 *
 * Algorithm 1 (reasoning placement): among instances whose answering
 * requests all meet their SLOs (t_i), pick the one with the smallest
 * KV footprint m_i; if no instance is SLO-clean, pick the global
 * minimum-m_i instance to limit further damage.
 *
 * Algorithm 2 (answering placement at the phase boundary): among
 * SLO-clean instances pick the fewest reasoning requests r_i; if none
 * is clean, pick the minimum of r_i + a_i, where a_i counts answering
 * requests still inside their first quantum (the likely-next-scheduled
 * competition).
 *
 * Adaptive migration (Fig. 7): if the home instance has enough free
 * GPU memory for the transitioning request's KV while the selected
 * target does not, the migration is overridden and the request stays,
 * avoiding pointless KV transfer and target-side stalls. The
 * NoMigration and NonAdaptive ablations of Section V-D disable
 * migration entirely or the override respectively.
 */

#ifndef PASCAL_CORE_PASCAL_PLACEMENT_HH
#define PASCAL_CORE_PASCAL_PLACEMENT_HH

#include <string>

#include "src/core/placement.hh"

namespace pascal
{
namespace core
{

/** Phase-aware placement with SLO filtering and adaptive migration. */
class PascalPlacement : public Placement
{
  public:
    /** Behavioural variants for the Section V-D ablations. */
    enum class Variant
    {
        Full,        //!< Algorithms 1+2 with adaptive override.
        NonAdaptive, //!< Always follow Algorithm 2's choice.
        NoMigration, //!< Pin requests to their Algorithm-1 instance.

        /**
         * Speculative: Algorithm 1 routes on the *predicted* KV
         * footprint (current KV plus predicted remaining growth of
         * every hosted request) instead of the current footprint, and
         * the adaptive override checks whether the target can hold the
         * migrating request's predicted *final* KV rather than just
         * its current KV + 1. Fig. 13's critique — "the placement
         * policy only considers the KV cache footprint during
         * reasoning [and] neglects the memory required for answering"
         * — is exactly the blind spot this removes. Requires a wired
         * predictor; falls back to Full behaviour without one.
         */
        Predictive,
    };

    explicit PascalPlacement(Variant variant = Variant::Full);

    std::string name() const override;

    /** Algorithm 1. */
    InstanceId placeNew(const ClusterView& view,
                        const workload::Request& req) override;

    /** Algorithm 2 (+ adaptive override unless disabled). */
    InstanceId placeTransition(const ClusterView& view,
                               const workload::Request& req,
                               InstanceId home) override;

    Variant variant() const { return mode; }

    void setPredictor(const predict::LengthPredictor* p) override
    {
        predictor = p;
    }

  private:
    Variant mode;
    const predict::LengthPredictor* predictor = nullptr;
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_PASCAL_PLACEMENT_HH
