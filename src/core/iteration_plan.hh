/**
 * @file
 * The contract between an intra-instance scheduler and the instance
 * batch engine: one iteration's worth of decisions.
 */

#ifndef PASCAL_CORE_ITERATION_PLAN_HH
#define PASCAL_CORE_ITERATION_PLAN_HH

#include <vector>

#include "src/common/types.hh"
#include "src/workload/request.hh"

namespace pascal
{
namespace core
{

/**
 * Scheduler decisions for the next iteration. The engine applies them
 * in order: swapOut, swapIn, prewarm, then either one prefill pass or
 * one decode step (vLLM-style alternation: iterations with prefills do
 * not decode).
 */
struct IterationPlan
{
    /** New requests to prefill (KV allocated, prefill latency paid). */
    std::vector<workload::Request*> prefill;

    /** startInAnswering requests whose KV is pre-generated: allocate
     *  without prefill cost (Fig. 5 characterization mode). */
    std::vector<workload::Request*> prewarm;

    /** Preempted requests to reload from CPU (PCIe latency). */
    std::vector<workload::Request*> swapIn;

    /** Resident requests to offload to CPU (PCIe latency). */
    std::vector<workload::Request*> swapOut;

    /** Decode batch: each member emits one token this iteration. */
    std::vector<workload::Request*> decode;

    /**
     * Predicted decode tokens the selected work (prefill + decode)
     * still owes after this iteration, summed over the batch by
     * predictor-aware schedulers (0 when no predictor is wired).
     * Diagnostic: lets harnesses watch how much speculative backlog a
     * plan commits to.
     */
    double predictedRemainingTokens = 0.0;

    bool
    idle() const
    {
        return prefill.empty() && prewarm.empty() && swapIn.empty() &&
               swapOut.empty() && decode.empty();
    }

    bool isPrefillIteration() const { return !prefill.empty(); }

    /** Clear all decisions but keep the vectors' capacity, so a plan
     *  rebuilt every iteration stops allocating once warm. */
    void
    reset()
    {
        prefill.clear();
        prewarm.clear();
        swapIn.clear();
        swapOut.clear();
        decode.clear();
        predictedRemainingTokens = 0.0;
    }
};

/** Tunables shared by every scheduling policy. */
struct SchedLimits
{
    /** RR token quantum (paper: 500 for RR and for each PASCAL
     *  queue). <= 0 disables quantum accounting (FCFS). */
    TokenCount quantum = 500;

    /** Maximum concurrent sequences per iteration. */
    int maxBatchSize = 1024;

    /** Maximum summed prompt tokens per prefill iteration. */
    TokenCount maxPrefillTokens = 8192;

    /** Maximum sequences per prefill iteration. */
    int maxPrefillSeqs = 16;

    /** PASCAL: reasoning requests whose KV exceeds this many tokens
     *  are demoted to the low-priority queue (paper: 5000). */
    TokenCount demoteThresholdTokens = 5000;

    /**
     * PASCAL-Spec: how far below the demotion threshold predictive
     * demotion may fire. A reasoning request whose *predicted* final
     * reasoning KV exceeds demoteThresholdTokens is demoted as soon as
     * its current KV enters this window (i.e. up to this many tokens
     * early), instead of waiting for the threshold to actually be
     * crossed. 0 disables lookahead and reproduces the reactive rule;
     * must stay below demoteThresholdTokens.
     */
    TokenCount demoteLookaheadTokens = 512;

    /**
     * PASCAL extension (suggested by the paper's Fig. 13 analysis:
     * "the placement policy only considers the KV cache footprint
     * during reasoning [and] neglects the memory required for
     * answering"): reserve this fraction of the GPU KV capacity for
     * the low-priority (answering) queue. 0 reproduces the paper's
     * scheduler exactly.
     */
    double answeringReserveFraction = 0.0;

    /**
     * False (default, vLLM 0.6.x): iterations with prefills do not
     * decode (prefill priority). True (Sarathi-style chunked/mixed
     * batching): prefills and decodes share an iteration, removing
     * decode stalls at the cost of longer mixed iterations.
     */
    bool chunkedPrefill = false;

    /**
     * Debug mode: disable the incremental scheduling fast path and
     * recompute every queue from scratch at every iteration (the
     * pre-optimization behaviour). The PASCAL_FORCE_RESORT environment
     * variable forces this globally. Results must be byte-identical
     * either way — the plan-reuse invariance tests run the same traces
     * in both modes and compare RunResults field by field.
     */
    bool forceResort = false;

    /**
     * Debug mode mirroring forceResort for the lazy phase-time
     * accrual: keep the eager O(hosted) per-iteration walk as a
     * verification pass that recomputes every hosted request's
     * standing bucket and panics if the lazily maintained stamp
     * disagrees. Settlement arithmetic is shared between the modes,
     * so RunResults are byte-identical whenever the stamps are
     * right — the accrual invariance tests run the full scheduler x
     * predictor grid this way. The PASCAL_FORCE_ACCRUE environment
     * variable forces it globally.
     */
    bool forceAccrue = false;

    /**
     * Debug mode mirroring forceResort for burst-coalesced arrival
     * planning: schedule one plan-boundary event per kick() instead
     * of deduplicating same-timestamp kicks into a single boundary —
     * the pre-optimization cost model that rebuilds a plan per
     * arrival-burst member. Results must be byte-identical either
     * way (the redundant boundaries are provably no-ops); the burst
     * coalescing invariance tests run both modes and compare
     * RunResults field by field. The PASCAL_FORCE_KICK environment
     * variable forces it globally.
     */
    bool forcePerArrivalKick = false;

    /**
     * Debug mode mirroring forceResort for incremental plan repair:
     * when a plan is dirtied by a bounded delta (departures,
     * demotions, phase transitions, landings), the fast path patches
     * the previous decode batch by the journaled dirty set instead of
     * re-walking every material queue. This flag (or the
     * PASCAL_FORCE_REPAIR environment variable) disables the patch
     * path so every non-reused boundary pays the full greedy walk —
     * the pre-optimization cost model. Results must be byte-identical
     * either way; the plan-repair invariance tests pin the full 2^5
     * force-mode matrix field by field.
     */
    bool forcePlanRepair = false;

    /** Validate; calls fatal() on nonsense values. */
    void validate() const;
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_ITERATION_PLAN_HH
