#include "src/core/fcfs_scheduler.hh"

#include <algorithm>

namespace pascal
{
namespace core
{

FcfsScheduler::FcfsScheduler(SchedLimits limits)
    : IntraScheduler(limits)
{
    // FCFS has no quantum; disable quantum accounting so the RR
    // priority key never changes.
    this->limits.quantum = 0;
}

void
FcfsScheduler::planInto(const model::KvPool& pool, IterationPlan& out)
{
    // Strict arrival order across all states. Swapped requests are
    // older than waiting ones by construction, so one ordered walk
    // with stop-at-first-unfit semantics reproduces vLLM FCFS:
    // resume-before-admit, block new arrivals behind the first
    // request that does not fit, and evict from the back (the most
    // recently arrived) when the decode batch cannot grow.
    if (incrementalEnabled()) {
        queue.repair(); // No-op except after add/remove.
        greedySelectRanges(queue.end(), queue.end(), queue.begin(),
                           queue.end(), /*cap_high=*/false, 0, pool,
                           /*stop_at_unfit=*/true, out);
        return;
    }

    orderScratch.clear();
    for (auto* r : requests) {
        if (schedulable(r))
            orderScratch.push_back(r);
    }
    std::sort(orderScratch.begin(), orderScratch.end(), FcfsOrder{});
    greedySelectInto(orderScratch, pool, /*stop_at_unfit=*/true, out);
}

} // namespace core
} // namespace pascal
