#include "src/core/fcfs_scheduler.hh"

#include <algorithm>

namespace pascal
{
namespace core
{

FcfsScheduler::FcfsScheduler(SchedLimits limits)
    : IntraScheduler(limits)
{
    // FCFS has no quantum; disable quantum accounting so the RR
    // priority key never changes.
    this->limits.quantum = 0;
}

IterationPlan
FcfsScheduler::plan(const model::KvPool& pool)
{
    // Strict arrival order across all states. Swapped requests are
    // older than waiting ones by construction, so one ordered walk
    // with stop-at-first-unfit semantics reproduces vLLM FCFS:
    // resume-before-admit, block new arrivals behind the first
    // request that does not fit, and evict from the back (the most
    // recently arrived) when the decode batch cannot grow.
    std::vector<workload::Request*> order;
    order.reserve(requests.size());
    for (auto* r : requests) {
        if (schedulable(r))
            order.push_back(r);
    }
    std::sort(order.begin(), order.end(),
        [](const workload::Request* a, const workload::Request* b) {
            if (a->spec().arrival != b->spec().arrival)
                return a->spec().arrival < b->spec().arrival;
            return a->id() < b->id();
        });

    return greedySelect(order, pool, /*stop_at_unfit=*/true);
}

} // namespace core
} // namespace pascal
