#include "src/core/intra_scheduler.hh"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace core
{

namespace
{
const char* const kPlanDeclineNames[] = {
    "none",           // PlanDecline::None
    "inactive",       // PlanDecline::Inactive
    "state_changed",  // PlanDecline::StateChanged
    "predictor_moved",// PlanDecline::PredictorMoved
    "veto",           // PlanDecline::Veto
    "budget",         // PlanDecline::Budget
    "waiting_work",   // PlanDecline::WaitingWork
    "swapped_members",// PlanDecline::SwappedMembers
    "bailed",         // PlanDecline::Bailed
    "batch_limit",    // PlanDecline::BatchLimit
};
} // namespace

const char*
planDeclineName(PlanDecline d)
{
    const auto idx = static_cast<std::size_t>(d);
    if (idx >= numPlanDeclineNames())
        return "unknown";
    return kPlanDeclineNames[idx];
}

const char* const*
planDeclineNames()
{
    return kPlanDeclineNames;
}

std::size_t
numPlanDeclineNames()
{
    return sizeof(kPlanDeclineNames) / sizeof(kPlanDeclineNames[0]);
}

void
SchedLimits::validate() const
{
    if (maxBatchSize <= 0)
        fatal("SchedLimits: maxBatchSize must be positive");
    if (maxPrefillTokens <= 0 || maxPrefillSeqs <= 0)
        fatal("SchedLimits: prefill limits must be positive");
    if (demoteThresholdTokens <= 0)
        fatal("SchedLimits: demoteThresholdTokens must be positive");
    if (answeringReserveFraction < 0.0 ||
        answeringReserveFraction >= 1.0) {
        fatal("SchedLimits: answeringReserveFraction must be in "
              "[0, 1)");
    }
    if (demoteLookaheadTokens < 0) {
        fatal("SchedLimits: demoteLookaheadTokens must be >= 0 "
              "(0 disables predictive demotion lookahead)");
    }
}

IntraScheduler::IntraScheduler(SchedLimits limits) : limits(limits)
{
    limits.validate();
}

void
IntraScheduler::enableIncremental()
{
    // Read per call (construction-time only, not the hot path) so an
    // embedder toggling the variable between runs is honored.
    if (std::getenv("PASCAL_FORCE_RESORT") != nullptr ||
        limits.forceResort) {
        return;
    }
    if (!requests.empty())
        panic("enableIncremental: must be called before requests are "
              "added");
    incremental = true;
    stateChanged = true;
    lastPlanReusable = false;
    // The plan-repair force twin backs off only the repair leg;
    // queues, counters, and plan reuse stay incremental.
    repairDisabled = std::getenv("PASCAL_FORCE_REPAIR") != nullptr ||
                     limits.forcePlanRepair;
    lastPlanRepairable = false;
}

void
IntraScheduler::add(workload::Request* req)
{
    if (req == nullptr)
        panic("IntraScheduler::add(nullptr)");
    req->schedHostedPos = requests.size();
    requests.push_back(req);
    req->schedPrevHosted = hostedLast;
    req->schedNextHosted = nullptr;
    if (hostedLast != nullptr)
        hostedLast->schedNextHosted = req;
    else
        hostedFirst = req;
    hostedLast = req;
    // Greedy-walk early-exit bookkeeping (any previous host already
    // unlinked the request from its own structures in remove()).
    req->schedInResidentList = false;
    req->schedEvictNode = nullptr;
    req->schedEvictDirty = false;
    req->schedRepairState = kRepairNone;
    req->schedRepairSplice = false;
    req->schedPlanStamp = 0;
    req->schedCountedPrewarm = false;
    req->schedCountedWaiting = false;
    if (req->exec == workload::ExecState::WaitingNew) {
        waitingPrompts.insert(req->spec().promptTokens);
        req->schedCountedWaiting = true;
        if (req->spec().startInAnswering) {
            req->schedCountedPrewarm = true;
            ++waitingPrewarmCount;
        }
    }
    noteResidency(req); // Migration landings arrive holding KV.
    if (!incremental)
        return;
    // A migrated request carries stale bookkeeping from its previous
    // host; start from a clean slate.
    req->schedQueueTag = 0;
    req->schedDirtyPending = false;
    req->schedDemotionPending = false;
    req->schedCountedReasoning = false;
    req->schedCountedFreshAns = false;
    req->schedScore = 0.0;
    req->schedCachedQuanta = req->quantaConsumed;
    syncCounters(req);
    noteStateChanged();
    onHostedAdded(req);
    // Journal entries for material landings are made by noteResidency
    // (called above, before the state resets): it is the single point
    // where a request gains KV on this instance — migration landings
    // here, prefill/prewarm allocations in the engine. WaitingNew
    // landings need no entry: a non-empty waiting set fails repair
    // eligibility by itself.
}

void
IntraScheduler::remove(workload::Request* req)
{
    std::size_t pos = req->schedHostedPos;
    if (pos >= requests.size() || requests[pos] != req) {
        panic("IntraScheduler::remove: request " +
              std::to_string(req->id()) + " not hosted on instance " +
              (instanceId == kNoInstance ? std::string("?")
                                         : std::to_string(instanceId)));
    }
    requests[pos] = requests.back();
    requests[pos]->schedHostedPos = pos;
    requests.pop_back();
    if (req->schedPrevHosted != nullptr)
        req->schedPrevHosted->schedNextHosted = req->schedNextHosted;
    else
        hostedFirst = req->schedNextHosted;
    if (req->schedNextHosted != nullptr)
        req->schedNextHosted->schedPrevHosted = req->schedPrevHosted;
    else
        hostedLast = req->schedPrevHosted;
    req->schedPrevHosted = nullptr;
    req->schedNextHosted = nullptr;
    if (incremental) {
        if (req->schedCountedReasoning)
            --reasoningCount;
        if (req->schedCountedFreshAns)
            --freshAnsweringCount;
        req->schedCountedReasoning = false;
        req->schedCountedFreshAns = false;
        req->schedDemotionPending = false;
        noteStateChanged();
        if (repairActive()) {
            if (req->schedRepairState == kRepairInsert) {
                // Landed and departed within one lineage: cancel the
                // pending insert instead of journaling an erase (the
                // member never joined the batch).
                for (auto it = repairJournal.rbegin();
                     it != repairJournal.rend(); ++it) {
                    if (it->req == req && it->op == kRepairInsert) {
                        it->op = kRepairNone;
                        break;
                    }
                }
                req->schedRepairState = kRepairNone;
            } else if (req->schedInResidentList) {
                // Departing batch member: record its histogram bucket
                // now — the entry must stay valid even if the request
                // is re-hosted (and keeps growing) elsewhere. Having
                // executed planAge + 1 times since its bucket was
                // recorded, its build-time offset is kv - planAge - 1
                // (mod block).
                req->schedRepairState = kRepairNone;
                std::int64_t block =
                    static_cast<std::int64_t>(lastBlockSize);
                std::int64_t v =
                    static_cast<std::int64_t>(req->kvTokens()) -
                    static_cast<std::int64_t>(planAge) - 1;
                repairJournal.push_back(
                    {req, kRepairErase,
                     static_cast<std::uint32_t>(((v % block) + block) %
                                                block)});
            }
        }
        // Queue unlink first (it reads schedInResidentList to keep
        // its material count exact), then the early-exit structures.
        onHostedRemoved(req);
    }
    unlinkMaterial(req);
    if (req->schedCountedWaiting) {
        // Departing while still waiting (not a path the engine takes
        // today, but the floor must stay exact regardless).
        req->schedCountedWaiting = false;
        waitingPrompts.erase(
            waitingPrompts.find(req->spec().promptTokens));
    }
    if (req->schedCountedPrewarm) {
        req->schedCountedPrewarm = false;
        --waitingPrewarmCount;
    }
}

void
IntraScheduler::unlinkMaterial(workload::Request* req)
{
    if (!req->schedInResidentList)
        return;
    if (incremental)
        evictOrder.erase(req);
    req->schedInResidentList = false;
}

void
IntraScheduler::noteResidency(workload::Request* req)
{
    bool material =
        req->exec == workload::ExecState::ResidentGpu ||
        req->exec == workload::ExecState::SwappedCpu;
    if (material && !req->schedInResidentList) {
        req->schedInResidentList = true;
        if (incremental) {
            // Deferred link: the eviction-order key is read at the
            // next build's repair(), after any same-boundary re-keys.
            evictOrder.insert(req);
            if (repairActive()) {
                if (req->exec == workload::ExecState::ResidentGpu &&
                    req->schedRepairState == kRepairNone) {
                    // GPU KV appeared mid-lineage (migration landing,
                    // prefill or prewarm allocation during an
                    // excursion): patchable — merge it into the
                    // decode batch at its rank at the next boundary.
                    req->schedRepairState = kRepairInsert;
                    repairJournal.push_back({req, kRepairInsert, 0});
                } else if (req->exec ==
                           workload::ExecState::SwappedCpu) {
                    // A swapped landing needs a swap-in decision the
                    // patch path cannot make; only a full walk can.
                    repairBail = true;
                }
            }
        }
        if (req->schedNode != nullptr) {
            // Flipped in place while linked (prefill/prewarm
            // allocation): the owning queue's material count moves.
            onMaterialChanged(req, 1);
        }
        if (req->schedCountedWaiting) {
            // It stopped waiting: retire its admission-floor entry.
            req->schedCountedWaiting = false;
            waitingPrompts.erase(
                waitingPrompts.find(req->spec().promptTokens));
        }
    } else if (!material && req->schedInResidentList) {
        unlinkMaterial(req);
        if (req->schedNode != nullptr)
            onMaterialChanged(req, -1);
    }
    if (req->schedCountedPrewarm &&
        req->exec != workload::ExecState::WaitingNew) {
        req->schedCountedPrewarm = false;
        --waitingPrewarmCount;
    }
}

void
IntraScheduler::syncCounters(workload::Request* req)
{
    workload::Phase phase = req->phase();
    bool reasoning =
        phase == workload::Phase::Reasoning && !req->demoted;
    bool fresh = phase == workload::Phase::Answering &&
                 req->quantaConsumed == 0;
    if (reasoning != req->schedCountedReasoning) {
        reasoningCount += reasoning ? 1 : -1;
        req->schedCountedReasoning = reasoning;
    }
    if (fresh != req->schedCountedFreshAns) {
        freshAnsweringCount += fresh ? 1 : -1;
        req->schedCountedFreshAns = fresh;
    }
}

void
IntraScheduler::noteExecuted(workload::Request* req)
{
    if (!incremental)
        return;
    bool quanta_changed =
        req->quantaConsumed != req->schedCachedQuanta;
    req->schedCachedQuanta = req->quantaConsumed;
    syncCounters(req);
    onRequestExecuted(req, quanta_changed);
}

void
IntraScheduler::onPhaseTransition(workload::Request*)
{
    // Phase-unaware baselines need no bookkeeping. (The counter move
    // itself was already synced by noteExecuted when the transition
    // token was emitted.)
}

int
IntraScheduler::numReasoning() const
{
    return incremental ? reasoningCount : scanReasoning();
}

int
IntraScheduler::numFreshAnswering() const
{
    return incremental ? freshAnsweringCount : scanFreshAnswering();
}

int
IntraScheduler::scanReasoning() const
{
    int n = 0;
    for (const auto* r : requests) {
        if (r->phase() == workload::Phase::Reasoning && !r->demoted)
            ++n;
    }
    return n;
}

int
IntraScheduler::scanFreshAnswering() const
{
    int n = 0;
    for (const auto* r : requests) {
        if (r->phase() == workload::Phase::Answering && !r->finished()
            && r->quantaConsumed == 0) {
            ++n;
        }
    }
    return n;
}

bool
IntraScheduler::predictorMoved() const
{
    return keysUsePredictions() &&
           currentPredictorVersion() != lastPredictorVersion;
}

void
IntraScheduler::buildPlan(const model::KvPool& pool, IterationPlan& out)
{
    out.reset();
    // A walk does not by itself end a patchable lineage: whether it
    // does depends on the plan it produces (see the excursion test
    // below), so the journal is cleared at the end, not here.
    bool lineage_alive = repairActive();
    if (incremental) {
        lastKeptResidents.clear();
        lastDecodeCapped.clear();
        lastHighBudgetCap = -1;
    }
    planInto(pool, out);
    if (!incremental)
        return;
    stateChanged = false;
    lastPredictorVersion = currentPredictorVersion();
    lastPlanReusable =
        out.prefill.empty() && out.prewarm.empty() &&
        out.swapIn.empty() && out.swapOut.empty() &&
        !out.decode.empty() &&
        lastDecodeCapped.size() == out.decode.size();
    if (lineage_alive && out.decode.empty() && out.swapIn.empty() &&
        out.swapOut.empty() &&
        (!out.prefill.empty() || !out.prewarm.empty())) {
        // Prefill/prewarm excursion: the walk only admits new prompts
        // — no decode member runs this iteration, so every basis
        // member's KV (and with it the lineage's histogram, age and
        // journal) is untouched, and the lineage stays patchable. The
        // newly resident members journal their own inserts from
        // noteResidency when the engine applies this plan, exactly
        // like migration landings.
        lastPlanRepairable = true;
        return;
    }
    planAge = 0;
    if (lastPlanReusable && lastHighBudgetCap < 0) {
        auto block = static_cast<std::size_t>(pool.blockSize());
        blockOffsetHist.assign(block, 0);
        for (const auto* r : out.decode) {
            ++blockOffsetHist[static_cast<std::size_t>(
                r->kvTokens() % pool.blockSize())];
        }
    }
    clearRepairJournal();
    // A patchable lineage: uncapped pure decode with every material
    // member selected (no kept residents), so the histogram is the
    // whole budget story and membership deltas are the whole batch
    // story. The force twin keeps the journal dark instead.
    lastPlanRepairable = !repairDisabled && lastPlanReusable &&
                         lastHighBudgetCap < 0 &&
                         lastKeptResidents.empty();
    if (lastPlanRepairable)
        basisDecode.assign(out.decode.begin(), out.decode.end());
    lastBlockSize = pool.blockSize();
}

bool
IntraScheduler::reusePlan(const IterationPlan& prev,
                          const model::KvPool& pool)
{
    reuseDecline = PlanDecline::None;
    if (!incremental) {
        reuseDecline = PlanDecline::Inactive;
        return false;
    }
    if (!lastPlanReusable || stateChanged) {
        reuseDecline = PlanDecline::StateChanged;
        return false;
    }
    if (predictorMoved()) {
        reuseDecline = PlanDecline::PredictorMoved;
        return false;
    }
    // Deferred plan-time decisions (demotion) fire exactly here, the
    // same point recompute mode applies them, so their timing relative
    // to snapshots and callbacks is identical in both modes.
    if (reuseVeto()) {
        reuseDecline = PlanDecline::Veto;
        return false;
    }
    if (lastHighBudgetCap < 0) {
        // Uncapped walk: one integer comparison decides the whole
        // budget revalidation (see blockOffsetHist).
        TokenCount block = pool.blockSize();
        std::uint64_t k = planAge + 1;
        std::uint64_t crossings = blockOffsetHist[static_cast<
            std::size_t>((static_cast<std::uint64_t>(block) -
                          k % static_cast<std::uint64_t>(block)) %
                         static_cast<std::uint64_t>(block))];
        if (pool.gpuUsed() +
                block * static_cast<TokenCount>(crossings) >
            pool.gpuCapacity()) {
            reuseDecline = PlanDecline::Budget;
            return false;
        }
    } else if (!revalidate(prev, pool)) {
        reuseDecline = PlanDecline::Budget;
        return false;
    }
    ++planAge;
    return true;
}

void
IntraScheduler::noteKeyChanged(workload::Request* req)
{
    if (!incremental || !req->schedInResidentList)
        return;
    evictOrder.markDirty(req);
    if (repairActive() && req->schedRepairState == kRepairNone) {
        // First key move of this lineage; later moves ride the same
        // entry (the merge reads keys at patch time), and a pending
        // insert already re-reads its key too.
        req->schedRepairState = kRepairRekey;
        repairJournal.push_back({req, kRepairRekey, 0});
    }
}

void
IntraScheduler::clearRepairJournal()
{
    for (auto& e : repairJournal) {
        // Erase entries' requests may already be journaled by a new
        // host — their state belongs to that scheduler now. (A
        // request that round-tripped back shows up in a later entry
        // of our own journal and is cleared through it.)
        if (e.op != kRepairErase && isHosted(e.req))
            e.req->schedRepairState = kRepairNone;
    }
    repairJournal.clear();
    repairBail = false;
    lastPlanRepairable = false;
}

bool
IntraScheduler::repairPlan(IterationPlan& prev,
                           const model::KvPool& pool)
{
    repairDecline = PlanDecline::None;
    if (!repairActive()) {
        repairDecline = repairBail ? PlanDecline::Bailed
                                   : PlanDecline::Inactive;
        return false;
    }
    // Deferred plan-time decisions (PASCAL's demotions) fire at every
    // boundary in recompute mode; reusePlan's veto only reaches them
    // when its earlier gates pass, so re-run them here. Idempotent,
    // and any applied demotion journals its own re-key.
    applyDeferredDecisions();
    if (repairBail || predictorMoved() || !waitingPrompts.empty() ||
        waitingPrewarmCount > 0 ||
        pool.numTracked() != pool.numGpuResident()) {
        repairDecline =
            repairBail ? PlanDecline::Bailed
            : predictorMoved()
                ? PlanDecline::PredictorMoved
                : (!waitingPrompts.empty() || waitingPrewarmCount > 0)
                      ? PlanDecline::WaitingWork
                      : PlanDecline::SwappedMembers;
        return false;
    }

    // Fold the journal into the histogram and collect the patch. At
    // this boundary the lineage has run planAge times and is about to
    // run again (k-th execution), so a member whose KV is kv now
    // behaves like a build-time member with offset kv - k (mod B).
    const std::uint64_t k = planAge + 1;
    const std::int64_t block = static_cast<std::int64_t>(lastBlockSize);
    repairPatch.clear();
    eraseScratch.clear();
    std::int64_t batch = static_cast<std::int64_t>(basisDecode.size());
    for (auto& e : repairJournal) {
        switch (e.op) {
          case kRepairErase:
            // Self-contained: bucket recorded at remove time, member
            // guaranteed present in the basis (repairable builds
            // select every material member). Never dereferenced — the
            // departed request's arena slot may already host an
            // unrelated arrival — so the splice goes by pointer
            // identity.
            --blockOffsetHist[e.histIdx];
            eraseScratch.push_back(e.req);
            --batch;
            break;
          case kRepairRekey: {
            // Stale once the member departed (its state was reset at
            // remove; a new host may even have re-journaled it).
            if (e.req->schedRepairState != kRepairRekey ||
                !isHosted(e.req))
                break;
            e.req->schedRepairState = kRepairNone;
            e.req->schedRepairSplice = true;
            repairPatch.push_back(e.req);
            // No histogram move: the member stays in the batch and
            // keeps growing one token per iteration.
            break;
          }
          case kRepairInsert: {
            if (e.req->schedRepairState != kRepairInsert ||
                !isHosted(e.req))
                break;
            e.req->schedRepairState = kRepairNone;
            std::int64_t v =
                static_cast<std::int64_t>(e.req->kvTokens()) -
                static_cast<std::int64_t>(k);
            ++blockOffsetHist[static_cast<std::size_t>(
                ((v % block) + block) % block)];
            repairPatch.push_back(e.req);
            ++batch;
            break;
          }
          default:
            break; // Cancelled insert.
        }
    }
    repairJournal.clear();

    // Exact budget + cap check over the patched batch: under the
    // eligibility conditions every material member is in the batch,
    // so the full walk's admission total is exactly
    // gpuUsed + block * crossings — if it fits, the walk admits
    // everyone in eviction-priority order with no evictions, which is
    // precisely the merged batch below.
    const std::uint64_t kb = k % static_cast<std::uint64_t>(block);
    const std::size_t cross_idx = static_cast<std::size_t>(
        (static_cast<std::uint64_t>(block) - kb) %
        static_cast<std::uint64_t>(block));
    const std::uint64_t crossings = blockOffsetHist[cross_idx];
    if (batch <= 0 ||
        batch > static_cast<std::int64_t>(limits.maxBatchSize) ||
        pool.gpuUsed() + static_cast<TokenCount>(block) *
                             static_cast<TokenCount>(crossings) >
            pool.gpuCapacity()) {
        repairDecline =
            (batch <= 0 ||
             batch > static_cast<std::int64_t>(limits.maxBatchSize))
                ? PlanDecline::BatchLimit
                : PlanDecline::Budget;
        // Bail to the full walk: clear the transient splice marks —
        // every flagged member is in the patch (erases are flagless)
        // — and let buildPlan rebuild the moot half-patched
        // histogram.
        for (auto* r : repairPatch)
            r->schedRepairSplice = false;
        lastPlanRepairable = false;
        return false;
    }

    // Splice + ordered merge against the scheduler-held basis (the
    // caller's plan may be a prefill excursion whose decode is
    // empty): patch members re-enter at their current
    // ResidentEvictOrder rank; surviving members are already sorted
    // under their (unmoved) keys.
    std::sort(repairPatch.begin(), repairPatch.end(),
              ResidentEvictOrder{});
    std::less<const workload::Request*> addr_less{};
    std::sort(eraseScratch.begin(), eraseScratch.end(), addr_less);
    decodeScratch.clear();
    ResidentEvictOrder less{};
    auto pi = repairPatch.begin();
    for (auto* r : basisDecode) {
        if (r->schedRepairSplice) {
            r->schedRepairSplice = false;
            continue;
        }
        if (!eraseScratch.empty() &&
            std::binary_search(eraseScratch.begin(),
                               eraseScratch.end(),
                               static_cast<const workload::Request*>(r),
                               addr_less))
            continue;
        while (pi != repairPatch.end() && less(*pi, r))
            decodeScratch.push_back(*pi++);
        decodeScratch.push_back(r);
    }
    while (pi != repairPatch.end())
        decodeScratch.push_back(*pi++);
    prev.reset();
    prev.decode.swap(decodeScratch);
    basisDecode.assign(prev.decode.begin(), prev.decode.end());

    // The patched plan is byte-for-byte what buildPlan would emit, so
    // the lineage continues — and is again a reusable pure-decode
    // plan, even when the boundary followed an excursion. Kept
    // residents are cleared: the patched batch holds every material
    // member, so there is nothing for the engine to restamp.
    // (lastDecodeCapped is left stale on purpose — it is only ever
    // consulted when lastHighBudgetCap >= 0, which a repairable
    // lineage excludes.)
    lastPlanReusable = true;
    lastKeptResidents.clear();
    stateChanged = false;
    ++planAge;
    return true;
}

bool
IntraScheduler::revalidate(const IterationPlan& prev,
                           const model::KvPool& pool) const
{
    if (lastDecodeCapped.size() != prev.decode.size())
        return false;
    TokenCount budget = pool.gpuCapacity();
    TokenCount high =
        lastHighBudgetCap >= 0 ? lastHighBudgetCap : budget;
    for (std::size_t i = 0; i < prev.decode.size(); ++i) {
        const auto* r = prev.decode[i];
        TokenCount cost = pool.chargeFor(r->kvTokens() + 1);
        bool capped = lastDecodeCapped[i] != 0;
        TokenCount avail = capped ? std::min(budget, high) : budget;
        if (cost > avail)
            return false;
        budget -= cost;
        if (capped)
            high -= cost;
    }
    // Unselected residents were kept, not evicted; they still must
    // fit in the leftover (their own KV did not grow — they did not
    // run — but the decode batch's growth shrank the leftover).
    for (const auto* r : lastKeptResidents) {
        TokenCount cost = pool.chargeFor(r->kvTokens());
        if (cost > budget)
            return false;
        budget -= cost;
    }
    return true;
}

void
IntraScheduler::annotatePrediction(IterationPlan& plan) const
{
    if (lengthPredictor == nullptr)
        return;
    double remaining = 0.0;
    for (const auto* r : plan.prefill)
        remaining += lengthPredictor->predictRemainingTokens(*r);
    for (const auto* r : plan.decode)
        remaining += lengthPredictor->predictRemainingTokens(*r);
    plan.predictedRemainingTokens = remaining;
}

void
IntraScheduler::greedySelectInto(
    const std::vector<workload::Request*>& order,
    const model::KvPool& pool, bool stop_at_unfit, IterationPlan& out,
    std::size_t high_prefix_len, TokenCount high_budget_cap)
{
    auto split = order.begin() +
                 static_cast<std::ptrdiff_t>(high_prefix_len);
    greedySelectRanges(order.begin(), split, split, order.end(),
                       high_prefix_len > 0, high_budget_cap, pool,
                       stop_at_unfit, out);
}

void
IntraScheduler::finishGreedySelect(const model::KvPool& pool,
                                   IterationPlan& out,
                                   TokenCount leftover_budget)
{
    std::vector<workload::Request*>& unselected_residents =
        lastKeptResidents;

    // Unselected residents stay resident while the leftover budget
    // covers them (they simply skip this iteration); the rest are
    // evicted, lowest priority first. The record is already in walk
    // priority order end to end (the early-exit tail comes from the
    // maintained eviction-order structure pre-sorted), so the evicted
    // set and the swapOut sequence are byte-identical to the full
    // walk's with no re-sort.
    TokenCount total_keep_cost = 0;
    for (const auto* r : unselected_residents)
        total_keep_cost += pool.chargeFor(r->kvTokens());
    if (total_keep_cost > leftover_budget) {
        TokenCount keep_budget = leftover_budget;
        std::size_t kept = 0;
        for (auto* r : unselected_residents) {
            TokenCount keep_cost = pool.chargeFor(r->kvTokens());
            if (keep_cost <= keep_budget) {
                keep_budget -= keep_cost;
                unselected_residents[kept++] = r;
            } else {
                out.swapOut.push_back(r);
            }
        }
        unselected_residents.resize(kept); // Record: residents kept.
    }

    if (!out.prefill.empty() && !limits.chunkedPrefill) {
        // Prefill iterations do not decode (vLLM prefill priority).
        // Selected decode candidates stay resident and run next
        // iteration; swap-ins still execute so they are ready. The
        // displaced members join the kept-resident record so the
        // engine's lazy-accrual restamp covers them (never reused:
        // reusePlan requires an empty prefill list).
        for (auto* r : out.decode)
            unselected_residents.push_back(r);
        out.decode.clear();
        lastDecodeCapped.clear();
    } else {
        // Prewarmed requests join the decode batch immediately: their
        // KV allocation is free of charge. Under chunked prefill the
        // decode batch additionally runs alongside the prefills.
        for (auto* r : out.prewarm)
            out.decode.push_back(r);
    }
}

} // namespace core
} // namespace pascal
