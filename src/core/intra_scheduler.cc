#include "src/core/intra_scheduler.hh"

#include <algorithm>
#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace core
{

void
SchedLimits::validate() const
{
    if (maxBatchSize <= 0)
        fatal("SchedLimits: maxBatchSize must be positive");
    if (maxPrefillTokens <= 0 || maxPrefillSeqs <= 0)
        fatal("SchedLimits: prefill limits must be positive");
    if (demoteThresholdTokens <= 0)
        fatal("SchedLimits: demoteThresholdTokens must be positive");
    if (answeringReserveFraction < 0.0 ||
        answeringReserveFraction >= 1.0) {
        fatal("SchedLimits: answeringReserveFraction must be in "
              "[0, 1)");
    }
    if (demoteLookaheadTokens < 0) {
        fatal("SchedLimits: demoteLookaheadTokens must be >= 0 "
              "(0 disables predictive demotion lookahead)");
    }
}

IntraScheduler::IntraScheduler(SchedLimits limits) : limits(limits)
{
    limits.validate();
}

void
IntraScheduler::add(workload::Request* req)
{
    if (req == nullptr)
        panic("IntraScheduler::add(nullptr)");
    requests.push_back(req);
}

void
IntraScheduler::remove(workload::Request* req)
{
    auto it = std::find(requests.begin(), requests.end(), req);
    if (it == requests.end())
        panic("IntraScheduler::remove: request " +
              std::to_string(req->id()) + " not hosted");
    requests.erase(it);
}

void
IntraScheduler::onPhaseTransition(workload::Request*)
{
    // Phase-unaware baselines need no bookkeeping.
}

int
IntraScheduler::numReasoning() const
{
    int n = 0;
    for (const auto* r : requests) {
        if (r->phase() == workload::Phase::Reasoning && !r->demoted)
            ++n;
    }
    return n;
}

int
IntraScheduler::numFreshAnswering() const
{
    int n = 0;
    for (const auto* r : requests) {
        if (r->phase() == workload::Phase::Answering && !r->finished()
            && r->quantaConsumed == 0) {
            ++n;
        }
    }
    return n;
}

bool
IntraScheduler::schedulable(const workload::Request* req)
{
    if (req->finished())
        return false;
    switch (req->exec) {
      case workload::ExecState::WaitingNew:
      case workload::ExecState::ResidentGpu:
      case workload::ExecState::SwappedCpu:
        return true;
      default:
        return false;
    }
}

void
IntraScheduler::annotatePrediction(IterationPlan& plan) const
{
    if (lengthPredictor == nullptr)
        return;
    double remaining = 0.0;
    for (const auto* r : plan.prefill)
        remaining += lengthPredictor->predictRemainingTokens(*r);
    for (const auto* r : plan.decode)
        remaining += lengthPredictor->predictRemainingTokens(*r);
    plan.predictedRemainingTokens = remaining;
}

IterationPlan
IntraScheduler::greedySelect(const std::vector<workload::Request*>& order,
                             const model::KvPool& pool,
                             bool stop_at_unfit,
                             std::size_t high_prefix_len,
                             TokenCount high_budget_cap) const
{
    IterationPlan plan;
    TokenCount budget = pool.gpuCapacity();
    TokenCount high_budget =
        high_prefix_len > 0 ? high_budget_cap : budget;
    TokenCount prefill_tokens = 0;
    int batch = 0;
    bool stopped = false;
    std::vector<workload::Request*> unselected_residents;

    for (std::size_t idx = 0; idx < order.size(); ++idx) {
        auto* r = order[idx];
        if (!schedulable(r))
            continue;
        bool resident = r->exec == workload::ExecState::ResidentGpu;
        bool capped = idx < high_prefix_len;

        if (stopped || batch >= limits.maxBatchSize) {
            if (resident)
                unselected_residents.push_back(r);
            continue;
        }

        // Effective budget: capped (high-queue) candidates may not eat
        // into the memory reserved for the low queue.
        TokenCount avail = capped ? std::min(budget, high_budget)
                                  : budget;
        auto charge = [&](TokenCount cost) {
            budget -= cost;
            if (capped)
                high_budget -= cost;
        };

        switch (r->exec) {
          case workload::ExecState::WaitingNew: {
            TokenCount cost =
                pool.chargeFor(r->spec().promptTokens + 1);
            bool prewarm = r->spec().startInAnswering;
            bool caps_ok = prewarm ||
                (static_cast<int>(plan.prefill.size()) <
                     limits.maxPrefillSeqs &&
                 prefill_tokens + r->spec().promptTokens <=
                     limits.maxPrefillTokens);
            if (!caps_ok || cost > avail) {
                if (stop_at_unfit)
                    stopped = true;
                continue;
            }
            charge(cost);
            ++batch;
            if (prewarm) {
                plan.prewarm.push_back(r);
            } else {
                plan.prefill.push_back(r);
                prefill_tokens += r->spec().promptTokens;
            }
            break;
          }
          case workload::ExecState::ResidentGpu: {
            TokenCount cost = pool.chargeFor(r->kvTokens() + 1);
            if (cost > avail) {
                unselected_residents.push_back(r);
                if (stop_at_unfit)
                    stopped = true;
                continue;
            }
            charge(cost);
            ++batch;
            plan.decode.push_back(r);
            break;
          }
          case workload::ExecState::SwappedCpu: {
            TokenCount cost = pool.chargeFor(r->kvTokens() + 1);
            if (cost > avail) {
                if (stop_at_unfit)
                    stopped = true;
                continue;
            }
            charge(cost);
            ++batch;
            plan.swapIn.push_back(r);
            plan.decode.push_back(r);
            break;
          }
          default:
            panic("greedySelect: unexpected exec state");
        }
    }

    // Unselected residents stay resident while the leftover budget
    // covers them (they simply skip this iteration); the rest are
    // evicted, lowest priority first because the walk preserved
    // priority order and we evict from the back.
    TokenCount keep_budget = budget;
    std::vector<workload::Request*> evict;
    for (auto* r : unselected_residents) {
        TokenCount keep_cost = pool.chargeFor(r->kvTokens());
        if (keep_cost <= keep_budget)
            keep_budget -= keep_cost;
        else
            evict.push_back(r);
    }
    plan.swapOut = std::move(evict);

    if (!plan.prefill.empty() && !limits.chunkedPrefill) {
        // Prefill iterations do not decode (vLLM prefill priority).
        // Selected decode candidates stay resident and run next
        // iteration; swap-ins still execute so they are ready.
        plan.decode.clear();
    } else {
        // Prewarmed requests join the decode batch immediately: their
        // KV allocation is free of charge. Under chunked prefill the
        // decode batch additionally runs alongside the prefills.
        for (auto* r : plan.prewarm)
            plan.decode.push_back(r);
    }
    return plan;
}

} // namespace core
} // namespace pascal
