#include "src/core/intra_scheduler.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace core
{

void
SchedLimits::validate() const
{
    if (maxBatchSize <= 0)
        fatal("SchedLimits: maxBatchSize must be positive");
    if (maxPrefillTokens <= 0 || maxPrefillSeqs <= 0)
        fatal("SchedLimits: prefill limits must be positive");
    if (demoteThresholdTokens <= 0)
        fatal("SchedLimits: demoteThresholdTokens must be positive");
    if (answeringReserveFraction < 0.0 ||
        answeringReserveFraction >= 1.0) {
        fatal("SchedLimits: answeringReserveFraction must be in "
              "[0, 1)");
    }
    if (demoteLookaheadTokens < 0) {
        fatal("SchedLimits: demoteLookaheadTokens must be >= 0 "
              "(0 disables predictive demotion lookahead)");
    }
}

IntraScheduler::IntraScheduler(SchedLimits limits) : limits(limits)
{
    limits.validate();
}

void
IntraScheduler::enableIncremental()
{
    // Read per call (construction-time only, not the hot path) so an
    // embedder toggling the variable between runs is honored.
    if (std::getenv("PASCAL_FORCE_RESORT") != nullptr ||
        limits.forceResort) {
        return;
    }
    if (!requests.empty())
        panic("enableIncremental: must be called before requests are "
              "added");
    incremental = true;
    stateChanged = true;
    lastPlanReusable = false;
}

void
IntraScheduler::add(workload::Request* req)
{
    if (req == nullptr)
        panic("IntraScheduler::add(nullptr)");
    req->schedHostedPos = requests.size();
    requests.push_back(req);
    req->schedPrevHosted = hostedLast;
    req->schedNextHosted = nullptr;
    if (hostedLast != nullptr)
        hostedLast->schedNextHosted = req;
    else
        hostedFirst = req;
    hostedLast = req;
    // Greedy-walk early-exit bookkeeping (any previous host already
    // unlinked the request from its own structures in remove()).
    req->schedInResidentList = false;
    req->schedPrevResident = nullptr;
    req->schedNextResident = nullptr;
    req->schedPlanStamp = 0;
    req->schedCountedPrewarm = false;
    req->schedCountedWaiting = false;
    if (req->exec == workload::ExecState::WaitingNew) {
        waitingPrompts.insert(req->spec().promptTokens);
        req->schedCountedWaiting = true;
        if (req->spec().startInAnswering) {
            req->schedCountedPrewarm = true;
            ++waitingPrewarmCount;
        }
    }
    noteResidency(req); // Migration landings arrive holding KV.
    if (!incremental)
        return;
    // A migrated request carries stale bookkeeping from its previous
    // host; start from a clean slate.
    req->schedQueueTag = 0;
    req->schedDirtyPending = false;
    req->schedDemotionPending = false;
    req->schedCountedReasoning = false;
    req->schedCountedFreshAns = false;
    req->schedScore = 0.0;
    req->schedCachedQuanta = req->quantaConsumed;
    syncCounters(req);
    noteStateChanged();
    onHostedAdded(req);
}

void
IntraScheduler::remove(workload::Request* req)
{
    std::size_t pos = req->schedHostedPos;
    if (pos >= requests.size() || requests[pos] != req) {
        panic("IntraScheduler::remove: request " +
              std::to_string(req->id()) + " not hosted on instance " +
              (instanceId == kNoInstance ? std::string("?")
                                         : std::to_string(instanceId)));
    }
    requests[pos] = requests.back();
    requests[pos]->schedHostedPos = pos;
    requests.pop_back();
    if (req->schedPrevHosted != nullptr)
        req->schedPrevHosted->schedNextHosted = req->schedNextHosted;
    else
        hostedFirst = req->schedNextHosted;
    if (req->schedNextHosted != nullptr)
        req->schedNextHosted->schedPrevHosted = req->schedPrevHosted;
    else
        hostedLast = req->schedPrevHosted;
    req->schedPrevHosted = nullptr;
    req->schedNextHosted = nullptr;
    if (incremental) {
        if (req->schedCountedReasoning)
            --reasoningCount;
        if (req->schedCountedFreshAns)
            --freshAnsweringCount;
        req->schedCountedReasoning = false;
        req->schedCountedFreshAns = false;
        req->schedDemotionPending = false;
        noteStateChanged();
        // Queue unlink first (it reads schedInResidentList to keep
        // its material count exact), then the early-exit structures.
        onHostedRemoved(req);
    }
    unlinkMaterial(req);
    if (req->schedCountedWaiting) {
        // Departing while still waiting (not a path the engine takes
        // today, but the floor must stay exact regardless).
        req->schedCountedWaiting = false;
        waitingPrompts.erase(
            waitingPrompts.find(req->spec().promptTokens));
    }
    if (req->schedCountedPrewarm) {
        req->schedCountedPrewarm = false;
        --waitingPrewarmCount;
    }
}

void
IntraScheduler::unlinkMaterial(workload::Request* req)
{
    if (!req->schedInResidentList)
        return;
    req->schedInResidentList = false;
    if (req->schedPrevResident != nullptr)
        req->schedPrevResident->schedNextResident =
            req->schedNextResident;
    else
        materialFirst = req->schedNextResident;
    if (req->schedNextResident != nullptr)
        req->schedNextResident->schedPrevResident =
            req->schedPrevResident;
    req->schedPrevResident = nullptr;
    req->schedNextResident = nullptr;
}

void
IntraScheduler::noteResidency(workload::Request* req)
{
    bool material =
        req->exec == workload::ExecState::ResidentGpu ||
        req->exec == workload::ExecState::SwappedCpu;
    if (material && !req->schedInResidentList) {
        req->schedInResidentList = true;
        req->schedPrevResident = nullptr;
        req->schedNextResident = materialFirst;
        if (materialFirst != nullptr)
            materialFirst->schedPrevResident = req;
        materialFirst = req;
        if (req->schedNode != nullptr) {
            // Flipped in place while linked (prefill/prewarm
            // allocation): the owning queue's material count moves.
            onMaterialChanged(req, 1);
        }
        if (req->schedCountedWaiting) {
            // It stopped waiting: retire its admission-floor entry.
            req->schedCountedWaiting = false;
            waitingPrompts.erase(
                waitingPrompts.find(req->spec().promptTokens));
        }
    } else if (!material && req->schedInResidentList) {
        unlinkMaterial(req);
        if (req->schedNode != nullptr)
            onMaterialChanged(req, -1);
    }
    if (req->schedCountedPrewarm &&
        req->exec != workload::ExecState::WaitingNew) {
        req->schedCountedPrewarm = false;
        --waitingPrewarmCount;
    }
}

void
IntraScheduler::syncCounters(workload::Request* req)
{
    workload::Phase phase = req->phase();
    bool reasoning =
        phase == workload::Phase::Reasoning && !req->demoted;
    bool fresh = phase == workload::Phase::Answering &&
                 req->quantaConsumed == 0;
    if (reasoning != req->schedCountedReasoning) {
        reasoningCount += reasoning ? 1 : -1;
        req->schedCountedReasoning = reasoning;
    }
    if (fresh != req->schedCountedFreshAns) {
        freshAnsweringCount += fresh ? 1 : -1;
        req->schedCountedFreshAns = fresh;
    }
}

void
IntraScheduler::noteExecuted(workload::Request* req)
{
    if (!incremental)
        return;
    bool quanta_changed =
        req->quantaConsumed != req->schedCachedQuanta;
    req->schedCachedQuanta = req->quantaConsumed;
    syncCounters(req);
    onRequestExecuted(req, quanta_changed);
}

void
IntraScheduler::onPhaseTransition(workload::Request*)
{
    // Phase-unaware baselines need no bookkeeping. (The counter move
    // itself was already synced by noteExecuted when the transition
    // token was emitted.)
}

int
IntraScheduler::numReasoning() const
{
    return incremental ? reasoningCount : scanReasoning();
}

int
IntraScheduler::numFreshAnswering() const
{
    return incremental ? freshAnsweringCount : scanFreshAnswering();
}

int
IntraScheduler::scanReasoning() const
{
    int n = 0;
    for (const auto* r : requests) {
        if (r->phase() == workload::Phase::Reasoning && !r->demoted)
            ++n;
    }
    return n;
}

int
IntraScheduler::scanFreshAnswering() const
{
    int n = 0;
    for (const auto* r : requests) {
        if (r->phase() == workload::Phase::Answering && !r->finished()
            && r->quantaConsumed == 0) {
            ++n;
        }
    }
    return n;
}

bool
IntraScheduler::predictorMoved() const
{
    return keysUsePredictions() &&
           currentPredictorVersion() != lastPredictorVersion;
}

void
IntraScheduler::buildPlan(const model::KvPool& pool, IterationPlan& out)
{
    out.reset();
    if (incremental) {
        lastKeptResidents.clear();
        lastDecodeCapped.clear();
        lastHighBudgetCap = -1;
    }
    planInto(pool, out);
    if (!incremental)
        return;
    stateChanged = false;
    lastPredictorVersion = currentPredictorVersion();
    lastPlanReusable =
        out.prefill.empty() && out.prewarm.empty() &&
        out.swapIn.empty() && out.swapOut.empty() &&
        !out.decode.empty() &&
        lastDecodeCapped.size() == out.decode.size();
    reusesSinceBuild = 0;
    if (lastPlanReusable && lastHighBudgetCap < 0) {
        auto block = static_cast<std::size_t>(pool.blockSize());
        blockOffsetHist.assign(block, 0);
        for (const auto* r : out.decode) {
            ++blockOffsetHist[static_cast<std::size_t>(
                r->kvTokens() % pool.blockSize())];
        }
    }
}

bool
IntraScheduler::reusePlan(const IterationPlan& prev,
                          const model::KvPool& pool)
{
    if (!incremental || !lastPlanReusable || stateChanged)
        return false;
    if (predictorMoved())
        return false;
    // Deferred plan-time decisions (demotion) fire exactly here, the
    // same point recompute mode applies them, so their timing relative
    // to snapshots and callbacks is identical in both modes.
    if (reuseVeto())
        return false;
    if (lastHighBudgetCap < 0) {
        // Uncapped walk: one integer comparison decides the whole
        // budget revalidation (see blockOffsetHist).
        TokenCount block = pool.blockSize();
        std::uint64_t k = reusesSinceBuild + 1;
        std::uint64_t crossings = blockOffsetHist[static_cast<
            std::size_t>((static_cast<std::uint64_t>(block) -
                          k % static_cast<std::uint64_t>(block)) %
                         static_cast<std::uint64_t>(block))];
        if (pool.gpuUsed() +
                block * static_cast<TokenCount>(crossings) >
            pool.gpuCapacity()) {
            return false;
        }
    } else if (!revalidate(prev, pool)) {
        return false;
    }
    ++reusesSinceBuild;
    return true;
}

bool
IntraScheduler::revalidate(const IterationPlan& prev,
                           const model::KvPool& pool) const
{
    if (lastDecodeCapped.size() != prev.decode.size())
        return false;
    TokenCount budget = pool.gpuCapacity();
    TokenCount high =
        lastHighBudgetCap >= 0 ? lastHighBudgetCap : budget;
    for (std::size_t i = 0; i < prev.decode.size(); ++i) {
        const auto* r = prev.decode[i];
        TokenCount cost = pool.chargeFor(r->kvTokens() + 1);
        bool capped = lastDecodeCapped[i] != 0;
        TokenCount avail = capped ? std::min(budget, high) : budget;
        if (cost > avail)
            return false;
        budget -= cost;
        if (capped)
            high -= cost;
    }
    // Unselected residents were kept, not evicted; they still must
    // fit in the leftover (their own KV did not grow — they did not
    // run — but the decode batch's growth shrank the leftover).
    for (const auto* r : lastKeptResidents) {
        TokenCount cost = pool.chargeFor(r->kvTokens());
        if (cost > budget)
            return false;
        budget -= cost;
    }
    return true;
}

void
IntraScheduler::annotatePrediction(IterationPlan& plan) const
{
    if (lengthPredictor == nullptr)
        return;
    double remaining = 0.0;
    for (const auto* r : plan.prefill)
        remaining += lengthPredictor->predictRemainingTokens(*r);
    for (const auto* r : plan.decode)
        remaining += lengthPredictor->predictRemainingTokens(*r);
    plan.predictedRemainingTokens = remaining;
}

void
IntraScheduler::greedySelectInto(
    const std::vector<workload::Request*>& order,
    const model::KvPool& pool, bool stop_at_unfit, IterationPlan& out,
    std::size_t high_prefix_len, TokenCount high_budget_cap)
{
    auto split = order.begin() +
                 static_cast<std::ptrdiff_t>(high_prefix_len);
    greedySelectRanges(order.begin(), split, split, order.end(),
                       high_prefix_len > 0, high_budget_cap, pool,
                       stop_at_unfit, out);
}

void
IntraScheduler::finishGreedySelect(const model::KvPool& pool,
                                   IterationPlan& out,
                                   TokenCount leftover_budget,
                                   std::size_t tail_start)
{
    std::vector<workload::Request*>& unselected_residents =
        lastKeptResidents;

    // Unselected residents stay resident while the leftover budget
    // covers them (they simply skip this iteration); the rest are
    // evicted, lowest priority first. The common case keeps them
    // all, where order is irrelevant; only when an eviction is
    // actually needed does the early-exit tail (appended in resident-
    // list order) get sorted back into the walk's priority order so
    // the evicted set and the swapOut sequence are byte-identical to
    // the full walk's.
    TokenCount total_keep_cost = 0;
    for (const auto* r : unselected_residents)
        total_keep_cost += pool.chargeFor(r->kvTokens());
    if (total_keep_cost > leftover_budget) {
        if (tail_start < unselected_residents.size()) {
            std::sort(unselected_residents.begin() +
                          static_cast<std::ptrdiff_t>(tail_start),
                      unselected_residents.end(),
                      ResidentEvictOrder{});
        }
        TokenCount keep_budget = leftover_budget;
        std::size_t kept = 0;
        for (auto* r : unselected_residents) {
            TokenCount keep_cost = pool.chargeFor(r->kvTokens());
            if (keep_cost <= keep_budget) {
                keep_budget -= keep_cost;
                unselected_residents[kept++] = r;
            } else {
                out.swapOut.push_back(r);
            }
        }
        unselected_residents.resize(kept); // Record: residents kept.
    }

    if (!out.prefill.empty() && !limits.chunkedPrefill) {
        // Prefill iterations do not decode (vLLM prefill priority).
        // Selected decode candidates stay resident and run next
        // iteration; swap-ins still execute so they are ready. The
        // displaced members join the kept-resident record so the
        // engine's lazy-accrual restamp covers them (never reused:
        // reusePlan requires an empty prefill list).
        for (auto* r : out.decode)
            unselected_residents.push_back(r);
        out.decode.clear();
        lastDecodeCapped.clear();
    } else {
        // Prewarmed requests join the decode batch immediately: their
        // KV allocation is free of charge. Under chunked prefill the
        // decode batch additionally runs alongside the prefills.
        for (auto* r : out.prewarm)
            out.decode.push_back(r);
    }
}

} // namespace core
} // namespace pascal
