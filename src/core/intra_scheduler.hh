/**
 * @file
 * Base class for intra-instance schedulers (Section II-C / IV-C).
 *
 * A scheduler owns the set of requests hosted on its instance and, at
 * every iteration boundary, produces an IterationPlan deciding which
 * requests prefill, decode, swap in, or are evicted, subject to the
 * GPU KV capacity.
 *
 * Incremental mode and the dirty-set contract
 * -------------------------------------------
 * The per-iteration scheduling path is the simulator's hottest loop,
 * so the base class supports two modes:
 *
 *  - Recompute mode (default; also PASCAL_FORCE_RESORT /
 *    SchedLimits::forceResort): every buildPlan() call rebuilds and
 *    re-sorts the priority order from scratch. Simple, and the
 *    reference behaviour the invariance tests compare against.
 *
 *  - Incremental mode (enabled by the owning Instance via
 *    enableIncremental()): the scheduler maintains its priority
 *    queues, the r_i / a_i monitor counters, and demotion candidates
 *    across iterations, repairing only requests whose ordering key
 *    actually changed. In the dominant decode-only steady state
 *    reusePlan() lets the instance run the previous IterationPlan
 *    verbatim, skipping plan construction entirely.
 *
 * Incremental mode relies on the *dirty-set contract*: every mutation
 * of a hosted request's scheduler-visible state must reach the
 * scheduler through one of the notification points —
 *
 *  - add() / remove()          membership (arrival, migration, finish),
 *  - noteExecuted()            after each emitToken()/completePrefill()
 *                              (token progress, quantum rollover, phase
 *                              flip, KV growth),
 *  - onPhaseTransition()       reasoning->answering staying home,
 *
 * plus LengthPredictor::version() for predictor-driven key changes.
 * Code that mutates requests behind the scheduler's back (unit tests
 * poking exec states directly) must simply leave incremental mode off.
 * Subclasses hook the notifications via onHostedAdded/onHostedRemoved/
 * onRequestExecuted and must keep their queues equal to what their
 * recompute path would build — the randomized force-resort invariance
 * tests enforce byte-identical RunResults across the two modes.
 */

#ifndef PASCAL_CORE_INTRA_SCHEDULER_HH
#define PASCAL_CORE_INTRA_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.hh"
#include "src/core/iteration_plan.hh"
#include "src/model/kv_pool.hh"
#include "src/predict/predictor.hh"
#include "src/workload/request.hh"

namespace pascal
{
namespace core
{

/** Interface + shared mechanics of intra-instance scheduling. */
class IntraScheduler
{
  public:
    explicit IntraScheduler(SchedLimits limits);
    virtual ~IntraScheduler() = default;

    /** Policy name for reports. */
    virtual std::string name() const = 0;

    /** A request was routed to this instance (arrival or migration). */
    void add(workload::Request* req);

    /** A request left this instance (finished or migrated away).
     *  O(1) via the request's intrusive hosted-position index. */
    void remove(workload::Request* req);

    /** Requests currently hosted. Removal swaps the last request into
     *  the vacated slot, so the order is arbitrary (every consumer is
     *  order-independent or establishes its own order; for insertion
     *  order use hostedHead()/schedNextHosted). */
    const std::vector<workload::Request*>& hosted() const
    {
        return requests;
    }

    /** Head of the intrusive insertion-ordered hosted list (walk via
     *  schedNextHosted). Consumers whose result depends on iteration
     *  order — the snapshot's floating-point prediction sum — use
     *  this so O(1) swap-pop removal cannot perturb their output. */
    workload::Request* hostedHead() const { return hostedFirst; }

    /**
     * Build the next iteration's plan into @p out. @p out is reset
     * first with its capacity retained, so steady-state replans do
     * not allocate.
     */
    void buildPlan(const model::KvPool& pool, IterationPlan& out);

    /** Convenience wrapper building a fresh plan. */
    IterationPlan
    plan(const model::KvPool& pool)
    {
        IterationPlan out;
        buildPlan(pool, out);
        return out;
    }

    /**
     * Steady-state fast path: true if @p prev (the plan built by the
     * last buildPlan() and since executed once) is still *exactly*
     * what buildPlan() would produce, in which case the instance runs
     * it again verbatim. Holds when (a) incremental mode is on, (b)
     * the previous plan was pure decode (no prefill / prewarm /
     * swaps), (c) no membership, key, demotion, or predictor change
     * was observed since, and (d) re-walking the recorded selection
     * against the pool shows every decode member still fits and every
     * kept resident still holds its memory. (d) is O(batch) integer
     * arithmetic — no sorting, no allocation, no predictor calls.
     */
    bool reusePlan(const IterationPlan& prev, const model::KvPool& pool);

    /** Notification that @p req crossed the reasoning->answering
     *  boundary and stays on this instance. */
    virtual void onPhaseTransition(workload::Request* req);

    /**
     * Instance notification: @p req just emitted a token (or finished
     * prefill) in the iteration being completed. Updates the
     * maintained counters and forwards key changes to the subclass.
     * No-op in recompute mode.
     */
    void noteExecuted(workload::Request* req);

    /** Paper r_i: reasoning requests in the high-priority queue
     *  (excludes demoted ones). O(1) in incremental mode. */
    int numReasoning() const;

    /** Paper a_i: answering requests that have not exhausted their
     *  first time quantum. O(1) in incremental mode. */
    int numFreshAnswering() const;

    const SchedLimits& schedLimits() const { return limits; }

    /**
     * Switch on incremental maintenance. Must be called before any
     * request is added. Ignored when SchedLimits::forceResort is set
     * or the PASCAL_FORCE_RESORT environment variable is present.
     */
    void enableIncremental();

    bool incrementalEnabled() const { return incremental; }

    /** Instance id for diagnostics (placement-bug panics). */
    void setInstanceId(InstanceId id) { instanceId = id; }

    /**
     * Wire a length predictor (not owned; may be nullptr). Speculative
     * policies (SRPT, PASCAL-Spec) consult it when ordering requests
     * and deciding demotion; phase-reactive policies ignore it. The
     * Cluster shares one predictor across all of its instances.
     */
    void setPredictor(const predict::LengthPredictor* p)
    {
        lengthPredictor = p;
    }

    const predict::LengthPredictor* predictor() const
    {
        return lengthPredictor;
    }

    /**
     * Residents the last buildPlan() left resident without running
     * them this iteration: the greedy walk's kept-but-unselected
     * requests plus, on prefill-priority iterations, the selected
     * decode candidates the prefill pass displaced. The instance
     * restamps their lazy-accrual bucket from this record, so a fresh
     * plan touches only requests whose standing bucket can actually
     * have changed. Valid until the next buildPlan().
     */
    const std::vector<workload::Request*>& keptResidents() const
    {
        return lastKeptResidents;
    }

  protected:
    /** True if @p req can be considered for scheduling at all. */
    static bool schedulable(const workload::Request* req);

    /** Policy hook: produce the plan. @p out arrives reset. */
    virtual void planInto(const model::KvPool& pool,
                          IterationPlan& out) = 0;

    /** @name Incremental-mode subclass hooks */
    /** @{ */

    /** @p req joined the hosted set (insert it into your queues and
     *  seed its cached ordering key). */
    virtual void onHostedAdded(workload::Request* req) { (void)req; }

    /** @p req left the hosted set (erase it from your queues). */
    virtual void onHostedRemoved(workload::Request* req) { (void)req; }

    /**
     * @p req ran in the just-completed iteration: its generated-token
     * count (hence KV) advanced, and possibly its quantum or phase.
     * Mark it dirty in your queues if its ordering key changed.
     */
    virtual void onRequestExecuted(workload::Request* req,
                                   bool quanta_changed)
    {
        (void)req;
        (void)quanta_changed;
    }

    /**
     * Last gate before verbatim plan reuse; runs any deferred
     * decisions that recompute mode would take at plan time (PASCAL's
     * demotion rule). Return true to veto the reuse. May mutate
     * scheduler state (an applied demotion both vetoes and updates
     * the queues).
     */
    virtual bool reuseVeto() { return false; }

    /** True if ordering keys come from the predictor, so a predictor
     *  version bump re-keys every request. */
    virtual bool keysUsePredictions() const { return false; }

    /** Subclasses call this whenever queue contents or keys changed
     *  outside buildPlan (blocks verbatim reuse until the next
     *  buildPlan). */
    void noteStateChanged() { stateChanged = true; }

    /** Recompute @p req's contribution to the maintained monitor
     *  counters from its live state. */
    void syncCounters(workload::Request* req);

    /** Predictor version() changed since the last buildPlan (only
     *  meaningful when keysUsePredictions()). */
    bool predictorMoved() const;

    /** True if @p req is currently hosted by *this* scheduler (the
     *  intrusive fields alone cannot tell schedulers apart). */
    bool
    isHosted(const workload::Request* req) const
    {
        return req->schedHostedPos < requests.size() &&
               requests[req->schedHostedPos] == req;
    }

    /** @} */

    /**
     * Shared greedy selection: walk @p order by priority, charging
     * each candidate's full memory footprint (KV + one token of decode
     * growth, or prompt + first token for prefills, block-rounded per
     * the pool's paged allocator) against the GPU capacity. Unselected
     * residents are kept resident while the leftover budget allows and
     * evicted (swapOut) otherwise, which preempts the lowest-priority
     * requests first.
     *
     * Policies with skip semantics (RR, PASCAL) pass
     * stop_at_unfit = false; strict-order policies stop the walk at
     * the first candidate that does not fit.
     *
     * In incremental mode the walk also records the reuse-validation
     * state (per-decode-member budget caps and the kept residents)
     * that reusePlan() re-checks each steady-state iteration.
     *
     * @param high_prefix_len The first this-many entries of @p order
     *        are additionally capped at @p high_budget_cap charged
     *        tokens (PASCAL's answering-reserve extension; 0 disables).
     */
    void greedySelectInto(const std::vector<workload::Request*>& order,
                          const model::KvPool& pool, bool stop_at_unfit,
                          IterationPlan& out,
                          std::size_t high_prefix_len = 0,
                          TokenCount high_budget_cap = 0);

    /** Legacy convenience (unit probes): greedySelectInto on a fresh
     *  plan. */
    IterationPlan
    greedySelect(const std::vector<workload::Request*>& order,
                 const model::KvPool& pool, bool stop_at_unfit,
                 std::size_t high_prefix_len = 0,
                 TokenCount high_budget_cap = 0)
    {
        IterationPlan out;
        greedySelectInto(order, pool, stop_at_unfit, out,
                         high_prefix_len, high_budget_cap);
        return out;
    }

    /** Fill @p plan's predictedRemainingTokens from the wired
     *  predictor (no-op without one). */
    void annotatePrediction(IterationPlan& plan) const;

    std::vector<workload::Request*> requests;

    /** Insertion-ordered intrusive hosted list (see hostedHead()). */
    workload::Request* hostedFirst = nullptr;
    workload::Request* hostedLast = nullptr;

    SchedLimits limits;
    const predict::LengthPredictor* lengthPredictor = nullptr;

    /** Reusable order buffer for planInto implementations. */
    std::vector<workload::Request*> orderScratch;

    bool incremental = false;
    InstanceId instanceId = kNoInstance;

  private:
    /** O(batch) re-walk of the recorded greedy selection. */
    bool revalidate(const IterationPlan& prev,
                    const model::KvPool& pool) const;

    /** Recompute-mode counter scans. */
    int scanReasoning() const;
    int scanFreshAnswering() const;

    std::uint64_t
    currentPredictorVersion() const
    {
        return lengthPredictor ? lengthPredictor->version() : 0;
    }

    /** Maintained monitor counters (incremental mode). */
    int reasoningCount = 0;
    int freshAnsweringCount = 0;

    /** Any membership/key/queue change since the last buildPlan. */
    bool stateChanged = true;

    /** Last plan qualifies for verbatim reuse (pure decode). */
    bool lastPlanReusable = false;

    std::uint64_t lastPredictorVersion = 0;

    /** @name Reuse-validation record of the last greedy walk */
    /** @{ */
    std::vector<workload::Request*> lastKeptResidents;
    std::vector<std::uint8_t> lastDecodeCapped;
    TokenCount lastHighBudgetCap = -1; //!< -1: no high-queue cap.

    /**
     * O(1) steady-state budget check (uncapped walks only): histogram
     * of the decode members' kv % blockSize at build time. During a
     * run of verbatim reuses every member's KV grows by exactly one
     * token per iteration, so the number of members crossing a paged
     * block boundary at reuse k is blockOffsetHist[(block - k%block) %
     * block], and the whole walk revalidation collapses to
     *   gpuUsed + blockSize * crossings <= capacity
     * (selection prefix sums and the kept-resident walk are both
     * bounded by that total when no per-member cap applies).
     */
    std::vector<std::uint32_t> blockOffsetHist;
    std::uint64_t reusesSinceBuild = 0;
    /** @} */
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_INTRA_SCHEDULER_HH
