/**
 * @file
 * Base class for intra-instance schedulers (Section II-C / IV-C).
 *
 * A scheduler owns the set of requests hosted on its instance and, at
 * every iteration boundary, produces an IterationPlan deciding which
 * requests prefill, decode, swap in, or are evicted, subject to the
 * GPU KV capacity.
 */

#ifndef PASCAL_CORE_INTRA_SCHEDULER_HH
#define PASCAL_CORE_INTRA_SCHEDULER_HH

#include <string>
#include <vector>

#include "src/common/types.hh"
#include "src/core/iteration_plan.hh"
#include "src/model/kv_pool.hh"
#include "src/predict/predictor.hh"
#include "src/workload/request.hh"

namespace pascal
{
namespace core
{

/** Interface + shared mechanics of intra-instance scheduling. */
class IntraScheduler
{
  public:
    explicit IntraScheduler(SchedLimits limits);
    virtual ~IntraScheduler() = default;

    /** Policy name for reports. */
    virtual std::string name() const = 0;

    /** A request was routed to this instance (arrival or migration). */
    void add(workload::Request* req);

    /** A request left this instance (finished or migrated away). */
    void remove(workload::Request* req);

    /** Requests currently hosted, in insertion order. */
    const std::vector<workload::Request*>& hosted() const
    {
        return requests;
    }

    /** Build the next iteration's plan. */
    virtual IterationPlan plan(const model::KvPool& pool) = 0;

    /** Notification that @p req crossed the reasoning->answering
     *  boundary and stays on this instance. */
    virtual void onPhaseTransition(workload::Request* req);

    /** Paper r_i: reasoning requests in the high-priority queue. For
     *  phase-unaware baselines this counts reasoning-phase requests. */
    virtual int numReasoning() const;

    /** Paper a_i: answering requests that have not exhausted their
     *  first time quantum. */
    virtual int numFreshAnswering() const;

    const SchedLimits& schedLimits() const { return limits; }

    /**
     * Wire a length predictor (not owned; may be nullptr). Speculative
     * policies (SRPT, PASCAL-Spec) consult it when ordering requests
     * and deciding demotion; phase-reactive policies ignore it. The
     * Cluster shares one predictor across all of its instances.
     */
    void setPredictor(const predict::LengthPredictor* p)
    {
        lengthPredictor = p;
    }

    const predict::LengthPredictor* predictor() const
    {
        return lengthPredictor;
    }

  protected:
    /** True if @p req can be considered for scheduling at all. */
    static bool schedulable(const workload::Request* req);

    /**
     * Shared greedy selection: walk @p order by priority, charging
     * each candidate's full memory footprint (KV + one token of decode
     * growth, or prompt + first token for prefills, block-rounded per
     * the pool's paged allocator) against the GPU capacity. Unselected
     * residents are kept resident while the leftover budget allows and
     * evicted (swapOut) otherwise, which preempts the lowest-priority
     * requests first.
     *
     * Policies with skip semantics (RR, PASCAL) pass
     * stop_at_unfit = false; strict-order policies stop the walk at
     * the first candidate that does not fit.
     *
     * @param high_prefix_len The first this-many entries of @p order
     *        are additionally capped at @p high_budget_cap charged
     *        tokens (PASCAL's answering-reserve extension; 0 disables).
     */
    IterationPlan greedySelect(
        const std::vector<workload::Request*>& order,
        const model::KvPool& pool, bool stop_at_unfit,
        std::size_t high_prefix_len = 0,
        TokenCount high_budget_cap = 0) const;

    /** Fill @p plan's predictedRemainingTokens from the wired
     *  predictor (no-op without one). */
    void annotatePrediction(IterationPlan& plan) const;

    std::vector<workload::Request*> requests;
    SchedLimits limits;
    const predict::LengthPredictor* lengthPredictor = nullptr;
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_INTRA_SCHEDULER_HH
