/**
 * @file
 * Base class for intra-instance schedulers (Section II-C / IV-C).
 *
 * A scheduler owns the set of requests hosted on its instance and, at
 * every iteration boundary, produces an IterationPlan deciding which
 * requests prefill, decode, swap in, or are evicted, subject to the
 * GPU KV capacity.
 *
 * Incremental mode and the dirty-set contract
 * -------------------------------------------
 * The per-iteration scheduling path is the simulator's hottest loop,
 * so the base class supports two modes:
 *
 *  - Recompute mode (default; also PASCAL_FORCE_RESORT /
 *    SchedLimits::forceResort): every buildPlan() call rebuilds and
 *    re-sorts the priority order from scratch. Simple, and the
 *    reference behaviour the invariance tests compare against.
 *
 *  - Incremental mode (enabled by the owning Instance via
 *    enableIncremental()): the scheduler maintains its priority
 *    queues, the r_i / a_i monitor counters, and demotion candidates
 *    across iterations, repairing only requests whose ordering key
 *    actually changed. In the dominant decode-only steady state
 *    reusePlan() lets the instance run the previous IterationPlan
 *    verbatim, skipping plan construction entirely.
 *
 * Incremental mode relies on the *dirty-set contract*: every mutation
 * of a hosted request's scheduler-visible state must reach the
 * scheduler through one of the notification points —
 *
 *  - add() / remove()          membership (arrival, migration, finish),
 *  - noteExecuted()            after each emitToken()/completePrefill()
 *                              (token progress, quantum rollover, phase
 *                              flip, KV growth),
 *  - onPhaseTransition()       reasoning->answering staying home,
 *
 * plus LengthPredictor::version() for predictor-driven key changes.
 * Code that mutates requests behind the scheduler's back (unit tests
 * poking exec states directly) must simply leave incremental mode off.
 * Subclasses hook the notifications via onHostedAdded/onHostedRemoved/
 * onRequestExecuted and must keep their queues equal to what their
 * recompute path would build — the randomized force-resort invariance
 * tests enforce byte-identical RunResults across the two modes.
 */

#ifndef PASCAL_CORE_INTRA_SCHEDULER_HH
#define PASCAL_CORE_INTRA_SCHEDULER_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <type_traits>
#include <utility>
#include <string>
#include <vector>

#include "src/common/log.hh"
#include "src/common/types.hh"
#include "src/core/iteration_plan.hh"
#include "src/core/ordered_queue.hh"
#include "src/model/kv_pool.hh"
#include "src/predict/predictor.hh"
#include "src/workload/request.hh"

namespace pascal
{
namespace core
{

/**
 * Priority order of GPU residents across every shipped policy,
 * used to restore walk order over the residents an early-exited
 * greedy walk never visited, before evicting from the back. The
 * queue tag ranks PASCAL's high queue above its low queue; the SLO
 * class rank (all zero with classes off) ranks tenant classes within
 * a queue; below those every policy orders by (quanta, cached score,
 * arrival, id) — policies that freeze a level (FCFS/SRPT never
 * consume quanta, reactive policies keep score 0) degenerate to
 * exactly their own comparator. A policy whose order is NOT
 * expressible in these six fields must not rely on the early-exit
 * tail (or must extend this comparator) — the eviction-storm
 * invariance test runs every shipped policy against recompute mode to
 * keep the equivalence honest.
 */
struct ResidentEvictOrder
{
    bool
    operator()(const workload::Request* a,
               const workload::Request* b) const
    {
        if (a->schedQueueTag != b->schedQueueTag)
            return a->schedQueueTag < b->schedQueueTag;
        if (a->schedClassRank != b->schedClassRank)
            return a->schedClassRank < b->schedClassRank;
        if (a->quantaConsumed != b->quantaConsumed)
            return a->quantaConsumed < b->quantaConsumed;
        if (a->schedScore != b->schedScore)
            return a->schedScore < b->schedScore;
        if (a->spec().arrival != b->spec().arrival)
            return a->spec().arrival < b->spec().arrival;
        return a->id() < b->id();
    }
};

/** Detection idiom for iterators that support dropping their waiting
 *  stream (OrderedQueue's merged iterator); plain vector iterators
 *  (the recompute wrapper) are left untouched. */
template <typename It, typename = void>
struct HasSkipWaiting : std::false_type
{
};
template <typename It>
struct HasSkipWaiting<
    It, std::void_t<decltype(std::declval<It&>().skipWaiting())>>
    : std::true_type
{
};

template <typename It>
inline void
maybeSkipWaiting(It& it)
{
    if constexpr (HasSkipWaiting<It>::value)
        it.skipWaiting();
}

/**
 * Why a plan-boundary fast path declined, recorded per boundary for
 * the telemetry layer: reusePlan()'s decline reason annotates the
 * repair trace event, repairPlan()'s annotates the full-walk event.
 * Purely observational — never consulted by scheduling decisions.
 */
enum class PlanDecline : std::uint8_t
{
    None = 0,       //!< The path ran (or was never consulted).
    Inactive,       //!< Fast path off (recompute mode / force twin).
    StateChanged,   //!< Membership/key/queue change since last build.
    PredictorMoved, //!< Predictor version bumped under spec keys.
    Veto,           //!< Policy veto (PASCAL's deferred demotion).
    Budget,         //!< Paged-memory revalidation failed.
    WaitingWork,    //!< Waiting admission candidates exist.
    SwappedMembers, //!< Tracked KV not fully GPU-resident.
    Bailed,         //!< Lineage bailed (unjournalable mutation).
    BatchLimit,     //!< Patched batch empty or over maxBatchSize.
};

/** Stable lowercase name of @p d (trace "reason" arg rendering). */
const char* planDeclineName(PlanDecline d);

/** The full name table, index == enum value (TraceSink reason
 *  table). */
const char* const* planDeclineNames();

/** Number of entries in planDeclineNames(). */
std::size_t numPlanDeclineNames();

/** Interface + shared mechanics of intra-instance scheduling. */
class IntraScheduler
{
  public:
    explicit IntraScheduler(SchedLimits limits);
    virtual ~IntraScheduler() = default;

    /** Policy name for reports. */
    virtual std::string name() const = 0;

    /** A request was routed to this instance (arrival or migration). */
    void add(workload::Request* req);

    /** A request left this instance (finished or migrated away).
     *  O(1) via the request's intrusive hosted-position index. */
    void remove(workload::Request* req);

    /** Requests currently hosted. Removal swaps the last request into
     *  the vacated slot, so the order is arbitrary (every consumer is
     *  order-independent or establishes its own order; for insertion
     *  order use hostedHead()/schedNextHosted). */
    const std::vector<workload::Request*>& hosted() const
    {
        return requests;
    }

    /** Head of the intrusive insertion-ordered hosted list (walk via
     *  schedNextHosted). Consumers whose result depends on iteration
     *  order — the snapshot's floating-point prediction sum — use
     *  this so O(1) swap-pop removal cannot perturb their output. */
    workload::Request* hostedHead() const { return hostedFirst; }

    /**
     * Build the next iteration's plan into @p out. @p out is reset
     * first with its capacity retained, so steady-state replans do
     * not allocate.
     */
    void buildPlan(const model::KvPool& pool, IterationPlan& out);

    /** Convenience wrapper building a fresh plan. */
    IterationPlan
    plan(const model::KvPool& pool)
    {
        IterationPlan out;
        buildPlan(pool, out);
        return out;
    }

    /**
     * Steady-state fast path: true if @p prev (the plan built by the
     * last buildPlan() and since executed once) is still *exactly*
     * what buildPlan() would produce, in which case the instance runs
     * it again verbatim. Holds when (a) incremental mode is on, (b)
     * the previous plan was pure decode (no prefill / prewarm /
     * swaps), (c) no membership, key, demotion, or predictor change
     * was observed since, and (d) re-walking the recorded selection
     * against the pool shows every decode member still fits and every
     * kept resident still holds its memory. (d) is O(batch) integer
     * arithmetic — no sorting, no allocation, no predictor calls.
     */
    bool reusePlan(const IterationPlan& prev, const model::KvPool& pool);

    /**
     * Delta fast path when reusePlan() declines: patch @p prev (the
     * previous iteration's plan) by the journaled dirty set instead
     * of re-walking every material queue. Departed / demoted-and-
     * re-keyed members are spliced out of the decode batch, landed
     * arrivals and re-keyed members are merged back in at their
     * ResidentEvictOrder rank, and the paged-memory budget check
     * re-runs over the maintained block-offset histogram (patched by
     * the same deltas) — O(delta log delta + batch) with no queue
     * walk, no predictor calls, and no allocation once warm.
     *
     * Eligibility mirrors the conditions under which the patched
     * batch provably equals what buildPlan() would produce: the
     * previous plan must be an uncapped pure-decode plan with no kept
     * residents (every material member in the batch), no waiting
     * admission candidates, no swapped members, no predictor
     * movement, and the patched batch must fit the capacity exactly
     * as the full walk would conclude. Anything else returns false
     * and the caller falls back to buildPlan(). Disabled (always
     * false) by SchedLimits::forcePlanRepair / PASCAL_FORCE_REPAIR —
     * the plan-repair force twin.
     */
    bool repairPlan(IterationPlan& prev, const model::KvPool& pool);

    /** Notification that @p req crossed the reasoning->answering
     *  boundary and stays on this instance. */
    virtual void onPhaseTransition(workload::Request* req);

    /**
     * Dirty-set contract, residency leg: the engine reports every
     * exec-state flip of a hosted request (prefill/prewarm
     * allocation, swap out/in, migration landing) so the scheduler's
     * intrusive GPU-resident list stays exact. The greedy walk's
     * early exit settles unvisited residents from this list instead
     * of scanning the whole admission backlog. add()/remove() sync
     * membership themselves.
     */
    void noteResidency(workload::Request* req);

    /**
     * Instance notification: @p req just emitted a token (or finished
     * prefill) in the iteration being completed. Updates the
     * maintained counters and forwards key changes to the subclass.
     * No-op in recompute mode.
     */
    void noteExecuted(workload::Request* req);

    /** Paper r_i: reasoning requests in the high-priority queue
     *  (excludes demoted ones). O(1) in incremental mode. */
    int numReasoning() const;

    /** Paper a_i: answering requests that have not exhausted their
     *  first time quantum. O(1) in incremental mode. */
    int numFreshAnswering() const;

    const SchedLimits& schedLimits() const { return limits; }

    /**
     * Switch on incremental maintenance. Must be called before any
     * request is added. Ignored when SchedLimits::forceResort is set
     * or the PASCAL_FORCE_RESORT environment variable is present.
     */
    void enableIncremental();

    bool incrementalEnabled() const { return incremental; }

    /** Instance id for diagnostics (placement-bug panics). */
    void setInstanceId(InstanceId id) { instanceId = id; }

    /**
     * Wire a length predictor (not owned; may be nullptr). Speculative
     * policies (SRPT, PASCAL-Spec) consult it when ordering requests
     * and deciding demotion; phase-reactive policies ignore it. The
     * Cluster shares one predictor across all of its instances.
     */
    void setPredictor(const predict::LengthPredictor* p)
    {
        lengthPredictor = p;
    }

    const predict::LengthPredictor* predictor() const
    {
        return lengthPredictor;
    }

    /**
     * Residents the last buildPlan() left resident without running
     * them this iteration: the greedy walk's kept-but-unselected
     * requests plus, on prefill-priority iterations, the selected
     * decode candidates the prefill pass displaced. The instance
     * restamps their lazy-accrual bucket from this record, so a fresh
     * plan touches only requests whose standing bucket can actually
     * have changed. Valid until the next buildPlan().
     */
    const std::vector<workload::Request*>& keptResidents() const
    {
        return lastKeptResidents;
    }

    /** Why the last reusePlan() call declined (None if it reused). */
    PlanDecline lastReuseDecline() const { return reuseDecline; }

    /** Why the last repairPlan() call declined (None if it
     *  repaired). */
    PlanDecline lastRepairDecline() const { return repairDecline; }

    /** Lazy-erase compactions of the maintained eviction-order
     *  structure (stat registry: <instance>.queue.compactions). */
    std::uint64_t numEvictQueueCompactions() const
    {
        return evictOrder.numCompactions();
    }

  protected:
    /** True if @p req can be considered for scheduling at all.
     *  Inline: evaluated once per walked candidate per plan. */
    static bool
    schedulable(const workload::Request* req)
    {
        if (req->finished())
            return false;
        switch (req->exec) {
          case workload::ExecState::WaitingNew:
          case workload::ExecState::ResidentGpu:
          case workload::ExecState::SwappedCpu:
            return true;
          default:
            return false;
        }
    }

    /** Policy hook: produce the plan. @p out arrives reset. */
    virtual void planInto(const model::KvPool& pool,
                          IterationPlan& out) = 0;

    /** @name Incremental-mode subclass hooks */
    /** @{ */

    /** @p req joined the hosted set (insert it into your queues and
     *  seed its cached ordering key). */
    virtual void onHostedAdded(workload::Request* req) { (void)req; }

    /** @p req left the hosted set (erase it from your queues). */
    virtual void onHostedRemoved(workload::Request* req) { (void)req; }

    /**
     * @p req ran in the just-completed iteration: its generated-token
     * count (hence KV) advanced, and possibly its quantum or phase.
     * Mark it dirty in your queues if its ordering key changed.
     */
    virtual void onRequestExecuted(workload::Request* req,
                                   bool quanta_changed)
    {
        (void)req;
        (void)quanta_changed;
    }

    /**
     * Last gate before verbatim plan reuse; runs any deferred
     * decisions that recompute mode would take at plan time (PASCAL's
     * demotion rule). Return true to veto the reuse. May mutate
     * scheduler state (an applied demotion both vetoes and updates
     * the queues).
     */
    virtual bool reuseVeto() { return false; }

    /**
     * A linked member's materiality flipped in place (a
     * prefill/prewarm allocation — @p delta is +1, or -1
     * defensively): forward to the owning queue's noteMaterialized()
     * so its material/waiting sublists stay exact.
     */
    virtual void
    onMaterialChanged(workload::Request* req, int delta)
    {
        (void)req;
        (void)delta;
    }

    /** True if ordering keys come from the predictor, so a predictor
     *  version bump re-keys every request. */
    virtual bool keysUsePredictions() const { return false; }

    /** Subclasses call this whenever queue contents or keys changed
     *  outside buildPlan (blocks verbatim reuse until the next
     *  buildPlan). */
    void noteStateChanged() { stateChanged = true; }

    /**
     * Subclasses call this whenever a hosted request's
     * ResidentEvictOrder key moved (quantum consumption, queue-tag
     * transfer, demotion, predictor re-key) — always in addition to
     * marking their own queues dirty. Keeps the maintained
     * eviction-order structure exact and journals the member for the
     * plan-repair splice/merge when a repairable lineage is active.
     * No-op for non-material members (their keys are re-read at
     * admission) and in recompute mode.
     */
    void noteKeyChanged(workload::Request* req);

    /**
     * Plan-boundary hook run by repairPlan() before it patches:
     * apply any decisions your reuseVeto() would have taken (PASCAL's
     * deferred demotions), so a boundary that skips reusePlan's veto
     * (because stateChanged was already set) still applies them at
     * the same point recompute mode does. Must journal its own key
     * changes via noteKeyChanged().
     */
    virtual void applyDeferredDecisions() {}

    /** Recompute @p req's contribution to the maintained monitor
     *  counters from its live state. */
    void syncCounters(workload::Request* req);

    /** Predictor version() changed since the last buildPlan (only
     *  meaningful when keysUsePredictions()). */
    bool predictorMoved() const;

    /** True if @p req is currently hosted by *this* scheduler (the
     *  intrusive fields alone cannot tell schedulers apart). */
    bool
    isHosted(const workload::Request* req) const
    {
        return req->schedHostedPos < requests.size() &&
               requests[req->schedHostedPos] == req;
    }

    /** @} */

    /**
     * Shared greedy selection over two priority ranges (the capped
     * high-priority segment, then the uncapped rest): walk by
     * priority, charging each candidate's full memory footprint (KV +
     * one token of decode growth, or prompt + first token for
     * prefills, block-rounded per the pool's paged allocator) against
     * the GPU capacity. Unselected residents are kept resident while
     * the leftover budget allows and evicted (swapOut) otherwise,
     * which preempts the lowest-priority requests first.
     *
     * Policies with skip semantics (RR, PASCAL) pass
     * stop_at_unfit = false; strict-order policies stop the walk at
     * the first candidate that does not fit.
     *
     * Early exit: once nothing further can be admitted (the walk
     * stopped, the batch is full, or the leftover budget is below one
     * paged block — the minimum any candidate charges) the only
     * remaining work is accounting GPU residents for the keep/evict
     * pass, so the walk ends as soon as every pool-resident
     * allocation has been seen. A saturated instance therefore plans
     * in O(batch + residents) instead of O(hosted), no matter how
     * deep its admission backlog grows.
     *
     * The ranges are templated so the skip-list queues are consumed
     * in place — no O(n) copy into a scratch order per plan.
     *
     * In incremental mode the walk also records the reuse-validation
     * state (per-decode-member budget caps and the kept residents)
     * that reusePlan() re-checks each steady-state iteration.
     *
     * @param cap_high Charge the high range against
     *        @p high_budget_cap as well as the global budget
     *        (PASCAL's answering-reserve extension).
     */
    template <typename It>
    void
    greedySelectRanges(It high_begin, It high_end, It low_begin,
                       It low_end, bool cap_high,
                       TokenCount high_budget_cap,
                       const model::KvPool& pool, bool stop_at_unfit,
                       IterationPlan& out)
    {
        if (incremental) {
            // Link any pending eviction-order members now: every key
            // change of this boundary (demotion, predictor re-key,
            // quantum rollover) has already been marked dirty by the
            // planInto prologue, so the settle pass below reads a
            // fully ordered resident structure — no per-build
            // re-sort.
            evictOrder.repair();
        }
        TokenCount budget = pool.gpuCapacity();
        TokenCount high_budget = cap_high ? high_budget_cap : budget;
        TokenCount prefill_tokens = 0;
        int batch = 0;
        bool stopped = false;
        bool walking = true;
        const std::size_t gpu_total = pool.numGpuResident();
        const std::size_t cpu_total = pool.numTracked() - gpu_total;
        std::size_t residents_seen = 0;
        std::size_t swapped_seen = 0;
        ++planWalkEpoch;
        // Exact admission floor for the whole waiting population (the
        // waiting set is frozen while a plan is built): the smallest
        // prompt bounds both the memory charge and the prefill token
        // cap of every waiting candidate, prewarm or not.
        const TokenCount min_waiting_prompt =
            waitingPrompts.empty()
                ? std::numeric_limits<TokenCount>::max()
                : *waitingPrompts.begin();
        const TokenCount waiting_floor =
            waitingPrompts.empty()
                ? 0
                : pool.chargeFor(min_waiting_prompt + 1);
        std::vector<workload::Request*>& unselected_residents =
            lastKeptResidents; // Reused buffer; doubles as the record.
        unselected_residents.clear();
        lastDecodeCapped.clear();
        lastHighBudgetCap = cap_high ? high_budget_cap : -1;

        // True once no waiting candidate can join the batch. Every
        // input is monotone along the walk (budget shrinks,
        // batch/prefill counts grow), so it is re-evaluated only
        // after admissions; the moment it flips, the walk drops the
        // queues' waiting streams (iterator::skipWaiting) and
        // finishes over the material members alone.
        bool waiting_dead = waitingPrompts.empty();
        auto recheck = [&]() {
            if (stopped || batch >= limits.maxBatchSize) {
                // Nothing at all can be admitted. Incremental mode
                // settles the unreached residents from the material
                // list after the walk; recompute mode (whose exec
                // states may be test-poked without notifications)
                // only stops once everything with KV has been
                // walked.
                if (incremental || (residents_seen == gpu_total &&
                                    swapped_seen == cpu_total)) {
                    walking = false;
                }
                return;
            }
            waiting_dead =
                waiting_dead || budget < waiting_floor ||
                (waitingPrewarmCount == 0 &&
                 (static_cast<int>(out.prefill.size()) >=
                      limits.maxPrefillSeqs ||
                  prefill_tokens + min_waiting_prompt >
                      limits.maxPrefillTokens));
        };
        recheck();

        // Strict-order policies (stop_at_unfit) may NOT skip the
        // waiting stream: their first unfit waiting candidate stops
        // the whole walk, so a skipped waiting member would let a
        // later material member be admitted that the reference walk
        // blocks. They still exit fast — the unfit candidate flips
        // `stopped` and the material-list tail settles the rest.
        const bool can_skip_waiting = incremental && !stop_at_unfit;
        It it = high_begin;
        It range_end = high_end;
        bool in_high = true;
        bool capped = cap_high;
        if (can_skip_waiting && waiting_dead)
            maybeSkipWaiting(it);
        for (;;) {
            if (!walking)
                break;
            if (it == range_end) {
                if (!in_high)
                    break;
                in_high = false;
                capped = false;
                it = low_begin;
                range_end = low_end;
                if (can_skip_waiting && waiting_dead)
                    maybeSkipWaiting(it);
                continue;
            }
            workload::Request* r = *it;
            if (!schedulable(r)) {
                ++it;
                continue;
            }
            bool resident =
                r->exec == workload::ExecState::ResidentGpu;
            if (resident) {
                ++residents_seen;
                r->schedPlanStamp = planWalkEpoch;
                if (residents_seen == gpu_total)
                    recheck();
            } else if (r->exec == workload::ExecState::SwappedCpu) {
                ++swapped_seen;
                if (swapped_seen == cpu_total)
                    recheck();
            }

            if (stopped || batch >= limits.maxBatchSize) {
                if (resident)
                    unselected_residents.push_back(r);
                ++it;
                continue;
            }

            // Effective budget: capped (high-queue) candidates may
            // not eat into the memory reserved for the low queue.
            TokenCount avail =
                capped ? std::min(budget, high_budget) : budget;
            bool admitted = false;
            TokenCount cost = 0;
            switch (r->exec) {
              case workload::ExecState::WaitingNew: {
                cost = pool.chargeFor(r->spec().promptTokens + 1);
                bool prewarm = r->spec().startInAnswering;
                bool caps_ok =
                    prewarm ||
                    (static_cast<int>(out.prefill.size()) <
                         limits.maxPrefillSeqs &&
                     prefill_tokens + r->spec().promptTokens <=
                         limits.maxPrefillTokens);
                if (!caps_ok || cost > avail) {
                    if (stop_at_unfit) {
                        stopped = true;
                        recheck();
                    }
                    break;
                }
                admitted = true;
                if (prewarm) {
                    out.prewarm.push_back(r);
                } else {
                    out.prefill.push_back(r);
                    prefill_tokens += r->spec().promptTokens;
                }
                break;
              }
              case workload::ExecState::ResidentGpu: {
                cost = pool.chargeFor(r->kvTokens() + 1);
                if (cost > avail) {
                    unselected_residents.push_back(r);
                    if (stop_at_unfit) {
                        stopped = true;
                        recheck();
                    }
                    break;
                }
                admitted = true;
                out.decode.push_back(r);
                lastDecodeCapped.push_back(capped ? 1 : 0);
                break;
              }
              case workload::ExecState::SwappedCpu: {
                cost = pool.chargeFor(r->kvTokens() + 1);
                if (cost > avail) {
                    if (stop_at_unfit) {
                        stopped = true;
                        recheck();
                    }
                    break;
                }
                admitted = true;
                out.swapIn.push_back(r);
                out.decode.push_back(r);
                lastDecodeCapped.push_back(capped ? 1 : 0);
                break;
              }
              default:
                panic("greedySelect: unexpected exec state");
            }
            if (admitted) {
                budget -= cost;
                if (capped)
                    high_budget -= cost;
                ++batch;
                // The budget/batch/prefill state moved, so the exit
                // verdicts may have flipped.
                bool was_dead = waiting_dead;
                recheck();
                if (can_skip_waiting && waiting_dead && !was_dead)
                    maybeSkipWaiting(it);
            }
            ++it;
        }

        if (!walking && incremental) {
            // Full exit (batch full / strict-order stop): settle the
            // GPU residents the walk never reached. Every unstamped
            // member of the maintained eviction-order structure is by
            // construction unselected (selection requires a visit),
            // and arrives already in eviction priority order — so the
            // keep/evict pass needs no tail re-sort.
            for (auto eit = evictOrder.begin(); eit != evictOrder.end();
                 ++eit) {
                workload::Request* r = *eit;
                if (r->exec != workload::ExecState::ResidentGpu ||
                    r->schedPlanStamp == planWalkEpoch ||
                    !schedulable(r))
                    continue;
                unselected_residents.push_back(r);
            }
        }
        finishGreedySelect(pool, out, budget);
    }

    /** Single-order convenience over greedySelectRanges: the first
     *  @p high_prefix_len entries of @p order form the capped high
     *  segment (0 disables the cap). */
    void greedySelectInto(const std::vector<workload::Request*>& order,
                          const model::KvPool& pool, bool stop_at_unfit,
                          IterationPlan& out,
                          std::size_t high_prefix_len = 0,
                          TokenCount high_budget_cap = 0);

    /** Legacy convenience (unit probes): greedySelectInto on a fresh
     *  plan. */
    IterationPlan
    greedySelect(const std::vector<workload::Request*>& order,
                 const model::KvPool& pool, bool stop_at_unfit,
                 std::size_t high_prefix_len = 0,
                 TokenCount high_budget_cap = 0)
    {
        IterationPlan out;
        greedySelectInto(order, pool, stop_at_unfit, out,
                         high_prefix_len, high_budget_cap);
        return out;
    }

    /** Fill @p plan's predictedRemainingTokens from the wired
     *  predictor (no-op without one). */
    void annotatePrediction(IterationPlan& plan) const;

    std::vector<workload::Request*> requests;

    /** Insertion-ordered intrusive hosted list (see hostedHead()). */
    workload::Request* hostedFirst = nullptr;
    workload::Request* hostedLast = nullptr;

    SchedLimits limits;
    const predict::LengthPredictor* lengthPredictor = nullptr;

    /** Reusable order buffer for planInto implementations. */
    std::vector<workload::Request*> orderScratch;

    bool incremental = false;
    InstanceId instanceId = kNoInstance;

  private:
    /**
     * Shared tail of the greedy walk: keep unselected residents while
     * @p leftover_budget covers them and evict the rest. The record
     * arrives in walk priority order end to end — the walked prefix
     * by construction, the early-exit tail because the maintained
     * eviction-order structure yields it pre-sorted — so no re-sort
     * is needed and the emitted plan is byte-identical to the full
     * walk's.
     */
    void finishGreedySelect(const model::KvPool& pool,
                            IterationPlan& out,
                            TokenCount leftover_budget);

    /** O(batch) re-walk of the recorded greedy selection. */
    bool revalidate(const IterationPlan& prev,
                    const model::KvPool& pool) const;

    /** Recompute-mode counter scans. */
    int scanReasoning() const;
    int scanFreshAnswering() const;

    std::uint64_t
    currentPredictorVersion() const
    {
        return lengthPredictor ? lengthPredictor->version() : 0;
    }

    /** Maintained monitor counters (incremental mode). */
    int reasoningCount = 0;
    int freshAnsweringCount = 0;

    /** @name Greedy-walk early-exit state */
    /** @{ */

    /**
     * Maintained eviction-order structure over the material members:
     * every hosted request that holds KV (GPU-resident or swapped),
     * kept sorted by ResidentEvictOrder across builds (incremental
     * mode only; recompute mode never touches it). Membership changes
     * only at prefill/prewarm allocation, migration landing, and
     * departure — swaps move tiers, not membership; key moves arrive
     * via noteKeyChanged(). The greedy walk's early-exit settle pass
     * reads it pre-sorted, so swap-thrashing instances stop paying a
     * per-build eviction re-sort.
     */
    OrderedQueue<ResidentEvictOrder, EvictQueueHooks> evictOrder{1};

    /** Exact multiset of hosted waiting requests' prompt sizes (the
     *  waiting set is frozen during a walk, so its minimum yields an
     *  exact "nothing waiting fits" admission floor). */
    std::multiset<TokenCount> waitingPrompts;

    /** Hosted startInAnswering requests still waiting (they bypass
     *  the prefill caps, so the walk may only stop early when none
     *  remain). */
    int waitingPrewarmCount = 0;

    /** Epoch stamped into visited residents per greedy walk. */
    std::uint64_t planWalkEpoch = 0;

    /** Unlink @p req from the material set if present. */
    void unlinkMaterial(workload::Request* req);

    /** @} */

    /** @name Plan-repair journal (the dirty set of the active plan
     *  lineage; see repairPlan()) */
    /** @{ */

    /** Journal ops, also stored in Request::schedRepairState (which
     *  dedupes per-request journaling per lineage). */
    static constexpr std::uint8_t kRepairNone = 0;
    static constexpr std::uint8_t kRepairRekey = 1;
    static constexpr std::uint8_t kRepairInsert = 2;
    static constexpr std::uint8_t kRepairErase = 3; //!< Entry-only.

    struct RepairEntry
    {
        workload::Request* req;
        std::uint8_t op;
        /** Erase only: the member's block-offset histogram bucket,
         *  recorded at remove time (its KV may move afterwards). */
        std::uint32_t histIdx;
    };

    /** True while mutations must be journaled: the last build left a
     *  repairable lineage that has not bailed. */
    bool
    repairActive() const
    {
        return incremental && lastPlanRepairable && !repairBail;
    }

    /** Reset the journal and per-request journal states (end of every
     *  lineage-ending buildPlan). */
    void clearRepairJournal();

    std::vector<RepairEntry> repairJournal;

    /** Something unjournalable happened (a swapped-in migration
     *  landing): the lineage cannot be repaired, only rebuilt. */
    bool repairBail = false;

    /** The last buildPlan produced a patchable plan: uncapped pure
     *  decode with every material member selected. */
    bool lastPlanRepairable = false;

    /** forcePlanRepair / PASCAL_FORCE_REPAIR: the repair fast path is
     *  disabled and every non-reused boundary pays the full walk. */
    bool repairDisabled = false;

    /** Pool block size at the last build (remove() has no pool). */
    TokenCount lastBlockSize = 1;

    /** Scratch: re-keyed + inserted members, sorted then merged. */
    std::vector<workload::Request*> repairPatch;

    /** Scratch: merge target for the patched decode batch. */
    std::vector<workload::Request*> decodeScratch;

    /**
     * The lineage's decode basis: the batch of the last full build or
     * repair, in plan order. Kept scheduler-side (not read from the
     * caller's plan) because a prefill-only excursion build overwrites
     * the in-flight plan while the lineage — whose decode members sat
     * out the prefill iteration with their KV untouched — stays
     * patchable.
     */
    std::vector<workload::Request*> basisDecode;

    /**
     * Scratch: departed members' pointer identities for the splice.
     * Erased entries are never dereferenced — the request may have
     * finished and had its arena slot recycled for an unrelated
     * arrival by the time the journal is folded — so the merge skips
     * basis members by pointer identity instead of a flag.
     */
    std::vector<const workload::Request*> eraseScratch;

    /** @} */

    /** Telemetry: why the last reuse / repair attempt declined. */
    PlanDecline reuseDecline = PlanDecline::None;
    PlanDecline repairDecline = PlanDecline::None;

    /** Any membership/key/queue change since the last buildPlan. */
    bool stateChanged = true;

    /** Last plan qualifies for verbatim reuse (pure decode). */
    bool lastPlanReusable = false;

    std::uint64_t lastPredictorVersion = 0;

    /** @name Reuse-validation record of the last greedy walk */
    /** @{ */
    std::vector<workload::Request*> lastKeptResidents;
    std::vector<std::uint8_t> lastDecodeCapped;
    TokenCount lastHighBudgetCap = -1; //!< -1: no high-queue cap.

    /**
     * O(1) steady-state budget check (uncapped walks only): histogram
     * of the decode members' kv % blockSize at build time. During a
     * run of verbatim reuses every member's KV grows by exactly one
     * token per iteration, so the number of members crossing a paged
     * block boundary at reuse k is blockOffsetHist[(block - k%block) %
     * block], and the whole walk revalidation collapses to
     *   gpuUsed + blockSize * crossings <= capacity
     * (selection prefix sums and the kept-resident walk are both
     * bounded by that total when no per-member cap applies).
     */
    std::vector<std::uint32_t> blockOffsetHist;

    /**
     * Iterations the current plan lineage has run since its last full
     * build: incremented by every verbatim reuse and every successful
     * repair, reset by buildPlan. Anchors the histogram phase — at a
     * boundary with planAge = a, every surviving decode member has
     * executed exactly a + 1 times since its histogram bucket was
     * recorded, which is what the repair journal's erase/insert
     * bucket arithmetic relies on.
     */
    std::uint64_t planAge = 0;
    /** @} */
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_INTRA_SCHEDULER_HH
