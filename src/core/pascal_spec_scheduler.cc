#include "src/core/pascal_spec_scheduler.hh"

#include <cmath>

namespace pascal
{
namespace core
{

PascalSpecScheduler::PascalSpecScheduler(SchedLimits limits)
    : PascalScheduler(limits)
{}

bool
PascalSpecScheduler::shouldDemote(const workload::Request* req) const
{
    // Safety net: the paper's reactive rule still applies, so an
    // under-predicting predictor cannot keep a monster in the high
    // queue forever.
    if (PascalScheduler::shouldDemote(req))
        return true;
    if (lengthPredictor == nullptr)
        return false;

    TokenCount kv = req->kvTokens();
    if (kv + limits.demoteLookaheadTokens <=
        limits.demoteThresholdTokens) {
        // Too far from the threshold: even a correct prediction would
        // demote needlessly early and cost the request its rightful
        // high-priority service.
        return false;
    }
    double predicted_final_kv =
        static_cast<double>(kv) +
        lengthPredictor->predictRemainingReasoningTokens(*req);
    return predicted_final_kv >
           static_cast<double>(limits.demoteThresholdTokens);
}

double
PascalSpecScheduler::queueKey(const workload::Request* req) const
{
    if (lengthPredictor == nullptr)
        return 0.0;
    return lengthPredictor->rankScore(*req);
}

} // namespace core
} // namespace pascal
