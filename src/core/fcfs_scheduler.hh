/**
 * @file
 * First-Come-First-Served scheduler (vLLM's default policy,
 * Section II-C).
 *
 * Requests are served strictly in arrival order. When GPU memory is
 * exhausted, the most recently arrived running requests are preempted
 * (KV swapped to CPU), new admissions block until space frees, and
 * preempted requests resume before any newer request is admitted. The
 * resulting head-of-line blocking is the behaviour Figs. 2(b), 4 and 5
 * characterize.
 *
 * The (arrival, id) key is immutable, so in incremental mode the
 * queue only ever changes on add/remove — the per-iteration sort of
 * the recompute path disappears entirely.
 */

#ifndef PASCAL_CORE_FCFS_SCHEDULER_HH
#define PASCAL_CORE_FCFS_SCHEDULER_HH

#include <string>

#include "src/core/intra_scheduler.hh"
#include "src/core/ordered_queue.hh"

namespace pascal
{
namespace core
{

/** Strict arrival order (immutable key), after the SLO-class rank
 *  (all-zero with classes off, so the rank level is inert). */
struct FcfsOrder
{
    bool
    operator()(const workload::Request* a,
               const workload::Request* b) const
    {
        if (a->schedClassRank != b->schedClassRank)
            return a->schedClassRank < b->schedClassRank;
        if (a->spec().arrival != b->spec().arrival)
            return a->spec().arrival < b->spec().arrival;
        return a->id() < b->id();
    }
};

/** Strict arrival-order scheduling with preempt-latest eviction. */
class FcfsScheduler : public IntraScheduler
{
  public:
    explicit FcfsScheduler(SchedLimits limits);

    std::string name() const override { return "FCFS"; }

  protected:
    void planInto(const model::KvPool& pool,
                  IterationPlan& out) override;

    void onHostedAdded(workload::Request* req) override
    {
        queue.insert(req);
    }

    void onHostedRemoved(workload::Request* req) override
    {
        queue.erase(req);
    }

    void
    onMaterialChanged(workload::Request* req, int delta) override
    {
        (void)delta;
        queue.noteMaterialized(req);
    }

  private:
    OrderedQueue<FcfsOrder> queue{1};
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_FCFS_SCHEDULER_HH
