/**
 * @file
 * First-Come-First-Served scheduler (vLLM's default policy,
 * Section II-C).
 *
 * Requests are served strictly in arrival order. When GPU memory is
 * exhausted, the most recently arrived running requests are preempted
 * (KV swapped to CPU), new admissions block until space frees, and
 * preempted requests resume before any newer request is admitted. The
 * resulting head-of-line blocking is the behaviour Figs. 2(b), 4 and 5
 * characterize.
 */

#ifndef PASCAL_CORE_FCFS_SCHEDULER_HH
#define PASCAL_CORE_FCFS_SCHEDULER_HH

#include <string>

#include "src/core/intra_scheduler.hh"

namespace pascal
{
namespace core
{

/** Strict arrival-order scheduling with preempt-latest eviction. */
class FcfsScheduler : public IntraScheduler
{
  public:
    explicit FcfsScheduler(SchedLimits limits);

    std::string name() const override { return "FCFS"; }

    IterationPlan plan(const model::KvPool& pool) override;
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_FCFS_SCHEDULER_HH
