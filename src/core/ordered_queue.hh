/**
 * @file
 * OrderedQueue: the incrementally maintained priority queue behind the
 * iteration fast path.
 *
 * A scheduler queue spends thousands of consecutive decode iterations
 * with an unchanged membership and unchanged ordering keys, so sorting
 * it from scratch every iteration (the pre-optimization behaviour) is
 * almost always wasted work. Earlier revisions kept a sorted vector
 * with lazy tombstones, but its repair still paid an O(n) compaction
 * pass per dirty batch — the last super-linear term on churn-heavy
 * million-request sweeps. The queue is now a deterministic
 * doubly-linked skip list:
 *
 *  - steady state (no mutations):      repair() is O(1) (a no-op),
 *  - erase / markDirty:                O(log n) — the node unlinks
 *    itself through its per-level prev/next pointers, so no search
 *    (and therefore no still-valid key) is needed,
 *  - repair() with d pending inserts:  strictly O(d log n), no
 *    compaction or merge pass ever walks the clean majority,
 *  - comparator invariant:             iteration yields exactly the
 *    order std::sort produces with the same strict total order,
 *    which is what the force-resort invariance tests pin down.
 *
 * Material split: members are stored in TWO sibling skip lists under
 * the same order — requests holding KV ("material": GPU-resident or
 * swapped) and requests still waiting for admission. Iteration is a
 * two-way merge, so consumers see the usual total order; but when the
 * greedy selection walk proves that no waiting request can be
 * admitted anymore, it drops the waiting stream (iterator::
 * skipWaiting()) and finishes over the material members alone —
 * turning the saturated arrival-storm walk from O(hosted) into
 * O(batch + material) no matter how deep the admission backlog grows.
 * A waiting member that gains KV without a key change (prefill /
 * prewarm allocation) moves sublists in O(log n) via
 * noteMaterialized().
 *
 * Determinism: tower heights are a pure function of the request id
 * (splitmix64 bit mix), so the structure — and every operation count —
 * is identical across runs, threads, and debug modes. The comparator
 * must be a strict TOTAL order (the schedulers tie-break by request
 * id), so the sorted order is unique and independent of how it was
 * produced.
 *
 * Intrusive-field indirection: the queue reaches its per-request node
 * pointer / dirty flag / queue tag through a Hooks policy, so two
 * queues with different node fields can hold the same request — the
 * policy queues use the schedNode family (SchedQueueHooks), the
 * scheduler's maintained eviction-order queue uses the schedEvictNode
 * family (EvictQueueHooks, which also skips queue-tag stamping since
 * the tag is an ordering key owned by the policy queues).
 *
 * Generation-segregated arena compaction: node recycling through the
 * per-height free lists keeps memory bounded but slowly randomizes
 * node addresses, so a long-run level-0 walk stops being
 * prefetch-sequential. repair() tracks recycle churn and, past a
 * deterministic threshold, relinks every surviving node into fresh
 * arenas in level-0 order (O(linked), amortized O(1) per unlink) —
 * the next generation's walk is address-sequential again. Ordering
 * and operation results are unchanged; only addresses move.
 *
 * Contract notes (unchanged from the sorted-vector revision):
 * insert()/markDirty() defer to the next repair(), which reads the
 * request's ordering key at repair time — callers may mutate keys
 * freely between the notification and the repair. erase() and
 * noteMaterialized() take effect immediately (noteMaterialized
 * additionally requires the key to be valid when called; the engine
 * calls it at KV allocation, which never moves a key).
 */

#ifndef PASCAL_CORE_ORDERED_QUEUE_HH
#define PASCAL_CORE_ORDERED_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/log.hh"
#include "src/workload/request.hh"

namespace pascal
{
namespace core
{

/** Default intrusive-field policy: the per-policy scheduler queues
 *  (high/low/ready), which own schedQueueTag. */
struct SchedQueueHooks
{
    static void*& node(workload::Request* r) { return r->schedNode; }
    static bool& dirty(workload::Request* r)
    {
        return r->schedDirtyPending;
    }
    static void
    setTag(workload::Request* r, std::uint8_t tag)
    {
        r->schedQueueTag = tag;
    }
};

/** Intrusive-field policy for the scheduler's maintained
 *  eviction-order queue: a second queue holding the same requests as
 *  the policy queues, so it uses its own node/dirty fields and leaves
 *  schedQueueTag (an ordering key) alone. */
struct EvictQueueHooks
{
    static void*& node(workload::Request* r)
    {
        return r->schedEvictNode;
    }
    static bool& dirty(workload::Request* r)
    {
        return r->schedEvictDirty;
    }
    static void setTag(workload::Request*, std::uint8_t) {}
};

/** Skip-list request queue with dirty-set repair and a material /
 *  waiting split. @tparam Cmp strict total order over Request
 *  pointers (stateless functor). @tparam Hooks intrusive-field
 *  policy (which per-request node/dirty/tag fields this queue owns). */
template <typename Cmp, typename Hooks = SchedQueueHooks>
class OrderedQueue
{
    /** Tower height cap: p = 1/2 levels support ~2^kMaxHeight
     *  members; 20 covers the million-request regime. */
    static constexpr int kMaxHeight = 20;

    struct Node;

    /** One level of a node's tower. */
    struct Link
    {
        Node* next;
        Node* prev;
    };

    /**
     * Exact-height node: the tower links live immediately behind the
     * 16-byte header, so a typical (height 1-2) node occupies 32-48
     * bytes instead of a fixed-height 336 — the level-0 walk that
     * greedy selection runs every plan touches 7x less memory.
     * Nodes are bump-allocated from arenas and recycled through
     * per-height free lists.
     */
    struct Node
    {
        workload::Request* req;
        std::int32_t height;
        bool mat; //!< Which sublist the node lives in.

        Link*
        links()
        {
            return reinterpret_cast<Link*>(
                reinterpret_cast<char*>(this) + sizeof(Node));
        }
        Node* next(int l) { return links()[l].next; }
        Node* prev(int l) { return links()[l].prev; }
    };
    static_assert(sizeof(Node) % alignof(Link) == 0,
                  "tower links must start aligned");

    /** One skip list (sentinel head + level bound + size). */
    struct SubList
    {
        Node* head = nullptr; //!< kMaxHeight sentinel (arena-owned).
        int maxLevel = 1;
        std::size_t linked = 0;
    };

  public:
    /** @param tag Nonzero queue id stamped into schedQueueTag so a
     *  request knows which queue holds it. */
    explicit OrderedQueue(std::uint8_t tag) : tag(tag)
    {
        if (tag == 0)
            panic("OrderedQueue tag must be nonzero");
        for (SubList* s : {&material, &waiting})
            s->head = allocSentinel();
    }

    /**
     * Merged walk over both sublists in key order (valid right after
     * repair()). skipWaiting() drops the waiting stream mid-walk —
     * every not-yet-yielded waiting member is skipped, the material
     * members keep coming in order.
     */
    class iterator
    {
      public:
        iterator(Node* m, Node* w) : m(m), w(w) { cur = pick(); }

        workload::Request* operator*() const { return cur->req; }

        iterator&
        operator++()
        {
            if (cur == m) {
                m = m->next(0);
                if (m != nullptr) {
                    // The walk is a dependent pointer chain; telling
                    // the prefetcher about the successor (and its
                    // request) hides most of the per-hop latency.
                    __builtin_prefetch(m->links()[0].next);
                    __builtin_prefetch(m->req);
                }
            } else if (w != nullptr) {
                w = w->next(0);
                if (w != nullptr) {
                    __builtin_prefetch(w->links()[0].next);
                    __builtin_prefetch(w->req);
                }
            }
            cur = pick();
            return *this;
        }

        /**
         * Drop every not-yet-yielded waiting member. The current
         * position is left untouched (the caller may have consumed
         * it already); the next increment lands on the next material
         * member.
         */
        void skipWaiting() { w = nullptr; }

        bool
        operator==(const iterator& o) const
        {
            return m == o.m && w == o.w;
        }
        bool operator!=(const iterator& o) const { return !(*this == o); }

      private:
        Node*
        pick() const
        {
            if (m == nullptr)
                return w;
            if (w == nullptr)
                return m;
            return Cmp{}(m->req, w->req) ? m : w;
        }

        Node* m;
        Node* w;
        Node* cur;
    };

    iterator
    begin() const
    {
        return iterator(material.head->next(0), waiting.head->next(0));
    }
    iterator end() const { return iterator(nullptr, nullptr); }

    /** Add a request (takes effect at the next repair()). */
    void
    insert(workload::Request* r)
    {
        Hooks::setTag(r, tag);
        Hooks::dirty(r) = true;
        pending.push_back(r);
    }

    /**
     * Remove a request that currently belongs to this queue. A linked
     * node unlinks in O(log n) through its own level pointers; a
     * pending re-insertion is cancelled instead.
     */
    void
    erase(workload::Request* r)
    {
        Hooks::setTag(r, 0);
        if (Hooks::dirty(r)) {
            Hooks::dirty(r) = false;
            auto it = std::find(pending.begin(), pending.end(), r);
            if (it == pending.end())
                panic("OrderedQueue::erase: pending entry missing");
            pending.erase(it);
            return;
        }
        unlink(r);
    }

    /** The request's ordering key changed: unlink its node now (the
     *  stale key is never consulted) and queue it for re-insertion at
     *  the next repair(). */
    void
    markDirty(workload::Request* r)
    {
        if (Hooks::dirty(r))
            return; // Already queued for re-insertion.
        unlink(r);
        Hooks::dirty(r) = true;
        pending.push_back(r);
    }

    /**
     * A linked member's materiality flipped (KV allocated without a
     * key change): move its node to the other sublist in O(log n).
     * Pending members need nothing — link() reads the flag.
     */
    void
    noteMaterialized(workload::Request* r)
    {
        if (Hooks::dirty(r))
            return;
        Node* node = static_cast<Node*>(Hooks::node(r));
        if (node == nullptr || node->mat == r->schedInResidentList)
            return;
        unlink(r);
        link(r);
    }

    /** True if repair() has pending work. */
    bool dirty() const { return !pending.empty(); }

    /**
     * Re-establish the sorted invariant: every pending request is
     * inserted at its key's unique position — O(pending x log n),
     * with no pass over the clean members. Past the churn threshold
     * this also compacts the arenas first, so the pending nodes land
     * in the fresh generation too.
     */
    void
    repair()
    {
        if (recycleChurn >= kCompactMinChurn &&
            recycleChurn >= 4 * (material.linked + waiting.linked))
            compact();
        for (auto* r : pending) {
            Hooks::dirty(r) = false;
            link(r);
        }
        pending.clear();
    }

    /** Drop everything (requests keep their tags; callers re-insert). */
    void
    clear()
    {
        for (SubList* s : {&material, &waiting}) {
            for (Node* n = s->head->next(0); n != nullptr;) {
                Node* next = n->next(0);
                Hooks::node(n->req) = nullptr;
                n->req = nullptr;
                freeNodes[n->height].push_back(n);
                n = next;
            }
            for (int l = 0; l < kMaxHeight; ++l)
                s->head->links()[l] = Link{nullptr, nullptr};
            s->maxLevel = 1;
            s->linked = 0;
        }
        pending.clear();
    }

    std::size_t
    size() const
    {
        return material.linked + waiting.linked + pending.size();
    }

    /** Arena compactions performed so far (diagnostic). */
    std::uint64_t numCompactions() const { return compactions; }

    /** Nodes recycled since the last compaction (diagnostic). */
    std::size_t recycledSinceCompaction() const { return recycleChurn; }

  private:
    /** Deterministic tower height: a pure bit mix of the request id
     *  (geometric, p = 1/2), identical across runs and modes. */
    static int
    heightFor(RequestId id)
    {
        std::uint64_t x =
            static_cast<std::uint64_t>(id) + 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        x ^= x >> 31;
        int h = 1;
        while ((x & 1ull) != 0ull && h < kMaxHeight) {
            x >>= 1;
            ++h;
        }
        return h;
    }

    /** Bump-allocate an exact-height node (16-byte header + height
     *  tower links) or pop a recycled one. */
    Node*
    allocNode(int height)
    {
        auto& free = freeNodes[height];
        if (!free.empty()) {
            Node* n = free.back();
            free.pop_back();
            return n;
        }
        std::size_t bytes =
            sizeof(Node) +
            static_cast<std::size_t>(height) * sizeof(Link);
        if (arenas.empty() || arenaUsed + bytes > kArenaBytes) {
            arenas.emplace_back(new char[kArenaBytes]);
            arenaUsed = 0;
        }
        char* p = arenas.back().get() + arenaUsed;
        arenaUsed += (bytes + 15) & ~std::size_t{15};
        return reinterpret_cast<Node*>(p);
    }

    /** Allocate and zero-link a kMaxHeight sentinel head. */
    Node*
    allocSentinel()
    {
        Node* head = allocNode(kMaxHeight);
        head->req = nullptr;
        head->height = kMaxHeight;
        head->mat = false;
        for (int l = 0; l < kMaxHeight; ++l)
            head->links()[l] = Link{nullptr, nullptr};
        return head;
    }

    /**
     * Generation-segregated compaction: relink every surviving node
     * (both sublists, level-0 order) into fresh arenas via a
     * per-level last-node spine, drop the old arenas and free lists.
     * O(linked); ordering untouched — only node addresses change, so
     * the next generation's level-0 walk is address-sequential.
     */
    void
    compact()
    {
        ++compactions;
        recycleChurn = 0;
        std::vector<std::unique_ptr<char[]>> retired =
            std::move(arenas);
        arenas.clear();
        arenaUsed = 0;
        for (auto& free : freeNodes)
            free.clear();
        for (SubList* s : {&material, &waiting}) {
            Node* old = s->head;
            Node* head = allocSentinel();
            Node* last[kMaxHeight];
            for (int l = 0; l < kMaxHeight; ++l)
                last[l] = head;
            for (Node* n = old->next(0); n != nullptr; n = n->next(0)) {
                Node* copy = allocNode(n->height);
                copy->req = n->req;
                copy->height = n->height;
                copy->mat = n->mat;
                Hooks::node(copy->req) = copy;
                for (int l = 0; l < copy->height; ++l) {
                    copy->links()[l] = Link{nullptr, last[l]};
                    last[l]->links()[l].next = copy;
                    last[l] = copy;
                }
            }
            s->head = head;
        }
        // `retired` keeps the old generation alive until the walk
        // above has copied every node out of it.
    }

    /** Insert @p r's node (sublist per its current materiality) at
     *  the position its current key dictates. */
    void
    link(workload::Request* r)
    {
        SubList& s = r->schedInResidentList ? material : waiting;
        int height = heightFor(r->id());
        Node* node = allocNode(height);
        node->req = r;
        node->height = height;
        node->mat = r->schedInResidentList;
        Hooks::node(r) = node;
        s.maxLevel = std::max(s.maxLevel, height);

        Cmp less{};
        Node* pred = s.head;
        for (int l = s.maxLevel - 1; l >= 0; --l) {
            while (pred->next(l) != nullptr &&
                   less(pred->next(l)->req, r)) {
                pred = pred->next(l);
            }
            if (l < height) {
                Node* succ = pred->next(l);
                node->links()[l] = Link{succ, pred};
                pred->links()[l].next = node;
                if (succ != nullptr)
                    succ->links()[l].prev = node;
            }
        }
        ++s.linked;
    }

    /** Unlink @p r's node in O(height) via its own level pointers. */
    void
    unlink(workload::Request* r)
    {
        Node* node = static_cast<Node*>(Hooks::node(r));
        if (node == nullptr || node->req != r)
            panic("OrderedQueue: request " + std::to_string(r->id()) +
                  " has no linked node in this queue");
        for (int l = 0; l < node->height; ++l) {
            Link& link = node->links()[l];
            link.prev->links()[l].next = link.next;
            if (link.next != nullptr)
                link.next->links()[l].prev = link.prev;
        }
        SubList& s = node->mat ? material : waiting;
        --s.linked;
        Hooks::node(r) = nullptr;
        node->req = nullptr;
        freeNodes[node->height].push_back(node);
        ++recycleChurn;
    }

    static constexpr std::size_t kArenaBytes = 1 << 16;

    /** Compaction trigger floor: below this many recycles the level-0
     *  walk is still mostly generation-ordered, so don't bother. */
    static constexpr std::size_t kCompactMinChurn = 4096;

    std::uint8_t tag;
    std::vector<workload::Request*> pending;
    /** Bump arenas backing the exact-height nodes. */
    std::vector<std::unique_ptr<char[]>> arenas;
    std::size_t arenaUsed = 0;
    /** Recycled nodes, by height. */
    std::vector<Node*> freeNodes[kMaxHeight + 1];
    SubList material;
    SubList waiting;
    /** Nodes recycled since the last compaction. */
    std::size_t recycleChurn = 0;
    std::uint64_t compactions = 0;
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_ORDERED_QUEUE_HH
