/**
 * @file
 * OrderedQueue: the incrementally maintained priority queue behind the
 * iteration fast path.
 *
 * A scheduler queue spends thousands of consecutive decode iterations
 * with an unchanged membership and unchanged ordering keys, so sorting
 * it from scratch every iteration (the pre-optimization behaviour) is
 * almost always wasted work. OrderedQueue keeps the requests in a
 * sorted vector and repairs it only for requests whose key actually
 * changed: mutations are recorded intrusively on the request
 * (schedQueueTag / schedDirtyPending) plus a pending list, and
 * repair() compacts out stale entries and merges the re-keyed batch
 * back in. Cost model:
 *
 *  - steady state (no mutations):      repair() is O(1) (a no-op),
 *  - d dirty requests out of n:        O(n + d log d) with tiny
 *    constants (one pointer compaction pass + sort of the dirty batch
 *    + one in-place merge) instead of the full O(n log n) re-sort,
 *  - comparator invariant:             identical final order to
 *    std::sort with the same strict total order, which is what the
 *    force-resort invariance tests pin down.
 *
 * The comparator must be a strict TOTAL order (the schedulers
 * tie-break by request id), so the sorted order is unique and
 * independent of how it was produced.
 */

#ifndef PASCAL_CORE_ORDERED_QUEUE_HH
#define PASCAL_CORE_ORDERED_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/log.hh"
#include "src/workload/request.hh"

namespace pascal
{
namespace core
{

/** Sorted request queue with dirty-set repair. @tparam Cmp strict
 *  total order over Request pointers (stateless functor). */
template <typename Cmp>
class OrderedQueue
{
  public:
    /** @param tag Nonzero queue id stamped into schedQueueTag so a
     *  request knows which queue holds it. */
    explicit OrderedQueue(std::uint8_t tag) : tag(tag)
    {
        if (tag == 0)
            panic("OrderedQueue tag must be nonzero");
    }

    /** Add a request (takes effect at the next repair()). */
    void
    insert(workload::Request* r)
    {
        r->schedQueueTag = tag;
        r->schedDirtyPending = true;
        pending.push_back(r);
    }

    /**
     * Remove a request that currently belongs to this queue. The
     * sorted slot (if any) is dropped lazily by the next repair();
     * a pending re-insertion is cancelled immediately.
     */
    void
    erase(workload::Request* r)
    {
        r->schedQueueTag = 0;
        if (r->schedDirtyPending) {
            r->schedDirtyPending = false;
            auto it = std::find(pending.begin(), pending.end(), r);
            if (it == pending.end())
                panic("OrderedQueue::erase: pending entry missing");
            pending.erase(it);
            // It may additionally hold a stale sorted slot (dirty
            // re-insertion after an earlier sorted placement); the
            // compaction predicate drops it by tag.
        }
        ++staleSorted;
    }

    /** The request's ordering key changed: drop its sorted slot and
     *  queue it for re-insertion. */
    void
    markDirty(workload::Request* r)
    {
        if (r->schedDirtyPending)
            return; // Already queued for re-insertion.
        r->schedDirtyPending = true;
        pending.push_back(r);
        ++staleSorted;
    }

    /** True if repair() has pending work. */
    bool
    dirty() const
    {
        return staleSorted != 0 || !pending.empty();
    }

    /**
     * Re-establish the sorted invariant: compact out erased/re-keyed
     * slots, sort the pending batch, and merge it in.
     */
    void
    repair()
    {
        if (!dirty())
            return;
        if (staleSorted != 0) {
            auto keep = [this](const workload::Request* r) {
                return r->schedQueueTag == tag && !r->schedDirtyPending;
            };
            sorted.erase(
                std::remove_if(sorted.begin(), sorted.end(),
                               [&](const workload::Request* r) {
                                   return !keep(r);
                               }),
                sorted.end());
            staleSorted = 0;
        }
        if (!pending.empty()) {
            std::sort(pending.begin(), pending.end(), Cmp{});
            for (auto* r : pending)
                r->schedDirtyPending = false;
            std::size_t old_size = sorted.size();
            sorted.insert(sorted.end(), pending.begin(), pending.end());
            std::inplace_merge(sorted.begin(),
                               sorted.begin() +
                                   static_cast<std::ptrdiff_t>(old_size),
                               sorted.end(), Cmp{});
            pending.clear();
        }
    }

    /** Sorted members. Only valid right after repair(). */
    const std::vector<workload::Request*>&
    items() const
    {
        return sorted;
    }

    /** Drop everything (requests keep their tags; callers re-insert). */
    void
    clear()
    {
        sorted.clear();
        pending.clear();
        staleSorted = 0;
    }

    std::size_t
    size() const
    {
        return sorted.size() + pending.size();
    }

  private:
    std::uint8_t tag;
    std::size_t staleSorted = 0; //!< Stale slots awaiting compaction.
    std::vector<workload::Request*> sorted;
    std::vector<workload::Request*> pending;
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_ORDERED_QUEUE_HH
