/**
 * @file
 * PASCAL-Spec: PASCAL's hierarchical queues made speculative.
 *
 * Two deviations from the reactive PascalScheduler, both driven by the
 * wired LengthPredictor:
 *
 *  - Predictive demotion. The paper demotes a reasoning request only
 *    after its KV actually exceeds the threshold (5000 tokens), which
 *    means a monster request always claims high-priority service for
 *    its first 5000 tokens. PASCAL-Spec demotes as soon as the request
 *    enters the lookahead window below the threshold
 *    (SchedLimits::demoteLookaheadTokens) *and* its predicted final
 *    reasoning KV exceeds the threshold — the doomed request stops
 *    competing with short reasoning work up to a lookahead window
 *    early. Under the oracle predictor the demoted *set* is exactly
 *    the paper's; only the timing moves earlier. The reactive rule is
 *    kept as a safety net for under-predictions.
 *
 *  - Predicted-length tie-breaking. Within each queue, requests with
 *    equal quanta consumed are ordered by predicted remaining work
 *    (shortest first) instead of plain arrival order, blending SRPT
 *    into the round-robin fairness envelope: the quantum still bounds
 *    how long a mis-prediction can starve anyone.
 */

#ifndef PASCAL_CORE_PASCAL_SPEC_SCHEDULER_HH
#define PASCAL_CORE_PASCAL_SPEC_SCHEDULER_HH

#include <string>

#include "src/core/pascal_scheduler.hh"

namespace pascal
{
namespace core
{

/** Phase-aware two-queue scheduler with speculative demotion and
 *  predicted-length tie-breaking. */
class PascalSpecScheduler : public PascalScheduler
{
  public:
    explicit PascalSpecScheduler(SchedLimits limits);

    std::string name() const override { return "PASCAL-Spec"; }

  protected:
    /** Reactive rule OR (inside the lookahead window AND predicted
     *  final reasoning KV exceeds the threshold). */
    bool shouldDemote(const workload::Request* req) const override;

    /** Predicted remaining work (rank score); 0 without a predictor,
     *  which degrades to the paper's arrival-order round robin. */
    double queueKey(const workload::Request* req) const override;

    /** Keyed only when a predictor is actually wired. */
    bool usesQueueKeys() const override
    {
        return lengthPredictor != nullptr;
    }

    /** Inside the lookahead window below the threshold (necessary for
     *  both the reactive rule and predictive demotion). */
    bool
    demotionPossible(const workload::Request* req) const override
    {
        return req->kvTokens() + limits.demoteLookaheadTokens >
               limits.demoteThresholdTokens;
    }
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_PASCAL_SPEC_SCHEDULER_HH
