/**
 * @file
 * Instance-level placement interface and the phase-unaware baseline.
 *
 * The paper's baselines place new requests on the instance with the
 * smallest KV footprint and never migrate at phase transitions
 * (Section V-A).
 */

#ifndef PASCAL_CORE_PLACEMENT_HH
#define PASCAL_CORE_PLACEMENT_HH

#include <string>

#include "src/core/cluster_view.hh"
#include "src/predict/predictor.hh"
#include "src/workload/request.hh"

namespace pascal
{
namespace core
{

/** Instance-level scheduler: routes requests to instances. */
class Placement
{
  public:
    virtual ~Placement() = default;

    virtual std::string name() const = 0;

    /** Choose the instance for a newly arrived (reasoning) request. */
    virtual InstanceId placeNew(const ClusterView& view,
                                const workload::Request& req) = 0;

    /**
     * Choose the instance for a request whose reasoning phase just
     * ended. Returning @p home means "do not migrate".
     */
    virtual InstanceId placeTransition(const ClusterView& view,
                                       const workload::Request& req,
                                       InstanceId home) = 0;

    /** Wire a length predictor (not owned; may be nullptr). Only
     *  speculative variants consult it; the default ignores it. */
    virtual void setPredictor(const predict::LengthPredictor* p)
    {
        (void)p;
    }
};

/** Min-KV-footprint routing, no migration (the baselines' router). */
class BaselinePlacement : public Placement
{
  public:
    std::string name() const override { return "min-kv/no-migration"; }

    InstanceId placeNew(const ClusterView& view,
                        const workload::Request& req) override;

    InstanceId placeTransition(const ClusterView& view,
                               const workload::Request& req,
                               InstanceId home) override;
};

} // namespace core
} // namespace pascal

#endif // PASCAL_CORE_PLACEMENT_HH
