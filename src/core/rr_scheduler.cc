#include "src/core/rr_scheduler.hh"

#include <algorithm>

#include "src/common/log.hh"

namespace pascal
{
namespace core
{

RrScheduler::RrScheduler(SchedLimits limits) : IntraScheduler(limits)
{
    if (this->limits.quantum <= 0)
        fatal("RrScheduler requires a positive token quantum");
}

void
RrScheduler::planInto(const model::KvPool& pool, IterationPlan& out)
{
    // Priority: fewest quanta consumed first (the classic RR key),
    // then arrival order. Candidates that do not fit are skipped
    // rather than blocking the walk: time-sharing interleaves around
    // memory obstacles instead of queueing behind them.
    if (incrementalEnabled()) {
        queue.repair();
        greedySelectRanges(queue.end(), queue.end(), queue.begin(),
                           queue.end(), /*cap_high=*/false, 0, pool,
                           /*stop_at_unfit=*/false, out);
        return;
    }

    orderScratch.clear();
    for (auto* r : requests) {
        if (schedulable(r))
            orderScratch.push_back(r);
    }
    std::sort(orderScratch.begin(), orderScratch.end(), RrOrder{});
    greedySelectInto(orderScratch, pool, /*stop_at_unfit=*/false, out);
}

} // namespace core
} // namespace pascal
