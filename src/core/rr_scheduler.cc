#include "src/core/rr_scheduler.hh"

#include <algorithm>

#include "src/common/log.hh"

namespace pascal
{
namespace core
{

RrScheduler::RrScheduler(SchedLimits limits) : IntraScheduler(limits)
{
    if (this->limits.quantum <= 0)
        fatal("RrScheduler requires a positive token quantum");
}

IterationPlan
RrScheduler::plan(const model::KvPool& pool)
{
    // Priority: fewest quanta consumed first (the classic RR key),
    // then arrival order. Candidates that do not fit are skipped
    // rather than blocking the walk: time-sharing interleaves around
    // memory obstacles instead of queueing behind them.
    std::vector<workload::Request*> order;
    order.reserve(requests.size());
    for (auto* r : requests) {
        if (schedulable(r))
            order.push_back(r);
    }
    std::sort(order.begin(), order.end(),
        [](const workload::Request* a, const workload::Request* b) {
            if (a->quantaConsumed != b->quantaConsumed)
                return a->quantaConsumed < b->quantaConsumed;
            if (a->spec().arrival != b->spec().arrival)
                return a->spec().arrival < b->spec().arrival;
            return a->id() < b->id();
        });

    return greedySelect(order, pool, /*stop_at_unfit=*/false);
}

} // namespace core
} // namespace pascal
