#include "src/core/pascal_placement.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "src/common/log.hh"

namespace pascal
{
namespace core
{

namespace
{

/**
 * Home-side "sufficient GPU memory" margin for the adaptive override
 * (Fig. 7). The transitioning request's KV is already resident at
 * home, so home only needs headroom for decode growth; a small slack
 * distinguishes "has empty slots" from "completely full".
 */
constexpr TokenCount kAdaptiveHomeMarginTokens = 16;

} // namespace

PascalPlacement::PascalPlacement(Variant variant) : mode(variant) {}

std::string
PascalPlacement::name() const
{
    switch (mode) {
      case Variant::Full:
        return "PASCAL";
      case Variant::NonAdaptive:
        return "PASCAL(NonAdaptive)";
      case Variant::NoMigration:
        return "PASCAL(NoMigration)";
      case Variant::Predictive:
        return "PASCAL(Predictive)";
    }
    return "PASCAL(?)";
}

InstanceId
PascalPlacement::placeNew(const ClusterView& view,
                          const workload::Request& req)
{
    (void)req;
    if (view.empty())
        fatal("PascalPlacement: empty cluster");

    // Algorithm 1: E <- {i | t_i}; if empty, E <- I; argmin m_i. The
    // predictive variant scores m_i as the footprint the instance is
    // *heading toward*, not the one it has. Down/draining instances
    // are outside I entirely; with none up the caller gets
    // kNoInstance and must retry or shed.
    bool predictive = mode == Variant::Predictive;
    bool any_slo_ok = false;
    for (const auto& snap : view)
        any_slo_ok = any_slo_ok || (snap.up && snap.answeringSloOk);

    InstanceId best = kNoInstance;
    TokenCount best_kv = std::numeric_limits<TokenCount>::max();
    for (const auto& snap : view) {
        if (!snap.up)
            continue;
        if (any_slo_ok && !snap.answeringSloOk)
            continue;
        TokenCount kv = predictive ? snap.predictedKvFootprintTokens
                                   : snap.kvFootprintTokens;
        if (kv < best_kv) {
            best_kv = kv;
            best = snap.id;
        }
    }
    return best;
}

InstanceId
PascalPlacement::placeTransition(const ClusterView& view,
                                 const workload::Request& req,
                                 InstanceId home)
{
    if (mode == Variant::NoMigration)
        return home;
    if (view.empty())
        fatal("PascalPlacement: empty cluster");

    // Algorithm 2: E <- {i | t_i}; argmin r_i over E. If E is empty,
    // fall back to argmin (r_i + a_i) over all *up* instances; if the
    // whole fleet is down, stay home (the request is already hosted
    // there, and the crash path re-queues it anyway).
    bool any_slo_ok = false;
    for (const auto& snap : view)
        any_slo_ok = any_slo_ok || (snap.up && snap.answeringSloOk);

    InstanceId best = kNoInstance;
    std::int64_t best_key = std::numeric_limits<std::int64_t>::max();
    for (const auto& snap : view) {
        if (!snap.up)
            continue;
        if (any_slo_ok && !snap.answeringSloOk)
            continue;
        std::int64_t key =
            any_slo_ok ? snap.numReasoning
                       : snap.numReasoning + snap.numFreshAnswering;
        if (key < best_key) {
            best_key = key;
            best = snap.id;
        }
    }

    if (best == kNoInstance)
        return home;
    if (best == home || mode == Variant::NonAdaptive)
        return best;

    // Adaptive override (Fig. 7): stay home when home can keep serving
    // the request (its KV is already resident and growth headroom
    // exists) while the selected target cannot even hold the incoming
    // KV without displacement.
    const InstanceSnapshot* home_snap = nullptr;
    const InstanceSnapshot* target_snap = nullptr;
    for (const auto& snap : view) {
        if (snap.id == home)
            home_snap = &snap;
        if (snap.id == best)
            target_snap = &snap;
    }
    if (home_snap == nullptr || target_snap == nullptr)
        panic("PascalPlacement: home/target missing from cluster view");
    if (!home_snap->up)
        return best; // Never override back onto a down/draining home.

    bool home_sufficient =
        home_snap->gpuFreeTokens >= kAdaptiveHomeMarginTokens;
    // The incoming KV the target must absorb: at least the current
    // cache plus one decode token; the predictive variant charges the
    // request's predicted *final* footprint so migrations that would
    // stall mid-answering are vetoed up front (Fig. 13's neglected
    // answering memory).
    TokenCount incoming = req.kvTokens() + 1;
    if (mode == Variant::Predictive && predictor != nullptr) {
        auto growth = static_cast<TokenCount>(
            std::llround(predictor->predictRemainingTokens(req)));
        incoming = req.kvTokens() + std::max<TokenCount>(growth, 1);
    }
    bool target_sufficient = target_snap->gpuFreeTokens >= incoming;
    if (home_sufficient && !target_sufficient)
        return home;
    return best;
}

} // namespace core
} // namespace pascal
