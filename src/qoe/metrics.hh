/**
 * @file
 * Per-request and aggregate serving metrics.
 *
 * Converts the raw timestamps a Request accumulates during simulation
 * into the quantities the paper reports: TTFT (submission to first
 * answering token, Fig. 1(b)), TTFAT, reasoning/answering latency with
 * executed/blocked/preempted breakdowns (Fig. 4/5), QoE and SLO
 * violations (Fig. 11), blocking latency (Fig. 13), and KV transfer
 * latencies (Section V-C).
 */

#ifndef PASCAL_QOE_METRICS_HH
#define PASCAL_QOE_METRICS_HH

#include <array>
#include <string>
#include <vector>

#include "src/common/types.hh"
#include "src/qoe/slo.hh"
#include "src/workload/request.hh"

namespace pascal
{
namespace qoe
{

/** Everything the harnesses need to know about one finished request. */
struct RequestMetrics
{
    RequestId id = kNoRequest;
    std::string dataset;
    Time arrival = 0.0;
    TokenCount promptTokens = 0;
    TokenCount reasoningTokens = 0;
    TokenCount answerTokens = 0;

    bool finished = false;

    /** Terminally failed by the fault layer (failed implies
     *  !finished); why is in failReason. */
    bool failed = false;
    workload::FailReason failReason = workload::FailReason::None;

    /** Service class from the spec (Standard when classes are off). */
    workload::SloClass sloClass = workload::SloClass::Standard;

    /** The armed relative deadline expired before completion. */
    bool deadlineExpired = false;

    /** Finished as best-effort after a demote-on-expiry. */
    bool bestEffort = false;

    /** Submission to first answering token (the paper's TTFT). */
    double ttft = 0.0;
    /** Reasoning end (</think>) to first answering token. */
    double ttfat = 0.0;
    /** Submission to reasoning end (Fig. 4's reasoning latency). */
    double reasoningLatency = 0.0;
    /** Submission to completion. */
    double e2eLatency = 0.0;
    /** Arrival/transition to completion of the answering phase. */
    double answeringLatency = 0.0;
    /** Reasoning end to first answering-phase decode step (Fig. 13(c)
     *  "blocking latency"). */
    double blockingLatency = 0.0;
    /** Arrival to the first time any work ran for the request. */
    double queueingDelay = 0.0;
    /** Mean seconds per answering token after the first. */
    double meanTpot = 0.0;

    workload::PhaseBuckets reasoningBuckets;
    workload::PhaseBuckets answeringBuckets;

    double qoe = 1.0;
    bool sloViolated = false;

    int migrationCount = 0;
    std::vector<double> kvTransferLatencies;
};

/**
 * Score one simulated request against @p slo.
 *
 * When @p classes is non-null and enabled, the class's TPOT/TTFAT
 * targets (Batch's for best-effort requests) replace the global ones
 * for QoE scoring; every other SloConfig knob still comes from
 * @p slo.
 *
 * @pre The request finished (metrics of unfinished requests have
 *      finished == false and only the fields known so far).
 */
RequestMetrics computeRequestMetrics(
    const workload::Request& req, const SloConfig& slo,
    const SloClassConfig* classes = nullptr);

/** Cluster-level rollup of a run. */
struct AggregateMetrics
{
    std::size_t numRequests = 0;
    std::size_t numFinished = 0;
    double makespan = 0.0;           //!< First arrival to last finish.
    double throughputTokensPerSec = 0.0;
    double meanTtft = 0.0;
    double p50Ttft = 0.0;
    double p99Ttft = 0.0;
    double maxTtft = 0.0;
    double meanQoe = 0.0;
    double sloViolationRate = 0.0;   //!< Fraction of finished requests.
    double meanE2eLatency = 0.0;
    double p50E2eLatency = 0.0;
    double p99E2eLatency = 0.0;
    /** Mean answering-phase latency over finished requests (the
     *  speculative schedulers' headline metric). */
    double meanAnsweringLatency = 0.0;
    double p99BlockingLatency = 0.0;
    double p99KvTransferLatency = 0.0;
    int totalMigrations = 0;
};

/** Roll up a set of per-request metrics. */
AggregateMetrics aggregateMetrics(
    const std::vector<RequestMetrics>& requests);

/** Per-class rollup (subset of AggregateMetrics that is meaningful
 *  per tenant class). Latency stats cover finished requests only. */
struct ClassAggregate
{
    std::size_t numRequests = 0;
    std::size_t numFinished = 0;
    double meanTtft = 0.0;
    double p50Ttft = 0.0;
    double p99Ttft = 0.0;
    double meanE2eLatency = 0.0;
    double meanQoe = 0.0;
    double sloViolationRate = 0.0;
};

/** Roll up @p requests per SLO class (demoted best-effort requests
 *  count against their nominal class). */
std::array<ClassAggregate, workload::kNumSloClasses>
aggregateByClass(const std::vector<RequestMetrics>& requests);

} // namespace qoe
} // namespace pascal

#endif // PASCAL_QOE_METRICS_HH
