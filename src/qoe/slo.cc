#include "src/qoe/slo.hh"

#include "src/common/log.hh"

namespace pascal
{
namespace qoe
{

void
SloConfig::validate() const
{
    if (tpotTarget <= 0.0)
        fatal("SloConfig: tpotTarget must be positive");
    if (ttfatTarget < 0.0)
        fatal("SloConfig: ttfatTarget must be non-negative");
    if (qoeThreshold < 0.0 || qoeThreshold > 1.0)
        fatal("SloConfig: qoeThreshold must be in [0,1]");
}

void
SloClassConfig::validate() const
{
    for (const auto& p : classes) {
        if (p.tpotTarget <= 0.0)
            fatal("SloClassConfig: tpotTarget must be positive");
        if (p.ttfatTarget < 0.0)
            fatal("SloClassConfig: ttfatTarget must be non-negative");
        if (p.ttftTarget < 0.0)
            fatal("SloClassConfig: ttftTarget must be non-negative");
        if (p.shedUpFloor < 0.0 || p.shedUpFloor > 1.0)
            fatal("SloClassConfig: shedUpFloor must be in [0,1]");
        if (p.shedKvFloor < 0.0 || p.shedKvFloor > 1.0)
            fatal("SloClassConfig: shedKvFloor must be in [0,1]");
    }
}

} // namespace qoe
} // namespace pascal
