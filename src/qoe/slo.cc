#include "src/qoe/slo.hh"

#include "src/common/log.hh"

namespace pascal
{
namespace qoe
{

void
SloConfig::validate() const
{
    if (tpotTarget <= 0.0)
        fatal("SloConfig: tpotTarget must be positive");
    if (ttfatTarget < 0.0)
        fatal("SloConfig: ttfatTarget must be non-negative");
    if (qoeThreshold < 0.0 || qoeThreshold > 1.0)
        fatal("SloConfig: qoeThreshold must be in [0,1]");
}

} // namespace qoe
} // namespace pascal
