#include "src/qoe/qoe.hh"

#include <algorithm>

#include "src/common/log.hh"

namespace pascal
{
namespace qoe
{

QoeCurves
buildQoeCurves(const std::vector<Time>& emit_times, Time expected_start,
               Time tpot)
{
    if (tpot <= 0.0)
        fatal("computeQoe: tpot must be positive");

    QoeCurves curves;
    curves.generated = emit_times;
    std::size_t n = emit_times.size();
    if (n == 0)
        return curves;

    curves.expected.resize(n);
    curves.digested.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        if (k > 0 && emit_times[k] < emit_times[k - 1])
            fatal("computeQoe: emission times must be non-decreasing");
        curves.expected[k] =
            expected_start + static_cast<double>(k) * tpot;
        Time earliest = (k == 0) ? expected_start
                                 : curves.digested[k - 1] + tpot;
        curves.digested[k] = std::max(emit_times[k], earliest);
    }

    // Area ratio over [expected_start, horizon]. Each token k
    // contributes (horizon - digest_k) to the digested area and
    // (horizon - expected_k) to the expected area; digest_k >=
    // expected_k guarantees the ratio lands in [0, 1].
    Time horizon = std::max(curves.digested.back(),
                            curves.expected.back());
    double digested_area = 0.0;
    double expected_area = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        digested_area += horizon - curves.digested[k];
        expected_area += horizon - curves.expected[k];
    }

    curves.qoe = expected_area <= 0.0
                     ? 1.0
                     : std::clamp(digested_area / expected_area, 0.0, 1.0);
    return curves;
}

double
computeQoe(const std::vector<Time>& emit_times, Time expected_start,
           Time tpot)
{
    return buildQoeCurves(emit_times, expected_start, tpot).qoe;
}

} // namespace qoe
} // namespace pascal
