#include "src/qoe/qoe.hh"

#include <algorithm>

#include "src/common/log.hh"

namespace pascal
{
namespace qoe
{

QoeCurves
buildQoeCurves(const std::vector<Time>& emit_times, Time expected_start,
               Time tpot)
{
    if (tpot <= 0.0)
        fatal("computeQoe: tpot must be positive");

    QoeCurves curves;
    curves.generated = emit_times;
    std::size_t n = emit_times.size();
    if (n == 0)
        return curves;

    curves.expected.resize(n);
    curves.digested.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        if (k > 0 && emit_times[k] < emit_times[k - 1])
            fatal("computeQoe: emission times must be non-decreasing");
        curves.expected[k] =
            expected_start + static_cast<double>(k) * tpot;
        Time earliest = (k == 0) ? expected_start
                                 : curves.digested[k - 1] + tpot;
        curves.digested[k] = std::max(emit_times[k], earliest);
    }

    // Area ratio over [expected_start, horizon]. Each token k
    // contributes (horizon - digest_k) to the digested area and
    // (horizon - expected_k) to the expected area; digest_k >=
    // expected_k guarantees the ratio lands in [0, 1].
    Time horizon = std::max(curves.digested.back(),
                            curves.expected.back());
    double digested_area = 0.0;
    double expected_area = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        digested_area += horizon - curves.digested[k];
        expected_area += horizon - curves.expected[k];
    }

    curves.qoe = expected_area <= 0.0
                     ? 1.0
                     : std::clamp(digested_area / expected_area, 0.0, 1.0);
    return curves;
}

double
computeQoe(const std::vector<Time>& emit_times, Time expected_start,
           Time tpot)
{
    // Scalar twin of buildQoeCurves: scoring a million-request run
    // calls this once per request, and materializing the three Fig. 3
    // curve vectors per call dominated the scoring pass. The digested
    // recursion only ever needs its previous value, so two allocation-
    // free passes (one for the horizon, one for the areas, with the
    // identical expressions in the identical order) produce the exact
    // same double as the curve-building path — pinned by the qoe
    // equivalence tests.
    if (tpot <= 0.0)
        fatal("computeQoe: tpot must be positive");
    std::size_t n = emit_times.size();
    if (n == 0)
        return 1.0;

    Time digested = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        if (k > 0 && emit_times[k] < emit_times[k - 1])
            fatal("computeQoe: emission times must be non-decreasing");
        Time earliest = (k == 0) ? expected_start : digested + tpot;
        digested = std::max(emit_times[k], earliest);
    }
    Time horizon = std::max(
        digested,
        expected_start + static_cast<double>(n - 1) * tpot);

    double digested_area = 0.0;
    double expected_area = 0.0;
    digested = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        Time earliest = (k == 0) ? expected_start : digested + tpot;
        digested = std::max(emit_times[k], earliest);
        digested_area += horizon - digested;
        expected_area +=
            horizon - (expected_start + static_cast<double>(k) * tpot);
    }
    return expected_area <= 0.0
               ? 1.0
               : std::clamp(digested_area / expected_area, 0.0, 1.0);
}

} // namespace qoe
} // namespace pascal
