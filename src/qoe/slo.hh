/**
 * @file
 * Service-level-objective configuration.
 *
 * Two modes mirror the paper:
 *  - Characterization (Section III / Fig. 5): the answering phase must
 *    start within the TTFAT target (0.25 s) of reasoning completion and
 *    then sustain the TPOT target (100 ms/token); QoE is measured
 *    against an expected curve anchored at reasoningEnd + ttfatTarget.
 *  - Main evaluation (Section V-A): reasoning lengths are too variable
 *    for a fixed TTFT target, so QoE is computed from TPOT starting at
 *    the first answering token and TTFT is reported separately.
 */

#ifndef PASCAL_QOE_SLO_HH
#define PASCAL_QOE_SLO_HH

#include <array>

#include "src/common/types.hh"
#include "src/workload/slo_class.hh"

namespace pascal
{
namespace qoe
{

/** SLO targets used for both online decisions and offline scoring. */
struct SloConfig
{
    /** Target steady-state seconds per answering token (100 ms,
     *  aligned with human reading speed; Section III footnote). */
    Time tpotTarget = 0.100;

    /** Target latency from reasoning completion to the first
     *  answering token (0.25 s, following DistServe). */
    Time ttfatTarget = 0.25;

    /** A request violates its SLO when QoE falls below this. */
    double qoeThreshold = 0.95;

    /**
     * True (main evaluation): the expected-consumption curve starts at
     * the first answering token. False (Fig. 5 characterization): it
     * starts at reasoningEnd + ttfatTarget, so a late first token
     * already costs QoE.
     */
    bool qoeFromFirstToken = true;

    /**
     * Early-warning margin for the instance monitor's t_i condition
     * (Section IV-B: "the token pacer reports insufficient remaining
     * tokens"): an answering request is considered at risk when its
     * pacer buffer holds fewer than this many tokens ahead of the
     * user's pace. Affects placement decisions only, never QoE
     * scoring. 0 flags a request only once it is already behind
     * (empirically the more stable setting: larger margins flag whole
     * clusters at once and trigger migration churn).
     */
    TokenCount monitorBufferMarginTokens = 0;

    /** Validate; calls fatal() on nonsense values. */
    void validate() const;
};

/**
 * Per-class SLO targets and overload-control knobs (ROADMAP item 4).
 *
 * tpot/ttfat override the global SloConfig targets for online
 * decisions (the instance SLO monitor) and offline scoring when the
 * class subsystem is enabled; ttft is an admission-time reference
 * only. The shed floors and the relative deadline implement the
 * degradation order: Batch is shed/expired first, Interactive last.
 */
struct SloClassParams
{
    /** Informational TTFT target (reports; not enforced online). */
    Time ttftTarget = 1.0;

    /** Class TPOT target (replaces SloConfig::tpotTarget). */
    Time tpotTarget = 0.100;

    /** Class TTFAT target (replaces SloConfig::ttfatTarget). */
    Time ttfatTarget = 0.25;

    /**
     * Relative deadline in seconds from arrival: an admitted request
     * still unfinished this long after arrival either terminally
     * fails with FailReason::DeadlineExceeded or (demoteOnExpiry) is
     * demoted to best-effort. <= 0 disables the deadline.
     */
    Time relativeDeadline = 0.0;

    /** On deadline expiry, demote to best-effort (scheduled behind
     *  every class, scored against Batch targets) instead of failing
     *  terminally. */
    bool demoteOnExpiry = false;

    /**
     * Class admission floor on the fraction of up instances: while
     * fewer are up, new arrivals of this class are shed. Composes
     * with FaultConfig::shedFloor (which sheds every class); setting
     * it higher for Batch sheds Batch before Standard before
     * Interactive as crashes erode capacity. 0 disables.
     */
    double shedUpFloor = 0.0;

    /** Class admission floor on the cluster-wide free GPU KV
     *  fraction: below it, new arrivals of this class are shed.
     *  0 disables. */
    double shedKvFloor = 0.0;
};

/**
 * The class subsystem's master config, carried in SystemConfig.
 *
 * With `enabled == false` (the default) every class code path is
 * dormant — no deadline events are armed, no class sheds happen,
 * every schedClassRank stays 0 — and runs are byte-identical to a
 * build without the subsystem, exactly like FaultConfig.
 */
struct SloClassConfig
{
    /** Master switch; false leaves the whole layer dormant. */
    bool enabled = false;

    /** Arm per-request deadline events and enforce expiry. Off gives
     *  a classes-on/deadlines-off baseline for benches. */
    bool enforceDeadlines = true;

    /** Apply the per-class admission floors and the negative-slack
     *  shed. Off gives a classes-on/shed-off baseline. */
    bool overloadControl = true;

    /**
     * Shed an arrival whose predicted minimal service time (a perf
     * lower bound assuming a dedicated instance) already exceeds its
     * class deadline — it cannot possibly meet it, so admitting it
     * only steals capacity from feasible work.
     */
    bool shedOnNegativeSlack = true;

    /** Per-class knobs, indexed by workload::SloClass. */
    std::array<SloClassParams, workload::kNumSloClasses> classes = {{
        // Interactive: tight targets, short deadline, never shed by
        // class floors (only the global fault floor sheds it), fails
        // hard on expiry.
        {0.5, 0.050, 0.25, 60.0, false, 0.0, 0.0},
        // Standard: the global defaults, generous deadline, shed once
        // fewer than half the instances are up or GPU KV is nearly
        // exhausted.
        {1.0, 0.100, 0.25, 300.0, false, 0.5, 0.10},
        // Batch: loose targets, no deadline pressure (expiry demotes
        // to best-effort), shed first as capacity degrades.
        {5.0, 0.200, 1.00, 0.0, true, 0.75, 0.25},
    }};

    const SloClassParams&
    of(workload::SloClass c) const
    {
        return classes[workload::sloClassIndex(c)];
    }

    /**
     * Effective params for a live request: a best-effort (demoted)
     * request is scored and paced against Batch targets regardless of
     * its nominal class.
     */
    const SloClassParams&
    effective(workload::SloClass c, bool best_effort) const
    {
        return best_effort ? of(workload::SloClass::Batch) : of(c);
    }

    /** Validate; calls fatal() on nonsense values. */
    void validate() const;
};

} // namespace qoe
} // namespace pascal

#endif // PASCAL_QOE_SLO_HH
