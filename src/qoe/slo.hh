/**
 * @file
 * Service-level-objective configuration.
 *
 * Two modes mirror the paper:
 *  - Characterization (Section III / Fig. 5): the answering phase must
 *    start within the TTFAT target (0.25 s) of reasoning completion and
 *    then sustain the TPOT target (100 ms/token); QoE is measured
 *    against an expected curve anchored at reasoningEnd + ttfatTarget.
 *  - Main evaluation (Section V-A): reasoning lengths are too variable
 *    for a fixed TTFT target, so QoE is computed from TPOT starting at
 *    the first answering token and TTFT is reported separately.
 */

#ifndef PASCAL_QOE_SLO_HH
#define PASCAL_QOE_SLO_HH

#include "src/common/types.hh"

namespace pascal
{
namespace qoe
{

/** SLO targets used for both online decisions and offline scoring. */
struct SloConfig
{
    /** Target steady-state seconds per answering token (100 ms,
     *  aligned with human reading speed; Section III footnote). */
    Time tpotTarget = 0.100;

    /** Target latency from reasoning completion to the first
     *  answering token (0.25 s, following DistServe). */
    Time ttfatTarget = 0.25;

    /** A request violates its SLO when QoE falls below this. */
    double qoeThreshold = 0.95;

    /**
     * True (main evaluation): the expected-consumption curve starts at
     * the first answering token. False (Fig. 5 characterization): it
     * starts at reasoningEnd + ttfatTarget, so a late first token
     * already costs QoE.
     */
    bool qoeFromFirstToken = true;

    /**
     * Early-warning margin for the instance monitor's t_i condition
     * (Section IV-B: "the token pacer reports insufficient remaining
     * tokens"): an answering request is considered at risk when its
     * pacer buffer holds fewer than this many tokens ahead of the
     * user's pace. Affects placement decisions only, never QoE
     * scoring. 0 flags a request only once it is already behind
     * (empirically the more stable setting: larger margins flag whole
     * clusters at once and trigger migration churn).
     */
    TokenCount monitorBufferMarginTokens = 0;

    /** Validate; calls fatal() on nonsense values. */
    void validate() const;
};

} // namespace qoe
} // namespace pascal

#endif // PASCAL_QOE_SLO_HH
