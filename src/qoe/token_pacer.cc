#include "src/qoe/token_pacer.hh"

#include <algorithm>

#include "src/common/log.hh"

namespace pascal
{
namespace qoe
{

TokenPacer::TokenPacer(Time pace, Time release_start)
    : pace(pace), releaseStart(release_start)
{
    if (pace <= 0.0)
        fatal("TokenPacer: pace must be positive");
}

void
TokenPacer::onTokenGenerated(Time t)
{
    if (!generateTimes.empty() && t < generateTimes.back())
        panic("TokenPacer: non-monotonic generation time");
    generateTimes.push_back(t);

    // A token is released as soon as it exists, but never faster than
    // one per pace interval and never before releaseStart.
    Time earliest = releases.empty() ? releaseStart
                                     : releases.back() + pace;
    releases.push_back(std::max(t, earliest));
}

Time
TokenPacer::releaseTime(std::size_t k) const
{
    if (k >= releases.size())
        panic("TokenPacer: release index out of range");
    return releases[k];
}

std::size_t
TokenPacer::releasedBy(Time t) const
{
    return std::upper_bound(releases.begin(), releases.end(), t) -
           releases.begin();
}

std::size_t
TokenPacer::bufferedAt(Time t) const
{
    std::size_t generated =
        std::upper_bound(generateTimes.begin(), generateTimes.end(), t) -
        generateTimes.begin();
    return generated - releasedBy(t);
}

bool
TokenPacer::starvedAt(Time t) const
{
    std::size_t released = releasedBy(t);
    if (released >= generateTimes.size()) {
        // Everything generated so far is consumed; the user starves if
        // the pace expects the next token already.
        Time next_expected = releases.empty()
                                 ? releaseStart
                                 : releases.back() + pace;
        return t >= next_expected;
    }
    return false;
}

} // namespace qoe
} // namespace pascal
