/**
 * @file
 * Quality-of-Experience metric (Fig. 3, following Andes).
 *
 * QoE is the ratio between the area under the user-digested token
 * curve and the area under the user-expected token curve. The expected
 * curve rises one token per tpot starting at expected_start; the
 * digested curve is the pacer release schedule. A request served at or
 * ahead of pace scores exactly 1; pauses that drain the pacer buffer
 * push digestion behind schedule and lower the score.
 */

#ifndef PASCAL_QOE_QOE_HH
#define PASCAL_QOE_QOE_HH

#include <vector>

#include "src/common/types.hh"

namespace pascal
{
namespace qoe
{

/**
 * Compute QoE in [0, 1] from token generation times.
 *
 * @param emit_times Generation time of each user-visible token,
 *        non-decreasing.
 * @param expected_start Time the user expects digestion to begin
 *        (first answering token time in the main evaluation;
 *        reasoningEnd + ttfatTarget in the Fig. 5 characterization).
 * @param tpot Expected seconds between digested tokens.
 * @return 1.0 for perfect alignment (also for empty input: no tokens,
 *         no expectation); lower when digestion lags expectation.
 */
double computeQoe(const std::vector<Time>& emit_times,
                  Time expected_start, Time tpot);

/**
 * The three curves of Fig. 3, sampled at each token index: expected
 * digestion time, actual digestion (pacer release) time, and raw
 * generation time. Used by the Fig. 3 bench to print the scenario.
 */
struct QoeCurves
{
    std::vector<Time> expected;  //!< expected_start + k * tpot.
    std::vector<Time> digested;  //!< Pacer release schedule.
    std::vector<Time> generated; //!< Raw emission times.
    double qoe = 1.0;
};

/** Build the Fig. 3 curves for a given emission timeline. */
QoeCurves buildQoeCurves(const std::vector<Time>& emit_times,
                         Time expected_start, Time tpot);

} // namespace qoe
} // namespace pascal

#endif // PASCAL_QOE_QOE_HH
