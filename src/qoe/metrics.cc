#include "src/qoe/metrics.hh"

#include <algorithm>

#include "src/common/stats.hh"
#include "src/qoe/qoe.hh"

namespace pascal
{
namespace qoe
{

RequestMetrics
computeRequestMetrics(const workload::Request& req, const SloConfig& slo,
                      const SloClassConfig* classes)
{
    slo.validate();

    // Per-class targets override the global ones when the class
    // subsystem is on; everything else (threshold, anchoring mode)
    // stays global.
    Time tpot_target = slo.tpotTarget;
    Time ttfat_target = slo.ttfatTarget;
    if (classes != nullptr && classes->enabled) {
        const SloClassParams& p =
            classes->effective(req.spec().sloClass, req.bestEffort);
        tpot_target = p.tpotTarget;
        ttfat_target = p.ttfatTarget;
    }

    const auto& spec = req.spec();
    RequestMetrics m;
    m.id = spec.id;
    m.dataset = spec.dataset;
    m.arrival = spec.arrival;
    m.promptTokens = spec.promptTokens;
    m.reasoningTokens = spec.reasoningTokens;
    m.answerTokens = spec.answerTokens;
    m.reasoningBuckets = req.reasoningBuckets;
    m.answeringBuckets = req.answeringBuckets;
    m.migrationCount = req.migrationCount;
    m.kvTransferLatencies = req.kvTransferLatencies;
    m.finished = req.finished();
    m.failReason = req.failReason;
    m.failed = m.failReason != workload::FailReason::None;
    m.sloClass = spec.sloClass;
    m.deadlineExpired = req.deadlineExpired;
    m.bestEffort = req.bestEffort;

    if (req.reasoningEnd >= 0.0)
        m.reasoningLatency = req.reasoningEnd - spec.arrival;
    if (req.firstAnswer >= 0.0) {
        m.ttft = req.firstAnswer - spec.arrival;
        m.ttfat = req.firstAnswer - req.reasoningEnd;
    }
    if (req.firstAnswerScheduled >= 0.0 && req.reasoningEnd >= 0.0)
        m.blockingLatency = req.firstAnswerScheduled - req.reasoningEnd;
    if (req.firstScheduled >= 0.0)
        m.queueingDelay = req.firstScheduled - spec.arrival;

    if (!m.finished)
        return m;

    m.e2eLatency = req.finish - spec.arrival;
    m.answeringLatency = req.finish - req.reasoningEnd;

    const auto& emits = req.answerEmitTimes;
    if (emits.size() > 1) {
        m.meanTpot = (emits.back() - emits.front()) /
                     static_cast<double>(emits.size() - 1);
    }

    Time expected_start = slo.qoeFromFirstToken
                              ? req.firstAnswer
                              : req.reasoningEnd + ttfat_target;
    m.qoe = computeQoe(emits, expected_start, tpot_target);
    m.sloViolated = m.qoe < slo.qoeThreshold;
    return m;
}

AggregateMetrics
aggregateMetrics(const std::vector<RequestMetrics>& requests)
{
    AggregateMetrics agg;
    agg.numRequests = requests.size();
    if (requests.empty())
        return agg;

    // Single pass: every mean/count/extremum streams through a
    // Welford Summary, and the sample vectors that percentiles
    // genuinely need are filled exactly once (reserved up front) and
    // sorted exactly once each — a million-request run no longer
    // copies and re-sorts the same latencies once per quantile.
    std::vector<double> ttfts, e2es, blockings, transfers;
    ttfts.reserve(requests.size());
    e2es.reserve(requests.size());
    blockings.reserve(requests.size());
    stats::Summary ttft_sum;
    stats::Summary e2e_sum;
    stats::Summary qoe_sum;
    stats::Summary answering_sum;
    Time first_arrival = kTimeInfinity;
    Time last_finish = 0.0;
    TokenCount total_tokens = 0;
    std::size_t violations = 0;

    for (const auto& m : requests) {
        first_arrival = std::min(first_arrival, m.arrival);
        if (!m.finished)
            continue;
        ++agg.numFinished;
        ttft_sum.add(m.ttft);
        ttfts.push_back(m.ttft);
        e2e_sum.add(m.e2eLatency);
        e2es.push_back(m.e2eLatency);
        answering_sum.add(m.answeringLatency);
        blockings.push_back(m.blockingLatency);
        for (double t : m.kvTransferLatencies)
            transfers.push_back(t);
        qoe_sum.add(m.qoe);
        if (m.sloViolated)
            ++violations;
        last_finish = std::max(last_finish, m.arrival + m.e2eLatency);
        total_tokens += m.reasoningTokens + m.answerTokens;
        agg.totalMigrations += m.migrationCount;
    }

    if (agg.numFinished == 0)
        return agg;

    agg.makespan = last_finish - first_arrival;
    if (agg.makespan > 0.0) {
        agg.throughputTokensPerSec =
            static_cast<double>(total_tokens) / agg.makespan;
    }

    std::sort(ttfts.begin(), ttfts.end());
    agg.meanTtft = ttft_sum.mean();
    agg.maxTtft = ttft_sum.max();
    agg.p50Ttft = stats::percentileOfSorted(ttfts, 50.0);
    agg.p99Ttft = stats::percentileOfSorted(ttfts, 99.0);

    std::sort(e2es.begin(), e2es.end());
    agg.meanE2eLatency = e2e_sum.mean();
    agg.p50E2eLatency = stats::percentileOfSorted(e2es, 50.0);
    agg.p99E2eLatency = stats::percentileOfSorted(e2es, 99.0);
    agg.meanAnsweringLatency = answering_sum.mean();

    std::sort(blockings.begin(), blockings.end());
    agg.p99BlockingLatency =
        stats::percentileOfSorted(blockings, 99.0);
    std::sort(transfers.begin(), transfers.end());
    agg.p99KvTransferLatency =
        stats::percentileOfSorted(transfers, 99.0);

    agg.meanQoe = qoe_sum.mean();
    agg.sloViolationRate = static_cast<double>(violations) /
                           static_cast<double>(agg.numFinished);
    return agg;
}

std::array<ClassAggregate, workload::kNumSloClasses>
aggregateByClass(const std::vector<RequestMetrics>& requests)
{
    std::array<ClassAggregate, workload::kNumSloClasses> out{};
    std::array<std::vector<double>, workload::kNumSloClasses> ttfts;
    std::array<stats::Summary, workload::kNumSloClasses> ttft_sums;
    std::array<stats::Summary, workload::kNumSloClasses> e2e_sums;
    std::array<stats::Summary, workload::kNumSloClasses> qoe_sums;
    std::array<std::size_t, workload::kNumSloClasses> violations{};

    for (const auto& m : requests) {
        std::size_t i = workload::sloClassIndex(m.sloClass);
        ++out[i].numRequests;
        if (!m.finished)
            continue;
        ++out[i].numFinished;
        ttft_sums[i].add(m.ttft);
        ttfts[i].push_back(m.ttft);
        e2e_sums[i].add(m.e2eLatency);
        qoe_sums[i].add(m.qoe);
        if (m.sloViolated)
            ++violations[i];
    }

    for (std::size_t i = 0; i < workload::kNumSloClasses; ++i) {
        if (out[i].numFinished == 0)
            continue;
        std::sort(ttfts[i].begin(), ttfts[i].end());
        out[i].meanTtft = ttft_sums[i].mean();
        out[i].p50Ttft = stats::percentileOfSorted(ttfts[i], 50.0);
        out[i].p99Ttft = stats::percentileOfSorted(ttfts[i], 99.0);
        out[i].meanE2eLatency = e2e_sums[i].mean();
        out[i].meanQoe = qoe_sums[i].mean();
        out[i].sloViolationRate =
            static_cast<double>(violations[i]) /
            static_cast<double>(out[i].numFinished);
    }
    return out;
}

} // namespace qoe
} // namespace pascal
