/**
 * @file
 * Token pacer (Section II-C, following Andes).
 *
 * The pacer buffers tokens generated in bursts and releases them to the
 * user at the target reading pace, so that preemption gaps are hidden
 * as long as the buffer holds out. The user-digested curve of Fig. 3 is
 * exactly the release schedule: the user consumes a released token
 * immediately (release never outpaces the expected reading rate).
 */

#ifndef PASCAL_QOE_TOKEN_PACER_HH
#define PASCAL_QOE_TOKEN_PACER_HH

#include <cstddef>
#include <vector>

#include "src/common/types.hh"

namespace pascal
{
namespace qoe
{

/** Online token-release smoother for one request. */
class TokenPacer
{
  public:
    /**
     * @param pace Seconds between releases (the TPOT target).
     * @param release_start Releases never happen before this time
     *        (used by Fig. 5 scoring: reasoningEnd + ttfatTarget).
     *        Pass 0 to release from the first generation onwards.
     */
    explicit TokenPacer(Time pace, Time release_start = 0.0);

    /**
     * Record that one token was generated at @p t. Times must be
     * non-decreasing.
     */
    void onTokenGenerated(Time t);

    /** Number of tokens generated so far. */
    std::size_t generatedCount() const { return generateTimes.size(); }

    /** Release (user-digestion) time of token @p k (0-based). */
    Time releaseTime(std::size_t k) const;

    /** All release times. */
    const std::vector<Time>& releaseTimes() const { return releases; }

    /** Tokens released (digested) by time @p t. */
    std::size_t releasedBy(Time t) const;

    /** Tokens generated but not yet released at @p t. */
    std::size_t bufferedAt(Time t) const;

    /**
     * True if the user is starved at @p t: the pace calls for another
     * token but none has been generated yet.
     */
    bool starvedAt(Time t) const;

  private:
    Time pace;
    Time releaseStart;
    std::vector<Time> generateTimes;
    std::vector<Time> releases;
};

} // namespace qoe
} // namespace pascal

#endif // PASCAL_QOE_TOKEN_PACER_HH
