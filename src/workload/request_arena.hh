/**
 * @file
 * RequestArena: contiguous ownership of a run's Request objects.
 *
 * A simulated run materializes one mutable Request per trace spec. The
 * original per-request unique_ptr heap nodes made every grid point of
 * a sweep pay one allocation (plus pointer-chasing cache misses) per
 * request — the dominant setup cost on million-request grids. The
 * arena instead constructs each submitted trace's Requests in a single
 * contiguous chunk sized up front, so submission is one allocation per
 * trace and every metrics pass walks memory linearly.
 *
 * Pointer stability: each chunk is reserved to its final size before
 * any Request is constructed and never grows afterwards, so raw
 * Request* handed to instances/schedulers stay valid for the arena's
 * lifetime (chunks are only destroyed with the arena).
 */

#ifndef PASCAL_WORKLOAD_REQUEST_ARENA_HH
#define PASCAL_WORKLOAD_REQUEST_ARENA_HH

#include <cstddef>
#include <vector>

#include "src/workload/request.hh"
#include "src/workload/trace.hh"

namespace pascal
{
namespace workload
{

/** Chunked contiguous Request storage (see file comment). */
class RequestArena
{
  public:
    /**
     * Construct one Request per spec of @p trace in a fresh
     * contiguous chunk. @return The chunk, for arrival-event wiring;
     * element pointers are stable for the arena's lifetime.
     */
    std::vector<Request>&
    addChunk(const Trace& trace)
    {
        chunks.emplace_back();
        std::vector<Request>& chunk = chunks.back();
        chunk.reserve(trace.size());
        for (const auto& spec : trace.requests)
            chunk.emplace_back(spec);
        total += chunk.size();
        return chunk;
    }

    /** Total requests across all chunks. */
    std::size_t size() const { return total; }

    /** Number of submitted traces. */
    std::size_t numChunks() const { return chunks.size(); }

    /** Visit every request in submission order. */
    template <typename Fn>
    void
    forEach(Fn&& fn)
    {
        for (auto& chunk : chunks) {
            for (auto& req : chunk)
                fn(req);
        }
    }

    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (const auto& chunk : chunks) {
            for (const auto& req : chunk)
                fn(req);
        }
    }

  private:
    std::vector<std::vector<Request>> chunks;
    std::size_t total = 0;
};

} // namespace workload
} // namespace pascal

#endif // PASCAL_WORKLOAD_REQUEST_ARENA_HH
