/**
 * @file
 * RequestArena: contiguous ownership of a run's Request objects.
 *
 * A simulated run materializes one mutable Request per trace spec. The
 * original per-request unique_ptr heap nodes made every grid point of
 * a sweep pay one allocation (plus pointer-chasing cache misses) per
 * request — the dominant setup cost on million-request grids. The
 * arena instead constructs each submitted trace's Requests in a single
 * contiguous chunk sized up front, so submission is one allocation per
 * trace and every metrics pass walks memory linearly.
 *
 * Pointer stability: each chunk is reserved to its final size before
 * any Request is constructed and never grows afterwards, so raw
 * Request* handed to instances/schedulers stay valid for the arena's
 * lifetime (chunks are only destroyed with the arena, or explicitly
 * recycled once the owner proves every request in them is finished
 * and will never be dereferenced again).
 *
 * Recycling: a long-lived cluster that ingests thousands of traces
 * would otherwise hold every Request (and its per-token emission
 * vector) until teardown. recycleChunk() frees a fully-finished
 * chunk's storage so resident memory stays bounded by *live*
 * requests; the owner is responsible for harvesting anything it still
 * needs (the Cluster scores a chunk into compact RequestMetrics rows
 * first).
 */

#ifndef PASCAL_WORKLOAD_REQUEST_ARENA_HH
#define PASCAL_WORKLOAD_REQUEST_ARENA_HH

#include <cstddef>
#include <vector>

#include "src/workload/request.hh"
#include "src/workload/trace.hh"

namespace pascal
{
namespace workload
{

/** Chunked contiguous Request storage (see file comment). */
class RequestArena
{
  public:
    /**
     * Construct one Request per spec of @p trace in a fresh
     * contiguous chunk. @return The chunk, for arrival-event wiring;
     * element pointers are stable for the arena's lifetime.
     */
    std::vector<Request>&
    addChunk(const Trace& trace)
    {
        chunks.emplace_back();
        std::vector<Request>& chunk = chunks.back();
        chunk.reserve(trace.size());
        for (const auto& spec : trace.requests)
            chunk.emplace_back(spec);
        total += chunk.size();
        return chunk;
    }

    /** Total requests across all chunks (recycled ones included). */
    std::size_t size() const { return total; }

    /** Number of submitted traces. */
    std::size_t numChunks() const { return chunks.size(); }

    /** Requests of chunk @p idx (empty once recycled). */
    const std::vector<Request>&
    chunk(std::size_t idx) const
    {
        return chunks[idx];
    }

    std::vector<Request>&
    chunk(std::size_t idx)
    {
        return chunks[idx];
    }

    /**
     * Free chunk @p idx's storage (all its Requests are destroyed).
     * The caller must guarantee no pointer into the chunk is ever
     * dereferenced again. Idempotent.
     */
    void
    recycleChunk(std::size_t idx)
    {
        if (chunks[idx].empty())
            return;
        // swap-with-empty actually releases the capacity (clear()
        // would keep it).
        std::vector<Request>().swap(chunks[idx]);
        ++recycled;
    }

    /** Chunks released by recycleChunk() (memory-bounding stat). */
    std::size_t numRecycledChunks() const { return recycled; }

    /** Visit every request in submission order. */
    template <typename Fn>
    void
    forEach(Fn&& fn)
    {
        for (auto& chunk : chunks) {
            for (auto& req : chunk)
                fn(req);
        }
    }

    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (const auto& chunk : chunks) {
            for (const auto& req : chunk)
                fn(req);
        }
    }

  private:
    std::vector<std::vector<Request>> chunks;
    std::size_t total = 0;
    std::size_t recycled = 0;
};

} // namespace workload
} // namespace pascal

#endif // PASCAL_WORKLOAD_REQUEST_ARENA_HH
