#include "src/workload/generator.hh"

#include <numeric>

#include "src/common/log.hh"

namespace pascal
{
namespace workload
{

namespace
{

/** Draw the next Poisson arrival time. */
Time
nextArrival(Time now, double rate, Rng& rng)
{
    return now + rng.exponential(rate);
}

void
checkArgs(int n, double rate)
{
    if (n < 0)
        fatal("trace generator: negative request count");
    if (rate <= 0.0)
        fatal("trace generator: arrival rate must be positive");
}

} // namespace

Trace
generateTrace(const DatasetProfile& profile, int n, double rate_per_sec,
              Rng& rng, Time start_time, RequestId first_id)
{
    checkArgs(n, rate_per_sec);
    profile.validate();

    Trace trace;
    trace.requests.reserve(n);
    Time t = start_time;
    for (int i = 0; i < n; ++i) {
        t = nextArrival(t, rate_per_sec, rng);
        RequestSpec s;
        s.id = first_id + i;
        s.arrival = t;
        s.promptTokens = profile.prompt.sample(rng);
        s.reasoningTokens = profile.reasoning.sample(rng);
        s.answerTokens = profile.answering.sample(rng);
        s.dataset = profile.name;
        trace.requests.push_back(std::move(s));
    }
    trace.provenance.generated = true;
    trace.provenance.profile = profile.name;
    trace.provenance.n = n;
    trace.provenance.ratePerSec = rate_per_sec;
    trace.validate();
    return trace;
}

Trace
generateMixedTrace(const std::vector<MixComponent>& components, int n,
                   double rate_per_sec, Rng& rng, Time start_time,
                   RequestId first_id)
{
    checkArgs(n, rate_per_sec);
    if (components.empty())
        fatal("generateMixedTrace: no components");

    double total_weight = 0.0;
    for (const auto& c : components) {
        c.profile.validate();
        if (c.weight < 0.0)
            fatal("generateMixedTrace: negative weight");
        total_weight += c.weight;
    }
    if (total_weight <= 0.0)
        fatal("generateMixedTrace: zero total weight");

    Trace trace;
    trace.requests.reserve(n);
    Time t = start_time;
    for (int i = 0; i < n; ++i) {
        t = nextArrival(t, rate_per_sec, rng);

        double pick = rng.uniformReal(0.0, total_weight);
        const DatasetProfile* profile = &components.back().profile;
        for (const auto& c : components) {
            if (pick < c.weight) {
                profile = &c.profile;
                break;
            }
            pick -= c.weight;
        }

        RequestSpec s;
        s.id = first_id + i;
        s.arrival = t;
        s.promptTokens = profile->prompt.sample(rng);
        s.reasoningTokens = profile->reasoning.sample(rng);
        s.answerTokens = profile->answering.sample(rng);
        s.dataset = profile->name;
        trace.requests.push_back(std::move(s));
    }
    trace.provenance.generated = true;
    trace.provenance.profile = "mixed";
    trace.provenance.n = n;
    trace.provenance.ratePerSec = rate_per_sec;
    trace.validate();
    return trace;
}

Trace
generateReasoningCharacterization(
    int n, double rate_per_sec, Rng& rng,
    const std::vector<TokenCount>& reasoning_choices)
{
    checkArgs(n, rate_per_sec);
    if (reasoning_choices.empty())
        fatal("generateReasoningCharacterization: no reasoning choices");

    Trace trace;
    trace.requests.reserve(n);
    Time t = 0.0;
    for (int i = 0; i < n; ++i) {
        t = nextArrival(t, rate_per_sec, rng);
        RequestSpec s;
        s.id = i;
        s.arrival = t;
        s.promptTokens = 128;
        s.reasoningTokens =
            reasoning_choices[rng.pickIndex(reasoning_choices.size())];
        s.answerTokens = 1;
        s.dataset = "fig4-characterization";
        trace.requests.push_back(std::move(s));
    }
    trace.validate();
    return trace;
}

Trace
generateAnsweringCharacterization(
    int n, double rate_per_sec, Rng& rng,
    const std::vector<TokenCount>& answer_choices)
{
    checkArgs(n, rate_per_sec);
    if (answer_choices.empty())
        fatal("generateAnsweringCharacterization: no answer choices");

    Trace trace;
    trace.requests.reserve(n);
    Time t = 0.0;
    for (int i = 0; i < n; ++i) {
        t = nextArrival(t, rate_per_sec, rng);
        RequestSpec s;
        s.id = i;
        s.arrival = t;
        s.promptTokens = 128; // Pre-generated prefill+reasoning KV.
        s.reasoningTokens = 0;
        s.answerTokens =
            answer_choices[rng.pickIndex(answer_choices.size())];
        s.startInAnswering = true;
        s.dataset = "fig5-characterization";
        trace.requests.push_back(std::move(s));
    }
    trace.validate();
    return trace;
}

void
SloMix::validate() const
{
    if (interactiveFraction < 0.0 || batchFraction < 0.0 ||
        interactiveFraction + batchFraction > 1.0) {
        fatal("SloMix: fractions must be non-negative and sum to "
              "<= 1");
    }
}

void
assignSloClasses(Trace& trace, const SloMix& mix)
{
    mix.validate();
    for (auto& s : trace.requests) {
        // splitmix64 of (seed ^ id): a fixed per-request coin that is
        // independent of trace order and of the workload RNG.
        std::uint64_t z =
            (mix.seed ^ static_cast<std::uint64_t>(s.id)) +
            0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        double u = static_cast<double>(z >> 11) *
                   (1.0 / 9007199254740992.0); // 2^-53
        if (u < mix.interactiveFraction)
            s.sloClass = SloClass::Interactive;
        else if (u < mix.interactiveFraction + mix.batchFraction)
            s.sloClass = SloClass::Batch;
        else
            s.sloClass = SloClass::Standard;
    }
}

} // namespace workload
} // namespace pascal
