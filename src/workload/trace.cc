#include "src/workload/trace.hh"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "src/common/log.hh"

namespace pascal
{
namespace workload
{

std::string
Trace::describe() const
{
    if (!provenance.generated)
        return std::to_string(size()) + " requests (external)";
    std::ostringstream out;
    out << provenance.profile << " n=" << provenance.n
        << " rate=" << provenance.ratePerSec;
    if (provenance.seedKnown)
        out << " seed=" << provenance.seed;
    return out.str();
}

void
Trace::sortByArrival()
{
    std::stable_sort(requests.begin(), requests.end(),
        [](const RequestSpec& a, const RequestSpec& b) {
            if (a.arrival != b.arrival)
                return a.arrival < b.arrival;
            return a.id < b.id;
        });
}

void
Trace::validate() const
{
    std::unordered_set<RequestId> seen;
    Time prev = -1.0;
    for (const auto& spec : requests) {
        spec.validate();
        if (!seen.insert(spec.id).second)
            fatal("Trace: duplicate request id " + std::to_string(spec.id));
        if (spec.arrival < prev)
            fatal("Trace: arrivals not sorted (call sortByArrival)");
        prev = spec.arrival;
    }
}

TokenCount
Trace::totalGeneratedTokens() const
{
    TokenCount total = 0;
    for (const auto& spec : requests)
        total += spec.reasoningTokens + spec.answerTokens;
    return total;
}

void
Trace::toCsv(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("Trace::toCsv: cannot open '" + path + "' for writing");
    out << "id,arrival,prompt,reasoning,answer,start_in_answering,"
           "dataset,slo_class\n";
    for (const auto& s : requests) {
        out << s.id << ',' << s.arrival << ',' << s.promptTokens << ','
            << s.reasoningTokens << ',' << s.answerTokens << ','
            << (s.startInAnswering ? 1 : 0) << ',' << s.dataset << ','
            << static_cast<int>(s.sloClass) << '\n';
    }
}

Trace
Trace::fromCsv(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("Trace::fromCsv: cannot open '" + path + "'");

    Trace trace;
    std::string line;
    if (!std::getline(in, line))
        fatal("Trace::fromCsv: empty file '" + path + "'");

    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream ss(line);
        std::string field;
        RequestSpec s;
        try {
            std::getline(ss, field, ',');
            s.id = std::stoll(field);
            std::getline(ss, field, ',');
            s.arrival = std::stod(field);
            std::getline(ss, field, ',');
            s.promptTokens = std::stoll(field);
            std::getline(ss, field, ',');
            s.reasoningTokens = std::stoll(field);
            std::getline(ss, field, ',');
            s.answerTokens = std::stoll(field);
            std::getline(ss, field, ',');
            s.startInAnswering = std::stoi(field) != 0;
            std::getline(ss, field, ',');
            s.dataset = field;
            // Optional trailing slo_class column; legacy 7-column
            // traces default to Standard.
            if (std::getline(ss, field, ',')) {
                int cls = std::stoi(field);
                if (cls < 0 ||
                    cls >= static_cast<int>(kNumSloClasses)) {
                    fatal("Trace::fromCsv: bad slo_class on line " +
                          std::to_string(line_no) + " in '" + path +
                          "'");
                }
                s.sloClass = static_cast<SloClass>(cls);
            }
        } catch (const std::exception&) {
            fatal("Trace::fromCsv: malformed line " +
                  std::to_string(line_no) + " in '" + path + "'");
        }
        trace.requests.push_back(std::move(s));
    }
    trace.sortByArrival();
    trace.validate();
    return trace;
}

Trace
Trace::merge(const Trace& a, const Trace& b)
{
    Trace out;
    out.requests.reserve(a.size() + b.size());
    out.requests.insert(out.requests.end(), a.requests.begin(),
                        a.requests.end());
    out.requests.insert(out.requests.end(), b.requests.begin(),
                        b.requests.end());
    out.sortByArrival();
    out.validate();
    return out;
}

} // namespace workload
} // namespace pascal
