#include "src/workload/datasets.hh"

#include <algorithm>
#include <cmath>

#include "src/common/log.hh"

namespace pascal
{
namespace workload
{

double
LengthDistribution::muLog() const
{
    return std::log(meanTokens) - 0.5 * sigmaLog * sigmaLog;
}

TokenCount
LengthDistribution::sample(Rng& rng) const
{
    double x = rng.lognormal(muLog(), sigmaLog);
    auto tokens = static_cast<TokenCount>(std::llround(x));
    return std::clamp(tokens, minTokens, maxTokens);
}

double
LengthDistribution::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    double z = (std::log(x) - muLog()) / sigmaLog;
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

void
LengthDistribution::validate() const
{
    if (meanTokens <= 0.0)
        fatal("LengthDistribution: meanTokens must be positive");
    if (sigmaLog <= 0.0)
        fatal("LengthDistribution: sigmaLog must be positive");
    if (minTokens < 1 || maxTokens < minTokens)
        fatal("LengthDistribution: bad clamp range");
}

void
DatasetProfile::validate() const
{
    prompt.validate();
    reasoning.validate();
    answering.validate();
}

DatasetProfile
DatasetProfile::alpacaEval()
{
    DatasetProfile d;
    d.name = "AlpacaEval2.0";
    d.prompt = {150.0, 0.6, 16, 2048};
    d.reasoning = {557.75, 0.9, 16, 6000};
    d.answering = {566.85, 0.8, 16, 6000};
    return d;
}

DatasetProfile
DatasetProfile::arenaHard()
{
    DatasetProfile d;
    d.name = "Arena-Hard";
    d.prompt = {300.0, 0.7, 16, 4096};
    d.reasoning = {968.35, 1.0, 16, 15000};
    d.answering = {824.02, 0.9, 16, 15000};
    return d;
}

DatasetProfile
DatasetProfile::math500()
{
    DatasetProfile d;
    d.name = "MATH-500";
    d.prompt = {200.0, 0.6, 16, 2048};
    d.reasoning = {747.20, 1.1, 16, 8000};
    d.answering = {164.67, 0.8, 16, 4000};
    return d;
}

DatasetProfile
DatasetProfile::gpqa()
{
    DatasetProfile d;
    d.name = "GPQA";
    d.prompt = {400.0, 0.6, 16, 4096};
    d.reasoning = {2679.27, 0.9, 16, 15000};
    d.answering = {316.09, 0.8, 16, 4000};
    return d;
}

DatasetProfile
DatasetProfile::liveCodeBench()
{
    DatasetProfile d;
    d.name = "LiveCodeBench";
    d.prompt = {500.0, 0.7, 16, 4096};
    d.reasoning = {1896.64, 1.0, 16, 15000};
    d.answering = {697.09, 0.9, 16, 8000};
    return d;
}

std::vector<DatasetProfile>
DatasetProfile::all()
{
    return {alpacaEval(), arenaHard(), math500(), gpqa(),
            liveCodeBench()};
}

} // namespace workload
} // namespace pascal
