/**
 * @file
 * A serving trace: the time-ordered list of request specs fed to the
 * cluster, with CSV import/export for reuse across harnesses.
 */

#ifndef PASCAL_WORKLOAD_TRACE_HH
#define PASCAL_WORKLOAD_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/workload/request.hh"

namespace pascal
{
namespace workload
{

/**
 * How a trace came to be. Generated traces record the generator knobs
 * so downstream artifacts (sweep labels, bench JSON) are
 * self-describing instead of an anonymous "t0".
 */
struct TraceProvenance
{
    bool generated = false;    //!< Filled by the trace generators.
    std::string profile;       //!< DatasetProfile name ("mixed" etc.).
    int n = 0;                 //!< Requested request count.
    double ratePerSec = 0.0;   //!< Poisson arrival rate.
    std::uint64_t seed = 0;    //!< Rng seed (0 when unknown).
    bool seedKnown = false;    //!< The generator saw the actual seed.
};

/** Ordered request stream. */
struct Trace
{
    std::vector<RequestSpec> requests;

    /** Generator knobs when known (empty/default for external
     *  traces); not serialized by toCsv (the CSV format is the
     *  portable interchange, provenance is an in-process label). */
    TraceProvenance provenance;

    /** One-line human/JSON label: generator knobs when known, else
     *  the request count. */
    std::string describe() const;

    /** Sort by arrival time (stable; ties keep id order). */
    void sortByArrival();

    /** Validate every spec and the arrival ordering. */
    void validate() const;

    /** Number of requests. */
    std::size_t size() const { return requests.size(); }

    bool empty() const { return requests.empty(); }

    /** Sum of all tokens the trace will generate (reasoning+answer). */
    TokenCount totalGeneratedTokens() const;

    /**
     * Write as CSV with header
     * `id,arrival,prompt,reasoning,answer,start_in_answering,dataset,
     * slo_class`.
     */
    void toCsv(const std::string& path) const;

    /** Parse the CSV format written by toCsv(). The trailing
     *  `slo_class` column is optional; legacy 7-column traces parse
     *  with every request in the Standard class. */
    static Trace fromCsv(const std::string& path);

    /** Concatenate and re-sort two traces (ids must stay unique). */
    static Trace merge(const Trace& a, const Trace& b);
};

} // namespace workload
} // namespace pascal

#endif // PASCAL_WORKLOAD_TRACE_HH
