/**
 * @file
 * Multi-tenant SLO classes (ROADMAP item 4).
 *
 * Every request carries one of three service classes. The class is
 * part of the immutable RequestSpec (synthesized deterministically by
 * the trace generators or read from the trace CSV) and selects the
 * per-class SLO targets, relative deadline, and shed priority defined
 * in qoe::SloClassConfig. With the class subsystem disabled (the
 * default) the field is inert: every comparator rank derived from it
 * stays 0 and runs are byte-identical to a build without classes.
 */

#ifndef PASCAL_WORKLOAD_SLO_CLASS_HH
#define PASCAL_WORKLOAD_SLO_CLASS_HH

#include <cstddef>
#include <cstdint>

namespace pascal
{
namespace workload
{

/**
 * Service class of a request, ordered by protection priority:
 * Interactive is shed last and scheduled first; Batch is shed first
 * and scheduled last. The numeric value doubles as the scheduler
 * class rank (lower runs earlier), so the order of the enumerators is
 * load-bearing.
 */
enum class SloClass : std::uint8_t
{
    Interactive = 0, //!< Latency-critical chat traffic.
    Standard = 1,    //!< Default tier (matches the global SloConfig).
    Batch = 2,       //!< Throughput-oriented background work.
};

/** Number of service classes. */
inline constexpr std::size_t kNumSloClasses = 3;

/** Scheduler class rank of a request demoted to best-effort after a
 *  deadline expiry: strictly below every real class. */
inline constexpr std::uint8_t kBestEffortClassRank =
    static_cast<std::uint8_t>(kNumSloClasses);

/** Stable lowercase name (stat keys, trace args, CSV column). */
inline const char*
sloClassName(SloClass c)
{
    switch (c) {
      case SloClass::Interactive:
        return "interactive";
      case SloClass::Standard:
        return "standard";
      case SloClass::Batch:
        return "batch";
    }
    return "unknown";
}

/** Index form of @p c for per-class arrays. */
inline std::size_t
sloClassIndex(SloClass c)
{
    return static_cast<std::size_t>(c);
}

} // namespace workload
} // namespace pascal

#endif // PASCAL_WORKLOAD_SLO_CLASS_HH
