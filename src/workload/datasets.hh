/**
 * @file
 * Dataset token-length profiles.
 *
 * The paper labels each benchmark prompt with reasoning/answering token
 * counts obtained from the o4-mini API (Fig. 8 and Fig. 14). We do not
 * have that API; instead each dataset is a log-normal length profile
 * matched to the per-dataset means the paper prints:
 *
 *   AlpacaEval 2.0 : reasoning 557.75, answering 566.85
 *   Arena-Hard     : reasoning 968.35, answering 824.02
 *   MATH-500       : reasoning 747.20, answering 164.67
 *   GPQA           : reasoning 2679.27, answering 316.09
 *   LiveCodeBench  : reasoning 1896.64, answering 697.09
 *
 * Skews are chosen so that the chat datasets put >70 % of requests
 * under 1000 reasoning tokens (Fig. 10 caption) and the reasoning-heavy
 * datasets reach the 8.48x reasoning:answer ratio highlighted in
 * Section V-D. See DESIGN.md "Substitutions".
 */

#ifndef PASCAL_WORKLOAD_DATASETS_HH
#define PASCAL_WORKLOAD_DATASETS_HH

#include <string>
#include <vector>

#include "src/common/rng.hh"
#include "src/common/types.hh"

namespace pascal
{
namespace workload
{

/**
 * Log-normal token-length distribution parameterized by its *mean*
 * (not log-space mu), clamped to [minTokens, maxTokens].
 */
struct LengthDistribution
{
    double meanTokens = 0.0;   //!< Target arithmetic mean.
    double sigmaLog = 0.8;     //!< Log-space standard deviation.
    TokenCount minTokens = 16;
    TokenCount maxTokens = 1 << 20;

    /** Log-space mu implied by (meanTokens, sigmaLog). */
    double muLog() const;

    /** Draw one clamped sample. */
    TokenCount sample(Rng& rng) const;

    /** P(X < x) for the unclamped distribution. */
    double cdf(double x) const;

    /** Validate; calls fatal() on nonsense values. */
    void validate() const;
};

/** Per-dataset joint profile of prompt/reasoning/answering lengths. */
struct DatasetProfile
{
    std::string name;
    LengthDistribution prompt;
    LengthDistribution reasoning;
    LengthDistribution answering;

    void validate() const;

    /** Chat datasets used in the main evaluation (Fig. 8). */
    static DatasetProfile alpacaEval();
    static DatasetProfile arenaHard();

    /** Reasoning-heavy problem-solving datasets (Fig. 14). */
    static DatasetProfile math500();
    static DatasetProfile gpqa();
    static DatasetProfile liveCodeBench();

    /** All five presets. */
    static std::vector<DatasetProfile> all();
};

} // namespace workload
} // namespace pascal

#endif // PASCAL_WORKLOAD_DATASETS_HH
