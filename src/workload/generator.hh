/**
 * @file
 * Trace generators: Poisson arrivals over dataset profiles, the
 * synthetic characterization workloads of Section III, and the mixed
 * reasoning-heavy workload of Fig. 16.
 */

#ifndef PASCAL_WORKLOAD_GENERATOR_HH
#define PASCAL_WORKLOAD_GENERATOR_HH

#include <vector>

#include "src/common/rng.hh"
#include "src/workload/datasets.hh"
#include "src/workload/trace.hh"

namespace pascal
{
namespace workload
{

/**
 * Generate @p n requests from @p profile with Poisson arrivals of mean
 * rate @p rate_per_sec starting at @p start_time. Request ids start at
 * @p first_id.
 */
Trace generateTrace(const DatasetProfile& profile, int n,
                    double rate_per_sec, Rng& rng,
                    Time start_time = 0.0, RequestId first_id = 0);

/** One component of a mixed workload. */
struct MixComponent
{
    DatasetProfile profile;
    double weight = 1.0; //!< Relative selection probability.
};

/**
 * Generate @p n requests whose per-request dataset is drawn from the
 * weighted @p components, with Poisson arrivals at @p rate_per_sec.
 * Used for Fig. 16 (50 % Arena-Hard + 50 % uniform over MATH-500,
 * GPQA, LiveCodeBench).
 */
Trace generateMixedTrace(const std::vector<MixComponent>& components,
                         int n, double rate_per_sec, Rng& rng,
                         Time start_time = 0.0, RequestId first_id = 0);

/**
 * The Fig. 4 characterization workload: fixed 128-token prompts,
 * reasoning length drawn uniformly from @p reasoning_choices
 * (the paper uses {128, 256, 512, 1024, 2048}), a single answering
 * token, Poisson arrivals.
 */
Trace generateReasoningCharacterization(
    int n, double rate_per_sec, Rng& rng,
    const std::vector<TokenCount>& reasoning_choices = {128, 256, 512,
                                                        1024, 2048});

/**
 * The Fig. 5 characterization workload: requests arrive already past
 * their reasoning phase with a 128-token pre-generated KV prefix and an
 * answering length drawn uniformly from @p answer_choices.
 */
Trace generateAnsweringCharacterization(
    int n, double rate_per_sec, Rng& rng,
    const std::vector<TokenCount>& answer_choices = {128, 256, 512,
                                                     1024, 2048});

/** Target class mix for assignSloClasses (fractions sum to <= 1;
 *  the remainder lands in Standard). */
struct SloMix
{
    double interactiveFraction = 0.3;
    double batchFraction = 0.3;
    /** Salt mixed into the per-request hash; independent of the
     *  workload RNG. */
    std::uint64_t seed = 0x510c1a55;

    void validate() const;
};

/**
 * Deterministically assign an SLO class to every request in @p trace
 * per the @p mix fractions. The assignment hashes (mix.seed,
 * request id) — it draws nothing from the workload RNG stream, so
 * annotating an existing trace never perturbs the sampled arrivals or
 * token counts, and re-generating the same trace with or without
 * classes yields byte-identical specs apart from the class column.
 */
void assignSloClasses(Trace& trace, const SloMix& mix = {});

} // namespace workload
} // namespace pascal

#endif // PASCAL_WORKLOAD_GENERATOR_HH
