#include "src/workload/request.hh"

#include <algorithm>
#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace workload
{

void
RequestSpec::validate() const
{
    if (id < 0)
        fatal("RequestSpec: negative id");
    if (arrival < 0.0)
        fatal("RequestSpec " + std::to_string(id) + ": negative arrival");
    if (promptTokens <= 0)
        fatal("RequestSpec " + std::to_string(id) +
              ": promptTokens must be positive");
    if (answerTokens <= 0)
        fatal("RequestSpec " + std::to_string(id) +
              ": answerTokens must be positive");
    if (startInAnswering) {
        if (reasoningTokens != 0)
            fatal("RequestSpec " + std::to_string(id) +
                  ": startInAnswering requires reasoningTokens == 0");
    } else if (reasoningTokens <= 0) {
        fatal("RequestSpec " + std::to_string(id) +
              ": reasoningTokens must be positive (prefill emits the "
              "first reasoning token)");
    }
}

Request::Request(RequestSpec s) : specData(std::move(s))
{
    specData.validate();
    lastAccount = specData.arrival;
    if (specData.startInAnswering) {
        // Reasoning already happened upstream; the </think> marker is
        // conceptually observed at arrival.
        reasoningEnd = specData.arrival;
    }
}

void
Request::emitTokenPanic() const
{
    panic("emitToken on finished request " + std::to_string(id()));
}

void
Request::completePrefill(Time now, TokenCount quantum)
{
    if (prefillDone)
        panic("double prefill for request " + std::to_string(id()));
    if (specData.startInAnswering)
        panic("prefill on a startInAnswering request " +
              std::to_string(id()));
    prefillDone = true;
    prefillEnd = now;
    emitToken(now, quantum);
}

void
Request::resetQuantum()
{
    quantumTokens = 0;
    quantaConsumed = 0;
}

} // namespace workload
} // namespace pascal
