#include "src/workload/request.hh"

#include <algorithm>
#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace workload
{

void
RequestSpec::validate() const
{
    if (id < 0)
        fatal("RequestSpec: negative id");
    if (arrival < 0.0)
        fatal("RequestSpec " + std::to_string(id) + ": negative arrival");
    if (promptTokens <= 0)
        fatal("RequestSpec " + std::to_string(id) +
              ": promptTokens must be positive");
    if (answerTokens <= 0)
        fatal("RequestSpec " + std::to_string(id) +
              ": answerTokens must be positive");
    if (startInAnswering) {
        if (reasoningTokens != 0)
            fatal("RequestSpec " + std::to_string(id) +
                  ": startInAnswering requires reasoningTokens == 0");
    } else if (reasoningTokens <= 0) {
        fatal("RequestSpec " + std::to_string(id) +
              ": reasoningTokens must be positive (prefill emits the "
              "first reasoning token)");
    }
}

Request::Request(RequestSpec s) : specData(std::move(s))
{
    specData.validate();
    lastAccount = specData.arrival;
    if (specData.startInAnswering) {
        // Reasoning already happened upstream; the </think> marker is
        // conceptually observed at arrival.
        reasoningEnd = specData.arrival;
    }
}

TokenCount
Request::reasoningGenerated() const
{
    return std::min(generatedTokens, specData.reasoningTokens);
}

TokenCount
Request::answerGenerated() const
{
    return std::max<TokenCount>(0,
        generatedTokens - specData.reasoningTokens);
}

Phase
Request::phase() const
{
    if (generatedTokens >= totalToGenerate())
        return Phase::Finished;
    if (generatedTokens >= specData.reasoningTokens)
        return Phase::Answering;
    return Phase::Reasoning;
}

void
Request::tickQuantum(TokenCount quantum)
{
    if (quantum <= 0)
        return; // Quantum disabled (FCFS).
    ++quantumTokens;
    if (quantumTokens >= quantum) {
        quantumTokens = 0;
        ++quantaConsumed;
    }
}

void
Request::emitToken(Time now, TokenCount quantum)
{
    if (finished())
        panic("emitToken on finished request " + std::to_string(id()));

    ++generatedTokens;
    tickQuantum(quantum);

    if (!specData.startInAnswering &&
        generatedTokens == specData.reasoningTokens) {
        // This token is the </think> marker: the reasoning phase ends
        // here and the instance monitor observes the transition.
        reasoningEnd = now;
    }
    if (generatedTokens == specData.reasoningTokens + 1 ||
        (specData.startInAnswering && generatedTokens == 1)) {
        firstAnswer = now;
    }
    if (generatedTokens > specData.reasoningTokens)
        answerEmitTimes.push_back(now);
    if (generatedTokens == totalToGenerate())
        finish = now;
}

void
Request::completePrefill(Time now, TokenCount quantum)
{
    if (prefillDone)
        panic("double prefill for request " + std::to_string(id()));
    if (specData.startInAnswering)
        panic("prefill on a startInAnswering request " +
              std::to_string(id()));
    prefillDone = true;
    prefillEnd = now;
    emitToken(now, quantum);
}

void
Request::resetQuantum()
{
    quantumTokens = 0;
    quantaConsumed = 0;
}

void
Request::accrue(Time now, BucketKind kind)
{
    double dt = now - lastAccount;
    lastAccount = now;
    if (dt <= 0.0)
        return;

    PhaseBuckets& b = (phase() == Phase::Reasoning) ? reasoningBuckets
                                                    : answeringBuckets;
    switch (kind) {
      case BucketKind::Executed:
        b.executed += dt;
        break;
      case BucketKind::Blocked:
        b.blocked += dt;
        break;
      case BucketKind::Preempted:
        b.preempted += dt;
        break;
    }
}

} // namespace workload
} // namespace pascal
