/**
 * @file
 * The request model: immutable trace spec + mutable runtime state.
 *
 * A reasoning-LLM request advances through
 *   Reasoning (prefill + reasoning-token decode)
 *     -> Answering (user-visible tokens)
 *       -> Finished,
 * matching Fig. 1(b) of the paper. Per Section II-D the reasoning phase
 * includes the prefill stage. The phase transition is *observed* when
 * the final reasoning token (the </think> marker) is emitted; it cannot
 * be predicted in advance.
 */

#ifndef PASCAL_WORKLOAD_REQUEST_HH
#define PASCAL_WORKLOAD_REQUEST_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.hh"
#include "src/workload/slo_class.hh"

namespace pascal
{
namespace workload
{

/** Execution phase of a request (paper Fig. 1(b)). */
enum class Phase
{
    Reasoning, //!< Prefill + hidden reasoning-token decode.
    Answering, //!< User-visible answering-token decode.
    Finished,  //!< All tokens generated.
};

/** Where the request currently sits in the serving machinery. */
enum class ExecState
{
    Unassigned,  //!< Not yet routed to an instance.
    WaitingNew,  //!< On an instance, no KV yet (needs prefill).
    ResidentGpu, //!< KV in GPU HBM; decodable.
    SwappedCpu,  //!< KV offloaded to host DRAM (preempted).
    InTransit,   //!< KV migrating between instances.
    Done,        //!< Finished; KV released.
};

/** Why a request terminally failed under fault injection. */
enum class FailReason : std::uint8_t
{
    None,        //!< Not failed (completed or still running).
    RetryBudget, //!< Crash/link-failure retries exhausted the budget.
    Shed,        //!< Rejected at admission while capacity was below
                 //!< the configured shed floor.
    DeadlineExceeded, //!< The request's per-class relative deadline
                      //!< expired before completion (SLO classes).
};

/** Immutable description of one request, as read from a trace. */
struct RequestSpec
{
    RequestId id = kNoRequest;
    Time arrival = 0.0;
    TokenCount promptTokens = 0;
    TokenCount reasoningTokens = 0; //!< 0 iff startInAnswering.
    TokenCount answerTokens = 0;

    /**
     * Fig. 5 mode: the request enters the system already past its
     * reasoning phase; its prompt KV is assumed pre-generated
     * (allocated without prefill cost) and every generated token is an
     * answering token.
     */
    bool startInAnswering = false;

    std::string dataset; //!< Source dataset label (diagnostic).

    /** Service class (inert unless SloClassConfig::enabled). */
    SloClass sloClass = SloClass::Standard;

    /** Sanity-check the spec; calls fatal() on malformed entries. */
    void validate() const;
};

/** Time breakdown within one phase (the Fig. 4 / Fig. 5 stacks). */
struct PhaseBuckets
{
    double executed = 0.0;  //!< Actively running on the GPU.
    double blocked = 0.0;   //!< Waiting, never yet started.
    double preempted = 0.0; //!< Waiting after having started.

    double total() const { return executed + blocked + preempted; }
};

/** Which bucket a waiting interval belongs to. */
enum class BucketKind
{
    Executed,
    Blocked,
    Preempted,
};

/**
 * Mutable runtime state of one request.
 *
 * Owned by the Cluster; instances and schedulers hold raw pointers.
 */
class Request
{
  public:
    explicit Request(RequestSpec s);

    const RequestSpec& spec() const { return specData; }
    RequestId id() const { return specData.id; }

    /** @name Token progress */
    /** @{ */

    /** Decode tokens generated so far (reasoning + answering). */
    TokenCount generated() const { return generatedTokens; }

    /** Reasoning tokens generated so far. */
    TokenCount
    reasoningGenerated() const
    {
        return generatedTokens < specData.reasoningTokens
                   ? generatedTokens
                   : specData.reasoningTokens;
    }

    /** Answering tokens generated so far. */
    TokenCount
    answerGenerated() const
    {
        return generatedTokens > specData.reasoningTokens
                   ? generatedTokens - specData.reasoningTokens
                   : 0;
    }

    /** Total tokens this request will generate. */
    TokenCount
    totalToGenerate() const
    {
        return specData.reasoningTokens + specData.answerTokens;
    }

    /** Current phase implied by progress. Inline: this is the single
     *  most-called accessor on the simulation hot path. */
    Phase
    phase() const
    {
        if (generatedTokens >= totalToGenerate())
            return Phase::Finished;
        if (generatedTokens >= specData.reasoningTokens)
            return Phase::Answering;
        return Phase::Reasoning;
    }

    bool finished() const { return phase() == Phase::Finished; }

    /**
     * KV tokens logically owned right now: prompt + generated tokens
     * (each decoded token appends one KV entry).
     */
    TokenCount kvTokens() const
    {
        return specData.promptTokens + generatedTokens;
    }

    /** Record the emission of one decode token at time @p now.
     *  Updates phase timestamps and quantum accounting. Inline: runs
     *  once per decode-batch member per iteration. */
    void
    emitToken(Time now, TokenCount quantum)
    {
        if (finished())
            emitTokenPanic();
        ++generatedTokens;
        if (quantum > 0) {
            ++quantumTokens;
            if (quantumTokens >= quantum) {
                quantumTokens = 0;
                ++quantaConsumed;
            }
        }
        if (!specData.startInAnswering &&
            generatedTokens == specData.reasoningTokens) {
            // This token is the </think> marker: the reasoning phase
            // ends here and the instance monitor observes the
            // transition.
            reasoningEnd = now;
        }
        if (generatedTokens == specData.reasoningTokens + 1 ||
            (specData.startInAnswering && generatedTokens == 1)) {
            firstAnswer = now;
        }
        if (generatedTokens > specData.reasoningTokens) {
            // One exact reservation instead of doubling reallocs: the
            // final answering length is known from the spec, and a
            // long answer otherwise pays ~log2(n) grow-copy passes.
            if (answerEmitTimes.capacity() == 0)
                answerEmitTimes.reserve(
                    static_cast<std::size_t>(specData.answerTokens));
            answerEmitTimes.push_back(now);
        }
        if (generatedTokens == totalToGenerate())
            finish = now;
    }

    [[noreturn]] void emitTokenPanic() const;

    /** Mark prefill completion at @p now; emits the first reasoning
     *  token (Fig. 1(b): prefill produces r1). */
    void completePrefill(Time now, TokenCount quantum);

    /** @} */

    /** @name Scheduling state (manipulated by instances/schedulers) */
    /** @{ */

    ExecState exec = ExecState::Unassigned;
    InstanceId home = kNoInstance;
    bool demoted = false;       //!< PASCAL: forced into the low queue.
    bool prefillDone = false;

    /** Terminal failure reason (fault layer); None otherwise. */
    FailReason failReason = FailReason::None;

    /** Placement retries consumed (crashes, link failures,
     *  no-capacity outcomes) against FaultConfig::retryBudget. */
    int retryCount = 0;

    /** Monotonic KV-transfer attempt counter; feeds the stateless
     *  per-attempt link-failure draw so the verdict is independent of
     *  event interleaving. */
    std::uint64_t transferNonce = 0;

    /** Tokens generated inside the current quantum. */
    TokenCount quantumTokens = 0;
    /** Full quanta consumed (the RR priority key; more = lower prio). */
    int quantaConsumed = 0;

    /** Reset quantum accounting (PASCAL does this when a request
     *  changes queues at the phase boundary). */
    void resetQuantum();

    /** @name SLO-class state (owned by the Cluster's class layer)
     *
     * All fields stay at their zero defaults while the class
     * subsystem is disabled, so every comparator that reads
     * schedClassRank falls through to the policy's own key and runs
     * are byte-identical to a classless build.
     */
    /** @{ */

    /** Scheduler class rank: sloClassIndex(spec().sloClass) when
     *  classes are enabled, kBestEffortClassRank after a
     *  demote-on-expiry, 0 otherwise. Lower runs earlier; the FIRST
     *  comparison of every shipped policy order. */
    std::uint8_t schedClassRank = 0;

    /** The armed relative deadline fired before completion. */
    bool deadlineExpired = false;

    /** Demoted to best-effort after a deadline expiry: scheduled
     *  behind every real class and scored against Batch targets. */
    bool bestEffort = false;

    /** Pending deadline event on the cluster's simulator
     *  (sim::kNoEvent when none armed). */
    std::uint64_t deadlineEventId = 0;

    /** @} */

    /** @name Intrusive scheduler/engine bookkeeping
     *
     * Owned by the hosting core::IntraScheduler (sched*) and
     * cluster::Instance (runEpoch); not part of the workload
     * semantics. Keeping these fields inside the request makes the
     * incremental scheduling structures allocation-free and O(1) to
     * update: the queues store raw pointers and find a request's
     * membership, dirtiness, and cached ordering key without any
     * side-table lookup.
     */
    /** @{ */

    /** Index in the scheduler's hosted vector (O(1) removal). */
    std::size_t schedHostedPos = 0;

    /** Intrusive insertion-order hosted list (O(1) unlink). The
     *  hosted vector uses swap-pop removal, so consumers that need
     *  the original arrival order — the snapshot's floating-point
     *  prediction sum, whose result depends on summation order —
     *  walk this list instead. */
    Request* schedPrevHosted = nullptr;
    Request* schedNextHosted = nullptr;

    /** Cached predictor rank score used as the ordering key by
     *  SRPT/PASCAL-Spec; refreshed whenever the request is re-keyed
     *  so comparisons never call the predictor. */
    double schedScore = 0.0;

    /** quantaConsumed at the last scheduler sync (change detector). */
    int schedCachedQuanta = 0;

    /** Which scheduler queue holds the request (0 = none). */
    std::uint8_t schedQueueTag = 0;

    /** Awaiting re-insertion into its queue (key changed). */
    bool schedDirtyPending = false;

    /** Counted in the scheduler's maintained r_i counter. */
    bool schedCountedReasoning = false;

    /** Counted in the scheduler's maintained a_i counter. */
    bool schedCountedFreshAns = false;

    /** Queued for a demotion-rule re-check (KV or prediction moved). */
    bool schedDemotionPending = false;

    /** Instance iteration epoch when the request last ran (replaces
     *  the per-iteration hash-set batch membership test). */
    std::uint64_t runEpoch = 0;

    /** Skip-list node of the OrderedQueue currently holding the
     *  request (owned by that queue; null when unlinked or pending).
     *  Lets erase/markDirty unlink in O(log n) without a search. */
    void* schedNode = nullptr;

    /** @name Scheduler resident-set tracking
     *
     * Intrusive membership in the hosting scheduler's GPU-resident
     * set, kept in sync by the engine's residency notifications
     * (incremental mode's dirty-set contract). The greedy selection
     * walk uses it to account unselected residents without visiting
     * the admission backlog behind them; in incremental mode the set
     * is a maintained ResidentEvictOrder skip list (schedEvictNode)
     * so the walk's settle pass visits residents pre-sorted in
     * eviction order instead of re-sorting per build.
     */
    /** @{ */
    bool schedInResidentList = false;

    /** Skip-list node of the scheduler's maintained eviction-order
     *  queue (incremental mode only; null when unlinked/pending). */
    void* schedEvictNode = nullptr;

    /** Awaiting re-insertion into the eviction-order queue. */
    bool schedEvictDirty = false;

    /** Plan-repair journal state for the active plan lineage
     *  (core::IntraScheduler repair ops; 0 = not journaled). */
    std::uint8_t schedRepairState = 0;

    /** Transient mark used by repairPlan's splice-and-merge to drop
     *  patched members from the surviving decode batch. */
    bool schedRepairSplice = false;

    /** Queued-prewarm membership in the scheduler's waitingPrewarm
     *  counter (startInAnswering arrivals bypass prefill caps, so the
     *  walk may only stop early when none remain). */
    bool schedCountedPrewarm = false;

    /** Membership in the scheduler's exact waiting-prompt multiset
     *  (requests with equal prompts are indistinguishable there, so
     *  the flag guards against double erases). */
    bool schedCountedWaiting = false;

    /** Last greedy walk (scheduler-local epoch) that visited this
     *  request as a GPU resident; unvisited residents are exactly
     *  the ones the walk's early exit still owes a keep/evict
     *  decision. */
    std::uint64_t schedPlanStamp = 0;
    /** @} */

    /**
     * Intrusive min-deadline heap slot on the hosting Instance's SLO
     * heap (-1 = not at risk / not answering). The heap tracks, per
     * answering request, the earliest time its TPOT/TTFAT verdict
     * could flip, so the monitor's answeringSloOk is a heap peek
     * instead of an O(hosted) walk.
     */
    std::int32_t sloHeapPos = -1;

    /** Cached conservative flip-time key for the SLO heap, relative
     *  to the instance's shared offset (valid while sloHeapPos >=
     *  0). */
    double sloKey = 0.0;

    /** Already recorded for offset compensation this iteration (see
     *  Instance::sloNoteExact). */
    bool sloExactPending = false;

    /** Index of the owning RequestArena chunk inside the Cluster's
     *  arena (-1 outside a cluster run); drives chunk recycling. */
    std::int32_t arenaChunk = -1;

    /** Compact KV-pool slot on the hosting instance's KvPool
     *  (model::KvPool hands it out on alloc); -1 when no KV is
     *  tracked. Keeping the handle here makes every per-token pool
     *  call a direct array index and lets the pool's table be sized
     *  by *live* requests instead of the largest RequestId ever
     *  hosted. */
    std::int32_t kvSlot = -1;

    /** @} */

    /** @name Accounting */
    /** @{ */

    /**
     * Accrue wall time since the last accrual into the bucket @p kind
     * of the *current* phase. Call before mutating token progress so
     * the interval lands in the phase it was spent in. Inline: runs
     * once per batch member per iteration.
     */
    void
    accrue(Time now, BucketKind kind)
    {
        double dt = now - lastAccount;
        lastAccount = now;
        if (dt <= 0.0)
            return;
        PhaseBuckets& b = (phase() == Phase::Reasoning)
                              ? reasoningBuckets
                              : answeringBuckets;
        switch (kind) {
          case BucketKind::Executed:
            b.executed += dt;
            break;
          case BucketKind::Blocked:
            b.blocked += dt;
            break;
          case BucketKind::Preempted:
            b.preempted += dt;
            break;
        }
    }

    /** Reset the accrual cursor without booking time (on arrival or
     *  when landing on a new instance), stamping the standing bucket
     *  the request accrues into until the next stampAccrual(). */
    void
    resetAccrual(Time now, BucketKind kind = BucketKind::Blocked)
    {
        lastAccount = now;
        accrualKind = kind;
    }

    /**
     * Lazy-accrual stamp: which bucket the request is currently
     * accruing into. Instead of booking every iteration's wall time
     * for every hosted request (the old O(hosted) accrueAll walk),
     * the engine restamps a request only when its standing bucket
     * changes (batch entry/exit, admit, swap, detach, migration) and
     * the elapsed interval is settled in one addition at the next
     * observation point (emission, detach, finish, scoring). The
     * PASCAL_FORCE_ACCRUE debug mode keeps the eager per-iteration
     * walk as a verification pass that panics on any stale stamp.
     */
    BucketKind accrualKind = BucketKind::Blocked;

    /** Settle the interval since the last settlement into the stamped
     *  bucket of the current phase. */
    void settleAccrual(Time now) { accrue(now, accrualKind); }

    /** Settle under the old stamp, then switch the standing bucket
     *  to @p kind. */
    void
    stampAccrual(Time now, BucketKind kind)
    {
        accrue(now, accrualKind);
        accrualKind = kind;
    }

    PhaseBuckets reasoningBuckets;
    PhaseBuckets answeringBuckets;

    /** @} */

    /** @name Timestamps (negative = not yet happened) */
    /** @{ */

    Time firstScheduled = -1.0;  //!< First time any work ran for it.
    Time prefillEnd = -1.0;
    Time reasoningEnd = -1.0;    //!< </think> observed.
    Time firstAnswer = -1.0;     //!< First answering token: TTFT ref.
    Time finish = -1.0;
    Time firstAnswerScheduled = -1.0; //!< First answering-phase decode
                                      //!< step start (Fig. 13 blocking
                                      //!< latency reference).

    /** Emission time of each answering token (pacer/QoE input). */
    std::vector<Time> answerEmitTimes;

    int migrationCount = 0;
    /** Per-migration end-to-end KV transfer latency (Sec. V-C). */
    std::vector<double> kvTransferLatencies;

    /** @} */

  private:
    RequestSpec specData;
    TokenCount generatedTokens = 0;
    Time lastAccount = 0.0;

};

} // namespace workload
} // namespace pascal

#endif // PASCAL_WORKLOAD_REQUEST_HH
