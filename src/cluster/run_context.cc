#include "src/cluster/run_context.hh"

#include <string>

#include "src/common/log.hh"
#include "src/qoe/metrics.hh"

namespace pascal
{
namespace cluster
{

RunContext::RunContext(const SystemConfig& cfg) : cfg(cfg)
{
    this->cfg.validate();
    clusterPtr = std::make_unique<Cluster>(sim, this->cfg);
}

void
RunContext::submit(const workload::Trace& trace)
{
    clusterPtr->submitTrace(trace);
}

std::uint64_t
RunContext::run(Time until)
{
    if (until < 0.0)
        until = cfg.maxSimTime;
    ranToHorizon = until >= cfg.maxSimTime;
    return sim.run(until);
}

RunResult
RunContext::result() const
{
    if (ranToHorizon && sim.pendingEvents() > 0) {
        warn("simulation horizon (" + std::to_string(cfg.maxSimTime) +
             " s) hit with events pending");
    }

    RunResult result;
    if (clusterPtr->streamingEnabled()) {
        // Streaming mode: no per-request rows exist to collect — the
        // aggregate comes from the bounded-memory sketches.
        result.streaming = clusterPtr->finalStreamingMetrics();
        result.aggregate = result.streaming->aggregate();
    } else {
        result.perRequest = clusterPtr->collectMetrics();
        result.aggregate = qoe::aggregateMetrics(result.perRequest);
    }
    result.statsDump = clusterPtr->dumpStats();
    result.traceJson = clusterPtr->traceJson();
    result.peakGpuKvTokens = clusterPtr->maxPeakGpuKv();
    result.kvCapacityTokens = clusterPtr->kvCapacityTokens();
    result.totalIterations = clusterPtr->totalIterations();
    result.numUnfinished = clusterPtr->numUnfinished();
    result.totalMigrations = clusterPtr->totalMigrations();
    result.numPlanRepairs = clusterPtr->totalPlanRepairs();
    result.numFullWalks = clusterPtr->totalFullWalks();
    result.kvTransferLatencies = clusterPtr->allKvTransferLatencies();
    result.schedulerName = cfg.schedulerName();
    result.placementName = cfg.placementName();
    result.predictorName = cfg.predictorName();
    result.numCrashes = clusterPtr->numCrashes();
    result.numRetries = clusterPtr->numRetries();
    result.numShed = clusterPtr->numShed();
    result.numTerminalFailures = clusterPtr->numTerminalFailures();
    for (std::size_t c = 0; c < workload::kNumSloClasses; ++c) {
        auto cls = static_cast<workload::SloClass>(c);
        RunResult::ClassOutcome& out = result.perClass[c];
        out.submitted = clusterPtr->numClassSubmitted(cls);
        out.completed = clusterPtr->numClassCompleted(cls);
        out.shed = clusterPtr->numClassShed(cls);
        out.deadlineFailed = clusterPtr->numClassDeadlineFailed(cls);
        out.retryFailed = clusterPtr->numClassRetryFailed(cls);
        out.demoted = clusterPtr->numClassDemoted(cls);
        out.goodputFraction =
            out.submitted == 0
                ? 1.0
                : static_cast<double>(out.completed) /
                      static_cast<double>(out.submitted);
    }
    if (!result.perRequest.empty())
        result.classAggregates = qoe::aggregateByClass(result.perRequest);
    result.goodputFraction =
        result.aggregate.numRequests == 0
            ? 1.0
            : static_cast<double>(result.aggregate.numFinished) /
                  static_cast<double>(result.aggregate.numRequests);

    // Unfinished beyond the accounted terminal failures means the
    // trace was infeasible or the horizon cut the run short; accounted
    // failures are an expected fault-layer outcome, not a warning.
    if (ranToHorizon &&
        result.numUnfinished > result.numTerminalFailures) {
        warn(std::to_string(result.numUnfinished -
                            result.numTerminalFailures) +
             " requests did not finish (infeasible trace or horizon)");
    }
    return result;
}

RunResult
RunContext::execute(const SystemConfig& cfg,
                    const workload::Trace& trace)
{
    RunContext ctx(cfg);
    ctx.submit(trace);
    ctx.run();
    return ctx.result();
}

} // namespace cluster
} // namespace pascal
