/**
 * @file
 * SweepRunner: parallel experiment grids over the serving simulator.
 *
 * The paper's evaluation (Figs. 9-16) is thousands of independent
 * simulated runs crossing schedulers, placement policies, traces, and
 * seeds. SweepRunner fans such a grid across a thread pool: every
 * grid point gets its own RunContext (fresh simulator + cluster), so
 * each simulation stays single-threaded and bit-reproducible, and the
 * collected SweepResult is in deterministic grid order no matter how
 * many worker threads ran it or how they interleaved.
 *
 * Quickstart:
 *   SweepRunner runner;
 *   auto t = runner.addGeneratedTrace(
 *       workload::DatasetProfile::alpacaEval(), 1000, 25.0, 7);
 *   runner.addGrid({SystemConfig::baseline(SchedulerType::Fcfs),
 *                   SystemConfig::pascal()},
 *                  {t}, {7});
 *   SweepResult result = runner.run(4);
 *   const SweepOutcome* best =
 *       result.bestBy([](const RunResult& r) {
 *           return r.aggregate.p99Ttft;
 *       });
 */

#ifndef PASCAL_CLUSTER_SWEEP_RUNNER_HH
#define PASCAL_CLUSTER_SWEEP_RUNNER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/serving_system.hh"
#include "src/cluster/system_config.hh"
#include "src/workload/datasets.hh"
#include "src/workload/trace.hh"

namespace pascal
{
namespace cluster
{

/** One experiment in the grid: a deployment config applied to one
 *  registered trace, tagged with the seed that produced the trace (or
 *  distinguishes the replicate). */
struct SweepPoint
{
    std::string label;         //!< Free-form tag for reports.
    SystemConfig config;
    std::size_t traceIndex = 0; //!< Into SweepRunner's trace registry.
    std::uint64_t seed = 0;     //!< Recorded in the outcome.
};

/** One grid point's scored run. */
struct SweepOutcome
{
    std::string label;
    std::size_t traceIndex = 0;
    std::uint64_t seed = 0;
    RunResult result;
};

/** A metric extracted from one run, e.g. p99 TTFT. */
using SweepMetric = std::function<double(const RunResult&)>;

/** All outcomes of a sweep, in grid (insertion) order. */
struct SweepResult
{
    std::vector<SweepOutcome> outcomes;

    std::size_t size() const { return outcomes.size(); }

    /** Outcome minimizing (default) or maximizing @p metric; nullptr
     *  on an empty sweep. Ties keep the earliest grid point. */
    const SweepOutcome* bestBy(const SweepMetric& metric,
                               bool minimize = true) const;

    /** Mean of @p metric across all outcomes (0 when empty). */
    double meanOf(const SweepMetric& metric) const;

    /** First outcome with the given label; nullptr if absent. */
    const SweepOutcome* find(const std::string& label) const;

    /** Outcomes whose label satisfies @p pred, in grid order. */
    std::vector<const SweepOutcome*>
    where(const std::function<bool(const SweepOutcome&)>& pred) const;
};

/** Builds and executes experiment grids. */
class SweepRunner
{
  public:
    /**
     * Register a trace shared by any number of grid points. The trace
     * becomes an immutable shared arena: every grid point (and any
     * harness holding a traceHandle()) references the same frozen
     * copy, so a thousand-point grid over a million-request trace
     * carries exactly one spec array.
     * @return Index for SweepPoint::traceIndex.
     */
    std::size_t addTrace(workload::Trace trace);

    /** Register an already-shared trace without copying. */
    std::size_t addTrace(std::shared_ptr<const workload::Trace> trace);

    /** Generate a Poisson trace from @p profile with Rng(@p seed) and
     *  register it; the trace records its generating
     *  {profile, n, rate, seed} provenance so sweep artifacts are
     *  self-describing. @return The trace index. */
    std::size_t addGeneratedTrace(const workload::DatasetProfile& profile,
                                  int n, double rate_per_sec,
                                  std::uint64_t seed,
                                  Time start_time = 0.0);

    /** Append one grid point. An empty label is auto-filled with
     *  "<scheduler>/<placement>/t<trace>/s<seed>", with
     *  "/<predictor>" spliced in after the placement when the config
     *  carries one.
     *  @return The point's index (== its position in the results). */
    std::size_t add(SweepPoint point);

    /**
     * Append the full cartesian grid configs x traces x seeds, in
     * nested deterministic order (configs outermost, seeds innermost).
     * @p seeds defaults to the single seed 0.
     */
    void addGrid(const std::vector<SystemConfig>& configs,
                 const std::vector<std::size_t>& trace_indices,
                 const std::vector<std::uint64_t>& seeds = {});

    /**
     * Predictor-crossed grid: every config is additionally run under
     * every predictor of @p predictors (overwriting the config's own
     * predictor knobs). Order: configs outermost, then predictors,
     * then traces, then seeds. Reactive configs crossed with a
     * PredictorType::None entry reproduce the plain addGrid point.
     */
    void addPredictorGrid(
        const std::vector<SystemConfig>& configs,
        const std::vector<predict::PredictorConfig>& predictors,
        const std::vector<std::size_t>& trace_indices,
        const std::vector<std::uint64_t>& seeds = {});

    /**
     * Run every grid point and collect results in grid order.
     *
     * @param num_threads Worker threads; 0 picks the hardware
     *        concurrency; 1 runs serially on the calling thread.
     *        Results are identical for every thread count.
     * @throws FatalError if any point's run fails (first error wins).
     */
    SweepResult run(int num_threads = 0) const;

    std::size_t numPoints() const { return points.size(); }
    std::size_t numTraces() const { return traces.size(); }
    const workload::Trace& trace(std::size_t i) const;

    /** Shared ownership of a registered trace (outlives the runner;
     *  lets harnesses keep replaying without a copy). */
    std::shared_ptr<const workload::Trace>
    traceHandle(std::size_t i) const;

    const SweepPoint& point(std::size_t i) const;

  private:
    std::vector<std::shared_ptr<const workload::Trace>> traces;
    std::vector<SweepPoint> points;
};

} // namespace cluster
} // namespace pascal

#endif // PASCAL_CLUSTER_SWEEP_RUNNER_HH
