#include "src/cluster/serving_system.hh"

#include "src/cluster/run_context.hh"

namespace pascal
{
namespace cluster
{

ServingSystem::ServingSystem(SystemConfig cfg) : cfg(std::move(cfg))
{
    this->cfg.validate();
}

RunResult
ServingSystem::run(const workload::Trace& trace) const
{
    return RunContext::execute(cfg, trace);
}

} // namespace cluster
} // namespace pascal
