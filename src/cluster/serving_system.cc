#include "src/cluster/serving_system.hh"

#include <string>

#include "src/cluster/cluster.hh"
#include "src/common/log.hh"
#include "src/sim/simulator.hh"

namespace pascal
{
namespace cluster
{

ServingSystem::ServingSystem(SystemConfig cfg) : cfg(std::move(cfg))
{
    this->cfg.validate();
}

RunResult
ServingSystem::run(const workload::Trace& trace) const
{
    sim::Simulator simulator;
    Cluster cluster(simulator, cfg);
    cluster.submitTrace(trace);
    simulator.run(cfg.maxSimTime);

    if (simulator.pendingEvents() > 0) {
        warn("simulation horizon (" + std::to_string(cfg.maxSimTime) +
             " s) hit with events pending");
    }

    RunResult result;
    result.perRequest = cluster.collectMetrics();
    result.aggregate = qoe::aggregateMetrics(result.perRequest);
    result.peakGpuKvTokens = cluster.maxPeakGpuKv();
    result.kvCapacityTokens = cluster.kvCapacityTokens();
    result.totalIterations = cluster.totalIterations();
    result.numUnfinished = cluster.numUnfinished();
    result.totalMigrations = cluster.totalMigrations();
    result.kvTransferLatencies = cluster.allKvTransferLatencies();
    result.schedulerName = cfg.schedulerName();
    result.placementName = cfg.placementName();

    if (result.numUnfinished > 0) {
        warn(std::to_string(result.numUnfinished) +
             " requests did not finish (infeasible trace or horizon)");
    }
    return result;
}

} // namespace cluster
} // namespace pascal
