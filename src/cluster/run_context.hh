/**
 * @file
 * RunContext: the wiring for one simulated serving run.
 *
 * A RunContext owns a fresh Simulator and Cluster built from one
 * SystemConfig, and knows how to score the finished simulation into a
 * RunResult. ServingSystem::run() is a thin convenience over it;
 * harnesses that need more control (stepping the clock, inspecting
 * instances mid-run, attaching extra probes before the run starts)
 * construct a RunContext directly. SweepRunner builds one per grid
 * point, so runs stay independent and bit-reproducible.
 */

#ifndef PASCAL_CLUSTER_RUN_CONTEXT_HH
#define PASCAL_CLUSTER_RUN_CONTEXT_HH

#include <memory>

#include "src/cluster/cluster.hh"
#include "src/cluster/serving_system.hh"
#include "src/cluster/system_config.hh"
#include "src/sim/simulator.hh"
#include "src/workload/trace.hh"

namespace pascal
{
namespace cluster
{

/** Simulator + cluster + scoring for exactly one run. */
class RunContext
{
  public:
    /** Build a fresh simulator and cluster from @p cfg (copied and
     *  validated). */
    explicit RunContext(const SystemConfig& cfg);

    /** Schedule every request of @p trace as an arrival event. */
    void submit(const workload::Trace& trace);

    /**
     * Drive the simulation until the queue drains or simulated time
     * would exceed @p until (default: the config's horizon). Can be
     * called repeatedly with growing horizons to step a run.
     *
     * @return Number of events executed.
     */
    std::uint64_t run(Time until = -1.0);

    /** Score the simulation into the facade's result type. Warns (as
     *  ServingSystem always did) if the horizon cut the run short —
     *  but not for mid-run inspection of a stepped run, where pending
     *  events and unfinished requests are expected. */
    RunResult result() const;

    /** One-shot convenience: submit, run, score. */
    static RunResult execute(const SystemConfig& cfg,
                             const workload::Trace& trace);

    sim::Simulator& simulator() { return sim; }
    Cluster& cluster() { return *clusterPtr; }
    const Cluster& cluster() const { return *clusterPtr; }
    const SystemConfig& config() const { return cfg; }

  private:
    SystemConfig cfg;
    sim::Simulator sim;
    std::unique_ptr<Cluster> clusterPtr;

    /** True once run() was asked to drive to the config horizon;
     *  gates the cut-short warnings in result(). */
    bool ranToHorizon = false;
};

} // namespace cluster
} // namespace pascal

#endif // PASCAL_CLUSTER_RUN_CONTEXT_HH
