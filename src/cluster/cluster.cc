#include "src/cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace cluster
{

Cluster::Cluster(sim::Simulator& sim, const SystemConfig& cfg)
    : sim(sim), cfg(cfg), perf(cfg.model, cfg.hardware)
{
    this->cfg.validate();

    TokenCount base = cfg.gpuKvCapacityTokens > 0
                          ? cfg.gpuKvCapacityTokens
                          : perf.gpuKvCapacityTokens();
    kvCapacity = static_cast<TokenCount>(
        std::llround(static_cast<double>(base) * cfg.kvCapacityFraction));
    if (kvCapacity <= 0)
        fatal("Cluster: resolved KV capacity is not positive");

    predictor = predict::makePredictor(cfg.predictor);
    placement = makePlacement(cfg.placement);
    placement->setPredictor(predictor.get());

    InstanceCallbacks callbacks;
    callbacks.onPhaseTransition = [this](workload::Request* r,
                                         InstanceId from) {
        onPhaseTransition(r, from);
    };
    // Completions are the online predictors' training signal; feeding
    // them from the cluster (not per instance) lets one predictor
    // learn from the whole deployment.
    callbacks.onFinished = [this](workload::Request* r, InstanceId) {
        if (predictor)
            predictor->observeCompletion(*r);
    };

    instances.reserve(cfg.numInstances);
    ingress.reserve(cfg.numInstances);
    for (InstanceId i = 0; i < cfg.numInstances; ++i) {
        instances.push_back(std::make_unique<Instance>(
            i, sim, perf, makeScheduler(cfg.scheduler, cfg.limits),
            kvCapacity, cfg.slo, callbacks, cfg.kvBlockSizeTokens));
        instances.back()->setPredictor(
            predictor.get(),
            cfg.placement == PlacementType::PascalPredictive);
        ingress.push_back(std::make_unique<model::Link>(
            sim, cfg.hardware.effFabricBandwidth(),
            "fabric-ingress-" + std::to_string(i)));
    }
}

void
Cluster::submitTrace(const workload::Trace& trace)
{
    trace.validate();
    requests.reserve(requests.size() + trace.size());
    for (const auto& spec : trace.requests) {
        requests.push_back(std::make_unique<workload::Request>(spec));
        workload::Request* req = requests.back().get();
        sim.at(spec.arrival, [this, req]() { onArrival(req); });
    }
}

core::ClusterView
Cluster::buildView(Time now) const
{
    core::ClusterView view;
    view.reserve(instances.size());
    for (const auto& inst : instances)
        view.push_back(inst->snapshot(now));
    return view;
}

void
Cluster::onArrival(workload::Request* req)
{
    core::ClusterView view = buildView(sim.now());
    InstanceId target = placement->placeNew(view, *req);
    if (target < 0 || target >= static_cast<InstanceId>(instances.size()))
        panic("placement returned invalid instance " +
              std::to_string(target));
    instances[target]->addRequest(req);
}

void
Cluster::onPhaseTransition(workload::Request* req, InstanceId from)
{
    core::ClusterView view = buildView(sim.now());
    InstanceId target = placement->placeTransition(view, *req, from);
    if (target < 0 || target >= static_cast<InstanceId>(instances.size()))
        panic("placement returned invalid instance " +
              std::to_string(target));

    if (target == from) {
        // Stay home: the intra-instance scheduler requeues the request
        // into its answering-phase (low-priority) machinery.
        instances[from]->scheduler().onPhaseTransition(req);
        return;
    }
    migrate(req, from, target);
}

void
Cluster::migrate(workload::Request* req, InstanceId from, InstanceId to)
{
    Time start = sim.now();
    instances[from]->detach(req);
    // Entering the answering phase restarts quantum accounting
    // regardless of which instance it lands on.
    req->resetQuantum();
    ++migrations;

    Bytes bytes = perf.kvBytes(req->kvTokens());
    ingress[to]->submit(bytes, [this, req, to, start]() {
        req->kvTransferLatencies.push_back(sim.now() - start);
        ++req->migrationCount;
        instances[to]->landMigration(req);
    });

    // The source may have capacity freed up; let it reschedule.
    instances[from]->kick();
}

std::vector<qoe::RequestMetrics>
Cluster::collectMetrics() const
{
    std::vector<qoe::RequestMetrics> out;
    out.reserve(requests.size());
    for (const auto& req : requests)
        out.push_back(qoe::computeRequestMetrics(*req, cfg.slo));
    return out;
}

std::size_t
Cluster::numUnfinished() const
{
    std::size_t n = 0;
    for (const auto& req : requests) {
        if (!req->finished())
            ++n;
    }
    return n;
}

TokenCount
Cluster::maxPeakGpuKv() const
{
    TokenCount peak = 0;
    for (const auto& inst : instances)
        peak = std::max(peak, inst->pool().peakGpuUsed());
    return peak;
}

std::uint64_t
Cluster::totalIterations() const
{
    std::uint64_t n = 0;
    for (const auto& inst : instances)
        n += inst->numIterations();
    return n;
}

std::vector<double>
Cluster::allKvTransferLatencies() const
{
    std::vector<double> out;
    for (const auto& link : ingress) {
        const auto& lat = link->transferLatencies();
        out.insert(out.end(), lat.begin(), lat.end());
    }
    return out;
}

} // namespace cluster
} // namespace pascal
