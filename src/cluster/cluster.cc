#include "src/cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace cluster
{

Cluster::Cluster(sim::Simulator& sim, const SystemConfig& cfg)
    : sim(sim), cfg(cfg), perf(cfg.model, cfg.hardware)
{
    this->cfg.validate();

    TokenCount base = cfg.gpuKvCapacityTokens > 0
                          ? cfg.gpuKvCapacityTokens
                          : perf.gpuKvCapacityTokens();
    kvCapacity = static_cast<TokenCount>(
        std::llround(static_cast<double>(base) * cfg.kvCapacityFraction));
    if (kvCapacity <= 0)
        fatal("Cluster: resolved KV capacity is not positive");

    predictor = predict::makePredictor(cfg.predictor);
    placement = makePlacement(cfg.placement);
    placement->setPredictor(predictor.get());

    InstanceCallbacks callbacks;
    callbacks.onPhaseTransition = [this](workload::Request* r,
                                         InstanceId from) {
        onPhaseTransition(r, from);
    };
    // Completions are the online predictors' training signal; feeding
    // them from the cluster (not per instance) lets one predictor
    // learn from the whole deployment.
    callbacks.onFinished = [this](workload::Request* r, InstanceId) {
        if (predictor)
            predictor->observeCompletion(*r);
        if (classesOn) {
            ++classCompletedCount[workload::sloClassIndex(
                r->spec().sloClass)];
        }
        noteRequestFinished(r);
    };
    // Deadline expiries deferred past an in-flight step re-enter the
    // class policy at the iteration boundary through this hook.
    callbacks.onDeadlineExpired = [this](workload::Request* r,
                                         InstanceId) {
        enforceExpiry(r);
    };
    classesOn = cfg.sloClasses.enabled;

    predictiveView = cfg.placement == PlacementType::PascalPredictive &&
                     predictor != nullptr;
    forceViewRebuild = cfg.forceViewRebuild ||
                       std::getenv("PASCAL_FORCE_VIEW") != nullptr;

    if (cfg.telemetry.traceEnabled) {
        trace =
            std::make_unique<obs::TraceSink>(cfg.telemetry.traceCapacity);
        trace->setReasonTable(core::planDeclineNames(),
                              core::numPlanDeclineNames());
    }
    if (cfg.telemetry.streamingMetrics) {
        // Streaming implies recycling: the sketch is what makes
        // retiring a chunk lossless for the aggregate report.
        chunkRecycling = true;
        streaming = std::make_unique<obs::StreamingMetrics>();
    }

    instances.reserve(cfg.numInstances);
    ingress.reserve(cfg.numInstances);
    view.resize(cfg.numInstances);
    sloRiskAt.assign(cfg.numInstances, kTimeInfinity);
    viewDirtyFlags.assign(cfg.numInstances, 0);
    // Dedup flags bound the list to one entry per instance, so it
    // never reallocates under the instances' feet.
    viewDirtyList.reserve(cfg.numInstances);
    for (InstanceId i = 0; i < cfg.numInstances; ++i) {
        instances.push_back(std::make_unique<Instance>(
            i, sim, perf, makeScheduler(cfg.scheduler, cfg.limits),
            kvCapacity, cfg.slo, callbacks, cfg.kvBlockSizeTokens));
        instances.back()->setSloClassConfig(cfg.sloClasses);
        instances.back()->setPredictor(
            predictor.get(),
            cfg.placement == PlacementType::PascalPredictive);
        instances.back()->setViewDirtyHook(&viewDirtyFlags[i],
                                           &viewDirtyList);
        ingress.push_back(std::make_unique<model::Link>(
            sim, cfg.hardware.effFabricBandwidth(),
            "fabric-ingress-" + std::to_string(i)));
    }

    if (cfg.fault.enabled) {
        // The injector only generates the seeded fault schedule; every
        // reaction routes back through the cluster's failover path.
        fault::FaultHooks hooks;
        hooks.onCrash = [this](InstanceId id) { crashInstance(id); };
        hooks.onRecover = [this](InstanceId id) { recoverInstance(id); };
        hooks.onDrainStart = [this](InstanceId id) { startDrain(id); };
        hooks.onDrainDeadline = [this](InstanceId id) {
            finishDrain(id);
        };
        hooks.onStragglerStart = [this](InstanceId id, double f) {
            setStraggler(id, f);
        };
        hooks.onStragglerEnd = [this](InstanceId id) {
            setStraggler(id, 1.0);
        };
        hooks.anyWorkLeft = [this] { return liveRequests > 0; };
        injector = std::make_unique<fault::FaultInjector>(
            sim, cfg.fault, cfg.numInstances, std::move(hooks));
    }

    // Stat registry: cluster-level rollups first, then one subtree
    // per instance. Registration order is dump order, so the dump is
    // deterministic by construction.
    registry.counter("cluster.view.refreshes", &viewRefreshes);
    registry.counter("cluster.view.builds", &viewBuilds);
    registry.counter("cluster.migrations", [this] {
        return static_cast<std::uint64_t>(migrations);
    });
    registry.counter("cluster.recycled_chunks", [this] {
        return static_cast<std::uint64_t>(requests.numRecycledChunks());
    });
    registry.counter("cluster.plan.builds",
                     [this] { return totalPlanBuilds(); });
    registry.counter("cluster.plan.repairs",
                     [this] { return totalPlanRepairs(); });
    registry.counter("cluster.plan.full_walks",
                     [this] { return totalFullWalks(); });
    registry.counter("cluster.slo.rekeys",
                     [this] { return totalSloHeapRekeys(); });
    // Failure accounting: registered unconditionally (all-zero rows
    // when the fault layer is off) so dashboards and the bench JSON
    // emitters see a stable schema.
    registry.counter("cluster.fault.crashes", &numCrashesCount);
    registry.counter("cluster.fault.drains", &numDrainsCount);
    registry.counter("cluster.fault.straggler_windows",
                     &stragglerWindowsCount);
    registry.counter("cluster.fault.link_failures", &linkFailuresCount);
    registry.counter("cluster.fault.retries", &retriesCount);
    registry.counter("cluster.fault.shed", &shedCount);
    registry.counter("cluster.fault.terminal_failures",
                     &terminalFailuresCount);
    // SLO-class accounting: registered unconditionally (all-zero rows
    // when the class layer is off) for the same stable-schema reason.
    for (std::size_t c = 0; c < workload::kNumSloClasses; ++c) {
        std::string p = std::string("cluster.slo.") +
                        workload::sloClassName(
                            static_cast<workload::SloClass>(c));
        registry.counter(p + ".submitted", &classSubmittedCount[c]);
        registry.counter(p + ".completed", &classCompletedCount[c]);
        registry.counter(p + ".shed", &classShedCount[c]);
        registry.counter(p + ".deadline_failed",
                         &classDeadlineFailedCount[c]);
        registry.counter(p + ".retry_failed",
                         &classRetryFailedCount[c]);
        registry.counter(p + ".demoted", &classDemotedCount[c]);
    }
    for (InstanceId i = 0; i < cfg.numInstances; ++i) {
        instances[static_cast<std::size_t>(i)]->registerStats(
            registry, "instance." + std::to_string(i));
        if (trace)
            instances[static_cast<std::size_t>(i)]->setTraceSink(
                trace.get());
    }
}

void
Cluster::submitTrace(const workload::Trace& trace)
{
    trace.validate();
    // One contiguous chunk per trace: submission is a single
    // allocation instead of one heap node per request.
    std::vector<workload::Request>& chunk = requests.addChunk(trace);
    auto chunk_idx =
        static_cast<std::int32_t>(requests.numChunks() - 1);
    chunkLive.push_back(chunk.size());
    retiredMetrics.emplace_back();
    chunkRetired.push_back(0);
    liveRequests += static_cast<std::int64_t>(chunk.size());
    // Consecutive same-timestamp requests become one burst event:
    // their placements and admissions drain back-to-back and the
    // instances' deferred plan boundaries coalesce to a single build
    // per burst member set.
    for (std::size_t i = 0; i < chunk.size();) {
        std::size_t j = i + 1;
        while (j < chunk.size() &&
               chunk[j].spec().arrival == chunk[i].spec().arrival) {
            ++j;
        }
        workload::Request* first = &chunk[i];
        auto n = static_cast<std::uint32_t>(j - i);
        for (std::size_t k = i; k < j; ++k)
            chunk[k].arenaChunk = chunk_idx;
        sim.at(first->spec().arrival,
               [this, first, n]() { onArrivals(first, n); });
        i = j;
    }
}

void
Cluster::refreshSnapshot(InstanceId id, Time now)
{
    const bool was_ok =
        view[static_cast<std::size_t>(id)].answeringSloOk;
    view[static_cast<std::size_t>(id)] =
        instances[static_cast<std::size_t>(id)]->snapshot(
            now, &sloRiskAt[static_cast<std::size_t>(id)]);
    viewDirtyFlags[static_cast<std::size_t>(id)] = 0;
    ++viewRefreshes;
    if (trace != nullptr && viewPrimed &&
        view[static_cast<std::size_t>(id)].answeringSloOk != was_ok) {
        // The paper's t_i verdict flipped for this instance — the
        // signal the adaptive placement override keys off.
        trace->instant(obs::TraceCat::Slo,
                       view[static_cast<std::size_t>(id)].answeringSloOk
                           ? obs::TraceName::SloOk
                           : obs::TraceName::SloViolated,
                       id, now);
    }
}

const core::ClusterView&
Cluster::buildView(Time now)
{
    ++viewBuilds;
    bool refreshed = false;
    if (forceViewRebuild || !viewPrimed ||
        (predictiveView &&
         predictor->version() != viewPredictorVersion)) {
        // Full rebuild: debug mode, first decision, or the shared
        // online predictor learned something (which silently moves
        // every instance's predicted footprint).
        for (InstanceId i = 0;
             i < static_cast<InstanceId>(instances.size()); ++i)
            refreshSnapshot(i, now);
        viewDirtyList.clear();
        viewPrimed = true;
        refreshed = true;
    } else {
        for (InstanceId id : viewDirtyList) {
            // Stale list entries can outlive their flag (a full
            // rebuild clears flags wholesale): the flag is the truth.
            if (viewDirtyFlags[static_cast<std::size_t>(id)] != 0) {
                refreshSnapshot(id, now);
                refreshed = true;
            }
        }
        viewDirtyList.clear();
        if (now >= minSloRiskAt) {
            // A cached "answering SLO ok" can sour purely by time
            // passing (mid-step): re-check every at-risk row.
            for (InstanceId i = 0;
                 i < static_cast<InstanceId>(instances.size()); ++i) {
                if (view[static_cast<std::size_t>(i)].answeringSloOk &&
                    now >= sloRiskAt[static_cast<std::size_t>(i)]) {
                    refreshSnapshot(i, now);
                    refreshed = true;
                }
            }
        }
    }
    if (refreshed) {
        minSloRiskAt = kTimeInfinity;
        for (std::size_t i = 0; i < view.size(); ++i) {
            if (view[i].answeringSloOk)
                minSloRiskAt = std::min(minSloRiskAt, sloRiskAt[i]);
        }
    }
    if (predictiveView)
        viewPredictorVersion = predictor->version();

    if (viewAudit) {
        for (std::size_t i = 0; i < instances.size(); ++i) {
            // The snapshot's t_i verdict rides the maintained SLO
            // heap; prove the heap itself matches a from-scratch
            // recomputation before trusting the snapshot compare.
            instances[i]->verifySloHeap(now);
            core::InstanceSnapshot fresh = instances[i]->snapshot(now);
            if (fresh != view[i]) {
                panic("incremental ClusterView diverged from fresh "
                      "snapshot of instance " +
                      std::to_string(instances[i]->id()) +
                      " at t=" + std::to_string(now));
            }
        }
    }
    return view;
}

void
Cluster::onArrivals(workload::Request* first, std::uint32_t n)
{
    // Placement stays strictly per-arrival: each decision sees the
    // previous members admitted (but not yet planned — burst
    // admission is a deliberate semantic improvement over the old
    // chain, which could plan member 1 alone before member 2 was
    // placed). What coalesces is the plan boundary — every kick() of
    // the burst dedupes into one deferred build per touched
    // instance.
    // Admission control under capacity loss: while the surviving
    // fraction of the fleet sits below the shed floor, new work is
    // rejected outright (terminal failure with an accounted reason)
    // so the survivors degrade to reduced goodput instead of
    // drowning in a backlog they can never clear.
    if (injector != nullptr && cfg.fault.shedFloor > 0.0 &&
        upFraction() < cfg.fault.shedFloor) {
        for (std::uint32_t i = 0; i < n; ++i) {
            ++shedCount;
            failTerminally(first + i, workload::FailReason::Shed);
        }
        return;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
        workload::Request* req = first + i;
        if (classesOn) {
            // The class layer owns the scheduler-visible rank: traces
            // may carry class annotations, but with classes off every
            // rank stays at its zero default and the schedulers'
            // class-rank comparator levels are inert.
            ++classSubmittedCount[workload::sloClassIndex(
                req->spec().sloClass)];
            req->schedClassRank =
                static_cast<std::uint8_t>(req->spec().sloClass);
            if (classAdmissionShed(req))
                continue;
            armDeadline(req);
        }
        const core::ClusterView& v = buildView(sim.now());
        InstanceId target = placement->placeNew(v, *req);
        if (target == kNoInstance && injector != nullptr) {
            // Whole fleet down/draining: hold the arrival in the
            // retry loop until capacity returns or its budget runs
            // out.
            requeueRequest(req);
            continue;
        }
        if (target < 0 ||
            target >= static_cast<InstanceId>(instances.size()))
            panic("placement returned invalid instance " +
                  std::to_string(target));
        if (n == 1)
            instances[target]->addRequest(req);
        else
            instances[target]->addRequestCoalesced(req);
    }
}

void
Cluster::noteRequestFinished(workload::Request* req)
{
    // A finished (or terminally failed) request's pending deadline
    // timeout must not fire into a dead pointer's state.
    if (classesOn && req->deadlineEventId != sim::kNoEvent) {
        sim.cancel(req->deadlineEventId);
        req->deadlineEventId = sim::kNoEvent;
    }
    --liveRequests;
    if (req->arenaChunk < 0)
        return;
    auto idx = static_cast<std::size_t>(req->arenaChunk);
    if (--chunkLive[idx] == 0 && chunkRecycling)
        retireChunk(idx);
}

void
Cluster::retireChunk(std::size_t idx)
{
    // Every request in the chunk is finished: it holds no KV, sits in
    // no scheduler queue or SLO heap, and was settled at its final
    // emission, so the scored rows are exactly what collectMetrics
    // would produce at teardown.
    std::vector<workload::Request>& chunk = requests.chunk(idx);
    if (streaming != nullptr) {
        // Streaming mode: fold each scored row into the sketches and
        // store nothing — this is what bounds soak-run memory.
        for (auto& req : chunk)
            streaming->fold(qoe::computeRequestMetrics(req, cfg.slo, &cfg.sloClasses));
    } else {
        std::vector<qoe::RequestMetrics>& out = retiredMetrics[idx];
        out.reserve(chunk.size());
        for (auto& req : chunk)
            out.push_back(qoe::computeRequestMetrics(req, cfg.slo, &cfg.sloClasses));
    }
    chunkRetired[idx] = 1;
    requests.recycleChunk(idx);
}

void
Cluster::onPhaseTransition(workload::Request* req, InstanceId from)
{
    const core::ClusterView& v = buildView(sim.now());
    InstanceId target = placement->placeTransition(v, *req, from);
    if (target < 0 || target >= static_cast<InstanceId>(instances.size()))
        panic("placement returned invalid instance " +
              std::to_string(target));

    if (trace != nullptr) {
        trace->instant(obs::TraceCat::Phase,
                       target == from ? obs::TraceName::PhaseStay
                                      : obs::TraceName::PhaseMigrate,
                       from, sim.now(), obs::TraceArg::Request,
                       static_cast<std::int64_t>(req->id()));
    }
    if (target == from) {
        // Stay home: the intra-instance scheduler requeues the request
        // into its answering-phase (low-priority) machinery.
        instances[from]->stayHomeTransition(req);
        return;
    }
    migrate(req, from, target);
}

void
Cluster::migrate(workload::Request* req, InstanceId from, InstanceId to)
{
    Time start = sim.now();
    instances[from]->detach(req);
    // Entering the answering phase restarts quantum accounting
    // regardless of which instance it lands on.
    req->resetQuantum();
    ++migrations;

    if (trace != nullptr) {
        // Async span on the target's track: begin at detach, end when
        // the KV lands over the fabric ingress link.
        trace->asyncBegin(obs::TraceCat::Migration,
                          obs::TraceName::KvTransfer, to, start,
                          static_cast<std::uint64_t>(req->id()),
                          obs::TraceArg::Tokens,
                          static_cast<std::int64_t>(req->kvTokens()));
    }
    Bytes bytes = perf.kvBytes(req->kvTokens());
    std::uint64_t nonce =
        injector != nullptr ? ++req->transferNonce : 0;
    ingress[to]->submit(bytes, [this, req, to, start, nonce]() {
        if (injector != nullptr) {
            // The transfer can abort in flight: a seeded link failure
            // (stateless per-attempt draw) or the destination crashing
            // while the KV was on the wire. Either way the request is
            // re-queued through the backoff retry path.
            bool link_fail = injector->drawLinkFailure(req->id(), nonce);
            if (link_fail || !instances[to]->isUp()) {
                if (link_fail) {
                    ++linkFailuresCount;
                    if (trace != nullptr) {
                        trace->instant(
                            obs::TraceCat::Fault,
                            obs::TraceName::LinkFail, to, sim.now(),
                            obs::TraceArg::Request,
                            static_cast<std::int64_t>(req->id()));
                    }
                }
                if (trace != nullptr) {
                    trace->asyncEnd(
                        obs::TraceCat::Migration,
                        obs::TraceName::KvTransfer, to, sim.now(),
                        static_cast<std::uint64_t>(req->id()));
                }
                requeueRequest(req);
                return;
            }
        }
        if (req->deadlineExpired && interceptExpired(req)) {
            // Expired while the KV was on the wire: the transfer
            // completes (span closed) but the request never lands.
            if (trace != nullptr) {
                trace->asyncEnd(obs::TraceCat::Migration,
                                obs::TraceName::KvTransfer, to,
                                sim.now(),
                                static_cast<std::uint64_t>(req->id()));
            }
            return;
        }
        req->kvTransferLatencies.push_back(sim.now() - start);
        ++req->migrationCount;
        if (trace != nullptr) {
            trace->asyncEnd(obs::TraceCat::Migration,
                            obs::TraceName::KvTransfer, to, sim.now(),
                            static_cast<std::uint64_t>(req->id()));
        }
        instances[to]->landMigration(req);
    });

    // The source may have capacity freed up; let it reschedule.
    instances[from]->kick();
}

double
Cluster::upFraction() const
{
    int up = 0;
    for (const auto& inst : instances) {
        if (inst->isUp() && !inst->isDraining())
            ++up;
    }
    return static_cast<double>(up) /
           static_cast<double>(instances.size());
}

double
Cluster::freeGpuKvFraction() const
{
    TokenCount free_tokens = 0;
    TokenCount cap = 0;
    for (const auto& inst : instances) {
        if (!inst->isUp() || inst->isDraining())
            continue;
        free_tokens += inst->pool().gpuFree();
        cap += inst->pool().gpuCapacity();
    }
    if (cap <= 0)
        return 0.0;
    return static_cast<double>(free_tokens) /
           static_cast<double>(cap);
}

bool
Cluster::classAdmissionShed(workload::Request* req)
{
    if (!cfg.sloClasses.overloadControl)
        return false;
    const qoe::SloClassParams& p =
        cfg.sloClasses.of(req->spec().sloClass);
    bool shed = false;
    if (p.shedUpFloor > 0.0 && upFraction() < p.shedUpFloor)
        shed = true;
    if (!shed && p.shedKvFloor > 0.0 &&
        freeGpuKvFraction() < p.shedKvFloor) {
        shed = true;
    }
    if (!shed && cfg.sloClasses.shedOnNegativeSlack &&
        p.relativeDeadline > 0.0) {
        // Optimistic completion bound: one clean prefill pass plus a
        // batch-1 decode step per remaining token on an otherwise idle
        // instance. If even that misses the deadline, admitting the
        // request wastes capacity the surviving classes need.
        const workload::RequestSpec& s = req->spec();
        TokenCount to_generate = s.reasoningTokens + s.answerTokens;
        Time lower = perf.mixedStepLatency(s.promptTokens, 0, 0) +
                     static_cast<double>(to_generate) *
                         perf.mixedStepLatency(0, 1, s.promptTokens);
        shed = lower > p.relativeDeadline;
    }
    if (!shed)
        return false;
    ++shedCount;
    if (trace != nullptr) {
        trace->instant(obs::TraceCat::Admission,
                       obs::TraceName::ClassShed,
                       obs::TraceSink::kClusterTrack, sim.now(),
                       obs::TraceArg::Request,
                       static_cast<std::int64_t>(req->id()));
    }
    failTerminally(req, workload::FailReason::Shed);
    return true;
}

void
Cluster::armDeadline(workload::Request* req)
{
    if (!cfg.sloClasses.enforceDeadlines)
        return;
    Time rel = cfg.sloClasses.of(req->spec().sloClass).relativeDeadline;
    if (rel <= 0.0)
        return;
    req->deadlineEventId =
        sim.after(rel, [this, req] { onDeadlineFire(req); });
}

void
Cluster::onDeadlineFire(workload::Request* req)
{
    req->deadlineEventId = sim::kNoEvent;
    if (req->finished() || req->exec == workload::ExecState::Done)
        return;
    req->deadlineExpired = true;
    if (trace != nullptr) {
        trace->instant(obs::TraceCat::Slo,
                       obs::TraceName::DeadlineExceeded,
                       obs::TraceSink::kClusterTrack, sim.now(),
                       obs::TraceArg::Request,
                       static_cast<std::int64_t>(req->id()));
    }
    enforceExpiry(req);
}

void
Cluster::enforceExpiry(workload::Request* req)
{
    using workload::ExecState;
    if (req->finished() || req->exec == ExecState::Done ||
        !req->deadlineExpired) {
        return;
    }
    bool hosted = req->exec == ExecState::WaitingNew ||
                  req->exec == ExecState::ResidentGpu ||
                  req->exec == ExecState::SwappedCpu;
    Instance* inst = nullptr;
    if (hosted) {
        inst = instances[static_cast<std::size_t>(req->home)].get();
        if (inst->hasStepInFlight()) {
            // Mid-step: the in-flight plan's vectors still reference
            // the request, so ripping it out now would corrupt the
            // step completion. The instance parks the expiry and
            // replays it through this handler at the boundary.
            inst->noteDeadlineExpired(req);
            return;
        }
    }
    if (cfg.sloClasses.of(req->spec().sloClass).demoteOnExpiry) {
        if (req->bestEffort)
            return; // Already demoted (double-fire safe).
        ++classDemotedCount[workload::sloClassIndex(
            req->spec().sloClass)];
        if (trace != nullptr) {
            trace->instant(obs::TraceCat::Slo, obs::TraceName::Demoted,
                           obs::TraceSink::kClusterTrack, sim.now(),
                           obs::TraceArg::Request,
                           static_cast<std::int64_t>(req->id()));
        }
        if (hosted) {
            inst->demoteBestEffort(req);
            inst->kick();
        } else {
            // InTransit/Unassigned: flag only — the landing or retry
            // admission re-keys it under the best-effort rank.
            req->bestEffort = true;
            req->schedClassRank = workload::kBestEffortClassRank;
        }
        return;
    }
    if (hosted) {
        // Real timeout: reclaim the KV through the same detach path a
        // migration uses, fail the request, and let the instance
        // reschedule into the freed capacity.
        inst->detach(req);
        failTerminally(req, workload::FailReason::DeadlineExceeded);
        inst->kick();
        return;
    }
    if (req->exec == ExecState::Unassigned) {
        failTerminally(req, workload::FailReason::DeadlineExceeded);
        return;
    }
    // InTransit (KV on the wire, or backoff pending): the landing and
    // retry guards enforce the expiry when the request next touches
    // ground, so nothing rips state out from under the transfer.
}

bool
Cluster::interceptExpired(workload::Request* req)
{
    if (!classesOn || !req->deadlineExpired ||
        req->exec == workload::ExecState::Done) {
        return false;
    }
    if (cfg.sloClasses.of(req->spec().sloClass).demoteOnExpiry)
        return false;
    failTerminally(req, workload::FailReason::DeadlineExceeded);
    return true;
}

void
Cluster::crashInstance(InstanceId id)
{
    ++numCrashesCount;
    crashImpl(id, obs::TraceName::Crash);
}

void
Cluster::recoverInstance(InstanceId id)
{
    if (injector == nullptr)
        panic("fault API needs cfg.fault.enabled");
    if (trace != nullptr) {
        trace->instant(obs::TraceCat::Fault, obs::TraceName::Recover,
                       id, sim.now());
    }
    instances[static_cast<std::size_t>(id)]->recover();
}

void
Cluster::startDrain(InstanceId id)
{
    if (injector == nullptr)
        panic("fault API needs cfg.fault.enabled");
    ++numDrainsCount;
    if (trace != nullptr) {
        trace->instant(obs::TraceCat::Fault, obs::TraceName::DrainStart,
                       id, sim.now());
    }
    instances[static_cast<std::size_t>(id)]->setDraining(true);
}

void
Cluster::finishDrain(InstanceId id)
{
    crashImpl(id, obs::TraceName::DrainDeadline);
}

void
Cluster::setStraggler(InstanceId id, double factor)
{
    if (injector == nullptr)
        panic("fault API needs cfg.fault.enabled");
    if (factor != 1.0) {
        ++stragglerWindowsCount;
        if (trace != nullptr) {
            trace->instant(obs::TraceCat::Fault,
                           obs::TraceName::StragglerStart, id,
                           sim.now(), obs::TraceArg::Value,
                           static_cast<std::int64_t>(
                               std::llround(factor * 1000.0)));
        }
    } else if (trace != nullptr) {
        trace->instant(obs::TraceCat::Fault,
                       obs::TraceName::StragglerEnd, id, sim.now());
    }
    instances[static_cast<std::size_t>(id)]->setPerfScale(factor);
}

void
Cluster::crashImpl(InstanceId id, obs::TraceName why)
{
    if (injector == nullptr)
        panic("fault API needs cfg.fault.enabled");
    if (trace != nullptr)
        trace->instant(obs::TraceCat::Fault, why, id, sim.now());
    orphanScratch.clear();
    instances[static_cast<std::size_t>(id)]->crash(
        cfg.fault.preserveCpuKv, orphanScratch);
    // Re-queue in detach order (deterministic: the hosted walk is
    // insertion-ordered), so same-seed replays place the orphans
    // identically.
    for (auto* r : orphanScratch)
        requeueRequest(r);
    orphanScratch.clear();
}

void
Cluster::requeueRequest(workload::Request* req)
{
    using workload::ExecState;
    // An expired fail-policy request re-entering the retry loop (crash
    // orphan, aborted transfer, no-capacity arrival) fails here rather
    // than burning backoff cycles it can never use.
    if (interceptExpired(req))
        return;
    if (req->exec == ExecState::Unassigned) {
        // Never admitted anywhere (placement found no live target):
        // start the wait clock; the interval books Blocked on the
        // eventual admit.
        req->resetAccrual(sim.now(), workload::BucketKind::Blocked);
        req->exec = ExecState::InTransit;
    }
    if (req->retryCount >= cfg.fault.retryBudget) {
        failTerminally(req, workload::FailReason::RetryBudget);
        return;
    }
    ++req->retryCount;
    ++retriesCount;
    if (trace != nullptr) {
        trace->instant(obs::TraceCat::Retry,
                       obs::TraceName::RetryScheduled,
                       obs::TraceSink::kClusterTrack, sim.now(),
                       obs::TraceArg::Request,
                       static_cast<std::int64_t>(req->id()));
    }
    Time delay = fault::backoffDelay(cfg.fault, req->retryCount - 1);
    sim.after(delay, [this, req] { retryPlace(req); });
}

void
Cluster::retryPlace(workload::Request* req)
{
    // The deadline can expire mid-backoff (the request is InTransit,
    // owned by nobody); enforcement waits here, at the wakeup.
    if (interceptExpired(req))
        return;
    const core::ClusterView& v = buildView(sim.now());
    InstanceId target = placement->placeNew(v, *req);
    if (target == kNoInstance) {
        // Still no live capacity; the retry budget bounds this loop.
        requeueRequest(req);
        return;
    }
    if (target < 0 ||
        target >= static_cast<InstanceId>(instances.size()))
        panic("placement returned invalid instance " +
              std::to_string(target));
    if (!req->prefillDone) {
        // No KV to restore: plain re-admission (prefill will rerun).
        instances[static_cast<std::size_t>(target)]->addRequest(req);
        return;
    }
    restoreKv(req, target);
}

void
Cluster::restoreKv(workload::Request* req, InstanceId to)
{
    // Failover restore: the request's KV is re-materialized over the
    // target's fabric ingress link, as if fetched from a host-side
    // replica — the same transfer model as a migration, including the
    // possibility of a link failure or the target crashing mid-
    // transfer.
    Time start = sim.now();
    if (trace != nullptr) {
        trace->asyncBegin(obs::TraceCat::Migration,
                          obs::TraceName::KvTransfer, to, start,
                          static_cast<std::uint64_t>(req->id()),
                          obs::TraceArg::Tokens,
                          static_cast<std::int64_t>(req->kvTokens()));
    }
    Bytes bytes = perf.kvBytes(req->kvTokens());
    std::uint64_t nonce = ++req->transferNonce;
    ingress[static_cast<std::size_t>(to)]->submit(
        bytes, [this, req, to, start, nonce]() {
            bool link_fail =
                injector->drawLinkFailure(req->id(), nonce);
            if (link_fail || !instances[to]->isUp()) {
                if (link_fail) {
                    ++linkFailuresCount;
                    if (trace != nullptr) {
                        trace->instant(
                            obs::TraceCat::Fault,
                            obs::TraceName::LinkFail, to, sim.now(),
                            obs::TraceArg::Request,
                            static_cast<std::int64_t>(req->id()));
                    }
                }
                if (trace != nullptr) {
                    trace->asyncEnd(
                        obs::TraceCat::Migration,
                        obs::TraceName::KvTransfer, to, sim.now(),
                        static_cast<std::uint64_t>(req->id()));
                }
                requeueRequest(req);
                return;
            }
            if (req->deadlineExpired && interceptExpired(req)) {
                if (trace != nullptr) {
                    trace->asyncEnd(
                        obs::TraceCat::Migration,
                        obs::TraceName::KvTransfer, to, sim.now(),
                        static_cast<std::uint64_t>(req->id()));
                }
                return;
            }
            req->kvTransferLatencies.push_back(sim.now() - start);
            if (trace != nullptr) {
                trace->asyncEnd(obs::TraceCat::Migration,
                                obs::TraceName::KvTransfer, to,
                                sim.now(),
                                static_cast<std::uint64_t>(req->id()));
            }
            instances[static_cast<std::size_t>(to)]->landMigration(req);
        });
}

void
Cluster::failTerminally(workload::Request* req,
                        workload::FailReason reason)
{
    using workload::ExecState;
    // Shed arrivals never started an accrual cursor; displaced
    // requests settle their final wait interval before release.
    if (req->exec == ExecState::InTransit)
        req->settleAccrual(sim.now());
    req->failReason = reason;
    req->exec = ExecState::Done;
    ++terminalFailuresCount;
    if (classesOn) {
        auto ci = workload::sloClassIndex(req->spec().sloClass);
        switch (reason) {
          case workload::FailReason::Shed:
            ++classShedCount[ci];
            break;
          case workload::FailReason::DeadlineExceeded:
            ++classDeadlineFailedCount[ci];
            break;
          default:
            ++classRetryFailedCount[ci];
            break;
        }
    }
    if (trace != nullptr) {
        trace->instant(obs::TraceCat::Retry,
                       reason == workload::FailReason::Shed
                           ? obs::TraceName::Shed
                           : obs::TraceName::TerminalFail,
                       obs::TraceSink::kClusterTrack, sim.now(),
                       obs::TraceArg::Request,
                       static_cast<std::int64_t>(req->id()));
    }
    // No predictor->observeCompletion: a failed request generated no
    // terminal length signal to learn from.
    noteRequestFinished(req);
}

std::vector<qoe::RequestMetrics>
Cluster::collectMetrics() const
{
    std::vector<qoe::RequestMetrics> out;
    out.reserve(requests.size());
    Time now = sim.now();
    for (std::size_t c = 0; c < requests.numChunks(); ++c) {
        const std::vector<qoe::RequestMetrics>& retired =
            retiredMetrics[c];
        if (!retired.empty()) {
            // Recycled chunk: the rows were scored (in chunk order)
            // the moment its last request finished.
            out.insert(out.end(), retired.begin(), retired.end());
            continue;
        }
        for (auto& req : requests.chunk(c)) {
            // Observation point: settle lazily accrued phase time for
            // requests still in flight (finished requests settled at
            // their final emission; unarrived ones have nothing
            // accrued).
            if (!req.finished() &&
                req.exec != workload::ExecState::Unassigned &&
                req.exec != workload::ExecState::Done) {
                req.settleAccrual(now);
            }
            out.push_back(qoe::computeRequestMetrics(req, cfg.slo, &cfg.sloClasses));
        }
    }
    return out;
}

std::size_t
Cluster::numUnfinished() const
{
    std::size_t n = 0;
    requests.forEach([&](const workload::Request& req) {
        if (!req.finished())
            ++n;
    });
    return n;
}

TokenCount
Cluster::maxPeakGpuKv() const
{
    TokenCount peak = 0;
    for (const auto& inst : instances)
        peak = std::max(peak, inst->pool().peakGpuUsed());
    return peak;
}

std::uint64_t
Cluster::totalIterations() const
{
    std::uint64_t n = 0;
    for (const auto& inst : instances)
        n += inst->numIterations();
    return n;
}

std::uint64_t
Cluster::totalPlanBuilds() const
{
    std::uint64_t n = 0;
    for (const auto& inst : instances)
        n += inst->numPlanBuilds();
    return n;
}

std::uint64_t
Cluster::totalPlanRepairs() const
{
    std::uint64_t n = 0;
    for (const auto& inst : instances)
        n += inst->numPlanRepairs();
    return n;
}

std::uint64_t
Cluster::totalFullWalks() const
{
    std::uint64_t n = 0;
    for (const auto& inst : instances)
        n += inst->numFullWalks();
    return n;
}

std::uint64_t
Cluster::totalSloHeapRekeys() const
{
    std::uint64_t n = 0;
    for (const auto& inst : instances)
        n += inst->numSloHeapRekeys();
    return n;
}

std::shared_ptr<const obs::StreamingMetrics>
Cluster::finalStreamingMetrics() const
{
    if (streaming == nullptr)
        return nullptr;
    // Copy the running sketch, then fold every chunk that has not
    // retired — its rows were never folded. Same settle-then-score
    // walk as collectMetrics, so both modes cover the identical
    // population.
    auto snap = std::make_shared<obs::StreamingMetrics>(*streaming);
    Time now = sim.now();
    for (std::size_t c = 0; c < requests.numChunks(); ++c) {
        if (chunkRetired[c] != 0)
            continue;
        for (auto& req : requests.chunk(c)) {
            if (!req.finished() &&
                req.exec != workload::ExecState::Unassigned &&
                req.exec != workload::ExecState::Done) {
                req.settleAccrual(now);
            }
            snap->fold(qoe::computeRequestMetrics(req, cfg.slo, &cfg.sloClasses));
        }
    }
    return snap;
}

std::vector<double>
Cluster::allKvTransferLatencies() const
{
    std::vector<double> out;
    for (const auto& link : ingress) {
        const auto& lat = link->transferLatencies();
        out.insert(out.end(), lat.begin(), lat.end());
    }
    return out;
}

} // namespace cluster
} // namespace pascal
