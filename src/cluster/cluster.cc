#include "src/cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace cluster
{

Cluster::Cluster(sim::Simulator& sim, const SystemConfig& cfg)
    : sim(sim), cfg(cfg), perf(cfg.model, cfg.hardware)
{
    this->cfg.validate();

    TokenCount base = cfg.gpuKvCapacityTokens > 0
                          ? cfg.gpuKvCapacityTokens
                          : perf.gpuKvCapacityTokens();
    kvCapacity = static_cast<TokenCount>(
        std::llround(static_cast<double>(base) * cfg.kvCapacityFraction));
    if (kvCapacity <= 0)
        fatal("Cluster: resolved KV capacity is not positive");

    predictor = predict::makePredictor(cfg.predictor);
    placement = makePlacement(cfg.placement);
    placement->setPredictor(predictor.get());

    InstanceCallbacks callbacks;
    callbacks.onPhaseTransition = [this](workload::Request* r,
                                         InstanceId from) {
        onPhaseTransition(r, from);
    };
    // Completions are the online predictors' training signal; feeding
    // them from the cluster (not per instance) lets one predictor
    // learn from the whole deployment.
    callbacks.onFinished = [this](workload::Request* r, InstanceId) {
        if (predictor)
            predictor->observeCompletion(*r);
        noteRequestFinished(r);
    };

    predictiveView = cfg.placement == PlacementType::PascalPredictive &&
                     predictor != nullptr;
    forceViewRebuild = cfg.forceViewRebuild ||
                       std::getenv("PASCAL_FORCE_VIEW") != nullptr;

    if (cfg.telemetry.traceEnabled) {
        trace =
            std::make_unique<obs::TraceSink>(cfg.telemetry.traceCapacity);
        trace->setReasonTable(core::planDeclineNames(),
                              core::numPlanDeclineNames());
    }
    if (cfg.telemetry.streamingMetrics) {
        // Streaming implies recycling: the sketch is what makes
        // retiring a chunk lossless for the aggregate report.
        chunkRecycling = true;
        streaming = std::make_unique<obs::StreamingMetrics>();
    }

    instances.reserve(cfg.numInstances);
    ingress.reserve(cfg.numInstances);
    view.resize(cfg.numInstances);
    sloRiskAt.assign(cfg.numInstances, kTimeInfinity);
    viewDirtyFlags.assign(cfg.numInstances, 0);
    // Dedup flags bound the list to one entry per instance, so it
    // never reallocates under the instances' feet.
    viewDirtyList.reserve(cfg.numInstances);
    for (InstanceId i = 0; i < cfg.numInstances; ++i) {
        instances.push_back(std::make_unique<Instance>(
            i, sim, perf, makeScheduler(cfg.scheduler, cfg.limits),
            kvCapacity, cfg.slo, callbacks, cfg.kvBlockSizeTokens));
        instances.back()->setPredictor(
            predictor.get(),
            cfg.placement == PlacementType::PascalPredictive);
        instances.back()->setViewDirtyHook(&viewDirtyFlags[i],
                                           &viewDirtyList);
        ingress.push_back(std::make_unique<model::Link>(
            sim, cfg.hardware.effFabricBandwidth(),
            "fabric-ingress-" + std::to_string(i)));
    }

    // Stat registry: cluster-level rollups first, then one subtree
    // per instance. Registration order is dump order, so the dump is
    // deterministic by construction.
    registry.counter("cluster.view.refreshes", &viewRefreshes);
    registry.counter("cluster.view.builds", &viewBuilds);
    registry.counter("cluster.migrations", [this] {
        return static_cast<std::uint64_t>(migrations);
    });
    registry.counter("cluster.recycled_chunks", [this] {
        return static_cast<std::uint64_t>(requests.numRecycledChunks());
    });
    registry.counter("cluster.plan.builds",
                     [this] { return totalPlanBuilds(); });
    registry.counter("cluster.plan.repairs",
                     [this] { return totalPlanRepairs(); });
    registry.counter("cluster.plan.full_walks",
                     [this] { return totalFullWalks(); });
    registry.counter("cluster.slo.rekeys",
                     [this] { return totalSloHeapRekeys(); });
    for (InstanceId i = 0; i < cfg.numInstances; ++i) {
        instances[static_cast<std::size_t>(i)]->registerStats(
            registry, "instance." + std::to_string(i));
        if (trace)
            instances[static_cast<std::size_t>(i)]->setTraceSink(
                trace.get());
    }
}

void
Cluster::submitTrace(const workload::Trace& trace)
{
    trace.validate();
    // One contiguous chunk per trace: submission is a single
    // allocation instead of one heap node per request.
    std::vector<workload::Request>& chunk = requests.addChunk(trace);
    auto chunk_idx =
        static_cast<std::int32_t>(requests.numChunks() - 1);
    chunkLive.push_back(chunk.size());
    retiredMetrics.emplace_back();
    chunkRetired.push_back(0);
    // Consecutive same-timestamp requests become one burst event:
    // their placements and admissions drain back-to-back and the
    // instances' deferred plan boundaries coalesce to a single build
    // per burst member set.
    for (std::size_t i = 0; i < chunk.size();) {
        std::size_t j = i + 1;
        while (j < chunk.size() &&
               chunk[j].spec().arrival == chunk[i].spec().arrival) {
            ++j;
        }
        workload::Request* first = &chunk[i];
        auto n = static_cast<std::uint32_t>(j - i);
        for (std::size_t k = i; k < j; ++k)
            chunk[k].arenaChunk = chunk_idx;
        sim.at(first->spec().arrival,
               [this, first, n]() { onArrivals(first, n); });
        i = j;
    }
}

void
Cluster::refreshSnapshot(InstanceId id, Time now)
{
    const bool was_ok =
        view[static_cast<std::size_t>(id)].answeringSloOk;
    view[static_cast<std::size_t>(id)] =
        instances[static_cast<std::size_t>(id)]->snapshot(
            now, &sloRiskAt[static_cast<std::size_t>(id)]);
    viewDirtyFlags[static_cast<std::size_t>(id)] = 0;
    ++viewRefreshes;
    if (trace != nullptr && viewPrimed &&
        view[static_cast<std::size_t>(id)].answeringSloOk != was_ok) {
        // The paper's t_i verdict flipped for this instance — the
        // signal the adaptive placement override keys off.
        trace->instant(obs::TraceCat::Slo,
                       view[static_cast<std::size_t>(id)].answeringSloOk
                           ? obs::TraceName::SloOk
                           : obs::TraceName::SloViolated,
                       id, now);
    }
}

const core::ClusterView&
Cluster::buildView(Time now)
{
    ++viewBuilds;
    bool refreshed = false;
    if (forceViewRebuild || !viewPrimed ||
        (predictiveView &&
         predictor->version() != viewPredictorVersion)) {
        // Full rebuild: debug mode, first decision, or the shared
        // online predictor learned something (which silently moves
        // every instance's predicted footprint).
        for (InstanceId i = 0;
             i < static_cast<InstanceId>(instances.size()); ++i)
            refreshSnapshot(i, now);
        viewDirtyList.clear();
        viewPrimed = true;
        refreshed = true;
    } else {
        for (InstanceId id : viewDirtyList) {
            // Stale list entries can outlive their flag (a full
            // rebuild clears flags wholesale): the flag is the truth.
            if (viewDirtyFlags[static_cast<std::size_t>(id)] != 0) {
                refreshSnapshot(id, now);
                refreshed = true;
            }
        }
        viewDirtyList.clear();
        if (now >= minSloRiskAt) {
            // A cached "answering SLO ok" can sour purely by time
            // passing (mid-step): re-check every at-risk row.
            for (InstanceId i = 0;
                 i < static_cast<InstanceId>(instances.size()); ++i) {
                if (view[static_cast<std::size_t>(i)].answeringSloOk &&
                    now >= sloRiskAt[static_cast<std::size_t>(i)]) {
                    refreshSnapshot(i, now);
                    refreshed = true;
                }
            }
        }
    }
    if (refreshed) {
        minSloRiskAt = kTimeInfinity;
        for (std::size_t i = 0; i < view.size(); ++i) {
            if (view[i].answeringSloOk)
                minSloRiskAt = std::min(minSloRiskAt, sloRiskAt[i]);
        }
    }
    if (predictiveView)
        viewPredictorVersion = predictor->version();

    if (viewAudit) {
        for (std::size_t i = 0; i < instances.size(); ++i) {
            // The snapshot's t_i verdict rides the maintained SLO
            // heap; prove the heap itself matches a from-scratch
            // recomputation before trusting the snapshot compare.
            instances[i]->verifySloHeap(now);
            core::InstanceSnapshot fresh = instances[i]->snapshot(now);
            if (fresh != view[i]) {
                panic("incremental ClusterView diverged from fresh "
                      "snapshot of instance " +
                      std::to_string(instances[i]->id()) +
                      " at t=" + std::to_string(now));
            }
        }
    }
    return view;
}

void
Cluster::onArrivals(workload::Request* first, std::uint32_t n)
{
    // Placement stays strictly per-arrival: each decision sees the
    // previous members admitted (but not yet planned — burst
    // admission is a deliberate semantic improvement over the old
    // chain, which could plan member 1 alone before member 2 was
    // placed). What coalesces is the plan boundary — every kick() of
    // the burst dedupes into one deferred build per touched
    // instance.
    for (std::uint32_t i = 0; i < n; ++i) {
        workload::Request* req = first + i;
        const core::ClusterView& v = buildView(sim.now());
        InstanceId target = placement->placeNew(v, *req);
        if (target < 0 ||
            target >= static_cast<InstanceId>(instances.size()))
            panic("placement returned invalid instance " +
                  std::to_string(target));
        if (n == 1)
            instances[target]->addRequest(req);
        else
            instances[target]->addRequestCoalesced(req);
    }
}

void
Cluster::noteRequestFinished(workload::Request* req)
{
    if (req->arenaChunk < 0)
        return;
    auto idx = static_cast<std::size_t>(req->arenaChunk);
    if (--chunkLive[idx] == 0 && chunkRecycling)
        retireChunk(idx);
}

void
Cluster::retireChunk(std::size_t idx)
{
    // Every request in the chunk is finished: it holds no KV, sits in
    // no scheduler queue or SLO heap, and was settled at its final
    // emission, so the scored rows are exactly what collectMetrics
    // would produce at teardown.
    std::vector<workload::Request>& chunk = requests.chunk(idx);
    if (streaming != nullptr) {
        // Streaming mode: fold each scored row into the sketches and
        // store nothing — this is what bounds soak-run memory.
        for (auto& req : chunk)
            streaming->fold(qoe::computeRequestMetrics(req, cfg.slo));
    } else {
        std::vector<qoe::RequestMetrics>& out = retiredMetrics[idx];
        out.reserve(chunk.size());
        for (auto& req : chunk)
            out.push_back(qoe::computeRequestMetrics(req, cfg.slo));
    }
    chunkRetired[idx] = 1;
    requests.recycleChunk(idx);
}

void
Cluster::onPhaseTransition(workload::Request* req, InstanceId from)
{
    const core::ClusterView& v = buildView(sim.now());
    InstanceId target = placement->placeTransition(v, *req, from);
    if (target < 0 || target >= static_cast<InstanceId>(instances.size()))
        panic("placement returned invalid instance " +
              std::to_string(target));

    if (trace != nullptr) {
        trace->instant(obs::TraceCat::Phase,
                       target == from ? obs::TraceName::PhaseStay
                                      : obs::TraceName::PhaseMigrate,
                       from, sim.now(), obs::TraceArg::Request,
                       static_cast<std::int64_t>(req->id()));
    }
    if (target == from) {
        // Stay home: the intra-instance scheduler requeues the request
        // into its answering-phase (low-priority) machinery.
        instances[from]->stayHomeTransition(req);
        return;
    }
    migrate(req, from, target);
}

void
Cluster::migrate(workload::Request* req, InstanceId from, InstanceId to)
{
    Time start = sim.now();
    instances[from]->detach(req);
    // Entering the answering phase restarts quantum accounting
    // regardless of which instance it lands on.
    req->resetQuantum();
    ++migrations;

    if (trace != nullptr) {
        // Async span on the target's track: begin at detach, end when
        // the KV lands over the fabric ingress link.
        trace->asyncBegin(obs::TraceCat::Migration,
                          obs::TraceName::KvTransfer, to, start,
                          static_cast<std::uint64_t>(req->id()),
                          obs::TraceArg::Tokens,
                          static_cast<std::int64_t>(req->kvTokens()));
    }
    Bytes bytes = perf.kvBytes(req->kvTokens());
    ingress[to]->submit(bytes, [this, req, to, start]() {
        req->kvTransferLatencies.push_back(sim.now() - start);
        ++req->migrationCount;
        if (trace != nullptr) {
            trace->asyncEnd(obs::TraceCat::Migration,
                            obs::TraceName::KvTransfer, to, sim.now(),
                            static_cast<std::uint64_t>(req->id()));
        }
        instances[to]->landMigration(req);
    });

    // The source may have capacity freed up; let it reschedule.
    instances[from]->kick();
}

std::vector<qoe::RequestMetrics>
Cluster::collectMetrics() const
{
    std::vector<qoe::RequestMetrics> out;
    out.reserve(requests.size());
    Time now = sim.now();
    for (std::size_t c = 0; c < requests.numChunks(); ++c) {
        const std::vector<qoe::RequestMetrics>& retired =
            retiredMetrics[c];
        if (!retired.empty()) {
            // Recycled chunk: the rows were scored (in chunk order)
            // the moment its last request finished.
            out.insert(out.end(), retired.begin(), retired.end());
            continue;
        }
        for (auto& req : requests.chunk(c)) {
            // Observation point: settle lazily accrued phase time for
            // requests still in flight (finished requests settled at
            // their final emission; unarrived ones have nothing
            // accrued).
            if (!req.finished() &&
                req.exec != workload::ExecState::Unassigned &&
                req.exec != workload::ExecState::Done) {
                req.settleAccrual(now);
            }
            out.push_back(qoe::computeRequestMetrics(req, cfg.slo));
        }
    }
    return out;
}

std::size_t
Cluster::numUnfinished() const
{
    std::size_t n = 0;
    requests.forEach([&](const workload::Request& req) {
        if (!req.finished())
            ++n;
    });
    return n;
}

TokenCount
Cluster::maxPeakGpuKv() const
{
    TokenCount peak = 0;
    for (const auto& inst : instances)
        peak = std::max(peak, inst->pool().peakGpuUsed());
    return peak;
}

std::uint64_t
Cluster::totalIterations() const
{
    std::uint64_t n = 0;
    for (const auto& inst : instances)
        n += inst->numIterations();
    return n;
}

std::uint64_t
Cluster::totalPlanBuilds() const
{
    std::uint64_t n = 0;
    for (const auto& inst : instances)
        n += inst->numPlanBuilds();
    return n;
}

std::uint64_t
Cluster::totalPlanRepairs() const
{
    std::uint64_t n = 0;
    for (const auto& inst : instances)
        n += inst->numPlanRepairs();
    return n;
}

std::uint64_t
Cluster::totalFullWalks() const
{
    std::uint64_t n = 0;
    for (const auto& inst : instances)
        n += inst->numFullWalks();
    return n;
}

std::uint64_t
Cluster::totalSloHeapRekeys() const
{
    std::uint64_t n = 0;
    for (const auto& inst : instances)
        n += inst->numSloHeapRekeys();
    return n;
}

std::shared_ptr<const obs::StreamingMetrics>
Cluster::finalStreamingMetrics() const
{
    if (streaming == nullptr)
        return nullptr;
    // Copy the running sketch, then fold every chunk that has not
    // retired — its rows were never folded. Same settle-then-score
    // walk as collectMetrics, so both modes cover the identical
    // population.
    auto snap = std::make_shared<obs::StreamingMetrics>(*streaming);
    Time now = sim.now();
    for (std::size_t c = 0; c < requests.numChunks(); ++c) {
        if (chunkRetired[c] != 0)
            continue;
        for (auto& req : requests.chunk(c)) {
            if (!req.finished() &&
                req.exec != workload::ExecState::Unassigned &&
                req.exec != workload::ExecState::Done) {
                req.settleAccrual(now);
            }
            snap->fold(qoe::computeRequestMetrics(req, cfg.slo));
        }
    }
    return snap;
}

std::vector<double>
Cluster::allKvTransferLatencies() const
{
    std::vector<double> out;
    for (const auto& link : ingress) {
        const auto& lat = link->transferLatencies();
        out.insert(out.end(), lat.begin(), lat.end());
    }
    return out;
}

} // namespace cluster
} // namespace pascal
