#include "src/cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace cluster
{

Cluster::Cluster(sim::Simulator& sim, const SystemConfig& cfg)
    : sim(sim), cfg(cfg), perf(cfg.model, cfg.hardware)
{
    this->cfg.validate();

    TokenCount base = cfg.gpuKvCapacityTokens > 0
                          ? cfg.gpuKvCapacityTokens
                          : perf.gpuKvCapacityTokens();
    kvCapacity = static_cast<TokenCount>(
        std::llround(static_cast<double>(base) * cfg.kvCapacityFraction));
    if (kvCapacity <= 0)
        fatal("Cluster: resolved KV capacity is not positive");

    predictor = predict::makePredictor(cfg.predictor);
    placement = makePlacement(cfg.placement);
    placement->setPredictor(predictor.get());

    InstanceCallbacks callbacks;
    callbacks.onPhaseTransition = [this](workload::Request* r,
                                         InstanceId from) {
        onPhaseTransition(r, from);
    };
    // Completions are the online predictors' training signal; feeding
    // them from the cluster (not per instance) lets one predictor
    // learn from the whole deployment.
    callbacks.onFinished = [this](workload::Request* r, InstanceId) {
        if (predictor)
            predictor->observeCompletion(*r);
    };

    predictiveView = cfg.placement == PlacementType::PascalPredictive &&
                     predictor != nullptr;
    forceViewRebuild = cfg.forceViewRebuild ||
                       std::getenv("PASCAL_FORCE_VIEW") != nullptr;

    instances.reserve(cfg.numInstances);
    ingress.reserve(cfg.numInstances);
    view.resize(cfg.numInstances);
    sloRiskAt.assign(cfg.numInstances, kTimeInfinity);
    viewDirtyFlags.assign(cfg.numInstances, 0);
    // Dedup flags bound the list to one entry per instance, so it
    // never reallocates under the instances' feet.
    viewDirtyList.reserve(cfg.numInstances);
    for (InstanceId i = 0; i < cfg.numInstances; ++i) {
        instances.push_back(std::make_unique<Instance>(
            i, sim, perf, makeScheduler(cfg.scheduler, cfg.limits),
            kvCapacity, cfg.slo, callbacks, cfg.kvBlockSizeTokens));
        instances.back()->setPredictor(
            predictor.get(),
            cfg.placement == PlacementType::PascalPredictive);
        instances.back()->setViewDirtyHook(&viewDirtyFlags[i],
                                           &viewDirtyList);
        ingress.push_back(std::make_unique<model::Link>(
            sim, cfg.hardware.effFabricBandwidth(),
            "fabric-ingress-" + std::to_string(i)));
    }
}

void
Cluster::submitTrace(const workload::Trace& trace)
{
    trace.validate();
    // One contiguous chunk per trace: submission is a single
    // allocation instead of one heap node per request.
    std::vector<workload::Request>& chunk = requests.addChunk(trace);
    for (auto& req : chunk) {
        workload::Request* r = &req;
        sim.at(r->spec().arrival, [this, r]() { onArrival(r); });
    }
}

void
Cluster::refreshSnapshot(InstanceId id, Time now)
{
    view[static_cast<std::size_t>(id)] =
        instances[static_cast<std::size_t>(id)]->snapshot(
            now, &sloRiskAt[static_cast<std::size_t>(id)]);
    viewDirtyFlags[static_cast<std::size_t>(id)] = 0;
    ++viewRefreshes;
}

const core::ClusterView&
Cluster::buildView(Time now)
{
    ++viewBuilds;
    bool refreshed = false;
    if (forceViewRebuild || !viewPrimed ||
        (predictiveView &&
         predictor->version() != viewPredictorVersion)) {
        // Full rebuild: debug mode, first decision, or the shared
        // online predictor learned something (which silently moves
        // every instance's predicted footprint).
        for (InstanceId i = 0;
             i < static_cast<InstanceId>(instances.size()); ++i)
            refreshSnapshot(i, now);
        viewDirtyList.clear();
        viewPrimed = true;
        refreshed = true;
    } else {
        for (InstanceId id : viewDirtyList) {
            // Stale list entries can outlive their flag (a full
            // rebuild clears flags wholesale): the flag is the truth.
            if (viewDirtyFlags[static_cast<std::size_t>(id)] != 0) {
                refreshSnapshot(id, now);
                refreshed = true;
            }
        }
        viewDirtyList.clear();
        if (now >= minSloRiskAt) {
            // A cached "answering SLO ok" can sour purely by time
            // passing (mid-step): re-check every at-risk row.
            for (InstanceId i = 0;
                 i < static_cast<InstanceId>(instances.size()); ++i) {
                if (view[static_cast<std::size_t>(i)].answeringSloOk &&
                    now >= sloRiskAt[static_cast<std::size_t>(i)]) {
                    refreshSnapshot(i, now);
                    refreshed = true;
                }
            }
        }
    }
    if (refreshed) {
        minSloRiskAt = kTimeInfinity;
        for (std::size_t i = 0; i < view.size(); ++i) {
            if (view[i].answeringSloOk)
                minSloRiskAt = std::min(minSloRiskAt, sloRiskAt[i]);
        }
    }
    if (predictiveView)
        viewPredictorVersion = predictor->version();

    if (viewAudit) {
        for (std::size_t i = 0; i < instances.size(); ++i) {
            core::InstanceSnapshot fresh = instances[i]->snapshot(now);
            if (fresh != view[i]) {
                panic("incremental ClusterView diverged from fresh "
                      "snapshot of instance " +
                      std::to_string(instances[i]->id()) +
                      " at t=" + std::to_string(now));
            }
        }
    }
    return view;
}

void
Cluster::onArrival(workload::Request* req)
{
    const core::ClusterView& v = buildView(sim.now());
    InstanceId target = placement->placeNew(v, *req);
    if (target < 0 || target >= static_cast<InstanceId>(instances.size()))
        panic("placement returned invalid instance " +
              std::to_string(target));
    instances[target]->addRequest(req);
}

void
Cluster::onPhaseTransition(workload::Request* req, InstanceId from)
{
    const core::ClusterView& v = buildView(sim.now());
    InstanceId target = placement->placeTransition(v, *req, from);
    if (target < 0 || target >= static_cast<InstanceId>(instances.size()))
        panic("placement returned invalid instance " +
              std::to_string(target));

    if (target == from) {
        // Stay home: the intra-instance scheduler requeues the request
        // into its answering-phase (low-priority) machinery.
        instances[from]->stayHomeTransition(req);
        return;
    }
    migrate(req, from, target);
}

void
Cluster::migrate(workload::Request* req, InstanceId from, InstanceId to)
{
    Time start = sim.now();
    instances[from]->detach(req);
    // Entering the answering phase restarts quantum accounting
    // regardless of which instance it lands on.
    req->resetQuantum();
    ++migrations;

    Bytes bytes = perf.kvBytes(req->kvTokens());
    ingress[to]->submit(bytes, [this, req, to, start]() {
        req->kvTransferLatencies.push_back(sim.now() - start);
        ++req->migrationCount;
        instances[to]->landMigration(req);
    });

    // The source may have capacity freed up; let it reschedule.
    instances[from]->kick();
}

std::vector<qoe::RequestMetrics>
Cluster::collectMetrics() const
{
    std::vector<qoe::RequestMetrics> out;
    out.reserve(requests.size());
    Time now = sim.now();
    requests.forEach([&](workload::Request& req) {
        // Observation point: settle lazily accrued phase time for
        // requests still in flight (finished requests settled at
        // their final emission; unarrived ones have nothing accrued).
        if (!req.finished() &&
            req.exec != workload::ExecState::Unassigned &&
            req.exec != workload::ExecState::Done) {
            req.settleAccrual(now);
        }
        out.push_back(qoe::computeRequestMetrics(req, cfg.slo));
    });
    return out;
}

std::size_t
Cluster::numUnfinished() const
{
    std::size_t n = 0;
    requests.forEach([&](const workload::Request& req) {
        if (!req.finished())
            ++n;
    });
    return n;
}

TokenCount
Cluster::maxPeakGpuKv() const
{
    TokenCount peak = 0;
    for (const auto& inst : instances)
        peak = std::max(peak, inst->pool().peakGpuUsed());
    return peak;
}

std::uint64_t
Cluster::totalIterations() const
{
    std::uint64_t n = 0;
    for (const auto& inst : instances)
        n += inst->numIterations();
    return n;
}

std::vector<double>
Cluster::allKvTransferLatencies() const
{
    std::vector<double> out;
    for (const auto& link : ingress) {
        const auto& lat = link->transferLatencies();
        out.insert(out.end(), lat.begin(), lat.end());
    }
    return out;
}

} // namespace cluster
} // namespace pascal
