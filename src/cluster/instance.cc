#include "src/cluster/instance.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace cluster
{

using workload::BucketKind;
using workload::ExecState;
using workload::Phase;
using workload::Request;

namespace
{

/** Double-allocation guard (the slot-keyed pool cannot detect it
 *  itself): a request must not already hold KV when the engine
 *  allocates for it. */
void
checkNoKv(const Request* r)
{
    if (r->kvSlot != model::kNoKvSlot) {
        panic("request " + std::to_string(r->id()) +
              " already holds KV slot " + std::to_string(r->kvSlot) +
              " (double allocation)");
    }
}

} // namespace

Instance::Instance(InstanceId id, sim::Simulator& sim,
                   const model::PerfModel& perf,
                   std::unique_ptr<core::IntraScheduler> sched,
                   TokenCount kv_capacity_tokens,
                   const qoe::SloConfig& slo, InstanceCallbacks callbacks,
                   TokenCount kv_block_size_tokens)
    : instanceId(id),
      sim(sim),
      perf(perf),
      sched(std::move(sched)),
      kvPool(kv_capacity_tokens, kv_block_size_tokens),
      slo(slo),
      callbacks(std::move(callbacks)),
      pcie(sim, perf.hardwareConfig().effPcieBandwidth(),
           "pcie-" + std::to_string(id))
{
    if (this->sched == nullptr)
        panic("Instance needs a scheduler");
    this->sched->setInstanceId(id);
    // Incremental queue maintenance + the steady-state plan-reuse
    // fast path. enableIncremental() itself backs off when the
    // force-resort debug mode (SchedLimits::forceResort or the
    // PASCAL_FORCE_RESORT env var) asks for recompute-from-scratch.
    this->sched->enableIncremental();
    // Accrual debug mode: keep the eager O(hosted) walk as a
    // per-iteration stamp verification (construction-time read, like
    // enableIncremental's).
    verifyAccrual = this->sched->schedLimits().forceAccrue ||
                    std::getenv("PASCAL_FORCE_ACCRUE") != nullptr;
    // Per-arrival plan boundaries: verification mode for burst
    // coalescing (construction-time read, like the two above).
    forceKick = this->sched->schedLimits().forcePerArrivalKick ||
                std::getenv("PASCAL_FORCE_KICK") != nullptr;
}

void
Instance::admit(Request* req)
{
    // A failover re-admission arrives InTransit with a live accrual
    // cursor (the crash/retry wait since detach); settle it before
    // switching to Blocked so the backoff interval stays booked.
    // Fresh arrivals just reset the cursor.
    if (req->exec == ExecState::InTransit)
        req->stampAccrual(sim.now(), BucketKind::Blocked);
    else
        req->resetAccrual(sim.now(), BucketKind::Blocked);
    req->exec = ExecState::WaitingNew;
    req->home = instanceId;
    req->runEpoch = 0;
    req->kvSlot = model::kNoKvSlot;
    sched->add(req);
    // startInAnswering arrivals begin their TTFAT countdown the
    // moment they are admitted.
    sloHeapFix(req);
    sloNoteExact(req);
    if (trace != nullptr) {
        trace->instant(obs::TraceCat::Admission, obs::TraceName::Admit,
                       instanceId, sim.now(), obs::TraceArg::Request,
                       static_cast<std::int64_t>(req->id()));
    }
}

void
Instance::addRequests(Request* const* reqs, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        admit(reqs[i]);
    markViewDirty();
    kick();
}

void
Instance::addRequestCoalesced(Request* req)
{
    admit(req);
    markViewDirty();
    // Defer the plan boundary through the event queue: same-timestamp
    // events fire FIFO, so every member of the arrival burst is
    // admitted (and placed) before the single coalesced plan build
    // runs. In PASCAL_FORCE_KICK mode the dedup is skipped and every
    // member schedules its own (redundant) boundary — the per-arrival
    // cost model the byte-identity tests verify against.
    if (stepInFlight)
        return;
    if (!forceKick) {
        if (kickPending)
            return; // Boundary already scheduled at this timestamp.
        kickPending = true;
    }
    sim.at(sim.now(), [this] {
        kickPending = false;
        if (!stepInFlight)
            startIteration();
    });
}

void
Instance::landMigration(Request* req)
{
    // The in-transit interval counts as answering-phase preemption
    // (the stamp was set by detach on the source instance).
    req->settleAccrual(sim.now());
    req->home = instanceId;
    req->runEpoch = 0;
    checkNoKv(req);
    if (kvPool.canAllocGpu(req->kvTokens())) {
        req->kvSlot = kvPool.allocGpu(req->id(), req->kvTokens());
        req->exec = ExecState::ResidentGpu;
        // Until the next plan boundary the request sits out whatever
        // step is already executing: pipeline overhead if that step
        // is a prefill pass, preemption otherwise (the same rule the
        // eager walk applies to residents outside the batch).
        req->accrualKind = stepInFlight && inflight.isPrefillIteration()
                               ? BucketKind::Executed
                               : BucketKind::Preempted;
    } else {
        req->kvSlot = kvPool.allocCpu(req->id(), req->kvTokens());
        req->exec = ExecState::SwappedCpu;
        req->accrualKind = BucketKind::Preempted;
    }
    sched->add(req);
    sloHeapFix(req);
    sloNoteExact(req);
    markViewDirty();
    kick();
}

void
Instance::detach(Request* req)
{
    if (req->home != instanceId)
        panic("detach: request " + std::to_string(req->id()) +
              " not homed here");
    // Settle up to the detach point, then stamp the transit interval
    // as preemption (it lands in the answering phase: detach happens
    // at the observed </think> emission).
    req->stampAccrual(sim.now(), BucketKind::Preempted);
    if (req->kvSlot != model::kNoKvSlot) {
        kvPool.release(req->kvSlot);
        req->kvSlot = model::kNoKvSlot;
    }
    sched->remove(req);
    sloHeapErase(req);
    req->exec = ExecState::InTransit;
    markViewDirty();
}

void
Instance::demoteBestEffort(Request* req)
{
    if (req->home != instanceId)
        panic("demoteBestEffort: request " + std::to_string(req->id()) +
              " not homed here");
    // Re-key through the scheduler's remove/add path: the class rank
    // is the leading comparator level in every policy's order, so the
    // queues must observe it as a key change. add() re-links material
    // (KV-holding) requests via noteResidency, the same path a
    // migration landing takes.
    sched->remove(req);
    req->bestEffort = true;
    req->schedClassRank = workload::kBestEffortClassRank;
    sched->add(req);
    // The pacing targets just relaxed to the Batch class's: the SLO
    // monitor key must move with them.
    sloHeapFix(req);
    sloNoteExact(req);
    markViewDirty();
}

void
Instance::noteDeadlineExpired(Request* req)
{
    // Deadline events that fire while a step is executing must not
    // mutate the in-flight plan's membership (completeIteration still
    // walks its vectors); park the request until the iteration
    // boundary and let the cluster's policy run there.
    deadlineDeferred.push_back(req);
}

void
Instance::drainDeadlineDeferred()
{
    // The cluster's handler kicks after each enforcement; a step
    // started mid-drain would make the hosted-expiry check re-park
    // every later entry into the vector being walked (unbounded
    // growth). Suppress kick() for the drain — completeIteration()
    // starts the next iteration right after, with every expiry
    // settled and the freed KV visible to the plan build.
    drainingDeadlines = true;
    // Index loop: the cluster's handler can re-enter (detach, fail,
    // demote) but never appends here while stepInFlight is false.
    for (std::size_t i = 0; i < deadlineDeferred.size(); ++i) {
        Request* r = deadlineDeferred[i];
        // Re-check liveness: the step that deferred this expiry may
        // have finished the request, or a crash may have orphaned it
        // off this instance in the meantime.
        if (r->finished() || r->exec == ExecState::Done)
            continue;
        if (r->home != instanceId)
            continue;
        if (r->exec != ExecState::WaitingNew &&
            r->exec != ExecState::ResidentGpu &&
            r->exec != ExecState::SwappedCpu) {
            continue;
        }
        if (!r->deadlineExpired)
            continue;
        if (callbacks.onDeadlineExpired)
            callbacks.onDeadlineExpired(r, instanceId);
    }
    deadlineDeferred.clear();
    drainingDeadlines = false;
}

void
Instance::kick()
{
    if (!stepInFlight && !drainingDeadlines)
        startIteration();
}

void
Instance::startIteration()
{
    // A down instance executes nothing; recover() kicks it back on.
    if (!up)
        return;
    // Steady-state fast path: when the scheduler observed no state
    // change since it built the in-flight plan (the dominant
    // decode-only regime), the previous plan is provably what a full
    // replan would produce — run it again verbatim.
    bool reused = sched->reusePlan(inflight, kvPool);
    if (reused) {
        ++planReuses;
        if (trace != nullptr) {
            trace->instant(obs::TraceCat::Plan,
                           obs::TraceName::PlanReuse, instanceId,
                           sim.now());
        }
    } else if (sched->repairPlan(inflight, kvPool)) {
        // O(delta) middle path: verbatim reuse declined but the dirty
        // set was small and benign, so the previous plan was patched
        // in place. Counts as a build (it is a non-reused boundary —
        // the coalescing gate's builds < arrivals invariant must keep
        // seeing every boundary) and as a repair.
        ++planBuilds;
        ++planRepairs;
        if (trace != nullptr) {
            // The reason arg answers "why not verbatim reuse".
            trace->instant(obs::TraceCat::Plan,
                           obs::TraceName::PlanRepair, instanceId,
                           sim.now(), obs::TraceArg::Reason,
                           static_cast<std::int64_t>(
                               sched->lastReuseDecline()));
        }
    } else {
        sched->buildPlan(kvPool, inflight);
        ++planBuilds;
        if (trace != nullptr) {
            // The reason arg answers "why not the O(delta) repair".
            trace->instant(obs::TraceCat::Plan,
                           obs::TraceName::PlanFullWalk, instanceId,
                           sim.now(), obs::TraceArg::Reason,
                           static_cast<std::int64_t>(
                               sched->lastRepairDecline()));
        }
    }
    // Plan construction itself can mutate monitor-visible state
    // (PASCAL applies demotions at the plan boundary), so the
    // snapshot is stale even if the plan comes back idle.
    markViewDirty();
    const core::IterationPlan& plan = inflight;
    if (plan.idle())
        return;

    stepInFlight = true;
    Time t0 = sim.now();
    Time swaps_done = t0;

    // Evictions free GPU memory; the KV rides the PCIe link to host
    // DRAM. The iteration's compute cannot start until swap traffic
    // completes.
    for (auto* r : plan.swapOut) {
        r->stampAccrual(t0, BucketKind::Preempted);
        kvPool.moveToCpu(r->kvSlot);
        r->exec = ExecState::SwappedCpu;
        sched->noteResidency(r);
        Time done = pcie.submit(perf.kvBytes(r->kvTokens()), nullptr);
        swaps_done = std::max(swaps_done, done);
        ++swapOuts;
        if (trace != nullptr) {
            trace->instant(obs::TraceCat::Eviction,
                           obs::TraceName::Evict, instanceId, t0,
                           obs::TraceArg::Request,
                           static_cast<std::int64_t>(r->id()));
        }
    }
    for (auto* r : plan.swapIn) {
        r->stampAccrual(t0, BucketKind::Executed);
        kvPool.moveToGpu(r->kvSlot);
        r->exec = ExecState::ResidentGpu;
        sched->noteResidency(r);
        Time done = pcie.submit(perf.kvBytes(r->kvTokens()), nullptr);
        swaps_done = std::max(swaps_done, done);
        ++swapIns;
    }

    // Pre-generated KV (Fig. 5 characterization) appears without
    // prefill cost.
    for (auto* r : plan.prewarm) {
        r->stampAccrual(t0, BucketKind::Executed);
        checkNoKv(r);
        r->kvSlot = kvPool.allocGpu(r->id(), r->spec().promptTokens);
        r->exec = ExecState::ResidentGpu;
        sched->noteResidency(r);
        r->prefillDone = true;
        if (r->firstScheduled < 0.0)
            r->firstScheduled = t0;
    }

    ++iterationEpoch;

    TokenCount prompt_tokens = 0;
    for (auto* r : plan.prefill) {
        r->stampAccrual(t0, BucketKind::Executed);
        // Prompt KV plus the slot for the first reasoning token the
        // prefill pass emits.
        checkNoKv(r);
        r->kvSlot = kvPool.allocGpu(r->id(), r->spec().promptTokens + 1);
        r->exec = ExecState::ResidentGpu;
        sched->noteResidency(r);
        if (r->firstScheduled < 0.0)
            r->firstScheduled = t0;
        prompt_tokens += r->spec().promptTokens;
        r->runEpoch = iterationEpoch;
        ++prefills;
    }

    TokenCount batch_kv = 0;
    for (auto* r : plan.decode) {
        r->stampAccrual(t0, BucketKind::Executed);
        kvPool.growGpu(r->kvSlot, 1);
        batch_kv += r->kvTokens();
        if (r->firstScheduled < 0.0)
            r->firstScheduled = t0;
        if (r->phase() == Phase::Answering &&
            r->firstAnswerScheduled < 0.0) {
            r->firstAnswerScheduled = t0;
        }
        r->runEpoch = iterationEpoch;
    }

    // On a freshly built plan the not-running residents' standing
    // bucket can flip (batch exit, or pipeline overhead when a
    // prefill pass stalls the decode stream); the greedy walk already
    // recorded exactly those requests. Reused plans are pure decode
    // with an unchanged batch, so every stamp is already current —
    // steady-state iterations touch only the batch.
    if (!reused) {
        BucketKind kept_kind = plan.isPrefillIteration()
                                   ? BucketKind::Executed
                                   : BucketKind::Preempted;
        for (auto* r : sched->keptResidents())
            r->stampAccrual(t0, kept_kind);
    }

    // Scheduler contract: prefill and decode only coexist in chunked
    // mode (the default vLLM-style planner clears decode otherwise).
    Time latency = perf.mixedStepLatency(
        prompt_tokens, static_cast<int>(plan.decode.size()), batch_kv);
    // Straggler windows stretch compute; x1.0 is an exact no-op.
    latency *= perfScale;

    Time step_end = std::max(swaps_done, t0 + latency);
    ++iterations;
    if (batchDist != nullptr)
        batchDist->add(static_cast<double>(plan.decode.size()));
    if (trace != nullptr) {
        trace->complete(obs::TraceCat::Iteration,
                        obs::TraceName::Iteration, instanceId, t0,
                        step_end - t0, obs::TraceArg::Batch,
                        static_cast<std::int64_t>(plan.decode.size()));
    }
    // The completion event carries the crash generation it was
    // scheduled under: a crash abandons the step by bumping the
    // generation, turning the stale event into a no-op.
    sim.at(step_end, [this, t0, gen = crashGen] {
        if (gen == crashGen)
            completeIteration(t0);
    });
}

void
Instance::crash(bool preserve_cpu_kv,
                std::vector<Request*>& orphans)
{
    up = false;
    draining = false;
    ++crashGen; // Invalidate the in-flight step's completion event.
    stepInFlight = false;
    kickPending = false;
    // Deferred deadline expiries die with the step: the orphans
    // re-enter the retry path, whose guards enforce expiry there.
    deadlineDeferred.clear();
    // detach() mutates the scheduler's hosted set; walk a copy. The
    // hosted order is deterministic (insertion order via swap-pop
    // vector), so the orphan list — and every retry placement made
    // from it — replays byte-identically.
    scratchHosted.assign(sched->hosted().begin(),
                         sched->hosted().end());
    for (auto* r : scratchHosted) {
        if (preserve_cpu_kv && r->exec == ExecState::SwappedCpu) {
            // Host-DRAM KV survives the GPU loss: the request stays
            // hosted and resumes after recovery, accruing preempted
            // time while the instance is down.
            r->stampAccrual(sim.now(), BucketKind::Preempted);
            continue;
        }
        detach(r);
        orphans.push_back(r);
    }
    markViewDirty();
}

void
Instance::recover()
{
    up = true;
    markViewDirty();
    kick();
}

void
Instance::setDraining(bool on)
{
    draining = on;
    markViewDirty();
}

void
Instance::setPerfScale(double scale)
{
    perfScale = scale;
}

void
Instance::verifyAccrualStamps(bool prefill_iteration) const
{
    for (const auto* r : sched->hosted()) {
        BucketKind expect;
        if (r->runEpoch == iterationEpoch) {
            expect = BucketKind::Executed;
        } else if (r->exec == ExecState::WaitingNew) {
            expect = BucketKind::Blocked;
        } else if (r->exec == ExecState::ResidentGpu &&
                   prefill_iteration) {
            // Stalling resident decodes for a prefill pass is inherent
            // continuous-batching overhead, not a scheduling decision:
            // even the oracle pays it.
            expect = BucketKind::Executed;
        } else {
            // Excluded from a decode batch or swapped out: preempted.
            expect = BucketKind::Preempted;
        }
        if (r->accrualKind != expect) {
            panic("lazy accrual stamp stale for request " +
                  std::to_string(r->id()) + " on instance " +
                  std::to_string(instanceId) + ": stamped " +
                  std::to_string(static_cast<int>(r->accrualKind)) +
                  ", eager walk expects " +
                  std::to_string(static_cast<int>(expect)));
        }
    }
}

void
Instance::completeIteration(Time step_start)
{
    (void)step_start;
    // The plan stays parked in `inflight` so the steady-state fast
    // path can run it again verbatim; the next startIteration()
    // rebuilds it only if the scheduler observed a state change.
    const core::IterationPlan& plan = inflight;
    Time now = sim.now();

    markViewDirty();
    if (verifyAccrual)
        verifyAccrualStamps(plan.isPrefillIteration());

    TokenCount quantum = sched->schedLimits().quantum;

    // Settle each batch member's executed interval before mutating
    // its progress, so the step's wall time lands in the phase it was
    // actually spent in; non-members keep accruing lazily under their
    // standing stamp. Emissions first (dirty-set contract: every
    // mutation is reported via noteExecuted before any callback can
    // observe the scheduler's counters), then completions and phase
    // transitions.
    for (auto* r : plan.prefill) {
        r->settleAccrual(now);
        r->completePrefill(now, quantum);
        sched->noteExecuted(r);
        // A one-token reasoning phase transitions at its prefill.
        sloHeapFix(r);
        sloNoteExact(r);
    }
    for (auto* r : plan.decode) {
        // Steady answering emission: the request was already pacing
        // (in the heap with its first answer token emitted) and this
        // token advances its flip bound by exactly one tpot. Those
        // advances are applied in bulk below (usually a single
        // per-instance offset bump); only formula switches —
        // transition, first answer token, finish — re-key eagerly.
        bool was_pacing =
            r->sloHeapPos >= 0 && r->firstAnswer >= 0.0;
        r->settleAccrual(now);
        r->emitToken(now, quantum);
        ++decodeTokens;
        sched->noteExecuted(r);
        if (was_pacing) {
            if (r->finished())
                sloHeapErase(r);
            else
                ++sloAdvanced;
        } else {
            sloHeapFix(r);
            sloNoteExact(r);
        }
    }
    sloHeapAdvance();

    auto handle = [&](Request* r) {
        if (r->finished()) {
            kvPool.release(r->kvSlot);
            r->kvSlot = model::kNoKvSlot;
            r->exec = ExecState::Done;
            sched->remove(r);
            // Re-mark: an earlier transition in this same loop may
            // have had its placement decision refresh (and clean)
            // the cached snapshot this finish just invalidated.
            markViewDirty();
            if (callbacks.onFinished)
                callbacks.onFinished(r, instanceId);
        } else if (r->reasoningEnd == now &&
                   !r->spec().startInAnswering &&
                   r->phase() == Phase::Answering) {
            // The </think> token was just observed: let the
            // instance-level scheduler place the answering phase. The
            // callback may detach the request for migration.
            if (callbacks.onPhaseTransition)
                callbacks.onPhaseTransition(r, instanceId);
        }
    };
    for (auto* r : plan.prefill)
        handle(r);
    for (auto* r : plan.decode)
        handle(r);

    stepInFlight = false;
    // Deadlines that fired mid-step were parked; enforce them now that
    // the plan's vectors are no longer live, before the next boundary
    // builds a plan that could include the expired requests.
    if (!deadlineDeferred.empty())
        drainDeadlineDeferred();
    startIteration();
}

Time
Instance::tpotOf(const Request* r) const
{
    // Per-class pacing target when classes are on; the global SLO
    // otherwise. Best-effort demotion relaxes to the Batch targets.
    if (classCfg.enabled)
        return classCfg.effective(r->spec().sloClass, r->bestEffort)
            .tpotTarget;
    return slo.tpotTarget;
}

Time
Instance::ttfatOf(const Request* r) const
{
    if (classCfg.enabled)
        return classCfg.effective(r->spec().sloClass, r->bestEffort)
            .ttfatTarget;
    return slo.ttfatTarget;
}

double
Instance::sloKeyOf(const Request* r) const
{
    if (r->firstAnswer >= 0.0) {
        // The verdict can only flip once the expected-token floor
        // reaches generated - margin; one tpot of slack absorbs any
        // rounding disagreement between this bound and the
        // floor-based check in sloViolated().
        double flip_tokens = static_cast<double>(
            r->answerGenerated() - slo.monitorBufferMarginTokens - 1);
        return r->firstAnswer + flip_tokens * tpotOf(r);
    }
    // Transitioned but no first answering token yet: the verdict
    // flips exactly when the TTFAT budget runs out; one tpot of
    // slack absorbs any rounding disagreement with the subtraction
    // in the exact check.
    return r->reasoningEnd + ttfatOf(r) - tpotOf(r);
}

bool
Instance::sloViolated(const Request* r, Time now) const
{
    if (r->firstAnswer >= 0.0) {
        // The user digests one token per tpot from the first
        // answering token; the monitor flags the request once the
        // pacer buffer (generated minus digested) runs below the
        // early-warning margin.
        auto expected = static_cast<TokenCount>(
            std::floor((now - r->firstAnswer) / tpotOf(r))) + 1;
        expected = std::min(expected + slo.monitorBufferMarginTokens,
                            r->spec().answerTokens);
        return r->answerGenerated() < expected;
    }
    // Failing once the TTFAT budget is exhausted.
    return now - r->reasoningEnd > ttfatOf(r);
}

void
Instance::sloHeapSiftUp(std::size_t i)
{
    Request* r = sloHeap[i];
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (sloHeap[parent]->sloKey <= r->sloKey)
            break;
        sloHeap[i] = sloHeap[parent];
        sloHeap[i]->sloHeapPos = static_cast<std::int32_t>(i);
        i = parent;
    }
    sloHeap[i] = r;
    r->sloHeapPos = static_cast<std::int32_t>(i);
}

void
Instance::sloHeapSiftDown(std::size_t i)
{
    Request* r = sloHeap[i];
    std::size_t n = sloHeap.size();
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n &&
            sloHeap[child + 1]->sloKey < sloHeap[child]->sloKey) {
            ++child;
        }
        if (r->sloKey <= sloHeap[child]->sloKey)
            break;
        sloHeap[i] = sloHeap[child];
        sloHeap[i]->sloHeapPos = static_cast<std::int32_t>(i);
        i = child;
    }
    sloHeap[i] = r;
    r->sloHeapPos = static_cast<std::int32_t>(i);
}

void
Instance::sloHeapErase(Request* r)
{
    std::int32_t pos = r->sloHeapPos;
    if (pos < 0)
        return; // Not at risk (e.g. a reasoning-phase detach).
    r->sloHeapPos = -1;
    Request* last = sloHeap.back();
    sloHeap.pop_back();
    if (last != r) {
        auto i = static_cast<std::size_t>(pos);
        sloHeap[i] = last;
        last->sloHeapPos = pos;
        sloHeapSiftUp(i);
        sloHeapSiftDown(static_cast<std::size_t>(last->sloHeapPos));
    }
}

void
Instance::sloNoteExact(Request* r)
{
    // Entries keyed exactly against the current offset need
    // compensation if the offset bumps this iteration; the flag
    // dedupes (a landing followed by a first decode would otherwise
    // enter twice and spuriously defeat the bump).
    if (r->sloHeapPos >= 0 && !r->sloExactPending) {
        r->sloExactPending = true;
        sloExactScratch.push_back(r);
    }
}

void
Instance::sloHeapFix(Request* r)
{
    bool member = r->phase() == Phase::Answering && !r->finished();
    if (!member) {
        sloHeapErase(r);
        return;
    }
    double key = sloKeyOf(r) - sloOffset;
    if (r->sloHeapPos < 0) {
        ++sloRekeys;
        r->sloKey = key;
        sloHeap.push_back(r);
        sloHeapSiftUp(sloHeap.size() - 1);
        return;
    }
    if (key == r->sloKey)
        return;
    ++sloRekeys;
    bool up = key < r->sloKey;
    r->sloKey = key;
    auto i = static_cast<std::size_t>(r->sloHeapPos);
    if (up)
        sloHeapSiftUp(i);
    else
        sloHeapSiftDown(i);
}

void
Instance::sloHeapAdvance()
{
    if (sloAdvanced > 0) {
        std::size_t exact_live = 0;
        for (const auto* r : sloExactScratch) {
            if (r->sloHeapPos >= 0)
                ++exact_live;
        }
        if (!classCfg.enabled &&
            sloAdvanced + exact_live == sloHeap.size()) {
            // Every heap member either advanced one answer token
            // (flip bound moves by exactly one tpot) or was re-keyed
            // exactly this iteration: advance the shared offset once
            // and compensate the exact re-keys, so the steady batch
            // pays O(1) instead of one sift per member per token.
            // With SLO classes on the per-request tpot targets are
            // mixed, so a single shared bump is unsound and the Floyd
            // rebuild below handles every advance exactly.
            sloOffset += slo.tpotTarget;
            ++sloRekeys;
            for (auto* r : sloExactScratch) {
                if (r->sloHeapPos < 0)
                    continue;
                r->sloKey -= slo.tpotTarget;
                sloHeapSiftUp(static_cast<std::size_t>(r->sloHeapPos));
            }
        } else {
            // Mixed population (some members — preempted or swapped
            // answering requests — did not advance): recompute every
            // key against the offset and restore the heap with one
            // bottom-up (Floyd) pass — O(members), contiguous, no
            // per-token bookkeeping.
            for (auto* r : sloHeap)
                r->sloKey = sloKeyOf(r) - sloOffset;
            for (std::size_t i = sloHeap.size() / 2; i-- > 0;)
                sloHeapSiftDown(i);
            for (std::size_t i = 0; i < sloHeap.size(); ++i)
                sloHeap[i]->sloHeapPos =
                    static_cast<std::int32_t>(i);
            sloRekeys += sloHeap.size();
        }
    }
    sloAdvanced = 0;
    for (auto* r : sloExactScratch)
        r->sloExactPending = false;
    sloExactScratch.clear();
}

bool
Instance::sloAtRiskViolated(std::size_t i, Time now) const
{
    if (i >= sloHeap.size() || sloHeap[i]->sloKey + sloOffset > now)
        return false; // Heap order prunes the whole subtree.
    if (sloViolated(sloHeap[i], now))
        return true;
    return sloAtRiskViolated(2 * i + 1, now) ||
           sloAtRiskViolated(2 * i + 2, now);
}

bool
Instance::answeringSloOk(Time now, Time* slo_risk_at) const
{
    // Min-deadline heap: the top key is the earliest time any
    // answering request's verdict could flip, so the common decision
    // is a single comparison. Only requests inside their conservative
    // one-tpot risk window are ever re-checked exactly (the per-
    // request check itself is exact — the keys only gate when it
    // runs, and their one-tpot slack dwarfs the offset encoding's
    // rounding drift).
    if (sloHeap.empty()) {
        if (slo_risk_at != nullptr)
            *slo_risk_at = kTimeInfinity;
        return true;
    }
    double top = sloHeap.front()->sloKey + sloOffset;
    if (now >= top && sloAtRiskViolated(0, now)) {
        if (slo_risk_at != nullptr)
            *slo_risk_at = kTimeInfinity; // Sticky until dirty.
        return false;
    }
    if (slo_risk_at != nullptr)
        *slo_risk_at = top;
    return true;
}

bool
Instance::answeringSloOkScan(Time now, Time* slo_risk_at) const
{
    // Reference O(hosted) walk the heap replaced; shares the exact
    // per-request check and the flip-bound formula with the heap so
    // the two can never drift. Audits and tests call this to
    // cross-check the maintained heap.
    Time risk = kTimeInfinity;
    for (const auto* r : sched->hosted()) {
        if (r->phase() != Phase::Answering || r->finished())
            continue;
        if (sloViolated(r, now)) {
            if (slo_risk_at != nullptr)
                *slo_risk_at = kTimeInfinity; // Sticky until dirty.
            return false;
        }
        risk = std::min(risk, sloKeyOf(r));
    }
    if (slo_risk_at != nullptr)
        *slo_risk_at = risk;
    return true;
}

void
Instance::verifySloHeap(Time now) const
{
    std::size_t members = 0;
    for (const auto* r : sched->hosted()) {
        bool member = r->phase() == Phase::Answering && !r->finished();
        if (!member) {
            if (r->sloHeapPos >= 0) {
                panic("SLO heap holds non-answering request " +
                      std::to_string(r->id()) + " on instance " +
                      std::to_string(instanceId));
            }
            continue;
        }
        ++members;
        auto pos = static_cast<std::size_t>(r->sloHeapPos);
        if (r->sloHeapPos < 0 || pos >= sloHeap.size() ||
            sloHeap[pos] != r) {
            panic("SLO heap lost answering request " +
                  std::to_string(r->id()) + " on instance " +
                  std::to_string(instanceId));
        }
        // The offset encoding trades bit-exact keys for O(1) steady
        // advances; the drift is bounded by summation rounding, far
        // inside the key's built-in one-tpot conservatism.
        double drift = (r->sloKey + sloOffset) - sloKeyOf(r);
        if (drift > 0.25 * tpotOf(r) ||
            drift < -0.25 * tpotOf(r)) {
            panic("SLO heap key stale for request " +
                  std::to_string(r->id()) + " on instance " +
                  std::to_string(instanceId) + " (drift " +
                  std::to_string(drift) + ")");
        }
    }
    if (members != sloHeap.size()) {
        panic("SLO heap size " + std::to_string(sloHeap.size()) +
              " != answering population " + std::to_string(members) +
              " on instance " + std::to_string(instanceId));
    }
    for (std::size_t i = 1; i < sloHeap.size(); ++i) {
        if (sloHeap[(i - 1) / 2]->sloKey > sloHeap[i]->sloKey)
            panic("SLO heap order violated on instance " +
                  std::to_string(instanceId));
    }
    Time heap_risk = kTimeInfinity;
    Time scan_risk = kTimeInfinity;
    bool heap_ok = answeringSloOk(now, &heap_risk);
    bool scan_ok = answeringSloOkScan(now, &scan_risk);
    bool risk_close =
        heap_risk == scan_risk ||
        (heap_risk - scan_risk < 0.25 * slo.tpotTarget &&
         scan_risk - heap_risk < 0.25 * slo.tpotTarget);
    if (heap_ok != scan_ok || !risk_close) {
        panic("SLO heap verdict diverged from reference walk on "
              "instance " +
              std::to_string(instanceId) + " at t=" +
              std::to_string(now));
    }
}

core::InstanceSnapshot
Instance::snapshot(Time now, Time* slo_risk_at) const
{
    core::InstanceSnapshot snap;
    snap.id = instanceId;
    snap.up = up && !draining;
    snap.answeringSloOk = answeringSloOk(now, slo_risk_at);
    snap.kvFootprintTokens = kvPool.totalFootprintTokens();
    snap.numReasoning = sched->numReasoning();
    snap.numFreshAnswering = sched->numFreshAnswering();
    snap.gpuFreeTokens = kvPool.gpuFree();
    snap.gpuCapacityTokens = kvPool.gpuCapacity();
    snap.predictedKvFootprintTokens = snap.kvFootprintTokens;
    if (predictor != nullptr) {
        double growth = 0.0;
        // Insertion-order walk: the float sum depends on summation
        // order, so iterating the swap-pop hosted vector would let a
        // mere removal perturb the rounded footprint (and with it a
        // placement tie-break).
        for (const workload::Request* r = sched->hostedHead();
             r != nullptr; r = r->schedNextHosted) {
            if (r->finished())
                continue;
            growth += predictor->predictRemainingTokens(*r);
            // Queued arrivals own no pool KV yet, but their prompt
            // will be allocated the moment they prefill; without it a
            // burst of large-prompt arrivals keeps looking free and
            // predictive placement herds the burst onto one instance.
            if (r->exec == ExecState::WaitingNew)
                growth += static_cast<double>(r->spec().promptTokens);
        }
        snap.predictedKvFootprintTokens +=
            static_cast<TokenCount>(std::llround(growth));
    }
    return snap;
}

void
Instance::registerStats(obs::StatRegistry& reg,
                        const std::string& prefix)
{
    reg.counter(prefix + ".engine.iterations", &iterations);
    reg.counter(prefix + ".engine.decode_tokens", &decodeTokens);
    reg.counter(prefix + ".engine.prefills", &prefills);
    reg.counter(prefix + ".engine.swap_outs", &swapOuts);
    reg.counter(prefix + ".engine.swap_ins", &swapIns);
    reg.counter(prefix + ".plan.reuses", &planReuses);
    reg.counter(prefix + ".plan.builds", &planBuilds);
    reg.counter(prefix + ".plan.repairs", &planRepairs);
    reg.counter(prefix + ".plan.full_walks",
                [this] { return planBuilds - planRepairs; });
    reg.counter(prefix + ".slo.rekeys", &sloRekeys);
    reg.counter(prefix + ".queue.compactions", [this] {
        return sched->numEvictQueueCompactions();
    });
    reg.gauge(prefix + ".kv.gpu_capacity", [this] {
        return static_cast<double>(kvPool.gpuCapacity());
    });
    reg.gauge(prefix + ".kv.gpu_free", [this] {
        return static_cast<double>(kvPool.gpuFree());
    });
    reg.gauge(prefix + ".kv.peak_gpu_used", [this] {
        return static_cast<double>(kvPool.peakGpuUsed());
    });
    reg.gauge(prefix + ".kv.footprint_tokens", [this] {
        return static_cast<double>(kvPool.totalFootprintTokens());
    });
    reg.gauge(prefix + ".kv.gpu_resident", [this] {
        return static_cast<double>(kvPool.numGpuResident());
    });
    reg.gauge(prefix + ".kv.table_size", [this] {
        return static_cast<double>(kvPool.tableSize());
    });
    batchDist = &reg.distribution(prefix + ".batch.decode_size");
}

} // namespace cluster
} // namespace pascal
