#include "src/cluster/instance.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace cluster
{

using workload::BucketKind;
using workload::ExecState;
using workload::Phase;
using workload::Request;

namespace
{

/** Double-allocation guard (the slot-keyed pool cannot detect it
 *  itself): a request must not already hold KV when the engine
 *  allocates for it. */
void
checkNoKv(const Request* r)
{
    if (r->kvSlot != model::kNoKvSlot) {
        panic("request " + std::to_string(r->id()) +
              " already holds KV slot " + std::to_string(r->kvSlot) +
              " (double allocation)");
    }
}

} // namespace

Instance::Instance(InstanceId id, sim::Simulator& sim,
                   const model::PerfModel& perf,
                   std::unique_ptr<core::IntraScheduler> sched,
                   TokenCount kv_capacity_tokens,
                   const qoe::SloConfig& slo, InstanceCallbacks callbacks,
                   TokenCount kv_block_size_tokens)
    : instanceId(id),
      sim(sim),
      perf(perf),
      sched(std::move(sched)),
      kvPool(kv_capacity_tokens, kv_block_size_tokens),
      slo(slo),
      callbacks(std::move(callbacks)),
      pcie(sim, perf.hardwareConfig().effPcieBandwidth(),
           "pcie-" + std::to_string(id))
{
    if (this->sched == nullptr)
        panic("Instance needs a scheduler");
    this->sched->setInstanceId(id);
    // Incremental queue maintenance + the steady-state plan-reuse
    // fast path. enableIncremental() itself backs off when the
    // force-resort debug mode (SchedLimits::forceResort or the
    // PASCAL_FORCE_RESORT env var) asks for recompute-from-scratch.
    this->sched->enableIncremental();
    // Accrual debug mode: keep the eager O(hosted) walk as a
    // per-iteration stamp verification (construction-time read, like
    // enableIncremental's).
    verifyAccrual = this->sched->schedLimits().forceAccrue ||
                    std::getenv("PASCAL_FORCE_ACCRUE") != nullptr;
}

void
Instance::addRequest(Request* req)
{
    req->exec = ExecState::WaitingNew;
    req->home = instanceId;
    req->runEpoch = 0;
    req->kvSlot = model::kNoKvSlot;
    // A queued arrival accrues Blocked until its prefill runs.
    req->resetAccrual(sim.now(), BucketKind::Blocked);
    sched->add(req);
    markViewDirty();
    kick();
}

void
Instance::landMigration(Request* req)
{
    // The in-transit interval counts as answering-phase preemption
    // (the stamp was set by detach on the source instance).
    req->settleAccrual(sim.now());
    req->home = instanceId;
    req->runEpoch = 0;
    checkNoKv(req);
    if (kvPool.canAllocGpu(req->kvTokens())) {
        req->kvSlot = kvPool.allocGpu(req->id(), req->kvTokens());
        req->exec = ExecState::ResidentGpu;
        // Until the next plan boundary the request sits out whatever
        // step is already executing: pipeline overhead if that step
        // is a prefill pass, preemption otherwise (the same rule the
        // eager walk applies to residents outside the batch).
        req->accrualKind = stepInFlight && inflight.isPrefillIteration()
                               ? BucketKind::Executed
                               : BucketKind::Preempted;
    } else {
        req->kvSlot = kvPool.allocCpu(req->id(), req->kvTokens());
        req->exec = ExecState::SwappedCpu;
        req->accrualKind = BucketKind::Preempted;
    }
    sched->add(req);
    markViewDirty();
    kick();
}

void
Instance::detach(Request* req)
{
    if (req->home != instanceId)
        panic("detach: request " + std::to_string(req->id()) +
              " not homed here");
    // Settle up to the detach point, then stamp the transit interval
    // as preemption (it lands in the answering phase: detach happens
    // at the observed </think> emission).
    req->stampAccrual(sim.now(), BucketKind::Preempted);
    if (req->kvSlot != model::kNoKvSlot) {
        kvPool.release(req->kvSlot);
        req->kvSlot = model::kNoKvSlot;
    }
    sched->remove(req);
    req->exec = ExecState::InTransit;
    markViewDirty();
}

void
Instance::kick()
{
    if (!stepInFlight)
        startIteration();
}

void
Instance::startIteration()
{
    // Steady-state fast path: when the scheduler observed no state
    // change since it built the in-flight plan (the dominant
    // decode-only regime), the previous plan is provably what a full
    // replan would produce — run it again verbatim.
    bool reused = sched->reusePlan(inflight, kvPool);
    if (reused)
        ++planReuses;
    else
        sched->buildPlan(kvPool, inflight);
    // Plan construction itself can mutate monitor-visible state
    // (PASCAL applies demotions at the plan boundary), so the
    // snapshot is stale even if the plan comes back idle.
    markViewDirty();
    const core::IterationPlan& plan = inflight;
    if (plan.idle())
        return;

    stepInFlight = true;
    Time t0 = sim.now();
    Time swaps_done = t0;

    // Evictions free GPU memory; the KV rides the PCIe link to host
    // DRAM. The iteration's compute cannot start until swap traffic
    // completes.
    for (auto* r : plan.swapOut) {
        r->stampAccrual(t0, BucketKind::Preempted);
        kvPool.moveToCpu(r->kvSlot);
        r->exec = ExecState::SwappedCpu;
        Time done = pcie.submit(perf.kvBytes(r->kvTokens()), nullptr);
        swaps_done = std::max(swaps_done, done);
        ++swapOuts;
    }
    for (auto* r : plan.swapIn) {
        r->stampAccrual(t0, BucketKind::Executed);
        kvPool.moveToGpu(r->kvSlot);
        r->exec = ExecState::ResidentGpu;
        Time done = pcie.submit(perf.kvBytes(r->kvTokens()), nullptr);
        swaps_done = std::max(swaps_done, done);
        ++swapIns;
    }

    // Pre-generated KV (Fig. 5 characterization) appears without
    // prefill cost.
    for (auto* r : plan.prewarm) {
        r->stampAccrual(t0, BucketKind::Executed);
        checkNoKv(r);
        r->kvSlot = kvPool.allocGpu(r->id(), r->spec().promptTokens);
        r->exec = ExecState::ResidentGpu;
        r->prefillDone = true;
        if (r->firstScheduled < 0.0)
            r->firstScheduled = t0;
    }

    ++iterationEpoch;

    TokenCount prompt_tokens = 0;
    for (auto* r : plan.prefill) {
        r->stampAccrual(t0, BucketKind::Executed);
        // Prompt KV plus the slot for the first reasoning token the
        // prefill pass emits.
        checkNoKv(r);
        r->kvSlot = kvPool.allocGpu(r->id(), r->spec().promptTokens + 1);
        r->exec = ExecState::ResidentGpu;
        if (r->firstScheduled < 0.0)
            r->firstScheduled = t0;
        prompt_tokens += r->spec().promptTokens;
        r->runEpoch = iterationEpoch;
        ++prefills;
    }

    TokenCount batch_kv = 0;
    for (auto* r : plan.decode) {
        r->stampAccrual(t0, BucketKind::Executed);
        kvPool.growGpu(r->kvSlot, 1);
        batch_kv += r->kvTokens();
        if (r->firstScheduled < 0.0)
            r->firstScheduled = t0;
        if (r->phase() == Phase::Answering &&
            r->firstAnswerScheduled < 0.0) {
            r->firstAnswerScheduled = t0;
        }
        r->runEpoch = iterationEpoch;
    }

    // On a freshly built plan the not-running residents' standing
    // bucket can flip (batch exit, or pipeline overhead when a
    // prefill pass stalls the decode stream); the greedy walk already
    // recorded exactly those requests. Reused plans are pure decode
    // with an unchanged batch, so every stamp is already current —
    // steady-state iterations touch only the batch.
    if (!reused) {
        BucketKind kept_kind = plan.isPrefillIteration()
                                   ? BucketKind::Executed
                                   : BucketKind::Preempted;
        for (auto* r : sched->keptResidents())
            r->stampAccrual(t0, kept_kind);
    }

    // Scheduler contract: prefill and decode only coexist in chunked
    // mode (the default vLLM-style planner clears decode otherwise).
    Time latency = perf.mixedStepLatency(
        prompt_tokens, static_cast<int>(plan.decode.size()), batch_kv);

    Time step_end = std::max(swaps_done, t0 + latency);
    ++iterations;
    sim.at(step_end, [this, t0] { completeIteration(t0); });
}

void
Instance::verifyAccrualStamps(bool prefill_iteration) const
{
    for (const auto* r : sched->hosted()) {
        BucketKind expect;
        if (r->runEpoch == iterationEpoch) {
            expect = BucketKind::Executed;
        } else if (r->exec == ExecState::WaitingNew) {
            expect = BucketKind::Blocked;
        } else if (r->exec == ExecState::ResidentGpu &&
                   prefill_iteration) {
            // Stalling resident decodes for a prefill pass is inherent
            // continuous-batching overhead, not a scheduling decision:
            // even the oracle pays it.
            expect = BucketKind::Executed;
        } else {
            // Excluded from a decode batch or swapped out: preempted.
            expect = BucketKind::Preempted;
        }
        if (r->accrualKind != expect) {
            panic("lazy accrual stamp stale for request " +
                  std::to_string(r->id()) + " on instance " +
                  std::to_string(instanceId) + ": stamped " +
                  std::to_string(static_cast<int>(r->accrualKind)) +
                  ", eager walk expects " +
                  std::to_string(static_cast<int>(expect)));
        }
    }
}

void
Instance::completeIteration(Time step_start)
{
    (void)step_start;
    // The plan stays parked in `inflight` so the steady-state fast
    // path can run it again verbatim; the next startIteration()
    // rebuilds it only if the scheduler observed a state change.
    const core::IterationPlan& plan = inflight;
    Time now = sim.now();

    markViewDirty();
    if (verifyAccrual)
        verifyAccrualStamps(plan.isPrefillIteration());

    TokenCount quantum = sched->schedLimits().quantum;

    // Settle each batch member's executed interval before mutating
    // its progress, so the step's wall time lands in the phase it was
    // actually spent in; non-members keep accruing lazily under their
    // standing stamp. Emissions first (dirty-set contract: every
    // mutation is reported via noteExecuted before any callback can
    // observe the scheduler's counters), then completions and phase
    // transitions.
    for (auto* r : plan.prefill) {
        r->settleAccrual(now);
        r->completePrefill(now, quantum);
        sched->noteExecuted(r);
    }
    for (auto* r : plan.decode) {
        r->settleAccrual(now);
        r->emitToken(now, quantum);
        ++decodeTokens;
        sched->noteExecuted(r);
    }

    auto handle = [&](Request* r) {
        if (r->finished()) {
            kvPool.release(r->kvSlot);
            r->kvSlot = model::kNoKvSlot;
            r->exec = ExecState::Done;
            sched->remove(r);
            // Re-mark: an earlier transition in this same loop may
            // have had its placement decision refresh (and clean)
            // the cached snapshot this finish just invalidated.
            markViewDirty();
            if (callbacks.onFinished)
                callbacks.onFinished(r, instanceId);
        } else if (r->reasoningEnd == now &&
                   !r->spec().startInAnswering &&
                   r->phase() == Phase::Answering) {
            // The </think> token was just observed: let the
            // instance-level scheduler place the answering phase. The
            // callback may detach the request for migration.
            if (callbacks.onPhaseTransition)
                callbacks.onPhaseTransition(r, instanceId);
        }
    };
    for (auto* r : plan.prefill)
        handle(r);
    for (auto* r : plan.decode)
        handle(r);

    stepInFlight = false;
    startIteration();
}

bool
Instance::answeringSloOk(Time now, Time* slo_risk_at) const
{
    Time risk = kTimeInfinity;
    for (const auto* r : sched->hosted()) {
        if (r->phase() != Phase::Answering || r->finished())
            continue;
        if (r->firstAnswer >= 0.0) {
            // The user digests one token per tpot from the first
            // answering token; the monitor flags the request once the
            // pacer buffer (generated minus digested) runs below the
            // early-warning margin.
            auto expected = static_cast<TokenCount>(
                std::floor((now - r->firstAnswer) / slo.tpotTarget)) + 1;
            expected = std::min(expected + slo.monitorBufferMarginTokens,
                                r->spec().answerTokens);
            if (r->answerGenerated() < expected) {
                if (slo_risk_at != nullptr)
                    *slo_risk_at = kTimeInfinity; // Sticky until dirty.
                return false;
            }
            if (slo_risk_at != nullptr) {
                // The verdict can only flip once the floor reaches
                // generated - margin; one tpot of slack absorbs any
                // rounding disagreement between this bound and the
                // floor-based check above.
                double flip_tokens = static_cast<double>(
                    r->answerGenerated() -
                    slo.monitorBufferMarginTokens - 1);
                risk = std::min(
                    risk, r->firstAnswer + flip_tokens * slo.tpotTarget);
            }
        } else if (r->reasoningEnd >= 0.0) {
            // Transitioned but no first answering token yet: failing
            // once the TTFAT budget is exhausted.
            if (now - r->reasoningEnd > slo.ttfatTarget) {
                if (slo_risk_at != nullptr)
                    *slo_risk_at = kTimeInfinity;
                return false;
            }
            // Maximally conservative: any cached verdict is
            // re-checked while a TTFAT countdown is live (rare and
            // short-lived; such an instance is running iterations and
            // therefore dirty anyway).
            risk = std::min(risk, r->reasoningEnd);
        }
    }
    if (slo_risk_at != nullptr)
        *slo_risk_at = risk;
    return true;
}

core::InstanceSnapshot
Instance::snapshot(Time now, Time* slo_risk_at) const
{
    core::InstanceSnapshot snap;
    snap.id = instanceId;
    snap.answeringSloOk = answeringSloOk(now, slo_risk_at);
    snap.kvFootprintTokens = kvPool.totalFootprintTokens();
    snap.numReasoning = sched->numReasoning();
    snap.numFreshAnswering = sched->numFreshAnswering();
    snap.gpuFreeTokens = kvPool.gpuFree();
    snap.gpuCapacityTokens = kvPool.gpuCapacity();
    snap.predictedKvFootprintTokens = snap.kvFootprintTokens;
    if (predictor != nullptr) {
        double growth = 0.0;
        // Insertion-order walk: the float sum depends on summation
        // order, so iterating the swap-pop hosted vector would let a
        // mere removal perturb the rounded footprint (and with it a
        // placement tie-break).
        for (const workload::Request* r = sched->hostedHead();
             r != nullptr; r = r->schedNextHosted) {
            if (r->finished())
                continue;
            growth += predictor->predictRemainingTokens(*r);
            // Queued arrivals own no pool KV yet, but their prompt
            // will be allocated the moment they prefill; without it a
            // burst of large-prompt arrivals keeps looking free and
            // predictive placement herds the burst onto one instance.
            if (r->exec == ExecState::WaitingNew)
                growth += static_cast<double>(r->spec().promptTokens);
        }
        snap.predictedKvFootprintTokens +=
            static_cast<TokenCount>(std::llround(growth));
    }
    return snap;
}

} // namespace cluster
} // namespace pascal
