#include "src/cluster/instance.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace cluster
{

using workload::BucketKind;
using workload::ExecState;
using workload::Phase;
using workload::Request;

Instance::Instance(InstanceId id, sim::Simulator& sim,
                   const model::PerfModel& perf,
                   std::unique_ptr<core::IntraScheduler> sched,
                   TokenCount kv_capacity_tokens,
                   const qoe::SloConfig& slo, InstanceCallbacks callbacks,
                   TokenCount kv_block_size_tokens)
    : instanceId(id),
      sim(sim),
      perf(perf),
      sched(std::move(sched)),
      kvPool(kv_capacity_tokens, kv_block_size_tokens),
      slo(slo),
      callbacks(std::move(callbacks)),
      pcie(sim, perf.hardwareConfig().effPcieBandwidth(),
           "pcie-" + std::to_string(id))
{
    if (this->sched == nullptr)
        panic("Instance needs a scheduler");
    this->sched->setInstanceId(id);
    // Incremental queue maintenance + the steady-state plan-reuse
    // fast path. enableIncremental() itself backs off when the
    // force-resort debug mode (SchedLimits::forceResort or the
    // PASCAL_FORCE_RESORT env var) asks for recompute-from-scratch.
    this->sched->enableIncremental();
}

void
Instance::addRequest(Request* req)
{
    req->exec = ExecState::WaitingNew;
    req->home = instanceId;
    req->runEpoch = 0;
    req->resetAccrual(sim.now());
    sched->add(req);
    kick();
}

void
Instance::landMigration(Request* req)
{
    // The in-transit interval counts as answering-phase preemption.
    req->accrue(sim.now(), BucketKind::Preempted);
    req->home = instanceId;
    req->runEpoch = 0;
    if (kvPool.canAllocGpu(req->kvTokens())) {
        kvPool.allocGpu(req->id(), req->kvTokens());
        req->exec = ExecState::ResidentGpu;
    } else {
        kvPool.allocCpu(req->id(), req->kvTokens());
        req->exec = ExecState::SwappedCpu;
    }
    sched->add(req);
    kick();
}

void
Instance::detach(Request* req)
{
    if (req->home != instanceId)
        panic("detach: request " + std::to_string(req->id()) +
              " not homed here");
    req->accrue(sim.now(), BucketKind::Preempted);
    if (kvPool.hasRequest(req->id()))
        kvPool.release(req->id());
    sched->remove(req);
    req->exec = ExecState::InTransit;
}

void
Instance::kick()
{
    if (!stepInFlight)
        startIteration();
}

void
Instance::startIteration()
{
    // Steady-state fast path: when the scheduler observed no state
    // change since it built the in-flight plan (the dominant
    // decode-only regime), the previous plan is provably what a full
    // replan would produce — run it again verbatim.
    if (sched->reusePlan(inflight, kvPool))
        ++planReuses;
    else
        sched->buildPlan(kvPool, inflight);
    const core::IterationPlan& plan = inflight;
    if (plan.idle())
        return;

    stepInFlight = true;
    Time t0 = sim.now();
    Time swaps_done = t0;

    // Evictions free GPU memory; the KV rides the PCIe link to host
    // DRAM. The iteration's compute cannot start until swap traffic
    // completes.
    for (auto* r : plan.swapOut) {
        r->accrue(t0, BucketKind::Preempted);
        kvPool.moveToCpu(r->id());
        r->exec = ExecState::SwappedCpu;
        Time done = pcie.submit(perf.kvBytes(r->kvTokens()), nullptr);
        swaps_done = std::max(swaps_done, done);
        ++swapOuts;
    }
    for (auto* r : plan.swapIn) {
        r->accrue(t0, BucketKind::Preempted);
        kvPool.moveToGpu(r->id());
        r->exec = ExecState::ResidentGpu;
        Time done = pcie.submit(perf.kvBytes(r->kvTokens()), nullptr);
        swaps_done = std::max(swaps_done, done);
        ++swapIns;
    }

    // Pre-generated KV (Fig. 5 characterization) appears without
    // prefill cost.
    for (auto* r : plan.prewarm) {
        r->accrue(t0, BucketKind::Blocked);
        kvPool.allocGpu(r->id(), r->spec().promptTokens);
        r->exec = ExecState::ResidentGpu;
        r->prefillDone = true;
        if (r->firstScheduled < 0.0)
            r->firstScheduled = t0;
    }

    ++iterationEpoch;

    TokenCount prompt_tokens = 0;
    for (auto* r : plan.prefill) {
        r->accrue(t0, BucketKind::Blocked);
        // Prompt KV plus the slot for the first reasoning token the
        // prefill pass emits.
        kvPool.allocGpu(r->id(), r->spec().promptTokens + 1);
        r->exec = ExecState::ResidentGpu;
        if (r->firstScheduled < 0.0)
            r->firstScheduled = t0;
        prompt_tokens += r->spec().promptTokens;
        r->runEpoch = iterationEpoch;
        ++prefills;
    }

    TokenCount batch_kv = 0;
    for (auto* r : plan.decode) {
        kvPool.growGpu(r->id(), 1);
        batch_kv += r->kvTokens();
        if (r->firstScheduled < 0.0)
            r->firstScheduled = t0;
        if (r->phase() == Phase::Answering &&
            r->firstAnswerScheduled < 0.0) {
            r->firstAnswerScheduled = t0;
        }
        r->runEpoch = iterationEpoch;
    }

    // Scheduler contract: prefill and decode only coexist in chunked
    // mode (the default vLLM-style planner clears decode otherwise).
    Time latency = perf.mixedStepLatency(
        prompt_tokens, static_cast<int>(plan.decode.size()), batch_kv);

    Time step_end = std::max(swaps_done, t0 + latency);
    ++iterations;
    sim.at(step_end, [this, t0] { completeIteration(t0); });
}

void
Instance::accrueAll(Time now, bool prefill_iteration)
{
    for (auto* r : sched->hosted()) {
        if (r->runEpoch == iterationEpoch) {
            r->accrue(now, BucketKind::Executed);
        } else if (r->exec == ExecState::WaitingNew) {
            r->accrue(now, BucketKind::Blocked);
        } else if (r->exec == ExecState::ResidentGpu &&
                   prefill_iteration) {
            // Stalling resident decodes for a prefill pass is inherent
            // continuous-batching overhead, not a scheduling decision:
            // even the oracle pays it.
            r->accrue(now, BucketKind::Executed);
        } else {
            // Excluded from a decode batch or swapped out: preempted.
            r->accrue(now, BucketKind::Preempted);
        }
    }
}

void
Instance::completeIteration(Time step_start)
{
    (void)step_start;
    // The plan stays parked in `inflight` so the steady-state fast
    // path can run it again verbatim; the next startIteration()
    // rebuilds it only if the scheduler observed a state change.
    const core::IterationPlan& plan = inflight;
    Time now = sim.now();

    // Book the step's wall time for every hosted request before
    // mutating progress, so the interval lands in the phase it was
    // actually spent in.
    accrueAll(now, plan.isPrefillIteration());

    TokenCount quantum = sched->schedLimits().quantum;

    // Emissions first (dirty-set contract: every mutation is reported
    // via noteExecuted before any callback can observe the scheduler's
    // counters), then completions and phase transitions.
    for (auto* r : plan.prefill) {
        r->completePrefill(now, quantum);
        sched->noteExecuted(r);
    }
    for (auto* r : plan.decode) {
        r->emitToken(now, quantum);
        ++decodeTokens;
        sched->noteExecuted(r);
    }

    auto handle = [&](Request* r) {
        if (r->finished()) {
            kvPool.release(r->id());
            r->exec = ExecState::Done;
            sched->remove(r);
            if (callbacks.onFinished)
                callbacks.onFinished(r, instanceId);
        } else if (r->reasoningEnd == now &&
                   !r->spec().startInAnswering &&
                   r->phase() == Phase::Answering) {
            // The </think> token was just observed: let the
            // instance-level scheduler place the answering phase. The
            // callback may detach the request for migration.
            if (callbacks.onPhaseTransition)
                callbacks.onPhaseTransition(r, instanceId);
        }
    };
    for (auto* r : plan.prefill)
        handle(r);
    for (auto* r : plan.decode)
        handle(r);

    stepInFlight = false;
    startIteration();
}

bool
Instance::answeringSloOk(Time now) const
{
    for (const auto* r : sched->hosted()) {
        if (r->phase() != Phase::Answering || r->finished())
            continue;
        if (r->firstAnswer >= 0.0) {
            // The user digests one token per tpot from the first
            // answering token; the monitor flags the request once the
            // pacer buffer (generated minus digested) runs below the
            // early-warning margin.
            auto expected = static_cast<TokenCount>(
                std::floor((now - r->firstAnswer) / slo.tpotTarget)) + 1;
            expected = std::min(expected + slo.monitorBufferMarginTokens,
                                r->spec().answerTokens);
            if (r->answerGenerated() < expected)
                return false;
        } else if (r->reasoningEnd >= 0.0) {
            // Transitioned but no first answering token yet: failing
            // once the TTFAT budget is exhausted.
            if (now - r->reasoningEnd > slo.ttfatTarget)
                return false;
        }
    }
    return true;
}

core::InstanceSnapshot
Instance::snapshot(Time now) const
{
    core::InstanceSnapshot snap;
    snap.id = instanceId;
    snap.answeringSloOk = answeringSloOk(now);
    snap.kvFootprintTokens = kvPool.totalFootprintTokens();
    snap.numReasoning = sched->numReasoning();
    snap.numFreshAnswering = sched->numFreshAnswering();
    snap.gpuFreeTokens = kvPool.gpuFree();
    snap.gpuCapacityTokens = kvPool.gpuCapacity();
    snap.predictedKvFootprintTokens = snap.kvFootprintTokens;
    if (predictor != nullptr) {
        double growth = 0.0;
        // Insertion-order walk: the float sum depends on summation
        // order, so iterating the swap-pop hosted vector would let a
        // mere removal perturb the rounded footprint (and with it a
        // placement tie-break).
        for (const workload::Request* r = sched->hostedHead();
             r != nullptr; r = r->schedNextHosted) {
            if (r->finished())
                continue;
            growth += predictor->predictRemainingTokens(*r);
            // Queued arrivals own no pool KV yet, but their prompt
            // will be allocated the moment they prefill; without it a
            // burst of large-prompt arrivals keeps looking free and
            // predictive placement herds the burst onto one instance.
            if (r->exec == ExecState::WaitingNew)
                growth += static_cast<double>(r->spec().promptTokens);
        }
        snap.predictedKvFootprintTokens +=
            static_cast<TokenCount>(std::llround(growth));
    }
    return snap;
}

} // namespace cluster
} // namespace pascal
