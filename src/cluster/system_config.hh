/**
 * @file
 * Top-level configuration of a simulated serving deployment, plus
 * factories mapping enum knobs to scheduler/placement objects.
 */

#ifndef PASCAL_CLUSTER_SYSTEM_CONFIG_HH
#define PASCAL_CLUSTER_SYSTEM_CONFIG_HH

#include <memory>
#include <string>

#include "src/core/intra_scheduler.hh"
#include "src/core/placement.hh"
#include "src/fault/fault_config.hh"
#include "src/model/hardware_config.hh"
#include "src/model/model_config.hh"
#include "src/obs/telemetry_config.hh"
#include "src/predict/predictor.hh"
#include "src/qoe/slo.hh"

namespace pascal
{
namespace cluster
{

/** Intra-instance scheduling policy selector. */
enum class SchedulerType
{
    Fcfs,       //!< vLLM default (Section II-C).
    Rr,         //!< Token-quantum round robin.
    Pascal,     //!< Hierarchical phase-aware queues (Section IV-C).
    Srpt,       //!< Speculative shortest-remaining-first (needs a
                //!< predictor).
    PascalSpec, //!< PASCAL + predictive demotion and predicted-length
                //!< tie-breaking (needs a predictor).
};

/** Instance-level placement policy selector. */
enum class PlacementType
{
    Baseline,          //!< Min-KV routing, never migrates.
    Pascal,            //!< Algorithms 1+2 with adaptive migration.
    PascalNonAdaptive, //!< Always follow Algorithm 2 (Section V-D).
    PascalNoMigration, //!< Pin to the Algorithm-1 instance (V-D).
    PascalPredictive,  //!< Route on predicted KV footprint (needs a
                       //!< predictor).
};

/** Everything needed to build a ServingSystem. */
struct SystemConfig
{
    model::ModelConfig model = model::ModelConfig::deepseekR1Distill32B();
    model::HardwareConfig hardware = model::HardwareConfig::h100();

    int numInstances = 8; //!< The paper's cluster size (Section V-A).

    SchedulerType scheduler = SchedulerType::Pascal;
    PlacementType placement = PlacementType::Pascal;

    core::SchedLimits limits; //!< Quantum 500, demotion 5000, caps.
    qoe::SloConfig slo;

    /**
     * Multi-tenant SLO-class layer (src/qoe/slo.hh): per-class
     * TTFT/TPOT/TTFAT targets, relative deadlines enforced as real
     * timeouts, and class-aware admission/overload control. Disabled
     * by default; a disabled class layer leaves RunResults
     * byte-identical to a build without it (every per-request class
     * field stays at its zero default, so each scheduler's class-rank
     * comparator level is inert).
     */
    qoe::SloClassConfig sloClasses;

    /**
     * Length-prediction knobs (src/predict/). Default: None — the
     * paper's reactive behaviour. Required (validate() enforces it)
     * whenever the scheduler is Srpt/PascalSpec or the placement is
     * PascalPredictive. One predictor instance is shared by the whole
     * cluster and learns from every instance's completions.
     */
    predict::PredictorConfig predictor;

    /**
     * Explicit per-instance GPU KV capacity in tokens; 0 derives it
     * from the hardware/model configs (memory left after weights).
     */
    TokenCount gpuKvCapacityTokens = 0;

    /** Scale factor applied to the (derived or explicit) capacity;
     *  Section III uses 0.5 for the memory-constrained runs. */
    double kvCapacityFraction = 1.0;

    /** Paged-KV block size in tokens (vLLM default: 16). 1 gives
     *  exact token-granular accounting. */
    TokenCount kvBlockSizeTokens = 16;

    /** Simulation safety horizon in seconds. */
    Time maxSimTime = 1e7;

    /**
     * Debug mode mirroring SchedLimits::forceResort for the cluster
     * path: rebuild every instance snapshot from scratch at every
     * placement decision instead of refreshing only dirty ones. The
     * PASCAL_FORCE_VIEW environment variable forces it globally.
     * Results must be byte-identical either way — the cluster-view
     * invariance tests run both modes and compare RunResults field by
     * field.
     */
    bool forceViewRebuild = false;

    /**
     * Observability knobs (src/obs/): Perfetto trace recording and
     * streaming metric sketches. The stat registry is always built —
     * it is non-owning pointers over counters the cluster maintains
     * anyway. Tracing and streaming are opt-in; neither perturbs
     * scheduling (RunResults are byte-identical either way).
     */
    obs::TelemetryConfig telemetry;

    /**
     * Fault-injection knobs (src/fault/): seeded crash/drain/
     * straggler/link-failure schedules plus the failover policy
     * (retry backoff, budget, CPU-KV preservation, shed floor).
     * Disabled by default; a disabled fault layer leaves RunResults
     * byte-identical to a build without it.
     */
    fault::FaultConfig fault;

    void validate() const;

    std::string schedulerName() const;
    std::string placementName() const;
    std::string predictorName() const { return predictor.name(); }

    /** Round @p tokens up to a multiple of @p block (validate()
     *  rejects explicit capacities that are not). */
    static TokenCount
    alignKvCapacity(TokenCount tokens, TokenCount block)
    {
        if (block <= 1 || tokens <= 0)
            return tokens;
        return ((tokens + block - 1) / block) * block;
    }

    /** Baseline deployment: FCFS or RR with min-KV routing. */
    static SystemConfig baseline(SchedulerType sched,
                                 int num_instances = 8);

    /** Full PASCAL deployment. */
    static SystemConfig pascal(int num_instances = 8);

    /**
     * Speculative deployment: @p sched (Srpt or PascalSpec) over
     * predictive placement, with @p pred supplying the length
     * estimates.
     */
    static SystemConfig speculative(SchedulerType sched,
                                    predict::PredictorConfig pred,
                                    int num_instances = 8);
};

/** Build the intra-instance scheduler for one instance. */
std::unique_ptr<core::IntraScheduler>
makeScheduler(SchedulerType type, const core::SchedLimits& limits);

/** Build the cluster-level placement policy. */
std::unique_ptr<core::Placement> makePlacement(PlacementType type);

} // namespace cluster
} // namespace pascal

#endif // PASCAL_CLUSTER_SYSTEM_CONFIG_HH
