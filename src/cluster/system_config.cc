#include "src/cluster/system_config.hh"

#include <string>

#include "src/common/log.hh"
#include "src/core/fcfs_scheduler.hh"
#include "src/core/pascal_placement.hh"
#include "src/core/pascal_scheduler.hh"
#include "src/core/pascal_spec_scheduler.hh"
#include "src/core/rr_scheduler.hh"
#include "src/core/srpt_scheduler.hh"

namespace pascal
{
namespace cluster
{

void
SystemConfig::validate() const
{
    model.validate();
    hardware.validate();
    limits.validate();
    slo.validate();
    sloClasses.validate();
    predictor.validate();
    fault.validate();
    if (numInstances <= 0)
        fatal("SystemConfig: numInstances must be positive");
    if (gpuKvCapacityTokens < 0)
        fatal("SystemConfig: negative KV capacity");
    if (kvCapacityFraction <= 0.0)
        fatal("SystemConfig: kvCapacityFraction must be positive");
    if (kvBlockSizeTokens <= 0)
        fatal("SystemConfig: kvBlockSizeTokens must be positive");
    if (gpuKvCapacityTokens > 0 &&
        gpuKvCapacityTokens % kvBlockSizeTokens != 0) {
        TokenCount rounded = (gpuKvCapacityTokens / kvBlockSizeTokens +
                              1) * kvBlockSizeTokens;
        fatal("SystemConfig: gpuKvCapacityTokens (" +
              std::to_string(gpuKvCapacityTokens) +
              ") must be a multiple of the paged-KV block size (" +
              std::to_string(kvBlockSizeTokens) +
              "); the paged allocator cannot hand out the remainder. "
              "Round up to " + std::to_string(rounded) +
              " or set kvBlockSizeTokens = 1 for token-granular "
              "accounting");
    }
    if (maxSimTime <= 0.0)
        fatal("SystemConfig: maxSimTime must be positive");
    if (telemetry.traceEnabled && telemetry.traceCapacity == 0)
        fatal("SystemConfig: telemetry.traceCapacity must be positive "
              "when tracing is enabled");

    // Speculative policies cannot run blind; reject the inconsistent
    // combination here so it fails at configuration time, not when the
    // first iteration asks for a plan.
    bool needs_predictor = scheduler == SchedulerType::Srpt ||
                           scheduler == SchedulerType::PascalSpec ||
                           placement == PlacementType::PascalPredictive;
    if (needs_predictor &&
        predictor.type == predict::PredictorType::None) {
        fatal("SystemConfig: scheduler '" + schedulerName() +
              "' / placement '" + placementName() +
              "' needs a length predictor; set predictor.type "
              "(PredictorType::Oracle is the upper-bound choice, "
              "Profile/Rank learn online) or pick a reactive policy");
    }
    if (scheduler == SchedulerType::PascalSpec && limits.quantum <= 0) {
        fatal("SystemConfig: PASCAL-Spec time-shares its queues and "
              "needs a positive token quantum (the paper uses 500); "
              "quantum-free speculation is what SRPT is for");
    }
    if (scheduler == SchedulerType::PascalSpec &&
        limits.demoteLookaheadTokens >= limits.demoteThresholdTokens) {
        fatal("SystemConfig: demoteLookaheadTokens (" +
              std::to_string(limits.demoteLookaheadTokens) +
              ") must stay below demoteThresholdTokens (" +
              std::to_string(limits.demoteThresholdTokens) +
              "), otherwise PASCAL-Spec would demote reasoning "
              "requests from birth; shrink the lookahead window");
    }
}

std::string
SystemConfig::schedulerName() const
{
    switch (scheduler) {
      case SchedulerType::Fcfs:
        return "FCFS";
      case SchedulerType::Rr:
        return "RR";
      case SchedulerType::Pascal:
        return "PASCAL";
      case SchedulerType::Srpt:
        return "SRPT";
      case SchedulerType::PascalSpec:
        return "PASCAL-Spec";
    }
    return "?";
}

std::string
SystemConfig::placementName() const
{
    switch (placement) {
      case PlacementType::Baseline:
        return "min-kv/no-migration";
      case PlacementType::Pascal:
        return "PASCAL";
      case PlacementType::PascalNonAdaptive:
        return "PASCAL(NonAdaptive)";
      case PlacementType::PascalNoMigration:
        return "PASCAL(NoMigration)";
      case PlacementType::PascalPredictive:
        return "PASCAL(Predictive)";
    }
    return "?";
}

SystemConfig
SystemConfig::baseline(SchedulerType sched, int num_instances)
{
    SystemConfig cfg;
    cfg.scheduler = sched;
    cfg.placement = PlacementType::Baseline;
    cfg.numInstances = num_instances;
    return cfg;
}

SystemConfig
SystemConfig::pascal(int num_instances)
{
    SystemConfig cfg;
    cfg.scheduler = SchedulerType::Pascal;
    cfg.placement = PlacementType::Pascal;
    cfg.numInstances = num_instances;
    return cfg;
}

SystemConfig
SystemConfig::speculative(SchedulerType sched,
                          predict::PredictorConfig pred,
                          int num_instances)
{
    SystemConfig cfg;
    cfg.scheduler = sched;
    cfg.placement = PlacementType::PascalPredictive;
    cfg.predictor = pred;
    cfg.numInstances = num_instances;
    return cfg;
}

std::unique_ptr<core::IntraScheduler>
makeScheduler(SchedulerType type, const core::SchedLimits& limits)
{
    switch (type) {
      case SchedulerType::Fcfs:
        return std::make_unique<core::FcfsScheduler>(limits);
      case SchedulerType::Rr:
        return std::make_unique<core::RrScheduler>(limits);
      case SchedulerType::Pascal:
        return std::make_unique<core::PascalScheduler>(limits);
      case SchedulerType::Srpt:
        return std::make_unique<core::SrptScheduler>(limits);
      case SchedulerType::PascalSpec:
        return std::make_unique<core::PascalSpecScheduler>(limits);
    }
    fatal("makeScheduler: unknown scheduler type");
}

std::unique_ptr<core::Placement>
makePlacement(PlacementType type)
{
    using Variant = core::PascalPlacement::Variant;
    switch (type) {
      case PlacementType::Baseline:
        return std::make_unique<core::BaselinePlacement>();
      case PlacementType::Pascal:
        return std::make_unique<core::PascalPlacement>(Variant::Full);
      case PlacementType::PascalNonAdaptive:
        return std::make_unique<core::PascalPlacement>(
            Variant::NonAdaptive);
      case PlacementType::PascalNoMigration:
        return std::make_unique<core::PascalPlacement>(
            Variant::NoMigration);
      case PlacementType::PascalPredictive:
        return std::make_unique<core::PascalPlacement>(
            Variant::Predictive);
    }
    fatal("makePlacement: unknown placement type");
}

} // namespace cluster
} // namespace pascal
