#include "src/cluster/system_config.hh"

#include "src/common/log.hh"
#include "src/core/fcfs_scheduler.hh"
#include "src/core/pascal_placement.hh"
#include "src/core/pascal_scheduler.hh"
#include "src/core/rr_scheduler.hh"

namespace pascal
{
namespace cluster
{

void
SystemConfig::validate() const
{
    model.validate();
    hardware.validate();
    limits.validate();
    slo.validate();
    if (numInstances <= 0)
        fatal("SystemConfig: numInstances must be positive");
    if (gpuKvCapacityTokens < 0)
        fatal("SystemConfig: negative KV capacity");
    if (kvCapacityFraction <= 0.0)
        fatal("SystemConfig: kvCapacityFraction must be positive");
    if (kvBlockSizeTokens <= 0)
        fatal("SystemConfig: kvBlockSizeTokens must be positive");
    if (maxSimTime <= 0.0)
        fatal("SystemConfig: maxSimTime must be positive");
}

std::string
SystemConfig::schedulerName() const
{
    switch (scheduler) {
      case SchedulerType::Fcfs:
        return "FCFS";
      case SchedulerType::Rr:
        return "RR";
      case SchedulerType::Pascal:
        return "PASCAL";
    }
    return "?";
}

std::string
SystemConfig::placementName() const
{
    switch (placement) {
      case PlacementType::Baseline:
        return "min-kv/no-migration";
      case PlacementType::Pascal:
        return "PASCAL";
      case PlacementType::PascalNonAdaptive:
        return "PASCAL(NonAdaptive)";
      case PlacementType::PascalNoMigration:
        return "PASCAL(NoMigration)";
    }
    return "?";
}

SystemConfig
SystemConfig::baseline(SchedulerType sched, int num_instances)
{
    SystemConfig cfg;
    cfg.scheduler = sched;
    cfg.placement = PlacementType::Baseline;
    cfg.numInstances = num_instances;
    return cfg;
}

SystemConfig
SystemConfig::pascal(int num_instances)
{
    SystemConfig cfg;
    cfg.scheduler = SchedulerType::Pascal;
    cfg.placement = PlacementType::Pascal;
    cfg.numInstances = num_instances;
    return cfg;
}

std::unique_ptr<core::IntraScheduler>
makeScheduler(SchedulerType type, const core::SchedLimits& limits)
{
    switch (type) {
      case SchedulerType::Fcfs:
        return std::make_unique<core::FcfsScheduler>(limits);
      case SchedulerType::Rr:
        return std::make_unique<core::RrScheduler>(limits);
      case SchedulerType::Pascal:
        return std::make_unique<core::PascalScheduler>(limits);
    }
    fatal("makeScheduler: unknown scheduler type");
}

std::unique_ptr<core::Placement>
makePlacement(PlacementType type)
{
    using Variant = core::PascalPlacement::Variant;
    switch (type) {
      case PlacementType::Baseline:
        return std::make_unique<core::BaselinePlacement>();
      case PlacementType::Pascal:
        return std::make_unique<core::PascalPlacement>(Variant::Full);
      case PlacementType::PascalNonAdaptive:
        return std::make_unique<core::PascalPlacement>(
            Variant::NonAdaptive);
      case PlacementType::PascalNoMigration:
        return std::make_unique<core::PascalPlacement>(
            Variant::NoMigration);
    }
    fatal("makePlacement: unknown placement type");
}

} // namespace cluster
} // namespace pascal
