#include "src/cluster/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <utility>

#include "src/cluster/run_context.hh"
#include "src/common/log.hh"
#include "src/workload/generator.hh"

namespace pascal
{
namespace cluster
{

const SweepOutcome*
SweepResult::bestBy(const SweepMetric& metric, bool minimize) const
{
    const SweepOutcome* best = nullptr;
    double best_value = 0.0;
    for (const auto& outcome : outcomes) {
        double value = metric(outcome.result);
        if (best == nullptr || (minimize ? value < best_value
                                         : value > best_value)) {
            best = &outcome;
            best_value = value;
        }
    }
    return best;
}

double
SweepResult::meanOf(const SweepMetric& metric) const
{
    if (outcomes.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto& outcome : outcomes)
        sum += metric(outcome.result);
    return sum / static_cast<double>(outcomes.size());
}

const SweepOutcome*
SweepResult::find(const std::string& label) const
{
    for (const auto& outcome : outcomes) {
        if (outcome.label == label)
            return &outcome;
    }
    return nullptr;
}

std::vector<const SweepOutcome*>
SweepResult::where(
    const std::function<bool(const SweepOutcome&)>& pred) const
{
    std::vector<const SweepOutcome*> matched;
    for (const auto& outcome : outcomes) {
        if (pred(outcome))
            matched.push_back(&outcome);
    }
    return matched;
}

std::size_t
SweepRunner::addTrace(workload::Trace trace)
{
    return addTrace(std::make_shared<const workload::Trace>(
        std::move(trace)));
}

std::size_t
SweepRunner::addTrace(std::shared_ptr<const workload::Trace> trace)
{
    if (trace == nullptr)
        fatal("SweepRunner::addTrace: null trace");
    traces.push_back(std::move(trace));
    return traces.size() - 1;
}

std::size_t
SweepRunner::addGeneratedTrace(const workload::DatasetProfile& profile,
                               int n, double rate_per_sec,
                               std::uint64_t seed, Time start_time)
{
    Rng rng(seed);
    workload::Trace trace = workload::generateTrace(
        profile, n, rate_per_sec, rng, start_time);
    // generateTrace records {profile, n, rate}; only this call knows
    // which seed drove the Rng.
    trace.provenance.seed = seed;
    trace.provenance.seedKnown = true;
    return addTrace(std::move(trace));
}

std::size_t
SweepRunner::add(SweepPoint point)
{
    if (point.traceIndex >= traces.size())
        fatal("SweepPoint references trace " +
              std::to_string(point.traceIndex) + " but only " +
              std::to_string(traces.size()) + " are registered");
    if (point.label.empty()) {
        std::string pred =
            point.config.predictor.type == predict::PredictorType::None
                ? ""
                : "/" + point.config.predictorName();
        point.label = point.config.schedulerName() + "/" +
                      point.config.placementName() + pred + "/t" +
                      std::to_string(point.traceIndex) + "/s" +
                      std::to_string(point.seed);
    }
    points.push_back(std::move(point));
    return points.size() - 1;
}

void
SweepRunner::addGrid(const std::vector<SystemConfig>& configs,
                     const std::vector<std::size_t>& trace_indices,
                     const std::vector<std::uint64_t>& seeds)
{
    static const std::vector<std::uint64_t> kDefaultSeeds = {0};
    const auto& seed_list = seeds.empty() ? kDefaultSeeds : seeds;
    for (const auto& cfg : configs) {
        for (std::size_t trace_index : trace_indices) {
            for (std::uint64_t seed : seed_list) {
                SweepPoint point;
                point.config = cfg;
                point.traceIndex = trace_index;
                point.seed = seed;
                add(std::move(point));
            }
        }
    }
}

void
SweepRunner::addPredictorGrid(
    const std::vector<SystemConfig>& configs,
    const std::vector<predict::PredictorConfig>& predictors,
    const std::vector<std::size_t>& trace_indices,
    const std::vector<std::uint64_t>& seeds)
{
    for (const auto& cfg : configs) {
        for (const auto& pred : predictors) {
            SystemConfig crossed = cfg;
            crossed.predictor = pred;
            addGrid({crossed}, trace_indices, seeds);
        }
    }
}

const workload::Trace&
SweepRunner::trace(std::size_t i) const
{
    if (i >= traces.size())
        fatal("trace index " + std::to_string(i) + " out of range");
    return *traces[i];
}

std::shared_ptr<const workload::Trace>
SweepRunner::traceHandle(std::size_t i) const
{
    if (i >= traces.size())
        fatal("trace index " + std::to_string(i) + " out of range");
    return traces[i];
}

const SweepPoint&
SweepRunner::point(std::size_t i) const
{
    if (i >= points.size())
        fatal("point index " + std::to_string(i) + " out of range");
    return points[i];
}

SweepResult
SweepRunner::run(int num_threads) const
{
    SweepResult result;
    result.outcomes.resize(points.size());

    if (num_threads <= 0) {
        num_threads = static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency()));
    }
    num_threads = std::min<int>(num_threads,
                                std::max<std::size_t>(1, points.size()));

    // Work queue: workers claim grid points by atomic index; each
    // point writes only its own pre-sized outcome slot, so the
    // collected order is the grid order regardless of interleaving.
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::string first_error;

    auto worker = [&]() {
        while (true) {
            std::size_t i = next.fetch_add(1);
            if (i >= points.size())
                return;
            const SweepPoint& p = points[i];
            SweepOutcome& out = result.outcomes[i];
            out.label = p.label;
            out.traceIndex = p.traceIndex;
            out.seed = p.seed;
            try {
                out.result =
                    RunContext::execute(p.config, *traces[p.traceIndex]);
            } catch (const std::exception& e) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (first_error.empty())
                    first_error = "sweep point '" + p.label +
                                  "' failed: " + e.what();
            }
        }
    };

    if (num_threads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(num_threads));
        for (int t = 0; t < num_threads; ++t)
            pool.emplace_back(worker);
        for (auto& thread : pool)
            thread.join();
    }

    if (!first_error.empty())
        fatal(first_error);
    return result;
}

} // namespace cluster
} // namespace pascal
