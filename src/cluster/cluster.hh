/**
 * @file
 * The multi-instance serving cluster (Fig. 6): a pool of instances, an
 * instance-level scheduler routing arrivals and phase transitions, and
 * the 100 Gbps fabric carrying KV migrations.
 *
 * Fabric contention is modeled per target node: each instance owns an
 * ingress Link, so simultaneous migrations into the same node queue
 * behind each other (the Section V-C scenario).
 */

#ifndef PASCAL_CLUSTER_CLUSTER_HH
#define PASCAL_CLUSTER_CLUSTER_HH

#include <memory>
#include <vector>

#include "src/cluster/instance.hh"
#include "src/cluster/system_config.hh"
#include "src/core/placement.hh"
#include "src/predict/predictor.hh"
#include "src/qoe/metrics.hh"
#include "src/sim/simulator.hh"
#include "src/workload/trace.hh"

namespace pascal
{
namespace cluster
{

/** The complete simulated deployment. */
class Cluster
{
  public:
    /**
     * @param sim Shared simulator (must outlive the cluster).
     * @param cfg Validated system configuration.
     */
    Cluster(sim::Simulator& sim, const SystemConfig& cfg);

    /** Schedule every request of @p trace as an arrival event. */
    void submitTrace(const workload::Trace& trace);

    /** Resolved per-instance GPU KV capacity (tokens). */
    TokenCount kvCapacityTokens() const { return kvCapacity; }

    /** Score all requests against the configured SLO. */
    std::vector<qoe::RequestMetrics> collectMetrics() const;

    /** Requests that never finished (trace infeasible or horizon
     *  hit). */
    std::size_t numUnfinished() const;

    /** Largest GPU KV occupancy seen on any instance. */
    TokenCount maxPeakGpuKv() const;

    /** Sum of iteration counts across instances. */
    std::uint64_t totalIterations() const;

    /** Every KV migration's end-to-end latency (Section V-C). */
    std::vector<double> allKvTransferLatencies() const;

    int totalMigrations() const { return migrations; }

    const std::vector<std::unique_ptr<Instance>>&
    getInstances() const
    {
        return instances;
    }

    const SystemConfig& config() const { return cfg; }

    /** The shared length predictor (nullptr when cfg.predictor is
     *  None). Exposed so harnesses can inspect what a run learned. */
    const predict::LengthPredictor* lengthPredictor() const
    {
        return predictor.get();
    }

  private:
    /** Route a new arrival via Placement::placeNew (Algorithm 1). */
    void onArrival(workload::Request* req);

    /** Handle a reasoning->answering transition (Algorithm 2 +
     *  adaptive override). */
    void onPhaseTransition(workload::Request* req, InstanceId from);

    /** Start a KV migration over the target's fabric ingress link. */
    void migrate(workload::Request* req, InstanceId from,
                 InstanceId to);

    core::ClusterView buildView(Time now) const;

    sim::Simulator& sim;
    SystemConfig cfg;
    model::PerfModel perf;
    TokenCount kvCapacity;
    std::unique_ptr<predict::LengthPredictor> predictor;
    std::unique_ptr<core::Placement> placement;
    std::vector<std::unique_ptr<Instance>> instances;
    std::vector<std::unique_ptr<model::Link>> ingress;
    std::vector<std::unique_ptr<workload::Request>> requests;
    int migrations = 0;
};

} // namespace cluster
} // namespace pascal

#endif // PASCAL_CLUSTER_CLUSTER_HH
