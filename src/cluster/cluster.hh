/**
 * @file
 * The multi-instance serving cluster (Fig. 6): a pool of instances, an
 * instance-level scheduler routing arrivals and phase transitions, and
 * the 100 Gbps fabric carrying KV migrations.
 *
 * Fabric contention is modeled per target node: each instance owns an
 * ingress Link, so simultaneous migrations into the same node queue
 * behind each other (the Section V-C scenario).
 */

#ifndef PASCAL_CLUSTER_CLUSTER_HH
#define PASCAL_CLUSTER_CLUSTER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/cluster/instance.hh"
#include "src/cluster/system_config.hh"
#include "src/core/placement.hh"
#include "src/fault/fault_injector.hh"
#include "src/obs/streaming_metrics.hh"
#include "src/predict/predictor.hh"
#include "src/qoe/metrics.hh"
#include "src/sim/simulator.hh"
#include "src/workload/request_arena.hh"
#include "src/workload/trace.hh"

namespace pascal
{
namespace cluster
{

/** The complete simulated deployment. */
class Cluster
{
  public:
    /**
     * @param sim Shared simulator (must outlive the cluster).
     * @param cfg Validated system configuration.
     */
    Cluster(sim::Simulator& sim, const SystemConfig& cfg);

    /** Schedule every request of @p trace as arrival events.
     *  Consecutive same-timestamp requests are scheduled as ONE burst
     *  event, so their placement decisions and admissions drain
     *  back-to-back and the instances' deferred plan boundaries
     *  coalesce to one build per burst per instance. */
    void submitTrace(const workload::Trace& trace);

    /**
     * Opt-in for long-lived clusters fed thousands of traces: once
     * every request of a submitted trace has finished, score the
     * chunk into compact per-request metrics rows and recycle its
     * arena storage, so resident Request memory (including the
     * per-token emission vectors) stays bounded by *live* requests.
     * collectMetrics() output is byte-identical either way (same
     * rows, same order). Call before the simulation runs.
     */
    void enableChunkRecycling() { chunkRecycling = true; }

    /** Trace chunks whose storage was recycled (see
     *  enableChunkRecycling). */
    std::size_t
    numRecycledChunks() const
    {
        return requests.numRecycledChunks();
    }

    /** Resolved per-instance GPU KV capacity (tokens). */
    TokenCount kvCapacityTokens() const { return kvCapacity; }

    /** Score all requests against the configured SLO. */
    std::vector<qoe::RequestMetrics> collectMetrics() const;

    /** Requests that never finished (trace infeasible or horizon
     *  hit). */
    std::size_t numUnfinished() const;

    /** Largest GPU KV occupancy seen on any instance. */
    TokenCount maxPeakGpuKv() const;

    /** Sum of iteration counts across instances. */
    std::uint64_t totalIterations() const;

    /** Every KV migration's end-to-end latency (Section V-C). */
    std::vector<double> allKvTransferLatencies() const;

    int totalMigrations() const { return migrations; }

    const std::vector<std::unique_ptr<Instance>>&
    getInstances() const
    {
        return instances;
    }

    const SystemConfig& config() const { return cfg; }

    /** @name Fault layer
     *
     * The failover path is driven by the seeded FaultInjector when
     * cfg.fault.enabled, but the entry points are public so tests can
     * script exact fault timings (enable the fault layer with all
     * rates at zero and call these directly). On crash, hosted
     * requests lose GPU KV (CPU-offloaded KV survives when
     * cfg.fault.preserveCpuKv), get re-queued through placement under
     * capped exponential backoff, and terminally fail with an
     * accounted FailReason once the per-request retry budget is
     * spent. Requires the fault layer (panics when cfg.fault.enabled
     * is false — the migration abort checks would silently not run).
     */
    /** @{ */

    /** Take an instance down now and run the failover path. */
    void crashInstance(InstanceId id);

    /** Bring a crashed/drained-out instance back up. */
    void recoverInstance(InstanceId id);

    /** Begin a planned decommission: placement routes away, the
     *  engine keeps executing. */
    void startDrain(InstanceId id);

    /** Drain deadline: take the (draining) instance down like a
     *  crash. */
    void finishDrain(InstanceId id);

    /** Apply a straggler latency multiplier (1.0 restores). */
    void setStraggler(InstanceId id, double factor);

    /** Per-instance fabric ingress link (tests observe in-flight
     *  migrations/restores through its busy horizon). */
    const model::Link& ingressLink(InstanceId id) const
    {
        return *ingress[static_cast<std::size_t>(id)];
    }

    /** @name Failure accounting */
    /** @{ */
    std::uint64_t numCrashes() const { return numCrashesCount; }
    std::uint64_t numDrains() const { return numDrainsCount; }
    std::uint64_t numStragglerWindows() const
    {
        return stragglerWindowsCount;
    }
    std::uint64_t numLinkFailures() const { return linkFailuresCount; }
    std::uint64_t numRetries() const { return retriesCount; }
    std::uint64_t numShed() const { return shedCount; }
    /** All terminal failures (retry-budget exhaustion + shed +
     *  deadline expiry). */
    std::uint64_t numTerminalFailures() const
    {
        return terminalFailuresCount;
    }
    /** @} */

    /** @} */

    /** @name SLO-class accounting (all-zero when cfg.sloClasses is
     *  disabled; per-class goodput invariant: submitted == completed
     *  + shed + deadline_failed + retry_failed + still-live). */
    /** @{ */
    std::uint64_t numClassSubmitted(workload::SloClass c) const
    {
        return classSubmittedCount[workload::sloClassIndex(c)];
    }
    std::uint64_t numClassCompleted(workload::SloClass c) const
    {
        return classCompletedCount[workload::sloClassIndex(c)];
    }
    std::uint64_t numClassShed(workload::SloClass c) const
    {
        return classShedCount[workload::sloClassIndex(c)];
    }
    std::uint64_t numClassDeadlineFailed(workload::SloClass c) const
    {
        return classDeadlineFailedCount[workload::sloClassIndex(c)];
    }
    std::uint64_t numClassRetryFailed(workload::SloClass c) const
    {
        return classRetryFailedCount[workload::sloClassIndex(c)];
    }
    std::uint64_t numClassDemoted(workload::SloClass c) const
    {
        return classDemotedCount[workload::sloClassIndex(c)];
    }
    /** @} */

    /** The shared length predictor (nullptr when cfg.predictor is
     *  None). Exposed so harnesses can inspect what a run learned. */
    const predict::LengthPredictor* lengthPredictor() const
    {
        return predictor.get();
    }

    /**
     * Debug/test hook: on every incremental buildView(), additionally
     * recompute every instance's snapshot from scratch and panic on
     * any field divergence from the maintained view. The cluster-view
     * property tests churn a multi-instance deployment with this on,
     * proving the dirty-marking contract covers every event that can
     * move a snapshot field.
     */
    void enableViewAudit() { viewAudit = true; }

    /** Incremental-view bookkeeping stats (bench/diagnostics). */
    std::uint64_t numViewRefreshes() const { return viewRefreshes; }
    std::uint64_t numViewBuilds() const { return viewBuilds; }

    /** Sum of scheduler plan builds across instances (the burst
     *  coalescing engagement stat). */
    std::uint64_t totalPlanBuilds() const;

    /** Sum of O(delta) plan repairs across instances (subset of
     *  totalPlanBuilds()). */
    std::uint64_t totalPlanRepairs() const;

    /** Sum of full O(material) plan walks across instances:
     *  totalPlanBuilds() - totalPlanRepairs(). */
    std::uint64_t totalFullWalks() const;

    /** Sum of SLO-heap re-key operations across instances. */
    std::uint64_t totalSloHeapRekeys() const;

    /** @name Observability (src/obs/) */
    /** @{ */

    /** The gem5-style stat registry: every engine/plan/view/KV
     *  counter under a hierarchical dotted name. Always built (it is
     *  non-owning pointers over counters that exist anyway). */
    const obs::StatRegistry& statRegistry() const { return registry; }

    /** Snapshot every registered stat (registration order). */
    obs::StatDump dumpStats() const { return registry.dump(); }

    /** The trace sink, or nullptr when cfg.telemetry.traceEnabled is
     *  off. */
    obs::TraceSink* traceSink() { return trace.get(); }
    const obs::TraceSink* traceSink() const { return trace.get(); }

    /** Chrome trace-event JSON of the recorded ring ("" when tracing
     *  is off). */
    std::string traceJson() const
    {
        return trace ? trace->writeJson() : std::string();
    }

    /** Streaming-sketch mode active (implies chunk recycling). */
    bool streamingEnabled() const { return streaming != nullptr; }

    /**
     * Streaming mode's end-of-run rollup: a copy of the running
     * sketch with every still-unretired request folded in (settling
     * lazily accrued phase time exactly like collectMetrics), so it
     * covers the same population collectMetrics would score. nullptr
     * when streaming is off.
     */
    std::shared_ptr<const obs::StreamingMetrics>
    finalStreamingMetrics() const;

    /** @} */

  private:
    /** Route @p n same-timestamp arrivals via Placement::placeNew
     *  (Algorithm 1). Each member's decision sees the previous
     *  members admitted — identical to the per-arrival chain — but
     *  the admissions share one deferred plan boundary per touched
     *  instance. */
    void onArrivals(workload::Request* first, std::uint32_t n);

    /** Chunk-recycling bookkeeping at request completion. */
    void noteRequestFinished(workload::Request* req);

    /** Score and recycle a fully-finished trace chunk. */
    void retireChunk(std::size_t idx);

    /** Handle a reasoning->answering transition (Algorithm 2 +
     *  adaptive override). */
    void onPhaseTransition(workload::Request* req, InstanceId from);

    /** Start a KV migration over the target's fabric ingress link. */
    void migrate(workload::Request* req, InstanceId from,
                 InstanceId to);

    /** @name Failover internals (fault layer) */
    /** @{ */

    /** Shared crash body: detach/preserve hosted work and re-queue
     *  the orphans (@p why distinguishes crash vs drain deadline in
     *  the trace). */
    void crashImpl(InstanceId id, obs::TraceName why);

    /** Schedule a backoff retry for a displaced request, or fail it
     *  terminally once the budget is spent. */
    void requeueRequest(workload::Request* req);

    /** Backoff expired: place the request again; prefill-complete
     *  requests re-materialize their KV over the target's ingress
     *  link (as if restored from a replica) instead of recomputing
     *  the prefill. */
    void retryPlace(workload::Request* req);

    /** Restore a prefill-complete request's KV onto @p to. */
    void restoreKv(workload::Request* req, InstanceId to);

    /** Account a terminal failure and release the request. */
    void failTerminally(workload::Request* req,
                        workload::FailReason reason);

    /** Fraction of instances currently routable (up, not draining). */
    double upFraction() const;

    /** @} */

    /** @name SLO-class internals (tentpole: deadline-aware admission,
     *  request timeouts, graceful degradation) */
    /** @{ */

    /** Class-aware admission: shed the arrival when its class's
     *  overload floors or the deadline-slack bound say the cluster
     *  cannot serve it. @return true when the request was shed. */
    bool classAdmissionShed(workload::Request* req);

    /** Arm the per-request deadline timeout (no-op when the class has
     *  no relative deadline or enforcement is off). */
    void armDeadline(workload::Request* req);

    /** The deadline event fired: mark expiry and enforce it. */
    void onDeadlineFire(workload::Request* req);

    /** Enforce an expiry per the class policy: demote to best-effort
     *  or terminally fail (also the iteration-boundary callback for
     *  expiries deferred while a step was in flight). */
    void enforceExpiry(workload::Request* req);

    /** Terminal-fail an expired request on a failover/landing path.
     *  @return true when it consumed the request. */
    bool interceptExpired(workload::Request* req);

    /** Free GPU KV across routable instances as a capacity fraction. */
    double freeGpuKvFraction() const;

    /** @} */

    /**
     * The placement algorithms' cluster view. The cluster keeps one
     * persistent core::ClusterView and refreshes only the snapshots
     * of instances that marked themselves dirty since the last
     * decision (plus any instance whose cached answeringSloOk could
     * have flipped purely by time passing — see sloRiskAt), making
     * arrivals and phase transitions O(dirty) instead of
     * O(instances x hosted). SystemConfig::forceViewRebuild or the
     * PASCAL_FORCE_VIEW env var restores the full per-decision
     * rebuild (the reference the equivalence tests compare against).
     */
    const core::ClusterView& buildView(Time now);

    /** Refresh one instance's cached snapshot (and its SLO flip
     *  bound) at @p now. */
    void refreshSnapshot(InstanceId id, Time now);

    sim::Simulator& sim;
    SystemConfig cfg;
    model::PerfModel perf;
    TokenCount kvCapacity;
    std::unique_ptr<predict::LengthPredictor> predictor;
    std::unique_ptr<core::Placement> placement;
    std::vector<std::unique_ptr<Instance>> instances;
    std::vector<std::unique_ptr<model::Link>> ingress;

    /** All Requests of every submitted trace, in contiguous per-trace
     *  chunks (mutable: scoring lazily settles accrued phase time —
     *  an observation, not a simulation step). */
    mutable workload::RequestArena requests;

    /** @name Chunk recycling state */
    /** @{ */
    bool chunkRecycling = false;
    std::vector<std::size_t> chunkLive; //!< Unfinished per chunk.
    /** Scored rows of retired chunks, in chunk order (so
     *  collectMetrics output is order-identical with recycling).
     *  Streaming mode leaves these empty — rows fold into the sketch
     *  at retire time instead of being stored. */
    std::vector<std::vector<qoe::RequestMetrics>> retiredMetrics;
    /** Chunks already retired (streaming mode leaves retiredMetrics
     *  empty, so emptiness cannot mark retirement). */
    std::vector<std::uint8_t> chunkRetired;
    /** @} */

    /** @name Observability state */
    /** @{ */
    obs::StatRegistry registry;
    std::unique_ptr<obs::TraceSink> trace;  //!< Null unless tracing.
    std::unique_ptr<obs::StreamingMetrics> streaming; //!< Null unless on.
    /** @} */

    /** @name Incremental cluster view state */
    /** @{ */
    core::ClusterView view;
    std::vector<Time> sloRiskAt;        //!< Per-instance flip bound.
    std::vector<std::uint8_t> viewDirtyFlags;
    std::vector<InstanceId> viewDirtyList;
    Time minSloRiskAt = kTimeInfinity;  //!< min over cached-ok rows.
    std::uint64_t viewPredictorVersion = 0;
    bool viewPrimed = false;
    bool forceViewRebuild = false;
    bool predictiveView = false; //!< Snapshots carry predictions.
    bool viewAudit = false;
    std::uint64_t viewRefreshes = 0;
    std::uint64_t viewBuilds = 0;
    /** @} */

    int migrations = 0;

    /** @name Fault layer state */
    /** @{ */

    /** Seeded fault scheduler (null unless cfg.fault.enabled; the
     *  null check also gates every failover branch on hot paths, so
     *  fault-off runs take the exact pre-fault code). */
    std::unique_ptr<fault::FaultInjector> injector;

    /** Submitted-but-not-yet-finished requests (includes terminal
     *  failures as finished); gates fault-chain re-arming. */
    std::int64_t liveRequests = 0;

    /** crashImpl scratch: requests displaced by one crash. */
    std::vector<workload::Request*> orphanScratch;

    std::uint64_t numCrashesCount = 0;
    std::uint64_t numDrainsCount = 0;
    std::uint64_t stragglerWindowsCount = 0;
    std::uint64_t linkFailuresCount = 0;
    std::uint64_t retriesCount = 0;
    std::uint64_t shedCount = 0;
    std::uint64_t terminalFailuresCount = 0;
    /** @} */

    /** @name SLO-class state */
    /** @{ */

    /** Cached cfg.sloClasses.enabled: the single gate every class
     *  branch on a hot path checks, so classes-off runs take the
     *  exact pre-class code. */
    bool classesOn = false;

    std::array<std::uint64_t, workload::kNumSloClasses>
        classSubmittedCount{};
    std::array<std::uint64_t, workload::kNumSloClasses>
        classCompletedCount{};
    std::array<std::uint64_t, workload::kNumSloClasses>
        classShedCount{};
    std::array<std::uint64_t, workload::kNumSloClasses>
        classDeadlineFailedCount{};
    std::array<std::uint64_t, workload::kNumSloClasses>
        classRetryFailedCount{};
    std::array<std::uint64_t, workload::kNumSloClasses>
        classDemotedCount{};
    /** @} */
};

} // namespace cluster
} // namespace pascal

#endif // PASCAL_CLUSTER_CLUSTER_HH
