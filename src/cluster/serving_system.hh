/**
 * @file
 * ServingSystem: the library's top-level facade.
 *
 * Construct it from a SystemConfig, hand it a Trace, and it runs the
 * whole discrete-event simulation and returns scored metrics. Each
 * run() builds a fresh simulator and cluster, so one ServingSystem can
 * evaluate many traces (and runs are independent and reproducible).
 */

#ifndef PASCAL_CLUSTER_SERVING_SYSTEM_HH
#define PASCAL_CLUSTER_SERVING_SYSTEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/system_config.hh"
#include "src/obs/stat_registry.hh"
#include "src/obs/streaming_metrics.hh"
#include "src/qoe/metrics.hh"
#include "src/workload/trace.hh"

namespace pascal
{
namespace cluster
{

/** Everything a harness needs from one simulated run. */
struct RunResult
{
    std::vector<qoe::RequestMetrics> perRequest;
    qoe::AggregateMetrics aggregate;

    /** Largest GPU KV occupancy on any instance (tokens); feeds the
     *  Section III "50 % of oracle" capacity recipe. */
    TokenCount peakGpuKvTokens = 0;

    /** Per-instance KV capacity the run used (tokens). */
    TokenCount kvCapacityTokens = 0;

    std::uint64_t totalIterations = 0;
    std::size_t numUnfinished = 0;
    int totalMigrations = 0;

    /** @name Failure accounting (src/fault/; all zero — and goodput
     *  1.0 with an empty trace — when the fault layer is off) */
    /** @{ */
    std::uint64_t numCrashes = 0;
    std::uint64_t numRetries = 0;
    std::uint64_t numShed = 0;
    /** All terminal failures (retry-budget exhaustion + shed +
     *  deadline expiry). */
    std::uint64_t numTerminalFailures = 0;
    /**
     * Fraction of submitted requests that completed (emitted every
     * token): numFinished / numRequests, 1.0 for an empty trace.
     *
     * Denominator semantics (pinned by the GoodputSemantics tests in
     * tests/test_slo_classes.cc):
     *  - The denominator counts every submitted request — including
     *    requests shed at admission (global fault-layer floor or
     *    class-aware overload control), requests terminally failed
     *    (retry budget or deadline expiry), and requests still live
     *    when the run stopped.
     *  - The numerator counts only fully-completed requests. A shed
     *    or terminally-failed request is Done for lifecycle purposes
     *    but never counts as finished; a demoted best-effort request
     *    that completes DOES count.
     * So goodputFraction + numUnfinished/numRequests == 1 exactly,
     * and numUnfinished == numTerminalFailures when nothing was cut
     * off by the horizon (numShed is a subset of terminal failures,
     * not an extra term).
     */
    double goodputFraction = 1.0;
    /** @} */

    /** @name SLO-class outcomes (tentpole; all rows zero — and
     *  per-class goodput 1.0 — when cfg.sloClasses is disabled) */
    /** @{ */

    /** Lifecycle counts for one service class. Totality invariant
     *  (checked by bench_chaos_goodput --check-invariants):
     *  submitted == completed + shed + deadlineFailed + retryFailed
     *  + still-live-at-horizon. demoted tracks demote-on-expiry
     *  transitions and overlaps the other outcome buckets. */
    struct ClassOutcome
    {
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t shed = 0;
        std::uint64_t deadlineFailed = 0;
        std::uint64_t retryFailed = 0;
        std::uint64_t demoted = 0;
        /** completed / submitted; 1.0 when the class saw no work. */
        double goodputFraction = 1.0;
    };
    std::array<ClassOutcome, workload::kNumSloClasses> perClass{};

    /** Per-class latency/QoE rollups over perRequest (left
     *  zero-initialized in streaming mode, which keeps no rows). */
    std::array<qoe::ClassAggregate, workload::kNumSloClasses>
        classAggregates{};
    /** @} */

    /** Plan boundaries satisfied by the O(delta) repair patch instead
     *  of a full O(material) walk (diagnostic; excluded from the
     *  byte-identity comparisons so force-recompute twins stay
     *  comparable). */
    std::uint64_t numPlanRepairs = 0;
    /** Non-reused plan boundaries that ran the full buildPlan walk. */
    std::uint64_t numFullWalks = 0;

    /** All KV migration latencies (Section V-C). */
    std::vector<double> kvTransferLatencies;

    std::string schedulerName;
    std::string placementName;
    std::string predictorName; //!< "none" when running reactively.

    /** @name Telemetry (src/obs/; excluded from byte-identity
     *  comparisons like the fast-path diagnostics above) */
    /** @{ */

    /** Generic snapshot of the cluster's stat registry (always
     *  populated — the registry is costless). */
    obs::StatDump statsDump;

    /** Chrome/Perfetto trace-event JSON; "" unless
     *  SystemConfig::telemetry.traceEnabled. */
    std::string traceJson;

    /** Streaming-sketch rollup; non-null only in streaming mode
     *  (where perRequest stays empty and aggregate comes from the
     *  sketches). */
    std::shared_ptr<const obs::StreamingMetrics> streaming;

    /** @} */
};

/** Facade running complete serving simulations. */
class ServingSystem
{
  public:
    /** @param cfg Validated deployment configuration (copied). */
    explicit ServingSystem(SystemConfig cfg);

    /** Simulate @p trace to completion and score it. */
    RunResult run(const workload::Trace& trace) const;

    const SystemConfig& config() const { return cfg; }

  private:
    SystemConfig cfg;
};

} // namespace cluster
} // namespace pascal

#endif // PASCAL_CLUSTER_SERVING_SYSTEM_HH
