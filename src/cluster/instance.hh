/**
 * @file
 * One serving instance: the continuous-batching execution engine that
 * turns scheduler IterationPlans into simulated iterations.
 *
 * An instance owns a model replica (represented by the shared
 * PerfModel), a KV pool, a PCIe host link for swap traffic, and an
 * intra-instance scheduler. At every iteration boundary it asks the
 * scheduler for a plan, applies the swaps (PCIe latency), then runs
 * either one prefill pass or one decode step and reports emissions,
 * phase transitions, and completions to the cluster.
 */

#ifndef PASCAL_CLUSTER_INSTANCE_HH
#define PASCAL_CLUSTER_INSTANCE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/cluster_view.hh"
#include "src/core/intra_scheduler.hh"
#include "src/model/kv_pool.hh"
#include "src/model/link.hh"
#include "src/model/perf_model.hh"
#include "src/predict/predictor.hh"
#include "src/qoe/slo.hh"
#include "src/sim/simulator.hh"
#include "src/workload/request.hh"

namespace pascal
{
namespace cluster
{

/** Cluster-side hooks invoked at iteration completion. */
struct InstanceCallbacks
{
    /** The request just emitted its final reasoning token; the
     *  instance-level scheduler decides where it answers. */
    std::function<void(workload::Request*, InstanceId)> onPhaseTransition;

    /** The request generated all its tokens and released its KV. */
    std::function<void(workload::Request*, InstanceId)> onFinished;
};

/** Continuous-batching serving instance. */
class Instance
{
  public:
    /**
     * @param id Cluster-unique instance id.
     * @param sim Shared simulator (must outlive the instance).
     * @param perf Shared performance model.
     * @param sched Intra-instance scheduling policy (owned).
     * @param kv_capacity_tokens GPU KV capacity in tokens.
     * @param slo SLO targets for the t_i monitor condition.
     * @param callbacks Cluster hooks.
     * @param kv_block_size_tokens Paged-KV block size (>= 1).
     */
    Instance(InstanceId id, sim::Simulator& sim,
             const model::PerfModel& perf,
             std::unique_ptr<core::IntraScheduler> sched,
             TokenCount kv_capacity_tokens, const qoe::SloConfig& slo,
             InstanceCallbacks callbacks,
             TokenCount kv_block_size_tokens = 1);

    InstanceId id() const { return instanceId; }

    /** Route a newly arrived request here (no KV yet). */
    void addRequest(workload::Request* req);

    /** A migrated request's KV just landed over the fabric. */
    void landMigration(workload::Request* req);

    /** Remove a request that migrates away; releases its KV. */
    void detach(workload::Request* req);

    /**
     * A hosted request crossed the reasoning->answering boundary and
     * the placement decision keeps it here: requeue it into the
     * scheduler's answering-phase machinery. Routed through the
     * instance (not the scheduler directly) because the requeue
     * mutates monitor-visible state (the quantum reset makes the
     * request "fresh" again) after the decision's view refresh.
     */
    void
    stayHomeTransition(workload::Request* req)
    {
        sched->onPhaseTransition(req);
        markViewDirty();
    }

    /** Ensure an iteration is scheduled if there is runnable work. */
    void kick();

    /**
     * Paper t_i: all answering requests are keeping the user's
     * expected pace (token pacer not starved).
     *
     * @param slo_risk_at Optional out-param: earliest time a *true*
     *        verdict could flip to false with no further state change
     *        on this instance (kTimeInfinity when it cannot, e.g. no
     *        live answering requests or already false — false is
     *        sticky until an instance event). Conservative by at
     *        least one tpot so floating-point rounding can never make
     *        a cached verdict disagree with a fresh recomputation.
     */
    bool answeringSloOk(Time now, Time* slo_risk_at = nullptr) const;

    /** Monitor snapshot for the placement algorithms. @p slo_risk_at
     *  as in answeringSloOk(). */
    core::InstanceSnapshot snapshot(Time now,
                                    Time* slo_risk_at = nullptr) const;

    /**
     * Wire the cluster's incremental-view dirty marking: whenever an
     * event can change this instance's snapshot (admission, landing,
     * detach, plan application, iteration completion), the instance
     * sets its flag and enqueues its id once. Both pointers must stay
     * valid for the instance's lifetime; @p list must never reallocate
     * (the cluster reserves one slot per instance and the flag
     * dedupes). nullptr disables marking (standalone instances).
     */
    void
    setViewDirtyHook(std::uint8_t* flag, std::vector<InstanceId>* list)
    {
        dirtyFlag = flag;
        dirtyList = list;
    }

    /**
     * Wire the cluster's shared length predictor (not owned; may be
     * nullptr). Forwards to the intra-instance scheduler.
     *
     * @param predictive_snapshots Also fill the snapshot's
     *        predicted-KV-footprint signal — O(hosted) predictor
     *        calls per snapshot, so the Cluster enables it only when
     *        the placement policy actually routes on it.
     */
    void setPredictor(const predict::LengthPredictor* p,
                      bool predictive_snapshots)
    {
        predictor = predictive_snapshots ? p : nullptr;
        sched->setPredictor(p);
    }

    const model::KvPool& pool() const { return kvPool; }
    core::IntraScheduler& scheduler() { return *sched; }
    const core::IntraScheduler& scheduler() const { return *sched; }
    model::Link& pcieLink() { return pcie; }

    /** @name Engine statistics */
    /** @{ */
    std::uint64_t numIterations() const { return iterations; }
    std::uint64_t numDecodeTokens() const { return decodeTokens; }
    std::uint64_t numPrefills() const { return prefills; }
    std::uint64_t numSwapOuts() const { return swapOuts; }
    std::uint64_t numSwapIns() const { return swapIns; }
    /** Iterations that ran the previous IterationPlan verbatim via
     *  the scheduler's steady-state fast path. */
    std::uint64_t numPlanReuses() const { return planReuses; }
    /** @} */

  private:
    void startIteration();
    void completeIteration(Time step_start);

    /** Mark this instance's cluster-view snapshot stale (no-op when
     *  no hook is wired). */
    void
    markViewDirty()
    {
        if (dirtyFlag != nullptr && *dirtyFlag == 0) {
            *dirtyFlag = 1;
            dirtyList->push_back(instanceId);
        }
    }

    /**
     * PASCAL_FORCE_ACCRUE debug walk: recompute every hosted
     * request's standing accrual bucket the way the old eager
     * accrueAll derived it and panic if the lazily maintained stamp
     * disagrees. Settlement itself stays lazy in both modes (shared
     * arithmetic => byte-identical RunResults); this walk proves the
     * restamp points catch every bucket change.
     *
     * @param prefill_iteration True if the iteration ran prefills:
     *        residents pausing for a prefill pass are normal
     *        continuous-batching pipeline overhead (booked as
     *        executed), whereas residents excluded from a decode batch
     *        were preempted by the scheduling policy.
     */
    void verifyAccrualStamps(bool prefill_iteration) const;

    InstanceId instanceId;
    sim::Simulator& sim;
    const model::PerfModel& perf;
    std::unique_ptr<core::IntraScheduler> sched;
    model::KvPool kvPool;
    qoe::SloConfig slo;
    InstanceCallbacks callbacks;
    model::Link pcie;
    const predict::LengthPredictor* predictor = nullptr;

    /** Cluster-owned incremental-view dirty marking (may be null). */
    std::uint8_t* dirtyFlag = nullptr;
    std::vector<InstanceId>* dirtyList = nullptr;

    /** PASCAL_FORCE_ACCRUE / SchedLimits::forceAccrue: run the eager
     *  stamp-verification walk every iteration. */
    bool verifyAccrual = false;

    bool stepInFlight = false;

    /**
     * Epoch stamp for batch membership: startIteration bumps it and
     * stamps every running request's runEpoch, so accrueAll's "did
     * this request run in the completed step?" test is one integer
     * compare instead of a hash-set lookup (and there is no per-
     * iteration set to clear). Requests arriving or migrating in get
     * their stamp reset so a stale epoch from a previous host can
     * never collide.
     */
    std::uint64_t iterationEpoch = 0;

    /** Plan of the iteration currently executing. Held here (not in
     *  the continuation closure) so the per-iteration event callback
     *  stays small enough for EventCallback's inline storage — the
     *  steady-state event loop then never heap-allocates. In the
     *  decode-only steady state the scheduler's reusePlan() lets the
     *  next iteration run this plan verbatim, so the buffers are
     *  never even rebuilt. */
    core::IterationPlan inflight;

    std::uint64_t iterations = 0;
    std::uint64_t decodeTokens = 0;
    std::uint64_t prefills = 0;
    std::uint64_t swapOuts = 0;
    std::uint64_t swapIns = 0;
    std::uint64_t planReuses = 0;
};

} // namespace cluster
} // namespace pascal

#endif // PASCAL_CLUSTER_INSTANCE_HH
