/**
 * @file
 * One serving instance: the continuous-batching execution engine that
 * turns scheduler IterationPlans into simulated iterations.
 *
 * An instance owns a model replica (represented by the shared
 * PerfModel), a KV pool, a PCIe host link for swap traffic, and an
 * intra-instance scheduler. At every iteration boundary it asks the
 * scheduler for a plan, applies the swaps (PCIe latency), then runs
 * either one prefill pass or one decode step and reports emissions,
 * phase transitions, and completions to the cluster.
 */

#ifndef PASCAL_CLUSTER_INSTANCE_HH
#define PASCAL_CLUSTER_INSTANCE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/cluster_view.hh"
#include "src/core/intra_scheduler.hh"
#include "src/model/kv_pool.hh"
#include "src/model/link.hh"
#include "src/model/perf_model.hh"
#include "src/obs/stat_registry.hh"
#include "src/obs/trace_sink.hh"
#include "src/predict/predictor.hh"
#include "src/qoe/slo.hh"
#include "src/sim/simulator.hh"
#include "src/workload/request.hh"

namespace pascal
{
namespace cluster
{

/** Cluster-side hooks invoked at iteration completion. */
struct InstanceCallbacks
{
    /** The request just emitted its final reasoning token; the
     *  instance-level scheduler decides where it answers. */
    std::function<void(workload::Request*, InstanceId)> onPhaseTransition;

    /** The request generated all its tokens and released its KV. */
    std::function<void(workload::Request*, InstanceId)> onFinished;

    /**
     * A hosted request whose deadline expired mid-step reached the
     * safe enforcement point (the iteration boundary): the cluster's
     * deadline policy (fail or demote) runs now. May be empty (the
     * deferred expiry is then dropped; standalone instances).
     */
    std::function<void(workload::Request*, InstanceId)> onDeadlineExpired;
};

/** Continuous-batching serving instance. */
class Instance
{
  public:
    /**
     * @param id Cluster-unique instance id.
     * @param sim Shared simulator (must outlive the instance).
     * @param perf Shared performance model.
     * @param sched Intra-instance scheduling policy (owned).
     * @param kv_capacity_tokens GPU KV capacity in tokens.
     * @param slo SLO targets for the t_i monitor condition.
     * @param callbacks Cluster hooks.
     * @param kv_block_size_tokens Paged-KV block size (>= 1).
     */
    Instance(InstanceId id, sim::Simulator& sim,
             const model::PerfModel& perf,
             std::unique_ptr<core::IntraScheduler> sched,
             TokenCount kv_capacity_tokens, const qoe::SloConfig& slo,
             InstanceCallbacks callbacks,
             TokenCount kv_block_size_tokens = 1);

    InstanceId id() const { return instanceId; }

    /** Route a newly arrived request here (no KV yet). */
    void
    addRequest(workload::Request* req)
    {
        addRequests(&req, 1);
    }

    /**
     * Burst admission: route @p n same-timestamp arrivals here with a
     * single snapshot invalidation and a single kick() — one plan
     * boundary for the whole burst instead of one per member.
     */
    void addRequests(workload::Request* const* reqs, std::size_t n);

    /**
     * Admission of one member of a same-timestamp arrival burst whose
     * remaining members are still being placed: admits now, and
     * defers the plan boundary to a same-timestamp event so every
     * burst member (on this instance) shares ONE plan build. The
     * kickPending flag dedupes the boundary; PASCAL_FORCE_KICK /
     * SchedLimits::forcePerArrivalKick skips the dedup so every
     * member schedules its own boundary (byte-identical results: a
     * redundant boundary either finds a step in flight or rebuilds
     * the same idle plan). The Cluster drains same-timestamp arrival
     * runs through this.
     */
    void addRequestCoalesced(workload::Request* req);

    /** A migrated request's KV just landed over the fabric. */
    void landMigration(workload::Request* req);

    /** Remove a request that migrates away; releases its KV. */
    void detach(workload::Request* req);

    /** @name Fault layer (driven by the Cluster's failover path) */
    /** @{ */

    /** Instance is up (serving). */
    bool isUp() const { return up; }

    /** Instance is draining toward a planned decommission. */
    bool isDraining() const { return draining; }

    /**
     * Take the instance down. Every hosted request that holds GPU KV
     * (or no KV yet) is detached and appended to @p orphans for the
     * cluster's failover re-placement; when @p preserve_cpu_kv is set,
     * CPU-offloaded requests keep their host-DRAM KV and stay hosted,
     * resuming after recover(). The in-flight iteration (if any) is
     * abandoned: its completion event is invalidated by a generation
     * bump, and the partial step's wall time stays booked as executed
     * (the GPU really did spend it).
     */
    void crash(bool preserve_cpu_kv,
               std::vector<workload::Request*>& orphans);

    /** Rejoin the fleet after MTTR; resumes any preserved work. */
    void recover();

    /** Enter/leave the draining state (placement routes away; the
     *  engine keeps executing until the drain deadline). */
    void setDraining(bool on);

    /** Straggler window: multiply every iteration's latency by
     *  @p scale (1.0 restores full speed). */
    void setPerfScale(double scale);

    /** @} */

    /**
     * A hosted request crossed the reasoning->answering boundary and
     * the placement decision keeps it here: requeue it into the
     * scheduler's answering-phase machinery. Routed through the
     * instance (not the scheduler directly) because the requeue
     * mutates monitor-visible state (the quantum reset makes the
     * request "fresh" again) after the decision's view refresh.
     */
    void
    stayHomeTransition(workload::Request* req)
    {
        sched->onPhaseTransition(req);
        markViewDirty();
    }

    /** Ensure an iteration is scheduled if there is runnable work. */
    void kick();

    /** A step is executing right now. Deadline enforcement must not
     *  detach batch members mid-step; the cluster checks this and
     *  defers through noteDeadlineExpired(). */
    bool hasStepInFlight() const { return stepInFlight; }

    /** @name SLO classes (ROADMAP item 4) */
    /** @{ */

    /**
     * Wire the cluster's SLO-class config (copied; call before any
     * request is added). With the default disabled config every
     * per-class path collapses to the global SloConfig targets.
     */
    void setSloClassConfig(const qoe::SloClassConfig& c)
    {
        classCfg = c;
    }

    /**
     * Demote a hosted request to best-effort after a deadline expiry:
     * re-rank it behind every real class (remove/re-add re-seeds the
     * scheduler queues) and re-key its SLO-heap entry against Batch
     * targets. Only valid at a safe boundary (no step in flight).
     */
    void demoteBestEffort(workload::Request* req);

    /**
     * A hosted request's deadline fired while a step is in flight:
     * record it for enforcement at the iteration boundary, where
     * detaching cannot corrupt the executing batch. The boundary
     * re-checks liveness/residency and then invokes
     * callbacks.onDeadlineExpired.
     */
    void noteDeadlineExpired(workload::Request* req);

    /** @} */

    /**
     * Paper t_i: all answering requests are keeping the user's
     * expected pace (token pacer not starved).
     *
     * @param slo_risk_at Optional out-param: earliest time a *true*
     *        verdict could flip to false with no further state change
     *        on this instance (kTimeInfinity when it cannot, e.g. no
     *        live answering requests or already false — false is
     *        sticky until an instance event). Conservative by at
     *        least one tpot so floating-point rounding can never make
     *        a cached verdict disagree with a fresh recomputation.
     */
    bool answeringSloOk(Time now, Time* slo_risk_at = nullptr) const;

    /** Monitor snapshot for the placement algorithms. @p slo_risk_at
     *  as in answeringSloOk(). */
    core::InstanceSnapshot snapshot(Time now,
                                    Time* slo_risk_at = nullptr) const;

    /**
     * Wire the cluster's incremental-view dirty marking: whenever an
     * event can change this instance's snapshot (admission, landing,
     * detach, plan application, iteration completion), the instance
     * sets its flag and enqueues its id once. Both pointers must stay
     * valid for the instance's lifetime; @p list must never reallocate
     * (the cluster reserves one slot per instance and the flag
     * dedupes). nullptr disables marking (standalone instances).
     */
    void
    setViewDirtyHook(std::uint8_t* flag, std::vector<InstanceId>* list)
    {
        dirtyFlag = flag;
        dirtyList = list;
    }

    /**
     * Wire the cluster's shared length predictor (not owned; may be
     * nullptr). Forwards to the intra-instance scheduler.
     *
     * @param predictive_snapshots Also fill the snapshot's
     *        predicted-KV-footprint signal — O(hosted) predictor
     *        calls per snapshot, so the Cluster enables it only when
     *        the placement policy actually routes on it.
     */
    void setPredictor(const predict::LengthPredictor* p,
                      bool predictive_snapshots)
    {
        predictor = predictive_snapshots ? p : nullptr;
        sched->setPredictor(p);
    }

    const model::KvPool& pool() const { return kvPool; }
    core::IntraScheduler& scheduler() { return *sched; }
    const core::IntraScheduler& scheduler() const { return *sched; }
    model::Link& pcieLink() { return pcie; }

    /** @name Engine statistics */
    /** @{ */
    std::uint64_t numIterations() const { return iterations; }
    std::uint64_t numDecodeTokens() const { return decodeTokens; }
    std::uint64_t numPrefills() const { return prefills; }
    std::uint64_t numSwapOuts() const { return swapOuts; }
    std::uint64_t numSwapIns() const { return swapIns; }
    /** Iterations that ran the previous IterationPlan verbatim via
     *  the scheduler's steady-state fast path. */
    std::uint64_t numPlanReuses() const { return planReuses; }
    /** Full scheduler plan builds (non-reused boundaries, including
     *  boundaries whose plan came back idle). The burst-coalescing
     *  engagement gate checks this stays below the arrival count.
     *  Repaired boundaries count here too (a repair is still a
     *  non-reused boundary); numFullWalks() isolates the walks. */
    std::uint64_t numPlanBuilds() const { return planBuilds; }
    /** Non-reused boundaries satisfied by patching the previous plan
     *  by its dirty set (IntraScheduler::repairPlan) instead of a
     *  full material walk. Subset of numPlanBuilds(). */
    std::uint64_t numPlanRepairs() const { return planRepairs; }
    /** Non-reused boundaries that fell through to the O(material)
     *  buildPlan walk: numPlanBuilds() - numPlanRepairs(). */
    std::uint64_t numFullWalks() const { return planBuilds - planRepairs; }
    /** SLO-heap re-key operations (emission / admission / landing /
     *  removal fixups). */
    std::uint64_t numSloHeapRekeys() const { return sloRekeys; }
    /** @} */

    /**
     * Wire the cluster's trace sink (not owned; nullptr disables).
     * Recording is observation-only: it never touches scheduler or
     * engine state, so traced and untraced runs are byte-identical.
     */
    void setTraceSink(obs::TraceSink* sink) { trace = sink; }

    /**
     * Register this instance's counters/gauges on @p reg under
     * @p prefix (e.g. "instance.3"): engine counters, plan fast-path
     * counters, SLO-heap rekeys, eviction-queue compactions, KV pool
     * gauges, and the decode batch-size distribution. Registration is
     * non-owning pointers/functors — the hot path keeps its bare
     * member increments.
     */
    void registerStats(obs::StatRegistry& reg,
                       const std::string& prefix);

    /**
     * Debug hook (cluster view audits): recompute every hosted
     * request's SLO-heap membership and key from scratch and panic on
     * any divergence from the maintained heap, then cross-check the
     * heap-based answeringSloOk verdict against the reference
     * O(hosted) walk at @p now.
     */
    void verifySloHeap(Time now) const;

  private:
    void startIteration();
    void completeIteration(Time step_start);

    /** Shared admission body (exec/home/accrual/scheduler/SLO heap). */
    void admit(workload::Request* req);

    /** Mark this instance's cluster-view snapshot stale (no-op when
     *  no hook is wired). */
    void
    markViewDirty()
    {
        if (dirtyFlag != nullptr && *dirtyFlag == 0) {
            *dirtyFlag = 1;
            dirtyList->push_back(instanceId);
        }
    }

    /**
     * PASCAL_FORCE_ACCRUE debug walk: recompute every hosted
     * request's standing accrual bucket the way the old eager
     * accrueAll derived it and panic if the lazily maintained stamp
     * disagrees. Settlement itself stays lazy in both modes (shared
     * arithmetic => byte-identical RunResults); this walk proves the
     * restamp points catch every bucket change.
     *
     * @param prefill_iteration True if the iteration ran prefills:
     *        residents pausing for a prefill pass are normal
     *        continuous-batching pipeline overhead (booked as
     *        executed), whereas residents excluded from a decode batch
     *        were preempted by the scheduling policy.
     */
    void verifyAccrualStamps(bool prefill_iteration) const;

    InstanceId instanceId;
    sim::Simulator& sim;
    const model::PerfModel& perf;
    std::unique_ptr<core::IntraScheduler> sched;
    model::KvPool kvPool;
    qoe::SloConfig slo;

    /** Per-class SLO targets (disabled by default: every per-request
     *  target collapses to the global SloConfig). */
    qoe::SloClassConfig classCfg;

    InstanceCallbacks callbacks;
    model::Link pcie;
    const predict::LengthPredictor* predictor = nullptr;

    /** Cluster-owned incremental-view dirty marking (may be null). */
    std::uint8_t* dirtyFlag = nullptr;
    std::vector<InstanceId>* dirtyList = nullptr;

    /** PASCAL_FORCE_ACCRUE / SchedLimits::forceAccrue: run the eager
     *  stamp-verification walk every iteration. */
    bool verifyAccrual = false;

    /** PASCAL_FORCE_KICK / SchedLimits::forcePerArrivalKick: schedule
     *  a plan-boundary event per kick() instead of deduplicating. */
    bool forceKick = false;

    bool stepInFlight = false;

    /** Fault layer: false while crashed/drained-out (the engine idles
     *  and placement routes away). */
    bool up = true;

    /** Fault layer: planned decommission in its grace window. */
    bool draining = false;

    /** Fault layer: straggler latency multiplier (1.0 = full speed;
     *  multiplying by 1.0 is an exact IEEE no-op, so fault-off runs
     *  are byte-identical). */
    double perfScale = 1.0;

    /** Bumped by crash() so the abandoned step's completion event
     *  (which carries the generation it was scheduled under) becomes
     *  a no-op instead of completing into post-crash state. */
    std::uint64_t crashGen = 0;

    /** crash() scratch: hosted-set copy walked while detach mutates
     *  the live set. */
    std::vector<workload::Request*> scratchHosted;

    /** A deferred plan-boundary event is already scheduled at the
     *  current timestamp (coalesced mode only). */
    bool kickPending = false;

    /**
     * Epoch stamp for batch membership: startIteration bumps it and
     * stamps every running request's runEpoch, so accrueAll's "did
     * this request run in the completed step?" test is one integer
     * compare instead of a hash-set lookup (and there is no per-
     * iteration set to clear). Requests arriving or migrating in get
     * their stamp reset so a stale epoch from a previous host can
     * never collide.
     */
    std::uint64_t iterationEpoch = 0;

    /** Plan of the iteration currently executing. Held here (not in
     *  the continuation closure) so the per-iteration event callback
     *  stays small enough for EventCallback's inline storage — the
     *  steady-state event loop then never heap-allocates. In the
     *  decode-only steady state the scheduler's reusePlan() lets the
     *  next iteration run this plan verbatim, so the buffers are
     *  never even rebuilt. */
    core::IterationPlan inflight;

    std::uint64_t iterations = 0;
    std::uint64_t decodeTokens = 0;
    std::uint64_t prefills = 0;
    std::uint64_t swapOuts = 0;
    std::uint64_t swapIns = 0;
    std::uint64_t planReuses = 0;
    std::uint64_t planBuilds = 0;
    std::uint64_t planRepairs = 0;

    /** Cluster-owned trace sink (may be null — the common case). */
    obs::TraceSink* trace = nullptr;

    /** Registry-owned decode batch-size distribution (null until
     *  registerStats wires it). */
    stats::Summary* batchDist = nullptr;

    /** @name Min-deadline SLO heap (see answeringSloOk)
     *
     * Intrusive binary min-heap over the hosted answering requests,
     * keyed by the earliest time each one's TPOT/TTFAT verdict could
     * flip (Request::sloKey; position in Request::sloHeapPos). The
     * paper's t_i monitor check then peeks the heap top in O(1)
     * instead of walking every hosted request on each dirty snapshot
     * refresh. Keys move only with token progress or membership —
     * emission, phase transition, admission, landing, detach, finish
     * — so plan application (swaps) never re-keys.
     */
    /** @{ */

    /** Effective per-request TPOT target: the class's (Batch's for
     *  best-effort) when classes are on, the global otherwise. */
    Time tpotOf(const workload::Request* r) const;

    /** Effective per-request TTFAT target (same selection rule). */
    Time ttfatOf(const workload::Request* r) const;

    /** Conservative flip-time key for an answering request (exact
     *  formula shared with the reference walk). */
    double sloKeyOf(const workload::Request* r) const;

    /** Exact verdict for one request at @p now (shared with the
     *  reference walk). */
    bool sloViolated(const workload::Request* r, Time now) const;

    /** Membership + key fixup after any event that can move them. */
    void sloHeapFix(workload::Request* r);

    /** Record an exactly-keyed heap entry for offset compensation
     *  (deduped via Request::sloExactPending). */
    void sloNoteExact(workload::Request* r);

    /**
     * Bulk per-iteration key advance: when every heap member either
     * emitted one answer token (flip bound += exactly one tpot) or
     * was exactly re-keyed this iteration, a single bump of sloOffset
     * advances the whole heap in O(1) (the exact re-keys are
     * compensated); otherwise the advanced members are re-keyed
     * individually. Consumes the two scratch lists the emission loop
     * filled.
     */
    void sloHeapAdvance();

    void sloHeapErase(workload::Request* r);
    void sloHeapSiftUp(std::size_t i);
    void sloHeapSiftDown(std::size_t i);

    /** DFS over the heap's {key <= now} rooted subtree, exactly
     *  re-checking each at-risk request. */
    bool sloAtRiskViolated(std::size_t i, Time now) const;

    /** Reference O(hosted) implementation of answeringSloOk (kept
     *  for audits and tests; shares sloKeyOf/sloViolated). */
    bool answeringSloOkScan(Time now, Time* slo_risk_at) const;

    std::vector<workload::Request*> sloHeap;

    /**
     * Shared key offset: stored keys are relative (real flip bound =
     * Request::sloKey + sloOffset), so the dominant steady decode
     * iteration — every answering request advances one token, every
     * flip bound moves one tpot — is one addition instead of one
     * sift per batch member. The encoding's rounding drift is bounded
     * far inside the key's built-in one-tpot conservatism (the exact
     * per-request check never consults keys).
     */
    double sloOffset = 0.0;

    /** Per-iteration bookkeeping for sloHeapAdvance: how many
     *  members advanced one answer token, and which were exactly
     *  re-keyed (inserts / formula switches). */
    std::size_t sloAdvanced = 0;
    std::vector<workload::Request*> sloExactScratch;

    std::uint64_t sloRekeys = 0;

    /** @} */

    /** Run the deferred-deadline list through the cluster's policy at
     *  the iteration boundary (completeIteration, after the step's
     *  effects settle and stepInFlight clears). */
    void drainDeadlineDeferred();

    /** Hosted requests whose deadline fired mid-step, awaiting the
     *  boundary (cleared by crash(): orphans re-enter through the
     *  retry guards instead). */
    std::vector<workload::Request*> deadlineDeferred;

    /** True while drainDeadlineDeferred() walks the parked list.
     *  Suppresses kick(): a step started mid-drain would force the
     *  remaining entries to re-park into the vector being walked
     *  (unbounded growth); completeIteration() starts the next
     *  iteration itself once every expiry has settled. */
    bool drainingDeadlines = false;
};

} // namespace cluster
} // namespace pascal

#endif // PASCAL_CLUSTER_INSTANCE_HH
