#include "src/sim/event_queue.hh"

#include "src/common/log.hh"

namespace pascal
{
namespace sim
{

EventId
EventQueue::schedule(Time when, std::function<void()> callback)
{
    EventId id = nextId++;
    heap.push(Entry{when, id, std::move(callback)});
    return id;
}

void
EventQueue::cancel(EventId id)
{
    if (id < nextId)
        cancelled.insert(id);
}

void
EventQueue::skipCancelled() const
{
    while (!heap.empty()) {
        auto it = cancelled.find(heap.top().id);
        if (it == cancelled.end())
            break;
        cancelled.erase(it);
        heap.pop();
    }
}

bool
EventQueue::empty() const
{
    skipCancelled();
    return heap.empty();
}

Time
EventQueue::nextTime() const
{
    skipCancelled();
    return heap.empty() ? kTimeInfinity : heap.top().when;
}

EventQueue::Fired
EventQueue::pop()
{
    skipCancelled();
    if (heap.empty())
        panic("EventQueue::pop on empty queue");
    // priority_queue::top returns const&; the callback must be moved
    // out, so copy the POD fields first and cast away the top entry's
    // constness only for the move (safe: we pop immediately after).
    auto& top = const_cast<Entry&>(heap.top());
    Fired fired{top.when, std::move(top.callback)};
    heap.pop();
    return fired;
}

} // namespace sim
} // namespace pascal
