#include "src/sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "src/common/log.hh"

namespace pascal
{
namespace sim
{

namespace
{

constexpr std::uint32_t
slotOf(EventId id)
{
    return static_cast<std::uint32_t>(id);
}

constexpr std::uint32_t
stampOf(EventId id)
{
    return static_cast<std::uint32_t>(id >> 32);
}

constexpr EventId
packId(std::uint32_t slot, std::uint32_t generation)
{
    return (static_cast<EventId>(generation) << 32) | slot;
}

} // namespace

EventId
EventQueue::schedule(Time when, EventCallback callback)
{
    std::uint32_t index;
    if (!freeSlots.empty()) {
        index = freeSlots.back();
        freeSlots.pop_back();
        callbackOf[index] = std::move(callback);
    } else {
        index = static_cast<std::uint32_t>(callbackOf.size());
        callbackOf.push_back(std::move(callback));
        generationOf.push_back(1);
        heapPosOf.push_back(0);
    }

    const auto pos = static_cast<std::uint32_t>(heap.size());
    heap.push_back(HeapEntry{when, nextSeq++, index});
    siftUp(pos, heap[pos]);
    return packId(index, generationOf[index]);
}

bool
EventQueue::cancel(EventId id)
{
    const std::uint32_t index = slotOf(id);
    if (index >= generationOf.size())
        return false; // Never issued.
    if (generationOf[index] != stampOf(id))
        return false; // Already fired or cancelled; id is stale.
    removeAt(heapPosOf[index]);
    callbackOf[index] = EventCallback(); // Drop captured state.
    freeSlot(index);
    return true;
}

EventQueue::Fired
EventQueue::pop()
{
    if (heap.empty())
        panic("EventQueue::pop on empty queue");
    const std::uint32_t index = heap[0].slot;
    Fired fired{heap[0].when, std::move(callbackOf[index])};
    freeSlot(index);

    const HeapEntry last = heap.back();
    heap.pop_back();
    if (!heap.empty())
        siftDown(0, last);
    return fired;
}

void
EventQueue::siftUp(std::uint32_t pos, HeapEntry moving)
{
    while (pos > 0) {
        const std::uint32_t parent = (pos - 1) / kArity;
        if (!firesBefore(moving, heap[parent]))
            break;
        heap[pos] = heap[parent];
        heapPosOf[heap[pos].slot] = pos;
        pos = parent;
    }
    heap[pos] = moving;
    heapPosOf[moving.slot] = pos;
}

void
EventQueue::siftDown(std::uint32_t pos, HeapEntry moving)
{
    const auto count = static_cast<std::uint32_t>(heap.size());
    while (true) {
        const std::uint64_t first =
            static_cast<std::uint64_t>(pos) * kArity + 1;
        if (first >= count)
            break;
        const auto last = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(first + kArity - 1, count - 1));
        auto best = static_cast<std::uint32_t>(first);
        if (last - best == kArity - 1) {
            // Full fan-out: pairwise tournament so the two first-round
            // comparisons are independent (better ILP than a serial
            // running-min loop).
            const auto c0 = best, c1 = best + 1, c2 = best + 2,
                       c3 = best + 3;
            const std::uint32_t lo01 =
                firesBefore(heap[c1], heap[c0]) ? c1 : c0;
            const std::uint32_t lo23 =
                firesBefore(heap[c3], heap[c2]) ? c3 : c2;
            best = firesBefore(heap[lo23], heap[lo01]) ? lo23 : lo01;
        } else {
            for (std::uint32_t child = best + 1; child <= last;
                 ++child) {
                if (firesBefore(heap[child], heap[best]))
                    best = child;
            }
        }
        if (!firesBefore(heap[best], moving))
            break;
        heap[pos] = heap[best];
        heapPosOf[heap[pos].slot] = pos;
        pos = best;
    }
    heap[pos] = moving;
    heapPosOf[moving.slot] = pos;
}

void
EventQueue::removeAt(std::uint32_t pos)
{
    const auto lastPos = static_cast<std::uint32_t>(heap.size()) - 1;
    if (pos != lastPos) {
        const HeapEntry moved = heap[lastPos];
        heap.pop_back();
        // The relocated entry may need to move either direction.
        siftDown(pos, moved);
        if (heapPosOf[moved.slot] == pos)
            siftUp(pos, moved);
    } else {
        heap.pop_back();
    }
}

void
EventQueue::freeSlot(std::uint32_t index)
{
    ++generationOf[index];
    freeSlots.push_back(index);
}

} // namespace sim
} // namespace pascal
