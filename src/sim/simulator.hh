/**
 * @file
 * Simulation clock + run loop on top of EventQueue.
 */

#ifndef PASCAL_SIM_SIMULATOR_HH
#define PASCAL_SIM_SIMULATOR_HH

#include <cstdint>

#include "src/common/types.hh"
#include "src/sim/event_callback.hh"
#include "src/sim/event_queue.hh"

namespace pascal
{
namespace sim
{

/**
 * Owns the clock and the event queue and drives the simulation to
 * completion.
 *
 * Components hold a Simulator& and schedule their own continuation
 * events; run() executes until the queue drains or a time/event limit
 * hits.
 */
class Simulator
{
  public:
    /** Current simulation time in seconds. */
    Time now() const { return clock; }

    /** Schedule @p cb at absolute time @p when (must be >= now()). */
    EventId at(Time when, EventCallback cb);

    /** Schedule @p cb @p delay seconds from now (delay >= 0). */
    EventId after(Time delay, EventCallback cb);

    /** Cancel a pending event (no-op if already fired). */
    void cancel(EventId id) { events.cancel(id); }

    /**
     * Run until the event queue drains, until simulated time would
     * exceed @p until, or until @p max_events have fired.
     *
     * @return Number of events executed.
     */
    std::uint64_t run(Time until = kTimeInfinity,
                      std::uint64_t max_events = UINT64_MAX);

    /** Request that run() return after the current event completes. */
    void stop() { stopRequested = true; }

    /** Live events still queued. */
    std::size_t pendingEvents() const { return events.size(); }

  private:
    EventQueue events;
    Time clock = 0.0;
    bool stopRequested = false;
};

} // namespace sim
} // namespace pascal

#endif // PASCAL_SIM_SIMULATOR_HH
