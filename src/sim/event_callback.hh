/**
 * @file
 * Small-buffer-optimized, move-only callback type for simulation
 * events.
 *
 * The event loop fires one continuation per simulated iteration, so
 * the callback wrapper is on the hottest path of the whole simulator.
 * std::function keeps only 16 bytes of inline storage on common
 * ABIs, which forces a heap allocation for any closure capturing more
 * than two pointers. EventCallback keeps 48 bytes inline — enough for
 * every closure the simulator schedules — so steady-state event
 * scheduling allocates nothing. Larger or throwing-move callables
 * transparently fall back to the heap.
 */

#ifndef PASCAL_SIM_EVENT_CALLBACK_HH
#define PASCAL_SIM_EVENT_CALLBACK_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace pascal
{
namespace sim
{

/**
 * Move-only owning wrapper around any `void()` callable.
 *
 * Callables up to kInlineSize bytes that are nothrow-move-constructible
 * live inline; anything else is heap-allocated. Invoking an empty
 * EventCallback is undefined (the event queue never stores empty
 * callbacks).
 */
class EventCallback
{
  public:
    /** Inline storage budget (bytes). Sized for closures capturing a
     *  this-pointer plus a handful of scalars or a small struct. */
    static constexpr std::size_t kInlineSize = 48;

    EventCallback() noexcept = default;

    /** Wrap any callable invocable as `void()`. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    EventCallback(F&& f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void*>(storage)) Fn(std::forward<F>(f));
            ops = &inlineOps<Fn>;
            trivial = std::is_trivially_copyable_v<Fn> &&
                      std::is_trivially_destructible_v<Fn>;
        } else {
            ::new (static_cast<void*>(storage))
                Fn*(new Fn(std::forward<F>(f)));
            ops = &heapOps<Fn>;
        }
    }

    EventCallback(EventCallback&& other) noexcept { moveFrom(other); }

    EventCallback&
    operator=(EventCallback&& other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback&) = delete;
    EventCallback& operator=(const EventCallback&) = delete;

    ~EventCallback() { reset(); }

    /** Invoke the wrapped callable. @pre *this is non-empty. */
    void
    operator()()
    {
        ops->invoke(storage);
    }

    explicit operator bool() const noexcept { return ops != nullptr; }

    /** True if a callable of type F would be stored inline. */
    template <typename F>
    static constexpr bool
    storedInline()
    {
        return fitsInline<std::decay_t<F>>();
    }

  private:
    struct Ops
    {
        void (*invoke)(void* src);
        /** Move the callable from @p src storage into @p dst storage
         *  and destroy the source (heap case: just moves the
         *  pointer). */
        void (*relocate)(void* dst, void* src) noexcept;
        void (*destroy)(void* src) noexcept;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineSize &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void* src) { (*static_cast<Fn*>(src))(); },
        [](void* dst, void* src) noexcept {
            ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
        },
        [](void* src) noexcept { static_cast<Fn*>(src)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void* src) { (**static_cast<Fn**>(src))(); },
        [](void* dst, void* src) noexcept {
            *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
        },
        [](void* src) noexcept { delete *static_cast<Fn**>(src); },
    };

    void
    reset() noexcept
    {
        if (ops) {
            if (!trivial)
                ops->destroy(storage);
            ops = nullptr;
        }
    }

    /** @pre *this holds no callable (fresh or just reset). */
    void
    moveFrom(EventCallback& other) noexcept
    {
        ops = other.ops;
        trivial = other.trivial;
        if (ops) {
            // Fast path for the simulator's bread-and-butter closures
            // (pointer + a few scalars): a straight copy instead of an
            // indirect relocate call.
            if (trivial)
                std::memcpy(storage, other.storage, kInlineSize);
            else
                ops->relocate(storage, other.storage);
            other.ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage[kInlineSize];
    const Ops* ops = nullptr;
    bool trivial = false;
};

} // namespace sim
} // namespace pascal

#endif // PASCAL_SIM_EVENT_CALLBACK_HH
