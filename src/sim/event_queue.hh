/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events scheduled for the same timestamp fire in insertion order
 * (FIFO), which keeps whole simulations bit-reproducible regardless of
 * heap implementation details.
 */

#ifndef PASCAL_SIM_EVENT_QUEUE_HH
#define PASCAL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/types.hh"

namespace pascal
{
namespace sim
{

/** Handle identifying a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/**
 * Time-ordered queue of callbacks.
 *
 * Not thread-safe: the simulator is single-threaded by design, like
 * most architectural simulators, so that runs are reproducible.
 */
class EventQueue
{
  public:
    /**
     * Schedule @p callback to fire at absolute time @p when.
     * @return Handle that can be passed to cancel().
     */
    EventId schedule(Time when, std::function<void()> callback);

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown
     * event is a harmless no-op.
     */
    void cancel(EventId id);

    /** True if no live (non-cancelled) events remain. */
    bool empty() const;

    /** Timestamp of the earliest live event (infinity when empty). */
    Time nextTime() const;

    /**
     * Pop and return the earliest live event.
     * @pre !empty()
     */
    struct Fired
    {
        Time when;                      //!< Scheduled timestamp.
        std::function<void()> callback; //!< The work to run.
    };
    Fired pop();

    /** Number of live events currently queued. */
    std::size_t size() const { return heap.size() - cancelled.size(); }

  private:
    struct Entry
    {
        Time when;
        EventId id;
        std::function<void()> callback;
    };

    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id; // FIFO among equal timestamps
        }
    };

    /** Drop cancelled entries sitting at the top of the heap. */
    void skipCancelled() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    mutable std::unordered_set<EventId> cancelled;
    EventId nextId = 0;
};

} // namespace sim
} // namespace pascal

#endif // PASCAL_SIM_EVENT_QUEUE_HH
