/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events scheduled for the same timestamp fire in insertion order
 * (FIFO), which keeps whole simulations bit-reproducible regardless of
 * heap implementation details.
 *
 * Implementation: a slotted 4-ary heap. The heap array holds small
 * trivially-copyable entries {when, seq, slot} so sift operations are
 * plain 24-byte copies and comparisons stay inside the contiguous
 * heap array; callbacks live in stable side slots (reused through a
 * free list) and never move while queued. EventIds pack the slot
 * index with a per-slot generation stamp, giving true O(1)-lookup
 * cancellation — the entry is unlinked immediately, with no tombstone
 * set to consult on every pop, and a stale id (already fired,
 * cancelled, or never issued) is detected exactly by a generation
 * mismatch.
 */

#ifndef PASCAL_SIM_EVENT_QUEUE_HH
#define PASCAL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "src/common/types.hh"
#include "src/sim/event_callback.hh"

namespace pascal
{
namespace sim
{

/**
 * Handle identifying a scheduled event, usable for cancellation.
 *
 * Packed as (generation << 32) | slot index. Generations start at 1,
 * so the default id (kNoEvent == 0) is always stale.
 */
using EventId = std::uint64_t;

/** Sentinel id that never identifies a live event. */
inline constexpr EventId kNoEvent = 0;

/**
 * Time-ordered queue of callbacks.
 *
 * Not thread-safe: the simulator is single-threaded by design, like
 * most architectural simulators, so that runs are reproducible.
 */
class EventQueue
{
  public:
    /**
     * Schedule @p callback to fire at absolute time @p when.
     * @return Handle that can be passed to cancel().
     */
    EventId schedule(Time when, EventCallback callback);

    /**
     * Cancel a pending event. Cancelling an already-fired, already-
     * cancelled, or unknown event is a harmless no-op.
     *
     * @return True if a live event was actually cancelled.
     */
    bool cancel(EventId id);

    /** True if no live events remain. */
    bool empty() const { return heap.empty(); }

    /** Timestamp of the earliest live event (infinity when empty). */
    Time
    nextTime() const
    {
        return heap.empty() ? kTimeInfinity : heap[0].when;
    }

    /**
     * Pop and return the earliest live event.
     * @pre !empty()
     */
    struct Fired
    {
        Time when;              //!< Scheduled timestamp.
        EventCallback callback; //!< The work to run.
    };
    Fired pop();

    /** Number of live events currently queued. */
    std::size_t size() const { return heap.size(); }

  private:
    static constexpr std::uint32_t kArity = 4;

    /** Heap node: the full sort key plus its slot link. Trivially
     *  copyable on purpose — sifting must not run move constructors. */
    struct HeapEntry
    {
        Time when;
        std::uint64_t seq;  //!< FIFO tiebreaker.
        std::uint32_t slot; //!< Index into slots.
    };

    // Per-slot state lives in parallel arrays rather than one struct:
    // sifting updates heapPosOf for every hop, and a dense 4-byte
    // array keeps those scattered writes L1-resident instead of
    // striding across 64-byte {callback, ...} records. Callbacks are
    // only touched on schedule, fire, and cancel.

    /** True if @p a fires strictly before @p b (earlier time; FIFO
     *  among equal timestamps). */
    static bool
    firesBefore(const HeapEntry& a, const HeapEntry& b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void siftUp(std::uint32_t pos, HeapEntry moving);
    void siftDown(std::uint32_t pos, HeapEntry moving);

    /** Unlink heap position @p pos (swap-with-last + re-sift). */
    void removeAt(std::uint32_t pos);

    /** Retire a slot: bump its generation and recycle the index. */
    void freeSlot(std::uint32_t index);

    std::vector<HeapEntry> heap;
    std::vector<EventCallback> callbackOf;  //!< Indexed by slot.
    std::vector<std::uint32_t> generationOf; //!< Bumped as events die.
    std::vector<std::uint32_t> heapPosOf;    //!< Heap position while live.
    std::vector<std::uint32_t> freeSlots; //!< Recyclable slot indices.
    std::uint64_t nextSeq = 0;
};

} // namespace sim
} // namespace pascal

#endif // PASCAL_SIM_EVENT_QUEUE_HH
