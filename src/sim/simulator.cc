#include "src/sim/simulator.hh"

#include <string>

#include "src/common/log.hh"

namespace pascal
{
namespace sim
{

EventId
Simulator::at(Time when, EventCallback cb)
{
    if (when < clock)
        panic("scheduling event in the past: t=" + std::to_string(when) +
              " now=" + std::to_string(clock));
    return events.schedule(when, std::move(cb));
}

EventId
Simulator::after(Time delay, EventCallback cb)
{
    if (delay < 0.0)
        panic("negative event delay: " + std::to_string(delay));
    return events.schedule(clock + delay, std::move(cb));
}

std::uint64_t
Simulator::run(Time until, std::uint64_t max_events)
{
    stopRequested = false;
    std::uint64_t fired = 0;
    while (!events.empty() && !stopRequested && fired < max_events) {
        if (events.nextTime() > until)
            break;
        auto ev = events.pop();
        clock = ev.when;
        ev.callback();
        ++fired;
    }
    return fired;
}

} // namespace sim
} // namespace pascal
