/**
 * @file
 * TraceSink tests: the ring/export unit contract (instant/complete/
 * async events, wrap-around drops, the export-seam cleanup that keeps
 * b/e pairs matched) and the end-to-end contract — a traced cluster
 * run emits Perfetto-loadable JSON covering the event vocabulary,
 * byte-identical across same-seed runs, without perturbing the
 * simulation relative to telemetry-off.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "src/cluster/run_context.hh"
#include "src/cluster/system_config.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/obs/trace_sink.hh"
#include "src/workload/generator.hh"
#include "tests/run_result_util.hh"

namespace
{

using namespace pascal;
using obs::TraceArg;
using obs::TraceCat;
using obs::TraceName;
using obs::TraceSink;
using cluster::PlacementType;
using cluster::SchedulerType;
using cluster::SystemConfig;

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

using TraceSinkUnit = QuietLogs;
using TraceEndToEnd = QuietLogs;

std::size_t
countOccurrences(const std::string& haystack, const std::string& needle)
{
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

TEST_F(TraceSinkUnit, InstantEventRendersEveryField)
{
    TraceSink sink(8);
    sink.instant(TraceCat::Admission, TraceName::Admit, 3, 0.0025,
                 TraceArg::Request, 17);
    EXPECT_EQ(sink.numRecorded(), 1u);
    EXPECT_EQ(sink.numDropped(), 0u);
    EXPECT_EQ(sink.size(), 1u);

    const std::string json = sink.writeJson();
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"admit\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"admission\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);
    // 0.0025 virtual seconds -> 2500.000 us.
    EXPECT_NE(json.find("\"ts\": 2500.000"), std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"req\": 17}"), std::string::npos);
}

TEST_F(TraceSinkUnit, CompleteEventCarriesDuration)
{
    TraceSink sink(8);
    sink.complete(TraceCat::Iteration, TraceName::Iteration, 0, 1.0,
                  0.004, TraceArg::Batch, 12);
    const std::string json = sink.writeJson();
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 4000.000"), std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"batch\": 12}"),
              std::string::npos);
}

TEST_F(TraceSinkUnit, ReasonArgRendersThroughTheTable)
{
    static const char* const kReasons[] = {"none", "state_changed"};
    TraceSink sink(8);
    sink.setReasonTable(kReasons, 2);
    sink.instant(TraceCat::Plan, TraceName::PlanRepair, 1, 0.5,
                 TraceArg::Reason, 1);
    // Out-of-table codes fall back to the numeric value.
    sink.instant(TraceCat::Plan, TraceName::PlanFullWalk, 1, 0.6,
                 TraceArg::Reason, 99);
    const std::string json = sink.writeJson();
    EXPECT_NE(json.find("\"args\": {\"reason\": \"state_changed\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"reason\": 99}"),
              std::string::npos);
}

TEST_F(TraceSinkUnit, RingWrapDropsOldestAndCountsThem)
{
    TraceSink sink(4);
    for (int i = 0; i < 10; ++i)
        sink.instant(TraceCat::Plan, TraceName::PlanReuse, 0,
                     0.001 * i, TraceArg::Value, i);
    EXPECT_EQ(sink.numRecorded(), 10u);
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.numDropped(), 6u);

    // Only the newest four survive, oldest-first in the export.
    const std::string json = sink.writeJson();
    EXPECT_EQ(json.find("\"v\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"v\": 6"), std::string::npos);
    EXPECT_NE(json.find("\"v\": 9"), std::string::npos);
    EXPECT_LT(json.find("\"v\": 6"), json.find("\"v\": 9"));
}

TEST_F(TraceSinkUnit, ExportSeamKeepsAsyncPairsMatched)
{
    TraceSink sink(16);
    // Orphaned end (begin never recorded): dropped at export.
    sink.asyncEnd(TraceCat::Migration, TraceName::KvTransfer, 2, 0.1,
                  77);
    // Open span (no end by export time): closed synthetically at the
    // last recorded timestamp.
    sink.asyncBegin(TraceCat::Migration, TraceName::KvTransfer, 1,
                    0.2, 42, TraceArg::Tokens, 512);
    sink.instant(TraceCat::Slo, TraceName::SloOk, 0, 0.9);

    const std::string json = sink.writeJson();
    EXPECT_EQ(json.find("\"id\": \"77\""), std::string::npos);
    EXPECT_EQ(countOccurrences(json, "\"id\": \"42\""), 2u);
    EXPECT_EQ(countOccurrences(json, "\"ph\": \"b\""), 1u);
    EXPECT_EQ(countOccurrences(json, "\"ph\": \"e\""), 1u);
    // The synthetic close lands at the last timestamp (0.9 s).
    EXPECT_EQ(countOccurrences(json, "\"ts\": 900000.000"), 2u);
}

TEST_F(TraceSinkUnit, MatchedPairSurvivesIntact)
{
    TraceSink sink(16);
    sink.asyncBegin(TraceCat::Migration, TraceName::KvTransfer, 1,
                    0.2, 5);
    sink.asyncEnd(TraceCat::Migration, TraceName::KvTransfer, 1, 0.3,
                  5);
    const std::string json = sink.writeJson();
    EXPECT_EQ(countOccurrences(json, "\"id\": \"5\""), 2u);
    EXPECT_EQ(countOccurrences(json, "\"ph\": \"e\""), 1u);
}

/** Churny constrained deployment: admissions, evictions, phase
 *  transitions, migrations, and SLO flips all fire, so the trace
 *  covers the whole event vocabulary. */
workload::Trace
churnTrace(std::uint64_t seed, int n = 140)
{
    Rng rng(seed);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.reasoning = {300.0, 0.8, 32, 1500};
    profile.answering = {120.0, 0.7, 16, 600};
    return workload::generateTrace(profile, n, 12.0, rng);
}

SystemConfig
tracedConfig()
{
    SystemConfig cfg;
    cfg.scheduler = SchedulerType::Pascal;
    cfg.placement = PlacementType::Pascal;
    cfg.numInstances = 2;
    cfg.gpuKvCapacityTokens = 4096;
    cfg.kvBlockSizeTokens = 16;
    cfg.limits.demoteThresholdTokens = 600;
    cfg.limits.demoteLookaheadTokens = 128;
    cfg.telemetry.traceEnabled = true;
    return cfg;
}

TEST_F(TraceEndToEnd, TracedRunCoversTheEventVocabulary)
{
    auto trace = churnTrace(42);
    auto result = cluster::RunContext::execute(tracedConfig(), trace);
    ASSERT_FALSE(result.traceJson.empty());

    int categories = 0;
    for (const char* cat :
         {"iteration", "plan", "admission", "eviction", "phase",
          "migration", "slo"}) {
        if (result.traceJson.find("\"cat\": \"" + std::string(cat) +
                                  "\"") != std::string::npos)
            ++categories;
    }
    EXPECT_GE(categories, 6);

    // Plan boundaries label their tier, and non-reuse tiers say why
    // the cheaper tier declined.
    EXPECT_NE(result.traceJson.find("\"name\": \"reuse\""),
              std::string::npos);
    EXPECT_NE(result.traceJson.find("\"args\": {\"reason\": \""),
              std::string::npos);
}

TEST_F(TraceEndToEnd, SameSeedTracesAreByteIdentical)
{
    auto trace = churnTrace(7);
    SystemConfig cfg = tracedConfig();
    auto a = cluster::RunContext::execute(cfg, trace);
    auto b = cluster::RunContext::execute(cfg, trace);
    ASSERT_FALSE(a.traceJson.empty());
    EXPECT_EQ(a.traceJson, b.traceJson);
    EXPECT_EQ(a.statsDump, b.statsDump);
}

TEST_F(TraceEndToEnd, TracingDoesNotPerturbTheSimulation)
{
    auto trace = churnTrace(99);
    SystemConfig cfg = tracedConfig();
    auto traced = cluster::RunContext::execute(cfg, trace);
    cfg.telemetry.traceEnabled = false;
    auto plain = cluster::RunContext::execute(cfg, trace);
    EXPECT_TRUE(plain.traceJson.empty());
    test::expectIdentical(traced, plain);
}

TEST_F(TraceEndToEnd, BoundedRingStillExportsMatchedPairs)
{
    auto trace = churnTrace(3, 120);
    SystemConfig cfg = tracedConfig();
    cfg.telemetry.traceCapacity = 64; // Tiny: the ring wraps hard.
    auto result = cluster::RunContext::execute(cfg, trace);
    ASSERT_FALSE(result.traceJson.empty());
    EXPECT_EQ(countOccurrences(result.traceJson, "\"ph\": \"b\""),
              countOccurrences(result.traceJson, "\"ph\": \"e\""));
}

} // namespace
