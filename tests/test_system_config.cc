/**
 * @file
 * Unit tests for SystemConfig: factories, validation, names, and the
 * scheduler/placement object factories.
 */

#include <gtest/gtest.h>

#include "src/cluster/system_config.hh"
#include "src/common/log.hh"
#include "src/core/fcfs_scheduler.hh"
#include "src/core/pascal_placement.hh"
#include "src/core/pascal_scheduler.hh"
#include "src/core/rr_scheduler.hh"

namespace
{

using namespace pascal;
using cluster::makePlacement;
using cluster::makeScheduler;
using cluster::PlacementType;
using cluster::SchedulerType;
using cluster::SystemConfig;

TEST(SystemConfig, DefaultsValidate)
{
    SystemConfig cfg;
    cfg.validate();
    EXPECT_EQ(cfg.numInstances, 8);
    EXPECT_EQ(cfg.limits.quantum, 500);
    EXPECT_EQ(cfg.limits.demoteThresholdTokens, 5000);
    EXPECT_EQ(cfg.kvBlockSizeTokens, 16);
    EXPECT_EQ(cfg.model.name, "DeepSeek-R1-Distill-Qwen-32B");
    EXPECT_EQ(cfg.hardware.name, "H100-96GB");
}

TEST(SystemConfig, BaselineFactoryWiresPlacement)
{
    auto fcfs = SystemConfig::baseline(SchedulerType::Fcfs, 4);
    fcfs.validate();
    EXPECT_EQ(fcfs.numInstances, 4);
    EXPECT_EQ(fcfs.placement, PlacementType::Baseline);
    EXPECT_EQ(fcfs.schedulerName(), "FCFS");
    EXPECT_EQ(fcfs.placementName(), "min-kv/no-migration");

    auto rr = SystemConfig::baseline(SchedulerType::Rr);
    EXPECT_EQ(rr.schedulerName(), "RR");
}

TEST(SystemConfig, PascalFactory)
{
    auto cfg = SystemConfig::pascal(2);
    cfg.validate();
    EXPECT_EQ(cfg.numInstances, 2);
    EXPECT_EQ(cfg.scheduler, SchedulerType::Pascal);
    EXPECT_EQ(cfg.placement, PlacementType::Pascal);
    EXPECT_EQ(cfg.schedulerName(), "PASCAL");
    EXPECT_EQ(cfg.placementName(), "PASCAL");
}

TEST(SystemConfig, AblationPlacementNames)
{
    SystemConfig cfg;
    cfg.placement = PlacementType::PascalNoMigration;
    EXPECT_EQ(cfg.placementName(), "PASCAL(NoMigration)");
    cfg.placement = PlacementType::PascalNonAdaptive;
    EXPECT_EQ(cfg.placementName(), "PASCAL(NonAdaptive)");
}

TEST(SystemConfig, ValidationCatchesBadKnobs)
{
    SystemConfig cfg;
    cfg.kvBlockSizeTokens = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.maxSimTime = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.gpuKvCapacityTokens = -1;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.limits.maxBatchSize = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.slo.tpotTarget = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Factories, MakeSchedulerReturnsMatchingPolicy)
{
    core::SchedLimits limits;
    auto fcfs = makeScheduler(SchedulerType::Fcfs, limits);
    auto rr = makeScheduler(SchedulerType::Rr, limits);
    auto pascal = makeScheduler(SchedulerType::Pascal, limits);

    EXPECT_NE(dynamic_cast<core::FcfsScheduler*>(fcfs.get()), nullptr);
    EXPECT_NE(dynamic_cast<core::RrScheduler*>(rr.get()), nullptr);
    EXPECT_NE(dynamic_cast<core::PascalScheduler*>(pascal.get()),
              nullptr);
    EXPECT_EQ(fcfs->name(), "FCFS");
    EXPECT_EQ(rr->name(), "RR");
    EXPECT_EQ(pascal->name(), "PASCAL");
}

TEST(Factories, MakePlacementReturnsMatchingPolicy)
{
    auto baseline = makePlacement(PlacementType::Baseline);
    EXPECT_NE(dynamic_cast<core::BaselinePlacement*>(baseline.get()),
              nullptr);

    auto full = makePlacement(PlacementType::Pascal);
    auto* pascal = dynamic_cast<core::PascalPlacement*>(full.get());
    ASSERT_NE(pascal, nullptr);
    EXPECT_EQ(pascal->variant(), core::PascalPlacement::Variant::Full);

    auto pinned = makePlacement(PlacementType::PascalNoMigration);
    auto* pinned_p = dynamic_cast<core::PascalPlacement*>(pinned.get());
    ASSERT_NE(pinned_p, nullptr);
    EXPECT_EQ(pinned_p->variant(),
              core::PascalPlacement::Variant::NoMigration);
}

TEST(Factories, FcfsSchedulerForcesQuantumOff)
{
    core::SchedLimits limits;
    limits.quantum = 500;
    auto fcfs = makeScheduler(SchedulerType::Fcfs, limits);
    EXPECT_EQ(fcfs->schedLimits().quantum, 0);
}

} // namespace
