/**
 * @file
 * Unit tests for SystemConfig: factories, validation, names, and the
 * scheduler/placement object factories.
 */

#include <gtest/gtest.h>

#include <string>

#include "src/cluster/system_config.hh"
#include "src/common/log.hh"
#include "src/core/fcfs_scheduler.hh"
#include "src/core/pascal_placement.hh"
#include "src/core/pascal_scheduler.hh"
#include "src/core/pascal_spec_scheduler.hh"
#include "src/core/rr_scheduler.hh"
#include "src/core/srpt_scheduler.hh"
#include "src/predict/predictor.hh"

namespace
{

using namespace pascal;
using cluster::makePlacement;
using cluster::makeScheduler;
using cluster::PlacementType;
using cluster::SchedulerType;
using cluster::SystemConfig;

TEST(SystemConfig, DefaultsValidate)
{
    SystemConfig cfg;
    cfg.validate();
    EXPECT_EQ(cfg.numInstances, 8);
    EXPECT_EQ(cfg.limits.quantum, 500);
    EXPECT_EQ(cfg.limits.demoteThresholdTokens, 5000);
    EXPECT_EQ(cfg.kvBlockSizeTokens, 16);
    EXPECT_EQ(cfg.model.name, "DeepSeek-R1-Distill-Qwen-32B");
    EXPECT_EQ(cfg.hardware.name, "H100-96GB");
}

TEST(SystemConfig, BaselineFactoryWiresPlacement)
{
    auto fcfs = SystemConfig::baseline(SchedulerType::Fcfs, 4);
    fcfs.validate();
    EXPECT_EQ(fcfs.numInstances, 4);
    EXPECT_EQ(fcfs.placement, PlacementType::Baseline);
    EXPECT_EQ(fcfs.schedulerName(), "FCFS");
    EXPECT_EQ(fcfs.placementName(), "min-kv/no-migration");

    auto rr = SystemConfig::baseline(SchedulerType::Rr);
    EXPECT_EQ(rr.schedulerName(), "RR");
}

TEST(SystemConfig, PascalFactory)
{
    auto cfg = SystemConfig::pascal(2);
    cfg.validate();
    EXPECT_EQ(cfg.numInstances, 2);
    EXPECT_EQ(cfg.scheduler, SchedulerType::Pascal);
    EXPECT_EQ(cfg.placement, PlacementType::Pascal);
    EXPECT_EQ(cfg.schedulerName(), "PASCAL");
    EXPECT_EQ(cfg.placementName(), "PASCAL");
}

TEST(SystemConfig, AblationPlacementNames)
{
    SystemConfig cfg;
    cfg.placement = PlacementType::PascalNoMigration;
    EXPECT_EQ(cfg.placementName(), "PASCAL(NoMigration)");
    cfg.placement = PlacementType::PascalNonAdaptive;
    EXPECT_EQ(cfg.placementName(), "PASCAL(NonAdaptive)");
}

TEST(SystemConfig, ValidationCatchesBadKnobs)
{
    SystemConfig cfg;
    cfg.kvBlockSizeTokens = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.maxSimTime = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.gpuKvCapacityTokens = -1;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.limits.maxBatchSize = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.slo.tpotTarget = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(SystemConfig, RejectsCapacityNotBlockMultiple)
{
    SystemConfig cfg;
    cfg.gpuKvCapacityTokens = 1000; // Default block size 16: 1000 % 16
    EXPECT_THROW(cfg.validate(), FatalError);

    // The message is actionable: it names the rounded-up capacity.
    try {
        cfg.validate();
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("1008"),
                  std::string::npos)
            << e.what();
    }

    cfg.gpuKvCapacityTokens = 1008;
    cfg.validate();

    // Token-granular accounting admits any capacity.
    cfg.gpuKvCapacityTokens = 1000;
    cfg.kvBlockSizeTokens = 1;
    cfg.validate();

    // Derived capacity (0) is never block-checked.
    cfg = SystemConfig{};
    cfg.gpuKvCapacityTokens = 0;
    cfg.validate();

    EXPECT_EQ(SystemConfig::alignKvCapacity(1000, 16), 1008);
    EXPECT_EQ(SystemConfig::alignKvCapacity(1008, 16), 1008);
    EXPECT_EQ(SystemConfig::alignKvCapacity(1000, 1), 1000);
}

TEST(SystemConfig, RejectsSpeculativePoliciesWithoutPredictor)
{
    SystemConfig cfg;
    cfg.scheduler = SchedulerType::Srpt;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.scheduler = SchedulerType::PascalSpec;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.placement = PlacementType::PascalPredictive;
    EXPECT_THROW(cfg.validate(), FatalError);

    // Wiring any predictor fixes all three.
    cfg = SystemConfig{};
    cfg.scheduler = SchedulerType::Srpt;
    cfg.placement = PlacementType::PascalPredictive;
    cfg.predictor.type = predict::PredictorType::Oracle;
    cfg.validate();
}

TEST(SystemConfig, RejectsInconsistentPredictorAndQuantumKnobs)
{
    // PASCAL-Spec without a quantum cannot time-share its queues.
    SystemConfig cfg;
    cfg.scheduler = SchedulerType::PascalSpec;
    cfg.predictor.type = predict::PredictorType::Oracle;
    cfg.limits.quantum = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    // Lookahead at/above the demotion threshold would demote every
    // predicted-long request from birth.
    cfg = SystemConfig{};
    cfg.scheduler = SchedulerType::PascalSpec;
    cfg.predictor.type = predict::PredictorType::Oracle;
    cfg.limits.demoteThresholdTokens = 500;
    cfg.limits.demoteLookaheadTokens = 500;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.limits.demoteLookaheadTokens = 499;
    cfg.validate();

    // Plain PASCAL ignores the lookahead: no rejection.
    cfg = SystemConfig{};
    cfg.scheduler = SchedulerType::Pascal;
    cfg.limits.demoteThresholdTokens = 200;
    cfg.validate();

    // Noise knobs must match the predictor type.
    cfg = SystemConfig{};
    cfg.predictor.type = predict::PredictorType::Oracle;
    cfg.predictor.noiseSigma = 0.5;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.predictor.type = predict::PredictorType::NoisyOracle;
    cfg.validate();
    cfg.predictor.noiseSigma = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(SystemConfig, FaultConfigValidation)
{
    // SystemConfig::validate() covers the fault layer's knobs too.
    SystemConfig cfg;
    cfg.fault.mttr = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.fault.crashRate = -0.1;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.fault.stragglerFactor = 0.5; // A straggler never speeds up.
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.fault.linkFailureProb = 1.5;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.fault.retryBudget = -1;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.fault.backoffBase = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = SystemConfig{};
    cfg.fault.shedFloor = 1.5;
    EXPECT_THROW(cfg.validate(), FatalError);

    // A maxed-out-but-legal fault config passes.
    cfg = SystemConfig{};
    cfg.fault.enabled = true;
    cfg.fault.crashRate = 1.0;
    cfg.fault.linkFailureProb = 1.0;
    cfg.fault.shedFloor = 1.0;
    cfg.fault.retryBudget = 0;
    cfg.validate();
}

TEST(SystemConfig, FaultBackoffOrderingMessageIsActionable)
{
    SystemConfig cfg;
    cfg.fault.backoffBase = 4.0;
    cfg.fault.backoffCap = 1.0; // Cap below base: rejected by name.
    try {
        cfg.validate();
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("backoffCap"), std::string::npos) << msg;
        EXPECT_NE(msg.find("backoffBase"), std::string::npos) << msg;
        EXPECT_NE(msg.find("ordering"), std::string::npos) << msg;
    }
    cfg.fault.backoffCap = 4.0; // Equal is legal (constant backoff).
    cfg.validate();
}

TEST(SystemConfig, BackoffDelayCapsExponentialGrowth)
{
    fault::FaultConfig cfg;
    cfg.backoffBase = 0.5;
    cfg.backoffCap = 8.0;
    EXPECT_DOUBLE_EQ(fault::backoffDelay(cfg, 0), 0.5);
    EXPECT_DOUBLE_EQ(fault::backoffDelay(cfg, 1), 1.0);
    EXPECT_DOUBLE_EQ(fault::backoffDelay(cfg, 2), 2.0);
    EXPECT_DOUBLE_EQ(fault::backoffDelay(cfg, 4), 8.0);
    EXPECT_DOUBLE_EQ(fault::backoffDelay(cfg, 5), 8.0);   // Capped.
    EXPECT_DOUBLE_EQ(fault::backoffDelay(cfg, 500), 8.0); // No overflow.
}

TEST(SystemConfig, SpeculativeFactoryAndNames)
{
    predict::PredictorConfig pred;
    pred.type = predict::PredictorType::Profile;
    auto cfg = SystemConfig::speculative(SchedulerType::PascalSpec,
                                         pred, 4);
    cfg.validate();
    EXPECT_EQ(cfg.numInstances, 4);
    EXPECT_EQ(cfg.schedulerName(), "PASCAL-Spec");
    EXPECT_EQ(cfg.placementName(), "PASCAL(Predictive)");
    EXPECT_EQ(cfg.predictorName(), "profile");

    auto srpt = SystemConfig::speculative(SchedulerType::Srpt, pred);
    EXPECT_EQ(srpt.schedulerName(), "SRPT");
    EXPECT_EQ(SystemConfig{}.predictorName(), "none");
}

TEST(Factories, MakeSchedulerReturnsMatchingPolicy)
{
    core::SchedLimits limits;
    auto fcfs = makeScheduler(SchedulerType::Fcfs, limits);
    auto rr = makeScheduler(SchedulerType::Rr, limits);
    auto pascal = makeScheduler(SchedulerType::Pascal, limits);
    auto srpt = makeScheduler(SchedulerType::Srpt, limits);
    auto spec = makeScheduler(SchedulerType::PascalSpec, limits);

    EXPECT_NE(dynamic_cast<core::FcfsScheduler*>(fcfs.get()), nullptr);
    EXPECT_NE(dynamic_cast<core::RrScheduler*>(rr.get()), nullptr);
    EXPECT_NE(dynamic_cast<core::PascalScheduler*>(pascal.get()),
              nullptr);
    EXPECT_NE(dynamic_cast<core::SrptScheduler*>(srpt.get()), nullptr);
    EXPECT_NE(dynamic_cast<core::PascalSpecScheduler*>(spec.get()),
              nullptr);
    EXPECT_EQ(fcfs->name(), "FCFS");
    EXPECT_EQ(rr->name(), "RR");
    EXPECT_EQ(pascal->name(), "PASCAL");
    EXPECT_EQ(srpt->name(), "SRPT");
    EXPECT_EQ(spec->name(), "PASCAL-Spec");
}

TEST(Factories, MakePlacementReturnsMatchingPolicy)
{
    auto baseline = makePlacement(PlacementType::Baseline);
    EXPECT_NE(dynamic_cast<core::BaselinePlacement*>(baseline.get()),
              nullptr);

    auto full = makePlacement(PlacementType::Pascal);
    auto* pascal = dynamic_cast<core::PascalPlacement*>(full.get());
    ASSERT_NE(pascal, nullptr);
    EXPECT_EQ(pascal->variant(), core::PascalPlacement::Variant::Full);

    auto pinned = makePlacement(PlacementType::PascalNoMigration);
    auto* pinned_p = dynamic_cast<core::PascalPlacement*>(pinned.get());
    ASSERT_NE(pinned_p, nullptr);
    EXPECT_EQ(pinned_p->variant(),
              core::PascalPlacement::Variant::NoMigration);

    auto predictive = makePlacement(PlacementType::PascalPredictive);
    auto* pred_p =
        dynamic_cast<core::PascalPlacement*>(predictive.get());
    ASSERT_NE(pred_p, nullptr);
    EXPECT_EQ(pred_p->variant(),
              core::PascalPlacement::Variant::Predictive);
    EXPECT_EQ(pred_p->name(), "PASCAL(Predictive)");
}

TEST(Factories, FcfsSchedulerForcesQuantumOff)
{
    core::SchedLimits limits;
    limits.quantum = 500;
    auto fcfs = makeScheduler(SchedulerType::Fcfs, limits);
    EXPECT_EQ(fcfs->schedLimits().quantum, 0);
}

} // namespace
