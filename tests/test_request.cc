/**
 * @file
 * Unit tests for the request state machine: phase progression, the
 * </think> transition, quantum accounting, and time buckets.
 */

#include <gtest/gtest.h>

#include "src/common/log.hh"
#include "src/workload/request.hh"

namespace
{

using namespace pascal;
using workload::BucketKind;
using workload::Phase;
using workload::Request;
using workload::RequestSpec;

RequestSpec
makeSpec(TokenCount reasoning = 3, TokenCount answer = 2)
{
    RequestSpec s;
    s.id = 1;
    s.arrival = 0.0;
    s.promptTokens = 128;
    s.reasoningTokens = reasoning;
    s.answerTokens = answer;
    return s;
}

TEST(RequestSpec, ValidatesFields)
{
    auto s = makeSpec();
    s.validate();

    s.promptTokens = 0;
    EXPECT_THROW(s.validate(), FatalError);

    s = makeSpec();
    s.answerTokens = 0;
    EXPECT_THROW(s.validate(), FatalError);

    s = makeSpec();
    s.reasoningTokens = 0;
    EXPECT_THROW(s.validate(), FatalError);

    s = makeSpec();
    s.startInAnswering = true;
    EXPECT_THROW(s.validate(), FatalError); // reasoningTokens != 0.
    s.reasoningTokens = 0;
    s.validate();
}

TEST(Request, PhaseProgression)
{
    Request r(makeSpec(3, 2));
    EXPECT_EQ(r.phase(), Phase::Reasoning);
    EXPECT_EQ(r.totalToGenerate(), 5);
    EXPECT_EQ(r.kvTokens(), 128);

    r.completePrefill(1.0, 0); // Emits r1.
    EXPECT_EQ(r.generated(), 1);
    EXPECT_EQ(r.phase(), Phase::Reasoning);
    EXPECT_EQ(r.kvTokens(), 129);
    EXPECT_DOUBLE_EQ(r.prefillEnd, 1.0);

    r.emitToken(2.0, 0); // r2.
    r.emitToken(3.0, 0); // r3 = </think>: transition observed.
    EXPECT_EQ(r.phase(), Phase::Answering);
    EXPECT_DOUBLE_EQ(r.reasoningEnd, 3.0);
    EXPECT_EQ(r.reasoningGenerated(), 3);
    EXPECT_EQ(r.answerGenerated(), 0);
    EXPECT_LT(r.firstAnswer, 0.0);

    r.emitToken(4.0, 0); // t1: first answering token.
    EXPECT_DOUBLE_EQ(r.firstAnswer, 4.0);
    EXPECT_EQ(r.answerGenerated(), 1);
    EXPECT_FALSE(r.finished());

    r.emitToken(5.0, 0); // t2: done.
    EXPECT_TRUE(r.finished());
    EXPECT_EQ(r.phase(), Phase::Finished);
    EXPECT_DOUBLE_EQ(r.finish, 5.0);
    ASSERT_EQ(r.answerEmitTimes.size(), 2u);
    EXPECT_DOUBLE_EQ(r.answerEmitTimes[0], 4.0);
    EXPECT_DOUBLE_EQ(r.answerEmitTimes[1], 5.0);
}

TEST(Request, StartInAnsweringSkipsReasoning)
{
    auto spec = makeSpec(0, 2);
    spec.startInAnswering = true;
    Request r(spec);
    EXPECT_EQ(r.phase(), Phase::Answering);
    EXPECT_DOUBLE_EQ(r.reasoningEnd, 0.0); // Conceptually at arrival.

    r.emitToken(1.0, 0);
    EXPECT_DOUBLE_EQ(r.firstAnswer, 1.0);
    r.emitToken(2.0, 0);
    EXPECT_TRUE(r.finished());
}

TEST(Request, QuantumAccounting)
{
    Request r(makeSpec(10, 5));
    r.completePrefill(0.1, 4);
    EXPECT_EQ(r.quantaConsumed, 0);
    EXPECT_EQ(r.quantumTokens, 1);

    r.emitToken(0.2, 4);
    r.emitToken(0.3, 4);
    r.emitToken(0.4, 4); // Fourth token: quantum exhausted.
    EXPECT_EQ(r.quantaConsumed, 1);
    EXPECT_EQ(r.quantumTokens, 0);

    r.resetQuantum();
    EXPECT_EQ(r.quantaConsumed, 0);
}

TEST(Request, QuantumDisabledForFcfs)
{
    Request r(makeSpec(10, 5));
    r.completePrefill(0.1, 0);
    for (int i = 0; i < 8; ++i)
        r.emitToken(0.2 + i * 0.1, 0);
    EXPECT_EQ(r.quantaConsumed, 0);
}

TEST(Request, AccrualSplitsByPhase)
{
    Request r(makeSpec(2, 2));
    r.accrue(1.0, BucketKind::Blocked); // Reasoning-phase wait.
    EXPECT_DOUBLE_EQ(r.reasoningBuckets.blocked, 1.0);

    r.completePrefill(1.0, 0);
    r.accrue(2.0, BucketKind::Executed);
    EXPECT_DOUBLE_EQ(r.reasoningBuckets.executed, 1.0);

    r.emitToken(2.0, 0); // </think>: now answering.
    r.accrue(3.5, BucketKind::Preempted);
    EXPECT_DOUBLE_EQ(r.answeringBuckets.preempted, 1.5);
    EXPECT_DOUBLE_EQ(r.reasoningBuckets.total(), 2.0);
}

TEST(Request, AccrualIgnoresNonPositiveIntervals)
{
    Request r(makeSpec());
    r.accrue(1.0, BucketKind::Blocked);
    r.accrue(1.0, BucketKind::Executed); // dt = 0.
    EXPECT_DOUBLE_EQ(r.reasoningBuckets.executed, 0.0);
    EXPECT_DOUBLE_EQ(r.reasoningBuckets.total(), 1.0);
}

TEST(Request, ResetAccrualSkipsInterval)
{
    Request r(makeSpec());
    r.resetAccrual(5.0);
    r.accrue(6.0, BucketKind::Blocked);
    EXPECT_DOUBLE_EQ(r.reasoningBuckets.blocked, 1.0);
}

TEST(RequestDeath, EmitPastEndPanics)
{
    Request r(makeSpec(1, 1));
    r.completePrefill(0.1, 0); // </think> immediately (1 reasoning tok).
    r.emitToken(0.2, 0);       // Final answer token.
    ASSERT_TRUE(r.finished());
    EXPECT_DEATH(r.emitToken(0.3, 0), "finished");
}

TEST(RequestDeath, DoublePrefillPanics)
{
    Request r(makeSpec());
    r.completePrefill(0.1, 0);
    EXPECT_DEATH(r.completePrefill(0.2, 0), "double prefill");
}

} // namespace
