/**
 * @file
 * Unit tests for the serializing bandwidth link: FIFO queueing and
 * contention latency (the Section V-C mechanism).
 */

#include <gtest/gtest.h>

#include "src/common/log.hh"
#include "src/model/link.hh"
#include "src/sim/simulator.hh"

namespace
{

using pascal::model::Link;
using pascal::sim::Simulator;

TEST(Link, SingleTransferLatencyIsBytesOverRate)
{
    Simulator sim;
    Link link(sim, 100.0, "test"); // 100 B/s.
    bool done = false;
    pascal::Time completion = link.submit(250, [&] { done = true; });
    EXPECT_DOUBLE_EQ(completion, 2.5);
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Link, BackToBackTransfersQueue)
{
    Simulator sim;
    Link link(sim, 100.0, "test");
    pascal::Time first = link.submit(100, nullptr);  // [0, 1]
    pascal::Time second = link.submit(100, nullptr); // [1, 2]
    EXPECT_DOUBLE_EQ(first, 1.0);
    EXPECT_DOUBLE_EQ(second, 2.0);

    const auto& lat = link.transferLatencies();
    ASSERT_EQ(lat.size(), 2u);
    EXPECT_DOUBLE_EQ(lat[0], 1.0);
    EXPECT_DOUBLE_EQ(lat[1], 2.0); // Includes 1 s of queueing.
}

TEST(Link, IdleGapResetsQueue)
{
    Simulator sim;
    Link link(sim, 100.0, "test");
    link.submit(100, [] {}); // Done at t=1.
    sim.run();
    EXPECT_DOUBLE_EQ(sim.now(), 1.0);

    // Submit at t=1; the link is free again.
    pascal::Time done = link.submit(100, nullptr);
    EXPECT_DOUBLE_EQ(done, 2.0);
    EXPECT_DOUBLE_EQ(link.transferLatencies().back(), 1.0);
}

TEST(Link, ZeroByteTransferIsInstant)
{
    Simulator sim;
    Link link(sim, 100.0, "test");
    EXPECT_DOUBLE_EQ(link.submit(0, nullptr), 0.0);
}

TEST(Link, TracksTotals)
{
    Simulator sim;
    Link link(sim, 100.0, "test");
    link.submit(100, nullptr);
    link.submit(300, nullptr);
    EXPECT_EQ(link.totalBytes(), 400);
    EXPECT_EQ(link.numTransfers(), 2u);
    // Busy [0,4]: fully utilized at t=4, half at t=8.
    EXPECT_DOUBLE_EQ(link.utilization(4.0), 1.0);
    EXPECT_DOUBLE_EQ(link.utilization(8.0), 0.5);
}

TEST(Link, UtilizationReflectsIdleTime)
{
    Simulator sim;
    Link link(sim, 100.0, "test");
    link.submit(100, nullptr); // Busy [0,1].
    sim.run();
    EXPECT_NEAR(link.utilization(4.0), 0.25, 1e-12);
    EXPECT_DOUBLE_EQ(link.utilization(0.0), 0.0);
}

TEST(Link, RejectsNonPositiveBandwidth)
{
    Simulator sim;
    EXPECT_THROW(Link(sim, 0.0, "bad"), pascal::FatalError);
}

TEST(LinkDeath, NegativeBytesPanics)
{
    Simulator sim;
    Link link(sim, 100.0, "test");
    EXPECT_DEATH(link.submit(-1, nullptr), "negative transfer");
}

} // namespace
