/**
 * @file
 * StatRegistry tests: the unit contract (non-owning counters, polled
 * gauges, registry-owned distributions, registration-order dumps) and
 * the end-to-end contract — a cluster run's generic statsDump is a
 * superset of the hand-wired RunResult counters, with matching values.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/cluster/run_context.hh"
#include "src/cluster/system_config.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/obs/stat_registry.hh"
#include "src/workload/generator.hh"

namespace
{

using namespace pascal;
using cluster::SchedulerType;
using cluster::SystemConfig;

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

using StatRegistryEndToEnd = QuietLogs;

TEST(StatRegistry, CounterPointerReadsLiveValue)
{
    obs::StatRegistry reg;
    std::uint64_t hits = 0;
    reg.counter("unit.hits", &hits);
    hits = 41;
    ++hits; // The hot path stays a bare increment.
    auto dump = reg.dump();
    ASSERT_EQ(dump.size(), 1u);
    EXPECT_EQ(dump[0].name, "unit.hits");
    EXPECT_EQ(dump[0].kind, obs::StatKind::Counter);
    EXPECT_DOUBLE_EQ(dump[0].value, 42.0);
}

TEST(StatRegistry, PolledCounterAndGauge)
{
    obs::StatRegistry reg;
    std::uint64_t a = 3;
    std::uint64_t b = 4;
    reg.counter("unit.total", [&]() { return a + b; });
    double level = 0.25;
    reg.gauge("unit.level", [&]() { return level; });

    a = 10;
    level = 0.75;
    auto dump = reg.dump();
    ASSERT_EQ(dump.size(), 2u);
    EXPECT_DOUBLE_EQ(dump[0].value, 14.0);
    EXPECT_EQ(dump[1].kind, obs::StatKind::Gauge);
    EXPECT_DOUBLE_EQ(dump[1].value, 0.75);
}

TEST(StatRegistry, DistributionSummarizesSamples)
{
    obs::StatRegistry reg;
    stats::Summary& dist = reg.distribution("unit.batch");
    for (double v : {2.0, 4.0, 6.0})
        dist.add(v);
    auto dump = reg.dump();
    ASSERT_EQ(dump.size(), 1u);
    EXPECT_EQ(dump[0].kind, obs::StatKind::Distribution);
    EXPECT_EQ(dump[0].count, 3u);
    EXPECT_DOUBLE_EQ(dump[0].mean, 4.0);
    EXPECT_DOUBLE_EQ(dump[0].min, 2.0);
    EXPECT_DOUBLE_EQ(dump[0].max, 6.0);
    EXPECT_GT(dump[0].stddev, 0.0);
}

TEST(StatRegistry, EmptyDistributionDumpsFiniteBounds)
{
    obs::StatRegistry reg;
    reg.distribution("unit.empty");
    auto dump = reg.dump();
    ASSERT_EQ(dump.size(), 1u);
    EXPECT_EQ(dump[0].count, 0u);
    // Summary's empty min/max are +/-inf; the dump must stay
    // serializable.
    EXPECT_DOUBLE_EQ(dump[0].min, 0.0);
    EXPECT_DOUBLE_EQ(dump[0].max, 0.0);
}

TEST(StatRegistry, DumpPreservesRegistrationOrderAndFindStat)
{
    obs::StatRegistry reg;
    std::uint64_t z = 1;
    std::uint64_t a = 2;
    reg.counter("z.last.alphabetically-first-registered", &z);
    reg.counter("a.first.alphabetically-last-registered", &a);
    reg.distribution("m.middle");
    auto dump = reg.dump();
    ASSERT_EQ(dump.size(), 3u);
    EXPECT_EQ(dump[0].name, "z.last.alphabetically-first-registered");
    EXPECT_EQ(dump[1].name, "a.first.alphabetically-last-registered");
    EXPECT_EQ(dump[2].name, "m.middle");

    const obs::StatValue* found = obs::findStat(dump, "m.middle");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->kind, obs::StatKind::Distribution);
    EXPECT_EQ(obs::findStat(dump, "no.such.stat"), nullptr);
}

TEST(StatRegistry, StatKindNames)
{
    EXPECT_STREQ(obs::statKindName(obs::StatKind::Counter), "counter");
    EXPECT_STREQ(obs::statKindName(obs::StatKind::Gauge), "gauge");
    EXPECT_STREQ(obs::statKindName(obs::StatKind::Distribution),
                 "distribution");
}

/** A registry snapshot from a real run must agree with every
 *  hand-wired accessor it generalizes. */
TEST_F(StatRegistryEndToEnd, DumpIsSupersetOfHandWiredCounters)
{
    Rng rng(321);
    auto trace = workload::generateTrace(
        workload::DatasetProfile::alpacaEval(), 150, 20.0, rng);
    SystemConfig cfg;
    cfg.scheduler = SchedulerType::Pascal;
    cfg.numInstances = 2;
    cfg.gpuKvCapacityTokens = 4096;
    cfg.kvBlockSizeTokens = 16;
    cfg.limits.demoteThresholdTokens = 600;

    cluster::RunContext ctx(cfg);
    ctx.submit(trace);
    ctx.run();
    auto result = ctx.result();
    const auto& clu = ctx.cluster();
    const auto& dump = result.statsDump;

    auto counter_value = [&](const std::string& name) -> double {
        const obs::StatValue* stat = obs::findStat(dump, name);
        EXPECT_NE(stat, nullptr) << "missing stat " << name;
        return stat ? stat->value : -1.0;
    };

    EXPECT_DOUBLE_EQ(counter_value("cluster.plan.builds"),
                     static_cast<double>(clu.totalPlanBuilds()));
    EXPECT_DOUBLE_EQ(counter_value("cluster.plan.repairs"),
                     static_cast<double>(result.numPlanRepairs));
    EXPECT_DOUBLE_EQ(counter_value("cluster.plan.full_walks"),
                     static_cast<double>(result.numFullWalks));
    EXPECT_DOUBLE_EQ(counter_value("cluster.slo.rekeys"),
                     static_cast<double>(clu.totalSloHeapRekeys()));
    EXPECT_DOUBLE_EQ(counter_value("cluster.view.refreshes"),
                     static_cast<double>(clu.numViewRefreshes()));
    EXPECT_DOUBLE_EQ(counter_value("cluster.view.builds"),
                     static_cast<double>(clu.numViewBuilds()));
    EXPECT_DOUBLE_EQ(counter_value("cluster.migrations"),
                     static_cast<double>(result.totalMigrations));

    // Per-instance stats exist for every instance and roll up to the
    // hand-wired totals.
    double iterations = 0.0;
    for (int i = 0; i < cfg.numInstances; ++i) {
        const std::string prefix =
            "instance." + std::to_string(i);
        iterations +=
            counter_value(prefix + ".engine.iterations");
        EXPECT_NE(obs::findStat(dump, prefix + ".kv.gpu_capacity"),
                  nullptr);
        const obs::StatValue* batch =
            obs::findStat(dump, prefix + ".batch.decode_size");
        ASSERT_NE(batch, nullptr);
        EXPECT_EQ(batch->kind, obs::StatKind::Distribution);
        EXPECT_GT(batch->count, 0u);
    }
    EXPECT_DOUBLE_EQ(iterations,
                     static_cast<double>(result.totalIterations));

    // Two snapshots of an idle cluster are identical, row for row.
    EXPECT_EQ(clu.dumpStats(), clu.dumpStats());
}

} // namespace
