/**
 * @file
 * Unit tests for the length-prediction subsystem (src/predict/):
 * oracle exactness, noisy-oracle determinism and bias, profile
 * quantile learning with warmup fallbacks, pairwise-rank win rates,
 * the factory, and the phase edge cases every predictor must survive
 * (startInAnswering / reasoningTokens == 0, finished requests).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/common/log.hh"
#include "src/predict/oracle_predictor.hh"
#include "src/predict/predictor.hh"
#include "src/predict/profile_predictor.hh"
#include "src/predict/rank_predictor.hh"
#include "src/workload/request.hh"

namespace
{

using namespace pascal;
using predict::PredictorConfig;
using predict::PredictorType;
using workload::Request;
using workload::RequestSpec;

Request
makeRequest(RequestId id, TokenCount prompt, TokenCount reasoning,
            TokenCount answer, const std::string& dataset = "ds",
            bool start_in_answering = false)
{
    RequestSpec s;
    s.id = id;
    s.arrival = 0.0;
    s.promptTokens = prompt;
    s.reasoningTokens = reasoning;
    s.answerTokens = answer;
    s.startInAnswering = start_in_answering;
    s.dataset = dataset;
    return Request(s);
}

/** Advance a request by n decode tokens (no pool bookkeeping). */
void
advance(Request& req, TokenCount n)
{
    for (TokenCount i = 0; i < n; ++i)
        req.emitToken(0.0, 0);
}

TEST(OraclePredictor, ReadsTheSpecExactly)
{
    predict::OraclePredictor oracle;
    auto req = makeRequest(1, 100, 300, 50);

    EXPECT_DOUBLE_EQ(oracle.predictRemainingTokens(req), 350.0);
    EXPECT_DOUBLE_EQ(oracle.predictRemainingReasoningTokens(req),
                     300.0);

    advance(req, 120); // Mid-reasoning.
    EXPECT_DOUBLE_EQ(oracle.predictRemainingTokens(req), 230.0);
    EXPECT_DOUBLE_EQ(oracle.predictRemainingReasoningTokens(req),
                     180.0);

    advance(req, 200); // 320 generated: answering.
    EXPECT_DOUBLE_EQ(oracle.predictRemainingTokens(req), 30.0);
    EXPECT_DOUBLE_EQ(oracle.predictRemainingReasoningTokens(req), 0.0);

    advance(req, 30); // Finished.
    EXPECT_DOUBLE_EQ(oracle.predictRemainingTokens(req), 0.0);
    EXPECT_DOUBLE_EQ(oracle.rankScore(req), 0.0);
}

TEST(OraclePredictor, StartInAnsweringHasNoReasoningRemaining)
{
    predict::OraclePredictor oracle;
    // reasoningTokens == 0 is exactly the startInAnswering shape the
    // spec validator admits.
    auto req = makeRequest(2, 64, 0, 40, "ds", true);

    EXPECT_DOUBLE_EQ(oracle.predictRemainingReasoningTokens(req), 0.0);
    EXPECT_DOUBLE_EQ(oracle.predictRemainingTokens(req), 40.0);

    advance(req, 10);
    EXPECT_DOUBLE_EQ(oracle.predictRemainingTokens(req), 30.0);
    EXPECT_DOUBLE_EQ(oracle.predictRemainingReasoningTokens(req), 0.0);
}

TEST(NoisyOraclePredictor, DeterministicPerRequestAndCallOrderFree)
{
    predict::NoisyOraclePredictor a(0.5, 42);
    predict::NoisyOraclePredictor b(0.5, 42);
    auto r1 = makeRequest(1, 100, 300, 50);
    auto r2 = makeRequest(2, 100, 300, 50);

    // Query b in the opposite order: factors must not depend on call
    // order, only on {seed, id}.
    double b2 = b.predictRemainingTokens(r2);
    double b1 = b.predictRemainingTokens(r1);
    EXPECT_DOUBLE_EQ(a.predictRemainingTokens(r1), b1);
    EXPECT_DOUBLE_EQ(a.predictRemainingTokens(r2), b2);

    // Different ids draw different factors (astronomically unlikely to
    // collide), different seeds likewise.
    EXPECT_NE(a.noiseFactor(1), a.noiseFactor(2));
    predict::NoisyOraclePredictor c(0.5, 43);
    EXPECT_NE(c.noiseFactor(1), a.noiseFactor(1));

    // Both estimates of one request share the factor.
    EXPECT_DOUBLE_EQ(a.predictRemainingReasoningTokens(r1),
                     300.0 * a.noiseFactor(1));
    EXPECT_DOUBLE_EQ(a.predictRemainingTokens(r1),
                     350.0 * a.noiseFactor(1));
}

TEST(NoisyOraclePredictor, MeanOneAndZeroMapsToZero)
{
    predict::NoisyOraclePredictor noisy(0.5, 7);
    // E[lognormal(-sigma^2/2, sigma)] = 1: the mean factor over many
    // ids should be close to 1.
    double sum = 0.0;
    const int kIds = 4000;
    for (RequestId id = 0; id < kIds; ++id)
        sum += noisy.noiseFactor(id);
    EXPECT_NEAR(sum / kIds, 1.0, 0.05);

    // A finished request predicts exactly 0 regardless of noise.
    auto req = makeRequest(9, 10, 2, 1);
    advance(req, 3);
    EXPECT_TRUE(req.finished());
    EXPECT_DOUBLE_EQ(noisy.predictRemainingTokens(req), 0.0);
}

TEST(ProfilePredictor, FallsBackToPriorsThenGlobalThenDataset)
{
    predict::DatasetProfilePredictor profile(0.5, 2);
    auto fresh = makeRequest(1, 64, 500, 100, "mathy");

    // No completions anywhere: fixed priors (600 + 500).
    EXPECT_DOUBLE_EQ(profile.predictRemainingTokens(fresh), 1100.0);

    // Two completions of a *different* dataset: global stats kick in.
    for (RequestId id = 10; id < 12; ++id) {
        auto done = makeRequest(id, 64, 200, 40, "chatty");
        profile.observeCompletion(done);
    }
    EXPECT_DOUBLE_EQ(profile.predictRemainingTokens(fresh),
                     200.0 + 40.0);
    EXPECT_EQ(profile.observations("mathy"), 0u);

    // Two completions of the request's own dataset: its medians win.
    for (RequestId id = 20; id < 22; ++id) {
        auto done = makeRequest(id, 64, 800, 120, "mathy");
        profile.observeCompletion(done);
    }
    EXPECT_EQ(profile.observations("mathy"), 2u);
    EXPECT_DOUBLE_EQ(profile.predictRemainingTokens(fresh),
                     800.0 + 120.0);
}

TEST(ProfilePredictor, SubtractsProgressAndNeverPredictsBelowOne)
{
    predict::DatasetProfilePredictor profile(0.5, 1);
    auto done = makeRequest(1, 64, 400, 100, "ds");
    profile.observeCompletion(done);

    auto req = makeRequest(2, 64, 1000, 100, "ds");
    advance(req, 300);
    // Median says 400 total; 300 done -> 100 reasoning left + 100
    // answer.
    EXPECT_DOUBLE_EQ(profile.predictRemainingReasoningTokens(req),
                     100.0);
    EXPECT_DOUBLE_EQ(profile.predictRemainingTokens(req), 200.0);

    advance(req, 300); // 600 generated: outlived the median.
    EXPECT_DOUBLE_EQ(profile.predictRemainingReasoningTokens(req),
                     1.0);

    advance(req, 400); // 1000 generated: answering now.
    EXPECT_DOUBLE_EQ(profile.predictRemainingReasoningTokens(req),
                     0.0);
    EXPECT_DOUBLE_EQ(profile.predictRemainingTokens(req), 100.0);
    advance(req, 99);
    EXPECT_DOUBLE_EQ(profile.predictRemainingTokens(req), 1.0);
}

TEST(ProfilePredictor, StartInAnsweringSkewsNoReasoningQuantile)
{
    predict::DatasetProfilePredictor profile(0.5, 1);
    auto normal = makeRequest(1, 64, 400, 100, "ds");
    profile.observeCompletion(normal);
    auto fig5 = makeRequest(2, 64, 0, 300, "ds", true);
    profile.observeCompletion(fig5);

    // Reasoning median stays 400 (the zero-reasoning completion is
    // excluded); answering median is the interpolated 200.
    auto req = makeRequest(3, 64, 999, 10, "ds");
    EXPECT_DOUBLE_EQ(profile.predictRemainingReasoningTokens(req),
                     400.0);
    EXPECT_DOUBLE_EQ(profile.predictRemainingTokens(req),
                     400.0 + 200.0);

    // A startInAnswering request only ever predicts answering work.
    auto fig5_fresh = makeRequest(4, 64, 0, 50, "ds", true);
    EXPECT_DOUBLE_EQ(
        profile.predictRemainingReasoningTokens(fig5_fresh), 0.0);
    EXPECT_DOUBLE_EQ(profile.predictRemainingTokens(fig5_fresh),
                     200.0);
}

TEST(RunningQuantile, InterpolatesAndResorts)
{
    predict::RunningQuantile q;
    EXPECT_DOUBLE_EQ(q.quantile(0.5), 0.0);
    q.add(30.0);
    q.add(10.0);
    q.add(20.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.5), 20.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.25), 15.0);
    q.add(40.0); // Re-sort after the cached sort.
    EXPECT_DOUBLE_EQ(q.quantile(0.5), 25.0);
    EXPECT_EQ(q.count(), 4u);
}

TEST(RankPredictor, LearnsWhichBucketFinishesFirst)
{
    predict::PairwiseRankPredictor rank(1);

    // "short" dataset completes 200-token requests, "long" 4000-token
    // ones; prompts sized so the buckets differ.
    for (RequestId id = 0; id < 8; ++id) {
        auto s = makeRequest(id, 64, 150, 50, "short");
        auto l = makeRequest(100 + id, 64, 3800, 200, "long");
        rank.observeCompletion(s);
        rank.observeCompletion(l);
    }

    auto short_req = makeRequest(50, 64, 999, 10, "short");
    auto long_req = makeRequest(51, 64, 999, 10, "long");
    EXPECT_GT(rank.winRate(short_req), 0.9);
    EXPECT_LT(rank.winRate(long_req), 0.1);
    EXPECT_LT(rank.rankScore(short_req), rank.rankScore(long_req));

    // Unseen bucket: neutral score.
    auto unknown = makeRequest(52, 64, 100, 10, "mystery");
    EXPECT_DOUBLE_EQ(rank.winRate(unknown), 0.5);

    // Length fallback follows the bucket means.
    EXPECT_NEAR(rank.predictRemainingTokens(short_req), 150.0 + 50.0,
                1.0);
    EXPECT_NEAR(rank.predictRemainingTokens(long_req), 3800.0 + 200.0,
                1.0);
}

TEST(RankPredictor, ZeroWarmupSingleBucketStaysNeutralNotNaN)
{
    // Regression: with warmupCompletions == 0 (validate() allows it)
    // and every completion in one bucket, that bucket has completions
    // but zero pairwise games; the win rate must stay the neutral 0.5
    // rather than compute 0/0 (a NaN rank score would break the
    // schedulers' strict-weak-ordering sorts).
    predict::PairwiseRankPredictor rank(0);
    for (RequestId id = 0; id < 3; ++id) {
        auto done = makeRequest(id, 64, 100, 20, "only");
        rank.observeCompletion(done);
    }
    auto req = makeRequest(9, 64, 100, 20, "only");
    double rate = rank.winRate(req);
    EXPECT_FALSE(std::isnan(rate));
    EXPECT_DOUBLE_EQ(rate, 0.5);
    EXPECT_FALSE(std::isnan(rank.rankScore(req)));
}

TEST(RankPredictor, WarmupAndEdgeCases)
{
    predict::PairwiseRankPredictor rank(1000000);
    for (RequestId id = 0; id < 4; ++id) {
        auto s = makeRequest(id, 64, 100, 20, "a");
        auto l = makeRequest(10 + id, 64, 2000, 20, "b");
        rank.observeCompletion(s);
        rank.observeCompletion(l);
    }
    // Far below the warmup game count: everyone stays neutral.
    auto req = makeRequest(50, 64, 100, 20, "a");
    EXPECT_DOUBLE_EQ(rank.winRate(req), 0.5);

    // startInAnswering: no reasoning remaining, answering fallback.
    auto fig5 = makeRequest(60, 64, 0, 40, "a", true);
    EXPECT_DOUBLE_EQ(rank.predictRemainingReasoningTokens(fig5), 0.0);
    EXPECT_GT(rank.predictRemainingTokens(fig5), 0.0);

    // Finished requests score 0 (front of any order, instantly done).
    auto done = makeRequest(70, 64, 2, 1, "a");
    advance(done, 3);
    EXPECT_DOUBLE_EQ(rank.rankScore(done), 0.0);
    EXPECT_DOUBLE_EQ(rank.predictRemainingTokens(done), 0.0);
}

TEST(PredictorConfig, ValidationAndNames)
{
    PredictorConfig cfg;
    EXPECT_EQ(cfg.name(), "none");
    cfg.validate();

    cfg.type = PredictorType::NoisyOracle;
    EXPECT_THROW(cfg.validate(), FatalError); // sigma missing.
    cfg.noiseSigma = 0.5;
    cfg.validate();
    EXPECT_EQ(cfg.name(), "noisy(0.50)");

    cfg.type = PredictorType::Oracle;
    EXPECT_THROW(cfg.validate(), FatalError); // sigma inconsistent.
    cfg.noiseSigma = 0.0;
    cfg.validate();
    EXPECT_EQ(cfg.name(), "oracle");

    cfg.type = PredictorType::Profile;
    cfg.quantile = 1.0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.quantile = 0.5;
    cfg.warmupCompletions = -1;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.warmupCompletions = 4;
    cfg.validate();
    EXPECT_EQ(cfg.name(), "profile");

    cfg.type = PredictorType::Rank;
    EXPECT_EQ(cfg.name(), "rank");
}

TEST(PredictorFactory, BuildsMatchingTypes)
{
    PredictorConfig cfg;
    EXPECT_EQ(predict::makePredictor(cfg), nullptr);

    cfg.type = PredictorType::Oracle;
    auto oracle = predict::makePredictor(cfg);
    EXPECT_NE(dynamic_cast<predict::OraclePredictor*>(oracle.get()),
              nullptr);
    EXPECT_EQ(oracle->name(), "oracle");

    cfg.type = PredictorType::NoisyOracle;
    cfg.noiseSigma = 0.3;
    auto noisy = predict::makePredictor(cfg);
    EXPECT_NE(
        dynamic_cast<predict::NoisyOraclePredictor*>(noisy.get()),
        nullptr);

    cfg = PredictorConfig{};
    cfg.type = PredictorType::Profile;
    auto profile = predict::makePredictor(cfg);
    EXPECT_NE(
        dynamic_cast<predict::DatasetProfilePredictor*>(profile.get()),
        nullptr);

    cfg.type = PredictorType::Rank;
    auto rank = predict::makePredictor(cfg);
    EXPECT_NE(
        dynamic_cast<predict::PairwiseRankPredictor*>(rank.get()),
        nullptr);
}

} // namespace
