/**
 * @file
 * Unit tests for the round-robin scheduler: quantum-based priority,
 * eviction of the most-served requests, and skip-over-unfit admission
 * (Fig. 2(c) semantics).
 */

#include <gtest/gtest.h>

#include "src/common/log.hh"
#include "src/core/rr_scheduler.hh"
#include "tests/scheduler_test_util.hh"

namespace
{

using namespace pascal;
using core::RrScheduler;
using core::SchedLimits;
using test::SchedulerHarness;

SchedLimits
limits(TokenCount quantum = 4)
{
    SchedLimits l;
    l.quantum = quantum;
    l.maxBatchSize = 64;
    l.maxPrefillTokens = 4096;
    l.maxPrefillSeqs = 8;
    return l;
}

TEST(Rr, RequiresPositiveQuantum)
{
    EXPECT_THROW(RrScheduler(limits(0)), FatalError);
}

TEST(Rr, FreshRequestsOutrankServedOnes)
{
    SchedulerHarness h(400);
    RrScheduler sched(limits(4));
    auto* a = h.make(0, 0.0, 128, 100, 10);
    auto* c = h.make(2, 2.0, 128, 100, 10);
    sched.add(a);
    sched.add(c);
    h.makeResident(a, 4);
    // A consumed one full quantum (prefill token + 3 decode tokens).
    h.decodeTokens(a, 3, 0.5, 4);
    ASSERT_EQ(a->quantaConsumed, 1);

    // Capacity 400 cannot hold A (kv 132+1) and C's prefill (129):
    // only one fits alongside... A costs 133, C costs 129; both = 262
    // <= 400, so both are served. Shrink capacity via occupancy: give
    // C a big prompt instead.
    auto plan = sched.plan(h.pool);
    EXPECT_EQ(plan.prefill.size(), 1u); // C prefills, A waits (prefill
                                        // iteration).
    EXPECT_TRUE(plan.decode.empty());
}

TEST(Rr, EvictsMostServedUnderPressure)
{
    // Two residents, capacity only fits one + a newcomer's prompt.
    SchedulerHarness h(600);
    RrScheduler sched(limits(4));
    auto* a = h.make(0, 0.0, 199, 100, 10); // kv 200 after prefill.
    auto* b = h.make(1, 1.0, 199, 100, 10); // kv 200.
    sched.add(a);
    sched.add(b);
    h.makeResident(a, 4);
    h.makeResident(b, 4);
    h.decodeTokens(a, 7, 0.5, 4); // A: 2 quanta, kv 207.
    ASSERT_EQ(a->quantaConsumed, 2);
    ASSERT_EQ(b->quantaConsumed, 0);

    auto* c = h.make(2, 2.0, 299, 100, 10); // Prompt 299.
    sched.add(c);

    // Priority: B (0 quanta), C (0, later arrival), A (2 quanta).
    // Budget 600: B 201 -> 399; C prefill 300 -> 99; A needs 208 > 99
    // -> unselected; keeping A (207) > 99 -> evicted.
    auto plan = sched.plan(h.pool);
    ASSERT_EQ(plan.prefill.size(), 1u);
    EXPECT_EQ(plan.prefill[0], c);
    ASSERT_EQ(plan.swapOut.size(), 1u);
    EXPECT_EQ(plan.swapOut[0], a);
    EXPECT_TRUE(plan.decode.empty()); // Prefill iteration.
}

TEST(Rr, SkipsUnfitAndServesSmallerLaterRequest)
{
    SchedulerHarness h(500);
    RrScheduler sched(limits(4));
    auto* a = h.make(0, 0.0, 450, 100, 10); // Resident kv 451.
    auto* b = h.make(1, 1.0, 400, 100, 10); // Waiting, prompt 400.
    auto* c = h.make(2, 2.0, 32, 100, 10);  // Waiting, small.
    sched.add(a);
    sched.add(b);
    sched.add(c);
    h.makeResident(a, 4);
    h.decodeTokens(a, 7, 0.5, 4); // A: 2 quanta, kv 458.

    // Priority: B, C (0 quanta), then A. B needs 401 <= 500; C needs
    // 33 <= 99... then A (459) does not fit and is evicted only if
    // keep-budget fails.
    auto plan = sched.plan(h.pool);
    ASSERT_EQ(plan.prefill.size(), 2u);
    EXPECT_EQ(plan.prefill[0], b);
    EXPECT_EQ(plan.prefill[1], c);
    // A unselected; keep budget = 500-401-33 = 66 < 458 -> evicted.
    ASSERT_EQ(plan.swapOut.size(), 1u);
    EXPECT_EQ(plan.swapOut[0], a);
}

TEST(Rr, SwappedRequestResumesByPriority)
{
    SchedulerHarness h(1000);
    RrScheduler sched(limits(4));
    auto* a = h.make(0, 0.0, 99, 100, 10);
    sched.add(a);
    h.makeResident(a, 4);
    h.swapOut(a);

    auto plan = sched.plan(h.pool);
    ASSERT_EQ(plan.swapIn.size(), 1u);
    EXPECT_EQ(plan.swapIn[0], a);
    ASSERT_EQ(plan.decode.size(), 1u);
    EXPECT_EQ(plan.decode[0], a);
}

TEST(Rr, AllFitMeansNoEvictions)
{
    SchedulerHarness h(100000);
    RrScheduler sched(limits(500));
    std::vector<workload::Request*> reqs;
    for (int i = 0; i < 10; ++i) {
        auto* r = h.make(i, 0.1 * i, 128, 100, 10);
        sched.add(r);
        h.makeResident(r, 500);
        reqs.push_back(r);
    }
    auto plan = sched.plan(h.pool);
    EXPECT_EQ(plan.decode.size(), 10u);
    EXPECT_TRUE(plan.swapOut.empty());
}

TEST(Rr, RespectsMaxBatchSize)
{
    SchedulerHarness h(100000);
    auto l = limits(500);
    l.maxBatchSize = 4;
    RrScheduler sched(l);
    for (int i = 0; i < 10; ++i) {
        auto* r = h.make(i, 0.1 * i, 128, 100, 10);
        sched.add(r);
        h.makeResident(r, 500);
    }
    auto plan = sched.plan(h.pool);
    EXPECT_EQ(plan.decode.size(), 4u);
    // Unselected residents stay resident (memory is plentiful).
    EXPECT_TRUE(plan.swapOut.empty());
}

TEST(Rr, InterleavesAtQuantumBoundaries)
{
    // Fig. 2(c): capacity for one request; they alternate per quantum.
    SchedulerHarness h(140);
    RrScheduler sched(limits(4));
    auto* a = h.make(0, 0.0, 99, 100, 10); // kv 100 after prefill.
    auto* b = h.make(1, 1.0, 99, 100, 10);
    sched.add(a);
    sched.add(b);
    // B first (then swapped out) so the pool never over-allocates.
    h.makeResident(b, 4);
    h.swapOut(b);
    h.makeResident(a, 4); // Start: A resident, B swapped; 0 quanta.

    // A has fewer... equal quanta; arrival breaks the tie: A first.
    auto plan = sched.plan(h.pool);
    ASSERT_EQ(plan.decode.size(), 1u);
    EXPECT_EQ(plan.decode[0], a);

    // A exhausts its quantum: B now outranks A and swaps in.
    h.decodeTokens(a, 3, 0.5, 4);
    ASSERT_EQ(a->quantaConsumed, 1);
    plan = sched.plan(h.pool);
    ASSERT_EQ(plan.swapIn.size(), 1u);
    EXPECT_EQ(plan.swapIn[0], b);
    ASSERT_EQ(plan.decode.size(), 1u);
    EXPECT_EQ(plan.decode[0], b);
    ASSERT_EQ(plan.swapOut.size(), 1u);
    EXPECT_EQ(plan.swapOut[0], a);
}

} // namespace
