/**
 * @file
 * Streaming metric sketch tests: LogHistogram / P² unit accuracy, the
 * empty-and-unfinished guard rails, and the end-to-end contract —
 * streaming mode reproduces the exact aggregate's means and maxima
 * bit-for-bit and its percentiles within 1% relative error, while
 * keeping per-request memory bounded (perRequest stays empty and the
 * arena chunks recycle).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/cluster/run_context.hh"
#include "src/cluster/system_config.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/common/stats.hh"
#include "src/obs/streaming_metrics.hh"
#include "src/workload/generator.hh"

namespace
{

using namespace pascal;
using cluster::PlacementType;
using cluster::SchedulerType;
using cluster::SystemConfig;

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

using StreamingEndToEnd = QuietLogs;

double
relErr(double estimate, double exact)
{
    if (exact == 0.0)
        return std::abs(estimate);
    return std::abs(estimate - exact) / std::abs(exact);
}

TEST(LogHistogram, QuantilesWithinAdvertisedRelativeError)
{
    obs::LogHistogram hist;
    // Three decades of deterministic samples.
    std::vector<double> values;
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        double v = 0.01 * std::pow(1000.0, rng.uniformReal(0.0, 1.0));
        values.push_back(v);
        hist.add(v);
    }
    EXPECT_EQ(hist.count(), values.size());
    EXPECT_LT(hist.relativeError(), 0.01);

    std::sort(values.begin(), values.end());
    for (double p : {50.0, 90.0, 95.0, 99.0}) {
        const double exact = stats::percentileOfSorted(values, p);
        EXPECT_LT(relErr(hist.quantile(p), exact),
                  2.0 * hist.relativeError() + 1e-3)
            << "p" << p;
    }
    // Memory stays a few thousand slots for three decades.
    EXPECT_LT(hist.numBuckets(), 4000u);
}

TEST(LogHistogram, ZeroAndNegativeSamplesLandInTheZeroBucket)
{
    obs::LogHistogram hist;
    hist.add(0.0);
    hist.add(-1.0);
    hist.add(1e-12); // Below minValue.
    EXPECT_EQ(hist.count(), 3u);
    EXPECT_DOUBLE_EQ(hist.quantile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(hist.quantile(99.0), 0.0);

    // A mixed stream keeps zeros at the low quantiles only.
    for (int i = 0; i < 97; ++i)
        hist.add(10.0);
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), 0.0);
    EXPECT_LT(relErr(hist.quantile(99.0), 10.0), 0.01);
}

TEST(LogHistogram, EmptyHistogramReportsZero)
{
    obs::LogHistogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.quantile(50.0), 0.0);
}

TEST(P2Quantile, ExactBelowFiveSamples)
{
    obs::P2Quantile p2(0.5);
    EXPECT_DOUBLE_EQ(p2.value(), 0.0);
    p2.add(3.0);
    EXPECT_DOUBLE_EQ(p2.value(), 3.0);
    p2.add(1.0);
    p2.add(2.0);
    // Median of {1, 2, 3}.
    EXPECT_DOUBLE_EQ(p2.value(), 2.0);
}

TEST(P2Quantile, TracksQuantilesOfALargeStream)
{
    obs::P2Quantile median(0.5);
    obs::P2Quantile tail(0.99);
    std::vector<double> values;
    Rng rng(11);
    for (int i = 0; i < 50000; ++i) {
        // Skewed positive stream (exponential-ish via inverse CDF).
        double v = rng.exponential(1.0);
        values.push_back(v);
        median.add(v);
        tail.add(v);
    }
    std::sort(values.begin(), values.end());
    EXPECT_LT(relErr(median.value(),
                     stats::percentileOfSorted(values, 50.0)),
              0.05);
    EXPECT_LT(relErr(tail.value(),
                     stats::percentileOfSorted(values, 99.0)),
              0.05);
}

TEST(StreamingMetrics, EmptyAndAllUnfinishedStayZeroedAndFinite)
{
    obs::StreamingMetrics empty;
    auto agg = empty.aggregate();
    EXPECT_EQ(agg.numRequests, 0u);
    EXPECT_EQ(agg.numFinished, 0u);
    EXPECT_DOUBLE_EQ(agg.meanTtft, 0.0);
    EXPECT_DOUBLE_EQ(agg.sloViolationRate, 0.0);
    EXPECT_DOUBLE_EQ(agg.throughputTokensPerSec, 0.0);

    // Unfinished rows contribute presence only — no NaNs from the
    // finished==0 divide guards.
    obs::StreamingMetrics unfinished;
    qoe::RequestMetrics row;
    row.arrival = 1.0;
    row.finished = false;
    unfinished.fold(row);
    agg = unfinished.aggregate();
    EXPECT_EQ(agg.numRequests, 1u);
    EXPECT_EQ(agg.numFinished, 0u);
    EXPECT_FALSE(std::isnan(agg.meanTtft));
    EXPECT_DOUBLE_EQ(agg.meanTtft, 0.0);
    EXPECT_DOUBLE_EQ(agg.p99Ttft, 0.0);
    EXPECT_DOUBLE_EQ(agg.sloViolationRate, 0.0);
}

/** ~2000-request trace so the tail percentiles have real support. */
workload::Trace
bigTrace(std::uint64_t seed)
{
    Rng rng(seed);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.reasoning = {200.0, 0.7, 24, 900};
    profile.answering = {90.0, 0.6, 12, 400};
    return workload::generateTrace(profile, 2000, 30.0, rng);
}

SystemConfig
streamConfig()
{
    SystemConfig cfg;
    cfg.scheduler = SchedulerType::Pascal;
    cfg.placement = PlacementType::Pascal;
    cfg.numInstances = 4;
    cfg.gpuKvCapacityTokens = 16384;
    cfg.kvBlockSizeTokens = 16;
    cfg.limits.demoteThresholdTokens = 600;
    return cfg;
}

TEST_F(StreamingEndToEnd, SketchAggregateMatchesExactWithinTolerance)
{
    auto trace = bigTrace(2026);
    SystemConfig cfg = streamConfig();
    auto exact = cluster::RunContext::execute(cfg, trace);
    cfg.telemetry.streamingMetrics = true;
    auto streamed = cluster::RunContext::execute(cfg, trace);

    // Streaming mode stores no rows — that is the point.
    EXPECT_TRUE(streamed.perRequest.empty());
    ASSERT_NE(streamed.streaming, nullptr);
    ASSERT_FALSE(exact.perRequest.empty());

    const auto& e = exact.aggregate;
    const auto& s = streamed.aggregate;

    // Exact fields are bit-identical: same fold order, same Welford
    // arithmetic, same integer counts.
    EXPECT_EQ(s.numRequests, e.numRequests);
    EXPECT_EQ(s.numFinished, e.numFinished);
    EXPECT_DOUBLE_EQ(s.makespan, e.makespan);
    EXPECT_DOUBLE_EQ(s.throughputTokensPerSec,
                     e.throughputTokensPerSec);
    EXPECT_DOUBLE_EQ(s.meanTtft, e.meanTtft);
    EXPECT_DOUBLE_EQ(s.maxTtft, e.maxTtft);
    EXPECT_DOUBLE_EQ(s.meanQoe, e.meanQoe);
    EXPECT_DOUBLE_EQ(s.meanE2eLatency, e.meanE2eLatency);
    EXPECT_DOUBLE_EQ(s.meanAnsweringLatency, e.meanAnsweringLatency);
    EXPECT_DOUBLE_EQ(s.sloViolationRate, e.sloViolationRate);
    EXPECT_EQ(s.totalMigrations, e.totalMigrations);

    // Sketch percentiles: within 1% relative error (tier-1 pin).
    EXPECT_LT(relErr(s.p50Ttft, e.p50Ttft), 0.01);
    EXPECT_LT(relErr(s.p99Ttft, e.p99Ttft), 0.01);
    EXPECT_LT(relErr(s.p50E2eLatency, e.p50E2eLatency), 0.01);
    EXPECT_LT(relErr(s.p99E2eLatency, e.p99E2eLatency), 0.01);

    // p95 TTFT via the family accessor against the exact sample set.
    std::vector<double> ttfts;
    for (const auto& row : exact.perRequest)
        if (row.finished)
            ttfts.push_back(row.ttft);
    std::sort(ttfts.begin(), ttfts.end());
    const double exact_p95 = stats::percentileOfSorted(ttfts, 95.0);
    EXPECT_LT(relErr(streamed.streaming->ttft().quantile(95.0),
                     exact_p95),
              0.01);

    // The P² cross-check agrees loosely with the histogram.
    EXPECT_LT(relErr(streamed.streaming->ttft().p2Median(),
                     e.p50Ttft),
              0.05);
}

TEST_F(StreamingEndToEnd, StreamingModeRecyclesChunksAndIsStable)
{
    auto trace = bigTrace(77);
    SystemConfig cfg = streamConfig();
    cfg.telemetry.streamingMetrics = true;

    cluster::RunContext ctx(cfg);
    ctx.submit(trace);
    ctx.run();
    auto result = ctx.result();
    EXPECT_EQ(ctx.cluster().numRecycledChunks(), 1u);
    EXPECT_TRUE(result.perRequest.empty());
    EXPECT_GT(result.aggregate.numFinished, 0u);

    // Same seed, same sketch bytes.
    auto again = cluster::RunContext::execute(cfg, trace);
    EXPECT_DOUBLE_EQ(again.aggregate.p99Ttft,
                     result.aggregate.p99Ttft);
    EXPECT_DOUBLE_EQ(again.aggregate.meanTtft,
                     result.aggregate.meanTtft);
}

TEST_F(StreamingEndToEnd, UnretiredRequestsFoldAtResultTime)
{
    // Cut the run short so requests are still in flight: the final
    // rollup must settle and fold them exactly like collectMetrics.
    auto trace = bigTrace(13);
    SystemConfig cfg = streamConfig();
    auto run_until = [&](bool streaming) {
        cfg.telemetry.streamingMetrics = streaming;
        cluster::RunContext ctx(cfg);
        ctx.submit(trace);
        ctx.run(20.0); // Mid-flight horizon.
        return ctx.result();
    };
    auto exact = run_until(false);
    auto streamed = run_until(true);
    EXPECT_EQ(streamed.aggregate.numRequests,
              exact.aggregate.numRequests);
    EXPECT_EQ(streamed.aggregate.numFinished,
              exact.aggregate.numFinished);
    EXPECT_DOUBLE_EQ(streamed.aggregate.meanTtft,
                     exact.aggregate.meanTtft);
    EXPECT_DOUBLE_EQ(streamed.aggregate.sloViolationRate,
                     exact.aggregate.sloViolationRate);
}

} // namespace
