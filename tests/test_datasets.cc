/**
 * @file
 * Unit tests for dataset length distributions: the sample means must
 * match the per-dataset means the paper prints (Fig. 8 / Fig. 14), and
 * the shape constraints the paper states must hold.
 */

#include <gtest/gtest.h>

#include <string>

#include "src/common/rng.hh"
#include "src/workload/datasets.hh"

namespace
{

using namespace pascal;
using workload::DatasetProfile;
using workload::LengthDistribution;

double
sampleMean(const LengthDistribution& dist, int n, std::uint64_t seed)
{
    Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(dist.sample(rng));
    return sum / n;
}

/** Sampled mean should land near the configured mean (clamping and
 *  sampling noise allow a tolerance). */
void
expectMeanNear(const LengthDistribution& dist, double expected,
               double rel_tol)
{
    double mean = sampleMean(dist, 40000, 42);
    EXPECT_NEAR(mean, expected, expected * rel_tol)
        << "configured mean " << expected << " got " << mean;
}

TEST(LengthDistribution, MuLogMatchesMeanParameterization)
{
    LengthDistribution d{1000.0, 0.8, 1, 1 << 20};
    // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) = meanTokens.
    EXPECT_NEAR(std::exp(d.muLog() + 0.5 * 0.8 * 0.8), 1000.0, 1e-9);
}

TEST(LengthDistribution, SamplesWithinClamp)
{
    LengthDistribution d{500.0, 1.5, 64, 1024};
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        auto x = d.sample(rng);
        EXPECT_GE(x, 64);
        EXPECT_LE(x, 1024);
    }
}

TEST(LengthDistribution, CdfMonotone)
{
    LengthDistribution d{500.0, 0.9, 16, 8000};
    EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
    EXPECT_LT(d.cdf(100.0), d.cdf(500.0));
    EXPECT_LT(d.cdf(500.0), d.cdf(5000.0));
    EXPECT_NEAR(d.cdf(1e12), 1.0, 1e-9);
}

TEST(Datasets, AlpacaEvalMeansMatchFig8)
{
    auto d = DatasetProfile::alpacaEval();
    expectMeanNear(d.reasoning, 557.75, 0.06);
    expectMeanNear(d.answering, 566.85, 0.06);
}

TEST(Datasets, ArenaHardMeansMatchFig8)
{
    auto d = DatasetProfile::arenaHard();
    expectMeanNear(d.reasoning, 968.35, 0.07);
    expectMeanNear(d.answering, 824.02, 0.07);
}

TEST(Datasets, Math500MeansMatchFig14)
{
    auto d = DatasetProfile::math500();
    expectMeanNear(d.reasoning, 747.20, 0.08);
    expectMeanNear(d.answering, 164.67, 0.08);
}

TEST(Datasets, GpqaMeansMatchFig14)
{
    auto d = DatasetProfile::gpqa();
    expectMeanNear(d.reasoning, 2679.27, 0.08);
    expectMeanNear(d.answering, 316.09, 0.08);
}

TEST(Datasets, LiveCodeBenchMeansMatchFig14)
{
    auto d = DatasetProfile::liveCodeBench();
    expectMeanNear(d.reasoning, 1896.64, 0.08);
    expectMeanNear(d.answering, 697.09, 0.08);
}

TEST(Datasets, ChatWorkloadsAreShortReasoningSkewed)
{
    // Fig. 10 caption: >70 % of requests generate fewer than 1000
    // reasoning tokens in the chat workloads.
    for (const auto& d :
         {DatasetProfile::alpacaEval(), DatasetProfile::arenaHard()}) {
        EXPECT_GT(d.reasoning.cdf(1000.0), 0.70) << d.name;
    }
}

TEST(Datasets, GpqaIsReasoningHeavy)
{
    // Section V-D: reasoning tokens up to 8.48x the answering tokens.
    auto d = DatasetProfile::gpqa();
    EXPECT_NEAR(d.reasoning.meanTokens / d.answering.meanTokens, 8.48,
                0.05);
}

TEST(Datasets, AllPresetsValidate)
{
    auto all = DatasetProfile::all();
    ASSERT_EQ(all.size(), 5u);
    for (const auto& d : all) {
        d.validate();
        EXPECT_FALSE(d.name.empty());
    }
}

TEST(Datasets, SamplingIsReproducible)
{
    auto d = DatasetProfile::arenaHard();
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(d.reasoning.sample(a), d.reasoning.sample(b));
}

} // namespace
