/**
 * @file
 * Lazy-accrual invariance tests.
 *
 * The lazy phase-time accrual replaces the O(hosted) per-iteration
 * accrueAll walk with a per-request {bucket, since} stamp that is
 * restamped at state changes and settled at observation points. Its
 * contract: PASCAL_FORCE_ACCRUE (the eager verification walk that
 * recomputes every hosted request's standing bucket each iteration
 * and panics on a stale stamp) must run the whole
 * {FCFS, RR, PASCAL, SRPT, PASCAL-Spec} x predictor grid without
 * tripping, and RunResults — including the per-request phase-time
 * buckets, compared bit-exactly — must be byte-identical across the
 * lazy/verify and incremental/rebuild cluster-view modes.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/run_context.hh"
#include "src/cluster/system_config.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/workload/generator.hh"
#include "tests/run_result_util.hh"

namespace
{

using namespace pascal;
using cluster::PlacementType;
using cluster::SchedulerType;
using cluster::SystemConfig;

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

using AccrualInvariance = QuietLogs;
using AccrualUnit = ::testing::Test;

/** Churn-heavy trace: arrivals, completions, transitions, migrations,
 *  swaps, demotions, and preemptions all fire, so every restamp point
 *  is exercised. */
workload::Trace
churnTrace(std::uint64_t seed, int n = 120)
{
    Rng rng(seed);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.reasoning = {300.0, 0.8, 32, 1500};
    profile.answering = {120.0, 0.7, 16, 600};
    return workload::generateTrace(profile, n, 12.0, rng);
}

SystemConfig
constrained(SchedulerType sched, predict::PredictorConfig pred,
            PlacementType placement)
{
    SystemConfig cfg;
    cfg.scheduler = sched;
    cfg.placement = placement;
    cfg.predictor = pred;
    cfg.numInstances = 2;
    cfg.gpuKvCapacityTokens = 4096; // Tight: forces swaps/evictions.
    cfg.kvBlockSizeTokens = 16;
    cfg.limits.demoteThresholdTokens = 600;
    cfg.limits.demoteLookaheadTokens = 128;
    return cfg;
}

predict::PredictorConfig
predictorNamed(const std::string& kind)
{
    predict::PredictorConfig cfg;
    if (kind == "oracle") {
        cfg.type = predict::PredictorType::Oracle;
    } else if (kind == "noisy") {
        cfg.type = predict::PredictorType::NoisyOracle;
        cfg.noiseSigma = 0.4;
    } else if (kind == "profile") {
        cfg.type = predict::PredictorType::Profile;
    }
    return cfg;
}

/**
 * Run @p cfg on @p trace in the mode corners — {lazy, force-accrue}
 * x {incremental view, full rebuild}, plus the all-forced corner with
 * per-arrival plan boundaries — and require byte-identical
 * RunResults. The force-accrue runs double as correctness proofs:
 * the eager walk panics (failing the test) if any lazily maintained
 * stamp went stale.
 */
void
expectAllModesIdentical(SystemConfig cfg, const workload::Trace& trace)
{
    cfg.limits.forceAccrue = false;
    cfg.forceViewRebuild = false;
    auto fast = cluster::RunContext::execute(cfg, trace);

    cfg.limits.forceAccrue = true;
    auto verified = cluster::RunContext::execute(cfg, trace);
    test::expectIdentical(fast, verified);

    cfg.forceViewRebuild = true;
    auto reference = cluster::RunContext::execute(cfg, trace);
    test::expectIdentical(fast, reference);

    cfg.limits.forcePerArrivalKick = true;
    auto per_arrival = cluster::RunContext::execute(cfg, trace);
    test::expectIdentical(fast, per_arrival);
}

TEST_F(AccrualInvariance, ReactiveSchedulersAcrossPredictors)
{
    auto trace = churnTrace(4242);
    for (SchedulerType sched :
         {SchedulerType::Fcfs, SchedulerType::Rr,
          SchedulerType::Pascal}) {
        for (const std::string kind : {"none", "oracle", "noisy",
                                       "profile"}) {
            SCOPED_TRACE("scheduler " +
                         std::to_string(static_cast<int>(sched)) +
                         " predictor " + kind);
            auto pred = predictorNamed(kind);
            auto placement = kind == "none"
                                 ? PlacementType::Pascal
                                 : PlacementType::PascalPredictive;
            expectAllModesIdentical(constrained(sched, pred, placement),
                                    trace);
        }
    }
}

TEST_F(AccrualInvariance, SpeculativeSchedulersAcrossPredictors)
{
    auto trace = churnTrace(99);
    for (SchedulerType sched :
         {SchedulerType::Srpt, SchedulerType::PascalSpec}) {
        for (const std::string kind : {"oracle", "noisy", "profile"}) {
            SCOPED_TRACE("scheduler " +
                         std::to_string(static_cast<int>(sched)) +
                         " predictor " + kind);
            auto pred = predictorNamed(kind);
            expectAllModesIdentical(
                constrained(sched, pred,
                            PlacementType::PascalPredictive),
                trace);
        }
    }
}

TEST_F(AccrualInvariance, HorizonCutSettlesInFlightRequestsIdentically)
{
    // A horizon that guillotines the run mid-flight: scoring settles
    // the still-hosted requests' lazily accrued time at collection,
    // which must also be mode-invariant (and must not book anything
    // for requests that never arrived).
    auto trace = churnTrace(7, 80);
    SystemConfig cfg = constrained(SchedulerType::Pascal,
                                   predictorNamed("none"),
                                   PlacementType::Pascal);
    cfg.maxSimTime = 3.0;
    cfg.limits.forceAccrue = false;
    auto fast = cluster::RunContext::execute(cfg, trace);
    EXPECT_GT(fast.numUnfinished, 0u);
    cfg.limits.forceAccrue = true;
    cfg.forceViewRebuild = true;
    auto reference = cluster::RunContext::execute(cfg, trace);
    test::expectIdentical(fast, reference);
}

TEST_F(AccrualInvariance, BucketsStillTilePhaseLatencies)
{
    // Independent of mode equivalence, the settled buckets must tile
    // [arrival, reasoningEnd] and [reasoningEnd, finish] — the
    // Fig. 4/5 semantics the lazy bookkeeping may not distort.
    auto trace = churnTrace(21, 60);
    SystemConfig cfg = constrained(SchedulerType::Pascal,
                                   predictorNamed("none"),
                                   PlacementType::Pascal);
    auto result = cluster::RunContext::execute(cfg, trace);
    int finished = 0;
    for (const auto& m : result.perRequest) {
        if (!m.finished)
            continue;
        ++finished;
        EXPECT_NEAR(m.reasoningBuckets.total(), m.reasoningLatency,
                    1e-6);
        EXPECT_NEAR(m.answeringBuckets.total(),
                    m.e2eLatency - m.reasoningLatency, 1e-6);
    }
    EXPECT_GT(finished, 0);
}

TEST_F(AccrualUnit, StampSettlesUnderOldKindThenSwitches)
{
    workload::RequestSpec s;
    s.id = 0;
    s.arrival = 0.0;
    s.promptTokens = 16;
    s.reasoningTokens = 10;
    s.answerTokens = 10;
    workload::Request r(s);

    r.resetAccrual(1.0, workload::BucketKind::Blocked);
    EXPECT_EQ(r.accrualKind, workload::BucketKind::Blocked);

    // [1, 3] accrues Blocked; the stamp switches to Executed at 3.
    r.stampAccrual(3.0, workload::BucketKind::Executed);
    EXPECT_DOUBLE_EQ(r.reasoningBuckets.blocked, 2.0);
    EXPECT_DOUBLE_EQ(r.reasoningBuckets.executed, 0.0);

    // [3, 4.5] settles Executed without changing the stamp.
    r.settleAccrual(4.5);
    EXPECT_DOUBLE_EQ(r.reasoningBuckets.executed, 1.5);
    EXPECT_EQ(r.accrualKind, workload::BucketKind::Executed);

    // Re-stamping to the same kind is a settlement, not a reset.
    r.stampAccrual(5.0, workload::BucketKind::Executed);
    EXPECT_DOUBLE_EQ(r.reasoningBuckets.executed, 2.0);
    EXPECT_DOUBLE_EQ(r.reasoningBuckets.total(), 4.0);
}

} // namespace
