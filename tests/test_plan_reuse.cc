/**
 * @file
 * Plan-reuse / incremental-scheduling invariance tests.
 *
 * The iteration fast path (incremental queues + verbatim plan reuse)
 * is a pure speed optimization: its one non-negotiable contract is
 * that RunResults stay byte-identical to the force-resort debug mode
 * that recomputes every queue from scratch each iteration. These
 * tests run randomized constrained traces across the full
 * {FCFS, RR, PASCAL, SRPT, PASCAL-Spec} x predictor grid in both
 * modes and compare every metric field exactly, plus unit-level
 * checks of the maintained monitor counters and the fast-path
 * engagement itself.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/cluster/run_context.hh"
#include "src/cluster/system_config.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/core/pascal_scheduler.hh"
#include "src/workload/generator.hh"
#include "tests/run_result_util.hh"
#include "tests/scheduler_test_util.hh"

namespace
{

using namespace pascal;
using cluster::PlacementType;
using cluster::SchedulerType;
using cluster::SystemConfig;
using test::SchedulerHarness;

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

using PlanReuseInvariance = QuietLogs;
using PlanReuseFastPath = QuietLogs;

/**
 * A reasoning-heavy trace on a memory-constrained deployment:
 * arrivals, completions, phase transitions, migrations, swaps, and
 * demotions all fire, so every dirty-set code path is exercised.
 */
workload::Trace
churnTrace(std::uint64_t seed, int n = 140)
{
    Rng rng(seed);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.reasoning = {300.0, 0.8, 32, 1500};
    profile.answering = {120.0, 0.7, 16, 600};
    return workload::generateTrace(profile, n, 12.0, rng);
}

SystemConfig
constrained(SchedulerType sched, predict::PredictorConfig pred,
            PlacementType placement)
{
    SystemConfig cfg;
    cfg.scheduler = sched;
    cfg.placement = placement;
    cfg.predictor = pred;
    cfg.numInstances = 2;
    cfg.gpuKvCapacityTokens = 4096; // Tight: forces swaps/evictions.
    cfg.kvBlockSizeTokens = 16;
    cfg.limits.demoteThresholdTokens = 600; // Demotions actually fire.
    cfg.limits.demoteLookaheadTokens = 128;
    return cfg;
}

void
expectModesIdentical(SystemConfig cfg, const workload::Trace& trace)
{
    cfg.limits.forceResort = false;
    auto fast = cluster::RunContext::execute(cfg, trace);
    cfg.limits.forceResort = true;
    auto reference = cluster::RunContext::execute(cfg, trace);
    test::expectIdentical(fast, reference);
}

predict::PredictorConfig
predictorNamed(const std::string& kind)
{
    predict::PredictorConfig cfg;
    if (kind == "oracle") {
        cfg.type = predict::PredictorType::Oracle;
    } else if (kind == "noisy") {
        cfg.type = predict::PredictorType::NoisyOracle;
        cfg.noiseSigma = 0.4;
    } else if (kind == "profile") {
        cfg.type = predict::PredictorType::Profile;
    }
    return cfg;
}

TEST_F(PlanReuseInvariance, FcfsMigrationKeepsStrictOrderUnderPressure)
{
    // Regression guard for the strict-order walk: FCFS may never skip
    // its waiting stream — the first unfit waiting candidate blocks
    // every later candidate, including answering requests that
    // migrated in with late arrival stamps. High transition/migration
    // rates against a saturating waiting head maximize the chance a
    // landed migrant sits behind a blocked waiting request.
    for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed);
        auto profile = workload::DatasetProfile::alpacaEval();
        profile.prompt = {160.0, 0.5, 64, 320}; // Fat waiting heads.
        profile.reasoning = {30.0, 0.5, 16, 80}; // Rapid transitions.
        profile.answering = {120.0, 0.6, 32, 400};
        auto trace = workload::generateTrace(profile, 160, 60.0, rng);

        SystemConfig cfg;
        cfg.scheduler = SchedulerType::Fcfs;
        cfg.placement = PlacementType::Pascal; // Migrations fire.
        cfg.numInstances = 2;
        cfg.gpuKvCapacityTokens = 3072;
        cfg.kvBlockSizeTokens = 16;

        cfg.limits.forceResort = false;
        auto fast = cluster::RunContext::execute(cfg, trace);
        cfg.limits.forceResort = true;
        auto reference = cluster::RunContext::execute(cfg, trace);
        test::expectIdentical(fast, reference);
        EXPECT_GT(fast.totalMigrations, 0);
    }
}

TEST_F(PlanReuseInvariance, EvictionStormTailStaysByteIdentical)
{
    // Swap-thrashing regime: the incremental walk's early exit
    // settles unreached residents from the material list and restores
    // priority order only when an eviction actually fires — the
    // evicted set and swap-out sequence must still match the
    // recompute walk exactly, every iteration.
    Rng rng(4711);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.prompt = {96.0, 0.5, 48, 192};
    profile.reasoning = {240.0, 0.7, 64, 900};
    profile.answering = {100.0, 0.6, 16, 400};
    auto trace = workload::generateTrace(profile, 180, 40.0, rng);

    for (SchedulerType sched :
         {SchedulerType::Fcfs, SchedulerType::Rr, SchedulerType::Pascal,
          SchedulerType::Srpt, SchedulerType::PascalSpec}) {
        SCOPED_TRACE("scheduler " +
                     std::to_string(static_cast<int>(sched)));
        SystemConfig cfg;
        cfg.scheduler = sched;
        cfg.placement = PlacementType::Pascal;
        cfg.numInstances = 2;
        cfg.gpuKvCapacityTokens = 2048; // Brutal: constant evictions.
        cfg.kvBlockSizeTokens = 16;
        cfg.limits.demoteThresholdTokens = 600;
        if (sched == SchedulerType::Srpt ||
            sched == SchedulerType::PascalSpec) {
            // Predictor-keyed orders: schedScore drives the eviction
            // tail's priority restoration too.
            cfg.predictor.type = predict::PredictorType::Oracle;
        }

        cfg.limits.forceResort = false;
        auto fast = cluster::RunContext::execute(cfg, trace);
        cfg.limits.forceResort = true;
        auto reference = cluster::RunContext::execute(cfg, trace);
        test::expectIdentical(fast, reference);
        EXPECT_GT(fast.totalIterations, 0u);
    }
}

TEST_F(PlanReuseInvariance, ReactiveSchedulersAcrossPredictors)
{
    // Reactive policies ignore predictions for ordering, but wiring a
    // predictor still exercises the predictive-placement snapshots
    // under incremental bookkeeping.
    auto trace = churnTrace(1234);
    for (SchedulerType sched :
         {SchedulerType::Fcfs, SchedulerType::Rr,
          SchedulerType::Pascal}) {
        for (const std::string kind : {"none", "oracle", "noisy"}) {
            SCOPED_TRACE("scheduler " +
                         std::to_string(static_cast<int>(sched)) +
                         " predictor " + kind);
            auto pred = predictorNamed(kind);
            auto placement = kind == "none"
                                 ? PlacementType::Pascal
                                 : PlacementType::PascalPredictive;
            expectModesIdentical(constrained(sched, pred, placement),
                                 trace);
        }
    }
}

TEST_F(PlanReuseInvariance, SpeculativeSchedulersAcrossPredictors)
{
    // SRPT and PASCAL-Spec re-key executed requests every iteration;
    // the profile predictor additionally exercises the version-bump
    // path that re-keys *idle* requests when the online learner moves.
    auto trace = churnTrace(777);
    for (SchedulerType sched :
         {SchedulerType::Srpt, SchedulerType::PascalSpec}) {
        for (const std::string kind : {"oracle", "noisy", "profile"}) {
            SCOPED_TRACE("scheduler " +
                         std::to_string(static_cast<int>(sched)) +
                         " predictor " + kind);
            auto pred = predictorNamed(kind);
            expectModesIdentical(
                constrained(sched, pred,
                            PlacementType::PascalPredictive),
                trace);
        }
    }
}

TEST_F(PlanReuseInvariance, SpeculativeWithoutPredictorStillRejected)
{
    // The {none} x {SRPT, PASCAL-Spec} corner of the acceptance grid
    // is invalid by construction; the config layer rejects it before
    // either scheduling mode could diverge.
    for (SchedulerType sched :
         {SchedulerType::Srpt, SchedulerType::PascalSpec}) {
        SystemConfig cfg = constrained(sched, predictorNamed("none"),
                                       PlacementType::Pascal);
        EXPECT_THROW(cfg.validate(), FatalError);
    }
}

TEST_F(PlanReuseInvariance, UncontendedSteadyStateAlsoIdentical)
{
    // Plenty of memory: the run is dominated by reusable decode-only
    // iterations, the exact regime the fast path targets.
    Rng rng(9);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.reasoning = {800.0, 0.3, 256, 2000};
    profile.answering = {300.0, 0.3, 64, 800};
    auto trace = workload::generateTrace(profile, 40, 50.0, rng);
    for (SchedulerType sched :
         {SchedulerType::Fcfs, SchedulerType::Rr,
          SchedulerType::Pascal}) {
        SystemConfig cfg;
        cfg.scheduler = sched;
        cfg.placement = PlacementType::Pascal;
        cfg.numInstances = 1;
        expectModesIdentical(cfg, trace);
    }
}

TEST_F(PlanReuseFastPath, SteadyStateActuallyReusesPlans)
{
    if (std::getenv("PASCAL_FORCE_RESORT") != nullptr)
        GTEST_SKIP() << "fast path globally disabled by env";
    Rng rng(5);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.reasoning = {800.0, 0.3, 256, 2000};
    profile.answering = {300.0, 0.3, 64, 800};
    auto trace = workload::generateTrace(profile, 12, 100.0, rng);

    SystemConfig cfg;
    cfg.scheduler = SchedulerType::Pascal;
    cfg.placement = PlacementType::Pascal;
    cfg.numInstances = 1;

    cluster::RunContext fast(cfg);
    fast.submit(trace);
    fast.run();
    const auto& inst = *fast.cluster().getInstances()[0];
    EXPECT_GT(inst.numIterations(), 0u);
    // Long decode phases: the bulk of iterations must have reused the
    // previous plan verbatim.
    EXPECT_GT(inst.numPlanReuses(), inst.numIterations() / 2);

    cfg.limits.forceResort = true;
    cluster::RunContext slow(cfg);
    slow.submit(trace);
    slow.run();
    EXPECT_EQ(slow.cluster().getInstances()[0]->numPlanReuses(), 0u);
    test::expectIdentical(fast.result(), slow.result());
}

TEST_F(PlanReuseFastPath, MaintainedCountersTrackScriptedSequence)
{
    if (std::getenv("PASCAL_FORCE_RESORT") != nullptr)
        GTEST_SKIP() << "fast path globally disabled by env";
    // Drive a scheduler through the notification contract directly
    // and check the O(1) counters against the states the recompute
    // scan would report.
    core::SchedLimits limits;
    limits.quantum = 4;
    limits.demoteThresholdTokens = 200;
    core::PascalScheduler sched(limits);
    sched.enableIncremental();
    ASSERT_TRUE(sched.incrementalEnabled());

    SchedulerHarness h(100000);
    auto* rea = h.make(0, 0.0, 64, 300, 10);
    auto* ans = h.make(1, 1.0, 64, 2, 600);
    sched.add(rea);
    sched.add(ans);
    EXPECT_EQ(sched.numReasoning(), 2);
    EXPECT_EQ(sched.numFreshAnswering(), 0);

    // ans transitions to answering with a fresh quantum.
    h.makeResident(ans, limits.quantum);
    sched.noteExecuted(ans); // Prefill emitted its first token.
    h.decodeTokens(ans, 1, 0.5, limits.quantum);
    sched.noteExecuted(ans);
    sched.onPhaseTransition(ans);
    EXPECT_EQ(sched.numReasoning(), 1);
    EXPECT_EQ(sched.numFreshAnswering(), 1);

    // A full quantum of answering tokens: no longer fresh.
    for (int i = 0; i < limits.quantum; ++i) {
        h.decodeTokens(ans, 1, 2.0, limits.quantum);
        sched.noteExecuted(ans);
    }
    EXPECT_EQ(sched.numFreshAnswering(), 0);

    // rea crosses the demotion threshold; the rule applies at the
    // next plan boundary (exactly like recompute mode).
    h.makeResident(rea, limits.quantum);
    sched.noteExecuted(rea);
    h.decodeTokens(rea, 149, 3.0, limits.quantum); // kv 65 -> 214.
    sched.noteExecuted(rea);
    EXPECT_EQ(sched.numReasoning(), 1);
    auto plan = sched.plan(h.pool);
    EXPECT_FALSE(plan.idle());
    EXPECT_TRUE(rea->demoted);
    EXPECT_EQ(sched.numReasoning(), 0);

    // Removal keeps the counters consistent.
    sched.remove(ans);
    EXPECT_EQ(sched.numFreshAnswering(), 0);
    EXPECT_EQ(sched.hosted().size(), 1u);
}

TEST_F(PlanReuseFastPath, RemovePanicNamesInstance)
{
    core::SchedLimits limits;
    core::PascalScheduler sched(limits);
    sched.setInstanceId(3);
    SchedulerHarness h(1000);
    auto* a = h.make(7, 0.0, 64, 10, 10);
    EXPECT_DEATH(sched.remove(a),
                 "request 7 not hosted on instance 3");
}

TEST_F(PlanReuseFastPath, ForceResortEnvAndLimitDisableIncremental)
{
    core::SchedLimits limits;
    limits.forceResort = true;
    core::PascalScheduler sched(limits);
    sched.enableIncremental();
    EXPECT_FALSE(sched.incrementalEnabled());
}

/**
 * The bench's transition-storm shape scaled for CI: short phases at a
 * moderate rate on a pool with headroom, so plan boundaries are
 * dirtied by arrivals, departures, phase transitions, demotions and
 * migration landings — exactly the bounded deltas the O(delta) plan
 * repair patches — rather than by swap traffic.
 */
workload::Trace
transitionTrace(std::uint64_t seed, int n = 400)
{
    Rng rng(seed);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.prompt = {64.0, 0.4, 32, 128};
    profile.reasoning = {25.0, 0.5, 16, 60};
    profile.answering = {45.0, 0.5, 16, 120};
    return workload::generateTrace(profile, n, 60.0, rng);
}

/**
 * Sustained memory pressure: the pool fits only a fraction of the
 * material set, so kept/evicted membership oscillates boundary to
 * boundary (swap thrash) and most plans carry swap traffic — the
 * regime plan repair must recognise as out of scope and decline
 * byte-identically, every time.
 */
workload::Trace
swapThrashTrace(std::uint64_t seed, int n = 250)
{
    Rng rng(seed);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.prompt = {96.0, 0.5, 32, 192};
    profile.reasoning = {200.0, 0.7, 32, 800};
    profile.answering = {80.0, 0.6, 16, 300};
    return workload::generateTrace(profile, n, 30.0, rng);
}

SystemConfig
repairConfig(SchedulerType sched, predict::PredictorConfig pred,
             TokenCount capacity)
{
    SystemConfig cfg;
    cfg.scheduler = sched;
    cfg.placement = pred.type == predict::PredictorType::None
                        ? PlacementType::Pascal
                        : PlacementType::PascalPredictive;
    cfg.predictor = pred;
    cfg.numInstances = 2;
    cfg.gpuKvCapacityTokens = capacity;
    cfg.kvBlockSizeTokens = 16;
    cfg.limits.demoteThresholdTokens = 700;
    return cfg;
}

TEST_F(PlanReuseInvariance, PlanRepairGridByteIdentical)
{
    // The repair fast path vs its force twin across the full
    // scheduler x predictor grid, on both regression shapes: the
    // repair-friendly transition storm and the repair-hostile swap
    // thrash. forcePlanRepair keeps the journal dark so every
    // non-reused boundary pays the full walk — byte-identity proves
    // the patched plans equal the walked ones everywhere.
    struct GridPoint
    {
        SchedulerType sched;
        std::string predictor;
    };
    std::vector<GridPoint> grid;
    for (SchedulerType sched :
         {SchedulerType::Fcfs, SchedulerType::Rr,
          SchedulerType::Pascal}) {
        for (const char* kind : {"none", "oracle", "noisy", "profile"})
            grid.push_back({sched, kind});
    }
    for (SchedulerType sched :
         {SchedulerType::Srpt, SchedulerType::PascalSpec}) {
        // Speculative schedulers require a predictor (see
        // SpeculativeWithoutPredictorStillRejected).
        for (const char* kind : {"oracle", "noisy", "profile"})
            grid.push_back({sched, kind});
    }

    auto transition = transitionTrace(77);
    auto thrash = swapThrashTrace(78);
    for (const auto& point : grid) {
        SCOPED_TRACE(std::string("scheduler ") +
                     std::to_string(static_cast<int>(point.sched)) +
                     " predictor " + point.predictor);
        for (const workload::Trace* trace : {&transition, &thrash}) {
            SystemConfig cfg =
                repairConfig(point.sched, predictorNamed(point.predictor),
                             trace == &thrash ? 3072 : 32768);
            cfg.limits.forcePlanRepair = false;
            auto fast = cluster::RunContext::execute(cfg, *trace);
            cfg.limits.forcePlanRepair = true;
            auto reference = cluster::RunContext::execute(cfg, *trace);
            test::expectIdentical(fast, reference);
        }
    }
}

TEST_F(PlanReuseInvariance, AllThirtyTwoForceCornersByteIdentical)
{
    // {FORCE_REPAIR} x {FORCE_KICK} x {FORCE_VIEW} x {FORCE_RESORT} x
    // {FORCE_ACCRUE}: every corner disables (or eagerly verifies) a
    // different maintained structure, so all 32 runs recompute
    // different subsets of the same state and must agree
    // byte-for-byte. The all-ones corner is the bench's recompute
    // twin; mask 0 is the production fast path.
    auto trace = transitionTrace(555, 300);
    SystemConfig base = repairConfig(SchedulerType::Pascal,
                                     predictorNamed("oracle"), 8192);

    std::vector<cluster::RunResult> results;
    for (int mask = 0; mask < 32; ++mask) {
        SystemConfig cfg = base;
        cfg.limits.forcePerArrivalKick = (mask & 1) != 0;
        cfg.forceViewRebuild = (mask & 2) != 0;
        cfg.limits.forceResort = (mask & 4) != 0;
        cfg.limits.forceAccrue = (mask & 8) != 0;
        cfg.limits.forcePlanRepair = (mask & 16) != 0;
        results.push_back(cluster::RunContext::execute(cfg, trace));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
        SCOPED_TRACE("mode mask " + std::to_string(i));
        test::expectIdentical(results[0], results[i]);
    }
}

TEST_F(PlanReuseFastPath, RepairsOutnumberFullWalksOnTransitionStorm)
{
    if (std::getenv("PASCAL_FORCE_RESORT") ||
        std::getenv("PASCAL_FORCE_REPAIR"))
        GTEST_SKIP() << "fast path globally disabled by env";
    // On the transition-heavy shape the dominant non-reused boundary
    // carries only bounded deltas, so the O(delta) patch — not the
    // full walk — must satisfy most of them.
    SystemConfig cfg = repairConfig(SchedulerType::Pascal,
                                    predictorNamed("none"), 32768);
    auto result =
        cluster::RunContext::execute(cfg, transitionTrace(99, 500));
    EXPECT_GT(result.numPlanRepairs, 0u);
    EXPECT_GT(result.numPlanRepairs, result.numFullWalks);
}

TEST_F(PlanReuseFastPath, ForcePlanRepairKeepsTheJournalDark)
{
    if (std::getenv("PASCAL_FORCE_RESORT") ||
        std::getenv("PASCAL_FORCE_REPAIR"))
        GTEST_SKIP() << "fast path globally disabled by env";
    // The force twin must not merely decline at the repair gate but
    // never journal at all: with forcePlanRepair set, every non-reused
    // boundary is a full walk.
    SystemConfig cfg = repairConfig(SchedulerType::Pascal,
                                    predictorNamed("none"), 32768);
    auto trace = transitionTrace(101, 300);
    cfg.limits.forcePlanRepair = true;
    auto forced = cluster::RunContext::execute(cfg, trace);
    EXPECT_EQ(forced.numPlanRepairs, 0u);
    EXPECT_GT(forced.numFullWalks, 0u);
    cfg.limits.forcePlanRepair = false;
    auto fast = cluster::RunContext::execute(cfg, trace);
    EXPECT_GT(fast.numPlanRepairs, 0u);
    test::expectIdentical(fast, forced);
}

} // namespace
