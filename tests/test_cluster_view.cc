/**
 * @file
 * Incremental ClusterView property tests.
 *
 * The cluster keeps one persistent view and refreshes only dirty
 * instance snapshots (plus rows whose cached answering-SLO verdict
 * could flip purely by time passing). Contract, enforced here two
 * ways: (1) with the audit hook on, every placement decision
 * recomputes every snapshot from scratch and panics on any field
 * divergence from the maintained view — run against randomized
 * churn-heavy multi-instance workloads; (2) whole runs must produce
 * byte-identical RunResults against the forceViewRebuild debug mode.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/run_context.hh"
#include "src/cluster/system_config.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/workload/generator.hh"
#include "tests/run_result_util.hh"

namespace
{

using namespace pascal;
using cluster::PlacementType;
using cluster::SchedulerType;
using cluster::SystemConfig;

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

using ClusterViewAudit = QuietLogs;
using ClusterViewInvariance = QuietLogs;
using ClusterViewFastPath = QuietLogs;

workload::Trace
churnTrace(std::uint64_t seed, int n, double rate)
{
    Rng rng(seed);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.reasoning = {350.0, 0.8, 32, 1600};
    profile.answering = {150.0, 0.7, 16, 700};
    return workload::generateTrace(profile, n, rate, rng);
}

SystemConfig
churnConfig(SchedulerType sched, PlacementType placement,
            int instances)
{
    SystemConfig cfg;
    cfg.scheduler = sched;
    cfg.placement = placement;
    cfg.numInstances = instances;
    cfg.gpuKvCapacityTokens = 4096; // Tight: swaps + migrations fire.
    cfg.kvBlockSizeTokens = 16;
    cfg.limits.demoteThresholdTokens = 500;
    cfg.limits.demoteLookaheadTokens = 96;
    // A tight pace makes answeringSloOk actually flip during runs, so
    // the audit exercises the slo-risk re-check path, not just the
    // dirty-marking one.
    cfg.slo.tpotTarget = 0.05;
    return cfg;
}

/** Run with the audit hook: buildView() panics on the first snapshot
 *  divergence, failing the test. */
cluster::RunResult
runAudited(const SystemConfig& cfg, const workload::Trace& trace)
{
    cluster::RunContext ctx(cfg);
    ctx.cluster().enableViewAudit();
    ctx.submit(trace);
    ctx.run();
    return ctx.result();
}

TEST_F(ClusterViewAudit, ChurnHeavyMultiInstanceSnapshotsStayExact)
{
    for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        auto trace = churnTrace(seed, 140, 18.0);
        auto result = runAudited(
            churnConfig(SchedulerType::Pascal, PlacementType::Pascal, 4),
            trace);
        // The workload must actually churn for the audit to mean
        // anything.
        EXPECT_GT(result.totalMigrations, 0);
        EXPECT_GT(result.aggregate.numFinished, 0u);
    }
}

TEST_F(ClusterViewAudit, SloHeapMatchesReferenceWalkUnderTtfatLoad)
{
    // The snapshot's t_i verdict rides the per-instance min-deadline
    // SLO heap; the audit re-verifies heap membership, keys, order,
    // verdict, and risk bound against the reference O(hosted) walk at
    // every placement decision. startInAnswering requests enter the
    // heap with live TTFAT countdowns at admission — the key path a
    // plain reasoning trace never exercises.
    Rng rng(91);
    auto trace = workload::generateAnsweringCharacterization(
        200, 120.0, rng, {32, 64, 128, 256});
    SystemConfig cfg =
        churnConfig(SchedulerType::Pascal, PlacementType::Pascal, 3);
    auto result = runAudited(cfg, trace);
    EXPECT_GT(result.aggregate.numFinished, 0u);
}

TEST_F(ClusterViewAudit, PredictiveSnapshotsTrackOnlineLearner)
{
    // The profile predictor bumps its version on every completion,
    // silently moving every instance's predicted KV footprint: the
    // version gate must invalidate the whole cached view.
    SystemConfig cfg = churnConfig(SchedulerType::PascalSpec,
                                   PlacementType::PascalPredictive, 3);
    cfg.predictor.type = predict::PredictorType::Profile;
    auto trace = churnTrace(11, 120, 15.0);
    auto result = runAudited(cfg, trace);
    EXPECT_GT(result.aggregate.numFinished, 0u);
}

TEST_F(ClusterViewAudit, BaselinePlacementAndMigrationFreeVariants)
{
    auto trace = churnTrace(3, 100, 14.0);
    for (PlacementType placement :
         {PlacementType::Baseline, PlacementType::PascalNoMigration,
          PlacementType::PascalNonAdaptive}) {
        SCOPED_TRACE("placement " +
                     std::to_string(static_cast<int>(placement)));
        auto result = runAudited(
            churnConfig(SchedulerType::Rr, placement, 3), trace);
        EXPECT_GT(result.aggregate.numFinished, 0u);
    }
}

TEST_F(ClusterViewAudit, FinishBetweenSameIterationTransitionsRemarks)
{
    // Regression: within one completeIteration's handle loop, a
    // phase transition's placement decision refreshes (and cleans)
    // the snapshot; a *finish* handled next mutates KV and counters
    // and must re-mark the instance, or the loop's second transition
    // places against a stale row. Lockstep lengths force exactly
    // transition(r0) -> finish(r1) -> transition(r2) in one
    // iteration.
    workload::Trace trace;
    auto spec = [](RequestId id, TokenCount reasoning,
                   TokenCount answer) {
        workload::RequestSpec s;
        s.id = id;
        s.arrival = 0.0;
        s.promptTokens = 64;
        s.reasoningTokens = reasoning;
        s.answerTokens = answer;
        s.dataset = "unit";
        return s;
    };
    trace.requests = {spec(0, 40, 10), spec(1, 30, 10),
                      spec(2, 40, 10), spec(3, 20, 30)};

    SystemConfig cfg;
    cfg.scheduler = SchedulerType::Fcfs;
    cfg.placement = PlacementType::Pascal;
    cfg.numInstances = 1;
    // An impossible pace wedges the early-transitioning request 3
    // behind its pacer, caching a sticky-false answeringSloOk whose
    // infinite flip bound disables the time-based re-check — the
    // staleness can then only be caught by correct dirty marking.
    cfg.slo.tpotTarget = 1e-4;
    auto result = runAudited(cfg, trace);
    EXPECT_EQ(result.aggregate.numFinished, 4u);
}

TEST_F(ClusterViewInvariance, IncrementalAndRebuildModesByteIdentical)
{
    auto trace = churnTrace(5, 140, 18.0);
    for (SchedulerType sched :
         {SchedulerType::Fcfs, SchedulerType::Pascal}) {
        SCOPED_TRACE("scheduler " +
                     std::to_string(static_cast<int>(sched)));
        SystemConfig cfg =
            churnConfig(sched, PlacementType::Pascal, 4);
        cfg.forceViewRebuild = false;
        auto fast = cluster::RunContext::execute(cfg, trace);
        cfg.forceViewRebuild = true;
        auto reference = cluster::RunContext::execute(cfg, trace);
        test::expectIdentical(fast, reference);
    }
}

TEST_F(ClusterViewFastPath, RefreshesStayBelowFullRebuilds)
{
    if (std::getenv("PASCAL_FORCE_VIEW") != nullptr)
        GTEST_SKIP() << "incremental view globally disabled by env";
    // On a many-instance deployment most placement decisions touch a
    // fraction of the cluster: the incremental path must refresh
    // measurably fewer snapshots than rebuild-everything would.
    SystemConfig cfg =
        churnConfig(SchedulerType::Pascal, PlacementType::Pascal, 8);
    auto trace = churnTrace(13, 200, 25.0);
    cluster::RunContext ctx(cfg);
    ctx.submit(trace);
    ctx.run();
    const auto& c = ctx.cluster();
    ASSERT_GT(c.numViewBuilds(), 0u);
    std::uint64_t rebuild_cost =
        c.numViewBuilds() * static_cast<std::uint64_t>(cfg.numInstances);
    EXPECT_LT(c.numViewRefreshes(), rebuild_cost);

    cfg.forceViewRebuild = true;
    cluster::RunContext slow(cfg);
    slow.submit(trace);
    slow.run();
    EXPECT_EQ(slow.cluster().numViewRefreshes(),
              slow.cluster().numViewBuilds() *
                  static_cast<std::uint64_t>(cfg.numInstances));
    test::expectIdentical(ctx.result(), slow.result());
}

} // namespace
