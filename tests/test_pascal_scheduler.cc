/**
 * @file
 * Unit tests for PASCAL's hierarchical intra-instance scheduler:
 * reasoning-first allocation, answering evicted before reasoning,
 * per-queue round robin, demotion, and monitor counters (Section IV-C).
 */

#include <gtest/gtest.h>

#include "src/common/log.hh"
#include "src/core/pascal_scheduler.hh"
#include "tests/scheduler_test_util.hh"

namespace
{

using namespace pascal;
using core::PascalScheduler;
using core::SchedLimits;
using test::SchedulerHarness;

SchedLimits
limits(TokenCount quantum = 4, TokenCount demote = 5000)
{
    SchedLimits l;
    l.quantum = quantum;
    l.demoteThresholdTokens = demote;
    l.maxBatchSize = 64;
    l.maxPrefillTokens = 4096;
    l.maxPrefillSeqs = 8;
    return l;
}

/** Drive a resident request to its answering phase. */
void
makeAnswering(SchedulerHarness& h, workload::Request* r,
              TokenCount quantum = 4)
{
    h.makeResident(r, quantum);
    h.decodeTokens(r, r->spec().reasoningTokens - 1, 0.5, quantum);
    ASSERT_EQ(r->phase(), workload::Phase::Answering);
}

TEST(PascalSched, RequiresPositiveQuantum)
{
    EXPECT_THROW(PascalScheduler(limits(0)), FatalError);
}

TEST(PascalSched, ReasoningOutranksAnswering)
{
    SchedulerHarness h(250);
    PascalScheduler sched(limits());
    auto* ans = h.make(0, 0.0, 99, 2, 50); // Answering, kv 101.
    auto* rea = h.make(1, 5.0, 99, 50, 10); // New reasoning request.
    sched.add(ans);
    sched.add(rea);
    makeAnswering(h, ans);

    // Reasoning (arrived later!) gets KV first: prefill cost 100,
    // budget 150; answering cost 103 fits too.
    auto plan = sched.plan(h.pool);
    ASSERT_EQ(plan.prefill.size(), 1u);
    EXPECT_EQ(plan.prefill[0], rea);
}

TEST(PascalSched, AnsweringEvictedBeforeReasoning)
{
    SchedulerHarness h(220);
    PascalScheduler sched(limits());
    auto* ans = h.make(0, 0.0, 99, 2, 50); // Answering, kv 101.
    auto* rea = h.make(1, 5.0, 149, 50, 10); // Reasoning, prompt 149.
    sched.add(ans);
    sched.add(rea);
    makeAnswering(h, ans);

    // Reasoning needs 150 of 220; answering (102 resident + 1) no
    // longer fits (150 + 102 > 220) and cannot even stay resident
    // (keep budget 70 < 101): evicted.
    auto plan = sched.plan(h.pool);
    ASSERT_EQ(plan.prefill.size(), 1u);
    EXPECT_EQ(plan.prefill[0], rea);
    ASSERT_EQ(plan.swapOut.size(), 1u);
    EXPECT_EQ(plan.swapOut[0], ans);
}

TEST(PascalSched, AnsweringUsesLeftoverMemory)
{
    SchedulerHarness h(100000);
    PascalScheduler sched(limits(500));
    auto* ans = h.make(0, 0.0, 128, 2, 50);
    auto* rea = h.make(1, 1.0, 128, 50, 10);
    sched.add(ans);
    sched.add(rea);
    makeAnswering(h, ans, 500);
    h.makeResident(rea, 500);

    // Plenty of memory: both decode together (continuous batching).
    auto plan = sched.plan(h.pool);
    EXPECT_EQ(plan.decode.size(), 2u);
    EXPECT_TRUE(plan.swapOut.empty());
}

TEST(PascalSched, DemotionMovesMonsterReasoningToLowQueue)
{
    SchedulerHarness h(100000);
    PascalScheduler sched(limits(500, /*demote=*/200));
    auto* big = h.make(0, 0.0, 128, 500, 10);
    auto* fresh = h.make(1, 1.0, 128, 50, 10);
    sched.add(big);
    sched.add(fresh);
    h.makeResident(big, 500);
    h.decodeTokens(big, 100, 0.5, 500); // kv 229 > demote threshold.
    h.makeResident(fresh, 500);

    EXPECT_EQ(sched.numReasoning(), 2); // Demotion applies at plan().
    auto plan = sched.plan(h.pool);
    EXPECT_TRUE(big->demoted);
    EXPECT_EQ(sched.numReasoning(), 1); // Only the fresh request.
    EXPECT_EQ(plan.decode.size(), 2u);  // Both still run (memory ok).
}

TEST(PascalSched, DemotedRequestLosesToReasoningUnderPressure)
{
    SchedulerHarness h(400);
    PascalScheduler sched(limits(500, /*demote=*/200));
    auto* big = h.make(0, 0.0, 128, 500, 10);
    sched.add(big);
    h.makeResident(big, 500);
    h.decodeTokens(big, 150, 0.5, 500); // kv 279 > 200: will demote.

    auto* fresh = h.make(1, 1.0, 128, 50, 10);
    sched.add(fresh);

    // fresh prefill cost 129; big resident cost 280. 129 + 280 > 400:
    // big unselected, keep budget 271 < 279 -> evicted despite being
    // in the reasoning phase (it is demoted).
    auto plan = sched.plan(h.pool);
    ASSERT_EQ(plan.prefill.size(), 1u);
    EXPECT_EQ(plan.prefill[0], fresh);
    ASSERT_EQ(plan.swapOut.size(), 1u);
    EXPECT_EQ(plan.swapOut[0], big);
    EXPECT_TRUE(big->demoted);
}

TEST(PascalSched, PhaseTransitionResetsQuantum)
{
    SchedulerHarness h(10000);
    PascalScheduler sched(limits(4));
    auto* r = h.make(0, 0.0, 128, 8, 10);
    sched.add(r);
    h.makeResident(r, 4);
    h.decodeTokens(r, 7, 0.5, 4); // 8 tokens: 2 quanta, now answering.
    ASSERT_EQ(r->quantaConsumed, 2);

    sched.onPhaseTransition(r);
    EXPECT_EQ(r->quantaConsumed, 0);
    EXPECT_EQ(r->quantumTokens, 0);
}

TEST(PascalSched, FreshAnsweringCounter)
{
    SchedulerHarness h(100000);
    PascalScheduler sched(limits(4));
    auto* a1 = h.make(0, 0.0, 128, 2, 50);
    auto* a2 = h.make(1, 1.0, 128, 2, 50);
    sched.add(a1);
    sched.add(a2);
    makeAnswering(h, a1);
    makeAnswering(h, a2);
    sched.onPhaseTransition(a1);
    sched.onPhaseTransition(a2);
    EXPECT_EQ(sched.numFreshAnswering(), 2);

    // a1 burns a full quantum of answering tokens: no longer fresh.
    h.decodeTokens(a1, 4, 2.0, 4);
    EXPECT_EQ(sched.numFreshAnswering(), 1);
}

TEST(PascalSched, LowQueueRoundRobinOrder)
{
    SchedulerHarness h(300);
    PascalScheduler sched(limits(4));
    auto* a1 = h.make(0, 0.0, 99, 2, 50); // kv 101.
    auto* a2 = h.make(1, 1.0, 99, 2, 50); // kv 101.
    sched.add(a1);
    sched.add(a2);
    makeAnswering(h, a1);
    makeAnswering(h, a2);
    sched.onPhaseTransition(a1);
    sched.onPhaseTransition(a2);

    // Both fresh: capacity 300 fits only one (cost 103 each plus
    // keeping the other 102... 103+102=205 <= 300: actually both stay
    // resident but only... cost 103 + 103 = 206 <= 300: both decode.
    auto plan = sched.plan(h.pool);
    EXPECT_EQ(plan.decode.size(), 2u);

    // a1 consumes a quantum: a2 now outranks it.
    h.decodeTokens(a1, 4, 2.0, 4);
    plan = sched.plan(h.pool);
    ASSERT_GE(plan.decode.size(), 1u);
    EXPECT_EQ(plan.decode[0], a2);
}

TEST(PascalSched, StartInAnsweringGoesToLowQueue)
{
    SchedulerHarness h(100000);
    PascalScheduler sched(limits(500));
    auto* warm = h.make(0, 0.0, 128, 0, 50, /*start_in_answering=*/true);
    auto* rea = h.make(1, 1.0, 128, 50, 10);
    sched.add(warm);
    sched.add(rea);

    EXPECT_EQ(sched.numReasoning(), 1);
    auto plan = sched.plan(h.pool);
    // The reasoning request prefills; the prewarm allocates without
    // prefill cost but does not decode during a prefill iteration.
    ASSERT_EQ(plan.prefill.size(), 1u);
    EXPECT_EQ(plan.prefill[0], rea);
    ASSERT_EQ(plan.prewarm.size(), 1u);
    EXPECT_EQ(plan.prewarm[0], warm);
    EXPECT_TRUE(plan.decode.empty());
}

} // namespace
