/**
 * @file
 * Integration tests for the full cluster: routing, migration at phase
 * boundaries, fabric transfer accounting, and the ServingSystem
 * facade.
 */

#include <gtest/gtest.h>

#include "src/cluster/serving_system.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/workload/generator.hh"

namespace
{

using namespace pascal;
using cluster::PlacementType;
using cluster::RunResult;
using cluster::SchedulerType;
using cluster::ServingSystem;
using cluster::SystemConfig;

workload::Trace
smallTrace(int n = 40, double rate = 20.0, std::uint64_t seed = 11)
{
    Rng rng(seed);
    auto profile = workload::DatasetProfile::alpacaEval();
    // Shrink lengths so the tests run fast.
    profile.reasoning = {120.0, 0.8, 16, 600};
    profile.answering = {100.0, 0.8, 16, 600};
    profile.prompt = {64.0, 0.5, 16, 256};
    return workload::generateTrace(profile, n, rate, rng);
}

SystemConfig
smallConfig(SchedulerType sched, PlacementType place,
            TokenCount capacity = 4000, int instances = 4)
{
    SystemConfig cfg;
    cfg.scheduler = sched;
    cfg.placement = place;
    cfg.numInstances = instances;
    cfg.gpuKvCapacityTokens = capacity;
    return cfg;
}

TEST(Cluster, AllRequestsFinishUnderEveryScheduler)
{
    auto trace = smallTrace();
    for (auto sched : {SchedulerType::Fcfs, SchedulerType::Rr,
                       SchedulerType::Pascal}) {
        auto place = sched == SchedulerType::Pascal
                         ? PlacementType::Pascal
                         : PlacementType::Baseline;
        ServingSystem system(smallConfig(sched, place));
        auto result = system.run(trace);
        EXPECT_EQ(result.numUnfinished, 0u);
        EXPECT_EQ(result.aggregate.numFinished, trace.size());
        EXPECT_GT(result.aggregate.throughputTokensPerSec, 0.0);
    }
}

TEST(Cluster, PascalMigratesAtPhaseBoundaries)
{
    ServingSystem system(
        smallConfig(SchedulerType::Pascal, PlacementType::Pascal));
    auto result = system.run(smallTrace(60, 40.0));
    EXPECT_EQ(result.numUnfinished, 0u);
    // With several instances and bursty arrivals, some phase
    // transitions must land on a different instance.
    EXPECT_GT(result.totalMigrations, 0);
    EXPECT_FALSE(result.kvTransferLatencies.empty());
    for (double t : result.kvTransferLatencies)
        EXPECT_GT(t, 0.0);
}

TEST(Cluster, NoMigrationVariantNeverMigrates)
{
    ServingSystem system(smallConfig(SchedulerType::Pascal,
                                     PlacementType::PascalNoMigration));
    auto result = system.run(smallTrace(60, 40.0));
    EXPECT_EQ(result.totalMigrations, 0);
    EXPECT_TRUE(result.kvTransferLatencies.empty());
}

TEST(Cluster, BaselinePlacementNeverMigrates)
{
    ServingSystem system(
        smallConfig(SchedulerType::Fcfs, PlacementType::Baseline));
    auto result = system.run(smallTrace(60, 40.0));
    EXPECT_EQ(result.totalMigrations, 0);
}

TEST(Cluster, MetricsArePerRequestComplete)
{
    auto trace = smallTrace(30);
    ServingSystem system(
        smallConfig(SchedulerType::Pascal, PlacementType::Pascal));
    auto result = system.run(trace);

    ASSERT_EQ(result.perRequest.size(), trace.size());
    for (const auto& m : result.perRequest) {
        EXPECT_TRUE(m.finished);
        EXPECT_GT(m.ttft, 0.0);
        EXPECT_GT(m.ttfat, 0.0);
        EXPECT_GE(m.ttft, m.reasoningLatency);
        EXPECT_GE(m.e2eLatency, m.ttft);
        EXPECT_GE(m.qoe, 0.0);
        EXPECT_LE(m.qoe, 1.0);
    }
}

TEST(Cluster, OracleCapacityNeverPreempts)
{
    // Huge capacity: no instance should ever swap.
    auto cfg = smallConfig(SchedulerType::Fcfs, PlacementType::Baseline,
                           2000000);
    ServingSystem system(cfg);
    auto result = system.run(smallTrace(50, 50.0));
    EXPECT_EQ(result.numUnfinished, 0u);
    for (const auto& m : result.perRequest) {
        EXPECT_NEAR(m.reasoningBuckets.preempted, 0.0, 1e-9);
        EXPECT_NEAR(m.answeringBuckets.preempted, 0.0, 1e-9);
    }
}

TEST(Cluster, ConstrainedCapacitySlowerThanOracle)
{
    auto trace = smallTrace(50, 50.0);
    auto oracle_cfg = smallConfig(SchedulerType::Fcfs,
                                  PlacementType::Baseline, 2000000, 2);
    auto tight_cfg = smallConfig(SchedulerType::Fcfs,
                                 PlacementType::Baseline, 1504, 2);

    auto oracle = ServingSystem(oracle_cfg).run(trace);
    auto tight = ServingSystem(tight_cfg).run(trace);

    EXPECT_GE(tight.aggregate.meanTtft,
              oracle.aggregate.meanTtft * 0.99);
    EXPECT_GT(tight.aggregate.p99Ttft, oracle.aggregate.p99Ttft);
}

TEST(Cluster, PeakKvReportedForOracleRecipe)
{
    auto cfg = smallConfig(SchedulerType::Fcfs, PlacementType::Baseline,
                           2000000);
    ServingSystem system(cfg);
    auto result = system.run(smallTrace(30));
    EXPECT_GT(result.peakGpuKvTokens, 0);
    EXPECT_LE(result.peakGpuKvTokens, 2000000);
    EXPECT_EQ(result.kvCapacityTokens, 2000000);
}

TEST(Cluster, CapacityFractionApplied)
{
    auto cfg = smallConfig(SchedulerType::Fcfs, PlacementType::Baseline,
                           10000);
    cfg.kvCapacityFraction = 0.5;
    ServingSystem system(cfg);
    auto result = system.run(smallTrace(5, 5.0));
    EXPECT_EQ(result.kvCapacityTokens, 5000);
}

TEST(Cluster, RunsAreReproducible)
{
    auto trace = smallTrace(40, 30.0);
    auto cfg = smallConfig(SchedulerType::Pascal, PlacementType::Pascal);
    auto r1 = ServingSystem(cfg).run(trace);
    auto r2 = ServingSystem(cfg).run(trace);
    ASSERT_EQ(r1.perRequest.size(), r2.perRequest.size());
    for (std::size_t i = 0; i < r1.perRequest.size(); ++i) {
        EXPECT_DOUBLE_EQ(r1.perRequest[i].ttft, r2.perRequest[i].ttft);
        EXPECT_DOUBLE_EQ(r1.perRequest[i].e2eLatency,
                         r2.perRequest[i].e2eLatency);
    }
    EXPECT_EQ(r1.totalMigrations, r2.totalMigrations);
}

TEST(Cluster, EmptyTraceIsHarmless)
{
    ServingSystem system(
        smallConfig(SchedulerType::Pascal, PlacementType::Pascal));
    auto result = system.run(workload::Trace{});
    EXPECT_EQ(result.aggregate.numRequests, 0u);
    EXPECT_EQ(result.numUnfinished, 0u);
}

TEST(Cluster, SingleInstanceClusterWorks)
{
    auto cfg = smallConfig(SchedulerType::Pascal, PlacementType::Pascal,
                           4000, 1);
    ServingSystem system(cfg);
    auto result = system.run(smallTrace(20));
    EXPECT_EQ(result.numUnfinished, 0u);
    EXPECT_EQ(result.totalMigrations, 0); // Nowhere to go.
}

TEST(Cluster, ValidatesConfig)
{
    auto cfg = smallConfig(SchedulerType::Pascal, PlacementType::Pascal);
    cfg.numInstances = 0;
    EXPECT_THROW(ServingSystem{cfg}, FatalError);

    cfg = smallConfig(SchedulerType::Pascal, PlacementType::Pascal);
    cfg.kvCapacityFraction = -0.5;
    EXPECT_THROW(ServingSystem{cfg}, FatalError);
}

TEST(Cluster, ThroughputComparableAcrossSchedulers)
{
    // Fig. 12's qualitative claim: scheduling does not change total
    // throughput much (within a loose band here).
    auto trace = smallTrace(80, 40.0);
    double tp_fcfs =
        ServingSystem(
            smallConfig(SchedulerType::Fcfs, PlacementType::Baseline))
            .run(trace)
            .aggregate.throughputTokensPerSec;
    double tp_pascal =
        ServingSystem(
            smallConfig(SchedulerType::Pascal, PlacementType::Pascal))
            .run(trace)
            .aggregate.throughputTokensPerSec;
    EXPECT_GT(tp_pascal, tp_fcfs * 0.5);
    EXPECT_LT(tp_pascal, tp_fcfs * 2.0);
}

} // namespace
