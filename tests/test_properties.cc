/**
 * @file
 * Parameterized property tests: invariants that must hold across the
 * scheduler x capacity x load grid.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/cluster/serving_system.hh"
#include "src/common/rng.hh"
#include "src/predict/predictor.hh"
#include "src/workload/generator.hh"

namespace
{

using namespace pascal;
using cluster::PlacementType;
using cluster::SchedulerType;
using cluster::ServingSystem;
using cluster::SystemConfig;

struct GridPoint
{
    SchedulerType scheduler;
    PlacementType placement;
    TokenCount capacity;
    double rate;
    TokenCount blockSize = 1;
    bool chunkedPrefill = false;
    double answeringReserve = 0.0;
    predict::PredictorType predictor = predict::PredictorType::None;
};

std::string
gridName(const testing::TestParamInfo<GridPoint>& info)
{
    const auto& p = info.param;
    std::string s;
    switch (p.scheduler) {
      case SchedulerType::Fcfs:
        s = "Fcfs";
        break;
      case SchedulerType::Rr:
        s = "Rr";
        break;
      case SchedulerType::Pascal:
        s = "Pascal";
        break;
      case SchedulerType::Srpt:
        s = "Srpt";
        break;
      case SchedulerType::PascalSpec:
        s = "PascalSpec";
        break;
    }
    switch (p.placement) {
      case PlacementType::Baseline:
        break;
      case PlacementType::Pascal:
        s += "Full";
        break;
      case PlacementType::PascalNonAdaptive:
        s += "NonAdaptive";
        break;
      case PlacementType::PascalNoMigration:
        s += "NoMigration";
        break;
      case PlacementType::PascalPredictive:
        s += "Predictive";
        break;
    }
    s += "_cap" + std::to_string(p.capacity);
    s += "_rate" + std::to_string(static_cast<int>(p.rate));
    if (p.blockSize > 1)
        s += "_blk" + std::to_string(p.blockSize);
    if (p.chunkedPrefill)
        s += "_chunked";
    if (p.answeringReserve > 0.0)
        s += "_reserve";
    switch (p.predictor) {
      case predict::PredictorType::None:
        break;
      case predict::PredictorType::Oracle:
        s += "_oracle";
        break;
      case predict::PredictorType::NoisyOracle:
        s += "_noisy";
        break;
      case predict::PredictorType::Profile:
        s += "_profile";
        break;
      case predict::PredictorType::Rank:
        s += "_rank";
        break;
    }
    return s;
}

class SchedulerGrid : public testing::TestWithParam<GridPoint>
{
  protected:
    workload::Trace
    trace() const
    {
        Rng rng(5);
        auto profile = workload::DatasetProfile::alpacaEval();
        profile.reasoning = {100.0, 0.8, 16, 400};
        profile.answering = {80.0, 0.8, 16, 400};
        profile.prompt = {48.0, 0.5, 16, 128};
        return workload::generateTrace(profile, 40, GetParam().rate,
                                       rng);
    }

    SystemConfig
    config() const
    {
        SystemConfig cfg;
        cfg.scheduler = GetParam().scheduler;
        cfg.placement = GetParam().placement;
        cfg.numInstances = 3;
        cfg.gpuKvCapacityTokens = GetParam().capacity;
        cfg.kvBlockSizeTokens = GetParam().blockSize;
        cfg.limits.chunkedPrefill = GetParam().chunkedPrefill;
        cfg.limits.answeringReserveFraction =
            GetParam().answeringReserve;
        cfg.predictor.type = GetParam().predictor;
        if (cfg.predictor.type == predict::PredictorType::NoisyOracle)
            cfg.predictor.noiseSigma = 0.5;
        return cfg;
    }
};

TEST_P(SchedulerGrid, EveryRequestFinishesExactlyOnce)
{
    auto result = ServingSystem(config()).run(trace());
    EXPECT_EQ(result.numUnfinished, 0u);
    EXPECT_EQ(result.aggregate.numFinished, 40u);
}

TEST_P(SchedulerGrid, TimestampOrderingInvariants)
{
    auto result = ServingSystem(config()).run(trace());
    for (const auto& m : result.perRequest) {
        ASSERT_TRUE(m.finished);
        EXPECT_GE(m.reasoningLatency, 0.0);
        EXPECT_GE(m.ttfat, 0.0);
        EXPECT_NEAR(m.ttft, m.reasoningLatency + m.ttfat, 1e-9);
        EXPECT_GE(m.e2eLatency, m.ttft);
        EXPECT_GE(m.blockingLatency, 0.0);
        EXPECT_LE(m.blockingLatency, m.ttfat + 1e-9);
    }
}

TEST_P(SchedulerGrid, QoeInUnitInterval)
{
    auto result = ServingSystem(config()).run(trace());
    for (const auto& m : result.perRequest) {
        EXPECT_GE(m.qoe, 0.0);
        EXPECT_LE(m.qoe, 1.0);
    }
}

TEST_P(SchedulerGrid, BucketsCoverPhaseLatency)
{
    auto result = ServingSystem(config()).run(trace());
    for (const auto& m : result.perRequest) {
        // The reasoning-phase buckets tile [arrival, reasoningEnd].
        EXPECT_NEAR(m.reasoningBuckets.total(), m.reasoningLatency,
                    1e-6);
        // The answering-phase buckets tile [reasoningEnd, finish].
        EXPECT_NEAR(m.answeringBuckets.total(),
                    m.e2eLatency - m.reasoningLatency, 1e-6);
    }
}

TEST_P(SchedulerGrid, PeakKvWithinCapacity)
{
    auto result = ServingSystem(config()).run(trace());
    EXPECT_LE(result.peakGpuKvTokens, result.kvCapacityTokens);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchedulerGrid,
    testing::Values(
        GridPoint{SchedulerType::Fcfs, PlacementType::Baseline, 2500,
                  20.0},
        GridPoint{SchedulerType::Fcfs, PlacementType::Baseline, 800000,
                  20.0},
        GridPoint{SchedulerType::Rr, PlacementType::Baseline, 2500,
                  20.0},
        GridPoint{SchedulerType::Rr, PlacementType::Baseline, 800000,
                  40.0},
        GridPoint{SchedulerType::Pascal, PlacementType::Pascal, 2500,
                  20.0},
        GridPoint{SchedulerType::Pascal, PlacementType::Pascal, 800000,
                  40.0},
        GridPoint{SchedulerType::Pascal,
                  PlacementType::PascalNonAdaptive, 2500, 20.0},
        GridPoint{SchedulerType::Pascal,
                  PlacementType::PascalNoMigration, 2500, 20.0},
        // Block-granular points: capacities must be multiples of the
        // paged-KV block size (SystemConfig::validate enforces it).
        GridPoint{SchedulerType::Pascal, PlacementType::Pascal, 2560,
                  20.0, /*blockSize=*/16},
        GridPoint{SchedulerType::Fcfs, PlacementType::Baseline, 2560,
                  20.0, /*blockSize=*/64},
        GridPoint{SchedulerType::Pascal, PlacementType::Pascal, 2500,
                  20.0, /*blockSize=*/1, /*chunkedPrefill=*/true},
        GridPoint{SchedulerType::Rr, PlacementType::Baseline, 2560,
                  20.0, /*blockSize=*/16, /*chunkedPrefill=*/true},
        GridPoint{SchedulerType::Pascal, PlacementType::Pascal, 2560,
                  20.0, /*blockSize=*/16, /*chunkedPrefill=*/false,
                  /*answeringReserve=*/0.25},
        GridPoint{SchedulerType::Pascal, PlacementType::Pascal, 2560,
                  40.0, /*blockSize=*/16, /*chunkedPrefill=*/true,
                  /*answeringReserve=*/0.2},
        // Speculative policies under every predictor family: the
        // conservation/ordering/QoE invariants must hold no matter how
        // wrong the predictions are.
        GridPoint{SchedulerType::Srpt, PlacementType::PascalPredictive,
                  2500, 20.0, /*blockSize=*/1, false, 0.0,
                  predict::PredictorType::Oracle},
        GridPoint{SchedulerType::Srpt, PlacementType::PascalPredictive,
                  2500, 20.0, /*blockSize=*/1, false, 0.0,
                  predict::PredictorType::NoisyOracle},
        GridPoint{SchedulerType::Srpt, PlacementType::Baseline, 2500,
                  20.0, /*blockSize=*/1, false, 0.0,
                  predict::PredictorType::Rank},
        GridPoint{SchedulerType::PascalSpec,
                  PlacementType::PascalPredictive, 2500, 20.0,
                  /*blockSize=*/1, false, 0.0,
                  predict::PredictorType::Oracle},
        GridPoint{SchedulerType::PascalSpec,
                  PlacementType::PascalPredictive, 2560, 20.0,
                  /*blockSize=*/16, /*chunkedPrefill=*/true, 0.0,
                  predict::PredictorType::Profile},
        GridPoint{SchedulerType::PascalSpec, PlacementType::Pascal,
                  2500, 40.0, /*blockSize=*/1, false, 0.0,
                  predict::PredictorType::NoisyOracle}),
    gridName);

/** The motivation result (Section III): under memory pressure, FCFS
 *  hurts short requests more; RR spreads pain but keeps everyone
 *  progressing. PASCAL's reasoning latency should not exceed RR's by
 *  much on reasoning-heavy mixes. */
TEST(SchedulerOrdering, FcfsHasWorstTailBlockingUnderPressure)
{
    Rng rng(9);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.reasoning = {150.0, 0.8, 16, 500};
    profile.answering = {100.0, 0.8, 16, 400};
    profile.prompt = {48.0, 0.5, 16, 128};
    auto trace = workload::generateTrace(profile, 80, 80.0, rng);

    SystemConfig base;
    base.numInstances = 1;
    base.gpuKvCapacityTokens = 1200;

    auto fcfs = base;
    fcfs.scheduler = SchedulerType::Fcfs;
    fcfs.placement = PlacementType::Baseline;
    auto rr = base;
    rr.scheduler = SchedulerType::Rr;
    rr.placement = PlacementType::Baseline;

    auto fcfs_result = ServingSystem(fcfs).run(trace);
    auto rr_result = ServingSystem(rr).run(trace);

    double fcfs_blocked = 0.0, rr_blocked = 0.0;
    for (const auto& m : fcfs_result.perRequest)
        fcfs_blocked += m.reasoningBuckets.blocked;
    for (const auto& m : rr_result.perRequest)
        rr_blocked += m.reasoningBuckets.blocked;

    // FCFS concentrates waiting into blocking; RR converts it into
    // preemption.
    EXPECT_GT(fcfs_blocked, rr_blocked);
}

} // namespace
