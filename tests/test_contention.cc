/**
 * @file
 * Contention-focused tests: the Section V-C mechanism (simultaneous
 * KV migrations queueing on one node's fabric ingress) and
 * parameterized sweeps of the token pacer's conservation invariants.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/model/link.hh"
#include "src/qoe/token_pacer.hh"
#include "src/sim/simulator.hh"

namespace
{

using namespace pascal;
using model::Link;
using qoe::TokenPacer;
using sim::Simulator;

TEST(FabricContention, SimultaneousTransfersSerialize)
{
    Simulator sim;
    Link ingress(sim, 1000.0, "ingress"); // 1000 B/s.

    // Five 1000-byte migrations submitted at t=0 into one node.
    std::vector<Time> completions;
    for (int i = 0; i < 5; ++i)
        completions.push_back(ingress.submit(1000, nullptr));

    // Strict FIFO serialization: k-th completes at (k+1) seconds.
    for (int i = 0; i < 5; ++i)
        EXPECT_DOUBLE_EQ(completions[i], static_cast<double>(i + 1));

    // End-to-end latency (the paper's reported metric) grows linearly
    // with queue position.
    const auto& lat = ingress.transferLatencies();
    for (int i = 1; i < 5; ++i)
        EXPECT_GT(lat[i], lat[i - 1]);
}

TEST(FabricContention, IndependentIngressLinksDoNotInterfere)
{
    Simulator sim;
    Link a(sim, 1000.0, "ingress-a");
    Link b(sim, 1000.0, "ingress-b");

    Time ta = a.submit(1000, nullptr);
    Time tb = b.submit(1000, nullptr);
    // Different targets: both finish in one second.
    EXPECT_DOUBLE_EQ(ta, 1.0);
    EXPECT_DOUBLE_EQ(tb, 1.0);
}

TEST(FabricContention, LatencyScalesWithKvSize)
{
    Simulator sim;
    Link ingress(sim, 1000.0, "ingress");
    Time small = ingress.submit(500, [] {});
    sim.run(); // Advances the clock to the completion at t=0.5.
    Time big = ingress.submit(5000, nullptr) - sim.now();
    EXPECT_DOUBLE_EQ(small, 0.5);
    EXPECT_DOUBLE_EQ(big, 5.0);
}

/** Parameterized pacer sweep over pace values. */
class PacerSweep : public testing::TestWithParam<double>
{
};

TEST_P(PacerSweep, ReleasesAreMonotoneAndPaced)
{
    double pace = GetParam();
    TokenPacer pacer(pace);

    // Bursty generation: clumps of 4 tokens every 10 paces.
    Time t = 0.0;
    for (int clump = 0; clump < 5; ++clump) {
        for (int i = 0; i < 4; ++i)
            pacer.onTokenGenerated(t);
        t += 10.0 * pace;
    }

    const auto& releases = pacer.releaseTimes();
    ASSERT_EQ(releases.size(), 20u);
    for (std::size_t k = 1; k < releases.size(); ++k) {
        // Monotone, and never faster than the pace.
        EXPECT_GE(releases[k], releases[k - 1] + pace - 1e-12);
    }
    // No token is released before it exists.
    std::size_t idx = 0;
    t = 0.0;
    for (int clump = 0; clump < 5; ++clump) {
        for (int i = 0; i < 4; ++i)
            EXPECT_GE(releases[idx++], t - 1e-12);
        t += 10.0 * pace;
    }
}

TEST_P(PacerSweep, BufferConservation)
{
    double pace = GetParam();
    TokenPacer pacer(pace);
    for (int i = 0; i < 10; ++i)
        pacer.onTokenGenerated(0.0);

    // At any probe time: released + buffered == generated.
    for (double probe : {0.0, 0.5 * pace, 3.0 * pace, 100.0 * pace}) {
        EXPECT_EQ(pacer.releasedBy(probe) + pacer.bufferedAt(probe),
                  10u);
    }
}

INSTANTIATE_TEST_SUITE_P(Paces, PacerSweep,
                         testing::Values(0.01, 0.05, 0.1, 0.5, 2.0),
                         [](const testing::TestParamInfo<double>& info) {
                             return "pace_" +
                                    std::to_string(static_cast<int>(
                                        info.param * 1000));
                         });

} // namespace
