/**
 * @file
 * Unit tests for the discrete-event queue and simulator loop.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/sim/event_queue.hh"
#include "src/sim/simulator.hh"

namespace
{

using pascal::sim::EventQueue;
using pascal::sim::Simulator;

TEST(EventQueue, EmptyByDefault)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_TRUE(std::isinf(q.nextTime()));
}

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(2.0, [&] { fired.push_back(2); });
    q.schedule(1.0, [&] { fired.push_back(1); });
    q.schedule(3.0, [&] { fired.push_back(3); });

    while (!q.empty())
        q.pop().callback();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimestamps)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 10; ++i)
        q.schedule(5.0, [&fired, i] { fired.push_back(i); });

    while (!q.empty())
        q.pop().callback();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, CancelRemovesEvent)
{
    EventQueue q;
    bool fired = false;
    auto id = q.schedule(1.0, [&] { fired = true; });
    q.schedule(2.0, [] {});
    q.cancel(id);

    EXPECT_EQ(q.size(), 1u);
    EXPECT_DOUBLE_EQ(q.nextTime(), 2.0);
    while (!q.empty())
        q.pop().callback();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop)
{
    EventQueue q;
    q.schedule(1.0, [] {});
    EXPECT_FALSE(q.cancel(12345)); // Never scheduled.
    EXPECT_FALSE(q.cancel(pascal::sim::kNoEvent));
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    // Seed regression: cancelling an already-fired id used to park a
    // tombstone forever and underflow size() (heap.size() -
    // cancelled.size() on size_t), corrupting pendingEvents().
    EventQueue q;
    auto id = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    q.pop().callback(); // Fires the t=1 event; id is now stale.

    EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.size(), 1u);
    EXPECT_FALSE(q.empty());
    EXPECT_DOUBLE_EQ(q.nextTime(), 2.0);
}

TEST(EventQueue, DoubleCancelIsNoop)
{
    EventQueue q;
    auto id = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, StaleIdDoesNotCancelRecycledSlot)
{
    // After an event dies its slot is recycled; the generation stamp
    // must keep the old handle from killing the new tenant.
    EventQueue q;
    auto stale = q.schedule(1.0, [] {});
    q.pop().callback();

    bool fired = false;
    q.schedule(2.0, [&] { fired = true; }); // Likely reuses the slot.
    EXPECT_FALSE(q.cancel(stale));
    EXPECT_EQ(q.size(), 1u);
    while (!q.empty())
        q.pop().callback();
    EXPECT_TRUE(fired);
}

TEST(EventQueue, FifoSurvivesInterleavedCancellation)
{
    EventQueue q;
    std::vector<int> fired;
    std::vector<pascal::sim::EventId> ids;
    for (int i = 0; i < 20; ++i)
        ids.push_back(q.schedule(5.0, [&fired, i] { fired.push_back(i); }));
    for (int i = 1; i < 20; i += 2)
        EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));

    while (!q.empty())
        q.pop().callback();
    std::vector<int> expected;
    for (int i = 0; i < 20; i += 2)
        expected.push_back(i);
    EXPECT_EQ(fired, expected);
}

TEST(EventQueue, StressOrderingMatchesReferenceSort)
{
    // Pseudo-random times with many collisions; pop order must be the
    // stable sort by (time, insertion order).
    EventQueue q;
    std::uint64_t state = 12345;
    std::vector<std::pair<double, int>> reference;
    for (int i = 0; i < 5000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        double when = static_cast<double>((state >> 33) % 50);
        reference.emplace_back(when, i);
        q.schedule(when, [] {});
    }
    std::stable_sort(reference.begin(), reference.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });

    std::size_t at = 0;
    double prev = -1.0;
    while (!q.empty()) {
        auto ev = q.pop();
        ASSERT_LT(at, reference.size());
        EXPECT_DOUBLE_EQ(ev.when, reference[at].first);
        EXPECT_GE(ev.when, prev);
        prev = ev.when;
        ++at;
    }
    EXPECT_EQ(at, reference.size());
}

TEST(EventQueue, CancelEveryEventEmptiesQueue)
{
    EventQueue q;
    std::vector<pascal::sim::EventId> ids;
    for (int i = 0; i < 100; ++i)
        ids.push_back(q.schedule(static_cast<double>(i % 7), [] {}));
    for (auto id : ids)
        EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_TRUE(std::isinf(q.nextTime()));
}

TEST(Simulator, ClockAdvancesToEventTime)
{
    Simulator sim;
    double seen = -1.0;
    sim.at(4.5, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(seen, 4.5);
    EXPECT_DOUBLE_EQ(sim.now(), 4.5);
}

TEST(Simulator, AfterSchedulesRelative)
{
    Simulator sim;
    std::vector<double> times;
    sim.at(1.0, [&] {
        times.push_back(sim.now());
        sim.after(2.0, [&] { times.push_back(sim.now()); });
    });
    sim.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_DOUBLE_EQ(times[0], 1.0);
    EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Simulator, RunUntilStopsBeforeLaterEvents)
{
    Simulator sim;
    int fired = 0;
    sim.at(1.0, [&] { ++fired; });
    sim.at(10.0, [&] { ++fired; });
    sim.run(5.0);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.pendingEvents(), 1u);

    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, StopEndsRunEarly)
{
    Simulator sim;
    int fired = 0;
    sim.at(1.0, [&] {
        ++fired;
        sim.stop();
    });
    sim.at(2.0, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
}

TEST(Simulator, MaxEventsBound)
{
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        sim.at(static_cast<double>(i), [&] { ++fired; });
    auto executed = sim.run(pascal::kTimeInfinity, 10);
    EXPECT_EQ(executed, 10u);
    EXPECT_EQ(fired, 10);
}

TEST(Simulator, CascadedEventsRunInOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.at(1.0, [&] {
        order.push_back(1);
        sim.after(0.0, [&] { order.push_back(2); });
    });
    sim.at(1.0, [&] { order.push_back(3); });
    sim.run();
    // The zero-delay continuation fires after the other t=1 event
    // (FIFO among equal timestamps).
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, CountsExecutedEvents)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i)
        sim.at(1.0 * i, [] {});
    EXPECT_EQ(sim.run(), 7u);
}

} // namespace
