/**
 * @file
 * Tests for RunContext and the parallel SweepRunner: facade
 * equivalence, bit-reproducibility of runs, and serial/parallel
 * result parity on multi-point grids.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/cluster/run_context.hh"
#include "src/cluster/serving_system.hh"
#include "src/cluster/sweep_runner.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/workload/generator.hh"
#include "tests/run_result_util.hh"

namespace
{

using namespace pascal;
using cluster::RunResult;
using cluster::SweepRunner;
using cluster::SystemConfig;
using test::expectIdentical;

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

using RunContextTest = QuietLogs;
using SweepRunnerTest = QuietLogs;

workload::Trace
smallTrace(std::uint64_t seed, int n = 120, double rate = 10.0)
{
    Rng rng(seed);
    return workload::generateTrace(
        workload::DatasetProfile::alpacaEval(), n, rate, rng);
}

// expectIdentical (tests/run_result_util.hh): byte-identical
// comparison shared with the plan-reuse invariance suite.

TEST_F(RunContextTest, MatchesServingSystemFacade)
{
    auto trace = smallTrace(7);
    SystemConfig cfg = SystemConfig::pascal(2);

    cluster::ServingSystem facade(cfg);
    auto via_facade = facade.run(trace);
    auto via_context = cluster::RunContext::execute(cfg, trace);
    expectIdentical(via_facade, via_context);
}

TEST_F(RunContextTest, StepwiseRunMatchesOneShot)
{
    auto trace = smallTrace(11);
    SystemConfig cfg = SystemConfig::baseline(
        cluster::SchedulerType::Fcfs, 2);

    cluster::RunContext stepped(cfg);
    stepped.submit(trace);
    // Drive in growing horizons; the final result must not depend on
    // how the run was chunked.
    stepped.run(5.0);
    stepped.run(50.0);
    stepped.run();

    expectIdentical(cluster::RunContext::execute(cfg, trace),
                    stepped.result());
}

TEST_F(RunContextTest, ExposesSimulatorAndCluster)
{
    SystemConfig cfg = SystemConfig::pascal(2);
    cluster::RunContext ctx(cfg);
    EXPECT_EQ(ctx.simulator().now(), 0.0);
    EXPECT_EQ(ctx.cluster().getInstances().size(), 2u);
    EXPECT_EQ(ctx.config().numInstances, 2);

    auto trace = smallTrace(3, 20);
    ctx.submit(trace);
    EXPECT_EQ(ctx.simulator().pendingEvents(), trace.size());
    ctx.run();
    EXPECT_EQ(ctx.simulator().pendingEvents(), 0u);
    EXPECT_EQ(ctx.result().numUnfinished, 0u);
}

TEST_F(RunContextTest, SameSeedRunsAreByteIdentical)
{
    SystemConfig cfg = SystemConfig::pascal(2);
    auto first = cluster::RunContext::execute(cfg, smallTrace(42));
    auto second = cluster::RunContext::execute(cfg, smallTrace(42));
    expectIdentical(first, second);
}

TEST_F(SweepRunnerTest, GridOrderAndLabels)
{
    SweepRunner runner;
    auto t0 = runner.addGeneratedTrace(
        workload::DatasetProfile::alpacaEval(), 40, 10.0, 1);
    auto t1 = runner.addGeneratedTrace(
        workload::DatasetProfile::arenaHard(), 40, 5.0, 2);
    EXPECT_EQ(runner.numTraces(), 2u);

    runner.addGrid({SystemConfig::baseline(cluster::SchedulerType::Fcfs, 2),
                    SystemConfig::pascal(2)},
                   {t0, t1}, {1, 2});
    ASSERT_EQ(runner.numPoints(), 8u);

    // Nested deterministic order: configs, then traces, then seeds.
    EXPECT_EQ(runner.point(0).traceIndex, t0);
    EXPECT_EQ(runner.point(0).seed, 1u);
    EXPECT_EQ(runner.point(1).seed, 2u);
    EXPECT_EQ(runner.point(2).traceIndex, t1);
    EXPECT_EQ(runner.point(4).config.scheduler,
              cluster::SchedulerType::Pascal);

    auto result = runner.run(1);
    ASSERT_EQ(result.size(), 8u);
    for (std::size_t i = 0; i < result.size(); ++i)
        EXPECT_EQ(result.outcomes[i].label, runner.point(i).label);
    EXPECT_EQ(result.outcomes[0].result.schedulerName, "FCFS");
    EXPECT_EQ(result.outcomes[4].result.schedulerName, "PASCAL");
}

TEST_F(SweepRunnerTest, GeneratedTracesRecordProvenance)
{
    SweepRunner runner;
    auto t = runner.addGeneratedTrace(
        workload::DatasetProfile::alpacaEval(), 40, 10.0, 1234);
    const auto& prov = runner.trace(t).provenance;
    EXPECT_TRUE(prov.generated);
    EXPECT_EQ(prov.profile, "AlpacaEval2.0");
    EXPECT_EQ(prov.n, 40);
    EXPECT_DOUBLE_EQ(prov.ratePerSec, 10.0);
    EXPECT_TRUE(prov.seedKnown);
    EXPECT_EQ(prov.seed, 1234u);
    EXPECT_EQ(runner.trace(t).describe(),
              "AlpacaEval2.0 n=40 rate=10 seed=1234");

    // External traces stay unlabeled (no invented knobs).
    auto ext = runner.addTrace(smallTrace(3));
    EXPECT_FALSE(runner.trace(ext).provenance.seedKnown);
}

TEST_F(SweepRunnerTest, TracesAreSharedNotCopied)
{
    // Registered traces are immutable shared arenas: handles alias
    // the registry entry (no per-point deep copies) and keep the
    // trace alive past the runner.
    std::shared_ptr<const workload::Trace> handle;
    const workload::RequestSpec* first = nullptr;
    {
        SweepRunner runner;
        auto t = runner.addGeneratedTrace(
            workload::DatasetProfile::alpacaEval(), 30, 10.0, 5);
        handle = runner.traceHandle(t);
        EXPECT_EQ(handle.get(), &runner.trace(t));
        first = &runner.trace(t).requests.front();
    }
    ASSERT_NE(handle, nullptr);
    EXPECT_EQ(&handle->requests.front(), first);
    EXPECT_EQ(handle->requests.size(), 30u);
}

TEST_F(SweepRunnerTest, ParallelMatchesSerialOnEightPointGrid)
{
    // The acceptance grid: >= 8 points on 4 threads must be
    // byte-identical to the serial run.
    SweepRunner runner;
    auto t0 = runner.addGeneratedTrace(
        workload::DatasetProfile::alpacaEval(), 100, 12.0, 5);
    auto t1 = runner.addGeneratedTrace(
        workload::DatasetProfile::arenaHard(), 60, 4.0, 6);

    runner.addGrid({SystemConfig::baseline(cluster::SchedulerType::Fcfs, 2),
                    SystemConfig::baseline(cluster::SchedulerType::Rr, 2),
                    SystemConfig::pascal(2),
                    SystemConfig::pascal(4)},
                   {t0, t1});
    ASSERT_EQ(runner.numPoints(), 8u);

    auto serial = runner.run(1);
    auto parallel = runner.run(4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial.outcomes[i].label, parallel.outcomes[i].label);
        EXPECT_EQ(serial.outcomes[i].seed, parallel.outcomes[i].seed);
        expectIdentical(serial.outcomes[i].result,
                        parallel.outcomes[i].result);
    }
}

TEST_F(SweepRunnerTest, RepeatedParallelRunsAreIdentical)
{
    SweepRunner runner;
    auto t = runner.addGeneratedTrace(
        workload::DatasetProfile::alpacaEval(), 80, 10.0, 9);
    runner.addGrid({SystemConfig::pascal(2)}, {t}, {9});

    auto first = runner.run(4);
    auto second = runner.run(4);
    ASSERT_EQ(first.size(), 1u);
    expectIdentical(first.outcomes[0].result,
                    second.outcomes[0].result);
}

TEST_F(SweepRunnerTest, AggregationHelpers)
{
    SweepRunner runner;
    auto t = runner.addGeneratedTrace(
        workload::DatasetProfile::alpacaEval(), 60, 10.0, 4);
    runner.add({"fcfs",
                SystemConfig::baseline(cluster::SchedulerType::Fcfs, 2),
                t, 4});
    runner.add({"pascal", SystemConfig::pascal(2), t, 4});

    auto result = runner.run();
    ASSERT_EQ(result.size(), 2u);

    auto p99 = [](const RunResult& r) { return r.aggregate.p99Ttft; };
    const auto* best = result.bestBy(p99);
    ASSERT_NE(best, nullptr);
    const auto* worst = result.bestBy(p99, /*minimize=*/false);
    ASSERT_NE(worst, nullptr);
    EXPECT_LE(best->result.aggregate.p99Ttft,
              worst->result.aggregate.p99Ttft);

    double mean = result.meanOf(p99);
    EXPECT_GE(mean, best->result.aggregate.p99Ttft);
    EXPECT_LE(mean, worst->result.aggregate.p99Ttft);

    ASSERT_NE(result.find("pascal"), nullptr);
    EXPECT_EQ(result.find("pascal")->result.schedulerName, "PASCAL");
    EXPECT_EQ(result.find("missing"), nullptr);

    auto finished = result.where([](const cluster::SweepOutcome& o) {
        return o.result.numUnfinished == 0;
    });
    EXPECT_EQ(finished.size(), 2u);
}

TEST_F(SweepRunnerTest, DefaultLabelsAreDescriptive)
{
    SweepRunner runner;
    auto t = runner.addGeneratedTrace(
        workload::DatasetProfile::alpacaEval(), 10, 10.0, 1);
    auto i = runner.add({"", SystemConfig::pascal(2), t, 77});
    EXPECT_EQ(runner.point(i).label, "PASCAL/PASCAL/t0/s77");

    // Predictor-carrying configs splice the predictor into the label.
    predict::PredictorConfig noisy;
    noisy.type = predict::PredictorType::NoisyOracle;
    noisy.noiseSigma = 0.2;
    auto cfg = SystemConfig::speculative(cluster::SchedulerType::Srpt,
                                         noisy, 2);
    auto j = runner.add({"", cfg, t, 3});
    EXPECT_EQ(runner.point(j).label,
              "SRPT/PASCAL(Predictive)/noisy(0.20)/t0/s3");
}

TEST_F(SweepRunnerTest, PredictorGridCrossesConfigsAndPredictors)
{
    SweepRunner runner;
    auto t = runner.addGeneratedTrace(
        workload::DatasetProfile::alpacaEval(), 20, 10.0, 1);

    predict::PredictorConfig oracle;
    oracle.type = predict::PredictorType::Oracle;
    predict::PredictorConfig profile;
    profile.type = predict::PredictorType::Profile;

    SystemConfig spec;
    spec.scheduler = cluster::SchedulerType::PascalSpec;
    spec.placement = cluster::PlacementType::Pascal;
    spec.numInstances = 2;
    runner.addPredictorGrid({spec}, {oracle, profile}, {t}, {1, 2});

    ASSERT_EQ(runner.numPoints(), 4u);
    // Predictors vary before traces/seeds, configs outermost.
    EXPECT_EQ(runner.point(0).label,
              "PASCAL-Spec/PASCAL/oracle/t0/s1");
    EXPECT_EQ(runner.point(1).label,
              "PASCAL-Spec/PASCAL/oracle/t0/s2");
    EXPECT_EQ(runner.point(2).label,
              "PASCAL-Spec/PASCAL/profile/t0/s1");
    EXPECT_EQ(runner.point(3).config.predictor.type,
              predict::PredictorType::Profile);
}

TEST_F(SweepRunnerTest, ParallelMatchesSerialWithPredictorsEnabled)
{
    // Acceptance: byte-identical SweepResults serial vs. multi-
    // threaded with predictors in the grid (the online learners must
    // not leak state across grid points or depend on worker
    // interleaving).
    SweepRunner runner;
    auto t0 = runner.addGeneratedTrace(
        workload::DatasetProfile::gpqa(), 80, 6.0, 5);
    auto t1 = runner.addGeneratedTrace(
        workload::DatasetProfile::alpacaEval(), 80, 12.0, 6);

    std::vector<predict::PredictorConfig> predictors(4);
    predictors[0].type = predict::PredictorType::Oracle;
    predictors[1].type = predict::PredictorType::NoisyOracle;
    predictors[1].noiseSigma = 0.5;
    predictors[2].type = predict::PredictorType::Profile;
    predictors[3].type = predict::PredictorType::Rank;

    SystemConfig srpt;
    srpt.scheduler = cluster::SchedulerType::Srpt;
    srpt.placement = cluster::PlacementType::PascalPredictive;
    srpt.numInstances = 2;
    SystemConfig spec;
    spec.scheduler = cluster::SchedulerType::PascalSpec;
    spec.placement = cluster::PlacementType::PascalPredictive;
    spec.numInstances = 2;
    runner.addPredictorGrid({srpt, spec}, predictors, {t0, t1});
    ASSERT_EQ(runner.numPoints(), 16u);

    auto serial = runner.run(1);
    auto parallel = runner.run(4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial.outcomes[i].label, parallel.outcomes[i].label);
        expectIdentical(serial.outcomes[i].result,
                        parallel.outcomes[i].result);
    }
}

TEST_F(SweepRunnerTest, BadTraceIndexIsFatal)
{
    SweepRunner runner;
    cluster::SweepPoint point;
    point.config = SystemConfig::pascal(2);
    point.traceIndex = 3; // No traces registered.
    EXPECT_THROW(runner.add(std::move(point)), FatalError);
}

} // namespace
