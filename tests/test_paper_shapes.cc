/**
 * @file
 * Shape-regression tests: scaled-down versions of the paper's key
 * experiments with the qualitative claims asserted, so a refactor
 * that silently breaks a reproduction fails ctest rather than only
 * showing up in bench output.
 *
 * Thresholds are deliberately loose (the full benches use much larger
 * traces); these tests check ordering and rough factors, not values.
 */

#include <gtest/gtest.h>

#include <map>

#include "src/cluster/serving_system.hh"
#include "src/common/rng.hh"
#include "src/common/stats.hh"
#include "src/workload/generator.hh"

namespace
{

using namespace pascal;
using cluster::PlacementType;
using cluster::SchedulerType;
using cluster::ServingSystem;
using cluster::SystemConfig;

SystemConfig
singleInstance(SchedulerType sched, TokenCount capacity)
{
    SystemConfig cfg;
    cfg.scheduler = sched;
    cfg.placement = PlacementType::Baseline;
    cfg.numInstances = 1;
    // Derived capacities (oracle peaks, halved budgets) are arbitrary
    // token counts; align them to the paged-KV block size validate()
    // now insists on.
    cfg.gpuKvCapacityTokens =
        SystemConfig::alignKvCapacity(capacity, cfg.kvBlockSizeTokens);
    cfg.limits.maxPrefillTokens = 16384;
    cfg.limits.maxPrefillSeqs = 64;
    return cfg;
}

/** Mean reasoning latency per reasoning-length group. */
std::map<TokenCount, double>
reasoningLatencyByLength(const cluster::RunResult& result)
{
    std::map<TokenCount, stats::Summary> groups;
    for (const auto& m : result.perRequest) {
        if (m.finished)
            groups[m.reasoningTokens].add(m.reasoningLatency);
    }
    std::map<TokenCount, double> out;
    for (auto& [len, summary] : groups)
        out[len] = summary.mean();
    return out;
}

/**
 * Fig. 4 shape: under 50 % memory, FCFS hurts short reasoning
 * requests the most (blocking), RR hurts long ones (preemption), and
 * RR keeps short requests near the oracle.
 */
TEST(PaperShapes, Fig4ReasoningLatencyAsymmetry)
{
    Rng rng(404);
    auto trace = workload::generateReasoningCharacterization(
        150, 3.0, rng, {128, 2048});

    TokenCount oracle_capacity = 0;
    for (const auto& s : trace.requests)
        oracle_capacity += s.promptTokens + s.reasoningTokens + 2;

    auto oracle_cfg = singleInstance(SchedulerType::Fcfs,
                                     oracle_capacity);
    auto oracle = ServingSystem(oracle_cfg).run(trace);
    ASSERT_EQ(oracle.numUnfinished, 0u);
    TokenCount constrained = oracle.peakGpuKvTokens / 2;

    auto fcfs = ServingSystem(singleInstance(SchedulerType::Fcfs,
                                             constrained))
                    .run(trace);
    auto rr = ServingSystem(singleInstance(SchedulerType::Rr,
                                           constrained))
                  .run(trace);

    auto orc = reasoningLatencyByLength(oracle);
    auto f = reasoningLatencyByLength(fcfs);
    auto r = reasoningLatencyByLength(rr);

    // Short requests: FCFS blocked far beyond oracle; RR close to it.
    EXPECT_GT(f[128] / orc[128], 2.0);
    EXPECT_LT(r[128] / orc[128], 1.4);
    // Long requests: RR pays preemption; FCFS is milder there than on
    // short ones (relative to oracle).
    EXPECT_GT(r[2048] / orc[2048], 1.2);
    EXPECT_GT(f[128] / orc[128], f[2048] / orc[2048]);
    // RR's pain concentrates on long requests.
    EXPECT_GT(r[2048] / orc[2048], r[128] / orc[128]);
}

/**
 * Fig. 5 shape: answering-phase SLO attainment is robust under RR
 * (threshold-based) but collapses under FCFS blocking.
 */
TEST(PaperShapes, Fig5AnsweringSloRobustness)
{
    Rng rng(505);
    auto trace = workload::generateAnsweringCharacterization(
        150, 3.0, rng, {128, 1024});

    TokenCount oracle_capacity = 0;
    for (const auto& s : trace.requests)
        oracle_capacity += s.promptTokens + s.answerTokens + 2;

    auto base = singleInstance(SchedulerType::Fcfs, oracle_capacity);
    base.slo.qoeFromFirstToken = false;

    auto oracle = ServingSystem(base).run(trace);
    TokenCount constrained = oracle.peakGpuKvTokens / 2;

    auto fcfs_cfg = singleInstance(SchedulerType::Fcfs, constrained);
    fcfs_cfg.slo.qoeFromFirstToken = false;
    auto rr_cfg = singleInstance(SchedulerType::Rr, constrained);
    rr_cfg.slo.qoeFromFirstToken = false;

    auto fcfs = ServingSystem(fcfs_cfg).run(trace);
    auto rr = ServingSystem(rr_cfg).run(trace);

    EXPECT_LT(oracle.aggregate.sloViolationRate, 0.05);
    EXPECT_LT(rr.aggregate.sloViolationRate, 0.15);
    EXPECT_GT(fcfs.aggregate.sloViolationRate,
              rr.aggregate.sloViolationRate + 0.25);
}

SystemConfig
clusterCfg(SchedulerType sched, PlacementType place)
{
    SystemConfig cfg;
    cfg.scheduler = sched;
    cfg.placement = place;
    cfg.numInstances = 4;
    // ~40 concurrent AlpacaEval requests per instance: the same
    // many-requests-per-instance regime as the full benches (PASCAL's
    // advantages need per-instance batching, not slot-sized pools).
    cfg.gpuKvCapacityTokens = 52000;
    return cfg;
}

workload::Trace
clusterTrace(std::uint64_t seed = 606)
{
    // 7 req/s sits just past this mini-cluster's saturation knee:
    // memory pressure appears without collapsing into global
    // overload, mirroring the full benches' calibration.
    Rng rng(seed);
    return workload::generateTrace(
        workload::DatasetProfile::alpacaEval(), 700, 7.0, rng);
}

/**
 * Fig. 10 shape: under KV saturation, PASCAL's TTFT beats FCFS
 * clearly and RR moderately; short-reasoning requests see the biggest
 * FCFS gap.
 */
TEST(PaperShapes, Fig10PascalTailWins)
{
    auto trace = clusterTrace();
    auto fcfs = ServingSystem(clusterCfg(SchedulerType::Fcfs,
                                         PlacementType::Baseline))
                    .run(trace);
    auto pascal = ServingSystem(clusterCfg(SchedulerType::Pascal,
                                           PlacementType::Pascal))
                      .run(trace);

    ASSERT_EQ(fcfs.numUnfinished, 0u);
    ASSERT_EQ(pascal.numUnfinished, 0u);
    EXPECT_LT(pascal.aggregate.meanTtft, fcfs.aggregate.meanTtft);

    // Short-reasoning requests: FCFS head-of-line blocking shows up
    // in their *tail* TTFT (the Fig. 10 statistic), not the mean.
    std::vector<double> fcfs_short, pascal_short;
    for (const auto& m : fcfs.perRequest) {
        if (m.reasoningTokens < 300)
            fcfs_short.push_back(m.ttft);
    }
    for (const auto& m : pascal.perRequest) {
        if (m.reasoningTokens < 300)
            pascal_short.push_back(m.ttft);
    }
    EXPECT_GT(stats::percentile(fcfs_short, 95.0),
              1.3 * stats::percentile(pascal_short, 95.0));
}

/** Fig. 12 shape: scheduling does not destroy throughput. */
TEST(PaperShapes, Fig12ThroughputParity)
{
    auto trace = clusterTrace();
    double fcfs = ServingSystem(clusterCfg(SchedulerType::Fcfs,
                                           PlacementType::Baseline))
                      .run(trace)
                      .aggregate.throughputTokensPerSec;
    double pascal = ServingSystem(clusterCfg(SchedulerType::Pascal,
                                             PlacementType::Pascal))
                        .run(trace)
                        .aggregate.throughputTokensPerSec;
    EXPECT_GT(pascal, 0.75 * fcfs);
    EXPECT_LT(pascal, 1.35 * fcfs);
}

/**
 * Fig. 15 shape: disabling the adaptive override costs answering SLO
 * compliance and forces far more migrations.
 */
TEST(PaperShapes, Fig15AdaptiveOverrideProtectsSlo)
{
    auto trace = clusterTrace(707);
    auto full = ServingSystem(clusterCfg(SchedulerType::Pascal,
                                         PlacementType::Pascal))
                    .run(trace);
    auto always =
        ServingSystem(clusterCfg(SchedulerType::Pascal,
                                 PlacementType::PascalNonAdaptive))
            .run(trace);

    EXPECT_GE(always.totalMigrations, full.totalMigrations);
    EXPECT_GE(always.aggregate.sloViolationRate,
              full.aggregate.sloViolationRate);
}

/** Sec. V-C shape: KV transfers are negligible against TTFT. */
TEST(PaperShapes, SecVcTransfersNegligible)
{
    auto trace = clusterTrace();
    auto pascal = ServingSystem(clusterCfg(SchedulerType::Pascal,
                                           PlacementType::Pascal))
                      .run(trace);
    ASSERT_GT(pascal.totalMigrations, 0);
    double p99_transfer =
        stats::percentile(pascal.kvTransferLatencies, 99.0);
    EXPECT_LT(p99_transfer, 0.05 * pascal.aggregate.meanTtft);
}

} // namespace
