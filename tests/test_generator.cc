/**
 * @file
 * Unit tests for trace generators: Poisson arrivals, dataset mixing,
 * and the Section III characterization workloads.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/workload/generator.hh"

namespace
{

using namespace pascal;
using namespace pascal::workload;

TEST(Generator, ProducesRequestedCount)
{
    Rng rng(1);
    auto trace = generateTrace(DatasetProfile::alpacaEval(), 100, 5.0,
                               rng);
    EXPECT_EQ(trace.size(), 100u);
    trace.validate();
}

TEST(Generator, PoissonMeanGapMatchesRate)
{
    Rng rng(2);
    double rate = 10.0;
    auto trace = generateTrace(DatasetProfile::alpacaEval(), 5000, rate,
                               rng);
    double span = trace.requests.back().arrival -
                  trace.requests.front().arrival;
    double mean_gap = span / (trace.size() - 1);
    EXPECT_NEAR(mean_gap, 1.0 / rate, 0.01);
}

TEST(Generator, IdsAreSequentialFromFirstId)
{
    Rng rng(3);
    auto trace = generateTrace(DatasetProfile::arenaHard(), 10, 1.0, rng,
                               5.0, 100);
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(trace.requests[i].id, 100 + static_cast<RequestId>(i));
    EXPECT_GT(trace.requests.front().arrival, 5.0);
}

TEST(Generator, DatasetLabelPropagates)
{
    Rng rng(4);
    auto trace = generateTrace(DatasetProfile::gpqa(), 5, 1.0, rng);
    for (const auto& s : trace.requests)
        EXPECT_EQ(s.dataset, "GPQA");
}

TEST(Generator, RejectsBadArgs)
{
    Rng rng(5);
    EXPECT_THROW(
        generateTrace(DatasetProfile::alpacaEval(), -1, 1.0, rng),
        FatalError);
    EXPECT_THROW(
        generateTrace(DatasetProfile::alpacaEval(), 10, 0.0, rng),
        FatalError);
}

TEST(Generator, MixedTraceUsesAllComponents)
{
    Rng rng(6);
    std::vector<MixComponent> mix = {
        {DatasetProfile::arenaHard(), 0.5},
        {DatasetProfile::math500(), 0.5},
    };
    auto trace = generateMixedTrace(mix, 400, 5.0, rng);
    std::set<std::string> seen;
    int arena = 0;
    for (const auto& s : trace.requests) {
        seen.insert(s.dataset);
        arena += s.dataset == "Arena-Hard";
    }
    EXPECT_EQ(seen.size(), 2u);
    // Roughly half Arena-Hard.
    EXPECT_GT(arena, 140);
    EXPECT_LT(arena, 260);
}

TEST(Generator, MixedTraceRejectsEmptyOrZeroWeights)
{
    Rng rng(7);
    EXPECT_THROW(generateMixedTrace({}, 10, 1.0, rng), FatalError);
    std::vector<MixComponent> zero = {
        {DatasetProfile::alpacaEval(), 0.0}};
    EXPECT_THROW(generateMixedTrace(zero, 10, 1.0, rng), FatalError);
}

TEST(Generator, ReasoningCharacterizationShape)
{
    Rng rng(8);
    auto trace = generateReasoningCharacterization(300, 2.0, rng);
    EXPECT_EQ(trace.size(), 300u);
    std::set<TokenCount> lengths;
    for (const auto& s : trace.requests) {
        EXPECT_EQ(s.promptTokens, 128);
        EXPECT_EQ(s.answerTokens, 1);
        EXPECT_FALSE(s.startInAnswering);
        lengths.insert(s.reasoningTokens);
    }
    // All lengths drawn from the paper's five choices.
    for (auto len : lengths) {
        EXPECT_TRUE(len == 128 || len == 256 || len == 512 ||
                    len == 1024 || len == 2048);
    }
    EXPECT_GT(lengths.size(), 3u); // Should see most of the choices.
}

TEST(Generator, AnsweringCharacterizationShape)
{
    Rng rng(9);
    auto trace = generateAnsweringCharacterization(300, 2.0, rng);
    for (const auto& s : trace.requests) {
        EXPECT_EQ(s.promptTokens, 128);
        EXPECT_EQ(s.reasoningTokens, 0);
        EXPECT_TRUE(s.startInAnswering);
        EXPECT_GE(s.answerTokens, 128);
        EXPECT_LE(s.answerTokens, 2048);
    }
}

TEST(Generator, Reproducible)
{
    Rng a(99), b(99);
    auto t1 = generateTrace(DatasetProfile::alpacaEval(), 50, 3.0, a);
    auto t2 = generateTrace(DatasetProfile::alpacaEval(), 50, 3.0, b);
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_DOUBLE_EQ(t1.requests[i].arrival, t2.requests[i].arrival);
        EXPECT_EQ(t1.requests[i].reasoningTokens,
                  t2.requests[i].reasoningTokens);
    }
}

} // namespace
