/**
 * @file
 * Unit tests for ModelConfig and HardwareConfig parameter derivation.
 */

#include <gtest/gtest.h>

#include "src/common/log.hh"
#include "src/model/hardware_config.hh"
#include "src/model/model_config.hh"

namespace
{

using pascal::model::HardwareConfig;
using pascal::model::ModelConfig;

TEST(ModelConfig, DeepseekParamCountIsAbout32B)
{
    auto cfg = ModelConfig::deepseekR1Distill32B();
    cfg.validate();
    double params = static_cast<double>(cfg.numParams());
    EXPECT_GT(params, 30e9);
    EXPECT_LT(params, 36e9);
}

TEST(ModelConfig, KvBytesPerTokenMatchesGqaShape)
{
    auto cfg = ModelConfig::deepseekR1Distill32B();
    // 2 (K,V) * 64 layers * 8 KV heads * 128 head dim * 2 bytes.
    EXPECT_EQ(cfg.kvBytesPerToken(), 2LL * 64 * 8 * 128 * 2);
}

TEST(ModelConfig, WeightBytesAreParamsTimesDtype)
{
    auto cfg = ModelConfig::deepseekR1Distill32B();
    EXPECT_EQ(cfg.weightBytes(), cfg.numParams() * 2);
}

TEST(ModelConfig, Tiny7BIsSmaller)
{
    auto small = ModelConfig::tiny7B();
    auto big = ModelConfig::deepseekR1Distill32B();
    small.validate();
    EXPECT_LT(small.numParams(), big.numParams());
    EXPECT_LT(small.kvBytesPerToken(), big.kvBytesPerToken());
}

TEST(ModelConfig, ValidateRejectsNonsense)
{
    auto cfg = ModelConfig::deepseekR1Distill32B();
    cfg.numLayers = 0;
    EXPECT_THROW(cfg.validate(), pascal::FatalError);

    cfg = ModelConfig::deepseekR1Distill32B();
    cfg.numKvHeads = cfg.numHeads + 1;
    EXPECT_THROW(cfg.validate(), pascal::FatalError);

    cfg = ModelConfig::deepseekR1Distill32B();
    cfg.bytesPerParam = 0;
    EXPECT_THROW(cfg.validate(), pascal::FatalError);
}

TEST(HardwareConfig, H100Preset)
{
    auto hw = HardwareConfig::h100();
    hw.validate();
    EXPECT_EQ(hw.gpuMemoryBytes, pascal::gigabytes(96.0));
    EXPECT_GT(hw.effHbmBandwidth(), 2e12);
    EXPECT_LT(hw.effHbmBandwidth(), hw.hbmBandwidth);
    EXPECT_LT(hw.effFlops(), hw.peakFlops);
    EXPECT_LT(hw.effPcieBandwidth(), hw.pcieBandwidth);
}

TEST(HardwareConfig, FabricBandwidthConversion)
{
    auto hw = HardwareConfig::h100();
    // 100 Gbps * 0.9 efficiency = 11.25 GB/s.
    EXPECT_NEAR(hw.effFabricBandwidth(), 11.25e9, 1e6);
}

TEST(HardwareConfig, ValidateRejectsNonsense)
{
    auto hw = HardwareConfig::h100();
    hw.mfu = 1.5;
    EXPECT_THROW(hw.validate(), pascal::FatalError);

    hw = HardwareConfig::h100();
    hw.gpuMemoryBytes = 0;
    EXPECT_THROW(hw.validate(), pascal::FatalError);

    hw = HardwareConfig::h100();
    hw.iterationOverhead = -1.0;
    EXPECT_THROW(hw.validate(), pascal::FatalError);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(pascal::milliseconds(100.0), 0.1);
    EXPECT_DOUBLE_EQ(pascal::microseconds(100.0), 1e-4);
    EXPECT_EQ(pascal::gigabytes(1.0), 1000000000LL);
    EXPECT_EQ(pascal::mebibytes(1.0), 1048576LL);
    EXPECT_DOUBLE_EQ(pascal::gbpsToBytesPerSec(8.0), 1e9);
}

} // namespace
