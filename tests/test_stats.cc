/**
 * @file
 * Unit tests for summary statistics, percentiles, and the paper's
 * adaptive tail rule (Fig. 10 caption).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/log.hh"
#include "src/common/stats.hh"

namespace
{

using namespace pascal::stats;

TEST(Summary, EmptyDefaults)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, MeanMinMax)
{
    Summary s;
    for (double x : {3.0, 1.0, 4.0, 1.0, 5.0})
        s.add(x);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.8);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.sum(), 14.0);
}

TEST(Summary, WelfordMatchesDirectVariance)
{
    Summary s;
    std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (double x : xs)
        s.add(x);
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(Percentile, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, SingleValue)
{
    EXPECT_DOUBLE_EQ(percentile({42.0}, 0.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile({42.0}, 100.0), 42.0);
}

TEST(Percentile, InterpolatesLinearly)
{
    std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 17.5);
}

TEST(Percentile, UnsortedInputHandled)
{
    std::vector<double> xs{40.0, 10.0, 30.0, 20.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Percentile, OutOfRangeIsFatal)
{
    EXPECT_THROW(percentile({1.0}, -1.0), pascal::FatalError);
    EXPECT_THROW(percentile({1.0}, 101.0), pascal::FatalError);
}

TEST(Percentile, SortedFlavourMatchesSelectionFlavour)
{
    // percentileOfSorted must return bit-identical values to
    // percentile() for every quantile: aggregateMetrics sorts once
    // and reads all its quantiles from the shared order.
    std::vector<double> xs;
    std::uint64_t state = 88172645463325252ull;
    for (int i = 0; i < 257; ++i) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        xs.push_back(static_cast<double>(state % 100003) / 97.0);
    }
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    for (double p : {0.0, 1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, p),
                         percentile(xs, p));
}

TEST(Percentile, SortedFlavourEdgeCases)
{
    EXPECT_DOUBLE_EQ(percentileOfSorted({}, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(percentileOfSorted({42.0}, 99.0), 42.0);
    EXPECT_THROW(percentileOfSorted({1.0, 2.0}, 101.0),
                 pascal::FatalError);
}

TEST(AdaptiveTail, OmitsTinyBins)
{
    EXPECT_FALSE(adaptiveTail({1, 2, 3, 4}).has_value());
    EXPECT_EQ(adaptiveTailName(4), "omitted");
}

TEST(AdaptiveTail, MaxBelowTen)
{
    std::vector<double> xs{1, 2, 3, 4, 9};
    auto tail = adaptiveTail(xs);
    ASSERT_TRUE(tail.has_value());
    EXPECT_DOUBLE_EQ(*tail, 9.0);
    EXPECT_EQ(adaptiveTailName(xs.size()), "max");
}

TEST(AdaptiveTail, P90BelowTwenty)
{
    std::vector<double> xs;
    for (int i = 1; i <= 15; ++i)
        xs.push_back(i);
    auto tail = adaptiveTail(xs);
    ASSERT_TRUE(tail.has_value());
    EXPECT_DOUBLE_EQ(*tail, percentile(xs, 90.0));
    EXPECT_EQ(adaptiveTailName(xs.size()), "P90");
}

TEST(AdaptiveTail, P95BelowHundred)
{
    std::vector<double> xs;
    for (int i = 1; i <= 50; ++i)
        xs.push_back(i);
    EXPECT_DOUBLE_EQ(*adaptiveTail(xs), percentile(xs, 95.0));
    EXPECT_EQ(adaptiveTailName(xs.size()), "P95");
}

TEST(AdaptiveTail, P99Otherwise)
{
    std::vector<double> xs;
    for (int i = 1; i <= 500; ++i)
        xs.push_back(i);
    EXPECT_DOUBLE_EQ(*adaptiveTail(xs), percentile(xs, 99.0));
    EXPECT_EQ(adaptiveTailName(xs.size()), "P99");
}

TEST(BinnedTail, GroupsByKeyWidth)
{
    BinnedTail bt(256.0);
    for (int i = 0; i < 6; ++i)
        bt.add(100.0, 1.0 * i); // Bin [0,256).
    for (int i = 0; i < 6; ++i)
        bt.add(300.0, 10.0 * i); // Bin [256,512).

    auto bins = bt.reduce();
    ASSERT_EQ(bins.size(), 2u);
    EXPECT_DOUBLE_EQ(bins[0].lo, 0.0);
    EXPECT_DOUBLE_EQ(bins[0].hi, 256.0);
    EXPECT_EQ(bins[0].count, 6u);
    EXPECT_DOUBLE_EQ(bins[1].lo, 256.0);
    ASSERT_TRUE(bins[0].tail.has_value());
    EXPECT_DOUBLE_EQ(*bins[0].tail, 5.0);  // max (n < 10)
    EXPECT_DOUBLE_EQ(*bins[1].tail, 50.0); // max (n < 10)
}

TEST(BinnedTail, SmallBinsOmitted)
{
    BinnedTail bt(256.0);
    bt.add(10.0, 1.0);
    bt.add(10.0, 2.0);
    auto bins = bt.reduce();
    ASSERT_EQ(bins.size(), 1u);
    EXPECT_FALSE(bins[0].tail.has_value());
    EXPECT_EQ(bins[0].statName, "omitted");
}

TEST(BinnedTail, BinValuesLookup)
{
    BinnedTail bt(100.0);
    bt.add(50.0, 7.0);
    EXPECT_EQ(bt.binValues(99.0).size(), 1u);
    EXPECT_EQ(bt.binValues(150.0).size(), 0u);
}

TEST(BinnedTail, RejectsNonPositiveWidth)
{
    EXPECT_THROW(BinnedTail(0.0), pascal::FatalError);
}

} // namespace
