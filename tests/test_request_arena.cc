/**
 * @file
 * RequestArena chunk-recycling tests: a long-lived cluster fed many
 * traces must keep resident Request memory bounded by live requests,
 * recycle fully-finished chunks, and still score byte-identical
 * results.
 */

#include <gtest/gtest.h>

#include "src/cluster/run_context.hh"
#include "src/cluster/system_config.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/workload/generator.hh"
#include "src/workload/request_arena.hh"
#include "tests/run_result_util.hh"

namespace
{

using namespace pascal;
using cluster::SystemConfig;

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

using RequestArenaRecycling = QuietLogs;

workload::Trace
smallTrace(std::uint64_t seed, int n, RequestId first_id)
{
    Rng rng(seed);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.prompt = {48.0, 0.4, 16, 96};
    profile.reasoning = {20.0, 0.5, 8, 48};
    profile.answering = {12.0, 0.4, 4, 32};
    return workload::generateTrace(profile, n, 500.0, rng, 0.0,
                                   first_id);
}

TEST(RequestArenaUnit, RecycleFreesChunkAndCounts)
{
    workload::RequestArena arena;
    auto t0 = smallTrace(1, 20, 0);
    auto t1 = smallTrace(2, 30, 1000);
    arena.addChunk(t0);
    arena.addChunk(t1);
    EXPECT_EQ(arena.numChunks(), 2u);
    EXPECT_EQ(arena.size(), 50u);
    EXPECT_EQ(arena.numRecycledChunks(), 0u);

    arena.recycleChunk(0);
    EXPECT_EQ(arena.numRecycledChunks(), 1u);
    EXPECT_TRUE(arena.chunk(0).empty());
    EXPECT_EQ(arena.chunk(0).capacity(), 0u) << "storage not freed";
    EXPECT_EQ(arena.chunk(1).size(), 30u);
    // Totals keep counting recycled requests; idempotent recycle.
    EXPECT_EQ(arena.size(), 50u);
    arena.recycleChunk(0);
    EXPECT_EQ(arena.numRecycledChunks(), 1u);

    // Recycled chunks contribute nothing to iteration.
    std::size_t seen = 0;
    arena.forEach([&](const workload::Request&) { ++seen; });
    EXPECT_EQ(seen, 30u);
}

TEST_F(RequestArenaRecycling, LongLivedClusterRecyclesFinishedChunks)
{
    // Several traces into ONE cluster: every chunk whose requests all
    // finish is scored and its storage released, so resident Request
    // memory stays bounded by live requests (the per-token emission
    // vectors are the bulk of it).
    SystemConfig cfg = SystemConfig::pascal(2);
    cfg.gpuKvCapacityTokens = 16384;

    cluster::RunContext ctx(cfg);
    ctx.cluster().enableChunkRecycling();
    // Stagger the traces so early chunks drain (and recycle) while
    // later ones are still arriving.
    for (int t = 0; t < 4; ++t) {
        auto trace = smallTrace(10 + static_cast<std::uint64_t>(t), 80,
                                t * 1000);
        for (auto& spec : trace.requests)
            spec.arrival += 2.0 * t;
        ctx.submit(trace);
    }
    ctx.run();
    auto recycled = ctx.result();
    EXPECT_EQ(recycled.numUnfinished, 0u);
    EXPECT_EQ(ctx.cluster().numRecycledChunks(), 4u);

    // Byte-identical scoring vs the non-recycling run (same rows,
    // same order — the retired chunks were scored at completion).
    cluster::RunContext plain(cfg);
    for (int t = 0; t < 4; ++t) {
        auto trace = smallTrace(10 + static_cast<std::uint64_t>(t), 80,
                                t * 1000);
        for (auto& spec : trace.requests)
            spec.arrival += 2.0 * t;
        plain.submit(trace);
    }
    plain.run();
    EXPECT_EQ(plain.cluster().numRecycledChunks(), 0u);
    test::expectIdentical(recycled, plain.result());
}

TEST_F(RequestArenaRecycling, HorizonCutChunksAreNotRecycled)
{
    // A chunk with unfinished requests must survive (its requests are
    // still scored as unfinished rows at collection).
    SystemConfig cfg = SystemConfig::pascal(1);
    cfg.gpuKvCapacityTokens = 8192;
    cfg.maxSimTime = 0.5; // Guillotine mid-flight.

    cluster::RunContext ctx(cfg);
    ctx.cluster().enableChunkRecycling();
    ctx.submit(smallTrace(77, 120, 0));
    ctx.run();
    auto result = ctx.result();
    EXPECT_GT(result.numUnfinished, 0u);
    EXPECT_EQ(ctx.cluster().numRecycledChunks(), 0u);
    EXPECT_EQ(result.perRequest.size(), 120u);
}

} // namespace
