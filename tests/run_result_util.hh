/**
 * @file
 * Shared byte-identical RunResult comparison for determinism and
 * invariance tests: every scalar compared exactly (no tolerance),
 * every vector element-wise. Any divergence between two runs of the
 * same {config, trace} — across threads, across run chunking, or
 * across the incremental/force-resort scheduler modes — is a bug.
 */

#ifndef PASCAL_TESTS_RUN_RESULT_UTIL_HH
#define PASCAL_TESTS_RUN_RESULT_UTIL_HH

#include <gtest/gtest.h>

#include <cstddef>

#include "src/cluster/serving_system.hh"

namespace pascal
{
namespace test
{

inline void
expectIdenticalBuckets(const workload::PhaseBuckets& a,
                       const workload::PhaseBuckets& b)
{
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.blocked, b.blocked);
    EXPECT_EQ(a.preempted, b.preempted);
}

inline void
expectIdentical(const cluster::RunResult& a, const cluster::RunResult& b)
{
    ASSERT_EQ(a.perRequest.size(), b.perRequest.size());
    for (std::size_t i = 0; i < a.perRequest.size(); ++i) {
        const auto& ra = a.perRequest[i];
        const auto& rb = b.perRequest[i];
        ASSERT_EQ(ra.id, rb.id);
        EXPECT_EQ(ra.dataset, rb.dataset);
        EXPECT_EQ(ra.arrival, rb.arrival);
        EXPECT_EQ(ra.finished, rb.finished);
        EXPECT_EQ(ra.failed, rb.failed);
        EXPECT_EQ(ra.failReason, rb.failReason);
        EXPECT_EQ(ra.sloClass, rb.sloClass);
        EXPECT_EQ(ra.deadlineExpired, rb.deadlineExpired);
        EXPECT_EQ(ra.bestEffort, rb.bestEffort);
        EXPECT_EQ(ra.ttft, rb.ttft);
        EXPECT_EQ(ra.ttfat, rb.ttfat);
        EXPECT_EQ(ra.reasoningLatency, rb.reasoningLatency);
        EXPECT_EQ(ra.e2eLatency, rb.e2eLatency);
        EXPECT_EQ(ra.answeringLatency, rb.answeringLatency);
        EXPECT_EQ(ra.blockingLatency, rb.blockingLatency);
        EXPECT_EQ(ra.queueingDelay, rb.queueingDelay);
        EXPECT_EQ(ra.meanTpot, rb.meanTpot);
        EXPECT_EQ(ra.qoe, rb.qoe);
        EXPECT_EQ(ra.sloViolated, rb.sloViolated);
        EXPECT_EQ(ra.migrationCount, rb.migrationCount);
        EXPECT_EQ(ra.kvTransferLatencies, rb.kvTransferLatencies);
        // Phase-time buckets must match to the bit: the lazy-accrual
        // and force-accrue modes share settlement arithmetic, so any
        // divergence is a stale stamp.
        expectIdenticalBuckets(ra.reasoningBuckets, rb.reasoningBuckets);
        expectIdenticalBuckets(ra.answeringBuckets, rb.answeringBuckets);
    }
    EXPECT_EQ(a.aggregate.numRequests, b.aggregate.numRequests);
    EXPECT_EQ(a.aggregate.numFinished, b.aggregate.numFinished);
    EXPECT_EQ(a.aggregate.makespan, b.aggregate.makespan);
    EXPECT_EQ(a.aggregate.throughputTokensPerSec,
              b.aggregate.throughputTokensPerSec);
    EXPECT_EQ(a.aggregate.meanTtft, b.aggregate.meanTtft);
    EXPECT_EQ(a.aggregate.p50Ttft, b.aggregate.p50Ttft);
    EXPECT_EQ(a.aggregate.p99Ttft, b.aggregate.p99Ttft);
    EXPECT_EQ(a.aggregate.maxTtft, b.aggregate.maxTtft);
    EXPECT_EQ(a.aggregate.meanQoe, b.aggregate.meanQoe);
    EXPECT_EQ(a.aggregate.sloViolationRate,
              b.aggregate.sloViolationRate);
    EXPECT_EQ(a.aggregate.meanE2eLatency, b.aggregate.meanE2eLatency);
    EXPECT_EQ(a.aggregate.p50E2eLatency, b.aggregate.p50E2eLatency);
    EXPECT_EQ(a.aggregate.p99E2eLatency, b.aggregate.p99E2eLatency);
    EXPECT_EQ(a.aggregate.meanAnsweringLatency,
              b.aggregate.meanAnsweringLatency);
    EXPECT_EQ(a.aggregate.p99BlockingLatency,
              b.aggregate.p99BlockingLatency);
    EXPECT_EQ(a.aggregate.p99KvTransferLatency,
              b.aggregate.p99KvTransferLatency);
    EXPECT_EQ(a.aggregate.totalMigrations,
              b.aggregate.totalMigrations);
    EXPECT_EQ(a.peakGpuKvTokens, b.peakGpuKvTokens);
    EXPECT_EQ(a.kvCapacityTokens, b.kvCapacityTokens);
    EXPECT_EQ(a.totalIterations, b.totalIterations);
    EXPECT_EQ(a.numUnfinished, b.numUnfinished);
    EXPECT_EQ(a.totalMigrations, b.totalMigrations);
    EXPECT_EQ(a.numCrashes, b.numCrashes);
    EXPECT_EQ(a.numRetries, b.numRetries);
    EXPECT_EQ(a.numShed, b.numShed);
    EXPECT_EQ(a.numTerminalFailures, b.numTerminalFailures);
    EXPECT_EQ(a.goodputFraction, b.goodputFraction);
    for (std::size_t c = 0; c < workload::kNumSloClasses; ++c) {
        const auto& ca = a.perClass[c];
        const auto& cb = b.perClass[c];
        EXPECT_EQ(ca.submitted, cb.submitted);
        EXPECT_EQ(ca.completed, cb.completed);
        EXPECT_EQ(ca.shed, cb.shed);
        EXPECT_EQ(ca.deadlineFailed, cb.deadlineFailed);
        EXPECT_EQ(ca.retryFailed, cb.retryFailed);
        EXPECT_EQ(ca.demoted, cb.demoted);
        EXPECT_EQ(ca.goodputFraction, cb.goodputFraction);
        EXPECT_EQ(a.classAggregates[c].numRequests,
                  b.classAggregates[c].numRequests);
        EXPECT_EQ(a.classAggregates[c].numFinished,
                  b.classAggregates[c].numFinished);
        EXPECT_EQ(a.classAggregates[c].meanTtft,
                  b.classAggregates[c].meanTtft);
        EXPECT_EQ(a.classAggregates[c].p99Ttft,
                  b.classAggregates[c].p99Ttft);
        EXPECT_EQ(a.classAggregates[c].meanQoe,
                  b.classAggregates[c].meanQoe);
    }
    EXPECT_EQ(a.kvTransferLatencies, b.kvTransferLatencies);
    EXPECT_EQ(a.schedulerName, b.schedulerName);
    EXPECT_EQ(a.placementName, b.placementName);
    EXPECT_EQ(a.predictorName, b.predictorName);
}

} // namespace test
} // namespace pascal

#endif // PASCAL_TESTS_RUN_RESULT_UTIL_HH
