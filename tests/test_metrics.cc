/**
 * @file
 * Unit tests for per-request metric extraction and aggregation.
 */

#include <gtest/gtest.h>

#include "src/qoe/metrics.hh"

namespace
{

using namespace pascal;
using qoe::aggregateMetrics;
using qoe::computeRequestMetrics;
using qoe::RequestMetrics;
using qoe::SloConfig;
using workload::Request;
using workload::RequestSpec;

Request
runPacedRequest(Time arrival, TokenCount reasoning, TokenCount answer,
                Time step)
{
    RequestSpec s;
    s.id = 1;
    s.arrival = arrival;
    s.promptTokens = 64;
    s.reasoningTokens = reasoning;
    s.answerTokens = answer;
    Request r(s);
    Time t = arrival + 0.5; // Prefill finishes 0.5 s after arrival.
    r.completePrefill(t, 0);
    for (TokenCount i = 1; i < reasoning + answer; ++i) {
        t += step;
        r.emitToken(t, 0);
    }
    return r;
}

TEST(Metrics, TimestampsMapToPaperDefinitions)
{
    // 4 reasoning + 3 answering tokens, 0.1 s/step, prefill at +0.5.
    Request r = runPacedRequest(10.0, 4, 3, 0.1);
    SloConfig slo;
    auto m = computeRequestMetrics(r, slo);

    ASSERT_TRUE(m.finished);
    // Reasoning ends at 10.5 + 3*0.1 = 10.8; first answer at 10.9.
    EXPECT_NEAR(m.reasoningLatency, 0.8, 1e-9);
    EXPECT_NEAR(m.ttft, 0.9, 1e-9);
    EXPECT_NEAR(m.ttfat, 0.1, 1e-9);
    // Finish at 11.1.
    EXPECT_NEAR(m.e2eLatency, 1.1, 1e-9);
    EXPECT_NEAR(m.answeringLatency, 0.3, 1e-9);
    EXPECT_NEAR(m.meanTpot, 0.1, 1e-9);
}

TEST(Metrics, PacedRequestMeetsSlo)
{
    Request r = runPacedRequest(0.0, 4, 50, 0.05); // Faster than pace.
    SloConfig slo;
    auto m = computeRequestMetrics(r, slo);
    EXPECT_DOUBLE_EQ(m.qoe, 1.0);
    EXPECT_FALSE(m.sloViolated);
}

TEST(Metrics, SlowGenerationViolatesSlo)
{
    Request r = runPacedRequest(0.0, 4, 50, 0.5); // 5x slower.
    SloConfig slo;
    auto m = computeRequestMetrics(r, slo);
    EXPECT_LT(m.qoe, 0.95);
    EXPECT_TRUE(m.sloViolated);
}

TEST(Metrics, Fig5ModeChargesLateFirstToken)
{
    // startInAnswering request whose first token arrives 5 s after
    // the reasoning end: fine in main-eval mode, violation in the
    // characterization (TTFAT-anchored) mode.
    RequestSpec s;
    s.id = 2;
    s.arrival = 0.0;
    s.promptTokens = 128;
    s.reasoningTokens = 0;
    s.answerTokens = 20;
    s.startInAnswering = true;
    Request r(s);
    Time t = 5.0;
    for (TokenCount i = 0; i < s.answerTokens; ++i) {
        r.emitToken(t, 0);
        t += 0.05;
    }

    SloConfig main_eval;
    main_eval.qoeFromFirstToken = true;
    EXPECT_FALSE(computeRequestMetrics(r, main_eval).sloViolated);

    SloConfig characterization;
    characterization.qoeFromFirstToken = false;
    auto m = computeRequestMetrics(r, characterization);
    EXPECT_TRUE(m.sloViolated);
    EXPECT_LT(m.qoe, 0.95);
}

TEST(Metrics, UnfinishedRequestMarked)
{
    RequestSpec s;
    s.id = 3;
    s.arrival = 0.0;
    s.promptTokens = 64;
    s.reasoningTokens = 10;
    s.answerTokens = 10;
    Request r(s);
    r.completePrefill(1.0, 0);
    auto m = computeRequestMetrics(r, SloConfig{});
    EXPECT_FALSE(m.finished);
    EXPECT_DOUBLE_EQ(m.e2eLatency, 0.0);
}

TEST(Metrics, AggregateRollsUp)
{
    SloConfig slo;
    std::vector<RequestMetrics> ms;
    ms.push_back(
        computeRequestMetrics(runPacedRequest(0.0, 4, 20, 0.05), slo));
    ms.push_back(
        computeRequestMetrics(runPacedRequest(1.0, 4, 20, 0.5), slo));

    auto agg = aggregateMetrics(ms);
    EXPECT_EQ(agg.numRequests, 2u);
    EXPECT_EQ(agg.numFinished, 2u);
    EXPECT_NEAR(agg.sloViolationRate, 0.5, 1e-9);
    EXPECT_GT(agg.makespan, 0.0);
    EXPECT_GT(agg.throughputTokensPerSec, 0.0);
    EXPECT_GT(agg.p99Ttft, agg.p50Ttft - 1e-12);
    EXPECT_GT(agg.meanQoe, 0.0);
}

TEST(Metrics, AggregateEmptyIsZeroed)
{
    auto agg = aggregateMetrics({});
    EXPECT_EQ(agg.numRequests, 0u);
    EXPECT_DOUBLE_EQ(agg.throughputTokensPerSec, 0.0);
}

TEST(Metrics, AggregateSkipsUnfinished)
{
    SloConfig slo;
    RequestSpec s;
    s.id = 9;
    s.arrival = 0.0;
    s.promptTokens = 64;
    s.reasoningTokens = 10;
    s.answerTokens = 10;
    Request r(s);
    std::vector<RequestMetrics> ms{computeRequestMetrics(r, slo)};
    auto agg = aggregateMetrics(ms);
    EXPECT_EQ(agg.numRequests, 1u);
    EXPECT_EQ(agg.numFinished, 0u);
}

} // namespace
