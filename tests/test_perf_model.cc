/**
 * @file
 * Unit tests for the analytic performance model: monotonicity,
 * calibration targets the paper cites, and capacity derivation.
 */

#include <gtest/gtest.h>

#include "src/common/log.hh"
#include "src/model/perf_model.hh"

namespace
{

using pascal::model::HardwareConfig;
using pascal::model::ModelConfig;
using pascal::model::PerfModel;

PerfModel
makeModel()
{
    return PerfModel(ModelConfig::deepseekR1Distill32B(),
                     HardwareConfig::h100());
}

TEST(PerfModel, DecodeNearPaperCitedPerTokenLatency)
{
    auto pm = makeModel();
    // The paper cites ~30 ms per decode step as an aggressive speed;
    // a modest batch should land in the 20-80 ms band.
    double t = pm.decodeStepLatency(8, 8 * 1024);
    EXPECT_GT(t, 0.020);
    EXPECT_LT(t, 0.080);
}

TEST(PerfModel, FabricTransferMatchesPaperCitation)
{
    auto pm = makeModel();
    // Patel et al. report ~40 ms to move a 2048-token KV; our 32B GQA
    // KV (0.25 MiB/token) over 100 Gbps lands in the same regime.
    double t = pm.fabricTransferLatency(pm.kvBytes(2048));
    EXPECT_GT(t, 0.020);
    EXPECT_LT(t, 0.080);
}

TEST(PerfModel, PrefillGrowsWithPromptLength)
{
    auto pm = makeModel();
    double t128 = pm.prefillLatency(128);
    double t4096 = pm.prefillLatency(4096);
    EXPECT_GT(t4096, t128);
    EXPECT_GT(t128, 0.0);
    EXPECT_DOUBLE_EQ(pm.prefillLatency(0), 0.0);
}

TEST(PerfModel, PrefillMemoryBoundForShortPrompts)
{
    auto pm = makeModel();
    // Short prompts cannot beat one pass over the weights.
    double weight_pass =
        static_cast<double>(
            ModelConfig::deepseekR1Distill32B().weightBytes()) /
        HardwareConfig::h100().effHbmBandwidth();
    EXPECT_GE(pm.prefillLatency(16), weight_pass);
}

TEST(PerfModel, DecodeMonotonicInBatchAndKv)
{
    auto pm = makeModel();
    EXPECT_LT(pm.decodeStepLatency(1, 1024),
              pm.decodeStepLatency(64, 1024));
    EXPECT_LT(pm.decodeStepLatency(8, 1024),
              pm.decodeStepLatency(8, 500000));
}

TEST(PerfModel, DecodeComputeBoundAtHugeBatch)
{
    auto pm = makeModel();
    // Past the roofline knee, doubling the batch nearly doubles
    // latency.
    double t512 = pm.decodeStepLatency(512, 0);
    double t1024 = pm.decodeStepLatency(1024, 0);
    EXPECT_GT(t1024, 1.5 * t512);
}

TEST(PerfModel, KvBytesScaleLinearly)
{
    auto pm = makeModel();
    EXPECT_EQ(pm.kvBytes(10), 10 * pm.kvBytes(1));
    EXPECT_EQ(pm.kvBytes(0), 0);
}

TEST(PerfModel, PcieFasterThanFabric)
{
    auto pm = makeModel();
    auto bytes = pm.kvBytes(2048);
    EXPECT_LT(pm.pcieTransferLatency(bytes),
              pm.fabricTransferLatency(bytes));
}

TEST(PerfModel, CapacityLeavesRoomForWeights)
{
    auto pm = makeModel();
    auto capacity = pm.gpuKvCapacityTokens();
    // 96 GB minus ~65 GB of weights at 0.25 MiB/token, with 10 %
    // reserve: roughly 100k tokens.
    EXPECT_GT(capacity, 60000);
    EXPECT_LT(capacity, 130000);
    // More reserve leaves less KV capacity.
    EXPECT_LT(pm.gpuKvCapacityTokens(0.5), capacity);
}

TEST(PerfModel, RejectsModelLargerThanMemory)
{
    auto model = ModelConfig::deepseekR1Distill32B();
    auto hw = HardwareConfig::h100();
    hw.gpuMemoryBytes = pascal::gigabytes(10.0);
    EXPECT_THROW(PerfModel(model, hw), pascal::FatalError);
}

TEST(PerfModel, IterationOverheadIsFloor)
{
    auto hw = HardwareConfig::h100();
    auto pm = PerfModel(ModelConfig::deepseekR1Distill32B(), hw);
    EXPECT_GE(pm.decodeStepLatency(1, 0), hw.iterationOverhead);
}

TEST(PerfModel, MixedStepDegeneratesToPureModes)
{
    auto pm = makeModel();
    EXPECT_DOUBLE_EQ(pm.mixedStepLatency(0, 8, 4096),
                     pm.decodeStepLatency(8, 4096));
    EXPECT_DOUBLE_EQ(pm.mixedStepLatency(512, 0, 0),
                     pm.prefillLatency(512));
    EXPECT_DOUBLE_EQ(pm.mixedStepLatency(0, 0, 0), 0.0);
}

TEST(PerfModel, MixedStepCostsAtLeastEachComponentFloor)
{
    auto pm = makeModel();
    double mixed = pm.mixedStepLatency(2048, 32, 65536);
    // Adding prefill work cannot be cheaper than the decode step
    // alone, and a large prefill makes the mixed step compute-bound.
    EXPECT_GE(mixed, pm.decodeStepLatency(32, 65536) - 1e-12);
    EXPECT_GT(pm.mixedStepLatency(20000, 32, 65536), mixed);
}

TEST(PerfModel, MixedStepSharesWeightTraffic)
{
    auto pm = makeModel();
    // One mixed iteration is cheaper than a prefill iteration plus a
    // decode iteration (the weight read is paid once).
    double mixed = pm.mixedStepLatency(256, 16, 16384);
    double separate =
        pm.prefillLatency(256) + pm.decodeStepLatency(16, 16384);
    EXPECT_LT(mixed, separate);
}

} // namespace
