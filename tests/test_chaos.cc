/**
 * @file
 * Chaos harness: seeded fault schedules replayed across the
 * scheduler x predictor grid, auditing the fault layer's invariants.
 *
 * Under aggressive crash / decommission / straggler / link-failure
 * rates every run must still satisfy:
 *   - accounting totality: every request either finished or carries a
 *     terminal FailReason, and numUnfinished == numTerminalFailures;
 *   - no leaked KV: every instance's pool tracks zero requests and
 *     zero GPU tokens once the event queue drains;
 *   - determinism: a same-seed replay is byte-identical, including
 *     the phase-time buckets and failure accounting;
 *   - dormancy: enabling the fault layer with every rate at zero is
 *     byte-identical to cfg.fault.enabled = false (the pre-fault
 *     code path), across the whole force-mode matrix.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/run_context.hh"
#include "src/cluster/system_config.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/workload/generator.hh"
#include "tests/run_result_util.hh"

namespace
{

using namespace pascal;
using cluster::PlacementType;
using cluster::RunContext;
using cluster::RunResult;
using cluster::SchedulerType;
using cluster::SystemConfig;

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

using Chaos = QuietLogs;
using FaultDormancy = QuietLogs;

/** Bursty arrival-storm trace (same regime as the coalescing tests):
 *  Poisson arrivals quantized onto a coarse tick grid. */
workload::Trace
chaosTrace(std::uint64_t seed, int n = 150, double rate = 300.0,
           double tick = 0.02)
{
    Rng rng(seed);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.prompt = {80.0, 0.5, 32, 192};
    profile.reasoning = {160.0, 0.7, 24, 700};
    profile.answering = {70.0, 0.6, 16, 300};
    auto trace = workload::generateTrace(profile, n, rate, rng);
    for (auto& spec : trace.requests) {
        spec.arrival =
            tick * static_cast<double>(
                       static_cast<std::int64_t>(spec.arrival / tick));
    }
    return trace;
}

/** Tight 3-instance deployment with an aggressive fault schedule:
 *  mean time between lifecycle events per instance ~2.5 s against a
 *  run of tens of seconds, so every fault species fires. */
SystemConfig
chaosConfig(SchedulerType sched, predict::PredictorConfig pred,
            std::uint64_t fault_seed)
{
    SystemConfig cfg;
    cfg.scheduler = sched;
    cfg.placement = pred.type == predict::PredictorType::None
                        ? PlacementType::Pascal
                        : PlacementType::PascalPredictive;
    cfg.predictor = pred;
    cfg.numInstances = 3;
    cfg.gpuKvCapacityTokens = 8192; // Tight: admission backlogs form.
    cfg.kvBlockSizeTokens = 16;
    cfg.limits.demoteThresholdTokens = 700;

    cfg.fault.enabled = true;
    cfg.fault.seed = fault_seed;
    cfg.fault.crashRate = 0.3;
    cfg.fault.mttr = 1.5;
    cfg.fault.decommissionRate = 0.1;
    cfg.fault.drainGrace = 0.8;
    cfg.fault.stragglerRate = 0.2;
    cfg.fault.stragglerFactor = 3.0;
    cfg.fault.stragglerDuration = 1.0;
    cfg.fault.linkFailureProb = 0.2;
    cfg.fault.retryBudget = 4;
    cfg.fault.backoffBase = 0.1;
    cfg.fault.backoffCap = 1.0;
    return cfg;
}

predict::PredictorConfig
predictorNamed(const std::string& kind)
{
    predict::PredictorConfig cfg;
    if (kind == "oracle")
        cfg.type = predict::PredictorType::Oracle;
    else if (kind == "profile")
        cfg.type = predict::PredictorType::Profile;
    return cfg;
}

/** The full invariant audit over one finished chaos run. */
void
auditRun(const RunContext& ctx, const RunResult& result,
         std::size_t num_requests)
{
    // Accounting totality: finished or terminally failed, nothing in
    // between, and the failure taxonomy adds up.
    ASSERT_EQ(result.perRequest.size(), num_requests);
    std::uint64_t failed_rows = 0;
    std::uint64_t shed_rows = 0;
    for (const auto& row : result.perRequest) {
        EXPECT_TRUE(row.finished || row.failed)
            << "request " << row.id << " neither finished nor failed";
        EXPECT_FALSE(row.finished && row.failed)
            << "request " << row.id << " both finished and failed";
        if (row.failed)
            ++failed_rows;
        if (row.failReason == workload::FailReason::Shed)
            ++shed_rows;
    }
    EXPECT_EQ(result.numTerminalFailures, failed_rows);
    EXPECT_EQ(result.numShed, shed_rows);
    EXPECT_EQ(result.numUnfinished,
              static_cast<std::size_t>(result.numTerminalFailures));
    EXPECT_EQ(result.goodputFraction,
              static_cast<double>(result.aggregate.numFinished) /
                  static_cast<double>(num_requests));

    // No leaked KV: once the queue drains, every slot was released
    // (completion, detach-on-crash, or terminal failure).
    for (const auto& inst : ctx.cluster().getInstances()) {
        EXPECT_EQ(inst->pool().numTracked(), 0u)
            << "instance " << inst->id() << " leaked KV slots";
        EXPECT_EQ(inst->pool().gpuUsed(), 0)
            << "instance " << inst->id() << " leaked GPU KV tokens";
    }
}

TEST_F(Chaos, InvariantsAndReplayAcrossSchedulerPredictorGrid)
{
    auto trace = chaosTrace(4242);
    struct GridPoint
    {
        SchedulerType sched;
        std::string predictor;
    };
    std::vector<GridPoint> grid;
    for (SchedulerType sched :
         {SchedulerType::Fcfs, SchedulerType::Rr,
          SchedulerType::Pascal}) {
        for (const char* kind : {"none", "oracle", "profile"})
            grid.push_back({sched, kind});
    }
    for (SchedulerType sched :
         {SchedulerType::Srpt, SchedulerType::PascalSpec}) {
        for (const char* kind : {"oracle", "profile"})
            grid.push_back({sched, kind});
    }

    std::uint64_t total_crashes = 0;
    for (const auto& point : grid) {
        SCOPED_TRACE("scheduler " +
                     std::to_string(static_cast<int>(point.sched)) +
                     " predictor " + point.predictor);
        SystemConfig cfg = chaosConfig(
            point.sched, predictorNamed(point.predictor), 7);

        RunContext ctx(cfg);
        ctx.submit(trace);
        ctx.run();
        auto result = ctx.result();
        auditRun(ctx, result, trace.size());
        total_crashes += result.numCrashes;

        // Same-seed replay: the fault schedule is part of the run's
        // deterministic state, so the rerun is byte-identical.
        auto replay = RunContext::execute(cfg, trace);
        test::expectIdentical(result, replay);
    }
    // The schedule was aggressive enough to actually exercise the
    // failover path somewhere in the grid.
    EXPECT_GT(total_crashes, 0u);
}

TEST_F(Chaos, SeedSweepExercisesEveryFaultSpecies)
{
    // Across a small seed sweep on one grid point, every fault
    // species fires at least once and the invariants hold per run.
    auto trace = chaosTrace(99, 120);
    std::uint64_t crashes = 0, drains = 0, stragglers = 0, retries = 0;
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
        SCOPED_TRACE("fault seed " + std::to_string(seed));
        SystemConfig cfg = chaosConfig(SchedulerType::Pascal,
                                       predictorNamed("none"), seed);
        RunContext ctx(cfg);
        ctx.submit(trace);
        ctx.run();
        auto result = ctx.result();
        auditRun(ctx, result, trace.size());
        crashes += result.numCrashes;
        drains += ctx.cluster().numDrains();
        stragglers += ctx.cluster().numStragglerWindows();
        retries += result.numRetries;
    }
    EXPECT_GT(crashes, 0u);
    EXPECT_GT(drains, 0u);
    EXPECT_GT(stragglers, 0u);
    EXPECT_GT(retries, 0u);
}

TEST_F(Chaos, PreserveCpuKvRunsCleanly)
{
    // The preserve-CPU-KV recovery knob changes which requests a
    // crash orphans (CPU-offloaded ones ride it out on the host DRAM)
    // but none of the invariants.
    auto trace = chaosTrace(17, 120);
    SystemConfig cfg = chaosConfig(SchedulerType::Pascal,
                                   predictorNamed("oracle"), 11);
    cfg.fault.preserveCpuKv = true;
    RunContext ctx(cfg);
    ctx.submit(trace);
    ctx.run();
    auto result = ctx.result();
    auditRun(ctx, result, trace.size());
    auto replay = RunContext::execute(cfg, trace);
    test::expectIdentical(result, replay);
}

TEST_F(Chaos, ShedFloorRejectsArrivalsWhileCapacityIsDown)
{
    // With a shed floor above 2/3 on a 3-instance fleet, any arrival
    // landing while even one instance is down or draining is shed —
    // and accounted as a terminal failure with FailReason::Shed.
    auto trace = chaosTrace(58, 200, 120.0);
    SystemConfig cfg = chaosConfig(SchedulerType::Pascal,
                                   predictorNamed("none"), 23);
    cfg.fault.shedFloor = 0.9;
    RunContext ctx(cfg);
    ctx.submit(trace);
    ctx.run();
    auto result = ctx.result();
    auditRun(ctx, result, trace.size());
    if (result.numCrashes > 0) {
        EXPECT_GT(result.numShed, 0u);
    }
    EXPECT_LE(result.numShed, result.numTerminalFailures);
}

TEST_F(Chaos, ForceModeMatrixByteIdenticalUnderFaults)
{
    // {FORCE_KICK} x {FORCE_VIEW} x {FORCE_RESORT} x {FORCE_ACCRUE} x
    // {FORCE_REPAIR} with the fault schedule live: the failover path
    // (crash detach, backoff re-placement, KV restore, link-failure
    // aborts) must be invisible to every debug recompute mode, so all
    // 32 corners agree byte-for-byte.
    auto trace = chaosTrace(313, 100);
    SystemConfig base = chaosConfig(SchedulerType::Pascal,
                                    predictorNamed("oracle"), 3);

    std::vector<RunResult> results;
    for (int mask = 0; mask < 32; ++mask) {
        SystemConfig cfg = base;
        cfg.limits.forcePerArrivalKick = (mask & 1) != 0;
        cfg.forceViewRebuild = (mask & 2) != 0;
        cfg.limits.forceResort = (mask & 4) != 0;
        cfg.limits.forceAccrue = (mask & 8) != 0;
        cfg.limits.forcePlanRepair = (mask & 16) != 0;
        results.push_back(RunContext::execute(cfg, trace));
    }
    EXPECT_GT(results[0].numCrashes, 0u);
    for (std::size_t i = 1; i < results.size(); ++i) {
        SCOPED_TRACE("mode mask " + std::to_string(i));
        test::expectIdentical(results[0], results[i]);
    }
}

TEST_F(FaultDormancy, ZeroRatesByteIdenticalToDisabled)
{
    // cfg.fault.enabled with every rate and probability at zero keeps
    // the injector alive (so scripted tests can drive faults) but
    // must not perturb a single bit of the simulation relative to the
    // pre-fault code path (enabled = false).
    auto trace = chaosTrace(777, 180);
    struct GridPoint
    {
        SchedulerType sched;
        std::string predictor;
    };
    for (const auto& point :
         {GridPoint{SchedulerType::Fcfs, "none"},
          GridPoint{SchedulerType::Pascal, "none"},
          GridPoint{SchedulerType::Pascal, "oracle"},
          GridPoint{SchedulerType::PascalSpec, "profile"}}) {
        SCOPED_TRACE("scheduler " +
                     std::to_string(static_cast<int>(point.sched)) +
                     " predictor " + point.predictor);
        SystemConfig cfg = chaosConfig(
            point.sched, predictorNamed(point.predictor), 1);
        cfg.fault = fault::FaultConfig{};
        cfg.fault.enabled = false;
        auto off = cluster::RunContext::execute(cfg, trace);
        EXPECT_EQ(off.numCrashes, 0u);
        EXPECT_EQ(off.numTerminalFailures, 0u);
        EXPECT_EQ(off.goodputFraction, 1.0);

        cfg.fault.enabled = true; // All rates stay at their zeros.
        cfg.fault.crashRate = 0.0;
        cfg.fault.decommissionRate = 0.0;
        cfg.fault.stragglerRate = 0.0;
        cfg.fault.linkFailureProb = 0.0;
        auto dormant = cluster::RunContext::execute(cfg, trace);
        test::expectIdentical(off, dormant);
    }
}

} // namespace
