/**
 * @file
 * Multi-tenant SLO-class subsystem tests (ROADMAP item 4).
 *
 * Three families:
 *  - Dormancy: with cfg.sloClasses.enabled == false, class-annotated
 *    traces and fully-parameterized (but disabled) class configs are
 *    byte-invisible — runs match a classless run across the whole
 *    force-mode matrix, under the chaos fault schedule.
 *  - Behavior: with classes on, Interactive is scheduled ahead of
 *    Batch, deadlines terminally fail (or demote) expired work with
 *    the KV reclaimed, admission sheds infeasible arrivals, and the
 *    per-class outcome counters satisfy totality.
 *  - GoodputSemantics: pins RunResult::goodputFraction's denominator
 *    semantics (shed and terminally-failed requests stay in the
 *    denominator; only fully-completed requests — including demoted
 *    best-effort ones — count in the numerator). Referenced by the
 *    doc comment in src/cluster/serving_system.hh.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/run_context.hh"
#include "src/cluster/system_config.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/qoe/metrics.hh"
#include "src/workload/generator.hh"
#include "tests/run_result_util.hh"

namespace
{

using namespace pascal;
using cluster::PlacementType;
using cluster::RunContext;
using cluster::RunResult;
using cluster::SchedulerType;
using cluster::SystemConfig;
using workload::SloClass;

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

using ClassDormancy = QuietLogs;
using ClassBehavior = QuietLogs;
using GoodputSemantics = QuietLogs;

/** Bursty arrival-storm trace (the chaos harness's regime). */
workload::Trace
stormTrace(std::uint64_t seed, int n = 120, double rate = 300.0,
           double tick = 0.02)
{
    Rng rng(seed);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.prompt = {80.0, 0.5, 32, 192};
    profile.reasoning = {160.0, 0.7, 24, 700};
    profile.answering = {70.0, 0.6, 16, 300};
    auto trace = workload::generateTrace(profile, n, rate, rng);
    for (auto& spec : trace.requests) {
        spec.arrival =
            tick * static_cast<double>(
                       static_cast<std::int64_t>(spec.arrival / tick));
    }
    return trace;
}

/** Tight fault-free 2-instance deployment: overload forms queues, so
 *  class priority and deadline pressure are observable. */
SystemConfig
tightConfig(SchedulerType sched = SchedulerType::Pascal)
{
    SystemConfig cfg;
    cfg.scheduler = sched;
    cfg.placement = PlacementType::Pascal;
    cfg.numInstances = 2;
    cfg.gpuKvCapacityTokens = 8192;
    cfg.kvBlockSizeTokens = 16;
    cfg.limits.demoteThresholdTokens = 700;
    return cfg;
}

/** The chaos deployment from tests/test_chaos.cc: aggressive fault
 *  schedule on 3 tight instances. */
SystemConfig
chaosConfig(std::uint64_t fault_seed)
{
    SystemConfig cfg = tightConfig();
    cfg.numInstances = 3;
    cfg.fault.enabled = true;
    cfg.fault.seed = fault_seed;
    cfg.fault.crashRate = 0.3;
    cfg.fault.mttr = 1.5;
    cfg.fault.decommissionRate = 0.1;
    cfg.fault.drainGrace = 0.8;
    cfg.fault.stragglerRate = 0.2;
    cfg.fault.stragglerFactor = 3.0;
    cfg.fault.stragglerDuration = 1.0;
    cfg.fault.linkFailureProb = 0.2;
    cfg.fault.retryBudget = 4;
    cfg.fault.backoffBase = 0.1;
    cfg.fault.backoffCap = 1.0;
    return cfg;
}

qoe::SloClassParams&
params(SystemConfig& cfg, SloClass c)
{
    return cfg.sloClasses.classes[workload::sloClassIndex(c)];
}

/** Apply one force-mode matrix corner (same bit layout as the chaos
 *  and coalescing matrices). */
void
applyForceMask(SystemConfig& cfg, int mask)
{
    cfg.limits.forcePerArrivalKick = (mask & 1) != 0;
    cfg.forceViewRebuild = (mask & 2) != 0;
    cfg.limits.forceResort = (mask & 4) != 0;
    cfg.limits.forceAccrue = (mask & 8) != 0;
    cfg.limits.forcePlanRepair = (mask & 16) != 0;
}

/** Strip class-derived annotations so an annotated-trace run can be
 *  byte-compared against a classless run of the same workload: the
 *  spec's class column rides into RequestMetrics rows (and their
 *  per-class rollup) even when the subsystem is dormant, but must
 *  influence nothing else. */
RunResult
stripClassAnnotations(RunResult r)
{
    for (auto& row : r.perRequest)
        row.sloClass = SloClass::Standard;
    r.classAggregates = r.perRequest.empty()
                            ? decltype(r.classAggregates){}
                            : qoe::aggregateByClass(r.perRequest);
    return r;
}

/** Per-class totality audit: counters reconcile with the per-request
 *  rows and with the run-level failure accounting. */
void
auditClassTotality(const RunResult& result)
{
    std::uint64_t submitted = 0, completed = 0, shed = 0;
    std::uint64_t deadline_failed = 0, retry_failed = 0;
    std::array<std::uint64_t, workload::kNumSloClasses> row_count{};
    std::array<std::uint64_t, workload::kNumSloClasses> row_done{};
    std::array<std::uint64_t, workload::kNumSloClasses> row_shed{};
    std::array<std::uint64_t, workload::kNumSloClasses> row_ddl{};
    std::array<std::uint64_t, workload::kNumSloClasses> row_retry{};
    for (const auto& row : result.perRequest) {
        auto ci = workload::sloClassIndex(row.sloClass);
        ++row_count[ci];
        if (row.finished)
            ++row_done[ci];
        if (row.failReason == workload::FailReason::Shed)
            ++row_shed[ci];
        else if (row.failReason ==
                 workload::FailReason::DeadlineExceeded)
            ++row_ddl[ci];
        else if (row.failed)
            ++row_retry[ci];
    }
    for (std::size_t c = 0; c < workload::kNumSloClasses; ++c) {
        const auto& out = result.perClass[c];
        SCOPED_TRACE("class " + std::to_string(c));
        EXPECT_EQ(out.submitted, row_count[c]);
        EXPECT_EQ(out.completed, row_done[c]);
        EXPECT_EQ(out.shed, row_shed[c]);
        EXPECT_EQ(out.deadlineFailed, row_ddl[c]);
        EXPECT_EQ(out.retryFailed, row_retry[c]);
        // Totality: every submitted request landed in exactly one
        // outcome bucket (the run drained, so nothing is still live).
        EXPECT_EQ(out.submitted, out.completed + out.shed +
                                     out.deadlineFailed +
                                     out.retryFailed);
        EXPECT_EQ(out.goodputFraction,
                  out.submitted == 0
                      ? 1.0
                      : static_cast<double>(out.completed) /
                            static_cast<double>(out.submitted));
        submitted += out.submitted;
        completed += out.completed;
        shed += out.shed;
        deadline_failed += out.deadlineFailed;
        retry_failed += out.retryFailed;
    }
    EXPECT_EQ(submitted, result.perRequest.size());
    EXPECT_EQ(completed, result.aggregate.numFinished);
    EXPECT_EQ(shed, result.numShed);
    EXPECT_EQ(shed + deadline_failed + retry_failed,
              result.numTerminalFailures);
}

/** No leaked KV once the event queue drains. */
void
expectNoKvLeaks(const RunContext& ctx)
{
    for (const auto& inst : ctx.cluster().getInstances()) {
        EXPECT_EQ(inst->pool().numTracked(), 0u)
            << "instance " << inst->id() << " leaked KV slots";
        EXPECT_EQ(inst->pool().gpuUsed(), 0)
            << "instance " << inst->id() << " leaked GPU KV tokens";
    }
}

TEST_F(ClassDormancy, AssignSloClassesIsDeterministicAndNonPerturbing)
{
    auto plain = stormTrace(1234, 400);
    auto annotated = plain;
    workload::assignSloClasses(annotated);
    auto again = plain;
    workload::assignSloClasses(again);

    ASSERT_EQ(annotated.size(), plain.size());
    std::array<int, workload::kNumSloClasses> histogram{};
    for (std::size_t i = 0; i < plain.size(); ++i) {
        const auto& p = plain.requests[i];
        const auto& a = annotated.requests[i];
        // Annotation touches ONLY the class column.
        EXPECT_EQ(a.id, p.id);
        EXPECT_EQ(a.arrival, p.arrival);
        EXPECT_EQ(a.promptTokens, p.promptTokens);
        EXPECT_EQ(a.reasoningTokens, p.reasoningTokens);
        EXPECT_EQ(a.answerTokens, p.answerTokens);
        // And it is a pure function of (seed, id).
        EXPECT_EQ(a.sloClass, again.requests[i].sloClass);
        ++histogram[workload::sloClassIndex(a.sloClass)];
    }
    // Default mix: 30/40/30 — every class must actually appear, and
    // roughly at its target share on 400 draws.
    for (std::size_t c = 0; c < workload::kNumSloClasses; ++c)
        EXPECT_GT(histogram[c], 400 / 10);

    // A different salt reshuffles the assignment.
    auto salted = plain;
    workload::SloMix mix;
    mix.seed = 0xdeadbeef;
    workload::assignSloClasses(salted, mix);
    int differs = 0;
    for (std::size_t i = 0; i < plain.size(); ++i) {
        if (salted.requests[i].sloClass !=
            annotated.requests[i].sloClass)
            ++differs;
    }
    EXPECT_GT(differs, 0);
}

TEST_F(ClassDormancy, AnnotatedTraceInvisibleWhenDisabled)
{
    // A class-annotated trace run with the subsystem disabled must be
    // byte-identical (modulo the pass-through class column in the
    // metrics rows) to the same workload with no annotations at all.
    auto plain = stormTrace(777, 100);
    auto annotated = plain;
    workload::assignSloClasses(annotated);

    SystemConfig cfg = tightConfig();
    ASSERT_FALSE(cfg.sloClasses.enabled);
    auto off_plain = RunContext::execute(cfg, plain);
    auto off_annotated = RunContext::execute(cfg, annotated);
    test::expectIdentical(stripClassAnnotations(off_plain),
                          stripClassAnnotations(off_annotated));

    // And the dormant counters stayed at zero.
    for (const auto& out : off_annotated.perClass) {
        EXPECT_EQ(out.submitted, 0u);
        EXPECT_EQ(out.completed, 0u);
        EXPECT_EQ(out.goodputFraction, 1.0);
    }
}

TEST_F(ClassDormancy, DisabledConfigByteIdenticalAcrossForceMatrix)
{
    // A fully-parameterized class config with enabled == false, on an
    // annotated trace, under the chaos fault schedule: every one of
    // the 32 force-mode corners must match the default-config run
    // byte-for-byte. This is the "classes-off is the pre-class
    // simulator" guarantee the acceptance criteria pin.
    auto trace = stormTrace(313, 100);
    workload::assignSloClasses(trace);
    SystemConfig base = chaosConfig(3);

    auto baseline = RunContext::execute(base, trace);
    EXPECT_GT(baseline.numCrashes, 0u);

    for (int mask = 0; mask < 32; ++mask) {
        SCOPED_TRACE("mode mask " + std::to_string(mask));
        SystemConfig cfg = base;
        applyForceMask(cfg, mask);
        // Hot knobs everywhere, master switch off: all dormant.
        cfg.sloClasses.enabled = false;
        params(cfg, SloClass::Interactive).relativeDeadline = 0.2;
        params(cfg, SloClass::Standard).relativeDeadline = 0.5;
        params(cfg, SloClass::Batch).shedKvFloor = 0.9;
        params(cfg, SloClass::Batch).shedUpFloor = 0.99;
        test::expectIdentical(baseline,
                              RunContext::execute(cfg, trace));
    }
}

TEST_F(ClassBehavior, ClassesOnForceMatrixByteIdenticalUnderChaos)
{
    // With the full class policy live (deadlines, demotion, overload
    // control) on top of the chaos fault schedule, the debug
    // recompute modes must still all agree: the class layer adds no
    // order-dependent state to any force-mode path.
    auto trace = stormTrace(911, 100);
    workload::assignSloClasses(trace);
    SystemConfig base = chaosConfig(5);
    base.sloClasses.enabled = true;
    params(base, SloClass::Interactive).relativeDeadline = 2.0;
    params(base, SloClass::Standard).relativeDeadline = 6.0;

    std::vector<RunResult> results;
    for (int mask = 0; mask < 32; ++mask) {
        SystemConfig cfg = base;
        applyForceMask(cfg, mask);
        results.push_back(RunContext::execute(cfg, trace));
    }
    EXPECT_GT(results[0].numCrashes, 0u);
    for (std::size_t i = 1; i < results.size(); ++i) {
        SCOPED_TRACE("mode mask " + std::to_string(i));
        test::expectIdentical(results[0], results[i]);
    }
    auditClassTotality(results[0]);
}

TEST_F(ClassBehavior, ChaosGridInvariantsAndReplay)
{
    // Classes on across a scheduler x predictor sample of the chaos
    // grid: per-class totality holds, nothing leaks, and a same-seed
    // replay is byte-identical including the class outcome tables.
    auto trace = stormTrace(4242, 120);
    workload::assignSloClasses(trace);

    struct GridPoint
    {
        SchedulerType sched;
        predict::PredictorType pred;
    };
    for (const auto& point :
         {GridPoint{SchedulerType::Fcfs, predict::PredictorType::None},
          GridPoint{SchedulerType::Pascal,
                    predict::PredictorType::None},
          GridPoint{SchedulerType::Pascal,
                    predict::PredictorType::Oracle},
          GridPoint{SchedulerType::PascalSpec,
                    predict::PredictorType::Profile}}) {
        SCOPED_TRACE("scheduler " +
                     std::to_string(static_cast<int>(point.sched)) +
                     " predictor " +
                     std::to_string(static_cast<int>(point.pred)));
        SystemConfig cfg = chaosConfig(7);
        cfg.predictor.type = point.pred;
        cfg.scheduler = point.sched;
        if (point.pred != predict::PredictorType::None)
            cfg.placement = PlacementType::PascalPredictive;
        cfg.sloClasses.enabled = true;
        params(cfg, SloClass::Interactive).relativeDeadline = 2.0;
        params(cfg, SloClass::Standard).relativeDeadline = 6.0;

        RunContext ctx(cfg);
        ctx.submit(trace);
        ctx.run();
        auto result = ctx.result();
        ASSERT_EQ(result.perRequest.size(), trace.size());
        EXPECT_EQ(result.numUnfinished,
                  static_cast<std::size_t>(result.numTerminalFailures));
        auditClassTotality(result);
        expectNoKvLeaks(ctx);
        test::expectIdentical(result,
                              RunContext::execute(cfg, trace));
    }
}

TEST_F(ClassBehavior, InteractiveProtectedUnderOverload)
{
    // Pure class priority (no deadlines, no shedding) on a saturating
    // storm: Interactive must come out with a better TTFT tail than
    // Batch — the scheduler's class-rank level is doing its job.
    auto trace = stormTrace(2026, 150, 400.0);
    workload::assignSloClasses(trace);
    SystemConfig cfg = tightConfig();
    cfg.sloClasses.enabled = true;
    cfg.sloClasses.enforceDeadlines = false;
    cfg.sloClasses.overloadControl = false;

    auto result = RunContext::execute(cfg, trace);
    const auto& agg = result.classAggregates;
    const auto& inter =
        agg[workload::sloClassIndex(SloClass::Interactive)];
    const auto& batch = agg[workload::sloClassIndex(SloClass::Batch)];
    ASSERT_GT(inter.numFinished, 0u);
    ASSERT_GT(batch.numFinished, 0u);
    EXPECT_LT(inter.meanTtft, batch.meanTtft);
    EXPECT_LT(inter.p99Ttft, batch.p99Ttft);
    auditClassTotality(result);
}

TEST_F(ClassBehavior, DeadlineExpiryFailsTerminallyAndReclaimsKv)
{
    // A deadline far tighter than the storm's service times: expired
    // Interactive requests terminally fail with the KV reclaimed,
    // while completions that beat the deadline stay clean.
    auto trace = stormTrace(55, 100, 400.0);
    workload::assignSloClasses(trace);
    SystemConfig cfg = tightConfig();
    cfg.sloClasses.enabled = true;
    cfg.sloClasses.overloadControl = false; // Isolate the timeout path.
    params(cfg, SloClass::Interactive).relativeDeadline = 1.5;
    params(cfg, SloClass::Standard).relativeDeadline = 0.0;

    RunContext ctx(cfg);
    ctx.submit(trace);
    ctx.run();
    auto result = ctx.result();
    auto ci = workload::sloClassIndex(SloClass::Interactive);
    ASSERT_GT(result.perClass[ci].deadlineFailed, 0u)
        << "storm never drove an Interactive request past 1.5 s";

    for (const auto& row : result.perRequest) {
        if (row.failReason == workload::FailReason::DeadlineExceeded) {
            EXPECT_TRUE(row.failed);
            EXPECT_FALSE(row.finished);
            EXPECT_TRUE(row.deadlineExpired);
            EXPECT_EQ(row.sloClass, SloClass::Interactive);
        }
        if (row.finished && row.sloClass == SloClass::Interactive) {
            // Completions beat the timer: the deadline event was
            // canceled, not left to fire into a finished request.
            EXPECT_FALSE(row.deadlineExpired);
            EXPECT_LE(row.e2eLatency, 1.5);
        }
        if (row.sloClass == SloClass::Standard) {
            // relativeDeadline <= 0 disables the deadline entirely.
            EXPECT_FALSE(row.deadlineExpired);
            EXPECT_NE(row.failReason,
                      workload::FailReason::DeadlineExceeded);
        }
    }
    auditClassTotality(result);
    expectNoKvLeaks(ctx);
    test::expectIdentical(result, RunContext::execute(cfg, trace));
}

TEST_F(ClassBehavior, DemoteOnExpiryKeepsWorkAliveAsBestEffort)
{
    // Batch with demote-on-expiry: expiry re-keys the request behind
    // every class instead of failing it, and it still completes —
    // flagged best-effort — so goodput keeps it.
    auto trace = stormTrace(56, 100, 400.0);
    workload::assignSloClasses(trace);
    SystemConfig cfg = tightConfig();
    cfg.sloClasses.enabled = true;
    cfg.sloClasses.overloadControl = false;
    params(cfg, SloClass::Batch).relativeDeadline = 1.0;
    params(cfg, SloClass::Batch).demoteOnExpiry = true;
    params(cfg, SloClass::Interactive).relativeDeadline = 0.0;
    params(cfg, SloClass::Standard).relativeDeadline = 0.0;

    RunContext ctx(cfg);
    ctx.submit(trace);
    ctx.run();
    auto result = ctx.result();
    auto bi = workload::sloClassIndex(SloClass::Batch);
    ASSERT_GT(result.perClass[bi].demoted, 0u);
    EXPECT_EQ(result.perClass[bi].deadlineFailed, 0u);

    std::uint64_t demoted_rows = 0;
    for (const auto& row : result.perRequest) {
        if (row.bestEffort) {
            ++demoted_rows;
            EXPECT_EQ(row.sloClass, SloClass::Batch);
            EXPECT_TRUE(row.deadlineExpired);
            // Demotion is graceful degradation, not failure.
            EXPECT_TRUE(row.finished);
            EXPECT_FALSE(row.failed);
        }
    }
    EXPECT_EQ(demoted_rows, result.perClass[bi].demoted);
    // Every Batch request survived: demotion never sheds work.
    EXPECT_EQ(result.perClass[bi].completed,
              result.perClass[bi].submitted);
    auditClassTotality(result);
    expectNoKvLeaks(ctx);
}

TEST_F(ClassBehavior, NegativeSlackShedsInfeasibleArrivalsUpFront)
{
    // A deadline below even the optimistic dedicated-instance bound:
    // every Interactive arrival is shed at admission (no KV ever
    // allocated for them), others admit normally.
    auto trace = stormTrace(57, 60, 100.0);
    workload::assignSloClasses(trace);
    SystemConfig cfg = tightConfig();
    cfg.sloClasses.enabled = true;
    params(cfg, SloClass::Interactive).relativeDeadline = 1e-4;

    RunContext ctx(cfg);
    ctx.submit(trace);
    ctx.run();
    auto result = ctx.result();
    auto ci = workload::sloClassIndex(SloClass::Interactive);
    ASSERT_GT(result.perClass[ci].submitted, 0u);
    EXPECT_EQ(result.perClass[ci].shed,
              result.perClass[ci].submitted);
    EXPECT_EQ(result.perClass[ci].completed, 0u);
    for (const auto& row : result.perRequest) {
        if (row.sloClass == SloClass::Interactive) {
            EXPECT_EQ(row.failReason, workload::FailReason::Shed);
            EXPECT_EQ(row.ttft, 0.0); // Never ran.
        }
    }
    auditClassTotality(result);
    expectNoKvLeaks(ctx);
}

TEST_F(ClassBehavior, KvFloorShedsBatchFirst)
{
    // A high Batch KV floor on a saturated pool: Batch arrivals are
    // shed while Interactive (no floor) keeps admitting — the
    // degradation order the paper's overload story wants.
    auto trace = stormTrace(58, 120, 400.0);
    workload::assignSloClasses(trace);
    SystemConfig cfg = tightConfig();
    cfg.gpuKvCapacityTokens = 4096; // Saturates early.
    cfg.sloClasses.enabled = true;
    cfg.sloClasses.enforceDeadlines = false;
    params(cfg, SloClass::Batch).shedKvFloor = 0.5;
    params(cfg, SloClass::Standard).shedKvFloor = 0.0;

    auto result = RunContext::execute(cfg, trace);
    auto bi = workload::sloClassIndex(SloClass::Batch);
    auto ii = workload::sloClassIndex(SloClass::Interactive);
    EXPECT_GT(result.perClass[bi].shed, 0u);
    EXPECT_EQ(result.perClass[ii].shed, 0u);
    auditClassTotality(result);
}

TEST_F(GoodputSemantics, EmptyTraceIsPerfectGoodput)
{
    SystemConfig cfg = tightConfig();
    cfg.sloClasses.enabled = true;
    auto result = RunContext::execute(cfg, workload::Trace{});
    EXPECT_EQ(result.goodputFraction, 1.0);
    for (const auto& out : result.perClass) {
        EXPECT_EQ(out.submitted, 0u);
        EXPECT_EQ(out.goodputFraction, 1.0);
    }
}

TEST_F(GoodputSemantics, ShedAndFailedStayInTheDenominator)
{
    // Mixed outcomes in one run — admission sheds (Batch KV floor),
    // deadline failures (tight Interactive deadline), completions —
    // and the pinned identities hold exactly:
    //   goodputFraction == numFinished / numRequests
    //   goodputFraction + numUnfinished / numRequests == 1
    //   numShed <= numTerminalFailures (a subset, not an extra term)
    auto trace = stormTrace(59, 120, 400.0);
    workload::assignSloClasses(trace);
    SystemConfig cfg = tightConfig();
    cfg.gpuKvCapacityTokens = 4096;
    cfg.sloClasses.enabled = true;
    // 4 s sits inside the window where most arrivals pass the
    // negative-slack feasibility bound (a few hundred decode steps of
    // optimistic service time) yet storm queueing still expires some:
    // both shed and deadline-failed outcomes appear in one run.
    params(cfg, SloClass::Interactive).relativeDeadline = 4.0;
    params(cfg, SloClass::Batch).shedKvFloor = 0.5;

    auto result = RunContext::execute(cfg, trace);
    std::size_t n = trace.size();
    ASSERT_EQ(result.aggregate.numRequests, n);
    EXPECT_GT(result.numShed, 0u);
    EXPECT_GT(result.numTerminalFailures, result.numShed);

    // The denominator is every submitted request: shed and failed
    // requests did NOT shrink it.
    EXPECT_EQ(result.goodputFraction,
              static_cast<double>(result.aggregate.numFinished) /
                  static_cast<double>(n));
    EXPECT_LT(result.goodputFraction, 1.0);
    EXPECT_DOUBLE_EQ(result.goodputFraction +
                         static_cast<double>(result.numUnfinished) /
                             static_cast<double>(n),
                     1.0);
    EXPECT_EQ(result.numUnfinished,
              static_cast<std::size_t>(result.numTerminalFailures));
    auditClassTotality(result);
}

TEST_F(GoodputSemantics, DemotedCompletionsCountAsGoodput)
{
    // A demoted best-effort request that completes is goodput: the
    // numerator counts fully-completed requests regardless of how
    // degraded their service was.
    auto trace = stormTrace(60, 80, 400.0);
    workload::assignSloClasses(trace);
    SystemConfig cfg = tightConfig();
    cfg.sloClasses.enabled = true;
    cfg.sloClasses.overloadControl = false;
    params(cfg, SloClass::Batch).relativeDeadline = 1.0;
    params(cfg, SloClass::Batch).demoteOnExpiry = true;
    params(cfg, SloClass::Interactive).relativeDeadline = 0.0;
    params(cfg, SloClass::Standard).relativeDeadline = 0.0;

    auto result = RunContext::execute(cfg, trace);
    auto bi = workload::sloClassIndex(SloClass::Batch);
    ASSERT_GT(result.perClass[bi].demoted, 0u);
    std::uint64_t finished_rows = 0;
    for (const auto& row : result.perRequest) {
        if (row.finished)
            ++finished_rows;
        if (row.bestEffort) {
            EXPECT_TRUE(row.finished);
        }
    }
    // numFinished (the goodput numerator) includes the demoted rows.
    EXPECT_EQ(result.aggregate.numFinished, finished_rows);
    EXPECT_EQ(result.goodputFraction,
              static_cast<double>(finished_rows) /
                  static_cast<double>(trace.size()));
}

} // namespace
