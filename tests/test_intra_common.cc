/**
 * @file
 * Unit tests for the shared IntraScheduler mechanics: hosted-list
 * management, the greedy selection walk's caps and keep-walk, and the
 * monitor counters the cluster view consumes.
 */

#include <gtest/gtest.h>

#include "src/common/log.hh"
#include "src/core/intra_scheduler.hh"
#include "tests/scheduler_test_util.hh"

namespace
{

using namespace pascal;
using core::IntraScheduler;
using core::IterationPlan;
using core::SchedLimits;
using test::SchedulerHarness;

/** Minimal concrete scheduler exposing greedySelect directly. */
class ProbeScheduler : public IntraScheduler
{
  public:
    explicit ProbeScheduler(SchedLimits limits)
        : IntraScheduler(limits)
    {}

    std::string name() const override { return "probe"; }

    void
    planInto(const model::KvPool& pool, IterationPlan& out) override
    {
        greedySelectInto(requests, pool, stopAtUnfit, out, highPrefix,
                         highCap);
    }

    bool stopAtUnfit = false;
    std::size_t highPrefix = 0;
    TokenCount highCap = 0;
};

SchedLimits
limits()
{
    SchedLimits l;
    l.quantum = 500;
    return l;
}

TEST(IntraCommon, AddRemoveHosted)
{
    SchedulerHarness h(1000);
    ProbeScheduler sched(limits());
    auto* a = h.make(0, 0.0, 64, 10, 10);
    auto* b = h.make(1, 1.0, 64, 10, 10);
    sched.add(a);
    sched.add(b);
    EXPECT_EQ(sched.hosted().size(), 2u);
    sched.remove(a);
    ASSERT_EQ(sched.hosted().size(), 1u);
    EXPECT_EQ(sched.hosted()[0], b);
}

TEST(IntraCommonDeath, RemovingUnknownPanics)
{
    SchedulerHarness h(1000);
    ProbeScheduler sched(limits());
    auto* a = h.make(0, 0.0, 64, 10, 10);
    EXPECT_DEATH(sched.remove(a), "not hosted");
}

TEST(IntraCommonDeath, AddingNullPanics)
{
    ProbeScheduler sched(limits());
    EXPECT_DEATH(sched.add(nullptr), "nullptr");
}

TEST(IntraCommon, InTransitAndDoneAreUnschedulable)
{
    SchedulerHarness h(1000);
    ProbeScheduler sched(limits());
    auto* a = h.make(0, 0.0, 64, 10, 10);
    auto* b = h.make(1, 1.0, 64, 10, 10);
    sched.add(a);
    sched.add(b);
    a->exec = workload::ExecState::InTransit;
    b->exec = workload::ExecState::Done;

    EXPECT_TRUE(sched.plan(h.pool).idle());
}

TEST(IntraCommon, MaxBatchSizeCapsSelection)
{
    SchedulerHarness h(100000);
    auto l = limits();
    l.maxBatchSize = 3;
    ProbeScheduler sched(l);
    for (int i = 0; i < 6; ++i) {
        auto* r = h.make(i, 0.1 * i, 64, 10, 10);
        sched.add(r);
        h.makeResident(r);
    }
    auto plan = sched.plan(h.pool);
    EXPECT_EQ(plan.decode.size(), 3u);
    EXPECT_TRUE(plan.swapOut.empty()); // Memory plentiful: keep all.
}

TEST(IntraCommon, PrefillSeqCapLimitsBatch)
{
    SchedulerHarness h(100000);
    auto l = limits();
    l.maxPrefillSeqs = 2;
    ProbeScheduler sched(l);
    for (int i = 0; i < 5; ++i)
        sched.add(h.make(i, 0.1 * i, 64, 10, 10));
    auto plan = sched.plan(h.pool);
    EXPECT_EQ(plan.prefill.size(), 2u);
}

TEST(IntraCommon, PrewarmsAreExemptFromPrefillCaps)
{
    SchedulerHarness h(100000);
    auto l = limits();
    l.maxPrefillSeqs = 1;
    ProbeScheduler sched(l);
    sched.add(h.make(0, 0.0, 64, 10, 10));
    for (int i = 1; i < 4; ++i)
        sched.add(h.make(i, 0.1 * i, 64, 0, 10, /*prewarm=*/true));

    auto plan = sched.plan(h.pool);
    EXPECT_EQ(plan.prefill.size(), 1u);
    EXPECT_EQ(plan.prewarm.size(), 3u);
}

TEST(IntraCommon, StopAtUnfitFreezesWalk)
{
    SchedulerHarness h(200);
    ProbeScheduler sched(limits());
    sched.stopAtUnfit = true;
    sched.add(h.make(0, 0.0, 300, 10, 10)); // Cannot fit (301 > 200).
    sched.add(h.make(1, 1.0, 32, 10, 10));  // Would fit.
    auto plan = sched.plan(h.pool);
    EXPECT_TRUE(plan.idle());
}

TEST(IntraCommon, SkipSemanticsAdmitLaterFits)
{
    SchedulerHarness h(200);
    ProbeScheduler sched(limits());
    sched.stopAtUnfit = false;
    sched.add(h.make(0, 0.0, 300, 10, 10));
    auto* fits = h.make(1, 1.0, 32, 10, 10);
    sched.add(fits);
    auto plan = sched.plan(h.pool);
    ASSERT_EQ(plan.prefill.size(), 1u);
    EXPECT_EQ(plan.prefill[0], fits);
}

TEST(IntraCommon, HighPrefixCapLimitsEarlyEntries)
{
    SchedulerHarness h(1000);
    ProbeScheduler sched(limits());
    sched.highPrefix = 1;
    sched.highCap = 100;
    sched.add(h.make(0, 0.0, 150, 10, 10)); // Cost 151 > cap 100.
    auto* later = h.make(1, 1.0, 150, 10, 10); // Unrestricted.
    sched.add(later);
    auto plan = sched.plan(h.pool);
    ASSERT_EQ(plan.prefill.size(), 1u);
    EXPECT_EQ(plan.prefill[0], later);
}

TEST(IntraCommon, KeepWalkPreservesHighestPriorityResidents)
{
    // Three residents; only the first two fit alongside growth, the
    // last (lowest priority = latest in order) is evicted.
    SchedulerHarness h(330);
    ProbeScheduler sched(limits());
    std::vector<workload::Request*> rs;
    for (int i = 0; i < 3; ++i) {
        auto* r = h.make(i, 0.1 * i, 99, 10, 10); // kv 100 each.
        sched.add(r);
        h.makeResident(r);
        rs.push_back(r);
    }
    // Costs: 101 each; 3 * 101 = 303 <= 330: all decode.
    auto plan = sched.plan(h.pool);
    EXPECT_EQ(plan.decode.size(), 3u);

    // Tighten: grow first two so the third no longer fits.
    h.decodeTokens(rs[0], 15, 0.5);
    h.decodeTokens(rs[1], 15, 0.5);
    plan = sched.plan(h.pool);
    EXPECT_EQ(plan.decode.size(), 2u);
    ASSERT_EQ(plan.swapOut.size(), 1u);
    EXPECT_EQ(plan.swapOut[0], rs[2]);
}

TEST(IntraCommon, MonitorCountersTrackPhases)
{
    SchedulerHarness h(100000);
    ProbeScheduler sched(limits());
    auto* rea = h.make(0, 0.0, 64, 100, 10);
    auto* ans = h.make(1, 1.0, 64, 2, 600);
    sched.add(rea);
    sched.add(ans);
    h.makeResident(ans, 500);
    h.decodeTokens(ans, 1, 0.5, 500); // Transition to answering.

    EXPECT_EQ(sched.numReasoning(), 1);
    EXPECT_EQ(sched.numFreshAnswering(), 1);

    // A full quantum of answering tokens: no longer "fresh".
    h.decodeTokens(ans, 500, 1.0, 500);
    EXPECT_EQ(sched.numFreshAnswering(), 0);
}

} // namespace
