/**
 * @file
 * Unit tests for the two-tier KV pool: accounting invariants, tier
 * moves, and misuse detection.
 */

#include <gtest/gtest.h>

#include "src/common/log.hh"
#include "src/model/kv_pool.hh"

namespace
{

using pascal::model::KvPool;
using pascal::model::KvTier;

TEST(KvPool, StartsEmpty)
{
    KvPool pool(1000);
    EXPECT_EQ(pool.gpuCapacity(), 1000);
    EXPECT_EQ(pool.gpuUsed(), 0);
    EXPECT_EQ(pool.gpuFree(), 1000);
    EXPECT_EQ(pool.cpuUsed(), 0);
    EXPECT_EQ(pool.numTracked(), 0u);
}

TEST(KvPool, RejectsNonPositiveCapacity)
{
    EXPECT_THROW(KvPool(0), pascal::FatalError);
    EXPECT_THROW(KvPool(-5), pascal::FatalError);
}

TEST(KvPool, AllocGpuTracksUsage)
{
    KvPool pool(1000);
    pool.allocGpu(1, 400);
    EXPECT_EQ(pool.gpuUsed(), 400);
    EXPECT_EQ(pool.gpuFree(), 600);
    EXPECT_EQ(pool.tierOf(1), KvTier::Gpu);
    EXPECT_EQ(pool.tokensOf(1), 400);
    EXPECT_TRUE(pool.hasRequest(1));
    EXPECT_FALSE(pool.hasRequest(2));
}

TEST(KvPool, CanAllocRespectsCapacity)
{
    KvPool pool(1000);
    pool.allocGpu(1, 900);
    EXPECT_TRUE(pool.canAllocGpu(100));
    EXPECT_FALSE(pool.canAllocGpu(101));
}

TEST(KvPool, GrowGpuExtends)
{
    KvPool pool(1000);
    pool.allocGpu(1, 100);
    pool.growGpu(1, 50);
    EXPECT_EQ(pool.tokensOf(1), 150);
    EXPECT_EQ(pool.gpuUsed(), 150);
}

TEST(KvPool, MoveToCpuAndBack)
{
    KvPool pool(1000);
    pool.allocGpu(1, 300);
    pool.moveToCpu(1);
    EXPECT_EQ(pool.tierOf(1), KvTier::Cpu);
    EXPECT_EQ(pool.gpuUsed(), 0);
    EXPECT_EQ(pool.cpuUsed(), 300);
    EXPECT_EQ(pool.totalFootprintTokens(), 300);

    pool.moveToGpu(1);
    EXPECT_EQ(pool.tierOf(1), KvTier::Gpu);
    EXPECT_EQ(pool.gpuUsed(), 300);
    EXPECT_EQ(pool.cpuUsed(), 0);
}

TEST(KvPool, SwapMakesRoomForOthers)
{
    KvPool pool(500);
    pool.allocGpu(1, 400);
    EXPECT_FALSE(pool.canAllocGpu(200));
    pool.moveToCpu(1);
    EXPECT_TRUE(pool.canAllocGpu(200));
    pool.allocGpu(2, 200);
    EXPECT_EQ(pool.totalFootprintTokens(), 600);
}

TEST(KvPool, ReleaseFreesEitherTier)
{
    KvPool pool(1000);
    pool.allocGpu(1, 100);
    pool.allocCpu(2, 200);
    pool.release(1);
    pool.release(2);
    EXPECT_EQ(pool.gpuUsed(), 0);
    EXPECT_EQ(pool.cpuUsed(), 0);
    EXPECT_EQ(pool.numTracked(), 0u);
    EXPECT_EQ(pool.tierOf(1), KvTier::None);
}

TEST(KvPool, PeakTracksHighWaterMark)
{
    KvPool pool(1000);
    pool.allocGpu(1, 600);
    pool.allocGpu(2, 300);
    pool.release(1);
    EXPECT_EQ(pool.gpuUsed(), 300);
    EXPECT_EQ(pool.peakGpuUsed(), 900);
}

TEST(KvPoolDeath, OverCapacityPanics)
{
    KvPool pool(100);
    pool.allocGpu(1, 90);
    EXPECT_DEATH(pool.allocGpu(2, 20), "over capacity");
    EXPECT_DEATH(pool.growGpu(1, 20), "over capacity");
}

TEST(KvPoolDeath, DoubleAllocPanics)
{
    KvPool pool(100);
    pool.allocGpu(1, 10);
    EXPECT_DEATH(pool.allocGpu(1, 10), "already tracked");
}

TEST(KvPoolDeath, WrongTierMovesPanic)
{
    KvPool pool(100);
    pool.allocGpu(1, 10);
    EXPECT_DEATH(pool.moveToGpu(1), "not CPU-resident");
    pool.moveToCpu(1);
    EXPECT_DEATH(pool.moveToCpu(1), "not GPU-resident");
}

TEST(KvPoolDeath, UnknownRequestPanics)
{
    KvPool pool(100);
    EXPECT_DEATH(pool.release(7), "unknown request");
    EXPECT_DEATH(pool.growGpu(7, 1), "unknown request");
}

TEST(KvPool, DenseTableHandlesSparseAndRecycledIds)
{
    // The dense RequestId-indexed table must behave like the old map
    // for out-of-order ids, gaps, and release/re-alloc cycles.
    KvPool pool(1000);
    pool.allocGpu(9, 100);
    pool.allocGpu(2, 50);
    pool.allocCpu(5, 25);
    EXPECT_EQ(pool.numTracked(), 3u);
    EXPECT_EQ(pool.tierOf(9), KvTier::Gpu);
    EXPECT_EQ(pool.tierOf(5), KvTier::Cpu);
    EXPECT_EQ(pool.tierOf(7), KvTier::None); // Gap: never allocated.
    EXPECT_FALSE(pool.hasRequest(7));
    EXPECT_EQ(pool.tokensOf(7), 0);

    pool.release(9);
    EXPECT_FALSE(pool.hasRequest(9));
    EXPECT_EQ(pool.numTracked(), 2u);
    pool.allocGpu(9, 10); // Slot recycled in place.
    EXPECT_EQ(pool.tokensOf(9), 10);
    EXPECT_EQ(pool.gpuUsed(), 60);
}

TEST(KvPoolDeath, NegativeIdPanics)
{
    KvPool pool(100);
    EXPECT_DEATH(pool.allocGpu(-1, 10), "negative request id");
}

} // namespace
