/**
 * @file
 * Unit tests for the two-tier KV pool: accounting invariants, tier
 * moves, misuse detection, and the slot-compaction bound (table sized
 * by peak live requests, not by the largest RequestId ever hosted).
 */

#include <gtest/gtest.h>

#include "src/common/log.hh"
#include "src/model/kv_pool.hh"

namespace
{

using pascal::model::kNoKvSlot;
using pascal::model::KvPool;
using pascal::model::KvSlot;
using pascal::model::KvTier;

TEST(KvPool, StartsEmpty)
{
    KvPool pool(1000);
    EXPECT_EQ(pool.gpuCapacity(), 1000);
    EXPECT_EQ(pool.gpuUsed(), 0);
    EXPECT_EQ(pool.gpuFree(), 1000);
    EXPECT_EQ(pool.cpuUsed(), 0);
    EXPECT_EQ(pool.numTracked(), 0u);
    EXPECT_EQ(pool.tableSize(), 0u);
}

TEST(KvPool, RejectsNonPositiveCapacity)
{
    EXPECT_THROW(KvPool(0), pascal::FatalError);
    EXPECT_THROW(KvPool(-5), pascal::FatalError);
}

TEST(KvPool, AllocGpuTracksUsage)
{
    KvPool pool(1000);
    KvSlot s = pool.allocGpu(1, 400);
    EXPECT_EQ(pool.gpuUsed(), 400);
    EXPECT_EQ(pool.gpuFree(), 600);
    EXPECT_EQ(pool.tierOf(s), KvTier::Gpu);
    EXPECT_EQ(pool.tokensOf(s), 400);
    EXPECT_EQ(pool.ownerOf(s), 1);
    EXPECT_TRUE(pool.tracks(s));
    EXPECT_FALSE(pool.tracks(s + 1));
    EXPECT_FALSE(pool.tracks(kNoKvSlot));
}

TEST(KvPool, CanAllocRespectsCapacity)
{
    KvPool pool(1000);
    pool.allocGpu(1, 900);
    EXPECT_TRUE(pool.canAllocGpu(100));
    EXPECT_FALSE(pool.canAllocGpu(101));
}

TEST(KvPool, GrowGpuExtends)
{
    KvPool pool(1000);
    KvSlot s = pool.allocGpu(1, 100);
    pool.growGpu(s, 50);
    EXPECT_EQ(pool.tokensOf(s), 150);
    EXPECT_EQ(pool.gpuUsed(), 150);
}

TEST(KvPool, MoveToCpuAndBack)
{
    KvPool pool(1000);
    KvSlot s = pool.allocGpu(1, 300);
    pool.moveToCpu(s);
    EXPECT_EQ(pool.tierOf(s), KvTier::Cpu);
    EXPECT_EQ(pool.gpuUsed(), 0);
    EXPECT_EQ(pool.cpuUsed(), 300);
    EXPECT_EQ(pool.totalFootprintTokens(), 300);

    pool.moveToGpu(s);
    EXPECT_EQ(pool.tierOf(s), KvTier::Gpu);
    EXPECT_EQ(pool.gpuUsed(), 300);
    EXPECT_EQ(pool.cpuUsed(), 0);
}

TEST(KvPool, SwapMakesRoomForOthers)
{
    KvPool pool(500);
    KvSlot s = pool.allocGpu(1, 400);
    EXPECT_FALSE(pool.canAllocGpu(200));
    pool.moveToCpu(s);
    EXPECT_TRUE(pool.canAllocGpu(200));
    pool.allocGpu(2, 200);
    EXPECT_EQ(pool.totalFootprintTokens(), 600);
}

TEST(KvPool, ReleaseFreesEitherTier)
{
    KvPool pool(1000);
    KvSlot a = pool.allocGpu(1, 100);
    KvSlot b = pool.allocCpu(2, 200);
    pool.release(a);
    pool.release(b);
    EXPECT_EQ(pool.gpuUsed(), 0);
    EXPECT_EQ(pool.cpuUsed(), 0);
    EXPECT_EQ(pool.numTracked(), 0u);
    EXPECT_EQ(pool.tierOf(a), KvTier::None);
    EXPECT_EQ(pool.ownerOf(a), pascal::kNoRequest);
}

TEST(KvPool, PeakTracksHighWaterMark)
{
    KvPool pool(1000);
    KvSlot a = pool.allocGpu(1, 600);
    pool.allocGpu(2, 300);
    pool.release(a);
    EXPECT_EQ(pool.gpuUsed(), 300);
    EXPECT_EQ(pool.peakGpuUsed(), 900);
}

TEST(KvPool, TableBoundedByLiveRequestsNotMaxId)
{
    // A million sequential ids hosted two-at-a-time must not grow the
    // table past the peak liveness: released slots are recycled. The
    // old dense-by-id table ballooned to ~16 B x max-id per instance
    // on exactly this pattern.
    KvPool pool(10000);
    KvSlot prev = kNoKvSlot;
    for (pascal::RequestId id = 0; id < 5000; ++id) {
        KvSlot s = pool.allocGpu(id + 1'000'000'000, 10);
        if (prev != kNoKvSlot)
            pool.release(prev);
        prev = s;
    }
    EXPECT_EQ(pool.numTracked(), 1u);
    EXPECT_LE(pool.tableSize(), 2u);
    EXPECT_EQ(pool.ownerOf(prev), 1'000'004'999);
}

TEST(KvPool, RecycledSlotStartsClean)
{
    KvPool pool(1000);
    KvSlot a = pool.allocGpu(9, 100);
    pool.release(a);
    EXPECT_FALSE(pool.tracks(a));
    KvSlot b = pool.allocGpu(12, 10); // Recycles the freed slot.
    EXPECT_EQ(b, a);
    EXPECT_EQ(pool.tokensOf(b), 10);
    EXPECT_EQ(pool.ownerOf(b), 12);
    EXPECT_EQ(pool.gpuUsed(), 10);
    EXPECT_EQ(pool.tableSize(), 1u);
}

TEST(KvPoolDeath, OverCapacityPanics)
{
    KvPool pool(100);
    KvSlot s = pool.allocGpu(1, 90);
    EXPECT_DEATH(pool.allocGpu(2, 20), "over capacity");
    EXPECT_DEATH(pool.growGpu(s, 20), "over capacity");
}

TEST(KvPoolDeath, WrongTierMovesPanic)
{
    KvPool pool(100);
    KvSlot s = pool.allocGpu(1, 10);
    EXPECT_DEATH(pool.moveToGpu(s), "not CPU-resident");
    pool.moveToCpu(s);
    EXPECT_DEATH(pool.moveToCpu(s), "not GPU-resident");
}

TEST(KvPoolDeath, UntrackedSlotPanics)
{
    KvPool pool(100);
    EXPECT_DEATH(pool.release(7), "untracked slot");
    EXPECT_DEATH(pool.growGpu(7, 1), "untracked slot");
    EXPECT_DEATH(pool.growGpu(kNoKvSlot, 1), "untracked slot");
    KvSlot s = pool.allocGpu(1, 10);
    pool.release(s);
    EXPECT_DEATH(pool.release(s), "untracked slot");
}

TEST(KvPoolDeath, NegativeIdPanics)
{
    KvPool pool(100);
    EXPECT_DEATH(pool.allocGpu(-1, 10), "negative request id");
}

} // namespace
