/**
 * @file
 * Tests for the library's extensions beyond the paper's baseline
 * design: the answering-memory reserve in the PASCAL scheduler and
 * the instance monitor's early-warning buffer margin.
 */

#include <gtest/gtest.h>

#include <memory>

#include "src/cluster/instance.hh"
#include "src/cluster/serving_system.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/core/pascal_scheduler.hh"
#include "src/workload/generator.hh"
#include "tests/scheduler_test_util.hh"

namespace
{

using namespace pascal;
using core::PascalScheduler;
using core::SchedLimits;
using test::SchedulerHarness;

SchedLimits
limitsWithReserve(double reserve)
{
    SchedLimits l;
    l.quantum = 4;
    l.answeringReserveFraction = reserve;
    return l;
}

TEST(AnsweringReserve, ValidatedRange)
{
    EXPECT_THROW(limitsWithReserve(-0.1).validate(), FatalError);
    EXPECT_THROW(limitsWithReserve(1.0).validate(), FatalError);
    limitsWithReserve(0.0).validate();
    limitsWithReserve(0.5).validate();
}

TEST(AnsweringReserve, HighQueueCannotClaimReservedMemory)
{
    // Capacity 1000, 30% reserved for answering: the high queue may
    // charge at most 700.
    SchedulerHarness h(1000);
    PascalScheduler sched(limitsWithReserve(0.3));

    auto* r1 = h.make(0, 0.0, 499, 100, 10); // Prefill cost 500.
    auto* r2 = h.make(1, 1.0, 299, 100, 10); // Prefill cost 300.
    sched.add(r1);
    sched.add(r2);

    auto plan = sched.plan(h.pool);
    // r1 (500) fits in the 700 cap; r2 (300) would push the high
    // queue to 800 > 700 and is skipped.
    ASSERT_EQ(plan.prefill.size(), 1u);
    EXPECT_EQ(plan.prefill[0], r1);
}

TEST(AnsweringReserve, AnsweringUsesReservedMemory)
{
    SchedulerHarness h(1000);
    PascalScheduler sched(limitsWithReserve(0.3));

    auto* rea = h.make(0, 0.0, 499, 100, 10); // High queue, cost 500.
    auto* ans = h.make(1, 1.0, 199, 2, 50);   // Low queue, kv 201.
    sched.add(rea);
    sched.add(ans);
    h.makeResident(ans, 4);
    h.decodeTokens(ans, 1, 0.5, 4); // Enter answering phase.
    ASSERT_EQ(ans->phase(), workload::Phase::Answering);

    auto plan = sched.plan(h.pool);
    // Both scheduled: reasoning inside its 700 cap, answering from
    // the overall budget.
    ASSERT_EQ(plan.prefill.size(), 1u);
    EXPECT_EQ(plan.prefill[0], rea);
    EXPECT_TRUE(plan.swapOut.empty());
}

TEST(AnsweringReserve, ZeroReserveMatchesPaperBehaviour)
{
    // With reserve 0 the high queue may take everything.
    SchedulerHarness h(1000);
    PascalScheduler sched(limitsWithReserve(0.0));

    auto* r1 = h.make(0, 0.0, 499, 100, 10);
    auto* r2 = h.make(1, 1.0, 299, 100, 10);
    sched.add(r1);
    sched.add(r2);

    auto plan = sched.plan(h.pool);
    EXPECT_EQ(plan.prefill.size(), 2u);
}

TEST(AnsweringReserve, EndToEndRunStillCompletes)
{
    Rng rng(21);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.reasoning = {120.0, 0.8, 16, 600};
    profile.answering = {100.0, 0.8, 16, 600};
    profile.prompt = {64.0, 0.5, 16, 256};
    auto trace = workload::generateTrace(profile, 60, 30.0, rng);

    cluster::SystemConfig cfg = cluster::SystemConfig::pascal(2);
    cfg.gpuKvCapacityTokens = 4000;
    cfg.limits.answeringReserveFraction = 0.25;
    auto result = cluster::ServingSystem(cfg).run(trace);
    EXPECT_EQ(result.numUnfinished, 0u);
}

TEST(ChunkedPrefill, PlanKeepsDecodeAlongsidePrefill)
{
    SchedulerHarness h(100000);
    auto l = limitsWithReserve(0.0);
    l.quantum = 500;
    l.chunkedPrefill = true;
    PascalScheduler sched(l);

    auto* resident = h.make(0, 0.0, 128, 100, 10);
    auto* fresh = h.make(1, 1.0, 128, 100, 10);
    sched.add(resident);
    sched.add(fresh);
    h.makeResident(resident, 500);

    auto plan = sched.plan(h.pool);
    ASSERT_EQ(plan.prefill.size(), 1u);
    EXPECT_EQ(plan.prefill[0], fresh);
    // Unlike prefill-priority mode, the resident request decodes in
    // the same iteration.
    ASSERT_EQ(plan.decode.size(), 1u);
    EXPECT_EQ(plan.decode[0], resident);
}

TEST(ChunkedPrefill, EndToEndRunCompletes)
{
    Rng rng(33);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.reasoning = {120.0, 0.8, 16, 600};
    profile.answering = {100.0, 0.8, 16, 600};
    profile.prompt = {64.0, 0.5, 16, 256};
    auto trace = workload::generateTrace(profile, 60, 30.0, rng);

    cluster::SystemConfig cfg = cluster::SystemConfig::pascal(2);
    cfg.gpuKvCapacityTokens = 6000;
    cfg.limits.chunkedPrefill = true;
    auto result = cluster::ServingSystem(cfg).run(trace);
    EXPECT_EQ(result.numUnfinished, 0u);

    // Same trace under prefill priority: both must conserve tokens.
    cfg.limits.chunkedPrefill = false;
    auto base = cluster::ServingSystem(cfg).run(trace);
    EXPECT_EQ(base.numUnfinished, 0u);
    EXPECT_EQ(result.aggregate.numFinished, base.aggregate.numFinished);
}

struct MonitorFixture
{
    explicit MonitorFixture(TokenCount margin)
        : perf(model::ModelConfig::deepseekR1Distill32B(),
               model::HardwareConfig::h100())
    {
        qoe::SloConfig slo;
        slo.monitorBufferMarginTokens = margin;
        core::SchedLimits limits;
        cluster::InstanceCallbacks cbs;
        cbs.onPhaseTransition = [this](workload::Request* r,
                                       InstanceId) {
            instance->scheduler().onPhaseTransition(r);
        };
        instance = std::make_unique<cluster::Instance>(
            0, sim, perf,
            std::make_unique<core::PascalScheduler>(limits), 100000,
            slo, cbs);
    }

    sim::Simulator sim;
    model::PerfModel perf;
    std::unique_ptr<cluster::Instance> instance;
    std::vector<std::unique_ptr<workload::Request>> owned;
};

TEST(MonitorMargin, FlagsAtRiskRequestsEarlier)
{
    // Two identical instances, margins 0 and 50. A request that has
    // generated 20 answering tokens in 1.5 s (pace expects ~16) is
    // fine with margin 0 but flagged with margin 50.
    for (auto [margin, expect_ok] :
         {std::pair<TokenCount, bool>{0, true},
          std::pair<TokenCount, bool>{50, false}}) {
        MonitorFixture f(margin);
        workload::RequestSpec s;
        s.id = 1;
        s.arrival = 0.0;
        s.promptTokens = 64;
        s.reasoningTokens = 0;
        s.answerTokens = 200;
        s.startInAnswering = true;
        auto req = std::make_unique<workload::Request>(s);
        for (int i = 0; i < 20; ++i)
            req->emitToken(0.1 + 0.05 * i, 500);
        // Host it through the instance so the monitor's min-deadline
        // SLO heap tracks it (scheduler().add alone would bypass the
        // admission path the heap hooks).
        f.instance->addRequest(req.get());

        EXPECT_EQ(f.instance->answeringSloOk(1.5), expect_ok)
            << "margin=" << margin;
        f.instance->detach(req.get());
    }
}

} // namespace
