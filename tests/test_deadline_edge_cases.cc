/**
 * @file
 * Deadline-timing edge cases for the SLO-class subsystem.
 *
 * The dangerous expiry timings are the ones that race the engine's
 * own state machine:
 *  - an expiry landing at the exact timestamp of the plan boundary
 *    that completes the request (deadline events are armed at arrival,
 *    so FIFO order fires them BEFORE a same-timestamp step
 *    completion);
 *  - an expiry firing while the request's KV is in flight on the
 *    fabric (failover restore after a crash);
 *  - an expiry firing while the request is a crash-orphan waiting out
 *    a retry backoff with the whole fleet down.
 * Each must resolve to exactly one outcome (finished XOR failed, no
 * double-fail) with no KV left behind, and replays must be
 * byte-identical.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/cluster/run_context.hh"
#include "src/cluster/system_config.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/workload/generator.hh"
#include "tests/run_result_util.hh"

namespace
{

using namespace pascal;
using cluster::PlacementType;
using cluster::RunContext;
using cluster::RunResult;
using cluster::SchedulerType;
using cluster::SystemConfig;
using workload::SloClass;

class DeadlineEdgeCases : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

qoe::SloClassParams&
params(SystemConfig& cfg, SloClass c)
{
    return cfg.sloClasses.classes[workload::sloClassIndex(c)];
}

/** Classes-on deployment with the fault layer armed but silent, so
 *  tests can script crashes at exact times (the scriptedConfig idiom
 *  from tests/test_fault_edge_cases.cc). */
SystemConfig
scriptedConfig(int instances = 2)
{
    SystemConfig cfg;
    cfg.scheduler = SchedulerType::Pascal;
    cfg.placement = PlacementType::Pascal;
    cfg.numInstances = instances;
    cfg.gpuKvCapacityTokens = 8192;
    cfg.kvBlockSizeTokens = 16;
    cfg.fault.enabled = true;
    cfg.fault.retryBudget = 8;
    cfg.fault.backoffBase = 0.1;
    cfg.fault.backoffCap = 0.4;
    cfg.sloClasses.enabled = true;
    cfg.sloClasses.overloadControl = false; // Timeouts only.
    // No deadlines unless a test sets one explicitly.
    for (std::size_t c = 0; c < workload::kNumSloClasses; ++c) {
        cfg.sloClasses.classes[c].relativeDeadline = 0.0;
        cfg.sloClasses.classes[c].demoteOnExpiry = false;
    }
    return cfg;
}

/** @p n identical Standard-class requests arriving together. */
workload::Trace
flatTrace(int n, Time arrival, TokenCount prompt = 128,
          TokenCount reasoning = 400, TokenCount answer = 60)
{
    workload::Trace trace;
    for (int i = 0; i < n; ++i) {
        workload::RequestSpec spec;
        spec.id = i;
        spec.arrival = arrival;
        spec.promptTokens = prompt;
        spec.reasoningTokens = reasoning;
        spec.answerTokens = answer;
        spec.dataset = "deadline-edge";
        trace.requests.push_back(spec);
    }
    return trace;
}

void
expectNoKvLeaks(const RunContext& ctx)
{
    for (const auto& inst : ctx.cluster().getInstances()) {
        EXPECT_EQ(inst->pool().numTracked(), 0u)
            << "instance " << inst->id() << " leaked KV slots";
        EXPECT_EQ(inst->pool().gpuUsed(), 0)
            << "instance " << inst->id() << " leaked GPU KV tokens";
    }
}

/** Exactly one outcome per request, accounting reconciled. */
void
expectSingleOutcomes(const RunResult& result)
{
    std::uint64_t failed_rows = 0;
    for (const auto& row : result.perRequest) {
        EXPECT_TRUE(row.finished || row.failed)
            << "request " << row.id << " neither finished nor failed";
        EXPECT_FALSE(row.finished && row.failed)
            << "request " << row.id << " double-resolved";
        if (row.failed)
            ++failed_rows;
    }
    EXPECT_EQ(result.numTerminalFailures, failed_rows);
    EXPECT_EQ(result.numUnfinished,
              static_cast<std::size_t>(result.numTerminalFailures));
}

TEST_F(DeadlineEdgeCases, ExpiryAtExactCompletionBoundary)
{
    // Phase 1: measure when each request actually completes with no
    // deadline armed. Phase 2: re-run with the class deadline set to
    // the slowest request's exact end-to-end latency, so its deadline
    // event fires at the same simulated timestamp as the plan
    // boundary that completes it — and FIRST, since deadline events
    // were inserted at arrival. The expiry must ride the mid-step
    // deferral (the step is in flight at that instant) and then find
    // the request already finished: everything completes, nothing
    // double-resolves, nothing leaks.
    auto trace = flatTrace(6, 0.0);
    SystemConfig cfg = scriptedConfig(1);

    auto baseline = RunContext::execute(cfg, trace);
    ASSERT_EQ(baseline.aggregate.numFinished, 6u);
    double max_e2e = 0.0;
    for (const auto& row : baseline.perRequest)
        max_e2e = std::max(max_e2e, row.e2eLatency);
    ASSERT_GT(max_e2e, 0.0);

    SystemConfig armed = cfg;
    params(armed, SloClass::Standard).relativeDeadline = max_e2e;
    RunContext ctx(armed);
    ctx.submit(trace);
    ctx.run();
    auto result = ctx.result();
    EXPECT_EQ(result.aggregate.numFinished, 6u);
    EXPECT_EQ(result.numTerminalFailures, 0u);
    expectSingleOutcomes(result);
    expectNoKvLeaks(ctx);
    // The boundary race is deterministic: replay to the bit.
    test::expectIdentical(result, RunContext::execute(armed, trace));
}

TEST_F(DeadlineEdgeCases, MidStepExpiryDefersToThePlanBoundary)
{
    // A deadline landing mid-run (and mid-step: the engine is
    // saturated with lockstep decode) must not rip the request out of
    // an in-flight plan. The instance parks the expiry and the
    // boundary enforcement terminally fails it with the KV reclaimed.
    auto trace = flatTrace(6, 0.0);
    SystemConfig cfg = scriptedConfig(1);
    auto baseline = RunContext::execute(cfg, trace);
    double max_e2e = 0.0;
    for (const auto& row : baseline.perRequest)
        max_e2e = std::max(max_e2e, row.e2eLatency);

    SystemConfig armed = cfg;
    params(armed, SloClass::Standard).relativeDeadline = 0.6 * max_e2e;
    RunContext ctx(armed);
    ctx.submit(trace);
    ctx.run();
    auto result = ctx.result();
    // At 60 % of the slowest completion at least one request was
    // still running; every expired one fails exactly once.
    EXPECT_GT(result.numTerminalFailures, 0u);
    for (const auto& row : result.perRequest) {
        if (row.failed) {
            EXPECT_EQ(row.failReason,
                      workload::FailReason::DeadlineExceeded);
            EXPECT_TRUE(row.deadlineExpired);
        }
    }
    expectSingleOutcomes(result);
    expectNoKvLeaks(ctx);
    test::expectIdentical(result, RunContext::execute(armed, trace));
}

TEST_F(DeadlineEdgeCases, MidStepExpiryWithDemotionFinishesEverything)
{
    // Same mid-step timing, demote-on-expiry: the boundary drain
    // demotes instead of failing, and every request still completes
    // as best-effort.
    auto trace = flatTrace(6, 0.0);
    SystemConfig cfg = scriptedConfig(1);
    auto baseline = RunContext::execute(cfg, trace);
    double max_e2e = 0.0;
    for (const auto& row : baseline.perRequest)
        max_e2e = std::max(max_e2e, row.e2eLatency);

    SystemConfig armed = cfg;
    params(armed, SloClass::Standard).relativeDeadline = 0.6 * max_e2e;
    params(armed, SloClass::Standard).demoteOnExpiry = true;
    RunContext ctx(armed);
    ctx.submit(trace);
    ctx.run();
    auto result = ctx.result();
    EXPECT_EQ(result.aggregate.numFinished, 6u);
    EXPECT_EQ(result.numTerminalFailures, 0u);
    auto si = workload::sloClassIndex(SloClass::Standard);
    EXPECT_GT(result.perClass[si].demoted, 0u);
    std::uint64_t best_effort = 0;
    for (const auto& row : result.perRequest) {
        if (row.bestEffort)
            ++best_effort;
    }
    EXPECT_EQ(best_effort, result.perClass[si].demoted);
    expectNoKvLeaks(ctx);
}

TEST_F(DeadlineEdgeCases, ExpiryWhileRestoreIsInFlight)
{
    // A crash orphans the lone request mid-decode; its failover
    // restore crawls over a deliberately slow fabric; the deadline
    // fires while the KV is on the wire. Expiry enforcement must not
    // rip state out from under the transfer — the landing guard
    // consumes the request instead: exactly one DeadlineExceeded
    // failure, no KV materialized anywhere.
    SystemConfig cfg = scriptedConfig();
    cfg.hardware.fabricGbps = 0.02; // Restores take whole seconds.
    params(cfg, SloClass::Standard).relativeDeadline = 2.0;
    RunContext ctx(cfg);
    ctx.submit(flatTrace(1, 0.0));
    auto& cl = ctx.cluster();

    ctx.run(1.0); // Prefilled and decoding on its home.
    InstanceId home = kNoInstance;
    for (const auto& inst : cl.getInstances()) {
        if (inst->pool().numTracked() > 0)
            home = inst->id();
    }
    ASSERT_NE(home, kNoInstance);
    InstanceId other = home == 0 ? 1 : 0;
    cl.crashInstance(home);

    // The restore transfer must still be in flight when the deadline
    // fires at t = 2.0.
    ctx.run(2.0);
    ASSERT_GT(cl.ingressLink(other).busyUntil(), 2.0)
        << "restore landed before the deadline — slow the fabric";

    ctx.simulator().at(3.0, [&cl, home] { cl.recoverInstance(home); });
    ctx.run();
    auto result = ctx.result();
    EXPECT_EQ(result.aggregate.numFinished, 0u);
    EXPECT_EQ(result.numTerminalFailures, 1u);
    EXPECT_EQ(result.perRequest[0].failReason,
              workload::FailReason::DeadlineExceeded);
    EXPECT_TRUE(result.perRequest[0].deadlineExpired);
    expectSingleOutcomes(result);
    expectNoKvLeaks(ctx);
}

TEST_F(DeadlineEdgeCases, ExpiryOnCrashOrphanMidBackoff)
{
    // Whole fleet down: the orphaned requests cycle through
    // capped-exponential backoff with nowhere to land. Their deadline
    // fires between retry attempts; the next retry's guard must
    // convert it into exactly one DeadlineExceeded failure (not a
    // RetryBudget one, not two failures) even though the fleet later
    // recovers.
    SystemConfig cfg = scriptedConfig();
    params(cfg, SloClass::Standard).relativeDeadline = 1.0;
    RunContext ctx(cfg);
    ctx.submit(flatTrace(2, 0.0));
    auto& cl = ctx.cluster();

    ctx.run(0.5);
    cl.crashInstance(0);
    cl.crashInstance(1);
    ctx.simulator().at(3.0, [&cl] {
        cl.recoverInstance(0);
        cl.recoverInstance(1);
    });

    ctx.run();
    auto result = ctx.result();
    EXPECT_EQ(result.aggregate.numFinished, 0u);
    EXPECT_EQ(result.numTerminalFailures, 2u);
    EXPECT_GT(result.numRetries, 0u);
    for (const auto& row : result.perRequest) {
        EXPECT_TRUE(row.failed);
        EXPECT_EQ(row.failReason,
                  workload::FailReason::DeadlineExceeded);
        EXPECT_TRUE(row.deadlineExpired);
    }
    expectSingleOutcomes(result);
    expectNoKvLeaks(ctx);
}

TEST_F(DeadlineEdgeCases, ChaosSweepWithTightDeadlinesStaysSound)
{
    // Stochastic closure over every other timing: aggressive crash /
    // link-failure rates with tight deadlines across a seed sweep, so
    // expiries land in whatever state the chaos schedule produces
    // (mid-migration aborts, drain evictions, backoff loops). Each
    // run must keep single-outcome accounting and leak nothing, and
    // the sweep must actually exercise the deadline path.
    Rng rng(21);
    auto profile = workload::DatasetProfile::alpacaEval();
    profile.prompt = {80.0, 0.5, 32, 192};
    profile.reasoning = {160.0, 0.7, 24, 700};
    profile.answering = {70.0, 0.6, 16, 300};
    auto trace = workload::generateTrace(profile, 100, 250.0, rng);
    workload::assignSloClasses(trace);

    std::uint64_t deadline_failures = 0, crashes = 0;
    for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
        SCOPED_TRACE("fault seed " + std::to_string(seed));
        SystemConfig cfg = scriptedConfig(3);
        cfg.limits.demoteThresholdTokens = 700;
        cfg.fault.seed = seed;
        cfg.fault.crashRate = 0.3;
        cfg.fault.mttr = 1.5;
        cfg.fault.linkFailureProb = 0.3;
        cfg.fault.retryBudget = 4;
        params(cfg, SloClass::Interactive).relativeDeadline = 1.5;
        params(cfg, SloClass::Standard).relativeDeadline = 4.0;
        params(cfg, SloClass::Batch).relativeDeadline = 2.5;
        params(cfg, SloClass::Batch).demoteOnExpiry = true;

        RunContext ctx(cfg);
        ctx.submit(trace);
        ctx.run();
        auto result = ctx.result();
        expectSingleOutcomes(result);
        expectNoKvLeaks(ctx);
        for (const auto& out : result.perClass)
            deadline_failures += out.deadlineFailed;
        crashes += result.numCrashes;
        test::expectIdentical(result, RunContext::execute(cfg, trace));
    }
    EXPECT_GT(crashes, 0u);
    EXPECT_GT(deadline_failures, 0u);
}

} // namespace
