/**
 * @file
 * Unit tests for the FCFS scheduler: arrival-order admission,
 * head-of-line blocking, resume-before-admit, and preempt-latest
 * eviction (Section II-C semantics).
 */

#include <gtest/gtest.h>

#include "src/core/fcfs_scheduler.hh"
#include "tests/scheduler_test_util.hh"

namespace
{

using namespace pascal;
using core::FcfsScheduler;
using core::SchedLimits;
using test::SchedulerHarness;

SchedLimits
limits()
{
    SchedLimits l;
    l.maxBatchSize = 64;
    l.maxPrefillTokens = 4096;
    l.maxPrefillSeqs = 8;
    return l;
}

TEST(Fcfs, AdmitsNewRequestsInArrivalOrderAsPrefill)
{
    SchedulerHarness h(10000);
    FcfsScheduler sched(limits());
    auto* a = h.make(0, 0.0, 128, 100, 10);
    auto* b = h.make(1, 1.0, 128, 100, 10);
    sched.add(a);
    sched.add(b);

    auto plan = sched.plan(h.pool);
    ASSERT_EQ(plan.prefill.size(), 2u);
    EXPECT_EQ(plan.prefill[0], a);
    EXPECT_EQ(plan.prefill[1], b);
    EXPECT_TRUE(plan.decode.empty()); // Prefill iterations don't decode.
}

TEST(Fcfs, DecodesResidentsWhenNoPrefillPending)
{
    SchedulerHarness h(10000);
    FcfsScheduler sched(limits());
    auto* a = h.make(0, 0.0, 128, 100, 10);
    sched.add(a);
    h.makeResident(a);

    auto plan = sched.plan(h.pool);
    EXPECT_TRUE(plan.prefill.empty());
    ASSERT_EQ(plan.decode.size(), 1u);
    EXPECT_EQ(plan.decode[0], a);
}

TEST(Fcfs, BlocksNewRequestBehindFirstUnfit)
{
    // Capacity fits A resident but not B's prompt; C (smaller) must
    // still wait behind B: head-of-line blocking.
    SchedulerHarness h(1000);
    FcfsScheduler sched(limits());
    auto* a = h.make(0, 0.0, 500, 100, 10);
    auto* b = h.make(1, 1.0, 600, 100, 10);
    auto* c = h.make(2, 2.0, 64, 100, 10);
    sched.add(a);
    sched.add(b);
    sched.add(c);
    h.makeResident(a);

    auto plan = sched.plan(h.pool);
    EXPECT_TRUE(plan.prefill.empty()); // B does not fit, C blocked.
    ASSERT_EQ(plan.decode.size(), 1u);
    EXPECT_EQ(plan.decode[0], a);
}

TEST(Fcfs, AdmitsWhenMemoryFrees)
{
    SchedulerHarness h(1000);
    FcfsScheduler sched(limits());
    auto* b = h.make(1, 1.0, 600, 100, 10);
    sched.add(b);

    auto plan = sched.plan(h.pool);
    ASSERT_EQ(plan.prefill.size(), 1u);
    EXPECT_EQ(plan.prefill[0], b);
}

TEST(Fcfs, ResumesSwappedBeforeAdmittingNew)
{
    SchedulerHarness h(1000);
    FcfsScheduler sched(limits());
    auto* a = h.make(0, 0.0, 400, 100, 10);
    auto* b = h.make(1, 1.0, 400, 100, 10);
    sched.add(a);
    sched.add(b);
    h.makeResident(a);
    h.swapOut(a);

    auto plan = sched.plan(h.pool);
    // A (older, swapped) resumes and decodes; B's prefill would no
    // longer fit beside it (401 + 401 > 1000 leaves room actually:
    // 401+1 + 400+1 = 803 <= 1000, so B also prefills).
    EXPECT_TRUE(test::SchedulerHarness::contains(plan.swapIn, a));
    ASSERT_EQ(plan.prefill.size(), 1u);
    EXPECT_EQ(plan.prefill[0], b);
    EXPECT_TRUE(plan.decode.empty());
}

TEST(Fcfs, BlockedResumeBlocksAdmissions)
{
    SchedulerHarness h(1000);
    FcfsScheduler sched(limits());
    auto* a = h.make(0, 0.0, 599, 300, 10); // Resident, kv = 600.
    auto* b = h.make(1, 1.0, 499, 100, 10); // Swapped, kv = 500.
    auto* c = h.make(2, 2.0, 64, 100, 10);  // Waiting, small.
    sched.add(a);
    sched.add(b);
    sched.add(c);
    // B becomes resident first, is swapped out, then A takes the GPU
    // (the pool never exceeds capacity along the way).
    h.makeResident(b);
    h.swapOut(b);
    h.makeResident(a);

    // B needs 501 > 1000-601 = 399: resume blocked, so C stays
    // blocked too even though its prompt would fit (FCFS order).
    auto plan = sched.plan(h.pool);
    EXPECT_TRUE(plan.swapIn.empty());
    EXPECT_TRUE(plan.prefill.empty());
    ASSERT_EQ(plan.decode.size(), 1u);
    EXPECT_EQ(plan.decode[0], a);
}

TEST(Fcfs, EvictsLatestArrivalUnderGrowthPressure)
{
    // Pool exactly full with two residents; the +1 growth margin for
    // both cannot fit, so the later arrival is paused/evicted.
    SchedulerHarness h(262); // a: 130+1, b: 130+1 => 262 exact.
    FcfsScheduler sched(limits());
    auto* a = h.make(0, 0.0, 129, 100, 10);
    auto* b = h.make(1, 1.0, 129, 100, 10);
    sched.add(a);
    sched.add(b);
    h.makeResident(a); // kv = 130.
    h.makeResident(b); // kv = 130. Pool used = 260, free = 2.

    auto plan = sched.plan(h.pool);
    // Both fit: 131 + 131 = 262 <= 262.
    EXPECT_EQ(plan.decode.size(), 2u);

    // Grow A by one token: B (cost 131 > leftover 130) pauses but can
    // stay resident (keep budget 130 >= kv 130).
    h.decodeTokens(a, 1, 0.5);
    plan = sched.plan(h.pool);
    ASSERT_EQ(plan.decode.size(), 1u);
    EXPECT_EQ(plan.decode[0], a);
    EXPECT_TRUE(plan.swapOut.empty());

    // One more token of growth: keeping B no longer fits, so the most
    // recently arrived request is evicted (paper FCFS preemption).
    h.decodeTokens(a, 1, 0.6);
    plan = sched.plan(h.pool);
    ASSERT_EQ(plan.decode.size(), 1u);
    EXPECT_EQ(plan.decode[0], a);
    ASSERT_EQ(plan.swapOut.size(), 1u);
    EXPECT_EQ(plan.swapOut[0], b);
}

TEST(Fcfs, IdleWhenNothingSchedulable)
{
    SchedulerHarness h(1000);
    FcfsScheduler sched(limits());
    EXPECT_TRUE(sched.plan(h.pool).idle());
}

TEST(Fcfs, FinishedRequestsIgnored)
{
    SchedulerHarness h(1000);
    FcfsScheduler sched(limits());
    auto* a = h.make(0, 0.0, 64, 1, 1);
    sched.add(a);
    h.makeResident(a);
    h.decodeTokens(a, 1, 0.5); // Emits the single answer token: done.
    ASSERT_TRUE(a->finished());
    EXPECT_TRUE(sched.plan(h.pool).idle());
}

TEST(Fcfs, PrefillBatchRespectsTokenCap)
{
    SchedulerHarness h(100000);
    auto l = limits();
    l.maxPrefillTokens = 1000;
    FcfsScheduler sched(l);
    auto* a = h.make(0, 0.0, 600, 100, 10);
    auto* b = h.make(1, 1.0, 600, 100, 10);
    sched.add(a);
    sched.add(b);

    auto plan = sched.plan(h.pool);
    // Only A fits in this prefill iteration's token budget; FCFS
    // stops there.
    ASSERT_EQ(plan.prefill.size(), 1u);
    EXPECT_EQ(plan.prefill[0], a);
}

TEST(Fcfs, QuantumNeverAdvances)
{
    SchedulerHarness h(10000);
    FcfsScheduler sched(limits());
    EXPECT_EQ(sched.schedLimits().quantum, 0);
}

} // namespace
