/**
 * @file
 * Scripted crash-timing edge cases for the fault layer.
 *
 * Each test enables the fault layer with every stochastic rate at
 * zero (the injector exists, so the failover branches are armed, but
 * nothing fires on its own) and drives the Cluster's public fault API
 * at exact simulated times: destination crashes mid-transfer, a crash
 * landing at the same timestamp as a burst's coalesced plan boundary,
 * CPU-preserved KV riding out a crash, and a drain racing a
 * reasoning->answering promotion.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/run_context.hh"
#include "src/cluster/system_config.hh"
#include "src/common/log.hh"

namespace
{

using namespace pascal;
using cluster::PlacementType;
using cluster::RunContext;
using cluster::SchedulerType;
using cluster::SystemConfig;

class FaultEdgeCases : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

/** Two-instance deployment with the fault layer armed but silent
 *  (every rate zero): faults happen only where the test scripts
 *  them. */
SystemConfig
scriptedConfig()
{
    SystemConfig cfg;
    cfg.scheduler = SchedulerType::Pascal;
    cfg.placement = PlacementType::Pascal;
    cfg.numInstances = 2;
    cfg.gpuKvCapacityTokens = 8192;
    cfg.kvBlockSizeTokens = 16;
    cfg.fault.enabled = true;
    cfg.fault.retryBudget = 8;
    cfg.fault.backoffBase = 0.1;
    cfg.fault.backoffCap = 0.4;
    return cfg;
}

/** @p n identical requests arriving together at @p arrival. */
workload::Trace
flatTrace(int n, Time arrival, TokenCount prompt = 128,
          TokenCount reasoning = 400, TokenCount answer = 60)
{
    workload::Trace trace;
    for (int i = 0; i < n; ++i) {
        workload::RequestSpec spec;
        spec.id = i;
        spec.arrival = arrival;
        spec.promptTokens = prompt;
        spec.reasoningTokens = reasoning;
        spec.answerTokens = answer;
        spec.dataset = "scripted";
        trace.requests.push_back(spec);
    }
    return trace;
}

/** Audit: nothing leaked and every request is accounted for. */
void
expectCleanEnd(const RunContext& ctx, const cluster::RunResult& result)
{
    EXPECT_EQ(result.numUnfinished,
              static_cast<std::size_t>(result.numTerminalFailures));
    for (const auto& inst : ctx.cluster().getInstances()) {
        EXPECT_EQ(inst->pool().numTracked(), 0u)
            << "instance " << inst->id() << " leaked KV slots";
        EXPECT_EQ(inst->pool().gpuUsed(), 0)
            << "instance " << inst->id() << " leaked GPU KV tokens";
    }
}

TEST_F(FaultEdgeCases, DestinationCrashMidRestoreAbortsAndRetries)
{
    // A crash orphans a prefill-complete request; its failover
    // restore starts re-materializing KV onto the other instance over
    // a deliberately slow fabric; the destination then crashes while
    // the transfer is in flight. The landing must abort (no KV
    // materialized on a down instance), re-queue the request, and a
    // later retry — after both recoveries — must finish it.
    SystemConfig cfg = scriptedConfig();
    cfg.hardware.fabricGbps = 0.02; // Restores take whole seconds.
    RunContext ctx(cfg);
    ctx.submit(flatTrace(1, 0.0));
    auto& cl = ctx.cluster();

    // By t = 1.0 the lone request prefilled and is decoding on its
    // home; crash the home so the failover path restores elsewhere.
    ctx.run(1.0);
    InstanceId home = kNoInstance;
    for (const auto& inst : cl.getInstances()) {
        if (inst->pool().numTracked() > 0)
            home = inst->id();
    }
    ASSERT_NE(home, kNoInstance);
    InstanceId other = home == 0 ? 1 : 0;
    cl.crashInstance(home);

    // Step until the restore transfer into the surviving instance is
    // observably in flight on its fabric ingress link.
    Time now = 1.0;
    while (now < 30.0 && cl.ingressLink(other).busyUntil() <= now) {
        now += 0.05;
        ctx.run(now);
    }
    ASSERT_GT(cl.ingressLink(other).busyUntil(), now)
        << "restore transfer never started";
    Time abort_at = cl.ingressLink(other).busyUntil();

    // Destination crashes mid-transfer; both instances recover after
    // the (now doomed) transfer would have landed.
    cl.crashInstance(other);
    ctx.simulator().at(abort_at + 0.5, [&cl, home] {
        cl.recoverInstance(home);
    });
    ctx.simulator().at(abort_at + 0.6, [&cl, other] {
        cl.recoverInstance(other);
    });

    ctx.run();
    auto result = ctx.result();
    EXPECT_EQ(result.aggregate.numFinished, 1u);
    EXPECT_EQ(result.numCrashes, 2u);
    // At least: the crash re-queue and the aborted-landing re-queue.
    EXPECT_GE(result.numRetries, 2u);
    EXPECT_EQ(result.numTerminalFailures, 0u);
    expectCleanEnd(ctx, result);
}

TEST_F(FaultEdgeCases, CrashAtPlanBoundaryMidBurst)
{
    // A same-timestamp arrival burst admits through the coalesced
    // path, which defers ONE plan boundary per instance to a
    // same-timestamp event. A crash scheduled at that exact timestamp
    // (FIFO: after the admissions, before the deferred boundary)
    // orphans the admitted requests, and the boundary then fires
    // against a down instance — it must be a no-op, not a plan over
    // detached requests.
    SystemConfig cfg = scriptedConfig();
    RunContext ctx(cfg);
    ctx.submit(flatTrace(12, 1.0));
    auto& cl = ctx.cluster();
    ctx.simulator().at(1.0, [&cl] { cl.crashInstance(0); });
    ctx.simulator().at(3.0, [&cl] { cl.recoverInstance(0); });

    ctx.run();
    auto result = ctx.result();
    EXPECT_EQ(result.aggregate.numFinished, 12u);
    EXPECT_EQ(result.numCrashes, 1u);
    EXPECT_GT(result.numRetries, 0u); // Instance 0's share re-queued.
    EXPECT_EQ(result.numTerminalFailures, 0u);
    expectCleanEnd(ctx, result);
}

TEST_F(FaultEdgeCases, PreservedCpuKvRidesOutTheCrash)
{
    // With preserveCpuKv, requests whose KV was offloaded to host
    // DRAM at crash time stay hosted through the outage and resume
    // after recovery; only GPU-resident work is orphaned. A tight KV
    // pool plus a low demotion threshold guarantees offloaded
    // requests exist when the crash lands.
    SystemConfig cfg = scriptedConfig();
    cfg.fault.preserveCpuKv = true;
    cfg.gpuKvCapacityTokens = 2048;
    cfg.limits.demoteThresholdTokens = 100;
    RunContext ctx(cfg);
    ctx.submit(flatTrace(6, 0.0, 64, 600, 40));
    auto& cl = ctx.cluster();
    const auto& inst0 = *cl.getInstances()[0];

    // Step until instance 0 demonstrably holds CPU-offloaded KV.
    Time now = 0.0;
    auto swapped0 = [&inst0] {
        return inst0.pool().numTracked() - inst0.pool().numGpuResident();
    };
    while (now < 60.0 && swapped0() == 0) {
        now += 0.25;
        ctx.run(now);
    }
    ASSERT_GT(swapped0(), 0u) << "no request ever offloaded to CPU";

    std::size_t preserved = swapped0();
    cl.crashInstance(0);
    // The preserved requests stayed hosted; everything GPU-side was
    // detached and re-queued.
    EXPECT_EQ(inst0.pool().numTracked(), preserved);
    EXPECT_EQ(inst0.pool().numGpuResident(), 0u);

    ctx.simulator().after(2.0, [&cl] { cl.recoverInstance(0); });
    ctx.run();
    auto result = ctx.result();
    EXPECT_EQ(result.aggregate.numFinished, 6u);
    EXPECT_EQ(result.numTerminalFailures, 0u);
    expectCleanEnd(ctx, result);
}

TEST_F(FaultEdgeCases, CrashWithoutPreservationOrphansEverything)
{
    // Same scenario with the knob off: the crash must empty the pool
    // entirely (CPU-offloaded KV is lost with the host) and every
    // displaced request goes through the retry path.
    SystemConfig cfg = scriptedConfig();
    cfg.fault.preserveCpuKv = false;
    cfg.gpuKvCapacityTokens = 2048;
    cfg.limits.demoteThresholdTokens = 100;
    RunContext ctx(cfg);
    ctx.submit(flatTrace(6, 0.0, 64, 600, 40));
    auto& cl = ctx.cluster();
    const auto& inst0 = *cl.getInstances()[0];

    Time now = 0.0;
    while (now < 60.0 && inst0.pool().numTracked() == 0) {
        now += 0.25;
        ctx.run(now);
    }
    ASSERT_GT(inst0.pool().numTracked(), 0u);

    cl.crashInstance(0);
    EXPECT_EQ(inst0.pool().numTracked(), 0u);
    EXPECT_EQ(inst0.pool().gpuUsed(), 0);

    ctx.simulator().after(2.0, [&cl] { cl.recoverInstance(0); });
    ctx.run();
    auto result = ctx.result();
    EXPECT_EQ(result.aggregate.numFinished, 6u);
    EXPECT_GT(result.numRetries, 0u);
    expectCleanEnd(ctx, result);
}

TEST_F(FaultEdgeCases, DrainRoutesThePromotionAway)
{
    // A planned decommission must not strand the reasoning->answering
    // promotion: with the home instance draining, placeTransition
    // routes the promoted request to a healthy instance and the KV
    // migrates, while the draining engine keeps executing until then.
    SystemConfig cfg = scriptedConfig();
    RunContext ctx(cfg);
    ctx.submit(flatTrace(1, 0.0));
    auto& cl = ctx.cluster();

    ctx.run(0.5); // Mid-reasoning on its home instance.
    InstanceId home = kNoInstance;
    for (const auto& inst : cl.getInstances()) {
        if (inst->pool().numTracked() > 0)
            home = inst->id();
    }
    ASSERT_NE(home, kNoInstance);
    cl.startDrain(home);

    ctx.run();
    auto result = ctx.result();
    EXPECT_EQ(result.aggregate.numFinished, 1u);
    EXPECT_EQ(cl.numDrains(), 1u);
    EXPECT_EQ(result.numCrashes, 0u);
    // The promotion left the draining home over the fabric.
    EXPECT_GE(result.aggregate.totalMigrations, 1);
    InstanceId away = home == 0 ? 1 : 0;
    EXPECT_GT(cl.getInstances()[away]->numIterations(), 0u);
    expectCleanEnd(ctx, result);
}

TEST_F(FaultEdgeCases, DrainDeadlineEvictsStragglingWork)
{
    // If hosted work outlives the grace window, finishDrain takes the
    // instance down like a crash: remaining requests re-queue and
    // complete elsewhere or after recovery.
    SystemConfig cfg = scriptedConfig();
    RunContext ctx(cfg);
    ctx.submit(flatTrace(4, 0.0));
    auto& cl = ctx.cluster();

    ctx.run(0.5);
    cl.startDrain(0);
    bool had_work = cl.getInstances()[0]->pool().numTracked() > 0;
    ctx.simulator().at(0.6, [&cl] { cl.finishDrain(0); });
    ctx.simulator().at(5.0, [&cl] { cl.recoverInstance(0); });

    ctx.run();
    auto result = ctx.result();
    EXPECT_EQ(result.aggregate.numFinished, 4u);
    EXPECT_EQ(cl.numDrains(), 1u);
    // A deadline eviction is a drain outcome, not a crash.
    EXPECT_EQ(result.numCrashes, 0u);
    if (had_work) {
        EXPECT_GT(result.numRetries, 0u);
    }
    expectCleanEnd(ctx, result);
}

TEST_F(FaultEdgeCases, RetryBudgetExhaustionFailsTerminally)
{
    // With the whole fleet down and a finite budget, a displaced
    // request's capped-exponential-backoff retries must terminate in
    // an accounted RetryBudget failure instead of retrying forever.
    SystemConfig cfg = scriptedConfig();
    cfg.fault.retryBudget = 2;
    RunContext ctx(cfg);
    ctx.submit(flatTrace(2, 0.0));
    auto& cl = ctx.cluster();

    ctx.run(0.5);
    cl.crashInstance(0);
    cl.crashInstance(1); // Nowhere to go: retries must drain out.

    ctx.run();
    auto result = ctx.result();
    EXPECT_EQ(result.aggregate.numFinished, 0u);
    EXPECT_EQ(result.numTerminalFailures, 2u);
    EXPECT_EQ(result.goodputFraction, 0.0);
    for (const auto& row : result.perRequest) {
        EXPECT_TRUE(row.failed);
        EXPECT_EQ(row.failReason, workload::FailReason::RetryBudget);
    }
    expectCleanEnd(ctx, result);
}

TEST_F(FaultEdgeCases, StragglerWindowSlowsThenRestores)
{
    // A straggler window stretches iteration latency by the factor
    // and full speed returns when it ends; the run completes either
    // way and the window is accounted.
    SystemConfig cfg = scriptedConfig();
    RunContext ctx(cfg);
    ctx.submit(flatTrace(4, 0.0));
    auto& cl = ctx.cluster();
    ctx.simulator().at(0.2, [&cl] { cl.setStraggler(0, 4.0); });
    ctx.simulator().at(2.2, [&cl] { cl.setStraggler(0, 1.0); });

    ctx.run();
    auto result = ctx.result();
    EXPECT_EQ(result.aggregate.numFinished, 4u);
    EXPECT_EQ(cl.numStragglerWindows(), 1u);
    EXPECT_EQ(result.numCrashes, 0u);
    expectCleanEnd(ctx, result);
}

} // namespace
